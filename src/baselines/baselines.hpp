// Related-work comparators (paper Section II), implemented on the same
// device model so the GVM can be compared quantitatively against the
// alternatives the paper discusses qualitatively:
//
//  * Remote GPU access (Duato et al. [11], rCUDA-style): non-GPU nodes
//    forward CUDA calls to a GPU server over TCP/IP. Costs: a network
//    round trip per API call and data transfer through a shared NIC before
//    it ever reaches PCIe. Contexts remain per-client on the server, so
//    the context-switch serialization remains too.
//
//  * VM passthrough (GViM [8] / vCUDA [9] / gVirtuS [10]): one virtual
//    machine per process with a split-driver interposer. Costs: a
//    guest->host hop per API call and an extra staging copy through the
//    management domain for every transfer; the GPU is time-shared across
//    the VMs' contexts with no cross-VM kernel concurrency.
//
//  * Kernel merging (Guevara et al. [12]): a coordinating process merges
//    the N processes' kernels into one launch inside a single context.
//    Context switches vanish, but the merged kernel only launches after
//    every input transfer has finished — no copy/compute overlap (the
//    paper's critique), and outputs transfer only after the whole merged
//    kernel retires.
#pragma once

#include "gpu/spec.hpp"
#include "gvm/protocol.hpp"

namespace vgpu::baselines {

struct RunSummary {
  SimDuration turnaround = 0;
  gpu::DeviceStats device;
};

struct RemoteGpuConfig {
  /// One-way network latency per API message (call + return = 2x).
  SimDuration one_way_latency = microseconds(50.0);
  /// NIC bandwidth, shared by all clients (1 GbE default).
  BytesPerSecond network_bw = 0.125e9;
};

RunSummary run_remote_gpu(const gpu::DeviceSpec& spec,
                          const RemoteGpuConfig& config,
                          const gvm::TaskPlan& plan, int rounds, int nprocs);

struct VmConfig {
  /// Interposer hop (guest -> management domain -> driver) per API call.
  SimDuration call_overhead = microseconds(40.0);
  /// Guest <-> host page-sharing copy bandwidth; copies serialize through
  /// the single management domain.
  BytesPerSecond guest_copy_bw = gb_per_s(2.5);
};

RunSummary run_vm_passthrough(const gpu::DeviceSpec& spec,
                              const VmConfig& config,
                              const gvm::TaskPlan& plan, int rounds,
                              int nprocs);

/// Kernel merging: one context, per round all inputs staged first, then a
/// single merged launch (concatenated grids), then all outputs.
RunSummary run_kernel_merge(const gpu::DeviceSpec& spec,
                            const gvm::TaskPlan& plan, int rounds,
                            int nprocs);

}  // namespace vgpu::baselines
