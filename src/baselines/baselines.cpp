#include "baselines/baselines.hpp"

#include "des/sync.hpp"
#include "vcuda/runtime.hpp"

namespace vgpu::baselines {

namespace {

SimDuration run_and_measure(des::Simulator& sim,
                            des::CountdownLatch& done) {
  SimDuration turnaround = 0;
  sim.spawn([](des::Simulator& s, des::CountdownLatch& done,
               SimDuration& out) -> des::Task<> {
    co_await done.wait();
    out = s.now();
  }(sim, done, turnaround));
  sim.run();
  return turnaround;
}

}  // namespace

// ---------------------------------------------------------------------------
// Remote GPU access (rCUDA-style)
// ---------------------------------------------------------------------------

RunSummary run_remote_gpu(const gpu::DeviceSpec& spec,
                          const RemoteGpuConfig& config,
                          const gvm::TaskPlan& plan, int rounds,
                          int nprocs) {
  VGPU_ASSERT(nprocs >= 1 && rounds >= 1);
  des::Simulator sim;
  gpu::Device device(sim, spec);
  vcuda::Runtime runtime(sim, device);
  des::Semaphore nic(sim, 1);  // the server's shared network interface
  des::CountdownLatch done(sim, static_cast<std::size_t>(nprocs));

  for (int p = 0; p < nprocs; ++p) {
    sim.spawn([](des::Simulator& s, vcuda::Runtime& rt, des::Semaphore& nic,
                 const RemoteGpuConfig& config, const gvm::TaskPlan& plan,
                 int rounds, des::CountdownLatch& done) -> des::Task<> {
      // Every forwarded API call pays a network round trip.
      auto rpc = [&]() { return s.delay(2 * config.one_way_latency); };
      auto ship = [&](Bytes bytes) -> des::Task<> {
        if (bytes <= 0) co_return;
        co_await nic.acquire();
        co_await s.delay(transfer_time(bytes, config.network_bw));
        nic.release();
      };

      co_await rpc();  // cuCtxCreate forwarded
      auto ctx = co_await rt.create_context();
      vcuda::DeviceBuffer dev_in, dev_out;
      if (plan.bytes_in > 0) {
        co_await rpc();  // cudaMalloc
        dev_in = *ctx->malloc(plan.bytes_in);
      }
      if (plan.bytes_out > 0) {
        co_await rpc();
        dev_out = *ctx->malloc(plan.bytes_out);
      }
      for (int round = 0; round < rounds; ++round) {
        if (plan.bytes_in > 0) {
          co_await rpc();                   // cudaMemcpy H2D forwarded
          co_await ship(plan.bytes_in);     // data over the wire
          co_await ctx->memcpy_h2d(dev_in, nullptr, plan.bytes_in);
        }
        for (const auto& k : plan.kernels) {
          co_await rpc();  // kernel launch forwarded
          co_await ctx->launch_sync(k);
        }
        if (plan.bytes_out > 0) {
          co_await rpc();
          co_await ctx->memcpy_d2h(nullptr, dev_out, plan.bytes_out);
          co_await ship(plan.bytes_out);    // results back over the wire
        }
      }
      done.count_down();
      co_await done.wait();  // hold the context, as live processes do
    }(sim, runtime, nic, config, plan, rounds, done));
  }

  RunSummary summary;
  summary.turnaround = run_and_measure(sim, done);
  summary.device = device.stats();
  return summary;
}

// ---------------------------------------------------------------------------
// VM passthrough (GViM / vCUDA / gVirtuS style)
// ---------------------------------------------------------------------------

RunSummary run_vm_passthrough(const gpu::DeviceSpec& spec,
                              const VmConfig& config,
                              const gvm::TaskPlan& plan, int rounds,
                              int nprocs) {
  VGPU_ASSERT(nprocs >= 1 && rounds >= 1);
  des::Simulator sim;
  gpu::Device device(sim, spec);
  vcuda::Runtime runtime(sim, device);
  des::Semaphore dom0(sim, 1);  // single management domain: copies serialize
  des::CountdownLatch done(sim, static_cast<std::size_t>(nprocs));

  for (int p = 0; p < nprocs; ++p) {
    sim.spawn([](des::Simulator& s, vcuda::Runtime& rt, des::Semaphore& dom0,
                 const VmConfig& config, const gvm::TaskPlan& plan,
                 int rounds, des::CountdownLatch& done) -> des::Task<> {
      auto trap = [&]() { return s.delay(config.call_overhead); };
      auto stage = [&](Bytes bytes) -> des::Task<> {
        if (bytes <= 0) co_return;
        co_await dom0.acquire();
        co_await s.delay(transfer_time(bytes, config.guest_copy_bw));
        dom0.release();
      };

      co_await trap();
      auto ctx = co_await rt.create_context();  // per-VM context
      vcuda::DeviceBuffer dev_in, dev_out;
      if (plan.bytes_in > 0) {
        co_await trap();
        dev_in = *ctx->malloc(plan.bytes_in);
      }
      if (plan.bytes_out > 0) {
        co_await trap();
        dev_out = *ctx->malloc(plan.bytes_out);
      }
      for (int round = 0; round < rounds; ++round) {
        if (plan.bytes_in > 0) {
          co_await trap();
          co_await stage(plan.bytes_in);  // guest pages -> dom0 buffer
          co_await ctx->memcpy_h2d(dev_in, nullptr, plan.bytes_in);
        }
        for (const auto& k : plan.kernels) {
          co_await trap();
          co_await ctx->launch_sync(k);
        }
        if (plan.bytes_out > 0) {
          co_await trap();
          co_await ctx->memcpy_d2h(nullptr, dev_out, plan.bytes_out);
          co_await stage(plan.bytes_out);  // dom0 buffer -> guest pages
        }
      }
      done.count_down();
      co_await done.wait();
    }(sim, runtime, dom0, config, plan, rounds, done));
  }

  RunSummary summary;
  summary.turnaround = run_and_measure(sim, done);
  summary.device = device.stats();
  return summary;
}

// ---------------------------------------------------------------------------
// Kernel merging (Guevara et al.)
// ---------------------------------------------------------------------------

RunSummary run_kernel_merge(const gpu::DeviceSpec& spec,
                            const gvm::TaskPlan& plan, int rounds,
                            int nprocs) {
  VGPU_ASSERT(nprocs >= 1 && rounds >= 1);
  des::Simulator sim;
  gpu::Device device(sim, spec);
  vcuda::Runtime runtime(sim, device);
  des::CountdownLatch done(sim, 1);

  sim.spawn([](vcuda::Runtime& rt, const gvm::TaskPlan& plan, int rounds,
               int nprocs, des::CountdownLatch& done) -> des::Task<> {
    // One coordinating process, one context, N processes' buffers.
    auto ctx = co_await rt.create_context();
    std::vector<vcuda::DeviceBuffer> ins, outs;
    for (int p = 0; p < nprocs; ++p) {
      if (plan.bytes_in > 0) ins.push_back(*ctx->malloc(plan.bytes_in));
      if (plan.bytes_out > 0) outs.push_back(*ctx->malloc(plan.bytes_out));
    }
    for (int round = 0; round < rounds; ++round) {
      // All inputs transfer first: the merged kernel cannot start until
      // every process's data is resident (no copy/compute overlap).
      for (auto& in : ins) {
        co_await ctx->memcpy_h2d(in, nullptr, plan.bytes_in);
      }
      // One merged launch per kernel position: concatenated grids.
      for (const auto& k : plan.kernels) {
        gpu::KernelLaunch merged = k;
        merged.name = k.name + "+merged";
        merged.geometry.grid_blocks = k.geometry.grid_blocks * nprocs;
        merged.host_serial_time = k.host_serial_time;  // issued once
        co_await ctx->launch_sync(merged);
      }
      for (auto& out : outs) {
        co_await ctx->memcpy_d2h(nullptr, out, plan.bytes_out);
      }
    }
    done.count_down();
  }(runtime, plan, rounds, nprocs, done));

  RunSummary summary;
  summary.turnaround = run_and_measure(sim, done);
  summary.device = device.stats();
  return summary;
}

}  // namespace vgpu::baselines
