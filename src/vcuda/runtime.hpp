// vcuda: a CUDA-runtime-style API over the simulated device.
//
// The shapes mirror the CUDA 3.2 runtime the paper's infrastructure was
// written against:
//
//   Runtime  ~ the driver            (one per simulated node)
//   Context  ~ cudaCtx / process ctx (create costs ctx_create_time)
//   Stream   ~ cudaStream_t          (ordered async ops; cross-stream
//                                     concurrency within one context)
//   Event    ~ cudaEvent_t           (record / wait / query)
//
// Async memcpys and kernel launches are enqueued on a stream and execute in
// stream order; different streams of the same context overlap according to
// the device's copy-engine and concurrent-kernel rules. Synchronous
// convenience calls wrap enqueue + synchronize.
//
// Functional execution: a DeviceBuffer may carry real backing bytes. Copies
// then move real data and a kernel launch may carry a `body` callback which
// runs at kernel completion — so end-to-end results are verifiable while
// timing comes from the device model. Timing-only workloads simply pass
// unbacked buffers and null bodies.
#pragma once

#include <cstddef>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "des/sim.hpp"
#include "des/sync.hpp"
#include "gpu/device.hpp"
#include "vmem/page_table.hpp"

namespace vgpu::vcuda {

/// A device allocation, optionally backed by host bytes for functional runs.
struct DeviceBuffer {
  gpu::DevPtr ptr = 0;
  Bytes size = 0;
  std::shared_ptr<std::vector<std::byte>> backing;  // null => timing-only

  bool valid() const { return ptr != 0; }
  std::byte* data() { return backing ? backing->data() : nullptr; }
  const std::byte* data() const { return backing ? backing->data() : nullptr; }

  template <typename T>
  T* as() {
    return backing ? reinterpret_cast<T*>(backing->data()) : nullptr;
  }
  template <typename T>
  const T* as() const {
    return backing ? reinterpret_cast<const T*>(backing->data()) : nullptr;
  }
};

class Context;
class Graph;
class Stream;

/// One-shot completion marker usable across streams (cudaEvent_t).
class Event {
 public:
  Event() = default;

  bool recorded() const { return static_cast<bool>(ev_); }
  bool query() const { return ev_ && ev_->is_set(); }  // done?
  SimTime completion_time() const { return completion_time_; }

  /// cudaEventElapsedTime: milliseconds from `start` to `stop`; both events
  /// must have completed.
  static double elapsed_ms(const Event& start, const Event& stop) {
    VGPU_ASSERT(start.query() && stop.query());
    return to_ms(stop.completion_time_ - start.completion_time_);
  }

 private:
  friend class Stream;
  std::shared_ptr<des::OneShotEvent> ev_;
  SimTime completion_time_ = -1;
};

class Stream {
 public:
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;
  ~Stream();

  /// Async H2D copy of `n` bytes from `src` (may be null for timing-only)
  /// into `dst` at `dst_offset`. `src` must stay valid until the op runs.
  void memcpy_h2d_async(DeviceBuffer& dst, const void* src, Bytes n,
                        bool pinned = true, Bytes dst_offset = 0);

  /// Async D2H copy; `dst` may be null for timing-only.
  void memcpy_d2h_async(void* dst, const DeviceBuffer& src, Bytes n,
                        bool pinned = true, Bytes src_offset = 0);

  /// Async device-to-device copy (cudaMemcpyDeviceToDevice).
  void memcpy_d2d_async(DeviceBuffer& dst, const DeviceBuffer& src, Bytes n,
                        Bytes dst_offset = 0, Bytes src_offset = 0);

  /// Async memset (cudaMemsetAsync); fills backing bytes when present.
  void memset_async(DeviceBuffer& dst, std::byte value, Bytes n,
                    Bytes dst_offset = 0);

  /// Async kernel launch; `body` (optional) performs the functional work and
  /// runs exactly once, when the simulated kernel completes.
  void launch(gpu::KernelLaunch launch, std::function<void()> body = {});

  /// Host callback in stream order (cudaStreamAddCallback): runs after all
  /// prior work on this stream, consuming no device time.
  void add_callback(std::function<void()> callback);

  /// Enqueues an event; it fires when all prior work on this stream is done.
  void record(Event& event);

  /// Makes subsequent work on this stream wait for `event`
  /// (cudaStreamWaitEvent).
  void wait_event(const Event& event);

  /// Starts a capture scope (cudaStreamBeginCapture): until end_capture(),
  /// copies/memsets/launches enqueued on this stream record into a Graph
  /// instead of executing. Event ops and host callbacks invalidate the
  /// capture, as the thread-local bits of cudaStreamCapture would.
  Status begin_capture();
  /// Ends the scope and returns the recorded graph
  /// (cudaStreamEndCapture + cudaGraphInstantiate in one step — this
  /// runtime has no separate uninstantiated template).
  StatusOr<Graph> end_capture();
  bool capturing() const { return capturing_; }

  /// cudaGraphLaunch: re-enqueues every recorded op on this stream, in
  /// capture order. The buffers the capture named must still be alive.
  void launch_graph(const Graph& graph);

  /// Awaitable: completes when every op enqueued so far has executed.
  des::Task<> synchronize();

  /// True when no enqueued work remains (cudaStreamQuery == cudaSuccess).
  bool idle() const { return outstanding_ == 0; }

  std::size_t ops_enqueued() const { return ops_enqueued_; }

 private:
  friend class Context;
  friend class Graph;
  Stream(des::Simulator& sim, gpu::Device& device, gpu::ContextId ctx);

  struct Op {
    enum class Kind {
      kH2D,
      kD2H,
      kD2D,
      kMemset,
      kKernel,
      kRecord,
      kWaitEvent,
      kCallback,
    } kind;
    // copies / memset
    DeviceBuffer* dst_buf = nullptr;
    const DeviceBuffer* src_buf = nullptr;
    const void* host_src = nullptr;
    void* host_dst = nullptr;
    Bytes bytes = 0;
    Bytes offset = 0;       // destination offset
    Bytes src_offset = 0;   // source offset (D2D)
    std::byte fill{};       // memset value
    bool pinned = true;
    // kernel
    gpu::KernelLaunch launch;
    std::function<void()> body;
    // events
    std::shared_ptr<des::OneShotEvent> event;
    SimTime* completion_out = nullptr;
  };

  void enqueue(Op op);
  des::Task<> run_op(Op op, std::shared_ptr<des::OneShotEvent> prev,
                     std::shared_ptr<des::OneShotEvent> done);

  des::Simulator& sim_;
  gpu::Device& device_;
  gpu::ContextId ctx_;
  std::shared_ptr<des::OneShotEvent> tail_;  // completion of last enqueued op
  std::size_t outstanding_ = 0;
  std::size_t ops_enqueued_ = 0;
  bool capturing_ = false;
  bool capture_valid_ = true;
  std::vector<Op> capture_ops_;
};

/// A recorded op sequence (cudaGraph_t, pre-instantiated): the DES-side
/// mirror of the live runtime's RtGraph. Replay via Stream::launch_graph.
class Graph {
 public:
  Graph() = default;

  std::size_t node_count() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

 private:
  friend class Stream;
  std::vector<Stream::Op> ops_;
};

class Context {
 public:
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;
  ~Context();

  gpu::ContextId id() const { return ctx_; }
  gpu::Device& device() { return device_; }

  /// Allocates device memory; `backed` attaches host bytes for functional
  /// execution (zero-initialized).
  StatusOr<DeviceBuffer> malloc(Bytes size, bool backed = false);
  Status free(DeviceBuffer& buffer);

  /// Attaches a vmem residency tracker: subsequent mallocs register their
  /// bytes as pages (born resident — a fresh cudaMalloc is on-device) and
  /// frees drop them, so DES-side allocations share the live pager's page
  /// accounting. Null detaches; existing registrations are kept.
  void attach_residency(vmem::PageTable* residency) {
    residency_ = residency;
  }
  vmem::PageTable* residency() const { return residency_; }

  /// The context's default stream (stream 0).
  Stream& default_stream() { return *default_stream_; }

  /// Additional streams (the GVM creates one per client process).
  Stream& create_stream();
  std::size_t stream_count() const { return streams_.size(); }

  /// Synchronous convenience wrappers on the default stream.
  des::Task<> memcpy_h2d(DeviceBuffer& dst, const void* src, Bytes n,
                         bool pinned = true);
  des::Task<> memcpy_d2h(void* dst, const DeviceBuffer& src, Bytes n,
                         bool pinned = true);
  des::Task<> launch_sync(gpu::KernelLaunch launch,
                          std::function<void()> body = {});

  /// Awaits completion of all streams (cudaCtxSynchronize).
  des::Task<> synchronize();

 private:
  friend class Runtime;
  Context(des::Simulator& sim, gpu::Device& device, gpu::ContextId ctx);

  des::Simulator& sim_;
  gpu::Device& device_;
  gpu::ContextId ctx_;
  std::unique_ptr<Stream> default_stream_;
  std::vector<std::unique_ptr<Stream>> streams_;
  vmem::PageTable* residency_ = nullptr;        // optional, not owned
  std::map<gpu::DevPtr, vmem::AllocId> bound_;  // malloc -> residency id
};

/// A page-locked host allocation (cudaHostAlloc). RAII: releases its
/// reservation from the runtime's pinned ledger on destruction. Pinned
/// memory is what the device's async copy engines require for overlap.
class PinnedBuffer {
 public:
  PinnedBuffer() = default;
  PinnedBuffer(PinnedBuffer&& other) noexcept
      : ledger_(std::exchange(other.ledger_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  PinnedBuffer& operator=(PinnedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      ledger_ = std::exchange(other.ledger_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  PinnedBuffer(const PinnedBuffer&) = delete;
  PinnedBuffer& operator=(const PinnedBuffer&) = delete;
  ~PinnedBuffer() { release(); }

  bool valid() const { return ledger_ != nullptr; }
  Bytes size() const { return size_; }

 private:
  friend class Runtime;
  PinnedBuffer(gpu::PinnedHostLedger* ledger, Bytes size)
      : ledger_(ledger), size_(size) {}
  void release() {
    if (ledger_ != nullptr) {
      // RAII teardown: a mismatch here means double release, which the
      // move semantics above exclude; the status carries no information.
      (void)ledger_->release(size_);
      ledger_ = nullptr;
      size_ = 0;
    }
  }
  gpu::PinnedHostLedger* ledger_ = nullptr;
  Bytes size_ = 0;
};

/// Entry point: pairs a simulator with a device, hands out contexts.
class Runtime {
 public:
  /// `host_memory` bounds total page-locked allocations (the paper's node
  /// has 48 GB of system memory).
  Runtime(des::Simulator& sim, gpu::Device& device,
          Bytes host_memory = 48 * kGB)
      : sim_(sim), device_(device), pinned_ledger_(host_memory) {}

  /// Creates a context (pays driver init on first use + ctx_create_time).
  /// Aborts if the device's compute mode rejects the creation; use
  /// try_create_context for the recoverable form.
  des::Task<std::unique_ptr<Context>> create_context();

  /// Like create_context, but returns the admission error (exclusive /
  /// prohibited compute mode) instead of aborting.
  des::Task<StatusOr<std::unique_ptr<Context>>> try_create_context();

  /// cudaHostAlloc: reserves page-locked host memory against the node's
  /// ledger; fails with kOutOfMemory once host memory is exhausted.
  StatusOr<PinnedBuffer> alloc_pinned(Bytes size) {
    VGPU_RETURN_IF_ERROR(pinned_ledger_.reserve(size));
    return PinnedBuffer(&pinned_ledger_, size);
  }

  const gpu::PinnedHostLedger& pinned_ledger() const {
    return pinned_ledger_;
  }

  gpu::Device& device() { return device_; }
  des::Simulator& sim() { return sim_; }

 private:
  des::Simulator& sim_;
  gpu::Device& device_;
  gpu::PinnedHostLedger pinned_ledger_;
};

}  // namespace vgpu::vcuda
