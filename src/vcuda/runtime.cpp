#include "vcuda/runtime.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace vgpu::vcuda {

// ---------------------------------------------------------------------------
// Stream
// ---------------------------------------------------------------------------

Stream::Stream(des::Simulator& sim, gpu::Device& device, gpu::ContextId ctx)
    : sim_(sim), device_(device), ctx_(ctx) {}

Stream::~Stream() {
  VGPU_ASSERT_MSG(outstanding_ == 0,
                  "stream destroyed with work in flight; synchronize first");
}

void Stream::enqueue(Op op) {
  if (capturing_) {
    // Event plumbing and host callbacks carry cross-stream / host state a
    // replay could not reproduce; recording one poisons the capture.
    if (op.kind == Op::Kind::kRecord || op.kind == Op::Kind::kWaitEvent ||
        op.kind == Op::Kind::kCallback) {
      capture_valid_ = false;
      return;
    }
    capture_ops_.push_back(std::move(op));
    return;
  }
  auto prev = tail_;
  auto done = std::make_shared<des::OneShotEvent>(sim_);
  tail_ = done;
  ++outstanding_;
  ++ops_enqueued_;
  sim_.spawn(run_op(std::move(op), std::move(prev), std::move(done)));
}

des::Task<> Stream::run_op(Op op, std::shared_ptr<des::OneShotEvent> prev,
                           std::shared_ptr<des::OneShotEvent> done) {
  if (prev) co_await prev->wait();

  switch (op.kind) {
    case Op::Kind::kH2D: {
      co_await device_.copy(ctx_, gpu::Direction::kHostToDevice, op.bytes,
                            op.pinned);
      if (op.host_src != nullptr && op.dst_buf != nullptr &&
          op.dst_buf->backing) {
        VGPU_ASSERT(op.offset + op.bytes <= op.dst_buf->size);
        std::memcpy(op.dst_buf->backing->data() + op.offset, op.host_src,
                    static_cast<std::size_t>(op.bytes));
      }
      break;
    }
    case Op::Kind::kD2H: {
      co_await device_.copy(ctx_, gpu::Direction::kDeviceToHost, op.bytes,
                            op.pinned);
      if (op.host_dst != nullptr && op.src_buf != nullptr &&
          op.src_buf->backing) {
        VGPU_ASSERT(op.offset + op.bytes <= op.src_buf->size);
        std::memcpy(op.host_dst, op.src_buf->backing->data() + op.offset,
                    static_cast<std::size_t>(op.bytes));
      }
      break;
    }
    case Op::Kind::kD2D: {
      co_await device_.copy_d2d(ctx_, op.bytes);
      if (op.dst_buf != nullptr && op.dst_buf->backing &&
          op.src_buf != nullptr && op.src_buf->backing) {
        VGPU_ASSERT(op.offset + op.bytes <= op.dst_buf->size);
        VGPU_ASSERT(op.src_offset + op.bytes <= op.src_buf->size);
        std::memmove(op.dst_buf->backing->data() + op.offset,
                     op.src_buf->backing->data() + op.src_offset,
                     static_cast<std::size_t>(op.bytes));
      }
      break;
    }
    case Op::Kind::kMemset: {
      co_await device_.memset(ctx_, op.bytes);
      if (op.dst_buf != nullptr && op.dst_buf->backing) {
        VGPU_ASSERT(op.offset + op.bytes <= op.dst_buf->size);
        std::memset(op.dst_buf->backing->data() + op.offset,
                    static_cast<int>(op.fill),
                    static_cast<std::size_t>(op.bytes));
      }
      break;
    }
    case Op::Kind::kCallback: {
      if (op.body) op.body();
      break;
    }
    case Op::Kind::kKernel: {
      co_await device_.launch_kernel(ctx_, std::move(op.launch));
      if (op.body) op.body();
      break;
    }
    case Op::Kind::kRecord: {
      if (op.completion_out != nullptr) *op.completion_out = sim_.now();
      op.event->set();
      break;
    }
    case Op::Kind::kWaitEvent: {
      co_await op.event->wait();
      break;
    }
  }

  --outstanding_;
  done->set();
}

void Stream::memcpy_h2d_async(DeviceBuffer& dst, const void* src, Bytes n,
                              bool pinned, Bytes dst_offset) {
  VGPU_ASSERT(dst.valid());
  VGPU_ASSERT(n >= 0 && dst_offset >= 0 && dst_offset + n <= dst.size);
  Op op;
  op.kind = Op::Kind::kH2D;
  op.dst_buf = &dst;
  op.host_src = src;
  op.bytes = n;
  op.offset = dst_offset;
  op.pinned = pinned;
  enqueue(std::move(op));
}

void Stream::memcpy_d2h_async(void* dst, const DeviceBuffer& src, Bytes n,
                              bool pinned, Bytes src_offset) {
  VGPU_ASSERT(src.valid());
  VGPU_ASSERT(n >= 0 && src_offset >= 0 && src_offset + n <= src.size);
  Op op;
  op.kind = Op::Kind::kD2H;
  op.src_buf = &src;
  op.host_dst = dst;
  op.bytes = n;
  op.offset = src_offset;
  op.pinned = pinned;
  enqueue(std::move(op));
}

void Stream::memcpy_d2d_async(DeviceBuffer& dst, const DeviceBuffer& src,
                              Bytes n, Bytes dst_offset, Bytes src_offset) {
  VGPU_ASSERT(dst.valid() && src.valid());
  VGPU_ASSERT(n >= 0 && dst_offset >= 0 && dst_offset + n <= dst.size);
  VGPU_ASSERT(src_offset >= 0 && src_offset + n <= src.size);
  Op op;
  op.kind = Op::Kind::kD2D;
  op.dst_buf = &dst;
  op.src_buf = &src;
  op.bytes = n;
  op.offset = dst_offset;
  op.src_offset = src_offset;
  enqueue(std::move(op));
}

void Stream::memset_async(DeviceBuffer& dst, std::byte value, Bytes n,
                          Bytes dst_offset) {
  VGPU_ASSERT(dst.valid());
  VGPU_ASSERT(n >= 0 && dst_offset >= 0 && dst_offset + n <= dst.size);
  Op op;
  op.kind = Op::Kind::kMemset;
  op.dst_buf = &dst;
  op.bytes = n;
  op.offset = dst_offset;
  op.fill = value;
  enqueue(std::move(op));
}

void Stream::add_callback(std::function<void()> callback) {
  Op op;
  op.kind = Op::Kind::kCallback;
  op.body = std::move(callback);
  enqueue(std::move(op));
}

void Stream::launch(gpu::KernelLaunch launch, std::function<void()> body) {
  Op op;
  op.kind = Op::Kind::kKernel;
  op.launch = std::move(launch);
  op.body = std::move(body);
  enqueue(std::move(op));
}

void Stream::record(Event& event) {
  event.ev_ = std::make_shared<des::OneShotEvent>(sim_);
  event.completion_time_ = -1;
  Op op;
  op.kind = Op::Kind::kRecord;
  op.event = event.ev_;
  op.completion_out = &event.completion_time_;
  enqueue(std::move(op));
}

void Stream::wait_event(const Event& event) {
  VGPU_ASSERT_MSG(event.recorded(), "waiting on an unrecorded event");
  Op op;
  op.kind = Op::Kind::kWaitEvent;
  op.event = event.ev_;
  enqueue(std::move(op));
}

Status Stream::begin_capture() {
  if (capturing_) return FailedPrecondition("stream is already capturing");
  capturing_ = true;
  capture_valid_ = true;
  capture_ops_.clear();
  return Status::Ok();
}

StatusOr<Graph> Stream::end_capture() {
  if (!capturing_) return FailedPrecondition("stream is not capturing");
  capturing_ = false;
  if (!capture_valid_) {
    capture_ops_.clear();
    return InvalidArgument(
        "capture was invalidated by an event or callback op");
  }
  if (capture_ops_.empty()) {
    return InvalidArgument("capture recorded no ops");
  }
  Graph graph;
  graph.ops_ = std::move(capture_ops_);
  capture_ops_.clear();
  return graph;
}

void Stream::launch_graph(const Graph& graph) {
  VGPU_ASSERT_MSG(!capturing_, "launch_graph inside a capture scope");
  for (const Op& op : graph.ops_) enqueue(op);
}

des::Task<> Stream::synchronize() {
  while (outstanding_ > 0) {
    auto t = tail_;  // completion of the currently-last op
    co_await t->wait();
  }
}

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

Context::Context(des::Simulator& sim, gpu::Device& device, gpu::ContextId ctx)
    : sim_(sim), device_(device), ctx_(ctx) {
  default_stream_.reset(new Stream(sim_, device_, ctx_));
}

Context::~Context() {
  const Status st = device_.destroy_context(ctx_);
  if (!st.ok()) {
    VGPU_ERROR("context destruction failed: " << st.to_string());
  }
}

StatusOr<DeviceBuffer> Context::malloc(Bytes size, bool backed) {
  StatusOr<gpu::DevPtr> ptr = device_.malloc_device(ctx_, size);
  if (!ptr.ok()) return ptr.status();
  DeviceBuffer buf;
  buf.ptr = *ptr;
  buf.size = size;
  if (backed) {
    buf.backing = std::make_shared<std::vector<std::byte>>(
        static_cast<std::size_t>(size));
  }
  if (residency_ != nullptr) {
    const vmem::AllocId id = residency_->bind(
        static_cast<int>(ctx_), backed ? buf.backing->data() : nullptr,
        size);
    // A fresh cudaMalloc is on-device: born resident, not pinned.
    for (vmem::Page& page : residency_->find(id)->pages) {
      page.state = vmem::PageState::kResident;
    }
    bound_.emplace(buf.ptr, id);
  }
  return buf;
}

Status Context::free(DeviceBuffer& buffer) {
  if (!buffer.valid()) return InvalidArgument("free of null device buffer");
  VGPU_RETURN_IF_ERROR(device_.free_device(ctx_, buffer.ptr));
  if (residency_ != nullptr) {
    auto it = bound_.find(buffer.ptr);
    if (it != bound_.end()) {
      (void)residency_->drop(it->second);
      bound_.erase(it);
    }
  }
  buffer = DeviceBuffer{};
  return Status::Ok();
}

Stream& Context::create_stream() {
  streams_.emplace_back(new Stream(sim_, device_, ctx_));
  return *streams_.back();
}

des::Task<> Context::memcpy_h2d(DeviceBuffer& dst, const void* src, Bytes n,
                                bool pinned) {
  default_stream_->memcpy_h2d_async(dst, src, n, pinned);
  co_await default_stream_->synchronize();
}

des::Task<> Context::memcpy_d2h(void* dst, const DeviceBuffer& src, Bytes n,
                                bool pinned) {
  default_stream_->memcpy_d2h_async(dst, src, n, pinned);
  co_await default_stream_->synchronize();
}

des::Task<> Context::launch_sync(gpu::KernelLaunch launch,
                                 std::function<void()> body) {
  default_stream_->launch(std::move(launch), std::move(body));
  co_await default_stream_->synchronize();
}

des::Task<> Context::synchronize() {
  co_await default_stream_->synchronize();
  for (auto& s : streams_) co_await s->synchronize();
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

des::Task<std::unique_ptr<Context>> Runtime::create_context() {
  const gpu::ContextId id = co_await device_.create_context();
  VGPU_ASSERT_MSG(id != gpu::kNullContext,
                  "context creation rejected by the compute mode");
  co_return std::unique_ptr<Context>(new Context(sim_, device_, id));
}

des::Task<StatusOr<std::unique_ptr<Context>>> Runtime::try_create_context() {
  const gpu::ContextId id = co_await device_.create_context();
  if (id == gpu::kNullContext) {
    Status st = device_.context_admission();
    co_return st.ok() ? FailedPrecondition("context creation rejected") : st;
  }
  co_return std::unique_ptr<Context>(new Context(sim_, device_, id));
}

}  // namespace vgpu::vcuda
