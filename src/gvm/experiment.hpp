// Experiment driver: runs an SPMD workload with and without the GVM and
// measures process turnaround time — the paper's Section VI methodology
// ("the time for all processes to finish executing the benchmarks after
// they start simultaneously").
//
// Baseline (no virtualization): every process creates its own GPU context
// and issues synchronous H2D / kernel / D2H calls; the device serializes
// across contexts with context-switch penalties (paper Figure 4).
//
// Virtualized: a pre-initialized GVM owns the single context; processes
// drive their VGPU through REQ/SND/STR/STP/RCV/RLS (paper Figure 8).
// Turnaround starts when the clients start, i.e. the GVM's one-time
// initialization is outside the measured window — exactly the paper's
// measurement (that is why even one process gains from virtualization).
#pragma once

#include <algorithm>
#include <vector>

#include "gpu/spec.hpp"
#include "gvm/gvm.hpp"
#include "model/model.hpp"

namespace vgpu::gvm {

/// One completed job round of a trace-driven mixed run (see MixedClient
/// below): when the round was *scheduled* to be released and how long it
/// took from that scheduled instant — the coordination-omission-safe
/// latency convention (a round that starts late because the client fell
/// behind still charges the queueing delay).
struct RoundSample {
  int client = -1;
  int tenant = -1;
  SimTime released = 0;     // scheduled release, relative to run start
  SimDuration latency = 0;  // finish - released
};

struct RunResult {
  SimDuration turnaround = 0;
  SimDuration pure_gpu_time = 0;  // device busy time within the run
  gpu::DeviceStats device;
  GvmStats gvm;          // zero for baseline runs
  sched::SchedStats sched;  // scheduler counters (virtualized only)
  sched::AdmissionStats admission;  // admission counters (virtualized only)
  long client_waits = 0;  // STP polls answered WAIT (virtualized only)
  /// Per-process completion times relative to the simultaneous start —
  /// the spread measures fairness across the SPMD wave.
  std::vector<SimDuration> per_process;
  /// Per-round latency samples; filled only for trace-driven mixed runs
  /// (clients with releases/think/tenant set). Legacy runs leave it empty.
  std::vector<RoundSample> samples;

  SimDuration fairness_spread() const {
    if (per_process.empty()) return 0;
    const auto [lo, hi] =
        std::minmax_element(per_process.begin(), per_process.end());
    return *hi - *lo;
  }
};

/// SPMD run without virtualization: `nprocs` processes, each executing
/// `rounds` cycles of `plan` under its own context. If `timeline` is
/// non-null, every device operation is recorded onto it.
RunResult run_baseline(const gpu::DeviceSpec& spec, const TaskPlan& plan,
                       int rounds, int nprocs,
                       gpu::Timeline* timeline = nullptr);

/// SPMD run through the GVM. `config.expected_clients` is overridden with
/// `nprocs`.
RunResult run_virtualized(const gpu::DeviceSpec& spec, GvmConfig config,
                          const TaskPlan& plan, int rounds, int nprocs,
                          gpu::Timeline* timeline = nullptr);

/// One client of a heterogeneous (non-SPMD) mix: its own plan, round
/// count and staggered arrival time.
///
/// The trace replay engine (workloads/trace) extends the same struct:
/// a non-empty `releases` turns the client into an open-loop arrival
/// stream (one SND/STR/STP/RCV round per scheduled release, latency
/// measured from the *scheduled* time — coordination-omission-safe), a
/// positive `think` turns it into a closed-loop batch client (each of
/// `rounds` jobs starts `think` after the previous one finishes), and
/// `tenant >= 0` tags the per-round samples for the SLO report. A default
/// MixedClient (empty releases, zero think, tenant -1) takes exactly the
/// legacy run_task path, so existing benches replay bit-identically.
struct MixedClient {
  TaskPlan plan;
  int rounds = 1;
  SimDuration arrival = 0;
  /// Open-loop: absolute scheduled release times (relative to run start),
  /// non-decreasing. Overrides `rounds` when non-empty.
  std::vector<SimTime> releases;
  /// Closed-loop: think time inserted between a job's completion and the
  /// next job's release (0 = back-to-back, the legacy behavior).
  SimDuration think = 0;
  /// Tenant id stamped onto this client's RoundSamples (-1 = untraced).
  int tenant = -1;
};

/// Heterogeneous run through the GVM: clients with different plans,
/// round counts and arrival offsets — the scheduling-ablation workload.
/// `config.expected_clients` is overridden with the client count. When
/// round counts differ across the mix the barrier policy is forced to run
/// width-capped (dynamic_width) so staggered departures cannot deadlock
/// the cohort; with uniform rounds the strict barrier runs as configured.
RunResult run_mixed(const gpu::DeviceSpec& spec, GvmConfig config,
                    const std::vector<MixedClient>& mix,
                    gpu::Timeline* timeline = nullptr);

/// Microbenchmark pass (paper Table II): measures Tinit (nprocs context
/// initializations), per-stage Tdata_in / Tcomp / Tdata_out of one task
/// cycle, and the observed context-switch time between two contexts.
model::ExecutionProfile measure_profile(const gpu::DeviceSpec& spec,
                                        const TaskPlan& plan, int nprocs,
                                        const std::string& name);

}  // namespace vgpu::gvm
