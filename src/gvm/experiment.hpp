// Experiment driver: runs an SPMD workload with and without the GVM and
// measures process turnaround time — the paper's Section VI methodology
// ("the time for all processes to finish executing the benchmarks after
// they start simultaneously").
//
// Baseline (no virtualization): every process creates its own GPU context
// and issues synchronous H2D / kernel / D2H calls; the device serializes
// across contexts with context-switch penalties (paper Figure 4).
//
// Virtualized: a pre-initialized GVM owns the single context; processes
// drive their VGPU through REQ/SND/STR/STP/RCV/RLS (paper Figure 8).
// Turnaround starts when the clients start, i.e. the GVM's one-time
// initialization is outside the measured window — exactly the paper's
// measurement (that is why even one process gains from virtualization).
#pragma once

#include <algorithm>
#include <vector>

#include "gpu/spec.hpp"
#include "gvm/gvm.hpp"
#include "model/model.hpp"

namespace vgpu::gvm {

struct RunResult {
  SimDuration turnaround = 0;
  SimDuration pure_gpu_time = 0;  // device busy time within the run
  gpu::DeviceStats device;
  GvmStats gvm;          // zero for baseline runs
  sched::SchedStats sched;  // scheduler counters (virtualized only)
  sched::AdmissionStats admission;  // admission counters (virtualized only)
  long client_waits = 0;  // STP polls answered WAIT (virtualized only)
  /// Per-process completion times relative to the simultaneous start —
  /// the spread measures fairness across the SPMD wave.
  std::vector<SimDuration> per_process;

  SimDuration fairness_spread() const {
    if (per_process.empty()) return 0;
    const auto [lo, hi] =
        std::minmax_element(per_process.begin(), per_process.end());
    return *hi - *lo;
  }
};

/// SPMD run without virtualization: `nprocs` processes, each executing
/// `rounds` cycles of `plan` under its own context. If `timeline` is
/// non-null, every device operation is recorded onto it.
RunResult run_baseline(const gpu::DeviceSpec& spec, const TaskPlan& plan,
                       int rounds, int nprocs,
                       gpu::Timeline* timeline = nullptr);

/// SPMD run through the GVM. `config.expected_clients` is overridden with
/// `nprocs`.
RunResult run_virtualized(const gpu::DeviceSpec& spec, GvmConfig config,
                          const TaskPlan& plan, int rounds, int nprocs,
                          gpu::Timeline* timeline = nullptr);

/// One client of a heterogeneous (non-SPMD) mix: its own plan, round
/// count and staggered arrival time.
struct MixedClient {
  TaskPlan plan;
  int rounds = 1;
  SimDuration arrival = 0;
};

/// Heterogeneous run through the GVM: clients with different plans,
/// round counts and arrival offsets — the scheduling-ablation workload.
/// `config.expected_clients` is overridden with the client count. When
/// round counts differ across the mix the barrier policy is forced to run
/// width-capped (dynamic_width) so staggered departures cannot deadlock
/// the cohort; with uniform rounds the strict barrier runs as configured.
RunResult run_mixed(const gpu::DeviceSpec& spec, GvmConfig config,
                    const std::vector<MixedClient>& mix,
                    gpu::Timeline* timeline = nullptr);

/// Microbenchmark pass (paper Table II): measures Tinit (nprocs context
/// initializations), per-stage Tdata_in / Tcomp / Tdata_out of one task
/// cycle, and the observed context-switch time between two contexts.
model::ExecutionProfile measure_profile(const gpu::DeviceSpec& spec,
                                        const TaskPlan& plan, int nprocs,
                                        const std::string& name);

}  // namespace vgpu::gvm
