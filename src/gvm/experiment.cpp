#include "gvm/experiment.hpp"

#include <algorithm>
#include <memory>

#include "common/log.hpp"
#include "des/sync.hpp"
#include "vcuda/runtime.hpp"

namespace vgpu::gvm {

namespace {

SimDuration device_busy(const gpu::Device& dev) {
  const gpu::DeviceStats& s = dev.stats();
  return s.h2d_busy + s.kernel_busy + s.d2h_busy;
}

/// One baseline SPMD process: private context, synchronous task cycles.
des::Task<> baseline_process(vcuda::Runtime& rt, const TaskPlan& plan,
                             int rounds, des::CountdownLatch& done,
                             SimDuration& finish_time) {
  auto ctx = co_await rt.create_context();
  vcuda::DeviceBuffer dev_in, dev_out;
  if (plan.bytes_in > 0) {
    auto buf = ctx->malloc(plan.bytes_in, plan.backed);
    VGPU_ASSERT_MSG(buf.ok(), buf.status().to_string().c_str());
    dev_in = *buf;
  }
  if (plan.bytes_out > 0) {
    auto buf = ctx->malloc(plan.bytes_out, plan.backed);
    VGPU_ASSERT_MSG(buf.ok(), buf.status().to_string().c_str());
    dev_out = *buf;
  }
  for (int round = 0; round < rounds; ++round) {
    if (plan.bytes_in > 0) {
      co_await ctx->memcpy_h2d(dev_in, plan.input, plan.bytes_in);
    }
    for (std::size_t i = 0; i < plan.kernels.size(); ++i) {
      const bool last = (i + 1 == plan.kernels.size());
      std::function<void()> body;
      if (last && plan.kernel_body) {
        body = [&] {
          TaskBuffers buffers{&dev_in, &dev_out};
          plan.kernel_body(buffers);
        };
      }
      co_await ctx->launch_sync(plan.kernels[i], std::move(body));
    }
    if (plan.bytes_out > 0) {
      co_await ctx->memcpy_d2h(plan.output, dev_out, plan.bytes_out);
    }
  }
  finish_time = rt.sim().now();
  done.count_down();
  // SPMD processes keep their GPU context until the program exits: hold it
  // until every process has finished so that context switches between
  // still-live contexts are charged, as on real hardware.
  co_await done.wait();
}

/// One trace-driven mixed client (see MixedClient in the header): REQ,
/// then one SND/STR/STP/RCV round per scheduled release (open-loop) or
/// per job with think-time gaps (closed-loop), then RLS. Latency for an
/// open-loop round is measured from the *scheduled* release — a round
/// that starts late because the previous one overran still charges its
/// queueing delay (no coordinated omission).
des::Task<> traced_rounds(des::Simulator& s, VGpuClient& c,
                          const MixedClient& m, SimTime t0,
                          std::vector<RoundSample>& samples) {
  const Status admitted = co_await c.req(m.plan);
  VGPU_ASSERT_MSG(admitted.ok(), admitted.to_string().c_str());
  const int rounds = m.releases.empty()
                         ? m.rounds
                         : static_cast<int>(m.releases.size());
  for (int r = 0; r < rounds; ++r) {
    SimTime released = s.now();
    if (!m.releases.empty()) {
      const SimTime due = t0 + m.releases[static_cast<std::size_t>(r)];
      if (s.now() < due) co_await s.delay(due - s.now());
      released = due;
    }
    co_await c.snd();
    co_await c.str();
    co_await c.wait_done();
    co_await c.rcv();
    samples.push_back(
        RoundSample{c.id(), m.tenant, released - t0, s.now() - released});
    if (m.releases.empty() && m.think > 0 && r + 1 < rounds) {
      co_await s.delay(m.think);
    }
  }
  co_await c.rls();
}

bool is_traced(const MixedClient& m) {
  return !m.releases.empty() || m.think > 0 || m.tenant >= 0;
}

}  // namespace

RunResult run_baseline(const gpu::DeviceSpec& spec, const TaskPlan& plan,
                       int rounds, int nprocs, gpu::Timeline* timeline) {
  VGPU_ASSERT(nprocs >= 1 && rounds >= 1);
  des::Simulator sim;
  gpu::Device device(sim, spec);
  device.set_timeline(timeline);
  vcuda::Runtime runtime(sim, device);
  des::CountdownLatch done(sim, static_cast<std::size_t>(nprocs));

  RunResult result;
  result.per_process.resize(static_cast<std::size_t>(nprocs));
  for (int p = 0; p < nprocs; ++p) {
    sim.spawn(baseline_process(runtime, plan, rounds, done,
                               result.per_process[static_cast<std::size_t>(p)]));
  }
  sim.spawn([](des::Simulator& s, des::CountdownLatch& done,
               RunResult& out) -> des::Task<> {
    co_await done.wait();
    out.turnaround = s.now();
  }(sim, done, result));
  sim.run();

  result.pure_gpu_time = device_busy(device);
  result.device = device.stats();
  return result;
}

RunResult run_virtualized(const gpu::DeviceSpec& spec, GvmConfig config,
                          const TaskPlan& plan, int rounds, int nprocs,
                          gpu::Timeline* timeline) {
  VGPU_ASSERT(nprocs >= 1 && rounds >= 1);
  des::Simulator sim;
  gpu::Device device(sim, spec);
  device.set_timeline(timeline);
  vcuda::Runtime runtime(sim, device);
  config.expected_clients = nprocs;
  Gvm gvm(sim, runtime, config);
  gvm.start();

  RunResult result;
  std::vector<std::unique_ptr<VGpuClient>> clients;
  for (int p = 0; p < nprocs; ++p) {
    clients.push_back(std::make_unique<VGpuClient>(sim, gvm, p));
  }

  // Supervisor: wait for the GVM to come up (outside the measured window),
  // then start all SPMD clients simultaneously.
  sim.spawn([](des::Simulator& s, Gvm& gvm, gpu::Device& device,
               std::vector<std::unique_ptr<VGpuClient>>& clients,
               const TaskPlan& plan, int rounds,
               RunResult& out) -> des::Task<> {
    co_await gvm.ready().wait();
    const SimTime t0 = s.now();
    const SimDuration gpu0 = device_busy(device);
    des::CountdownLatch done(s, clients.size());
    out.per_process.resize(clients.size());
    for (std::size_t i = 0; i < clients.size(); ++i) {
      s.spawn([](des::Simulator& s, VGpuClient& c, TaskPlan plan, int rounds,
                 des::CountdownLatch& done, SimTime t0,
                 SimDuration& finish) -> des::Task<> {
        co_await c.run_task(std::move(plan), rounds);
        finish = s.now() - t0;
        done.count_down();
      }(s, *clients[i], plan, rounds, done, t0, out.per_process[i]));
    }
    co_await done.wait();
    out.turnaround = s.now() - t0;
    out.pure_gpu_time = device_busy(device) - gpu0;
    for (auto& client : clients) out.client_waits += client->waits_observed();
  }(sim, gvm, device, clients, plan, rounds, result));
  sim.run();

  result.device = device.stats();
  result.gvm = gvm.stats();
  result.sched = gvm.scheduler().stats();
  result.admission = gvm.admission().stats();
  return result;
}

RunResult run_mixed(const gpu::DeviceSpec& spec, GvmConfig config,
                    const std::vector<MixedClient>& mix,
                    gpu::Timeline* timeline) {
  VGPU_ASSERT(!mix.empty());
  des::Simulator sim;
  gpu::Device device(sim, spec);
  device.set_timeline(timeline);
  vcuda::Runtime runtime(sim, device);
  config.expected_clients = static_cast<int>(mix.size());
  // A strict-width barrier deadlocks once the first client retires while
  // others still have rounds left (the cohort can never fill again), which
  // can only happen when round counts differ. Only then cap the cohort at
  // the currently admitted population; with uniform rounds the strict
  // paper barrier is safe and its cohort-formation cost stays observable.
  bool uniform_rounds = true;
  bool traced = false;
  for (const MixedClient& m : mix) {
    uniform_rounds = uniform_rounds && m.rounds == mix.front().rounds;
    traced = traced || is_traced(m);
  }
  // Trace-driven clients arrive and depart on their own schedules, so the
  // strict barrier can never count on the cohort refilling either.
  if (!uniform_rounds || traced) config.sched.dynamic_width = true;
  Gvm gvm(sim, runtime, config);
  gvm.start();

  RunResult result;
  std::vector<std::unique_ptr<VGpuClient>> clients;
  for (std::size_t p = 0; p < mix.size(); ++p) {
    clients.push_back(
        std::make_unique<VGpuClient>(sim, gvm, static_cast<int>(p)));
  }

  sim.spawn([](des::Simulator& s, Gvm& gvm, gpu::Device& device,
               std::vector<std::unique_ptr<VGpuClient>>& clients,
               const std::vector<MixedClient>& mix,
               RunResult& out) -> des::Task<> {
    co_await gvm.ready().wait();
    const SimTime t0 = s.now();
    const SimDuration gpu0 = device_busy(device);
    des::CountdownLatch done(s, clients.size());
    out.per_process.resize(clients.size());
    for (std::size_t i = 0; i < clients.size(); ++i) {
      s.spawn([](des::Simulator& s, VGpuClient& c, const MixedClient& m,
                 des::CountdownLatch& done, SimTime t0, SimDuration& finish,
                 std::vector<RoundSample>& samples) -> des::Task<> {
        co_await s.delay(m.arrival);
        if (is_traced(m)) {
          co_await traced_rounds(s, c, m, t0, samples);
        } else {
          co_await c.run_task(m.plan, m.rounds);
        }
        finish = s.now() - t0;
        done.count_down();
      }(s, *clients[i], mix[i], done, t0, out.per_process[i], out.samples));
    }
    co_await done.wait();
    out.turnaround = s.now() - t0;
    out.pure_gpu_time = device_busy(device) - gpu0;
    for (auto& client : clients) out.client_waits += client->waits_observed();
  }(sim, gvm, device, clients, mix, result));
  sim.run();

  result.device = device.stats();
  result.gvm = gvm.stats();
  result.sched = gvm.scheduler().stats();
  result.admission = gvm.admission().stats();
  return result;
}

model::ExecutionProfile measure_profile(const gpu::DeviceSpec& spec,
                                        const TaskPlan& plan, int nprocs,
                                        const std::string& name) {
  model::ExecutionProfile profile;
  profile.name = name;

  // Tinit: nprocs processes initialize the device and their contexts.
  {
    des::Simulator sim;
    gpu::Device device(sim, spec);
    vcuda::Runtime runtime(sim, device);
    des::CountdownLatch done(sim, static_cast<std::size_t>(nprocs));
    for (int p = 0; p < nprocs; ++p) {
      sim.spawn([](vcuda::Runtime& rt, des::CountdownLatch& done)
                    -> des::Task<> {
        auto ctx = co_await rt.create_context();
        done.count_down();
      }(runtime, done));
    }
    sim.spawn([](des::Simulator& s, des::CountdownLatch& done,
                 model::ExecutionProfile& p) -> des::Task<> {
      co_await done.wait();
      p.t_init = s.now();
    }(sim, done, profile));
    sim.run();
  }

  // Per-stage times of a single task cycle under one private context.
  {
    des::Simulator sim;
    gpu::Device device(sim, spec);
    vcuda::Runtime runtime(sim, device);
    sim.spawn([](des::Simulator& s, vcuda::Runtime& rt, const TaskPlan& plan,
                 model::ExecutionProfile& p) -> des::Task<> {
      auto ctx = co_await rt.create_context();
      vcuda::DeviceBuffer dev_in, dev_out;
      if (plan.bytes_in > 0) dev_in = *ctx->malloc(plan.bytes_in);
      if (plan.bytes_out > 0) dev_out = *ctx->malloc(plan.bytes_out);

      SimTime t0 = s.now();
      if (plan.bytes_in > 0) {
        co_await ctx->memcpy_h2d(dev_in, nullptr, plan.bytes_in);
      }
      p.t_data_in = s.now() - t0;

      t0 = s.now();
      for (const auto& k : plan.kernels) co_await ctx->launch_sync(k);
      p.t_comp = s.now() - t0;

      t0 = s.now();
      if (plan.bytes_out > 0) {
        co_await ctx->memcpy_d2h(nullptr, dev_out, plan.bytes_out);
      }
      p.t_data_out = s.now() - t0;
    }(sim, runtime, plan, profile));
    sim.run();
  }

  // Tctx_switch: two contexts alternating a minimal operation; the switch
  // cost is the measured total minus the operations themselves.
  {
    des::Simulator sim;
    gpu::Device device(sim, spec);
    vcuda::Runtime runtime(sim, device);
    sim.spawn([](des::Simulator& s, vcuda::Runtime& rt,
                 model::ExecutionProfile& p) -> des::Task<> {
      auto ctx1 = co_await rt.create_context();
      auto ctx2 = co_await rt.create_context();
      auto b1 = *ctx1->malloc(256);
      auto b2 = *ctx2->malloc(256);
      // Warm: measure op cost with no switch.
      SimTime t0 = s.now();
      co_await ctx1->memcpy_h2d(b1, nullptr, 256);
      const SimDuration op = s.now() - t0;
      // Alternate contexts: each hop pays one switch plus the op.
      t0 = s.now();
      co_await ctx2->memcpy_h2d(b2, nullptr, 256);
      co_await ctx1->memcpy_h2d(b1, nullptr, 256);
      const SimDuration two_hops = s.now() - t0;
      p.t_ctx_switch = (two_hops - 2 * op) / 2;
    }(sim, runtime, profile));
    sim.run();
  }

  return profile;
}

}  // namespace vgpu::gvm
