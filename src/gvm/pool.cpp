#include "gvm/pool.hpp"

#include <algorithm>

#include "common/stats.hpp"

namespace vgpu::gvm {

// ---------------------------------------------------------------------------
// DevicePoolGvm
// ---------------------------------------------------------------------------

DevicePoolGvm::DevicePoolGvm(des::Simulator& sim,
                             const std::vector<vcuda::Runtime*>& runtimes,
                             PoolConfig config)
    : sim_(sim),
      config_(std::move(config)),
      placement_(sched::Placement::make(config_.placement)) {
  VGPU_ASSERT(!runtimes.empty());
  for (vcuda::Runtime* runtime : runtimes) {
    gvms_.push_back(std::make_unique<Gvm>(sim, *runtime, config_.gvm));
  }
  stats_.per_device_placements.assign(gvms_.size(), 0);
}

void DevicePoolGvm::start() {
  for (auto& g : gvms_) g->start();
  if (config_.rebalance) sim_.spawn(rebalance_loop());
}

des::Task<> DevicePoolGvm::wait_ready() {
  for (auto& g : gvms_) co_await g->ready().wait();
}

int DevicePoolGvm::device_of(int client) const {
  auto it = device_of_.find(client);
  return it == device_of_.end() ? -1 : it->second;
}

int DevicePoolGvm::warm_device(int client) const {
  auto it = warm_.find(client);
  return it == warm_.end() ? -1 : it->second;
}

sched::DeviceLoad DevicePoolGvm::load_of(std::size_t device) const {
  sched::DeviceLoad d = gvms_[device]->load();
  d.device = static_cast<int>(device);
  return d;
}

des::Task<int> DevicePoolGvm::place(int client, const TaskPlan& plan) {
  std::vector<sched::DeviceLoad> loads;
  loads.reserve(gvms_.size());
  for (std::size_t i = 0; i < gvms_.size(); ++i) loads.push_back(load_of(i));

  sched::PlacementRequest request;
  request.client = client;
  request.bytes = plan.bytes_in + plan.bytes_out;
  for (const auto& k : plan.kernels) request.compute_cost += k.total_flops();
  request.warm_device = warm_device(client);

  const int device = placement_->choose(request, loads);
  if (device < 0) co_return -1;
  ++stats_.placements;
  ++stats_.per_device_placements[static_cast<std::size_t>(device)];
  if (request.warm_device >= 0) {
    ++(device == request.warm_device ? stats_.warm_hits : stats_.cold_moves);
  }
  std::set<int>& replicas = installed_[client];
  if (replicas.insert(device).second) {
    ++stats_.installs;
    if (config_.model_installs && plan.bytes_in > 0) {
      co_await sim_.delay(transfer_time(plan.bytes_in, config_.install_bw));
    }
  }
  device_of_[client] = device;
  warm_[client] = device;
  co_return device;
}

int DevicePoolGvm::pick_migratable(int device) const {
  for (const auto& [client, dev] : device_of_) {
    if (dev != device) continue;
    if (want_migrate_.find(client) != want_migrate_.end()) continue;
    if (!gvms_[static_cast<std::size_t>(device)]->has_client(client)) continue;
    return client;
  }
  return -1;
}

des::Task<bool> DevicePoolGvm::checkpoint(int client) {
  auto want = want_migrate_.find(client);
  if (want == want_migrate_.end()) co_return false;
  const int dst = want->second;
  want_migrate_.erase(want);
  const int src = device_of(client);
  if (src < 0 || dst < 0 || dst == src ||
      dst >= static_cast<int>(gvms_.size())) {
    ++stats_.failed_migrations;
    co_return false;
  }
  co_return co_await migrate(client, src, dst);
}

des::Task<bool> DevicePoolGvm::migrate(int client, int src, int dst) {
  auto exported =
      co_await gvms_[static_cast<std::size_t>(src)]->export_client(client);
  if (!exported.ok()) {
    ++stats_.failed_migrations;
    co_return false;
  }
  const Bytes moved = exported->working_set();
  Status imported =
      co_await gvms_[static_cast<std::size_t>(dst)]->import_client(client,
                                                                   *exported);
  if (!imported.ok()) {
    // Bounce back: the export just freed the source's memory, so the
    // re-import fits — modulo a REQ admitted in the window, in which case
    // poll like any backpressured client until rounds complete.
    ++stats_.bounced_migrations;
    for (;;) {
      Status back = co_await gvms_[static_cast<std::size_t>(src)]
                        ->import_client(client, *exported);
      if (back.ok()) break;
      co_await sim_.delay(config_.gvm.poll_interval);
    }
    co_return false;
  }
  device_of_[client] = dst;
  warm_[client] = dst;
  installed_[client].insert(dst);  // the move staged the working set
  ++stats_.migrations;
  stats_.migrated_bytes += moved;
  co_return true;
}

des::Task<StatusOr<MigratedClient>> DevicePoolGvm::export_for_transfer(
    int client) {
  const int src = device_of(client);
  if (src < 0) {
    co_return NotFound("client " + std::to_string(client) +
                       " is not placed in this pool");
  }
  auto exported =
      co_await gvms_[static_cast<std::size_t>(src)]->export_client(client);
  if (exported.ok()) {
    device_of_.erase(client);
    want_migrate_.erase(client);
  }
  co_return exported;
}

des::Task<Status> DevicePoolGvm::adopt(int client, MigratedClient& state) {
  co_await place(client, state.plan);
  const int device = device_of(client);
  if (device < 0) co_return ResourceExhausted("empty pool");
  Status imported =
      co_await gvms_[static_cast<std::size_t>(device)]->import_client(client,
                                                                      state);
  if (!imported.ok()) device_of_.erase(client);
  co_return imported;
}

des::Task<> DevicePoolGvm::rebalance_loop() {
  while (!stopping_) {
    co_await sim_.delay(config_.rebalance_interval);
    if (stopping_) break;
    ++stats_.rebalance_checks;
    int busiest = -1, idlest = -1;
    int busiest_pending = -1, idlest_pending = 0;
    for (std::size_t i = 0; i < gvms_.size(); ++i) {
      const int pending = load_of(i).pending;
      if (pending > busiest_pending) {
        busiest_pending = pending;
        busiest = static_cast<int>(i);
      }
      if (idlest < 0 || pending < idlest_pending) {
        idlest_pending = pending;
        idlest = static_cast<int>(i);
      }
    }
    if (busiest < 0 || idlest < 0 || busiest == idlest) continue;
    if (busiest_pending - idlest_pending < config_.rebalance_min_gap) continue;
    const int client = pick_migratable(busiest);
    if (client >= 0) direct(client, idlest);
  }
}

// ---------------------------------------------------------------------------
// PoolClient
// ---------------------------------------------------------------------------

PoolClient::PoolClient(des::Simulator& sim, DevicePoolGvm& pool, int id)
    : sim_(sim), pool_(&pool), id_(id) {}

void PoolClient::rebind() {
  if (vc_) waits_ += vc_->waits_observed();
  const int device = pool_->device_of(id_);
  VGPU_ASSERT_MSG(device >= 0, "rebind of an unplaced client");
  vc_ = std::make_unique<VGpuClient>(
      sim_, pool_->gvm(static_cast<std::size_t>(device)), id_);
}

long PoolClient::waits_observed() const {
  return waits_ + (vc_ ? vc_->waits_observed() : 0);
}

des::Task<Status> PoolClient::req(TaskPlan plan) {
  const int device = co_await pool_->place(id_, plan);
  if (device < 0) co_return ResourceExhausted("empty device pool");
  rebind();
  const Status admitted = co_await vc_->req(std::move(plan));
  if (!admitted.ok()) pool_->forget(id_);
  co_return admitted;
}

des::Task<> PoolClient::round() {
  if (hook_) {
    DevicePoolGvm* moved = co_await hook_(id_);
    // Non-null means the client was re-placed — possibly onto a different
    // device of the same pool (a bounced adoption) — so always rebind.
    if (moved != nullptr) {
      pool_ = moved;
      rebind();
    }
  }
  if (co_await pool_->checkpoint(id_)) rebind();
  co_await vc_->snd();
  co_await vc_->str();
  co_await vc_->wait_done();
  co_await vc_->rcv();
}

des::Task<> PoolClient::rls() {
  co_await vc_->rls();
  pool_->on_release(id_);
}

des::Task<> PoolClient::run_task(TaskPlan plan, int rounds) {
  VGPU_ASSERT(rounds >= 1);
  const Status admitted = co_await req(std::move(plan));
  VGPU_ASSERT_MSG(admitted.ok(), admitted.to_string().c_str());
  for (int r = 0; r < rounds; ++r) co_await round();
  co_await rls();
}

// ---------------------------------------------------------------------------
// run_pool
// ---------------------------------------------------------------------------

double PoolRunResult::p95_seconds() const {
  if (session_seconds.empty()) return 0.0;
  return percentile(session_seconds, 0.95);
}

double PoolRunResult::mean_seconds() const {
  if (session_seconds.empty()) return 0.0;
  double sum = 0.0;
  for (double s : session_seconds) sum += s;
  return sum / static_cast<double>(session_seconds.size());
}

PoolRunResult run_pool(const std::vector<gpu::DeviceSpec>& specs,
                       PoolConfig config,
                       const std::vector<PoolClientSpec>& clients) {
  VGPU_ASSERT(!specs.empty() && !clients.empty());
  des::Simulator sim;
  std::vector<std::unique_ptr<gpu::Device>> devices;
  std::vector<std::unique_ptr<vcuda::Runtime>> runtimes;
  std::vector<vcuda::Runtime*> runtime_ptrs;
  for (const gpu::DeviceSpec& spec : specs) {
    devices.push_back(std::make_unique<gpu::Device>(sim, spec));
    runtimes.push_back(std::make_unique<vcuda::Runtime>(sim, *devices.back()));
    runtime_ptrs.push_back(runtimes.back().get());
  }
  DevicePoolGvm pool(sim, runtime_ptrs, std::move(config));
  pool.start();

  PoolRunResult result;
  sim.spawn([](des::Simulator& sim, DevicePoolGvm& pool,
               const std::vector<PoolClientSpec>& clients,
               PoolRunResult& out) -> des::Task<> {
    co_await pool.wait_ready();
    const SimTime t0 = sim.now();
    des::CountdownLatch done(sim, clients.size());
    for (std::size_t i = 0; i < clients.size(); ++i) {
      sim.spawn([](des::Simulator& sim, DevicePoolGvm& pool, int id,
                   const PoolClientSpec& spec, PoolRunResult& out,
                   des::CountdownLatch& done) -> des::Task<> {
        co_await sim.delay(spec.arrival);
        PoolClient client(sim, pool, id);
        for (int s = 0; s < spec.sessions; ++s) {
          if (s > 0) co_await sim.delay(spec.think);
          const SimTime begin = sim.now();
          co_await client.run_task(spec.plan, spec.rounds);
          out.session_seconds.push_back(to_seconds(sim.now() - begin));
        }
        out.client_waits += client.waits_observed();
        done.count_down();
      }(sim, pool, static_cast<int>(i), clients[i], out, done));
    }
    co_await done.wait();
    out.makespan = sim.now() - t0;
    pool.stop();
  }(sim, pool, clients, result));
  sim.run();

  result.pool = pool.stats();
  for (std::size_t i = 0; i < pool.device_count(); ++i) {
    const GvmStats& s = pool.gvm(i).stats();
    result.gvm.requests += s.requests;
    result.gvm.flushes += s.flushes;
    result.gvm.waits_sent += s.waits_sent;
    result.gvm.bytes_staged_in += s.bytes_staged_in;
    result.gvm.bytes_staged_out += s.bytes_staged_out;
    result.gvm.migrations_out += s.migrations_out;
    result.gvm.migrations_in += s.migrations_in;
    result.sched_migrated += pool.gvm(i).scheduler().stats().migrated;
    result.residual_device_bytes.push_back(devices[i]->memory_used());
    result.residual_sched_clients.push_back(pool.gvm(i).scheduler().clients());
  }
  return result;
}

}  // namespace vgpu::gvm
