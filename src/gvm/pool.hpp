// Device-pool GVM: N modeled GPUs behind one admission/scheduling front
// door — the multi-GPU generalization the journal extension of the source
// paper (Li et al., arXiv:1511.07658) builds toward.
//
// Three pieces on top of the per-device Gvm:
//
//   * a placement layer (src/sched/placement.hpp): at REQ time the pool
//     snapshots live per-device load (outstanding rounds, attached
//     clients, free memory) and asks the configured policy — static /
//     pack / spread / locality — for a device;
//
//   * a node-level router: clients hold a PoolClient instead of a raw
//     VGpuClient; every verb resolves through the pool's client→device
//     map, so a client can move between devices mid-workload and never
//     notices (replaces MultiGvm::gvm_for's static modulo);
//
//   * cross-device migration: Gvm::export_client drains a client between
//     rounds (D2H snapshot, device memory and scheduler state drop to
//     zero on the source), Gvm::import_client restores it on the target
//     (H2D sweep). The pool's rebalancer directs moves from the busiest
//     to the idlest device; the move itself executes at the client's next
//     round boundary, so no in-flight round is ever split.
//
// The pool also models per-(client, device) dataset replicas: the first
// session a client runs on a device pays a one-time install (staging its
// partition), later sessions on the same device reuse the replica. This is
// the residency signal the locality policy trades against load balance.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "gvm/experiment.hpp"
#include "gvm/gvm.hpp"
#include "sched/placement.hpp"

namespace vgpu::gvm {

struct PoolConfig {
  /// Per-device GVM configuration. The default width-1 barrier flushes
  /// every STR immediately — the right default for heterogeneous pool
  /// populations (a strict SPMD cohort should use MultiGvm or kStatic
  /// placement with per-device widths).
  GvmConfig gvm;

  sched::PlacementConfig placement;

  /// One-time dataset install: staging a client's input partition onto a
  /// device that has never served it (host -> device-local staging).
  bool model_installs = true;
  BytesPerSecond install_bw = gb_per_s(8.0);

  /// Pool-initiated rebalancing: periodically direct one quiescent client
  /// from the busiest device to the idlest (executed at the client's next
  /// round boundary through the migration path).
  bool rebalance = false;
  SimDuration rebalance_interval = milliseconds(2.0);
  /// Minimum outstanding-rounds gap (busiest - idlest) before a move.
  int rebalance_min_gap = 2;
};

struct PoolStats {
  long placements = 0;
  long warm_hits = 0;      // returning client landed on its warm device
  long cold_moves = 0;     // returning client landed elsewhere
  long installs = 0;       // dataset replicas staged (one-time per pair)
  long migrations = 0;     // completed cross-device moves
  long bounced_migrations = 0;  // import refused; client returned to source
  long failed_migrations = 0;   // directive dropped (client mid-round/gone)
  long rebalance_checks = 0;
  Bytes migrated_bytes = 0;  // working-set bytes moved between devices
  std::vector<long> per_device_placements;
};

class DevicePoolGvm {
 public:
  DevicePoolGvm(des::Simulator& sim,
                const std::vector<vcuda::Runtime*>& runtimes,
                PoolConfig config);

  /// Starts every device GVM (and the rebalancer, when configured).
  void start();
  /// Stops the rebalancer loop so the simulation can drain.
  void stop() { stopping_ = true; }

  des::Task<> wait_ready();

  std::size_t device_count() const { return gvms_.size(); }
  Gvm& gvm(std::size_t i) { return *gvms_[i]; }
  const PoolStats& stats() const { return stats_; }
  const PoolConfig& config() const { return config_; }
  const sched::Placement& placement() const { return *placement_; }

  /// The device currently serving `client`; -1 when unplaced.
  int device_of(int client) const;
  /// The device holding `client`'s warm dataset replica; -1 when cold.
  int warm_device(int client) const;

  /// Chooses a device for `client` + `plan` (placement policy over live
  /// load), records the routing and charges the one-time dataset install
  /// when the device is cold for this client. Returns the device index,
  /// or -1 when the pool is empty.
  des::Task<int> place(int client, const TaskPlan& plan);

  /// Directs `client` to `device` at its next round boundary (the
  /// PoolClient checkpoint executes it). Idempotent; a directive to the
  /// client's current device is dropped at the checkpoint.
  void direct(int client, int device) { want_migrate_[client] = device; }

  /// Round-boundary checkpoint: executes a pending migration directive.
  /// Returns true when the client moved (callers rebind their per-device
  /// handle).
  des::Task<bool> checkpoint(int client);

  /// Deterministically picks a movable client on `device` (lowest id,
  /// attached, not already directed); -1 when none. The move itself
  /// executes at the client's next round boundary, where it is quiescent
  /// by construction.
  int pick_migratable(int device) const;

  /// Cross-pool hand-off (federation): export `client` entirely out of
  /// this pool (its routing forgets it) / adopt an exported client into
  /// this pool through placement + import.
  des::Task<StatusOr<MigratedClient>> export_for_transfer(int client);
  des::Task<Status> adopt(int client, MigratedClient& state);

  /// Routing bookkeeping called by PoolClient.
  void on_release(int client) { device_of_.erase(client); }
  void forget(int client) { device_of_.erase(client); }

 private:
  des::Task<> rebalance_loop();
  des::Task<bool> migrate(int client, int src, int dst);
  sched::DeviceLoad load_of(std::size_t device) const;

  des::Simulator& sim_;
  PoolConfig config_;
  std::vector<std::unique_ptr<Gvm>> gvms_;
  std::unique_ptr<sched::Placement> placement_;
  std::map<int, int> device_of_;   // current routing
  std::map<int, int> warm_;        // last device serving the client
  std::map<int, std::set<int>> installed_;  // dataset replicas per client
  std::map<int, int> want_migrate_;         // pending directives
  bool stopping_ = false;
  PoolStats stats_;
};

/// The router-aware client: drives the GVM protocol like VGpuClient but
/// resolves its device through the pool on every (re)bind, so placement
/// decisions and cross-device migrations are transparent to the workload.
class PoolClient {
 public:
  /// Federation hook, run at every round boundary before the pool's own
  /// checkpoint: returns the pool now serving the client whenever the
  /// client was re-placed (even back into the same pool after a bounced
  /// adoption — the device may differ), or nullptr for "unchanged".
  using MigrateHook = std::function<des::Task<DevicePoolGvm*>(int client)>;

  PoolClient(des::Simulator& sim, DevicePoolGvm& pool, int id);

  int id() const { return id_; }
  DevicePoolGvm& pool() { return *pool_; }
  void set_migrate_hook(MigrateHook hook) { hook_ = std::move(hook); }

  /// Placement + REQ on the chosen device.
  des::Task<Status> req(TaskPlan plan);
  /// One round: migration checkpoint, then SND / STR / STP... / RCV.
  des::Task<> round();
  des::Task<> rls();
  /// Convenience: req + `rounds` x round() + rls.
  des::Task<> run_task(TaskPlan plan, int rounds);

  long waits_observed() const;

 private:
  void rebind();

  des::Simulator& sim_;
  DevicePoolGvm* pool_;
  int id_;
  long waits_ = 0;
  MigrateHook hook_;
  std::unique_ptr<VGpuClient> vc_;
};

/// One client of a pool workload: sessions of `rounds` rounds separated by
/// think time — the re-attach pattern that gives the locality policy its
/// signal.
struct PoolClientSpec {
  TaskPlan plan;
  int rounds = 1;
  int sessions = 1;
  SimDuration arrival = 0;
  SimDuration think = 0;
};

struct PoolRunResult {
  SimDuration makespan = 0;
  /// Per-session turnaround (req -> rls), seconds.
  std::vector<double> session_seconds;
  PoolStats pool;
  GvmStats gvm;          // summed over devices
  long sched_migrated = 0;  // summed Scheduler::stats().migrated
  long client_waits = 0;
  /// Post-run drain oracle: device memory still allocated and scheduler
  /// clients still registered, per device (all zero after a clean run).
  std::vector<Bytes> residual_device_bytes;
  std::vector<std::size_t> residual_sched_clients;

  double p95_seconds() const;
  double mean_seconds() const;
};

/// Runs a heterogeneous client population against a device pool (one
/// simulated device per spec) and measures per-session turnaround.
PoolRunResult run_pool(const std::vector<gpu::DeviceSpec>& specs,
                       PoolConfig config,
                       const std::vector<PoolClientSpec>& clients);

}  // namespace vgpu::gvm
