// The GPU Virtualization Manager (GVM) — the paper's core contribution.
//
// A single run-time process owns the only GPU context and exposes one
// Virtual GPU per client process. Per client it maintains a CUDA stream,
// a device buffer pair and a pinned host staging buffer; data moves
// client <-> virtual shared memory <-> pinned staging <-> device. Requests
// arrive over a message queue; STR requests are barrier-synchronized so
// that all clients' streams flush together — the precondition for
// concurrent kernel execution and copy/compute overlap on Fermi.
//
// This is the deterministic (DES) implementation used for reproducing the
// paper's figures; src/rt hosts the live POSIX shm/mq implementation of the
// same protocol.
#pragma once

#include <map>
#include <memory>

#include "common/status.hpp"
#include "des/channel.hpp"
#include "des/sim.hpp"
#include "des/sync.hpp"
#include "gvm/protocol.hpp"
#include "sched/admission.hpp"
#include "sched/placement.hpp"
#include "sched/scheduler.hpp"
#include "vcuda/runtime.hpp"

namespace vgpu::gvm {

/// Order in which the GVM flushes client streams at the STR barrier.
/// Smallest-first fills the pipeline fastest (the first kernel starts as
/// soon as the smallest transfer lands); FIFO is the paper's behaviour.
/// (Now owned by src/sched; aliased here for existing call sites.)
using FlushOrder = sched::FlushOrder;

struct GvmConfig {
  /// STR barrier width: the SPMD process count. The GVM flushes all
  /// streams when this many clients have sent STR.
  int expected_clients = 1;

  /// Host memcpy bandwidth for the vsm <-> pinned staging hops. The GVM is
  /// a single process, so these copies serialize — the dominant
  /// virtualization overhead (paper Figure 10).
  BytesPerSecond host_memcpy_bw = gb_per_s(12.0);

  /// One-way message-queue latency per protocol message.
  SimDuration msg_latency = microseconds(5.0);

  /// Client STP re-poll interval after a WAIT response.
  SimDuration poll_interval = microseconds(20.0);

  /// Ablation knobs.
  bool use_barriers = true;     // false: flush each STR immediately
  bool pinned_staging = true;   // false: pageable transfers (no overlap win)
  bool model_staging_copies = true;  // false: zero-cost shm hops (Fig 10)
  FlushOrder flush_order = FlushOrder::kFifo;

  /// Memory-pressure handling: when a REQ cannot be satisfied because
  /// device memory is oversubscribed, the GVM suspends idle clients
  /// (snapshotting their device state to host) until the allocation fits.
  /// A suspended client is transparently resumed before its next flush.
  /// Routed through the admission controller's oversubscription mode.
  bool auto_suspend_on_pressure = false;

  /// Scheduling policy (src/sched). For the default kBarrierCoFlush
  /// policy the barrier width and flush order are derived from the legacy
  /// `expected_clients` / `use_barriers` / `flush_order` knobs above, so
  /// existing configurations behave exactly as before.
  sched::SchedulerConfig sched;

  /// Per-client device-memory quota enforced at REQ; 0 = unlimited.
  /// Requests over quota are permanently denied (kDenied).
  Bytes per_client_quota = 0;
};

struct GvmStats {
  long requests = 0;
  long flushes = 0;
  long waits_sent = 0;     // STP polls answered WAIT
  Bytes bytes_staged_in = 0;
  Bytes bytes_staged_out = 0;
  long pressure_suspends = 0;  // auto-suspends due to memory pressure
  long pressure_resumes = 0;   // transparent resumes before a flush
  long migrations_out = 0;     // clients exported to another device
  long migrations_in = 0;      // clients imported from another device
};

/// A client in flight between two GVMs (cross-device migration): its plan
/// plus the host-side snapshot of its device buffers. Produced by
/// Gvm::export_client between rounds, consumed by Gvm::import_client.
struct MigratedClient {
  TaskPlan plan;
  std::shared_ptr<std::vector<std::byte>> saved_in;
  std::shared_ptr<std::vector<std::byte>> saved_out;
  SimTime last_active = 0;

  Bytes working_set() const { return plan.bytes_in + plan.bytes_out; }
};

class Gvm {
 public:
  Gvm(des::Simulator& sim, vcuda::Runtime& runtime, GvmConfig config);
  Gvm(const Gvm&) = delete;
  Gvm& operator=(const Gvm&) = delete;
  ~Gvm();

  /// Spawns the GVM: driver init, context creation, then the serve loop.
  /// Await `ready()` before starting clients.
  void start();

  des::OneShotEvent& ready() { return ready_; }
  const GvmStats& stats() const { return stats_; }
  const GvmConfig& config() const { return config_; }
  vcuda::Context* context() { return context_.get(); }
  const sched::Scheduler& scheduler() const { return *scheduler_; }
  const sched::AdmissionController& admission() const { return admission_; }

  /// Pure GPU time spent on behalf of clients (sum of device busy time);
  /// the paper's Figure 10 baseline for overhead measurement.
  SimDuration gpu_time() const;

  // --- device-pool API (DevicePoolGvm / federation) ------------------------

  /// Live load snapshot for the placement layer (`device` left at -1; the
  /// pool indexes it).
  sched::DeviceLoad load() const;

  bool has_client(int client) const {
    return clients_.find(client) != clients_.end();
  }

  /// True when `client` is between rounds: attached, no buffered STR and
  /// an idle (or snapshotted) stream — the only state export_client
  /// accepts.
  bool quiescent(int client) const;

  /// Drains `client` off this GVM: snapshots its device buffers to host
  /// (charging the D2H sweep), frees the device allocation and removes the
  /// client from the scheduler — the source device's memory and scheduler
  /// state for the client drain to zero. Fails (kFailedPrecondition)
  /// mid-round; callers migrate at round boundaries.
  des::Task<StatusOr<MigratedClient>> export_client(int client);

  /// Re-creates an exported client here: admission-checks the footprint,
  /// allocates stream + buffers and restores the snapshot (charging the
  /// H2D sweep). kUnavailable under transient memory pressure; on any
  /// failure `state` is left intact so the caller can re-import elsewhere
  /// (typically back to the source, whose memory the export just freed).
  des::Task<Status> import_client(int client, MigratedClient& state);

 private:
  friend class VGpuClient;

  struct ClientState {
    TaskPlan plan;
    vcuda::Stream* stream = nullptr;
    vcuda::DeviceBuffer dev_in;
    vcuda::DeviceBuffer dev_out;
    vcuda::PinnedBuffer staging;  // page-locked staging for both directions
    bool str_pending = false;  // buffered STR awaiting a scheduler grant
    bool suspended = false;
    SimTime last_active = 0;  // last protocol message (LRU eviction order)
    // Host-side snapshots of the device buffers while suspended.
    std::shared_ptr<std::vector<std::byte>> saved_in;
    std::shared_ptr<std::vector<std::byte>> saved_out;
  };

  /// Client-side hooks (called by VGpuClient).
  void submit(Request request) { requests_.send(request); }
  des::Channel<Response>& response_channel(int client);
  void register_plan(int client, TaskPlan plan) {
    pending_plans_[client] = std::move(plan);
  }
  void drop_plan(int client) { pending_plans_.erase(client); }

  des::Task<> run();
  des::Task<> handle(Request request);   // traces, then dispatches
  des::Task<> dispatch(Request request);
  des::Task<> handle_req(int client);
  des::Task<> handle_snd(int client);
  des::Task<> handle_str(int client);
  des::Task<> handle_stp(int client);
  des::Task<> handle_rcv(int client);
  des::Task<> handle_rls(int client);
  des::Task<> handle_sus(int client);
  des::Task<> handle_res(int client);
  des::Task<> suspend_client(ClientState& state);
  des::Task<> resume_client(ClientState& state);
  /// Suspends idle clients (excluding `except`) until `needed` device
  /// bytes are free or no candidates remain (LRU order, via the
  /// admission controller's eviction planner).
  des::Task<> relieve_pressure(Bytes needed, int except);
  Bytes device_free() const;
  /// Evictable residents for the admission controller (excluding
  /// `except`): idle streams with valid device buffers, not suspended,
  /// not awaiting a grant.
  std::vector<sched::AdmissionController::Victim> victims(int except) const;
  /// Drains scheduler grants: flushes every granted client's stream and
  /// ACKs its STR, repeating until the scheduler has nothing runnable.
  des::Task<> pump();
  /// Awaits a granted round's completion, then notifies the scheduler
  /// and pumps again (e.g. to hand a freed time quantum to the next
  /// client).
  des::Task<> watch_round(int client, vcuda::Stream* stream, SimTime granted);
  /// Arms a timer at the scheduler's next requested wakeup (time-quantum
  /// expiry), if any.
  void arm_wakeup();
  des::Task<> flush_stream(int client, ClientState& state);
  void respond(int client, ResponseType type);
  SimDuration staging_time(Bytes bytes) const;

  des::Simulator& sim_;
  vcuda::Runtime& runtime_;
  GvmConfig config_;
  des::OneShotEvent ready_;
  des::Channel<Request> requests_;
  std::map<int, std::unique_ptr<des::Channel<Response>>> responses_;
  std::map<int, TaskPlan> pending_plans_;  // handed over at REQ
  std::map<int, ClientState> clients_;
  std::unique_ptr<vcuda::Context> context_;
  std::unique_ptr<sched::Scheduler> scheduler_;
  sched::AdmissionController admission_;
  SimTime armed_wakeup_ = kTimeInfinity;  // earliest pending pump timer
  GvmStats stats_;
};

/// The user-process API layer: exposes the VGPU abstraction over the
/// GVM protocol, mirroring the paper's SND()/STR()/STP()/RCV()/RLS()
/// routines. Each call is an awaitable DES task.
class VGpuClient {
 public:
  VGpuClient(des::Simulator& sim, Gvm& gvm, int id);

  int id() const { return id_; }

  /// REQ: registers the task plan and obtains VGPU resources. Under
  /// transient memory pressure (kRetry) the client re-polls like STP;
  /// a permanent denial (over quota) returns kResourceExhausted.
  des::Task<Status> req(TaskPlan plan);
  /// SND: input data (already in virtual shared memory) is staged.
  des::Task<> snd();
  /// STR: start execution; returns when the GVM has flushed the streams.
  des::Task<> str();
  /// STP polling loop: resends STP until the GVM answers ACK.
  des::Task<> wait_done();
  /// RCV: results are available in virtual shared memory.
  des::Task<> rcv();
  /// RLS: release VGPU resources.
  des::Task<> rls();
  /// SUS: snapshot device state to host and free the device allocation.
  /// Polls (like STP) while the stream still has work in flight.
  des::Task<> suspend();
  /// RES: restore the snapshot onto freshly allocated device buffers.
  des::Task<> resume();

  /// Convenience: REQ + `rounds` x (SND, STR, STP..., RCV) + RLS.
  des::Task<> run_task(TaskPlan plan, int rounds);

  /// Number of STP polls that returned WAIT (diagnostics).
  long waits_observed() const { return waits_; }

 private:
  des::Task<Response> call(RequestType type);

  des::Simulator& sim_;
  Gvm& gvm_;
  int id_;
  long waits_ = 0;
};

}  // namespace vgpu::gvm
