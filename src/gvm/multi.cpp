#include "gvm/multi.hpp"

namespace vgpu::gvm {

MultiGvm::MultiGvm(des::Simulator& sim,
                   const std::vector<vcuda::Runtime*>& runtimes,
                   GvmConfig base, int expected_clients) {
  VGPU_ASSERT(!runtimes.empty());
  VGPU_ASSERT(expected_clients >= 1);
  const int ngpus = static_cast<int>(runtimes.size());
  for (int g = 0; g < ngpus; ++g) {
    GvmConfig config = base;
    // Round-robin placement: device g serves clients g, g+ngpus, ...
    config.expected_clients =
        expected_clients / ngpus + (g < expected_clients % ngpus ? 1 : 0);
    if (config.expected_clients == 0) config.expected_clients = 1;
    gvms_.push_back(std::make_unique<Gvm>(
        sim, *runtimes[static_cast<std::size_t>(g)], config));
  }
}

void MultiGvm::start() {
  for (auto& g : gvms_) g->start();
}

des::Task<> MultiGvm::wait_ready() {
  for (auto& g : gvms_) co_await g->ready().wait();
}

RunResult run_virtualized_multi(const std::vector<gpu::DeviceSpec>& specs,
                                GvmConfig config, const TaskPlan& plan,
                                int rounds, int nprocs) {
  VGPU_ASSERT(!specs.empty() && nprocs >= 1 && rounds >= 1);
  des::Simulator sim;
  std::vector<std::unique_ptr<gpu::Device>> devices;
  std::vector<std::unique_ptr<vcuda::Runtime>> runtimes;
  std::vector<vcuda::Runtime*> runtime_ptrs;
  for (const gpu::DeviceSpec& spec : specs) {
    devices.push_back(std::make_unique<gpu::Device>(sim, spec));
    runtimes.push_back(std::make_unique<vcuda::Runtime>(sim, *devices.back()));
    runtime_ptrs.push_back(runtimes.back().get());
  }
  MultiGvm multi(sim, runtime_ptrs, config, nprocs);
  multi.start();

  RunResult result;
  sim.spawn([](des::Simulator& s, MultiGvm& multi, const TaskPlan& plan,
               int rounds, int nprocs, RunResult& out) -> des::Task<> {
    co_await multi.wait_ready();
    const SimTime t0 = s.now();
    des::CountdownLatch done(s, static_cast<std::size_t>(nprocs));
    for (int p = 0; p < nprocs; ++p) {
      s.spawn([](des::Simulator& s, Gvm& gvm, int id, TaskPlan plan,
                 int rounds, des::CountdownLatch& done) -> des::Task<> {
        VGpuClient client(s, gvm, id);
        co_await client.run_task(std::move(plan), rounds);
        done.count_down();
      }(s, multi.gvm_for(p), p, plan, rounds, done));
    }
    co_await done.wait();
    out.turnaround = s.now() - t0;
  }(sim, multi, plan, rounds, nprocs, result));
  sim.run();

  for (std::size_t i = 0; i < multi.device_count(); ++i) {
    const GvmStats& s = multi.gvm(i).stats();
    result.gvm.requests += s.requests;
    result.gvm.flushes += s.flushes;
    result.gvm.waits_sent += s.waits_sent;
    result.gvm.bytes_staged_in += s.bytes_staged_in;
    result.gvm.bytes_staged_out += s.bytes_staged_out;
  }
  // Aggregate device stats (sum over devices).
  for (const auto& dev : devices) {
    const gpu::DeviceStats& s = dev->stats();
    result.device.ctx_creates += s.ctx_creates;
    result.device.ctx_switches += s.ctx_switches;
    result.device.kernels_completed += s.kernels_completed;
    result.device.chunks_executed += s.chunks_executed;
    result.device.copies += s.copies;
    result.device.bytes_h2d += s.bytes_h2d;
    result.device.bytes_d2h += s.bytes_d2h;
    result.device.max_open_kernels =
        std::max(result.device.max_open_kernels, s.max_open_kernels);
    result.pure_gpu_time += s.h2d_busy + s.kernel_busy + s.d2h_busy;
  }
  return result;
}

}  // namespace vgpu::gvm
