// Multi-GPU virtualization: an extension beyond the paper's single-GPU
// evaluation. One GVM instance per physical device; SPMD clients are
// partitioned round-robin, each GVM barriers over its own share — the
// paper's "virtualized unity ratio" generalized to nodes with several GPUs.
#pragma once

#include <memory>
#include <vector>

#include "gvm/experiment.hpp"
#include "gvm/gvm.hpp"

namespace vgpu::gvm {

class MultiGvm {
 public:
  /// One GVM per runtime; `expected_clients` is the total SPMD width,
  /// split round-robin across devices.
  MultiGvm(des::Simulator& sim,
           const std::vector<vcuda::Runtime*>& runtimes, GvmConfig base,
           int expected_clients);

  /// Starts every GVM instance.
  void start();

  /// Awaitable: all GVMs initialized.
  des::Task<> wait_ready();

  /// The GVM serving SPMD client `id` (round-robin placement).
  Gvm& gvm_for(int client_id) {
    return *gvms_[static_cast<std::size_t>(client_id) % gvms_.size()];
  }

  std::size_t device_count() const { return gvms_.size(); }
  Gvm& gvm(std::size_t i) { return *gvms_[i]; }

 private:
  std::vector<std::unique_ptr<Gvm>> gvms_;
};

/// Convenience driver mirroring run_virtualized for an N-GPU node: builds
/// one simulated device per spec, routes `nprocs` clients across them, and
/// measures the SPMD turnaround.
RunResult run_virtualized_multi(const std::vector<gpu::DeviceSpec>& specs,
                                GvmConfig config, const TaskPlan& plan,
                                int rounds, int nprocs);

}  // namespace vgpu::gvm
