// GVM wire protocol (paper Section V, Figure 8).
//
// Clients drive their Virtual GPU through six request types:
//
//   REQ  request VGPU resources (stream + device/pinned buffers)
//   SND  input data is in the client's virtual shared memory; stage it
//   STR  start executing the GPU program (barrier-synchronized)
//   STP  query execution status (ACK when done, WAIT otherwise)
//   RCV  retrieve results through the virtual shared memory
//   RLS  release VGPU resources
//
// and the GVM answers with ACK or WAIT.
#pragma once

#include <functional>
#include <vector>

#include "common/units.hpp"
#include "gpu/cost.hpp"
#include "vcuda/runtime.hpp"

namespace vgpu::gvm {

// kSus / kRes extend the paper's verb set with the suspend/resume facility
// its related work (vCUDA [9]) provides: the GVM snapshots a client's
// device state to host memory and releases the device allocation; resume
// restores it. A suspended client's VGPU survives device-memory pressure
// from other clients.
enum class RequestType { kReq, kSnd, kStr, kStp, kRcv, kRls, kSus, kRes };
// kRetry / kDenied are REQ backpressure from admission control: kRetry is
// transient device-memory pressure (re-send REQ after a poll interval);
// kDenied is permanent (the request exceeds the per-client quota or the
// device itself).
enum class ResponseType { kAck, kWait, kRetry, kDenied };

const char* request_type_name(RequestType t);
const char* response_type_name(ResponseType t);

/// What a client wants executed per round: input staging, an ordered kernel
/// sequence, output retrieval. `input` / `output` optionally carry real
/// host data for functional (verifiable) runs; `kernel_body` performs the
/// functional computation when the final kernel completes.
/// The device buffers the GVM allocated for a client; handed to the plan's
/// functional body so it can read staged input and write results.
struct TaskBuffers {
  vcuda::DeviceBuffer* in = nullptr;
  vcuda::DeviceBuffer* out = nullptr;
};

struct TaskPlan {
  Bytes bytes_in = 0;
  Bytes bytes_out = 0;
  std::vector<gpu::KernelLaunch> kernels;
  /// Optional functional computation, invoked when the round's last kernel
  /// completes, with the client's device input/output buffers.
  std::function<void(TaskBuffers&)> kernel_body;
  const void* input = nullptr;  // optional functional input (host)
  void* output = nullptr;       // optional functional output (host)
  bool backed = false;          // allocate backed device buffers
  /// Scheduling hints: only the priority-aging policy reads `priority`
  /// (higher runs first) and only fair-share reads `weight` (share of the
  /// device round-robin quantum).
  int priority = 0;
  double weight = 1.0;
};

struct Request {
  RequestType type = RequestType::kReq;
  int client = -1;
};

struct Response {
  ResponseType type = ResponseType::kAck;
};

}  // namespace vgpu::gvm
