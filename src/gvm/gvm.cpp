#include "gvm/gvm.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace vgpu::gvm {

const char* request_type_name(RequestType t) {
  switch (t) {
    case RequestType::kReq:
      return "REQ";
    case RequestType::kSnd:
      return "SND";
    case RequestType::kStr:
      return "STR";
    case RequestType::kStp:
      return "STP";
    case RequestType::kRcv:
      return "RCV";
    case RequestType::kRls:
      return "RLS";
    case RequestType::kSus:
      return "SUS";
    case RequestType::kRes:
      return "RES";
  }
  return "?";
}

const char* response_type_name(ResponseType t) {
  switch (t) {
    case ResponseType::kAck:
      return "ACK";
    case ResponseType::kWait:
      return "WAIT";
    case ResponseType::kRetry:
      return "RETRY";
    case ResponseType::kDenied:
      return "DENIED";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Gvm
// ---------------------------------------------------------------------------

namespace {

/// The effective scheduler configuration: for the default barrier
/// co-flush policy the barrier width and flush order come from the
/// legacy GvmConfig knobs, so pre-subsystem configurations reproduce
/// their exact behaviour (use_barriers=false is a width-1 barrier).
sched::SchedulerConfig effective_sched_config(const GvmConfig& config) {
  sched::SchedulerConfig sc = config.sched;
  if (sc.policy == sched::Policy::kBarrierCoFlush) {
    sc.barrier_width = config.use_barriers ? config.expected_clients : 1;
    sc.flush_order = config.flush_order;
  }
  return sc;
}

sched::AdmissionConfig admission_config(vcuda::Runtime& runtime,
                                        const GvmConfig& config) {
  sched::AdmissionConfig ac;
  ac.capacity = runtime.device().spec().global_mem;
  ac.per_client_quota = config.per_client_quota;
  ac.oversubscribe = config.auto_suspend_on_pressure;
  return ac;
}

}  // namespace

Gvm::Gvm(des::Simulator& sim, vcuda::Runtime& runtime, GvmConfig config)
    : sim_(sim),
      runtime_(runtime),
      config_(config),
      ready_(sim),
      requests_(sim),
      scheduler_(sched::Scheduler::make(effective_sched_config(config))),
      admission_(admission_config(runtime, config)) {
  VGPU_ASSERT(config_.expected_clients >= 1);
}

Gvm::~Gvm() = default;

void Gvm::start() { sim_.spawn(run()); }

des::Channel<Response>& Gvm::response_channel(int client) {
  auto it = responses_.find(client);
  if (it == responses_.end()) {
    it = responses_
             .emplace(client, std::make_unique<des::Channel<Response>>(sim_))
             .first;
  }
  return *it->second;
}

SimDuration Gvm::gpu_time() const {
  const gpu::DeviceStats& s = runtime_.device().stats();
  return s.h2d_busy + s.kernel_busy + s.d2h_busy;
}

SimDuration Gvm::staging_time(Bytes bytes) const {
  if (!config_.model_staging_copies) return 0;
  return transfer_time(bytes, config_.host_memcpy_bw);
}

void Gvm::respond(int client, ResponseType type) {
  response_channel(client).send(Response{type});
}

des::Task<> Gvm::run() {
  // Initialization (paper Figure 8, left column): get the device, create
  // the single GPU context. Per-client streams and memory objects are
  // created lazily at REQ.
  context_ = co_await runtime_.create_context();
  ready_.set();
  VGPU_INFO("GVM: ready, serving requests");
  for (;;) {
    Request request = co_await requests_.receive();
    ++stats_.requests;
    co_await handle(request);
  }
}

des::Task<> Gvm::handle(Request request) {
  const SimTime begin = sim_.now();
  if (auto it = clients_.find(request.client); it != clients_.end()) {
    it->second.last_active = begin;  // LRU order for eviction planning
  }
  co_await dispatch(request);
  if (auto* tl = runtime_.device().timeline()) {
    tl->record({std::string(request_type_name(request.type)) + " client " +
                    std::to_string(request.client),
                "protocol", "GVM requests", begin, sim_.now()});
  }
}

des::Task<> Gvm::dispatch(Request request) {
  switch (request.type) {
    case RequestType::kReq:
      co_await handle_req(request.client);
      break;
    case RequestType::kSnd:
      co_await handle_snd(request.client);
      break;
    case RequestType::kStr:
      co_await handle_str(request.client);
      break;
    case RequestType::kStp:
      co_await handle_stp(request.client);
      break;
    case RequestType::kRcv:
      co_await handle_rcv(request.client);
      break;
    case RequestType::kRls:
      co_await handle_rls(request.client);
      break;
    case RequestType::kSus:
      co_await handle_sus(request.client);
      break;
    case RequestType::kRes:
      co_await handle_res(request.client);
      break;
  }
}

des::Task<> Gvm::handle_req(int client) {
  auto plan_it = pending_plans_.find(client);
  VGPU_ASSERT_MSG(plan_it != pending_plans_.end(),
                  "REQ without a registered task plan");
  // The plan stays registered until the request is admitted: a
  // backpressured client re-sends the same REQ after a poll interval.
  const TaskPlan& plan = plan_it->second;
  const Bytes needed = plan.bytes_in + plan.bytes_out;
  sched::AdmitDecision decision =
      admission_.admit(needed, device_free(), victims(client));
  if (decision.action == sched::AdmitAction::kReject) {
    VGPU_DEBUG("GVM: denied REQ from client " << client << " (" << needed
                                              << " bytes over quota)");
    respond(client, ResponseType::kDenied);
    co_return;
  }
  if (decision.action == sched::AdmitAction::kRetry) {
    ++stats_.waits_sent;
    respond(client, ResponseType::kRetry);
    co_return;
  }
  // Admitted: make room first (oversubscription evicts idle residents'
  // device state to host through SUS, charging the PCIe swap cost).
  for (int victim : decision.evict) {
    auto vit = clients_.find(victim);
    VGPU_ASSERT_MSG(vit != clients_.end(), "evicting unknown client");
    co_await suspend_client(vit->second);
    ++stats_.pressure_suspends;
    VGPU_DEBUG("GVM: suspended client " << victim << " under memory pressure");
  }

  ClientState state;
  state.plan = std::move(plan_it->second);
  pending_plans_.erase(plan_it);
  state.last_active = sim_.now();

  state.stream = &context_->create_stream();
  // Page-locked staging for both directions (required for async overlap);
  // bounded by the node's pinned-memory ledger.
  if (config_.pinned_staging &&
      state.plan.bytes_in + state.plan.bytes_out > 0) {
    auto staging =
        runtime_.alloc_pinned(state.plan.bytes_in + state.plan.bytes_out);
    VGPU_ASSERT_MSG(staging.ok(), staging.status().to_string().c_str());
    state.staging = std::move(*staging);
  }
  if (state.plan.bytes_in > 0) {
    auto buf = context_->malloc(state.plan.bytes_in, state.plan.backed);
    VGPU_ASSERT_MSG(buf.ok(), buf.status().to_string().c_str());
    state.dev_in = *buf;
  }
  if (state.plan.bytes_out > 0) {
    auto buf = context_->malloc(state.plan.bytes_out, state.plan.backed);
    VGPU_ASSERT_MSG(buf.ok(), buf.status().to_string().c_str());
    state.dev_out = *buf;
  }
  sched::ClientRequest request;
  request.client = client;
  request.bytes_in = state.plan.bytes_in;
  request.bytes_out = state.plan.bytes_out;
  for (const auto& k : state.plan.kernels) {
    request.compute_cost += k.total_flops();
  }
  request.priority = state.plan.priority;
  request.weight = state.plan.weight;
  scheduler_->admit(request, sim_.now());
  clients_[client] = std::move(state);
  respond(client, ResponseType::kAck);
  co_return;
}

des::Task<> Gvm::handle_snd(int client) {
  auto it = clients_.find(client);
  VGPU_ASSERT_MSG(it != clients_.end(), "SND from unregistered client");
  // Copy from the client's virtual shared memory into its pinned staging
  // buffer. The GVM is a single process: these copies serialize here, which
  // is the dominant source of virtualization overhead (Figure 10).
  const Bytes n = it->second.plan.bytes_in;
  stats_.bytes_staged_in += n;
  const SimDuration t = staging_time(n);
  co_await sim_.delay(t);
  if (auto* tl = runtime_.device().timeline()) {
    tl->record({"stage in, client " + std::to_string(client), "staging",
                "GVM staging", sim_.now() - t, sim_.now()});
  }
  respond(client, ResponseType::kAck);
}

des::Task<> Gvm::handle_str(int client) {
  auto it = clients_.find(client);
  VGPU_ASSERT_MSG(it != clients_.end(), "STR from unregistered client");
  VGPU_ASSERT_MSG(!it->second.str_pending, "duplicate STR before flush");
  it->second.str_pending = true;
  // Hand the STR to the scheduler; the pump flushes whatever it grants.
  // Under the barrier policy nothing is granted until the full SPMD
  // cohort has sent STR (Figure 8's paired barriers); the time-quantum /
  // fair-share / priority policies grant according to their own state.
  scheduler_->enqueue(client, sim_.now());
  co_await pump();
}

des::Task<> Gvm::pump() {
  for (;;) {
    const std::vector<int> batch = scheduler_->pick_next(sim_.now());
    if (batch.empty()) break;
    // One flush per granted batch: the barrier policy's cohort co-flush
    // counts once, matching the paper's flush accounting.
    ++stats_.flushes;
    for (int id : batch) {
      auto it = clients_.find(id);
      VGPU_ASSERT_MSG(it != clients_.end(), "grant for unregistered client");
      ClientState& state = it->second;
      const SimTime granted = sim_.now();
      co_await flush_stream(id, state);
      state.str_pending = false;
      state.last_active = sim_.now();
      respond(id, ResponseType::kAck);
      sim_.spawn(watch_round(id, state.stream, granted));
    }
  }
  arm_wakeup();
}

des::Task<> Gvm::watch_round(int client, vcuda::Stream* stream,
                             SimTime granted) {
  co_await stream->synchronize();
  scheduler_->on_complete(client, sim_.now());
  // Scheduler lane in the timeline — but never under the default barrier
  // policy, whose traces are byte-compared against the pre-subsystem GVM.
  if (scheduler_->config().policy != sched::Policy::kBarrierCoFlush) {
    if (auto* tl = runtime_.device().timeline()) {
      tl->record({"round client " + std::to_string(client), "sched",
                  "GVM scheduler", granted, sim_.now()});
    }
  }
  // A completed round may unblock the next grant (quantum rotation,
  // fair-share round advance).
  co_await pump();
}

void Gvm::arm_wakeup() {
  const SimTime at = scheduler_->next_wakeup(sim_.now());
  if (at == kTimeInfinity) return;
  if (armed_wakeup_ != kTimeInfinity && armed_wakeup_ <= at &&
      armed_wakeup_ > sim_.now()) {
    return;  // an earlier pending timer already covers this wakeup
  }
  armed_wakeup_ = at;
  sim_.call_at(at, [this, at] {
    if (armed_wakeup_ == at) armed_wakeup_ = kTimeInfinity;
    sim_.spawn(pump());
  });
}

des::Task<> Gvm::flush_stream(int client, ClientState& state) {
  // A client suspended under memory pressure is transparently restored
  // before its work flushes.
  if (state.suspended) {
    const Bytes needed = state.plan.bytes_in + state.plan.bytes_out;
    if (device_free() < needed) {
      co_await relieve_pressure(needed, client);
    }
    co_await resume_client(state);
    ++stats_.pressure_resumes;
  }
  TaskPlan& plan = state.plan;
  if (plan.bytes_in > 0) {
    state.stream->memcpy_h2d_async(state.dev_in, plan.input, plan.bytes_in,
                                   config_.pinned_staging);
  }
  for (std::size_t i = 0; i < plan.kernels.size(); ++i) {
    const bool last = (i + 1 == plan.kernels.size());
    std::function<void()> body;
    if (last && plan.kernel_body) {
      body = [&state] {
        TaskBuffers buffers{&state.dev_in, &state.dev_out};
        state.plan.kernel_body(buffers);
      };
    }
    state.stream->launch(plan.kernels[i], std::move(body));
  }
  if (plan.bytes_out > 0) {
    state.stream->memcpy_d2h_async(plan.output, state.dev_out, plan.bytes_out,
                                   config_.pinned_staging);
  }
}

des::Task<> Gvm::handle_stp(int client) {
  auto it = clients_.find(client);
  VGPU_ASSERT_MSG(it != clients_.end(), "STP from unregistered client");
  if (!it->second.stream->idle()) {
    ++stats_.waits_sent;
    respond(client, ResponseType::kWait);
    co_return;
  }
  // Round complete: copy results from pinned staging into the client's
  // virtual shared memory before acknowledging.
  const Bytes n = it->second.plan.bytes_out;
  stats_.bytes_staged_out += n;
  const SimDuration t = staging_time(n);
  co_await sim_.delay(t);
  if (auto* tl = runtime_.device().timeline()) {
    tl->record({"stage out, client " + std::to_string(client), "staging",
                "GVM staging", sim_.now() - t, sim_.now()});
  }
  respond(client, ResponseType::kAck);
}

des::Task<> Gvm::handle_rcv(int client) {
  // Data is already in the client's virtual shared memory (placed at STP
  // completion); RCV is the handshake that hands it over.
  respond(client, ResponseType::kAck);
  co_return;
}

des::Task<> Gvm::handle_rls(int client) {
  auto it = clients_.find(client);
  VGPU_ASSERT_MSG(it != clients_.end(), "RLS from unregistered client");
  if (it->second.dev_in.valid()) {
    VGPU_ASSERT(context_->free(it->second.dev_in).ok());
  }
  if (it->second.dev_out.valid()) {
    VGPU_ASSERT(context_->free(it->second.dev_out).ok());
  }
  clients_.erase(it);
  scheduler_->on_release(client, sim_.now());
  respond(client, ResponseType::kAck);
  // A departure can unblock grants (e.g. a released quantum holder).
  co_await pump();
}

des::Task<> Gvm::suspend_client(ClientState& state) {
  VGPU_ASSERT_MSG(!state.suspended, "client already suspended");
  VGPU_ASSERT(state.stream->idle());
  // Snapshot device state to host (one D2H per buffer), then release the
  // device allocation so other clients can use the memory.
  auto snapshot = [&](vcuda::DeviceBuffer& buf,
                      std::shared_ptr<std::vector<std::byte>>& saved)
      -> des::Task<> {
    if (!buf.valid()) co_return;
    saved = std::make_shared<std::vector<std::byte>>(
        static_cast<std::size_t>(buf.size));
    state.stream->memcpy_d2h_async(saved->data(), buf, buf.size,
                                   config_.pinned_staging);
    co_await state.stream->synchronize();
    VGPU_ASSERT(context_->free(buf).ok());
  };
  co_await snapshot(state.dev_in, state.saved_in);
  co_await snapshot(state.dev_out, state.saved_out);
  state.suspended = true;
}

des::Task<> Gvm::resume_client(ClientState& state) {
  VGPU_ASSERT_MSG(state.suspended, "resume without a prior suspend");
  auto restore = [&](vcuda::DeviceBuffer& buf, Bytes size,
                     std::shared_ptr<std::vector<std::byte>>& saved)
      -> des::Task<> {
    if (size <= 0) co_return;
    auto fresh = context_->malloc(size, state.plan.backed);
    VGPU_ASSERT_MSG(fresh.ok(), fresh.status().to_string().c_str());
    buf = *fresh;
    if (saved) {
      state.stream->memcpy_h2d_async(buf, saved->data(), size,
                                     config_.pinned_staging);
      co_await state.stream->synchronize();
      saved.reset();
    }
  };
  co_await restore(state.dev_in, state.plan.bytes_in, state.saved_in);
  co_await restore(state.dev_out, state.plan.bytes_out, state.saved_out);
  state.suspended = false;
}

Bytes Gvm::device_free() const {
  const gpu::Device& device = runtime_.device();
  return device.spec().global_mem - device.memory_used();
}

std::vector<sched::AdmissionController::Victim> Gvm::victims(
    int except) const {
  std::vector<sched::AdmissionController::Victim> out;
  for (const auto& [id, state] : clients_) {
    if (id == except || state.suspended || state.str_pending) continue;
    if (!state.stream->idle()) continue;
    if (!state.dev_in.valid() && !state.dev_out.valid()) continue;
    sched::AdmissionController::Victim v;
    v.client = id;
    v.bytes = (state.dev_in.valid() ? state.dev_in.size : 0) +
              (state.dev_out.valid() ? state.dev_out.size : 0);
    v.last_active = state.last_active;
    out.push_back(v);
  }
  return out;
}

des::Task<> Gvm::relieve_pressure(Bytes needed, int except) {
  // Suspend idle resident clients (least recently active first) until
  // the allocation fits; the admission controller plans the victim set.
  for (int id :
       admission_.plan_eviction(needed, device_free(), victims(except))) {
    auto it = clients_.find(id);
    VGPU_ASSERT_MSG(it != clients_.end(), "evicting unknown client");
    co_await suspend_client(it->second);
    ++stats_.pressure_suspends;
    VGPU_DEBUG("GVM: suspended client " << id << " under memory pressure");
  }
}

des::Task<> Gvm::handle_sus(int client) {
  auto it = clients_.find(client);
  VGPU_ASSERT_MSG(it != clients_.end(), "SUS from unregistered client");
  ClientState& state = it->second;
  if (!state.stream->idle()) {
    ++stats_.waits_sent;
    respond(client, ResponseType::kWait);
    co_return;
  }
  co_await suspend_client(state);
  respond(client, ResponseType::kAck);
}

des::Task<> Gvm::handle_res(int client) {
  auto it = clients_.find(client);
  VGPU_ASSERT_MSG(it != clients_.end(), "RES from unregistered client");
  co_await resume_client(it->second);
  respond(client, ResponseType::kAck);
}

// ---------------------------------------------------------------------------
// Device-pool API
// ---------------------------------------------------------------------------

sched::DeviceLoad Gvm::load() const {
  sched::DeviceLoad d;
  d.clients = static_cast<int>(clients_.size());
  d.pending = static_cast<int>(scheduler_->pending()) + scheduler_->in_flight();
  d.free_mem = device_free();
  d.capacity = runtime_.device().spec().global_mem;
  for (const auto& [id, state] : clients_) {
    if (!state.str_pending) continue;
    d.queued_cost += static_cast<double>(state.plan.bytes_in +
                                         state.plan.bytes_out);
  }
  return d;
}

bool Gvm::quiescent(int client) const {
  auto it = clients_.find(client);
  if (it == clients_.end()) return false;
  const ClientState& state = it->second;
  return !state.str_pending && (state.suspended || state.stream->idle());
}

des::Task<StatusOr<MigratedClient>> Gvm::export_client(int client) {
  auto it = clients_.find(client);
  if (it == clients_.end()) {
    co_return NotFound("export of unattached client " +
                       std::to_string(client));
  }
  ClientState& state = it->second;
  if (state.str_pending || (!state.suspended && !state.stream->idle())) {
    co_return FailedPrecondition("export of client " + std::to_string(client) +
                                 " mid-round: drain the round first");
  }
  // The suspend machinery is the drain: one D2H sweep snapshots the device
  // buffers to host and frees the device allocation.
  if (!state.suspended) co_await suspend_client(state);
  MigratedClient out;
  out.plan = std::move(state.plan);
  out.saved_in = std::move(state.saved_in);
  out.saved_out = std::move(state.saved_out);
  out.last_active = state.last_active;
  clients_.erase(it);
  scheduler_->on_migrate(client, sim_.now());
  ++stats_.migrations_out;
  co_return out;
}

des::Task<Status> Gvm::import_client(int client, MigratedClient& state) {
  if (clients_.find(client) != clients_.end()) {
    co_return AlreadyExists("import of already-attached client " +
                            std::to_string(client));
  }
  const Bytes needed = state.working_set();
  sched::AdmitDecision decision =
      admission_.admit(needed, device_free(), victims(client));
  if (decision.action == sched::AdmitAction::kReject) {
    co_return ResourceExhausted("import of client " + std::to_string(client) +
                                " over quota/capacity");
  }
  if (decision.action == sched::AdmitAction::kRetry) {
    co_return Unavailable("target device under memory pressure");
  }
  for (int victim : decision.evict) {
    auto vit = clients_.find(victim);
    VGPU_ASSERT_MSG(vit != clients_.end(), "evicting unknown client");
    co_await suspend_client(vit->second);
    ++stats_.pressure_suspends;
  }

  ClientState fresh;
  fresh.plan = std::move(state.plan);
  // Leaves `state` importable elsewhere when this device cannot take the
  // client after all.
  auto bounce = [&](Status why) {
    state.plan = std::move(fresh.plan);
    if (fresh.dev_in.valid()) VGPU_ASSERT(context_->free(fresh.dev_in).ok());
    return why;
  };
  fresh.last_active = sim_.now();
  fresh.stream = &context_->create_stream();
  if (config_.pinned_staging && needed > 0) {
    auto staging = runtime_.alloc_pinned(needed);
    if (!staging.ok()) co_return bounce(staging.status());
    fresh.staging = std::move(*staging);
  }
  // Allocate both buffers before any await so a concurrently-handled REQ
  // cannot slip between the admission verdict and the allocation.
  if (fresh.plan.bytes_in > 0) {
    auto buf = context_->malloc(fresh.plan.bytes_in, fresh.plan.backed);
    if (!buf.ok()) co_return bounce(Unavailable("import lost an alloc race"));
    fresh.dev_in = *buf;
  }
  if (fresh.plan.bytes_out > 0) {
    auto buf = context_->malloc(fresh.plan.bytes_out, fresh.plan.backed);
    if (!buf.ok()) co_return bounce(Unavailable("import lost an alloc race"));
    fresh.dev_out = *buf;
  }

  sched::ClientRequest request;
  request.client = client;
  request.bytes_in = fresh.plan.bytes_in;
  request.bytes_out = fresh.plan.bytes_out;
  for (const auto& k : fresh.plan.kernels) {
    request.compute_cost += k.total_flops();
  }
  request.priority = fresh.plan.priority;
  request.weight = fresh.plan.weight;
  scheduler_->admit(request, sim_.now());
  clients_[client] = std::move(fresh);
  ClientState& placed = clients_[client];

  // Restore the working-set snapshot with one H2D sweep per buffer.
  auto restore = [&](vcuda::DeviceBuffer& buf,
                     std::shared_ptr<std::vector<std::byte>>& saved)
      -> des::Task<> {
    if (!buf.valid() || !saved) co_return;
    placed.stream->memcpy_h2d_async(buf, saved->data(), buf.size,
                                    config_.pinned_staging);
    co_await placed.stream->synchronize();
    saved.reset();
  };
  co_await restore(placed.dev_in, state.saved_in);
  co_await restore(placed.dev_out, state.saved_out);
  ++stats_.migrations_in;
  co_return Status::Ok();
}

// ---------------------------------------------------------------------------
// VGpuClient
// ---------------------------------------------------------------------------

VGpuClient::VGpuClient(des::Simulator& sim, Gvm& gvm, int id)
    : sim_(sim), gvm_(gvm), id_(id) {}

des::Task<Response> VGpuClient::call(RequestType type) {
  co_await sim_.delay(gvm_.config().msg_latency);  // request queue hop
  gvm_.submit(Request{type, id_});
  Response response = co_await gvm_.response_channel(id_).receive();
  co_await sim_.delay(gvm_.config().msg_latency);  // response queue hop
  co_return response;
}

des::Task<Status> VGpuClient::req(TaskPlan plan) {
  gvm_.register_plan(id_, std::move(plan));
  for (;;) {
    const Response r = co_await call(RequestType::kReq);
    if (r.type == ResponseType::kAck) co_return Status::Ok();
    if (r.type == ResponseType::kDenied) {
      gvm_.drop_plan(id_);
      co_return ResourceExhausted("REQ denied: over device-memory quota");
    }
    VGPU_ASSERT(r.type == ResponseType::kRetry);
    ++waits_;  // transient pressure: poll like STP
    co_await sim_.delay(gvm_.config().poll_interval);
  }
}

des::Task<> VGpuClient::snd() {
  const Response r = co_await call(RequestType::kSnd);
  VGPU_ASSERT(r.type == ResponseType::kAck);
}

des::Task<> VGpuClient::str() {
  const Response r = co_await call(RequestType::kStr);
  VGPU_ASSERT(r.type == ResponseType::kAck);
}

des::Task<> VGpuClient::wait_done() {
  for (;;) {
    const Response r = co_await call(RequestType::kStp);
    if (r.type == ResponseType::kAck) co_return;
    ++waits_;
    co_await sim_.delay(gvm_.config().poll_interval);
  }
}

des::Task<> VGpuClient::rcv() {
  const Response r = co_await call(RequestType::kRcv);
  VGPU_ASSERT(r.type == ResponseType::kAck);
}

des::Task<> VGpuClient::rls() {
  const Response r = co_await call(RequestType::kRls);
  VGPU_ASSERT(r.type == ResponseType::kAck);
}

des::Task<> VGpuClient::suspend() {
  for (;;) {
    const Response r = co_await call(RequestType::kSus);
    if (r.type == ResponseType::kAck) co_return;
    ++waits_;
    co_await sim_.delay(gvm_.config().poll_interval);
  }
}

des::Task<> VGpuClient::resume() {
  const Response r = co_await call(RequestType::kRes);
  VGPU_ASSERT(r.type == ResponseType::kAck);
}

des::Task<> VGpuClient::run_task(TaskPlan plan, int rounds) {
  VGPU_ASSERT(rounds >= 1);
  const Status admitted = co_await req(std::move(plan));
  VGPU_ASSERT_MSG(admitted.ok(), admitted.to_string().c_str());
  for (int round = 0; round < rounds; ++round) {
    co_await snd();
    co_await str();
    co_await wait_done();
    co_await rcv();
  }
  co_await rls();
}

}  // namespace vgpu::gvm
