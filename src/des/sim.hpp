// Deterministic discrete-event simulator.
//
// Events are (time, sequence) ordered: ties in virtual time resolve in
// insertion order, so a given program produces a bit-identical schedule on
// every run. "Processes" are coroutines spawned with Simulator::spawn; they
// suspend on awaitables (delay, channel receive, semaphore acquire, barrier)
// and are resumed by the event loop.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "des/task.hpp"

namespace vgpu::des {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `h` to resume after `delay` (>= 0).
  void schedule(SimDuration delay, std::coroutine_handle<> h) {
    VGPU_ASSERT(delay >= 0);
    schedule_at(now_ + delay, h);
  }

  /// Schedules `h` to resume at absolute time `t` (>= now).
  void schedule_at(SimTime t, std::coroutine_handle<> h);

  /// Schedules a plain callback at absolute time `t`.
  void call_at(SimTime t, std::function<void()> fn);
  void call_after(SimDuration delay, std::function<void()> fn) {
    VGPU_ASSERT(delay >= 0);
    call_at(now_ + delay, std::move(fn));
  }

  /// Starts a detached root process. It runs when the event loop reaches the
  /// current time slot; its coroutine frame is owned by the simulator and
  /// destroyed on completion (or at simulator destruction if still live).
  void spawn(Task<void> task);

  /// Runs until the event queue drains. Returns the final virtual time.
  SimTime run();

  /// Runs events with time <= t; leaves later events queued.
  void run_until(SimTime t);

  /// Number of spawned root processes that have not yet completed.
  std::size_t live_processes() const { return live_processes_; }

  /// Total events dispatched so far (diagnostics / determinism tests).
  std::uint64_t events_dispatched() const { return events_dispatched_; }

  /// Awaitable: suspends the current coroutine for `d` virtual time.
  auto delay(SimDuration d) {
    struct Awaiter {
      Simulator& sim;
      SimDuration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { sim.schedule(d, h); }
      void await_resume() const noexcept {}
    };
    VGPU_ASSERT(d >= 0);
    return Awaiter{*this, d};
  }

  /// Awaitable: yields to other events scheduled at the current time.
  auto yield() { return delay(0); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::coroutine_handle<> handle;      // exactly one of handle / fn is set
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // min-heap: earlier insertion first
    }
  };

  void dispatch(Event& ev);

  // Wrapper that owns a root coroutine and notifies completion.
  struct RootPromise;
  struct RootTask {
    using promise_type = RootPromise;
    std::coroutine_handle<RootPromise> handle;
  };
  struct RootPromise {
    Simulator* sim = nullptr;
    bool* alive_flag = nullptr;  // owned by sim's registry

    RootTask get_return_object() {
      return {std::coroutine_handle<RootPromise>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    // On completion: update the simulator's bookkeeping, then destroy the
    // frame from within the final suspend point (the coroutine is suspended
    // there, so self-destruction is well-defined).
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<RootPromise> h) noexcept {
        auto& p = h.promise();
        --p.sim->live_processes_;
        *p.alive_flag = false;
        h.destroy();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception();
  };
  static RootTask run_root(Simulator& sim, Task<void> task);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_dispatched_ = 0;
  std::size_t live_processes_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  // Registry of live root coroutines so ~Simulator can destroy them.
  std::vector<std::pair<std::coroutine_handle<>, bool*>> roots_;
};

}  // namespace vgpu::des
