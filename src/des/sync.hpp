// Synchronization primitives for DES processes: counting semaphore,
// reusable barrier, one-shot event and countdown latch.
//
// All wakeups are scheduled as zero-delay events so they pass through the
// simulator's deterministic (time, sequence) ordering.
#pragma once

#include <coroutine>
#include <deque>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "des/sim.hpp"

namespace vgpu::des {

/// FIFO counting semaphore.
class Semaphore {
 public:
  Semaphore(Simulator& sim, int initial) : sim_(sim), count_(initial) {
    VGPU_ASSERT(initial >= 0);
  }
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  /// Awaitable: obtains one unit, suspending if none are available.
  auto acquire() {
    struct Awaiter {
      Semaphore& sem;
      bool await_ready() {
        if (sem.count_ > 0) {
          --sem.count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        sem.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Returns `n` units; wakes waiters FIFO. A woken waiter consumes its unit
  /// directly (the unit is never added to count_), preserving fairness.
  void release(int n = 1) {
    VGPU_ASSERT(n > 0);
    for (int i = 0; i < n; ++i) {
      if (!waiters_.empty()) {
        sim_.schedule(0, waiters_.front());
        waiters_.pop_front();
      } else {
        ++count_;
      }
    }
  }

  int available() const { return count_; }
  std::size_t waiting() const { return waiters_.size(); }

 private:
  Simulator& sim_;
  int count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Reusable barrier for a fixed number of parties (cyclic, generational).
class Barrier {
 public:
  Barrier(Simulator& sim, std::size_t parties)
      : sim_(sim), parties_(parties) {
    VGPU_ASSERT(parties >= 1);
  }
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Awaitable. The last arriving party releases everyone and proceeds
  /// without suspending; earlier parties resume via zero-delay events.
  auto arrive_and_wait() {
    struct Awaiter {
      Barrier& b;
      bool await_ready() {
        if (b.arrived_ + 1 == b.parties_) {
          // Final arrival: release the cohort and start a new generation.
          for (auto h : b.waiters_) b.sim_.schedule(0, h);
          b.waiters_.clear();
          b.arrived_ = 0;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ++b.arrived_;
        b.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  std::size_t parties() const { return parties_; }
  std::size_t arrived() const { return arrived_; }

 private:
  Simulator& sim_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// One-shot event: wait() suspends until set() is called; waits after set()
/// complete immediately. wait_for() adds a deadline: it resumes on set() or
/// when the timeout elapses, whichever comes first, and reports which.
class OneShotEvent {
 public:
  explicit OneShotEvent(Simulator& sim) : sim_(sim) {}
  OneShotEvent(const OneShotEvent&) = delete;
  OneShotEvent& operator=(const OneShotEvent&) = delete;

  void set() {
    if (set_) return;
    set_ = true;
    for (auto& w : waiters_) {
      if (w->resolved) continue;  // its timeout already fired
      w->resolved = true;
      w->event_fired = true;
      sim_.schedule(0, w->handle);
    }
    waiters_.clear();
  }

  bool is_set() const { return set_; }

  auto wait() {
    struct Awaiter {
      OneShotEvent& ev;
      std::shared_ptr<Waiter> waiter;
      bool await_ready() const { return ev.set_; }
      void await_suspend(std::coroutine_handle<> h) {
        waiter = std::make_shared<Waiter>();
        waiter->handle = h;
        ev.waiters_.push_back(waiter);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, {}};
  }

  /// Awaitable<bool>: true if the event fired before `timeout`, false if
  /// the deadline passed first. A later set() will not resume this waiter
  /// again.
  auto wait_for(SimDuration timeout) {
    struct Awaiter {
      OneShotEvent& ev;
      SimDuration timeout;
      std::shared_ptr<Waiter> waiter;
      bool await_ready() const { return ev.set_; }
      void await_suspend(std::coroutine_handle<> h) {
        waiter = std::make_shared<Waiter>();
        waiter->handle = h;
        ev.waiters_.push_back(waiter);
        auto w = waiter;
        Simulator& sim = ev.sim_;
        ev.sim_.call_after(timeout, [w, &sim] {
          if (w->resolved) return;  // the event got there first
          w->resolved = true;
          w->event_fired = false;
          sim.schedule(0, w->handle);
        });
      }
      bool await_resume() const {
        return waiter == nullptr || waiter->event_fired;
      }
    };
    VGPU_ASSERT(timeout >= 0);
    return Awaiter{*this, timeout, {}};
  }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    bool resolved = false;
    bool event_fired = false;
  };

  Simulator& sim_;
  bool set_ = false;
  std::vector<std::shared_ptr<Waiter>> waiters_;
};

/// Countdown latch: wait() releases once count_down() has been called
/// `count` times. Not reusable.
class CountdownLatch {
 public:
  CountdownLatch(Simulator& sim, std::size_t count)
      : event_(sim), remaining_(count) {
    if (remaining_ == 0) event_.set();
  }

  void count_down() {
    VGPU_ASSERT(remaining_ > 0);
    if (--remaining_ == 0) event_.set();
  }

  auto wait() { return event_.wait(); }
  std::size_t remaining() const { return remaining_; }

 private:
  OneShotEvent event_;
  std::size_t remaining_;
};

/// Structured fan-out: runs every task concurrently (each as its own
/// process) and completes when all have finished.
inline Task<> when_all(Simulator& sim, std::vector<Task<>> tasks) {
  auto latch = std::make_shared<CountdownLatch>(sim, tasks.size());
  for (auto& task : tasks) {
    sim.spawn([](Task<> t, std::shared_ptr<CountdownLatch> l) -> Task<> {
      co_await std::move(t);
      l->count_down();
    }(std::move(task), latch));
  }
  co_await latch->wait();
}

}  // namespace vgpu::des
