// Unbounded MPSC/MPMC message channel for DES processes.
//
// send() never blocks; receive() suspends the awaiting coroutine until a
// message arrives. Delivery to a suspended receiver is scheduled at the
// current virtual time (zero-delay event) so that all resumptions flow
// through the simulator's deterministic event order.
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "des/sim.hpp"

namespace vgpu::des {

template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& sim) : sim_(sim) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueues a message; wakes the longest-waiting receiver, if any.
  void send(T value) {
    if (!waiters_.empty()) {
      ReceiveAwaiter* w = waiters_.front();
      waiters_.pop_front();
      w->slot.emplace(std::move(value));
      sim_.schedule(0, w->handle);
    } else {
      items_.push_back(std::move(value));
    }
  }

  /// Awaitable that produces the next message (FIFO).
  auto receive() { return ReceiveAwaiter{*this, {}, {}}; }

  /// Non-suspending receive; empty optional if no message is queued.
  std::optional<T> try_receive() {
    if (items_.empty()) return std::nullopt;
    std::optional<T> v(std::move(items_.front()));
    items_.pop_front();
    return v;
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  std::size_t waiting_receivers() const { return waiters_.size(); }

 private:
  struct ReceiveAwaiter {
    Channel& ch;
    std::optional<T> slot;
    std::coroutine_handle<> handle;

    bool await_ready() {
      if (!ch.items_.empty()) {
        slot.emplace(std::move(ch.items_.front()));
        ch.items_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      ch.waiters_.push_back(this);  // the awaiter lives in h's frame
    }
    T await_resume() { return std::move(*slot); }
  };

  Simulator& sim_;
  std::deque<T> items_;
  std::deque<ReceiveAwaiter*> waiters_;
};

}  // namespace vgpu::des
