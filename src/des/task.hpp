// Coroutine task types for the discrete-event engine.
//
// Task<T> is a lazy coroutine: it starts when first awaited, and resumes its
// awaiter on completion via symmetric transfer. Detached root processes are
// spawned through Simulator::spawn (see sim.hpp) which wraps a Task<void>.
//
// Exceptions thrown inside a task propagate to the awaiter at co_await.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "common/status.hpp"

namespace vgpu::des {

template <typename T>
class Task;

namespace detail {

template <typename T>
struct TaskPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

template <typename T>
struct TaskPromise : TaskPromiseBase<T> {
  std::optional<T> value;

  Task<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }

  T take() {
    if (this->exception) std::rethrow_exception(this->exception);
    VGPU_ASSERT_MSG(value.has_value(), "task completed without a value");
    return std::move(*value);
  }
};

template <>
struct TaskPromise<void> : TaskPromiseBase<void> {
  Task<void> get_return_object();
  void return_void() {}

  void take() {
    if (this->exception) std::rethrow_exception(this->exception);
  }
};

}  // namespace detail

/// Lazy coroutine task; see file comment.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  /// Releases ownership of the coroutine frame (used by Simulator::spawn).
  Handle release() { return std::exchange(handle_, {}); }

  auto operator co_await() && {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        handle.promise().continuation = cont;
        return handle;  // symmetric transfer: start the child now
      }
      T await_resume() { return handle.promise().take(); }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_{};
};

namespace detail {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>(
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace vgpu::des
