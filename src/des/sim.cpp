#include "des/sim.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace vgpu::des {

Simulator::~Simulator() {
  // Destroy any still-suspended root processes. Their frames own the inner
  // task chain, so the whole coroutine tree unwinds here. Events left in the
  // queue are dropped without resumption.
  for (auto& [handle, alive] : roots_) {
    if (*alive) handle.destroy();
    delete alive;
  }
}

void Simulator::schedule_at(SimTime t, std::coroutine_handle<> h) {
  VGPU_ASSERT_MSG(t >= now_, "cannot schedule into the past");
  queue_.push(Event{t, next_seq_++, h, nullptr});
}

void Simulator::call_at(SimTime t, std::function<void()> fn) {
  VGPU_ASSERT_MSG(t >= now_, "cannot schedule into the past");
  queue_.push(Event{t, next_seq_++, {}, std::move(fn)});
}

Simulator::RootTask Simulator::run_root(Simulator& sim, Task<void> task) {
  (void)sim;  // kept for symmetry; the promise carries the back-pointer
  co_await std::move(task);
}

void Simulator::RootPromise::unhandled_exception() {
  std::fprintf(stderr,
               "vgpu::des: unhandled exception escaped a root process\n");
  std::abort();
}

void Simulator::spawn(Task<void> task) {
  // Opportunistically prune completed registry entries so long simulations
  // that spawn many processes do not grow without bound.
  if (roots_.size() > 64) {
    auto it = std::remove_if(roots_.begin(), roots_.end(), [](auto& entry) {
      if (!*entry.second) {
        delete entry.second;
        return true;
      }
      return false;
    });
    roots_.erase(it, roots_.end());
  }

  RootTask rt = run_root(*this, std::move(task));
  auto handle = rt.handle;
  auto* alive = new bool(true);
  handle.promise().sim = this;
  handle.promise().alive_flag = alive;
  roots_.emplace_back(handle, alive);
  ++live_processes_;
  schedule_at(now_, handle);
}

void Simulator::dispatch(Event& ev) {
  now_ = ev.time;
  ++events_dispatched_;
  if (ev.handle) {
    ev.handle.resume();
  } else {
    ev.fn();
  }
}

SimTime Simulator::run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    dispatch(ev);
  }
  return now_;
}

void Simulator::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    Event ev = queue_.top();
    queue_.pop();
    dispatch(ev);
  }
  now_ = std::max(now_, t);
}

}  // namespace vgpu::des
