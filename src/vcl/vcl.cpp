#include "vcl/vcl.hpp"

namespace vgpu::vcl {

gpu::KernelGeometry ndrange_to_geometry(const NDRange& range,
                                        int regs_per_item,
                                        Bytes local_mem_per_group) {
  VGPU_ASSERT(range.global >= 1);
  VGPU_ASSERT(range.local >= 1 && range.local <= 1024);
  gpu::KernelGeometry g;
  g.grid_blocks = ceil_div(range.global, static_cast<long>(range.local));
  g.threads_per_block = range.local;
  g.regs_per_thread = regs_per_item;
  g.shmem_per_block = local_mem_per_group;
  return g;
}

void CommandQueue::enqueue_ndrange_kernel(const std::string& name,
                                          const NDRange& range,
                                          const gpu::KernelCost& cost,
                                          std::function<void()> body,
                                          int regs_per_item,
                                          Bytes local_mem_per_group) {
  gpu::KernelLaunch launch;
  launch.name = name;
  launch.geometry =
      ndrange_to_geometry(range, regs_per_item, local_mem_per_group);
  launch.cost = cost;
  stream_->launch(std::move(launch), std::move(body));
}

des::Task<std::unique_ptr<VclContext>> VclContext::create(
    vcuda::Runtime& runtime) {
  auto context = co_await runtime.create_context();
  co_return std::unique_ptr<VclContext>(new VclContext(std::move(context)));
}

}  // namespace vgpu::vcl
