// vcl: an OpenCL-flavored frontend over the vcuda runtime.
//
// The paper's background (Section III) frames both programming models as
// equivalent SPMD hierarchies:
//
//   CUDA        OpenCL            here
//   grid        NDRange           NDRange{global, local}
//   block       work-group        local size
//   thread      work-item         -
//   stream      command queue     CommandQueue (in-order)
//   cudaMemcpy  clEnqueue*Buffer  enqueue_write/read_buffer
//
// The mapping is intentionally thin: NDRange{global, local} becomes a
// KernelGeometry with ceil(global/local) blocks of `local` threads, and an
// in-order CommandQueue wraps one vcuda Stream — which is exactly how
// OpenCL implementations sat on CUDA-class hardware in the Fermi era.
#pragma once

#include <memory>

#include "common/math.hpp"
#include "vcuda/runtime.hpp"

namespace vgpu::vcl {

using Buffer = vcuda::DeviceBuffer;  // clCreateBuffer result

struct NDRange {
  long global = 1;  // total work-items
  int local = 64;   // work-group size
};

/// In-order command queue (clCreateCommandQueue without
/// OUT_OF_ORDER_EXEC_MODE), bound to one context.
class CommandQueue {
 public:
  /// clEnqueueWriteBuffer (non-blocking).
  void enqueue_write_buffer(Buffer& buffer, const void* src, Bytes n,
                            Bytes offset = 0) {
    stream_->memcpy_h2d_async(buffer, src, n, /*pinned=*/true, offset);
  }

  /// clEnqueueReadBuffer (non-blocking).
  void enqueue_read_buffer(void* dst, const Buffer& buffer, Bytes n,
                           Bytes offset = 0) {
    stream_->memcpy_d2h_async(dst, buffer, n, /*pinned=*/true, offset);
  }

  /// clEnqueueCopyBuffer.
  void enqueue_copy_buffer(Buffer& dst, const Buffer& src, Bytes n) {
    stream_->memcpy_d2d_async(dst, src, n);
  }

  /// clEnqueueNDRangeKernel: `range` fixes the geometry; `cost` the device
  /// work per work-item; `body` the optional functional computation.
  void enqueue_ndrange_kernel(const std::string& name, const NDRange& range,
                              const gpu::KernelCost& cost,
                              std::function<void()> body = {},
                              int regs_per_item = 20,
                              Bytes local_mem_per_group = 0);

  /// clFinish: awaitable until the queue drains.
  des::Task<> finish() { return stream_->synchronize(); }

  /// clFlush is a no-op here (work is submitted eagerly); kept for API
  /// parity.
  void flush() {}

  bool idle() const { return stream_->idle(); }

 private:
  friend class VclContext;
  explicit CommandQueue(vcuda::Stream& stream) : stream_(&stream) {}
  vcuda::Stream* stream_;
};

/// clCreateContext + clCreateBuffer + queue factory.
class VclContext {
 public:
  /// Creates a context on the runtime's device (pays the usual driver
  /// initialization and context-creation costs).
  static des::Task<std::unique_ptr<VclContext>> create(
      vcuda::Runtime& runtime);

  /// clCreateBuffer; `backed` attaches host bytes for functional runs.
  StatusOr<Buffer> create_buffer(Bytes size, bool backed = false) {
    return context_->malloc(size, backed);
  }

  Status release_buffer(Buffer& buffer) { return context_->free(buffer); }

  /// clCreateCommandQueue (in-order).
  CommandQueue create_command_queue() {
    return CommandQueue(context_->create_stream());
  }

  vcuda::Context& native() { return *context_; }

 private:
  explicit VclContext(std::unique_ptr<vcuda::Context> context)
      : context_(std::move(context)) {}
  std::unique_ptr<vcuda::Context> context_;
};

/// The Section III mapping, exposed for tests: NDRange -> KernelGeometry.
gpu::KernelGeometry ndrange_to_geometry(const NDRange& range,
                                        int regs_per_item,
                                        Bytes local_mem_per_group);

}  // namespace vgpu::vcl
