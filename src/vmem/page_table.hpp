// Page-granular residency tracking for transparent memory oversubscription.
//
// The PageTable is the bookkeeping half of src/vmem: it slices client
// allocations into fixed-size pages and records, per page, where the
// authoritative bytes live (device-resident, spilled to the host ledger,
// or mid-transfer) plus the pin/reference bits the pager's clock needs.
// Like the scheduler it is pure state — no memcpys, no allocator, no
// clock of its own — so the DES side (vcuda) can use it as a plain
// residency tracker while the live Pager layers frame allocation and real
// spill traffic on top.
//
// Page lifecycle (see docs/memory.md):
//
//            bind()                pin / page-in            evict
//   (fresh) ──────► kHost ───────► kInFlight ───► kResident ─────► kHost
//                     ▲                                              │
//                     └──────────────── spill to ledger ◄────────────┘
//
// A page in kHost may or may not hold a valid ledger copy: fresh pages
// and host-written pages are backed only by the client's own bytes
// (write-allocate: a host write invalidates any spilled copy).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "gpu/memory.hpp"

namespace vgpu::vmem {

/// Handle for one bound allocation. 0 is never a valid id.
using AllocId = std::uint64_t;

/// Where a page's authoritative bytes currently live.
enum class PageState : std::uint8_t {
  kHost = 0,  // not on device; backing (and maybe a ledger copy) holds it
  kInFlight,  // transfer in progress (page-in or spill)
  kResident,  // device frame assigned; backing bytes are live on-device
};

const char* page_state_name(PageState state);

/// Sentinel for "no ledger slot assigned".
inline constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

struct Page {
  PageState state = PageState::kHost;
  int pin_count = 0;        // pinned pages are never eviction victims
  bool referenced = false;  // clock second-chance bit
  bool prefetched = false;  // filled ahead of demand, not yet touched
  bool ledger_valid = false;  // ledger slot holds a valid copy
  bool scrubbed = false;      // backing bytes poisoned after spill
  gpu::DevPtr frame = 0;      // device frame while resident / in-flight
  std::size_t ledger_slot = kNoSlot;
};

/// One client allocation, sliced into pages. `base` points at the
/// client-owned backing bytes (vsm area or staging buffer on the live
/// path); it may be null for timing-only allocations, in which case the
/// pager runs the full state machine without moving bytes.
struct Allocation {
  AllocId id = 0;
  int client = -1;
  std::byte* base = nullptr;
  Bytes size = 0;
  std::vector<Page> pages;
};

class PageTable {
 public:
  explicit PageTable(Bytes page_size);

  Bytes page_size() const { return page_size_; }

  /// Registers `size` bytes for `client`. Pages start in kHost with no
  /// ledger copy (the backing bytes are authoritative).
  AllocId bind(int client, std::byte* base, Bytes size);

  /// Drops one allocation (its pages must not be pinned).
  Status drop(AllocId id);

  Allocation* find(AllocId id);
  const Allocation* find(AllocId id) const;

  /// Bind-ordered allocations of one client (empty vector if none).
  std::vector<AllocId> client_allocs(int client) const;

  /// All allocations, keyed by id — the pager's clock sweeps this map in
  /// ascending (alloc, page) order.
  std::map<AllocId, Allocation>& allocations() { return allocs_; }
  const std::map<AllocId, Allocation>& allocations() const { return allocs_; }

  /// Backing span of one page (null base for unbacked allocations); the
  /// tail page may be shorter than page_size.
  std::pair<std::byte*, Bytes> page_span(Allocation& alloc,
                                         std::size_t index) const;

  std::size_t total_pages() const { return total_pages_; }
  std::size_t page_count(Bytes size) const;

  // Scans (export/test-time only; page populations are small).
  std::size_t resident_pages() const;
  std::size_t pinned_pages() const;
  Bytes resident_bytes() const;

 private:
  Bytes page_size_;
  AllocId next_id_ = 1;
  std::size_t total_pages_ = 0;
  std::map<AllocId, Allocation> allocs_;
  std::map<int, std::vector<AllocId>> by_client_;
};

}  // namespace vgpu::vmem
