// The host-RAM pager: transparent memory oversubscription for the live GVM.
//
// Every client sees the full modeled device; the Pager keeps only hot
// pages device-resident. Page frames come from a gpu::DeviceMemoryAllocator
// sized to the modeled device, cold pages spill to a bounded host-RAM
// ledger (real memcpys, so the swap traffic has real cost), and the
// RtServer pins a job's working set before kernel launch — evicting cold
// pages of other clients and prefetching sequentially-adjacent pages of
// this one (nvshare's design, ROADMAP item 1).
//
// Threading: the serve loop is the only caller (single-threaded owner),
// mirroring the Scheduler discipline. The fault::Injector hook points are
// `vmem.pagein` (stall inside a page-in) and `device.alloc` (frame
// allocation failure), both nullable and zero-cost when absent.
//
// Clean/dirty spill model: a spilled page keeps its ledger slot after
// restore, so re-evicting an unmodified page drops the frame without a
// second copy; a host write (SND) write-allocates — it invalidates the
// ledger copy so stale bytes can never be restored over fresh input.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "fault/fault.hpp"
#include "gpu/memory.hpp"
#include "obs/trace.hpp"
#include "vmem/page_table.hpp"

namespace vgpu::obs {
class Registry;
}

namespace vgpu::vmem {

struct PagerConfig {
  /// Page granularity; must be a multiple of the device allocator's
  /// alignment. 2 MiB mirrors the large-page granularity real UVM pagers
  /// migrate at.
  Bytes page_size = 2 * kMiB;
  /// Modeled device memory backing page frames.
  Bytes device_capacity = 0;
  /// Host ledger bound; spills fail (and the pin reports a shortfall)
  /// once the ledger is exhausted.
  Bytes host_ledger_capacity = 0;
  /// On a residency fault, also fault in up to this many sequentially
  /// following non-resident pages of the same allocation.
  int prefetch_window = 4;
  /// Poison backing bytes after a spill so any read of a non-restored
  /// page is loud. Unit tests only: on the live path clients read their
  /// vsm windows directly and backing must stay valid.
  bool scrub_on_evict = false;
};

struct PagerCounters {
  long faults = 0;           // lead residency faults serviced at pin time
  long page_ins = 0;         // ledger -> backing restores
  long page_outs = 0;        // backing -> ledger spills (dirty evictions)
  long evicted_pages = 0;    // frames reclaimed by the clock
  long clean_drops = 0;      // evictions that reused a valid ledger copy
  long prefetch_issued = 0;  // pages filled ahead of demand
  long prefetch_hits = 0;    // prefetched pages later touched
  long pin_shortfalls = 0;   // pins that left part of a working set cold
  long host_restores = 0;    // ensure_readable()/shortfall ledger restores
  long frame_alloc_failures = 0;  // injected device.alloc failures absorbed
  long handoffs_out = 0;          // clients migrated to another pager
  long handoffs_in = 0;           // clients adopted from another pager
  Bytes bytes_handed_off = 0;     // backing bytes re-bound across devices
};

class Pager {
 public:
  /// `injector` and `tracer` are optional; a null pointer disables fault
  /// hooks / span recording respectively.
  explicit Pager(PagerConfig config, fault::Injector* injector = nullptr,
                 obs::Tracer* tracer = nullptr);

  const PagerConfig& config() const { return config_; }
  const PagerCounters& counters() const { return counters_; }
  PageTable& table() { return table_; }
  gpu::DeviceMemoryAllocator& frames() { return frames_; }

  /// Registers client backing bytes with the residency tracker. Pages
  /// start cold (kHost, backing authoritative).
  AllocId bind(int client, std::byte* base, Bytes size) {
    return table_.bind(client, base, size);
  }

  /// Drops one allocation: frees its frames and ledger slots.
  Status release(AllocId id);

  /// Drops everything a client bound (lease expiry / RLS); returns the
  /// ledger bytes reclaimed so the caller can audit recovery.
  Bytes release_client(int client);

  /// Makes the client's whole working set resident and pinned, faulting
  /// pages in from the ledger and evicting cold unpinned pages of other
  /// clients as needed. Returns true when fully resident; on a shortfall
  /// (device + ledger pressure) pins what fits, restores any scrubbed
  /// backing so correctness never depends on residency, and counts a
  /// pin_shortfall.
  bool pin_working_set(int client);

  /// Drops the pins taken by pin_working_set (job completed).
  void unpin(int client);

  /// True when every page the client bound is device-resident.
  bool working_set_resident(int client) const;

  /// Write-allocate for a host write into `id`'s backing (SND): any
  /// spilled copies are stale now, so their ledger slots are dropped.
  void host_write(AllocId id);

  /// Marks `id` touched (clock reference bits; prefetch-hit accounting).
  void touch(AllocId id);

  /// Guarantees `id`'s backing bytes are readable from the host (STP /
  /// client result reads): restores any scrubbed pages from the ledger.
  Status ensure_readable(AllocId id);

  Bytes resident_bytes() const { return table_.resident_bytes(); }
  Bytes ledger_bytes() const;
  Bytes ledger_capacity() const { return config_.host_ledger_capacity; }

  /// Cross-device residency hand-off: makes every page the client bound
  /// host-authoritative (restoring spilled copies from this pager's
  /// ledger), drops the client's pins, frames and ledger slots here, and
  /// re-binds the same backing ranges into `target` in bind order. Pages
  /// start cold on the target — its next pin_working_set faults them in —
  /// so results cannot depend on what was resident where. After success
  /// this pager's residency and ledger bytes for the client are zero.
  /// Returns the backing bytes handed off; kNotFound when the client has
  /// no bindings here.
  StatusOr<Bytes> handoff_client(int client, Pager& target);

  /// Exports vmem.* counters/gauges plus the frame allocator's
  /// fragmentation and high-water gauges into `registry`. The labeled
  /// overload replaces the "vmem." / "gpu.mem." namespaces — the
  /// per-device metric labels used when several pagers (memory domains)
  /// share one registry, e.g. "vmem.device0." / "gpu.device0.mem.".
  void export_metrics(obs::Registry& registry) const;
  void export_metrics(obs::Registry& registry, const std::string& vmem_ns,
                      const std::string& mem_ns) const;

  /// Test hook: observes every page state transition
  /// (alloc, page index, new state) — e.g. to assert kInFlight windows.
  using TransitionHook = std::function<void(AllocId, std::size_t, PageState)>;
  void set_transition_hook(TransitionHook hook) {
    transition_hook_ = std::move(hook);
  }

 private:
  struct LedgerSlot {
    std::unique_ptr<std::byte[]> data;
  };

  void set_state(Allocation& alloc, std::size_t index, PageState state);
  /// Brings one page device-resident; false on shortfall.
  bool fill_page(Allocation& alloc, std::size_t index);
  /// Clock sweep: reclaims one unpinned resident frame; false when every
  /// resident page is pinned or the ledger cannot take another spill.
  bool evict_one();
  void spill(Allocation& alloc, std::size_t index);
  void restore_backing(Allocation& alloc, std::size_t index);
  void drop_ledger_slot(Page& page);
  std::size_t reserve_slot();
  void free_frame(Page& page);

  PagerConfig config_;
  fault::Injector* injector_;
  obs::Tracer* tracer_;
  PageTable table_;
  gpu::DeviceMemoryAllocator frames_;
  std::vector<LedgerSlot> slots_;
  std::deque<std::size_t> free_slots_;
  std::size_t slots_in_use_ = 0;
  // Clock hand: position of the next eviction scan.
  AllocId hand_alloc_ = 0;
  std::size_t hand_page_ = 0;
  PagerCounters counters_;
  TransitionHook transition_hook_;
};

}  // namespace vgpu::vmem
