#include "vmem/pager.hpp"

#include <cstring>

#include "obs/metrics.hpp"

namespace vgpu::vmem {

namespace {
/// Scrub pattern: loud in hexdumps, never a plausible float or pointer.
constexpr std::byte kScrubByte{0xAB};
}  // namespace

Pager::Pager(PagerConfig config, fault::Injector* injector,
             obs::Tracer* tracer)
    : config_(config),
      injector_(injector),
      tracer_(tracer),
      table_(config.page_size),
      frames_(config.device_capacity) {
  VGPU_ASSERT(config_.device_capacity >= config_.page_size);
  VGPU_ASSERT(config_.host_ledger_capacity >= 0);
  if (injector_ != nullptr) {
    frames_.set_fail_hook([this] {
      const bool fail = injector_->should_fail(fault::Point::kDeviceAlloc);
      if (fail) ++counters_.frame_alloc_failures;
      return fail;
    });
  }
}

void Pager::set_state(Allocation& alloc, std::size_t index, PageState state) {
  alloc.pages[index].state = state;
  if (transition_hook_) transition_hook_(alloc.id, index, state);
}

std::size_t Pager::reserve_slot() {
  if (!free_slots_.empty()) {
    const std::size_t slot = free_slots_.front();
    free_slots_.pop_front();
    ++slots_in_use_;
    return slot;
  }
  const Bytes next_size =
      static_cast<Bytes>(slots_.size() + 1) * config_.page_size;
  if (next_size > config_.host_ledger_capacity) return kNoSlot;
  LedgerSlot slot;
  slot.data = std::make_unique<std::byte[]>(
      static_cast<std::size_t>(config_.page_size));
  slots_.push_back(std::move(slot));
  ++slots_in_use_;
  return slots_.size() - 1;
}

void Pager::drop_ledger_slot(Page& page) {
  if (page.ledger_slot == kNoSlot) return;
  free_slots_.push_back(page.ledger_slot);
  --slots_in_use_;
  page.ledger_slot = kNoSlot;
  page.ledger_valid = false;
}

void Pager::free_frame(Page& page) {
  if (page.frame == 0) return;
  (void)frames_.free(page.frame);
  page.frame = 0;
}

Bytes Pager::ledger_bytes() const {
  return static_cast<Bytes>(slots_in_use_) * config_.page_size;
}

void Pager::spill(Allocation& alloc, std::size_t index) {
  Page& page = alloc.pages[index];
  auto [base, len] = table_.page_span(alloc, index);
  if (page.ledger_valid) {
    // Clean page: the ledger copy is still current, drop the frame only.
    ++counters_.clean_drops;
  } else {
    const std::size_t slot = reserve_slot();
    VGPU_ASSERT(slot != kNoSlot);  // evict_one() checked availability
    if (base != nullptr) {
      std::memcpy(slots_[slot].data.get(), base,
                  static_cast<std::size_t>(len));
    }
    page.ledger_slot = slot;
    page.ledger_valid = true;
    ++counters_.page_outs;
  }
  if (config_.scrub_on_evict && base != nullptr) {
    std::memset(base, static_cast<int>(kScrubByte),
                static_cast<std::size_t>(len));
    page.scrubbed = true;
  }
  free_frame(page);
  page.prefetched = false;
  set_state(alloc, index, PageState::kHost);
}

bool Pager::evict_one() {
  auto& allocs = table_.allocations();
  if (allocs.empty()) return false;
  const bool slot_available =
      !free_slots_.empty() ||
      static_cast<Bytes>(slots_.size() + 1) * config_.page_size <=
          config_.host_ledger_capacity;

  auto it = allocs.lower_bound(hand_alloc_);
  std::size_t index = hand_page_;
  if (it == allocs.end() || it->first != hand_alloc_) {
    if (it == allocs.end()) it = allocs.begin();
    index = 0;
  }
  // Two full sweeps bound the second-chance pass.
  const std::size_t max_steps = 2 * table_.total_pages() + 1;
  for (std::size_t step = 0; step < max_steps; ++step) {
    if (index >= it->second.pages.size()) {
      ++it;
      if (it == allocs.end()) it = allocs.begin();
      index = 0;
    }
    Allocation& alloc = it->second;
    Page& page = alloc.pages[index];
    if (page.state == PageState::kResident && page.pin_count == 0 &&
        (page.ledger_valid || slot_available)) {
      if (page.referenced) {
        page.referenced = false;  // second chance
      } else {
        const SimTime begin =
            tracer_ != nullptr ? tracer_->begin_span() : obs::kSpanDisabled;
        spill(alloc, index);
        ++counters_.evicted_pages;
        if (tracer_ != nullptr) {
          tracer_->end_span(begin, obs::Phase::kPageOut, alloc.client, 1);
        }
        hand_alloc_ = it->first;
        hand_page_ = index + 1;
        return true;
      }
    }
    ++index;
  }
  return false;
}

void Pager::restore_backing(Allocation& alloc, std::size_t index) {
  Page& page = alloc.pages[index];
  VGPU_ASSERT(page.ledger_valid);
  auto [base, len] = table_.page_span(alloc, index);
  if (base != nullptr) {
    std::memcpy(base, slots_[page.ledger_slot].data.get(),
                static_cast<std::size_t>(len));
  }
  page.scrubbed = false;
  ++counters_.host_restores;
}

bool Pager::fill_page(Allocation& alloc, std::size_t index) {
  Page& page = alloc.pages[index];
  set_state(alloc, index, PageState::kInFlight);
  if (injector_ != nullptr) {
    injector_->maybe_stall(fault::Point::kVmemPageIn);
  }
  StatusOr<gpu::DevPtr> frame = frames_.allocate(config_.page_size);
  while (!frame.ok()) {
    if (!evict_one()) {
      // Shortfall: the page stays cold. Restore scrubbed backing so a
      // kernel reading it still sees the authoritative bytes.
      if (page.scrubbed) restore_backing(alloc, index);
      set_state(alloc, index, PageState::kHost);
      return false;
    }
    frame = frames_.allocate(config_.page_size);
  }
  page.frame = *frame;
  if (page.ledger_valid) {
    // Restore the spilled copy; the slot is kept so an unmodified page
    // can later be dropped without a second spill copy.
    auto [base, len] = table_.page_span(alloc, index);
    if (base != nullptr && page.scrubbed) {
      std::memcpy(base, slots_[page.ledger_slot].data.get(),
                  static_cast<std::size_t>(len));
    }
    page.scrubbed = false;
    ++counters_.page_ins;
  }
  set_state(alloc, index, PageState::kResident);
  return true;
}

bool Pager::pin_working_set(int client) {
  const SimTime begin =
      tracer_ != nullptr ? tracer_->begin_span() : obs::kSpanDisabled;
  bool all_resident = true;
  long filled = 0;
  for (AllocId id : table_.client_allocs(client)) {
    Allocation* alloc = table_.find(id);
    if (alloc == nullptr) continue;
    int window = 0;  // remaining sequential-prefetch budget
    for (std::size_t i = 0; i < alloc->pages.size(); ++i) {
      Page& page = alloc->pages[i];
      if (page.state == PageState::kResident) {
        if (page.prefetched) {
          ++counters_.prefetch_hits;
          page.prefetched = false;
        }
        page.referenced = true;
        page.pin_count = 1;
        window = 0;  // a resident page breaks the sequential run
        continue;
      }
      const bool lead = window == 0;
      if (!fill_page(*alloc, i)) {
        all_resident = false;
        window = 0;
        continue;
      }
      ++filled;
      if (lead) {
        ++counters_.faults;
        window = config_.prefetch_window;
      } else {
        ++counters_.prefetch_issued;
        page.prefetched = true;
        --window;
      }
      page.referenced = true;
      page.pin_count = 1;
    }
  }
  if (!all_resident) ++counters_.pin_shortfalls;
  if (tracer_ != nullptr && filled > 0) {
    tracer_->end_span(begin, obs::Phase::kPageIn, client,
                      static_cast<std::int32_t>(filled));
  }
  return all_resident;
}

void Pager::unpin(int client) {
  for (AllocId id : table_.client_allocs(client)) {
    Allocation* alloc = table_.find(id);
    if (alloc == nullptr) continue;
    for (Page& page : alloc->pages) {
      if (page.pin_count > 0) --page.pin_count;
    }
  }
}

bool Pager::working_set_resident(int client) const {
  const auto ids = table_.client_allocs(client);
  if (ids.empty()) return false;
  for (AllocId id : ids) {
    const Allocation* alloc = table_.find(id);
    if (alloc == nullptr) continue;
    for (const Page& page : alloc->pages) {
      if (page.state != PageState::kResident) return false;
    }
  }
  return true;
}

void Pager::host_write(AllocId id) {
  Allocation* alloc = table_.find(id);
  if (alloc == nullptr) return;
  for (Page& page : alloc->pages) {
    // Write-allocate: the host bytes are authoritative now; any spilled
    // copy is stale and must never be restored over them.
    drop_ledger_slot(page);
    page.scrubbed = false;
    page.referenced = true;
    if (page.prefetched) {
      ++counters_.prefetch_hits;
      page.prefetched = false;
    }
  }
}

void Pager::touch(AllocId id) {
  Allocation* alloc = table_.find(id);
  if (alloc == nullptr) return;
  for (Page& page : alloc->pages) {
    page.referenced = true;
    if (page.prefetched) {
      ++counters_.prefetch_hits;
      page.prefetched = false;
    }
  }
}

Status Pager::ensure_readable(AllocId id) {
  Allocation* alloc = table_.find(id);
  if (alloc == nullptr) return NotFound("vmem: unknown allocation");
  for (std::size_t i = 0; i < alloc->pages.size(); ++i) {
    if (alloc->pages[i].scrubbed) restore_backing(*alloc, i);
  }
  return Status::Ok();
}

Status Pager::release(AllocId id) {
  Allocation* alloc = table_.find(id);
  if (alloc == nullptr) return NotFound("vmem: unknown allocation");
  for (std::size_t i = 0; i < alloc->pages.size(); ++i) {
    Page& page = alloc->pages[i];
    page.pin_count = 0;  // tolerate forced teardown of a doomed client
    free_frame(page);
    drop_ledger_slot(page);
  }
  return table_.drop(id);
}

Bytes Pager::release_client(int client) {
  Bytes ledger_reclaimed = 0;
  for (AllocId id : table_.client_allocs(client)) {
    const Allocation* alloc = table_.find(id);
    if (alloc == nullptr) continue;
    for (const Page& page : alloc->pages) {
      if (page.ledger_slot != kNoSlot) ledger_reclaimed += config_.page_size;
    }
    (void)release(id);
  }
  return ledger_reclaimed;
}

StatusOr<Bytes> Pager::handoff_client(int client, Pager& target) {
  VGPU_ASSERT_MSG(&target != this, "handoff to self");
  const std::vector<AllocId> ids = table_.client_allocs(client);
  if (ids.empty()) {
    return NotFound("vmem: client " + std::to_string(client) +
                    " has no bindings to hand off");
  }
  // Make the backing authoritative while this ledger still holds the
  // spilled copies; a restore failure aborts the move with all source
  // state intact.
  for (AllocId id : ids) {
    Status readable = ensure_readable(id);
    if (!readable.ok()) return readable;
  }
  Bytes moved = 0;
  std::vector<std::pair<std::byte*, Bytes>> spans;
  spans.reserve(ids.size());
  for (AllocId id : ids) {
    const Allocation* alloc = table_.find(id);
    spans.emplace_back(alloc->base, alloc->size);
    moved += alloc->size;
  }
  unpin(client);
  for (AllocId id : ids) VGPU_ASSERT(release(id).ok());
  for (const auto& [base, size] : spans) target.bind(client, base, size);
  ++counters_.handoffs_out;
  counters_.bytes_handed_off += moved;
  ++target.counters_.handoffs_in;
  target.counters_.bytes_handed_off += moved;
  return moved;
}

void Pager::export_metrics(obs::Registry& registry) const {
  export_metrics(registry, "vmem.", "gpu.mem.");
}

void Pager::export_metrics(obs::Registry& registry,
                           const std::string& vmem_ns,
                           const std::string& mem_ns) const {
  const auto cnt = [&](const char* name, long value) {
    registry.counter(vmem_ns + name)->set(value);
  };
  cnt("faults", counters_.faults);
  cnt("page_ins", counters_.page_ins);
  cnt("page_outs", counters_.page_outs);
  cnt("evictions_pages", counters_.evicted_pages);
  cnt("clean_drops", counters_.clean_drops);
  cnt("prefetch_issued", counters_.prefetch_issued);
  cnt("prefetch_hits", counters_.prefetch_hits);
  cnt("pin_shortfalls", counters_.pin_shortfalls);
  cnt("host_restores", counters_.host_restores);
  cnt("frame_alloc_failures", counters_.frame_alloc_failures);
  cnt("handoffs_out", counters_.handoffs_out);
  cnt("handoffs_in", counters_.handoffs_in);
  cnt("bytes_handed_off", counters_.bytes_handed_off);
  registry.gauge(vmem_ns + "resident_bytes")
      ->set(static_cast<double>(table_.resident_bytes()));
  registry.gauge(vmem_ns + "ledger_bytes")
      ->set(static_cast<double>(ledger_bytes()));
  registry.gauge(vmem_ns + "pages_total")
      ->set(static_cast<double>(table_.total_pages()));
  registry.gauge(mem_ns + "used")->set(static_cast<double>(frames_.used()));
  registry.gauge(mem_ns + "high_water")
      ->set(static_cast<double>(frames_.high_water()));
  registry.gauge(mem_ns + "largest_free_extent")
      ->set(static_cast<double>(frames_.largest_free_extent()));
  registry.gauge(mem_ns + "fragmentation_pct")
      ->set(frames_.fragmentation() * 100.0);
}

}  // namespace vgpu::vmem
