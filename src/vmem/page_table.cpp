#include "vmem/page_table.hpp"

#include <algorithm>

#include "common/math.hpp"

namespace vgpu::vmem {

const char* page_state_name(PageState state) {
  switch (state) {
    case PageState::kHost:
      return "host";
    case PageState::kInFlight:
      return "in_flight";
    case PageState::kResident:
      return "resident";
  }
  return "?";
}

PageTable::PageTable(Bytes page_size) : page_size_(page_size) {
  VGPU_ASSERT(page_size_ > 0);
  VGPU_ASSERT(page_size_ % gpu::DeviceMemoryAllocator::kAlignment == 0);
}

std::size_t PageTable::page_count(Bytes size) const {
  return static_cast<std::size_t>(ceil_div(size, page_size_));
}

AllocId PageTable::bind(int client, std::byte* base, Bytes size) {
  VGPU_ASSERT(size > 0);
  const AllocId id = next_id_++;
  Allocation alloc;
  alloc.id = id;
  alloc.client = client;
  alloc.base = base;
  alloc.size = size;
  alloc.pages.resize(page_count(size));
  total_pages_ += alloc.pages.size();
  allocs_.emplace(id, std::move(alloc));
  by_client_[client].push_back(id);
  return id;
}

Status PageTable::drop(AllocId id) {
  auto it = allocs_.find(id);
  if (it == allocs_.end()) return NotFound("vmem: unknown allocation");
  for (const Page& page : it->second.pages) {
    if (page.pin_count > 0) {
      return InvalidArgument("vmem: dropping a pinned allocation");
    }
  }
  auto by = by_client_.find(it->second.client);
  if (by != by_client_.end()) {
    std::erase(by->second, id);
    if (by->second.empty()) by_client_.erase(by);
  }
  total_pages_ -= it->second.pages.size();
  allocs_.erase(it);
  return Status::Ok();
}

Allocation* PageTable::find(AllocId id) {
  auto it = allocs_.find(id);
  return it == allocs_.end() ? nullptr : &it->second;
}

const Allocation* PageTable::find(AllocId id) const {
  auto it = allocs_.find(id);
  return it == allocs_.end() ? nullptr : &it->second;
}

std::vector<AllocId> PageTable::client_allocs(int client) const {
  auto it = by_client_.find(client);
  return it == by_client_.end() ? std::vector<AllocId>{} : it->second;
}

std::pair<std::byte*, Bytes> PageTable::page_span(Allocation& alloc,
                                                  std::size_t index) const {
  const Bytes offset = static_cast<Bytes>(index) * page_size_;
  const Bytes len = std::min(page_size_, alloc.size - offset);
  std::byte* base =
      alloc.base == nullptr ? nullptr : alloc.base + offset;
  return {base, len};
}

std::size_t PageTable::resident_pages() const {
  std::size_t n = 0;
  for (const auto& [id, alloc] : allocs_) {
    for (const Page& page : alloc.pages) {
      if (page.state == PageState::kResident) ++n;
    }
  }
  return n;
}

std::size_t PageTable::pinned_pages() const {
  std::size_t n = 0;
  for (const auto& [id, alloc] : allocs_) {
    for (const Page& page : alloc.pages) {
      if (page.pin_count > 0) ++n;
    }
  }
  return n;
}

Bytes PageTable::resident_bytes() const {
  return static_cast<Bytes>(resident_pages()) * page_size_;
}

}  // namespace vgpu::vmem
