#include "ipc/shm.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace vgpu::ipc {

namespace {
Status errno_status(const std::string& what) {
  return Internal(what + ": " + std::strerror(errno));
}
}  // namespace

StatusOr<SharedMemory> SharedMemory::create(const std::string& name,
                                            Bytes size) {
  if (size <= 0) return InvalidArgument("shared memory size must be > 0");
  ::shm_unlink(name.c_str());  // remove stale region, ignore errors
  const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) return errno_status("shm_open(create " + name + ")");
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    const Status st = errno_status("ftruncate(" + name + ")");
    ::close(fd);
    ::shm_unlink(name.c_str());
    return st;
  }
  void* data = ::mmap(nullptr, static_cast<std::size_t>(size),
                      PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (data == MAP_FAILED) {
    const Status st = errno_status("mmap(" + name + ")");
    ::shm_unlink(name.c_str());
    return st;
  }
  std::memset(data, 0, static_cast<std::size_t>(size));
  return SharedMemory(name, data, size, /*owner=*/true);
}

StatusOr<SharedMemory> SharedMemory::open(const std::string& name,
                                          Bytes size) {
  if (size <= 0) return InvalidArgument("shared memory size must be > 0");
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) return errno_status("shm_open(" + name + ")");
  void* data = ::mmap(nullptr, static_cast<std::size_t>(size),
                      PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (data == MAP_FAILED) return errno_status("mmap(" + name + ")");
  return SharedMemory(name, data, size, /*owner=*/false);
}

StatusOr<SharedMemory> SharedMemory::open_existing(const std::string& name) {
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) return errno_status("shm_open(" + name + ")");
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    const Status status = errno_status("fstat(" + name + ")");
    ::close(fd);
    return status;
  }
  if (st.st_size <= 0) {
    ::close(fd);
    return FailedPrecondition("shared memory " + name + " has no size yet");
  }
  const Bytes size = static_cast<Bytes>(st.st_size);
  void* data = ::mmap(nullptr, static_cast<std::size_t>(size),
                      PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (data == MAP_FAILED) return errno_status("mmap(" + name + ")");
  return SharedMemory(name, data, size, /*owner=*/false);
}

bool SharedMemory::advise_hugepages() {
#ifdef MADV_HUGEPAGE
  if (data_ == nullptr) return false;
  return ::madvise(data_, static_cast<std::size_t>(size_), MADV_HUGEPAGE) == 0;
#else
  return false;
#endif
}

void SharedMemory::unlink(const std::string& name) {
  ::shm_unlink(name.c_str());
}

SharedMemory::SharedMemory(SharedMemory&& other) noexcept
    : name_(std::move(other.name_)),
      data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      owner_(std::exchange(other.owner_, false)) {}

SharedMemory& SharedMemory::operator=(SharedMemory&& other) noexcept {
  if (this != &other) {
    reset();
    name_ = std::move(other.name_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    owner_ = std::exchange(other.owner_, false);
  }
  return *this;
}

SharedMemory::~SharedMemory() { reset(); }

void SharedMemory::reset() {
  if (data_ != nullptr) {
    ::munmap(data_, static_cast<std::size_t>(size_));
    data_ = nullptr;
  }
  if (owner_ && !name_.empty()) {
    ::shm_unlink(name_.c_str());
    owner_ = false;
  }
}

}  // namespace vgpu::ipc
