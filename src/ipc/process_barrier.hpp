// Process-shared barrier placed in shared memory: the live GVM uses it to
// release all SPMD clients simultaneously (the "start simultaneously"
// condition of the paper's turnaround measurement).
#pragma once

#include <pthread.h>

#include "common/status.hpp"

namespace vgpu::ipc {

/// A pthread barrier with PTHREAD_PROCESS_SHARED, embeddable in a
/// SharedMemory region. The creating process calls init(); every
/// participant (threads or forked processes) calls wait().
class ProcessBarrier {
 public:
  ProcessBarrier() = default;
  ProcessBarrier(const ProcessBarrier&) = delete;
  ProcessBarrier& operator=(const ProcessBarrier&) = delete;

  Status init(unsigned parties) {
    pthread_barrierattr_t attr;
    if (pthread_barrierattr_init(&attr) != 0) {
      return Internal("barrierattr_init failed");
    }
    pthread_barrierattr_setpshared(&attr, PTHREAD_PROCESS_SHARED);
    const int rc = pthread_barrier_init(&barrier_, &attr, parties);
    pthread_barrierattr_destroy(&attr);
    if (rc != 0) return Internal("barrier_init failed");
    initialized_ = true;
    return Status::Ok();
  }

  /// Blocks until `parties` participants arrive. Returns true for exactly
  /// one participant per generation (the "serial" thread).
  bool wait() {
    VGPU_ASSERT(initialized_);
    return pthread_barrier_wait(&barrier_) == PTHREAD_BARRIER_SERIAL_THREAD;
  }

  void destroy() {
    if (initialized_) {
      pthread_barrier_destroy(&barrier_);
      initialized_ = false;
    }
  }

 private:
  pthread_barrier_t barrier_;
  bool initialized_ = false;
};

}  // namespace vgpu::ipc
