#include "ipc/transport.hpp"

#ifdef __linux__
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <ctime>
#endif

namespace vgpu::ipc {

const char* transport_name(TransportKind kind) {
  switch (kind) {
    case TransportKind::kMessageQueue:
      return "mqueue";
    case TransportKind::kShmRing:
      return "shm_ring";
  }
  return "?";
}

bool parse_transport(const std::string& text, TransportKind* out) {
  if (text == "mq" || text == "mqueue") {
    *out = TransportKind::kMessageQueue;
    return true;
  }
  if (text == "shm" || text == "shm_ring" || text == "ring") {
    *out = TransportKind::kShmRing;
    return true;
  }
  return false;
}

#ifdef __linux__

namespace {
// FUTEX_WAIT/WAKE without FUTEX_PRIVATE_FLAG: the word may live in a
// shared-memory mapping visible from several processes.
long futex(std::uint32_t* addr, int op, std::uint32_t value,
           const struct timespec* timeout) {
  return ::syscall(SYS_futex, addr, op, value, timeout, nullptr, 0);
}
}  // namespace

void Doorbell::ring() {
  // seq_cst on both sides orders the epoch bump against the waiter-count
  // read: either the ringer sees the registered waiter (and wakes it), or
  // the waiter's FUTEX_WAIT sees the moved epoch (and returns EAGAIN).
  word_->epoch.fetch_add(1, std::memory_order_seq_cst);
  if (word_->waiters.load(std::memory_order_seq_cst) != 0) {
    futex(reinterpret_cast<std::uint32_t*>(&word_->epoch), FUTEX_WAKE,
          INT_MAX, nullptr);
  }
}

bool Doorbell::wait(std::uint32_t seen, std::chrono::microseconds park) {
  if (park <= std::chrono::microseconds::zero()) return epoch() != seen;
  struct timespec ts {};
  ts.tv_sec = static_cast<time_t>(park.count() / 1'000'000);
  ts.tv_nsec = static_cast<long>((park.count() % 1'000'000) * 1'000);
  word_->waiters.fetch_add(1, std::memory_order_seq_cst);
  // EAGAIN (word already moved), EINTR and ETIMEDOUT are all fine: the
  // caller re-checks its predicate either way.
  futex(reinterpret_cast<std::uint32_t*>(&word_->epoch), FUTEX_WAIT, seen,
        &ts);
  word_->waiters.fetch_sub(1, std::memory_order_seq_cst);
  return epoch() != seen;
}

#else  // !__linux__

void Doorbell::ring() {
  word_->epoch.fetch_add(1, std::memory_order_seq_cst);
}

bool Doorbell::wait(std::uint32_t seen, std::chrono::microseconds park) {
  // Portability fallback: bounded sleep-poll. WaitStrategy keeps parks
  // short, so worst-case wakeup latency stays near `park`.
  std::this_thread::sleep_for(
      std::min(park, std::chrono::microseconds(50)));
  return epoch() != seen;
}

#endif

}  // namespace vgpu::ipc
