#include "ipc/mqueue.hpp"

#include <cerrno>
#include <ctime>
#include <utility>

namespace vgpu::ipc {

namespace {
Status errno_status(const std::string& what) {
  return Internal(what + ": " + std::strerror(errno));
}
}  // namespace

StatusOr<MessageQueueBase> MessageQueueBase::create_raw(
    const std::string& name, long max_messages, long message_size) {
  ::mq_unlink(name.c_str());  // remove stale queue, ignore errors
  struct mq_attr attr {};
  attr.mq_maxmsg = max_messages;
  attr.mq_msgsize = message_size;
  const mqd_t mq =
      ::mq_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600, &attr);
  if (mq == static_cast<mqd_t>(-1)) {
    return errno_status("mq_open(create " + name + ")");
  }
  return MessageQueueBase(name, mq, /*owner=*/true);
}

StatusOr<MessageQueueBase> MessageQueueBase::open_raw(
    const std::string& name) {
  const mqd_t mq = ::mq_open(name.c_str(), O_RDWR);
  if (mq == static_cast<mqd_t>(-1)) {
    return errno_status("mq_open(" + name + ")");
  }
  return MessageQueueBase(name, mq, /*owner=*/false);
}

Status MessageQueueBase::send_raw(const void* data, std::size_t size) {
  if (::mq_send(mq_, static_cast<const char*>(data), size, 0) != 0) {
    return errno_status("mq_send(" + name_ + ")");
  }
  return Status::Ok();
}

Status MessageQueueBase::try_send_raw(const void* data, std::size_t size) {
  // An epoch deadline makes mq_timedsend a non-blocking attempt without
  // toggling O_NONBLOCK on the shared descriptor.
  struct timespec ts {};
  int rc;
  do {
    rc = ::mq_timedsend(mq_, static_cast<const char*>(data), size, 0, &ts);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (errno == ETIMEDOUT || errno == EAGAIN) {
      return Unavailable("mq_send would block on " + name_);
    }
    return errno_status("mq_send(" + name_ + ")");
  }
  return Status::Ok();
}

void MessageQueueBase::unlink(const std::string& name) {
  ::mq_unlink(name.c_str());
}

Status MessageQueueBase::receive_raw(
    void* data, std::size_t size,
    std::optional<std::chrono::milliseconds> timeout) {
  // mq_receive requires a buffer of at least mq_msgsize; callers use the
  // exact message type, which matches the creation-time size.
  ssize_t got;
  if (timeout.has_value()) {
    // POSIX pins mq_timedreceive's absolute deadline to CLOCK_REALTIME,
    // so a naive "realtime now + timeout" stretches or shrinks with
    // wall-clock jumps (NTP steps, manual date changes). Anchor the true
    // deadline on CLOCK_MONOTONIC and re-derive the realtime timespec on
    // every retry: an EINTR or a jump-induced early ETIMEDOUT just
    // re-arms from the monotonic remainder.
    const auto deadline = std::chrono::steady_clock::now() + *timeout;
    for (;;) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              deadline - std::chrono::steady_clock::now());
      struct timespec ts {};
      if (remaining.count() > 0) {
        ::clock_gettime(CLOCK_REALTIME, &ts);
        const auto ns = remaining.count();
        ts.tv_sec +=
            static_cast<time_t>((ts.tv_nsec + ns) / 1'000'000'000LL);
        ts.tv_nsec = static_cast<long>((ts.tv_nsec + ns) % 1'000'000'000LL);
      }
      // remaining <= 0 leaves ts at the epoch: one final non-blocking
      // attempt, then timeout.
      got = ::mq_timedreceive(mq_, static_cast<char*>(data), size, nullptr,
                              &ts);
      if (got >= 0) break;
      if (errno == EINTR) continue;
      if (errno == ETIMEDOUT) {
        if (remaining.count() > 0) continue;  // wall clock jumped; re-arm
        return Unavailable("mq_receive timeout on " + name_);
      }
      break;  // real error
    }
  } else {
    do {
      got = ::mq_receive(mq_, static_cast<char*>(data), size, nullptr);
    } while (got < 0 && errno == EINTR);
  }
  if (got < 0) return errno_status("mq_receive(" + name_ + ")");
  if (static_cast<std::size_t>(got) != size) {
    return Internal("mq_receive(" + name_ + "): size mismatch");
  }
  return Status::Ok();
}

MessageQueueBase::MessageQueueBase(MessageQueueBase&& other) noexcept
    : name_(std::move(other.name_)),
      mq_(std::exchange(other.mq_, static_cast<mqd_t>(-1))),
      owner_(std::exchange(other.owner_, false)) {}

MessageQueueBase& MessageQueueBase::operator=(
    MessageQueueBase&& other) noexcept {
  if (this != &other) {
    reset();
    name_ = std::move(other.name_);
    mq_ = std::exchange(other.mq_, static_cast<mqd_t>(-1));
    owner_ = std::exchange(other.owner_, false);
  }
  return *this;
}

MessageQueueBase::~MessageQueueBase() { reset(); }

void MessageQueueBase::reset() {
  if (mq_ != static_cast<mqd_t>(-1)) {
    ::mq_close(mq_);
    mq_ = static_cast<mqd_t>(-1);
  }
  if (owner_ && !name_.empty()) {
    ::mq_unlink(name_.c_str());
    owner_ = false;
  }
}

}  // namespace vgpu::ipc
