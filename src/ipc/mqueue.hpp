// RAII wrapper for POSIX message queues — the request/response control
// plane of the live GVM (paper Section V: two POSIX message queues stream
// process requests into the manager and return handshakes).
//
// Messages are fixed-size PODs (type parameter), which matches the
// protocol's small REQ/SND/STR/STP/RCV/RLS records and keeps mq_receive
// buffers simple.
#pragma once

#include <mqueue.h>

#include <chrono>
#include <cstring>
#include <optional>
#include <string>
#include <type_traits>

#include "common/status.hpp"

namespace vgpu::ipc {

class MessageQueueBase {
 public:
  MessageQueueBase() = default;
  MessageQueueBase(MessageQueueBase&& other) noexcept;
  MessageQueueBase& operator=(MessageQueueBase&& other) noexcept;
  MessageQueueBase(const MessageQueueBase&) = delete;
  MessageQueueBase& operator=(const MessageQueueBase&) = delete;
  ~MessageQueueBase();

  bool valid() const { return mq_ != static_cast<mqd_t>(-1); }
  const std::string& name() const { return name_; }

  /// Removes `name` from the namespace regardless of ownership (missing
  /// names are ignored) — the reclamation path for queues whose creator
  /// died without running its destructor.
  static void unlink(const std::string& name);

 protected:
  static StatusOr<MessageQueueBase> create_raw(const std::string& name,
                                               long max_messages,
                                               long message_size);
  static StatusOr<MessageQueueBase> open_raw(const std::string& name);

  Status send_raw(const void* data, std::size_t size);
  /// Non-blocking send: kUnavailable when the queue is full. Server-side
  /// response paths use this so a dead client that stopped draining its
  /// queue can never wedge the serve loop.
  Status try_send_raw(const void* data, std::size_t size);
  /// Blocks until a message arrives or `timeout` elapses (nullopt = block
  /// forever; 0 = non-blocking poll). Returns kUnavailable on timeout.
  ///
  /// The timeout is measured against CLOCK_MONOTONIC even though the
  /// underlying mq_timedreceive only accepts CLOCK_REALTIME deadlines:
  /// the implementation re-derives the realtime timespec from the
  /// monotonic remainder across EINTR retries and wall-clock jumps, so a
  /// stepped system clock can neither truncate nor extend the wait.
  Status receive_raw(void* data, std::size_t size,
                     std::optional<std::chrono::milliseconds> timeout);

  MessageQueueBase(std::string name, mqd_t mq, bool owner)
      : name_(std::move(name)), mq_(mq), owner_(owner) {}

  void reset();

  std::string name_;
  mqd_t mq_ = static_cast<mqd_t>(-1);
  bool owner_ = false;
};

/// Typed POSIX message queue carrying trivially-copyable `T` records.
template <typename T>
class MessageQueue : public MessageQueueBase {
  static_assert(std::is_trivially_copyable_v<T>,
                "queue messages must be trivially copyable");

 public:
  MessageQueue() = default;

  static StatusOr<MessageQueue> create(const std::string& name,
                                       long max_messages = 8) {
    auto base = create_raw(name, max_messages, sizeof(T));
    if (!base.ok()) return base.status();
    return MessageQueue(std::move(*base));
  }

  static StatusOr<MessageQueue> open(const std::string& name) {
    auto base = open_raw(name);
    if (!base.ok()) return base.status();
    return MessageQueue(std::move(*base));
  }

  Status send(const T& message) { return send_raw(&message, sizeof(T)); }

  /// Non-blocking send: kUnavailable when the queue is full.
  Status try_send(const T& message) {
    return try_send_raw(&message, sizeof(T));
  }

  StatusOr<T> receive(
      std::optional<std::chrono::milliseconds> timeout = std::nullopt) {
    T message;
    const Status st = receive_raw(&message, sizeof(T), timeout);
    if (!st.ok()) return st;
    return message;
  }

 private:
  explicit MessageQueue(MessageQueueBase base)
      : MessageQueueBase(std::move(base)) {}
};

}  // namespace vgpu::ipc
