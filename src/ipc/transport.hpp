// Pluggable IPC transport layer for the live GVM control plane.
//
// Two implementations sit behind one interface:
//
//   * MessageQueue transport — the paper-faithful default (Section V: two
//     POSIX message queues per client) and the portability fallback. Every
//     message is a syscall round trip through the kernel.
//   * Shared-memory SPSC-ring transport — per-client request/response rings
//     of fixed-size protocol records embedded at the head of the client's
//     P_vsm<k> region, with a futex doorbell for blocking wakeups. The hot
//     path (spin-phase hit) is two cache-line handoffs and zero syscalls.
//
// Both sides share one adaptive WaitStrategy (spin -> yield -> block on a
// Doorbell) so the client's completion polling and the server's serve-loop
// idle wait use the same, tunable machinery. See docs/transport.md.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>

#include "common/status.hpp"
#include "common/units.hpp"
#include "ipc/mqueue.hpp"
#include "ipc/ring.hpp"

namespace vgpu::ipc {

enum class TransportKind : std::int32_t {
  kMessageQueue = 0,
  kShmRing = 1,
};

/// Capability bits a client advertises at connection time (REQ); the
/// server answers with the TransportKind it selected.
inline constexpr std::uint32_t kTransportCapMqueue = 1u << 0;
inline constexpr std::uint32_t kTransportCapShmRing = 1u << 1;
/// Client can take its data region (and ring channel) inside the server's
/// pooled vsm arena instead of creating a private P_vsm<k> segment; the
/// REQ ack's arena_offset answers the placement (-1 = declined, create
/// your own segment and re-REQ without this bit). See docs/scaling.md.
inline constexpr std::uint32_t kTransportCapVsmArena = 1u << 2;

const char* transport_name(TransportKind kind);
/// Parses the CLI spelling ("mq" | "mqueue" | "shm" | "shm_ring").
bool parse_transport(const std::string& text, TransportKind* out);

/// Pause instruction for spin loops (PAUSE/YIELD); compiler barrier on
/// other architectures.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  asm volatile("pause" ::: "memory");
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// A futex doorbell: an epoch word plus a parked-waiter count living in
/// (shared) memory. ring() bumps the epoch and issues the FUTEX_WAKE only
/// when someone is actually parked — the common ring-into-a-spinning-peer
/// case costs zero syscalls. wait() blocks until the epoch moves past a
/// previously observed value or a bounded park expires. Falls back to
/// sleep-polling where futexes are unavailable.
///
/// The wait protocol is race-free as long as callers re-check their
/// predicate between epoch() and wait(): a waiter that registers after the
/// ringer sampled the count parks on an already-moved epoch, so its
/// FUTEX_WAIT returns immediately (EAGAIN).
class Doorbell {
 public:
  struct Word {
    std::atomic<std::uint32_t> epoch{0};
    std::atomic<std::uint32_t> waiters{0};
  };
  static_assert(sizeof(std::atomic<std::uint32_t>) == sizeof(std::uint32_t),
                "futex word must be exactly 32 bits");

  explicit Doorbell(Word* word) : word_(word) {}

  bool valid() const { return word_ != nullptr; }
  std::uint32_t epoch() const {
    return word_->epoch.load(std::memory_order_acquire);
  }

  /// Publishes a new epoch and wakes every waiter.
  void ring();

  /// Blocks until the epoch differs from `seen` or `park` elapses.
  /// Returns true when the epoch moved.
  bool wait(std::uint32_t seen, std::chrono::microseconds park);

 private:
  Word* word_ = nullptr;
};

/// Size of the stand-alone doorbell region a server publishes (one cache
/// line holding the futex word).
inline constexpr Bytes kDoorbellRegionSize = 64;

struct WaitStats {
  long spin_hits = 0;   // predicate satisfied while spinning
  long yield_hits = 0;  // ... while sched_yield-ing
  long blocks = 0;      // futex parks (each is one syscall)
};

struct WaitConfig {
  /// Busy-poll iterations before yielding. The spin phase is what turns a
  /// sub-microsecond ring handoff into a syscall-free round trip.
  int spin = 4096;
  /// sched_yield() rounds between spinning and parking.
  int yields = 64;
  /// Longest single futex park; waits re-check their predicate (and any
  /// deadline) at least this often.
  std::chrono::microseconds park{500};
};

/// Adaptive spin -> yield -> block waiter shared by the ring transport's
/// receive paths and the server's serve-loop idle wait. On a single-CPU
/// system the spin budget is dropped entirely: a spinner there can only
/// delay the peer it is waiting for.
class WaitStrategy {
 public:
  explicit WaitStrategy(WaitConfig config = {}) : config_(config) {
    if (std::thread::hardware_concurrency() <= 1) config_.spin = 0;
  }

  /// Waits until `pred()` returns true. `doorbell` (optional) is parked on
  /// during the block phase; `deadline` (optional) bounds the total wait.
  /// Returns false on deadline expiry.
  template <typename Pred>
  bool wait(Pred&& pred, Doorbell* doorbell,
            std::optional<std::chrono::steady_clock::time_point> deadline =
                std::nullopt) {
    for (int i = 0; i < config_.spin; ++i) {
      if (pred()) {
        ++stats_.spin_hits;
        return true;
      }
      cpu_relax();
    }
    for (int i = 0; i < config_.yields; ++i) {
      if (pred()) {
        ++stats_.yield_hits;
        return true;
      }
      std::this_thread::yield();
    }
    for (;;) {
      // Record the epoch *before* the final predicate check so a ring()
      // between check and park is never lost.
      const std::uint32_t seen =
          doorbell != nullptr && doorbell->valid() ? doorbell->epoch() : 0;
      if (pred()) return true;
      auto park = config_.park;
      if (deadline.has_value()) {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::microseconds>(
                *deadline - std::chrono::steady_clock::now());
        if (remaining <= std::chrono::microseconds::zero()) return false;
        park = std::min(park, remaining);
      }
      ++stats_.blocks;
      if (doorbell != nullptr && doorbell->valid()) {
        doorbell->wait(seen, park);
      } else {
        std::this_thread::sleep_for(
            std::min(park, std::chrono::microseconds(50)));
      }
    }
  }

  const WaitStats& stats() const { return stats_; }
  const WaitConfig& config() const { return config_; }

 private:
  WaitConfig config_;
  WaitStats stats_;
};

/// Protocol-record slots per ring direction. A client has at most one
/// request in flight, so 64 slots never fill; the headroom lets a future
/// pipelined client batch without a layout change.
inline constexpr std::size_t kChannelSlots = 64;

inline constexpr std::uint32_t kChannelMagic = 0x56475043;  // "VGPC"
inline constexpr std::uint32_t kChannelVersion = 2;  // v2: session tokens

/// The shared-memory control block of one client<->server channel: a
/// request ring (client -> server), a response ring (server -> client) and
/// the client's doorbell word. Layout-stable POD, placed by the *client*
/// at the head of its vsm region; the server validates magic/version
/// before accepting the ring transport (else it negotiates down to the
/// message queue).
template <typename Req, typename Resp, std::size_t Slots = kChannelSlots>
struct ShmChannelBlock {
  static_assert(std::is_trivially_copyable_v<Req> &&
                    std::is_trivially_copyable_v<Resp>,
                "channel records must be trivially copyable");

  std::atomic<std::uint32_t> magic{0};  // set last, with release ordering
  std::uint32_t version = kChannelVersion;
  /// Rung by the server after pushing a response.
  Doorbell::Word client_door{};
  alignas(64) SpscRing<Req, Slots> requests;
  alignas(64) SpscRing<Resp, Slots> responses;

  /// Creator-side publish: call after construction, before handing the
  /// region's name to the peer.
  void publish() { magic.store(kChannelMagic, std::memory_order_release); }

  /// Peer-side validation.
  bool valid() const {
    return magic.load(std::memory_order_acquire) == kChannelMagic &&
           version == kChannelVersion;
  }
};

// ---------------------------------------------------------------------------
// The transport interface: a client endpoint that sends requests and
// awaits responses, and a per-client server lane that yields requests and
// carries responses back. The GVM server keeps its shared request queue
// for connection setup; everything after negotiation flows through these.
// ---------------------------------------------------------------------------

template <typename Req, typename Resp>
class ClientTransport {
 public:
  virtual ~ClientTransport() = default;
  virtual TransportKind kind() const = 0;
  virtual Status send(const Req& request) = 0;
  /// Blocks (adaptively for rings) until a response arrives; kUnavailable
  /// on timeout.
  virtual StatusOr<Resp> receive(std::chrono::milliseconds timeout) = 0;
};

template <typename Req, typename Resp>
class ServerLane {
 public:
  virtual ~ServerLane() = default;
  virtual TransportKind kind() const = 0;
  /// Non-blocking request poll. Message-queue lanes always return nullopt:
  /// their requests arrive on the server's shared queue.
  virtual std::optional<Req> try_receive() = 0;
  virtual Status send(const Resp& response) = 0;
};

/// Message-queue client endpoint over the server's shared request queue
/// and this client's private response queue (both non-owning).
template <typename Req, typename Resp>
class MqClientTransport final : public ClientTransport<Req, Resp> {
 public:
  MqClientTransport(MessageQueue<Req>* request_queue,
                    MessageQueue<Resp>* response_queue)
      : request_queue_(request_queue), response_queue_(response_queue) {}

  TransportKind kind() const override { return TransportKind::kMessageQueue; }
  Status send(const Req& request) override {
    return request_queue_->send(request);
  }
  StatusOr<Resp> receive(std::chrono::milliseconds timeout) override {
    return response_queue_->receive(timeout);
  }

 private:
  MessageQueue<Req>* request_queue_;
  MessageQueue<Resp>* response_queue_;
};

/// Message-queue server lane: wraps the per-client response queue.
template <typename Req, typename Resp>
class MqServerLane final : public ServerLane<Req, Resp> {
 public:
  explicit MqServerLane(MessageQueue<Resp>* response_queue)
      : response_queue_(response_queue) {}

  TransportKind kind() const override { return TransportKind::kMessageQueue; }
  std::optional<Req> try_receive() override { return std::nullopt; }
  Status send(const Resp& response) override {
    // Non-blocking, like the ring lane's push: a client that stopped
    // draining its queue (crashed mid-protocol) must not be able to wedge
    // the serve loop; a full queue reports kUnavailable and the client's
    // retry re-elicits the response.
    return response_queue_->try_send(response);
  }

 private:
  MessageQueue<Resp>* response_queue_;
};

/// Shm-ring client endpoint: pushes requests into the channel block and
/// rings the server's doorbell; receives via spin -> yield -> park on its
/// own doorbell word.
template <typename Req, typename Resp, std::size_t Slots = kChannelSlots>
class RingClientTransport final : public ClientTransport<Req, Resp> {
 public:
  using Block = ShmChannelBlock<Req, Resp, Slots>;

  RingClientTransport(Block* block, Doorbell::Word* server_door,
                      WaitConfig wait = {})
      : block_(block), server_door_(server_door), waiter_(wait) {}

  TransportKind kind() const override { return TransportKind::kShmRing; }

  Status send(const Req& request) override {
    if (!block_->requests.push(request)) {
      return ResourceExhausted("request ring full");
    }
    Doorbell(server_door_).ring();
    return Status::Ok();
  }

  StatusOr<Resp> receive(std::chrono::milliseconds timeout) override {
    std::optional<Resp> response;
    Doorbell door(&block_->client_door);
    const bool got = waiter_.wait(
        [&] {
          response = block_->responses.pop();
          return response.has_value();
        },
        &door, std::chrono::steady_clock::now() + timeout);
    if (!got) return Unavailable("shm-ring receive timeout");
    return *response;
  }

  const WaitStats& wait_stats() const { return waiter_.stats(); }

 private:
  Block* block_;
  Doorbell::Word* server_door_;
  WaitStrategy waiter_;
};

/// Shm-ring server lane: pops requests from the channel block, pushes
/// responses and rings the client's doorbell.
template <typename Req, typename Resp, std::size_t Slots = kChannelSlots>
class RingServerLane final : public ServerLane<Req, Resp> {
 public:
  using Block = ShmChannelBlock<Req, Resp, Slots>;

  explicit RingServerLane(Block* block) : block_(block) {}

  TransportKind kind() const override { return TransportKind::kShmRing; }

  std::optional<Req> try_receive() override {
    return block_->requests.pop();
  }

  Status send(const Resp& response) override {
    if (!block_->responses.push(response)) {
      return ResourceExhausted("response ring full");
    }
    Doorbell(&block_->client_door).ring();
    return Status::Ok();
  }

  /// True when a request is waiting (serve-loop wait predicate).
  bool has_request() const { return !block_->requests.empty(); }

 private:
  Block* block_;
};

}  // namespace vgpu::ipc
