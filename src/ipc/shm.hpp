// RAII wrappers for POSIX shared memory — the "virtual shared memory"
// data plane of the live GVM (paper Section V: one POSIX shared-memory
// region per process for data exchange with the manager).
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "common/status.hpp"
#include "common/units.hpp"

namespace vgpu::ipc {

/// A POSIX shared-memory region (shm_open + mmap). The creator owns the
/// name and unlinks it on destruction; openers just unmap.
class SharedMemory {
 public:
  /// Creates (O_CREAT | O_EXCL) a region of `size` bytes. Unlinks any
  /// stale region with the same name first.
  static StatusOr<SharedMemory> create(const std::string& name, Bytes size);

  /// Opens an existing region. `size` must match the creator's size.
  static StatusOr<SharedMemory> open(const std::string& name, Bytes size);

  /// Opens an existing region at whatever size its creator gave it
  /// (fstat). For regions whose size is a server-side decision the client
  /// cannot recompute — the control region and the pooled vsm arena.
  static StatusOr<SharedMemory> open_existing(const std::string& name);

  /// Removes `name` from the namespace regardless of ownership (missing
  /// names are ignored). Reclamation path: when a region's creator died
  /// without running its destructor, someone else must unlink the name or
  /// it leaks until reboot. Existing mappings stay valid.
  static void unlink(const std::string& name);

  SharedMemory() = default;
  SharedMemory(SharedMemory&& other) noexcept;
  SharedMemory& operator=(SharedMemory&& other) noexcept;
  SharedMemory(const SharedMemory&) = delete;
  SharedMemory& operator=(const SharedMemory&) = delete;
  ~SharedMemory();

  /// Asks the kernel to back the mapping with transparent huge pages
  /// (madvise MADV_HUGEPAGE). Best-effort: returns false where THP is
  /// unavailable; the mapping stays valid either way.
  bool advise_hugepages();

  bool valid() const { return data_ != nullptr; }
  const std::string& name() const { return name_; }
  Bytes size() const { return size_; }

  std::byte* data() { return static_cast<std::byte*>(data_); }
  const std::byte* data() const { return static_cast<const std::byte*>(data_); }
  std::span<std::byte> bytes() {
    return {data(), static_cast<std::size_t>(size_)};
  }

  template <typename T>
  T* as() {
    VGPU_ASSERT(static_cast<std::size_t>(size_) >= sizeof(T));
    return reinterpret_cast<T*>(data_);
  }

 private:
  SharedMemory(std::string name, void* data, Bytes size, bool owner)
      : name_(std::move(name)), data_(data), size_(size), owner_(owner) {}

  void reset();

  std::string name_;
  void* data_ = nullptr;
  Bytes size_ = 0;
  bool owner_ = false;  // creator unlinks on destruction
};

}  // namespace vgpu::ipc
