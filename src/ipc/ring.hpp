// Lock-free single-producer/single-consumer ring buffer, layout-stable so
// it can be placed inside a shared-memory region and used across processes.
//
// The GVM's data plane uses one ring per direction per client when
// streaming data larger than the staging buffer; it is also a useful
// standalone primitive (and is stress-tested across threads).
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <type_traits>

namespace vgpu::ipc {

/// SPSC ring of `Capacity` trivially-copyable slots. One slot is kept
/// empty to distinguish full from empty, so usable capacity is
/// Capacity - 1.
template <typename T, std::size_t Capacity>
class SpscRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "ring elements must be trivially copyable");
  static_assert(Capacity >= 2, "ring needs at least two slots");

 public:
  SpscRing() : head_(0), tail_(0) {}
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full.
  bool push(const T& value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = increment(head);
    if (next == tail_.load(std::memory_order_acquire)) return false;
    slots_[head] = value;
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Empty optional when no element is available.
  std::optional<T> pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    T value = slots_[tail];
    tail_.store(increment(tail), std::memory_order_release);
    return value;
  }

  bool empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return head >= tail ? head - tail : Capacity - tail + head;
  }

  static constexpr std::size_t capacity() { return Capacity - 1; }

 private:
  static std::size_t increment(std::size_t i) {
    return (i + 1) % Capacity;
  }

  alignas(64) std::atomic<std::size_t> head_;  // producer-owned
  alignas(64) std::atomic<std::size_t> tail_;  // consumer-owned
  T slots_[Capacity];
};

}  // namespace vgpu::ipc
