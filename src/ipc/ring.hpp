// Lock-free single-producer/single-consumer ring buffer, layout-stable so
// it can be placed inside a shared-memory region and used across processes.
//
// The GVM's transport layer embeds one ring per direction per client in
// the vsm region (see ipc/transport.hpp); it is also a useful standalone
// primitive (and is stress-tested across threads and forked processes).
//
// Fast-path design: capacity is a power of two so index wrap is a mask
// (no division), and each side caches the opposite index so the common
// case of push/pop touches only its own cache line — the acquire load of
// the peer index happens only when the cached snapshot says full/empty.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <type_traits>

namespace vgpu::ipc {

/// SPSC ring of `Capacity` trivially-copyable slots. One slot is kept
/// empty to distinguish full from empty, so usable capacity is
/// Capacity - 1.
template <typename T, std::size_t Capacity>
class SpscRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "ring elements must be trivially copyable");
  static_assert(Capacity >= 2, "ring needs at least two slots");
  static_assert((Capacity & (Capacity - 1)) == 0,
                "ring capacity must be a power of two (index wrap is a "
                "mask, not a modulo)");

 public:
  SpscRing() : head_(0), tail_(0) {}
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full.
  bool push(const T& value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & kMask;
    if (next == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (next == cached_tail_) return false;
    }
    slots_[head] = value;
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Empty optional when no element is available.
  std::optional<T> pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return std::nullopt;
    }
    T value = slots_[tail];
    tail_.store((tail + 1) & kMask, std::memory_order_release);
    return value;
  }

  bool empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return head >= tail ? head - tail : Capacity - tail + head;
  }

  static constexpr std::size_t capacity() { return Capacity - 1; }

 private:
  static constexpr std::size_t kMask = Capacity - 1;

  // Each index shares a cache line with its owner's snapshot of the
  // opposite index; zero-initialized state (fresh shared memory) is a
  // valid empty ring.
  alignas(64) std::atomic<std::size_t> head_;  // producer-owned
  std::size_t cached_tail_ = 0;                // producer's tail snapshot
  alignas(64) std::atomic<std::size_t> tail_;  // consumer-owned
  std::size_t cached_head_ = 0;                // consumer's head snapshot
  T slots_[Capacity];
};

}  // namespace vgpu::ipc
