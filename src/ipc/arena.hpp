// Pooled virtual-shared-memory arena: one large shm segment (hugepage-
// backed when the kernel cooperates) carved into per-client regions by a
// first-fit free list, replacing the one-shm_open-per-client layout. At
// thousands of clients the per-segment costs dominate the control plane —
// a name, an fd round trip, a VMA and page-table churn per attach — while
// the arena costs one mapping for everyone and makes attach/detach a free-
// list operation. Allocation metadata lives server-side only; clients just
// map the segment and receive byte offsets (see docs/scaling.md).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/status.hpp"
#include "common/units.hpp"
#include "ipc/shm.hpp"

namespace vgpu::ipc {

class ShmArena {
 public:
  struct Stats {
    long allocs = 0;
    long frees = 0;
    /// Allocation requests that did not fit (the caller backpressures).
    long failures = 0;
    Bytes in_use = 0;
    Bytes peak_in_use = 0;
    bool hugepages = false;  // MADV_HUGEPAGE was accepted
  };

  /// Creates the backing segment `name` of `size` bytes.
  static StatusOr<ShmArena> create(const std::string& name, Bytes size,
                                   bool try_hugepages = true);

  ShmArena() = default;
  ShmArena(ShmArena&&) = default;
  ShmArena& operator=(ShmArena&&) = default;

  bool valid() const { return region_.valid(); }
  const std::string& name() const { return region_.name(); }
  Bytes size() const { return region_.size(); }
  const Stats& stats() const { return stats_; }

  /// First-fit allocation of `bytes` aligned to `align`; returns the byte
  /// offset into the segment, or -1 when nothing fits (callers answer
  /// admission backpressure, not an error).
  std::int64_t allocate(Bytes bytes, Bytes align = 64);

  /// Returns a block to the free list (coalescing with its neighbours).
  /// Unknown offsets are ignored (double-release tolerance on the crash
  /// reclamation path).
  void release(std::int64_t offset);

  std::byte* at(std::int64_t offset) { return region_.data() + offset; }

 private:
  explicit ShmArena(SharedMemory region);

  SharedMemory region_;
  std::map<std::int64_t, Bytes> free_;  // offset -> length, offset-ordered
  std::map<std::int64_t, Bytes> live_;  // offset -> length
  Stats stats_;
};

}  // namespace vgpu::ipc
