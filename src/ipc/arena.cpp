#include "ipc/arena.hpp"

#include <algorithm>

namespace vgpu::ipc {

namespace {
std::int64_t align_up(std::int64_t v, Bytes align) {
  const std::int64_t a = std::max<Bytes>(1, align);
  return (v + a - 1) / a * a;
}
}  // namespace

StatusOr<ShmArena> ShmArena::create(const std::string& name, Bytes size,
                                    bool try_hugepages) {
  auto region = SharedMemory::create(name, size);
  if (!region.ok()) return region.status();
  ShmArena arena(std::move(*region));
  arena.stats_.hugepages = try_hugepages && arena.region_.advise_hugepages();
  return arena;
}

ShmArena::ShmArena(SharedMemory region) : region_(std::move(region)) {
  free_[0] = region_.size();
}

std::int64_t ShmArena::allocate(Bytes bytes, Bytes align) {
  if (bytes <= 0) bytes = 1;
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    const std::int64_t block = it->first;
    const Bytes length = it->second;
    const std::int64_t start = align_up(block, align);
    const Bytes padding = start - block;
    if (length < padding + bytes) continue;
    free_.erase(it);
    if (padding > 0) free_[block] = padding;
    const Bytes tail = length - padding - bytes;
    if (tail > 0) free_[start + bytes] = tail;
    live_[start] = bytes;
    ++stats_.allocs;
    stats_.in_use += bytes;
    stats_.peak_in_use = std::max(stats_.peak_in_use, stats_.in_use);
    return start;
  }
  ++stats_.failures;
  return -1;
}

void ShmArena::release(std::int64_t offset) {
  auto live = live_.find(offset);
  if (live == live_.end()) return;
  Bytes length = live->second;
  live_.erase(live);
  ++stats_.frees;
  stats_.in_use -= length;
  // Coalesce with the block after, then the block before.
  auto after = free_.find(offset + length);
  if (after != free_.end()) {
    length += after->second;
    free_.erase(after);
  }
  auto before = free_.lower_bound(offset);
  if (before != free_.begin()) {
    --before;
    if (before->first + static_cast<std::int64_t>(before->second) == offset) {
      before->second += length;
      return;
    }
  }
  free_[offset] = length;
}

}  // namespace vgpu::ipc
