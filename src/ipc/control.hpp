// The server's shared control region (P_door, grown): one mapping that
// carries everything a client needs to reach the serve loop without a
// per-client kernel object.
//
//   [0]   serve-loop doorbell word  (legacy offset: pre-control clients
//         that map only the first cache line still find the futex word)
//   [64]  ready-set head — a lock-free MPSC Treiber stack of session
//         slots; ring clients push their slot on every request push, the
//         serve thread pops the whole stack per wakeup and drains only
//         those lanes (O(ready), not O(attached))
//   [..]  one ReadyNode per session slot (intrusive stack links)
//   [..]  handshake mailboxes — REQ acks for clients that attach without
//         a private response queue (the pooled-arena path; POSIX caps
//         fs.mqueue.queues_max well below the client populations the
//         load harness drives)
//
// Ready-set correctness: publish() sets the slot's `queued` flag before
// linking it; the drain clears the flag (acq_rel exchange) *before* the
// caller sweeps that lane's ring. A request pushed after the clear
// re-publishes, so a wakeup is never lost; a request pushed before it is
// found by the post-clear ring sweep. The only unsynchronized window is a
// client dying between flag and link (a few instructions); the serve
// loop's slow reconciliation sweep bounds that staleness (docs/scaling.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "ipc/transport.hpp"

namespace vgpu::ipc {

inline constexpr std::uint32_t kControlMagic = 0x56474352;  // "VGCR"
inline constexpr std::uint32_t kControlVersion = 1;
inline constexpr std::uint32_t kNilSlot = 0xffffffffu;

/// Non-owning view over the control region. `Resp` is the handshake
/// mailbox payload (the protocol's response record).
template <typename Resp>
class ControlRegion {
  static_assert(std::is_trivially_copyable_v<Resp>,
                "mailbox payload must be trivially copyable");

 public:
  struct Header {
    Doorbell::Word door;  // offset 0: legacy doorbell-only mappings
    std::atomic<std::uint32_t> magic{0};  // set last, release
    std::uint32_t version = kControlVersion;
    std::uint32_t sessions = 0;
    std::uint32_t mailboxes = 0;
    alignas(64) std::atomic<std::uint32_t> ready_head{kNilSlot};
  };

  struct ReadyNode {
    std::atomic<std::uint32_t> next{kNilSlot};
    std::atomic<std::uint32_t> queued{0};
  };

  /// Mailbox life cycle: kFree -> (client CAS) kClaimed -> (server)
  /// kDelivered -> (client collects) kClaimed -> ... -> kFree. `owner` is
  /// the claiming client id; `addressee` is stamped by the server with
  /// each delivery so a recycled mailbox never hands one client another's
  /// ack (the collect path re-arms and keeps waiting on a mismatch).
  struct alignas(64) Mailbox {
    static constexpr std::uint32_t kFree = 0;
    static constexpr std::uint32_t kClaimed = 1;
    static constexpr std::uint32_t kDelivered = 2;
    std::atomic<std::uint32_t> state{kFree};
    std::atomic<std::int32_t> owner{-1};
    std::atomic<std::int32_t> addressee{-1};
    Resp resp{};
  };

  ControlRegion() = default;

  static Bytes size_for(std::uint32_t sessions, std::uint32_t mailboxes) {
    std::size_t off = align_up(sizeof(Header), 64);
    off += sizeof(ReadyNode) * sessions;
    off = align_up(off, 64);
    off += sizeof(Mailbox) * mailboxes;
    return static_cast<Bytes>(off);
  }

  /// Creator side: placement-constructs the whole region (zeroed shm) and
  /// publishes the magic last, so attach() never sees a half-built layout.
  static ControlRegion init(std::byte* base, std::uint32_t sessions,
                            std::uint32_t mailboxes) {
    auto* header = new (base) Header();
    header->sessions = sessions;
    header->mailboxes = mailboxes;
    ControlRegion region(base, header);
    for (std::uint32_t i = 0; i < sessions; ++i) new (&region.node(i)) ReadyNode();
    for (std::uint32_t i = 0; i < mailboxes; ++i) {
      new (&region.mailbox(i)) Mailbox();
    }
    header->magic.store(kControlMagic, std::memory_order_release);
    return region;
  }

  /// Peer side: validates magic/version and that the advertised counts fit
  /// inside the mapping.
  static StatusOr<ControlRegion> attach(std::byte* base, Bytes size) {
    if (size < static_cast<Bytes>(sizeof(Header))) {
      return FailedPrecondition("control region too small for its header");
    }
    auto* header = reinterpret_cast<Header*>(base);
    if (header->magic.load(std::memory_order_acquire) != kControlMagic) {
      return FailedPrecondition("control region not published");
    }
    if (header->version != kControlVersion) {
      return FailedPrecondition("control region version mismatch");
    }
    if (size_for(header->sessions, header->mailboxes) > size) {
      return FailedPrecondition("control region counts exceed the mapping");
    }
    return ControlRegion(base, header);
  }

  bool valid() const { return header_ != nullptr; }
  std::uint32_t sessions() const { return header_->sessions; }
  std::uint32_t mailboxes() const { return header_->mailboxes; }
  Doorbell::Word* door_word() { return &header_->door; }

  // -- Ready set (MPSC: any client publishes, the serve thread drains) ----

  /// Marks `slot` ready. Returns false when the slot was already queued
  /// (the pending drain will see the new request too). Idempotent from the
  /// caller's point of view either way.
  bool publish_ready(std::uint32_t slot) {
    ReadyNode& n = node(slot);
    if (n.queued.exchange(1, std::memory_order_acq_rel) != 0) return false;
    std::uint32_t head = header_->ready_head.load(std::memory_order_relaxed);
    do {
      n.next.store(head, std::memory_order_relaxed);
    } while (!header_->ready_head.compare_exchange_weak(
        head, slot, std::memory_order_release, std::memory_order_relaxed));
    return true;
  }

  bool ready_empty() const {
    return header_->ready_head.load(std::memory_order_acquire) == kNilSlot;
  }

  /// Serve-thread only, at slot-recycling time: clears a queued flag left
  /// by the slot's previous tenant (a publisher that died between setting
  /// the flag and linking the node, which would otherwise absorb every
  /// later publish for the slot). Safe only before the new tenant learns
  /// its slot: a flag still set at that point implies the node is *not*
  /// linked — a linked node was popped by the drain preceding the attach,
  /// and no other process publishes this slot.
  void reset_ready(std::uint32_t slot) {
    node(slot).queued.store(0, std::memory_order_release);
  }

  /// Pops the whole stack, clears each slot's queued flag, and appends the
  /// slots to `out`. The caller must sweep each returned lane *after* this
  /// call — the flag clear is what makes a concurrent push re-publish
  /// instead of getting lost.
  std::size_t drain_ready(std::vector<std::uint32_t>* out) {
    std::uint32_t slot =
        header_->ready_head.exchange(kNilSlot, std::memory_order_acquire);
    std::size_t drained = 0;
    while (slot != kNilSlot) {
      ReadyNode& n = node(slot);
      // Read the link before clearing the flag: once cleared, the client
      // may re-publish this slot and overwrite `next`.
      const std::uint32_t next = n.next.load(std::memory_order_relaxed);
      n.queued.exchange(0, std::memory_order_acq_rel);
      out->push_back(slot);
      slot = next;
      ++drained;
    }
    return drained;
  }

  // -- Handshake mailboxes -----------------------------------------------

  /// Client side: claims a free mailbox (scan start keyed on the id so
  /// concurrent claimers spread out). -1 when every box is taken — the
  /// caller falls back to a private response queue.
  std::int32_t claim_mailbox(std::int32_t client_id) {
    const std::uint32_t count = header_->mailboxes;
    if (count == 0) return -1;
    const std::uint32_t start =
        static_cast<std::uint32_t>(client_id) % count;
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t idx = (start + i) % count;
      Mailbox& box = mailbox(idx);
      std::uint32_t expected = Mailbox::kFree;
      if (box.state.compare_exchange_strong(expected, Mailbox::kClaimed,
                                            std::memory_order_acq_rel)) {
        box.owner.store(client_id, std::memory_order_release);
        return static_cast<std::int32_t>(idx);
      }
    }
    return -1;
  }

  /// Server side: delivers `resp` into a claimed mailbox. False when the
  /// box is not claimed by `client_id` (stale index in the request, or a
  /// crashed claimant whose box was recycled) — the caller counts a
  /// dropped response and moves on.
  bool deliver(std::int32_t index, std::int32_t client_id, const Resp& resp) {
    if (index < 0 ||
        static_cast<std::uint32_t>(index) >= header_->mailboxes) {
      return false;
    }
    Mailbox& box = mailbox(static_cast<std::uint32_t>(index));
    if (box.state.load(std::memory_order_acquire) != Mailbox::kClaimed) {
      return false;
    }
    if (box.owner.load(std::memory_order_acquire) != client_id) return false;
    box.resp = resp;
    box.addressee.store(client_id, std::memory_order_relaxed);
    box.state.store(Mailbox::kDelivered, std::memory_order_release);
    return true;
  }

  /// Client side: non-blocking collect. On a delivery addressed to someone
  /// else (possible only after a claim raced a crashed predecessor's
  /// in-flight ack) the box is re-armed and false returned.
  bool try_collect(std::int32_t index, std::int32_t client_id, Resp* out) {
    Mailbox& box = mailbox(static_cast<std::uint32_t>(index));
    if (box.state.load(std::memory_order_acquire) != Mailbox::kDelivered) {
      return false;
    }
    const bool mine =
        box.addressee.load(std::memory_order_relaxed) == client_id;
    if (mine) *out = box.resp;
    box.state.store(Mailbox::kClaimed, std::memory_order_release);
    return mine;
  }

  /// Client side: returns the box to the free pool.
  void release_mailbox(std::int32_t index, std::int32_t client_id) {
    if (index < 0 ||
        static_cast<std::uint32_t>(index) >= header_->mailboxes) {
      return;
    }
    Mailbox& box = mailbox(static_cast<std::uint32_t>(index));
    if (box.owner.load(std::memory_order_acquire) != client_id) return;
    box.owner.store(-1, std::memory_order_relaxed);
    box.state.store(Mailbox::kFree, std::memory_order_release);
  }

 private:
  ControlRegion(std::byte* base, Header* header)
      : base_(base), header_(header) {}

  static constexpr std::size_t align_up(std::size_t v, std::size_t a) {
    return (v + a - 1) & ~(a - 1);
  }

  ReadyNode& node(std::uint32_t slot) {
    auto* nodes =
        reinterpret_cast<ReadyNode*>(base_ + align_up(sizeof(Header), 64));
    return nodes[slot];
  }
  const ReadyNode& node(std::uint32_t slot) const {
    return const_cast<ControlRegion*>(this)->node(slot);
  }
  Mailbox& mailbox(std::uint32_t index) {
    std::size_t off = align_up(sizeof(Header), 64);
    off += sizeof(ReadyNode) * header_->sessions;
    off = align_up(off, 64);
    return reinterpret_cast<Mailbox*>(base_ + off)[index];
  }

  std::byte* base_ = nullptr;
  Header* header_ = nullptr;
};

/// Ring client endpoint for a session-aware server: identical wire
/// behaviour to RingClientTransport, plus the ready-set publish the
/// event-driven serve loop keys on. Ordering is load-bearing:
///
///   ring push  ->  publish_ready(slot)  ->  doorbell ring
///
/// The push must land before the slot appears in the ready set (the
/// drain's post-clear sweep must find it), and the publish before the
/// ring (the serve loop's wake predicate is "ready set non-empty"; a
/// ring without a publish is a wasted wakeup at best).
template <typename Req, typename Resp, std::size_t Slots = kChannelSlots>
class SessionRingTransport final : public ClientTransport<Req, Resp> {
 public:
  using Block = ShmChannelBlock<Req, Resp, Slots>;

  SessionRingTransport(Block* block, ControlRegion<Resp>* control,
                       std::uint32_t slot, Doorbell::Word* server_door,
                       WaitConfig wait = {})
      : block_(block),
        control_(control),
        slot_(slot),
        server_door_(server_door),
        waiter_(wait) {}

  TransportKind kind() const override { return TransportKind::kShmRing; }

  Status send(const Req& request) override {
    if (!block_->requests.push(request)) {
      return ResourceExhausted("request ring full");
    }
    control_->publish_ready(slot_);
    Doorbell(server_door_).ring();
    return Status::Ok();
  }

  StatusOr<Resp> receive(std::chrono::milliseconds timeout) override {
    std::optional<Resp> response;
    Doorbell door(&block_->client_door);
    const bool got = waiter_.wait(
        [&] {
          response = block_->responses.pop();
          return response.has_value();
        },
        &door, std::chrono::steady_clock::now() + timeout);
    if (!got) return Unavailable("shm-ring receive timeout");
    return *response;
  }

  const WaitStats& wait_stats() const { return waiter_.stats(); }

 private:
  Block* block_;
  ControlRegion<Resp>* control_;
  std::uint32_t slot_;
  Doorbell::Word* server_door_;
  WaitStrategy waiter_;
};

}  // namespace vgpu::ipc
