#include "gpu/device.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace vgpu::gpu {

namespace {
// Grace period before a context switch: lets a process that just completed
// one stage of its task enqueue the next stage (scheduled at the same
// virtual time) before the device decides the context is idle. Models the
// driver's preference for the resident context.
constexpr SimDuration kSwitchGrace = 1;  // 1 ns
}  // namespace

Device::Device(des::Simulator& sim, DeviceSpec spec)
    : sim_(sim),
      spec_(std::move(spec)),
      allocator_(spec_.global_mem),
      driver_ready_event_(sim),
      ctx_create_lock_(sim, 1),
      h2d_engine_(sim, 1),
      d2h_engine_(sim, 1),
      dispatch_gate_(sim, 1),
      exclusive_gate_(sim, 1),
      kernel_slots_(sim, std::max(1, spec_.max_concurrent_kernels)) {
  VGPU_ASSERT(spec_.sm_count > 0);
  VGPU_ASSERT(spec_.copy_engines == 1 || spec_.copy_engines == 2);
}

// ---------------------------------------------------------------------------
// Driver / context lifecycle
// ---------------------------------------------------------------------------

des::Task<> Device::init_driver() {
  if (driver_ready_) co_return;
  if (driver_initializing_) {
    co_await driver_ready_event_.wait();
    co_return;
  }
  driver_initializing_ = true;
  co_await sim_.delay(spec_.device_init_time);
  driver_ready_ = true;
  driver_ready_event_.set();
}

Status Device::context_admission() const {
  switch (spec_.compute_mode) {
    case ComputeMode::kDefault:
      return Status::Ok();
    case ComputeMode::kExclusive:
      if (!contexts_.empty()) {
        return FailedPrecondition(
            "exclusive compute mode: a context already exists");
      }
      return Status::Ok();
    case ComputeMode::kProhibited:
      return FailedPrecondition("prohibited compute mode");
  }
  return Internal("unknown compute mode");
}

des::Task<ContextId> Device::create_context() {
  co_await init_driver();
  co_await ctx_create_lock_.acquire();
  if (!context_admission().ok()) {
    ctx_create_lock_.release();
    co_return kNullContext;
  }
  co_await sim_.delay(spec_.ctx_create_time);
  const ContextId id = next_ctx_id_++;
  contexts_.emplace(id, std::vector<DevPtr>{});
  ++stats_.ctx_creates;
  if (current_ctx_ == kNullContext) current_ctx_ = id;
  ctx_create_lock_.release();
  VGPU_DEBUG("device: created context " << id);
  co_return id;
}

Status Device::destroy_context(ContextId ctx) {
  auto it = contexts_.find(ctx);
  if (it == contexts_.end()) return NotFound("destroy of unknown context");
  if (ctx == current_ctx_ && active_ops_ > 0) {
    return FailedPrecondition("context has in-flight operations");
  }
  for (DevPtr ptr : it->second) {
    const Status st = allocator_.free(ptr);
    VGPU_ASSERT_MSG(st.ok(), "context allocation table out of sync");
  }
  contexts_.erase(it);
  if (current_ctx_ == ctx) {
    current_ctx_ = kNullContext;
    schedule_switch_check();
  }
  return Status::Ok();
}

StatusOr<DevPtr> Device::malloc_device(ContextId ctx, Bytes size) {
  auto it = contexts_.find(ctx);
  if (it == contexts_.end()) return NotFound("malloc on unknown context");
  StatusOr<DevPtr> ptr = allocator_.allocate(size);
  if (ptr.ok()) it->second.push_back(*ptr);
  return ptr;
}

Status Device::free_device(ContextId ctx, DevPtr ptr) {
  auto it = contexts_.find(ctx);
  if (it == contexts_.end()) return NotFound("free on unknown context");
  auto& list = it->second;
  auto pos = std::find(list.begin(), list.end(), ptr);
  if (pos == list.end()) return NotFound("pointer not owned by context");
  list.erase(pos);
  return allocator_.free(ptr);
}

// ---------------------------------------------------------------------------
// Context arbitration
// ---------------------------------------------------------------------------

des::Task<> Device::acquire_context(ContextId ctx) {
  VGPU_ASSERT_MSG(contexts_.count(ctx) > 0, "operation on unknown context");
  if (can_enter(ctx)) {
    current_ctx_ = ctx;
    ++active_ops_;
    co_return;
  }

  struct Awaiter {
    Device& dev;
    ContextId ctx;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      dev.ctx_waiters_.push_back({ctx, h});
      if (dev.active_ops_ == 0) dev.schedule_switch_check();
    }
    void await_resume() const noexcept {}
  };
  co_await Awaiter{*this, ctx};

  // Woken only after do_switch installed our context.
  VGPU_ASSERT(current_ctx_ == ctx && !switching_);
  ++active_ops_;
}

void Device::release_context() {
  VGPU_ASSERT(active_ops_ > 0);
  --active_ops_;
  if (active_ops_ == 0 && !ctx_waiters_.empty()) schedule_switch_check();
}

void Device::schedule_switch_check() {
  if (switch_check_scheduled_ || switching_) return;
  switch_check_scheduled_ = true;
  sim_.call_after(kSwitchGrace, [this] {
    switch_check_scheduled_ = false;
    maybe_switch();
  });
}

void Device::maybe_switch() {
  if (active_ops_ > 0 || switching_ || ctx_waiters_.empty()) return;
  const ContextId next = ctx_waiters_.front().ctx;
  switching_ = true;
  sim_.spawn(do_switch(next));
}

des::Task<> Device::do_switch(ContextId next) {
  // Switching from the null context (fresh device or destroyed current
  // context) is free; swapping live context state costs ctx_switch_time.
  if (current_ctx_ != kNullContext) {
    co_await sim_.delay(spec_.ctx_switch_time);
    ++stats_.ctx_switches;
    if (timeline_ != nullptr) {
      timeline_->record({"switch ctx " + std::to_string(current_ctx_) +
                             " -> " + std::to_string(next),
                         "context", "context",
                         sim_.now() - spec_.ctx_switch_time, sim_.now()});
    }
  }
  switching_ = false;
  current_ctx_ = next;
  VGPU_DEBUG("device: switched to context " << next);
  for (auto it = ctx_waiters_.begin(); it != ctx_waiters_.end();) {
    if (it->ctx == next) {
      sim_.schedule(0, it->handle);
      it = ctx_waiters_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// DMA transfers
// ---------------------------------------------------------------------------

des::Task<> Device::copy(ContextId ctx, Direction dir, Bytes bytes,
                         bool pinned) {
  VGPU_ASSERT(bytes >= 0);
  co_await acquire_context(ctx);

  // Route to an engine: with a single engine both directions share it.
  des::Semaphore& engine =
      (dir == Direction::kHostToDevice || spec_.copy_engines < 2)
          ? h2d_engine_
          : d2h_engine_;

  if (!spec_.concurrent_copy_and_exec) co_await exclusive_gate_.acquire();
  co_await engine.acquire();

  const BytesPerSecond bw = (dir == Direction::kHostToDevice)
                                ? spec_.pcie_h2d_pinned
                                : spec_.pcie_d2h_pinned;
  SimDuration t = spec_.memcpy_setup_time + transfer_time(bytes, bw);
  if (!pinned) {
    t = static_cast<SimDuration>(static_cast<double>(t) *
                                 spec_.pageable_penalty);
  }
  co_await sim_.delay(t);

  if (timeline_ != nullptr) {
    const bool h2d = dir == Direction::kHostToDevice;
    timeline_->record({(h2d ? "H2D " : "D2H ") + format_bytes(bytes),
                       "copy", h2d ? "engine:h2d" : "engine:d2h",
                       sim_.now() - t, sim_.now()});
  }

  ++stats_.copies;
  if (dir == Direction::kHostToDevice) {
    stats_.bytes_h2d += bytes;
    stats_.h2d_busy += t;
  } else {
    stats_.bytes_d2h += bytes;
    stats_.d2h_busy += t;
  }

  engine.release();
  if (!spec_.concurrent_copy_and_exec) exclusive_gate_.release();
  release_context();
}

des::Task<> Device::copy_d2d(ContextId ctx, Bytes bytes) {
  VGPU_ASSERT(bytes >= 0);
  co_await acquire_context(ctx);
  // Read + write pass over DRAM.
  const SimDuration t =
      spec_.memcpy_setup_time +
      transfer_time(2 * bytes, spec_.effective_dram_bw());
  co_await sim_.delay(t);
  stats_.bytes_d2d += bytes;
  if (timeline_ != nullptr) {
    timeline_->record({"D2D " + format_bytes(bytes), "copy", "device dram",
                       sim_.now() - t, sim_.now()});
  }
  release_context();
}

des::Task<> Device::memset(ContextId ctx, Bytes bytes) {
  VGPU_ASSERT(bytes >= 0);
  co_await acquire_context(ctx);
  const SimDuration t = spec_.memcpy_setup_time +
                        transfer_time(bytes, spec_.effective_dram_bw());
  co_await sim_.delay(t);
  stats_.bytes_memset += bytes;
  if (timeline_ != nullptr) {
    timeline_->record({"memset " + format_bytes(bytes), "copy",
                       "device dram", sim_.now() - t, sim_.now()});
  }
  release_context();
}

// ---------------------------------------------------------------------------
// Kernel execution: chunked block placement
// ---------------------------------------------------------------------------

des::Task<> Device::launch_kernel(ContextId ctx, KernelLaunch launch) {
  const Occupancy occ = compute_occupancy(spec_, launch.geometry);
  VGPU_ASSERT_MSG(occ.blocks_per_sm > 0,
                  "kernel geometry cannot be placed on this device");

  co_await acquire_context(ctx);
  co_await dispatch_gate_.acquire();
  co_await sim_.delay(spec_.kernel_launch_overhead + launch.host_serial_time);
  dispatch_gate_.release();

  if (!spec_.concurrent_copy_and_exec) co_await exclusive_gate_.acquire();
  co_await kernel_slots_.acquire();

  OpenKernel k(sim_);
  k.launch = std::move(launch);
  k.occ = occ;
  k.u = 1.0 / occ.blocks_per_sm;
  k.pending = k.launch.geometry.grid_blocks;
  open_.push_back(&k);
  stats_.max_open_kernels =
      std::max(stats_.max_open_kernels, static_cast<int>(open_.size()));

  // Assign a rendering lane so overlapping kernels display side by side.
  std::size_t lane = 0;
  if (timeline_ != nullptr) {
    while (lane < kernel_lanes_.size() && kernel_lanes_[lane]) ++lane;
    if (lane == kernel_lanes_.size()) kernel_lanes_.push_back(false);
    kernel_lanes_[lane] = true;
  }
  const SimTime kernel_begin = sim_.now();
  try_place();
  co_await k.done.wait();
  if (timeline_ != nullptr) {
    timeline_->record({k.launch.name + " (ctx " + std::to_string(ctx) + ")",
                       "kernel", "kernel lane " + std::to_string(lane),
                       kernel_begin, sim_.now()});
    kernel_lanes_[lane] = false;
  }

  kernel_slots_.release();
  if (!spec_.concurrent_copy_and_exec) exclusive_gate_.release();
  ++stats_.kernels_completed;
  release_context();
}

void Device::try_place() {
  const double cap_total = static_cast<double>(spec_.sm_count);
  for (OpenKernel* k : open_) {
    while (k->pending > 0) {
      const double free_cap = cap_total - cap_used_;
      const long fit = static_cast<long>((free_cap + 1e-9) / k->u);
      const long n = std::min(k->pending, fit);
      if (n <= 0) break;  // full for this kernel; smaller blocks may still fit
      k->pending -= n;
      ++k->inflight_chunks;
      const double cap = static_cast<double>(n) * k->u;
      const double eff = std::clamp(k->launch.cost.efficiency, 1e-6, 1.0);
      cap_used_ += cap;
      blocks_resident_ += n;
      eff_demand_ += static_cast<double>(n) * eff;
      stats_.max_active_cap = std::max(stats_.max_active_cap, cap_used_);
      ++stats_.chunks_executed;
      const SimDuration dur =
          chunk_duration(spec_, k->launch, n, eff_demand_, blocks_resident_);
      stats_.kernel_busy += dur;
      if (timeline_ != nullptr) {
        timeline_->record({k->launch.name + " x" + std::to_string(n),
                           "fabric", "SM fabric", sim_.now(),
                           sim_.now() + dur});
      }
      sim_.call_after(dur, [this, k, cap, n] { on_chunk_done(k, cap, n); });
    }
  }
}

void Device::on_chunk_done(OpenKernel* k, double cap, long n) {
  const double eff = std::clamp(k->launch.cost.efficiency, 1e-6, 1.0);
  cap_used_ -= cap;
  if (cap_used_ < 1e-9) cap_used_ = 0.0;
  blocks_resident_ -= n;
  eff_demand_ -= static_cast<double>(n) * eff;
  if (eff_demand_ < 1e-9) eff_demand_ = 0.0;
  --k->inflight_chunks;
  if (k->pending == 0 && k->inflight_chunks == 0) {
    open_.erase(std::find(open_.begin(), open_.end(), k));
    k->done.set();
  }
  try_place();
}

}  // namespace vgpu::gpu
