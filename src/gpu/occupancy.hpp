// Fermi occupancy calculator.
//
// Given a kernel's launch geometry, computes how many blocks fit on one SM
// simultaneously — the quantity that decides whether a kernel occupies the
// whole GPU (no room for concurrent kernels from other processes) or only a
// slice of it (the virtualization win case in the paper).
#pragma once

#include "common/units.hpp"
#include "gpu/spec.hpp"

namespace vgpu::gpu {

struct KernelGeometry {
  long grid_blocks = 1;        // total thread blocks in the grid
  int threads_per_block = 256;
  int regs_per_thread = 20;
  Bytes shmem_per_block = 0;
};

enum class OccupancyLimiter { kBlocks, kWarps, kThreads, kRegisters, kSharedMem };

const char* limiter_name(OccupancyLimiter limiter);

struct Occupancy {
  int blocks_per_sm = 0;        // max co-resident blocks of this kernel per SM
  int warps_per_block = 0;
  OccupancyLimiter limiter = OccupancyLimiter::kBlocks;
  double occupancy = 0.0;       // resident warps / max warps, in [0, 1]

  /// Device-wide co-resident block capacity for this kernel.
  long device_blocks(const DeviceSpec& spec) const {
    return static_cast<long>(blocks_per_sm) * spec.sm_count;
  }
  /// Number of full waves needed to drain `grid_blocks`.
  long waves(const DeviceSpec& spec, long grid_blocks) const;
  /// True if one grid of this kernel fills the device by itself (no spare
  /// capacity for concurrent kernels).
  bool fills_device(const DeviceSpec& spec, long grid_blocks) const {
    return grid_blocks >= device_blocks(spec);
  }
};

/// Computes occupancy; geometry must satisfy basic validity (threads in
/// [1, 1024], shmem within per-SM capacity, registers within per-SM file).
/// Returns blocks_per_sm == 0 if the kernel cannot run at all.
Occupancy compute_occupancy(const DeviceSpec& spec, const KernelGeometry& g);

}  // namespace vgpu::gpu
