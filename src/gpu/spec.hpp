// Device specifications for the simulated GPU.
//
// The model is Fermi-class (NVIDIA GF100/GF110): streaming multiprocessors
// (SMs) with per-SM occupancy limits, a device-wide block scheduler, copy
// engines (one per PCIe direction on Tesla C-series), concurrent kernel
// execution restricted to a single context, and expensive context
// create/switch operations — exactly the properties the paper's
// virtualization argument rests on.
//
// Timing constants for the default TeslaC2070 spec are calibrated against
// the paper's Table II microbenchmark profiles (see EXPERIMENTS.md).
#pragma once

#include <string>

#include "common/units.hpp"

namespace vgpu::gpu {

/// CUDA compute modes (nvidia-smi -c). The paper's baseline relies on
/// kDefault ("sharing compute mode": multiple host processes may create
/// contexts); kExclusive permits a single context — under which ONLY a
/// GVM-style manager can serve multiple processes at all.
enum class ComputeMode {
  kDefault,     // any number of contexts
  kExclusive,   // at most one context
  kProhibited,  // no contexts
};

const char* compute_mode_name(ComputeMode mode);

struct DeviceSpec {
  std::string name;

  // Compute fabric.
  int sm_count = 14;               // C2070: 14 SMs
  int sp_per_sm = 32;              // 32 CUDA cores per Fermi SM
  double core_clock_ghz = 1.15;    // SP clock
  double flops_per_sp_per_cycle = 2.0;  // FMA
  int warp_size = 32;

  // Per-SM occupancy limits (Fermi, compute capability 2.0).
  int max_blocks_per_sm = 8;
  int max_warps_per_sm = 48;
  int max_threads_per_sm = 1536;
  long regs_per_sm = 32768;
  Bytes shmem_per_sm = 48 * kKiB;

  // Memory system.
  Bytes global_mem = 6 * kGB;                  // C2070: 6 GB GDDR5
  BytesPerSecond dram_bw = gb_per_s(144.0);    // peak GDDR5 bandwidth
  double dram_efficiency = 0.80;               // achievable fraction

  // Host link (PCIe gen2 x16). Effective pinned bandwidths are fitted from
  // the paper's Table II vector-addition profile (400 MB in / 135.9 ms,
  // 200 MB out / 66.7 ms).
  BytesPerSecond pcie_h2d_pinned = gb_per_s(2.944);
  BytesPerSecond pcie_d2h_pinned = gb_per_s(3.001);
  double pageable_penalty = 1.8;  // pageable staging slowdown factor
  int copy_engines = 2;           // C2070: one DMA engine per direction

  // Concurrency capabilities.
  int max_concurrent_kernels = 16;  // Fermi limit, same context only
  bool concurrent_copy_and_exec = true;
  ComputeMode compute_mode = ComputeMode::kDefault;

  // Driver / runtime overheads (calibrated to Table II; see EXPERIMENTS.md).
  SimDuration device_init_time = milliseconds(1000.0);  // first CUDA call
  SimDuration ctx_create_time = milliseconds(65.0);     // per context
  SimDuration ctx_switch_time = milliseconds(185.0);    // between contexts
  SimDuration kernel_launch_overhead = microseconds(7.0);
  SimDuration memcpy_setup_time = microseconds(10.0);

  // Derived rates.
  double device_flops() const {
    return static_cast<double>(sm_count) * sm_flops();
  }
  double sm_flops() const {
    return static_cast<double>(sp_per_sm) * core_clock_ghz * 1e9 *
           flops_per_sp_per_cycle;
  }
  BytesPerSecond effective_dram_bw() const {
    return dram_bw * dram_efficiency;
  }
};

/// NVIDIA Tesla C2070: the paper's testbed GPU (Fermi, 14 SMs, 6 GB).
DeviceSpec tesla_c2070();

/// NVIDIA Tesla C2050: same fabric, 3 GB memory.
DeviceSpec tesla_c2050();

/// GeForce GTX 480: consumer Fermi; 15 SMs, one copy engine, 1.5 GB.
DeviceSpec gtx480();

/// Pre-Fermi-style device: no concurrent kernels, one copy engine. Used by
/// ablation benches to show what the virtualization layer can still save
/// (context switches / init) when overlap hardware is absent.
DeviceSpec tesla_c1060();

}  // namespace vgpu::gpu
