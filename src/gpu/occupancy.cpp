#include "gpu/occupancy.hpp"

#include <algorithm>

#include "common/math.hpp"
#include "common/status.hpp"

namespace vgpu::gpu {

const char* limiter_name(OccupancyLimiter limiter) {
  switch (limiter) {
    case OccupancyLimiter::kBlocks:
      return "blocks/SM";
    case OccupancyLimiter::kWarps:
      return "warps/SM";
    case OccupancyLimiter::kThreads:
      return "threads/SM";
    case OccupancyLimiter::kRegisters:
      return "registers/SM";
    case OccupancyLimiter::kSharedMem:
      return "shared memory/SM";
  }
  return "?";
}

long Occupancy::waves(const DeviceSpec& spec, long grid_blocks) const {
  VGPU_ASSERT(blocks_per_sm > 0);
  return ceil_div(grid_blocks, device_blocks(spec));
}

Occupancy compute_occupancy(const DeviceSpec& spec, const KernelGeometry& g) {
  Occupancy occ;
  VGPU_ASSERT(g.grid_blocks >= 1);
  VGPU_ASSERT(g.threads_per_block >= 1);

  occ.warps_per_block = ceil_div(g.threads_per_block, spec.warp_size);

  // Candidate limits, Fermi allocation granularity: registers are allocated
  // per warp (thread count rounded up to warp size).
  struct Limit {
    long value;
    OccupancyLimiter kind;
  };
  Limit limits[5];
  limits[0] = {static_cast<long>(spec.max_blocks_per_sm),
               OccupancyLimiter::kBlocks};
  limits[1] = {static_cast<long>(spec.max_warps_per_sm / occ.warps_per_block),
               OccupancyLimiter::kWarps};
  limits[2] = {static_cast<long>(spec.max_threads_per_sm / g.threads_per_block),
               OccupancyLimiter::kThreads};
  const long regs_per_block =
      static_cast<long>(g.regs_per_thread) *
      round_up(static_cast<long>(g.threads_per_block),
               static_cast<long>(spec.warp_size));
  limits[3] = {regs_per_block > 0 ? spec.regs_per_sm / regs_per_block
                                  : static_cast<long>(spec.max_blocks_per_sm),
               OccupancyLimiter::kRegisters};
  limits[4] = {g.shmem_per_block > 0
                   ? static_cast<long>(spec.shmem_per_sm / g.shmem_per_block)
                   : static_cast<long>(spec.max_blocks_per_sm),
               OccupancyLimiter::kSharedMem};

  Limit best = limits[0];
  for (const auto& lim : limits) {
    if (lim.value < best.value) best = lim;
  }
  occ.blocks_per_sm = static_cast<int>(std::max(0L, best.value));
  occ.limiter = best.kind;
  occ.occupancy =
      static_cast<double>(occ.blocks_per_sm * occ.warps_per_block) /
      static_cast<double>(spec.max_warps_per_sm);
  occ.occupancy = std::min(occ.occupancy, 1.0);
  return occ;
}

}  // namespace vgpu::gpu
