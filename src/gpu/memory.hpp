// Device memory management: a first-fit free-list allocator with coalescing
// over the simulated GPU's global memory, plus a pinned host memory ledger.
//
// Addresses are virtual (no backing store at this layer); the vcuda layer
// optionally attaches real host buffers to allocations for functional
// kernel execution.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "common/status.hpp"
#include "common/units.hpp"

namespace vgpu::gpu {

/// Simulated device pointer. 0 is the null pointer.
using DevPtr = std::uint64_t;

class DeviceMemoryAllocator {
 public:
  /// Allocation alignment, matching CUDA's 256-byte texture alignment.
  static constexpr Bytes kAlignment = 256;

  explicit DeviceMemoryAllocator(Bytes capacity);

  /// Allocates `size` bytes (rounded up to alignment). Fails with
  /// kOutOfMemory when no free extent fits.
  StatusOr<DevPtr> allocate(Bytes size);

  /// Installs a hook consulted at the top of allocate(); returning true
  /// fails that allocation with kOutOfMemory. A plain std::function (not a
  /// fault::Injector) keeps the device model free of upward dependencies;
  /// chaos harnesses bind `injector.should_fail(Point::kDeviceAlloc)` here.
  void set_fail_hook(std::function<bool()> hook) {
    fail_hook_ = std::move(hook);
  }

  /// Frees a pointer previously returned by allocate. Fails with kNotFound
  /// for unknown or already-freed pointers.
  Status free(DevPtr ptr);

  /// Size of the live allocation at `ptr`, or error if unknown.
  StatusOr<Bytes> allocation_size(DevPtr ptr) const;

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }
  Bytes available() const { return capacity_ - used_; }
  /// Highest `used()` ever observed (obs gauge: gpu.mem.high_water).
  Bytes high_water() const { return high_water_; }
  std::size_t live_allocations() const { return allocated_.size(); }
  std::size_t free_extents() const { return free_.size(); }
  /// Largest single free extent; the biggest allocation that can succeed
  /// right now regardless of total free bytes.
  Bytes largest_free_extent() const;
  /// External fragmentation in [0, 1]: 1 - largest_free_extent/available.
  /// 0 when the free space is one extent (or there is none).
  double fragmentation() const;

 private:
  Bytes capacity_;
  Bytes used_ = 0;
  Bytes high_water_ = 0;
  std::function<bool()> fail_hook_;    // fault injection; empty = disabled
  std::map<DevPtr, Bytes> free_;       // addr -> extent size
  std::map<DevPtr, Bytes> allocated_;  // addr -> allocation size
};

/// Tracks pinned (page-locked) host allocations; the GVM registers one
/// staging buffer per client here and the spec bounds total pinned memory
/// only through this ledger's capacity.
class PinnedHostLedger {
 public:
  explicit PinnedHostLedger(Bytes capacity) : capacity_(capacity) {}

  Status reserve(Bytes size) {
    if (size < 0) return InvalidArgument("negative pinned size");
    if (used_ + size > capacity_) {
      return OutOfMemory("pinned host memory exhausted");
    }
    used_ += size;
    return Status::Ok();
  }
  /// Returns a reservation. Status-uniform like reserve(): a mismatched
  /// release reports kInvalidArgument instead of aborting, so the live
  /// path (client teardown after a crash) can log and continue.
  Status release(Bytes size) {
    if (size < 0 || size > used_) {
      return InvalidArgument("pinned release exceeds reservations");
    }
    used_ -= size;
    return Status::Ok();
  }

  Bytes used() const { return used_; }
  Bytes capacity() const { return capacity_; }

 private:
  Bytes capacity_;
  Bytes used_ = 0;
};

}  // namespace vgpu::gpu
