// Kernel cost descriptors and the chunk timing formula.
//
// The device executes kernels in *chunks*: a set of same-kernel blocks
// placed together on the SM fabric. Timing follows a demand/saturation
// model:
//
//  * A block's natural compute time is flops_block / (sm_rate * efficiency):
//    `efficiency` is the fraction of one SM's throughput a single resident
//    block can extract (latency-bound kernels like NPB EP sit well below 1).
//  * Each resident block of kernel k contributes a compute demand of
//    efficiency_k SM-units and a memory demand of one DRAM slice
//    (dram_bw / sm_count). While total demand stays below the device's
//    capacity, blocks run at their natural rate — co-resident kernels do
//    not slow each other down (paper Figure 9's flat EP curve). Past
//    saturation, every chunk placed is slowed by the oversubscription
//    factor:
//
//      t = max(1ns,
//              t_comp_natural * max(1, total_eff_demand / sm_count),
//              t_mem_natural  * max(1, total_blocks     / sm_count))
//
//    where the totals are sampled at chunk placement (including the chunk
//    itself). Both limbs conserve device throughput at full residency: a
//    grid that fills the device alone executes in total_work / peak_rate.
#pragma once

#include <algorithm>
#include <string>

#include "common/units.hpp"
#include "gpu/occupancy.hpp"
#include "gpu/spec.hpp"

namespace vgpu::gpu {

struct KernelCost {
  double flops_per_thread = 0.0;
  /// DRAM traffic per thread (bytes), after cache filtering.
  double dram_bytes_per_thread = 0.0;
  /// Fraction of one SM's peak throughput a single resident block extracts
  /// (ILP, divergence, transcendental mix). 1.0 = saturating.
  double efficiency = 1.0;
};

struct KernelLaunch {
  std::string name;
  KernelGeometry geometry;
  KernelCost cost;
  /// Host/driver-serial time consumed issuing this kernel (a descriptor may
  /// stand for a chain of micro-launches with synchronizations, as in the
  /// NPB class-S ports). This section occupies the device's single work
  /// queue, so it serializes across streams — Fermi's well-known dispatch
  /// bottleneck.
  SimDuration host_serial_time = 0;

  double flops_per_block() const {
    return cost.flops_per_thread *
           static_cast<double>(geometry.threads_per_block);
  }
  double bytes_per_block() const {
    return cost.dram_bytes_per_thread *
           static_cast<double>(geometry.threads_per_block);
  }
  double total_flops() const {
    return flops_per_block() * static_cast<double>(geometry.grid_blocks);
  }
  double total_bytes() const {
    return bytes_per_block() * static_cast<double>(geometry.grid_blocks);
  }
  /// Arithmetic intensity in flops/byte; infinity-ish for pure compute.
  double intensity() const {
    const double b = cost.dram_bytes_per_thread;
    return b > 0 ? cost.flops_per_thread / b : 1e30;
  }
};

/// Duration of a chunk of `n` blocks of `launch`, given the device-wide
/// demand totals at placement time (both including this chunk):
/// `total_eff_demand` = sum of n_i * efficiency_i over resident chunks,
/// `total_blocks` = sum of n_i. See file comment for the formula.
SimDuration chunk_duration(const DeviceSpec& spec, const KernelLaunch& launch,
                           long n, double total_eff_demand,
                           long total_blocks);

/// Duration of a kernel running the whole grid alone on the device — the
/// closed form the chunk scheduler must agree with for a solo kernel.
SimDuration solo_kernel_duration(const DeviceSpec& spec,
                                 const KernelLaunch& launch);

}  // namespace vgpu::gpu
