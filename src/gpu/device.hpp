// The simulated Fermi-class GPU device.
//
// The device enforces exactly the scheduling properties the paper's argument
// rests on:
//
//  * Contexts. All work is issued under a context. Only one context owns the
//    GPU at a time; moving ownership costs ctx_switch_time and only happens
//    when the current context has no in-flight work. Context creation is
//    serialized and costs ctx_create_time; the first CUDA-style call pays a
//    one-time device_init_time (driver init).
//  * Concurrent kernels. Up to max_concurrent_kernels kernels *from the
//    current (single) context* may be resident simultaneously. Their blocks
//    are placed on the SM fabric by a chunk scheduler limited by per-SM
//    occupancy (see cost.hpp for the timing formula).
//  * Copy engines. One DMA engine per direction (two on Tesla C-series), so
//    an H2D transfer, a D2H transfer and kernel execution can overlap; two
//    transfers in the same direction serialize — the paper's Section IV
//    assumption. Pageable-memory transfers pay a staging penalty; devices
//    with concurrent_copy_and_exec == false serialize copies with kernels.
//
// The device is *timing-only*: it advances virtual time and accounts for
// resources. Functional data movement/kernel execution is layered on top by
// vcuda.
#pragma once

#include <deque>
#include <map>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "des/channel.hpp"
#include "des/sim.hpp"
#include "des/sync.hpp"
#include "gpu/cost.hpp"
#include "gpu/memory.hpp"
#include "gpu/occupancy.hpp"
#include "gpu/spec.hpp"
#include "gpu/trace.hpp"

namespace vgpu::gpu {

/// Context identifier; 0 is invalid.
using ContextId = int;
constexpr ContextId kNullContext = 0;

enum class Direction { kHostToDevice, kDeviceToHost };

struct DeviceStats {
  long ctx_creates = 0;
  long ctx_switches = 0;
  long kernels_completed = 0;
  long chunks_executed = 0;
  long copies = 0;
  Bytes bytes_h2d = 0;
  Bytes bytes_d2h = 0;
  Bytes bytes_d2d = 0;
  Bytes bytes_memset = 0;
  int max_open_kernels = 0;    // peak concurrently-open kernels
  double max_active_cap = 0.0; // peak SM-units occupied
  SimDuration kernel_busy = 0; // sum of chunk durations (overlap possible)
  SimDuration h2d_busy = 0;
  SimDuration d2h_busy = 0;
};

class Device {
 public:
  Device(des::Simulator& sim, DeviceSpec spec);
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceSpec& spec() const { return spec_; }
  des::Simulator& sim() { return sim_; }

  /// One-time driver initialization; the first caller pays
  /// device_init_time, concurrent callers wait for it to finish.
  des::Task<> init_driver();

  /// Whether the compute mode admits another context right now.
  Status context_admission() const;

  /// Creates a context (serialized, ctx_create_time each). Implies
  /// init_driver(). The first context becomes current at no extra cost.
  /// Returns kNullContext when the compute mode rejects the creation
  /// (exclusive mode with a live context, or prohibited mode).
  des::Task<ContextId> create_context();

  /// Destroys a context and frees all its device allocations. The context
  /// must have no in-flight operations.
  Status destroy_context(ContextId ctx);

  /// Device memory management (instantaneous; capacity-checked).
  StatusOr<DevPtr> malloc_device(ContextId ctx, Bytes size);
  Status free_device(ContextId ctx, DevPtr ptr);

  /// DMA transfer of `bytes` in `dir`. Completes when the transfer is done;
  /// waits for context ownership and a free engine first.
  des::Task<> copy(ContextId ctx, Direction dir, Bytes bytes, bool pinned);

  /// Device-to-device copy: read + write through DRAM.
  des::Task<> copy_d2d(ContextId ctx, Bytes bytes);

  /// Device memset: one DRAM write pass.
  des::Task<> memset(ContextId ctx, Bytes bytes);

  /// Executes a kernel grid; completes when every block has retired.
  des::Task<> launch_kernel(ContextId ctx, KernelLaunch launch);

  /// Attaches a timeline recorder (nullptr detaches). When attached, every
  /// transfer, kernel span, fabric chunk and context switch is recorded.
  void set_timeline(Timeline* timeline) { timeline_ = timeline; }
  Timeline* timeline() { return timeline_; }

  const DeviceStats& stats() const { return stats_; }
  ContextId current_context() const { return current_ctx_; }
  int open_kernels() const { return static_cast<int>(open_.size()); }
  int active_ops() const { return active_ops_; }
  Bytes memory_used() const { return allocator_.used(); }
  bool context_exists(ContextId ctx) const { return contexts_.count(ctx) > 0; }

 private:
  struct OpenKernel {
    KernelLaunch launch;
    Occupancy occ;
    double u = 0.0;         // SM-units per block
    long pending = 0;       // blocks not yet placed
    int inflight_chunks = 0;
    des::OneShotEvent done;
    explicit OpenKernel(des::Simulator& sim) : done(sim) {}
  };

  struct CtxWaiter {
    ContextId ctx;
    std::coroutine_handle<> handle;
  };

  // --- context arbitration -------------------------------------------------
  bool can_enter(ContextId ctx) const {
    return !switching_ && (current_ctx_ == ctx || current_ctx_ == kNullContext);
  }
  des::Task<> acquire_context(ContextId ctx);
  void release_context();
  void schedule_switch_check();
  void maybe_switch();
  des::Task<> do_switch(ContextId next);

  // --- kernel chunk scheduler ----------------------------------------------
  void try_place();
  void on_chunk_done(OpenKernel* k, double cap, long n);

  des::Simulator& sim_;
  DeviceSpec spec_;
  DeviceMemoryAllocator allocator_;

  // Driver init state.
  bool driver_ready_ = false;
  bool driver_initializing_ = false;
  des::OneShotEvent driver_ready_event_;
  des::Semaphore ctx_create_lock_;

  // Context registry and arbitration.
  ContextId next_ctx_id_ = 1;
  std::map<ContextId, std::vector<DevPtr>> contexts_;  // ctx -> allocations
  ContextId current_ctx_ = kNullContext;
  int active_ops_ = 0;
  bool switching_ = false;
  bool switch_check_scheduled_ = false;
  std::deque<CtxWaiter> ctx_waiters_;

  // Copy engines: index 0 = H2D, index 1 = D2H (aliased when only one).
  des::Semaphore h2d_engine_;
  des::Semaphore d2h_engine_;

  // Single work queue for kernel dispatch: the host-serial portion of each
  // launch (kernel_launch_overhead + host_serial_time) serializes here
  // across streams, modeling Fermi's one-queue dispatch bottleneck.
  des::Semaphore dispatch_gate_;

  // Exclusive gate for devices without copy/compute overlap or concurrent
  // kernels (pre-Fermi): copies and kernels both hold it.
  des::Semaphore exclusive_gate_;

  // Kernel admission and placement. cap_used_ tracks occupancy capacity
  // (SM-units of residency); blocks_resident_ / eff_demand_ feed the
  // demand/saturation timing model (see cost.hpp).
  des::Semaphore kernel_slots_;
  std::deque<OpenKernel*> open_;
  double cap_used_ = 0.0;
  long blocks_resident_ = 0;
  double eff_demand_ = 0.0;

  DeviceStats stats_;
  Timeline* timeline_ = nullptr;
  std::vector<bool> kernel_lanes_;  // rendering lanes for open kernels
};

}  // namespace vgpu::gpu
