#include "gpu/cost.hpp"

#include "common/math.hpp"
#include "common/status.hpp"

namespace vgpu::gpu {

SimDuration chunk_duration(const DeviceSpec& spec, const KernelLaunch& launch,
                           long n, double total_eff_demand,
                           long total_blocks) {
  VGPU_ASSERT(n >= 1);
  VGPU_ASSERT(total_blocks >= n);
  const double eff = std::clamp(launch.cost.efficiency, 1e-6, 1.0);
  VGPU_ASSERT(total_eff_demand + 1e-9 >= static_cast<double>(n) * eff);

  const double sms = static_cast<double>(spec.sm_count);
  const double comp_slowdown = std::max(1.0, total_eff_demand / sms);
  const double mem_slowdown =
      std::max(1.0, static_cast<double>(total_blocks) / sms);

  const double comp_natural_s =
      launch.flops_per_block() / (spec.sm_flops() * eff);
  const double mem_natural_s =
      launch.bytes_per_block() * sms / spec.effective_dram_bw();

  const double t_s = std::max(comp_natural_s * comp_slowdown,
                              mem_natural_s * mem_slowdown);
  const auto t = static_cast<SimDuration>(t_s * 1e9);
  return std::max<SimDuration>(t, 1);
}

SimDuration solo_kernel_duration(const DeviceSpec& spec,
                                 const KernelLaunch& launch) {
  const Occupancy occ = compute_occupancy(spec, launch.geometry);
  VGPU_ASSERT_MSG(occ.blocks_per_sm > 0, "kernel cannot be placed");
  const long per_wave = occ.device_blocks(spec);
  const double eff = std::clamp(launch.cost.efficiency, 1e-6, 1.0);
  long remaining = launch.geometry.grid_blocks;
  SimDuration total = 0;
  while (remaining > 0) {
    const long n = std::min(remaining, per_wave);
    total += chunk_duration(spec, launch, n, static_cast<double>(n) * eff, n);
    remaining -= n;
  }
  return total + spec.kernel_launch_overhead + launch.host_serial_time;
}

}  // namespace vgpu::gpu
