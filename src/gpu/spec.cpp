#include "gpu/spec.hpp"

namespace vgpu::gpu {

const char* compute_mode_name(ComputeMode mode) {
  switch (mode) {
    case ComputeMode::kDefault:
      return "Default";
    case ComputeMode::kExclusive:
      return "Exclusive";
    case ComputeMode::kProhibited:
      return "Prohibited";
  }
  return "?";
}

DeviceSpec tesla_c2070() {
  DeviceSpec spec;
  spec.name = "Tesla C2070";
  return spec;  // defaults are the C2070 calibration
}

DeviceSpec tesla_c2050() {
  DeviceSpec spec = tesla_c2070();
  spec.name = "Tesla C2050";
  spec.global_mem = 3 * kGB;
  return spec;
}

DeviceSpec gtx480() {
  DeviceSpec spec = tesla_c2070();
  spec.name = "GeForce GTX 480";
  spec.sm_count = 15;
  spec.core_clock_ghz = 1.401;
  spec.global_mem = static_cast<Bytes>(1.5 * static_cast<double>(kGB));
  spec.dram_bw = gb_per_s(177.4);
  spec.copy_engines = 1;
  return spec;
}

DeviceSpec tesla_c1060() {
  DeviceSpec spec;
  spec.name = "Tesla C1060";
  spec.sm_count = 30;
  spec.sp_per_sm = 8;
  spec.core_clock_ghz = 1.296;
  spec.warp_size = 32;
  spec.max_blocks_per_sm = 8;
  spec.max_warps_per_sm = 32;
  spec.max_threads_per_sm = 1024;
  spec.regs_per_sm = 16384;
  spec.shmem_per_sm = 16 * kKiB;
  spec.global_mem = 4 * kGB;
  spec.dram_bw = gb_per_s(102.0);
  spec.copy_engines = 1;
  spec.max_concurrent_kernels = 1;  // no concurrent kernel execution
  spec.concurrent_copy_and_exec = false;
  return spec;
}

}  // namespace vgpu::gpu
