#include "gpu/trace.hpp"

#include <algorithm>
#include <fstream>

namespace vgpu::gpu {

void Timeline::record(TraceEvent event) {
  VGPU_ASSERT(event.end >= event.begin);
  events_.push_back(std::move(event));
}

SimDuration Timeline::busy_time(const std::string& category) const {
  SimDuration total = 0;
  for (const TraceEvent& e : events_) {
    if (e.category == category) total += e.duration();
  }
  return total;
}

int Timeline::max_concurrency(const std::string& category) const {
  // Sweep line over begin/end edges.
  std::vector<std::pair<SimTime, int>> edges;
  for (const TraceEvent& e : events_) {
    if (e.category != category) continue;
    edges.emplace_back(e.begin, +1);
    edges.emplace_back(e.end, -1);
  }
  std::sort(edges.begin(), edges.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;  // close before open at the same instant
  });
  int current = 0, peak = 0;
  for (const auto& [t, delta] : edges) {
    current += delta;
    peak = std::max(peak, current);
  }
  return peak;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

Status Timeline::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Internal("cannot open trace file " + path);
  out << "[\n";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) out << ",\n";
    first = false;
    out << "  {\"name\": \"" << json_escape(e.name) << "\", \"cat\": \""
        << json_escape(e.category) << "\", \"ph\": \"X\", \"ts\": "
        << to_us(e.begin) << ", \"dur\": " << to_us(e.duration())
        << ", \"pid\": 0, \"tid\": \"" << json_escape(e.lane) << "\"}";
  }
  out << "\n]\n";
  if (!out) return Internal("write to " + path + " failed");
  return Status::Ok();
}

}  // namespace vgpu::gpu
