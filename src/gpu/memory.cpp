#include "gpu/memory.hpp"

#include "common/math.hpp"

namespace vgpu::gpu {

namespace {
// Device address space starts above 0 so that DevPtr 0 stays null.
constexpr DevPtr kBaseAddress = DeviceMemoryAllocator::kAlignment;
}  // namespace

DeviceMemoryAllocator::DeviceMemoryAllocator(Bytes capacity)
    : capacity_(capacity) {
  VGPU_ASSERT(capacity > 0);
  free_.emplace(kBaseAddress, capacity);
}

StatusOr<DevPtr> DeviceMemoryAllocator::allocate(Bytes size) {
  if (size <= 0) return InvalidArgument("allocation size must be positive");
  if (fail_hook_ && fail_hook_()) {
    return OutOfMemory("device memory: allocation failed (fault injection)");
  }
  const Bytes need = round_up(size, kAlignment);
  // First fit: lowest-address extent that can hold the request.
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second >= need) {
      const DevPtr addr = it->first;
      const Bytes extent = it->second;
      free_.erase(it);
      if (extent > need) {
        free_.emplace(addr + static_cast<DevPtr>(need), extent - need);
      }
      allocated_.emplace(addr, need);
      used_ += need;
      if (used_ > high_water_) high_water_ = used_;
      return addr;
    }
  }
  return OutOfMemory("device memory: no extent of " + format_bytes(need) +
                     " available (" + format_bytes(available()) + " free)");
}

Status DeviceMemoryAllocator::free(DevPtr ptr) {
  auto it = allocated_.find(ptr);
  if (it == allocated_.end()) {
    return NotFound("free of unknown device pointer");
  }
  DevPtr addr = it->first;
  Bytes size = it->second;
  allocated_.erase(it);
  used_ -= size;

  // Coalesce with the following extent.
  auto next = free_.lower_bound(addr);
  if (next != free_.end() && addr + static_cast<DevPtr>(size) == next->first) {
    size += next->second;
    next = free_.erase(next);
  }
  // Coalesce with the preceding extent.
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + static_cast<DevPtr>(prev->second) == addr) {
      addr = prev->first;
      size += prev->second;
      free_.erase(prev);
    }
  }
  free_.emplace(addr, size);
  return Status::Ok();
}

Bytes DeviceMemoryAllocator::largest_free_extent() const {
  Bytes largest = 0;
  for (const auto& [addr, size] : free_) {
    if (size > largest) largest = size;
  }
  return largest;
}

double DeviceMemoryAllocator::fragmentation() const {
  const Bytes avail = available();
  if (avail <= 0) return 0.0;
  return 1.0 - static_cast<double>(largest_free_extent()) /
                   static_cast<double>(avail);
}

StatusOr<Bytes> DeviceMemoryAllocator::allocation_size(DevPtr ptr) const {
  auto it = allocated_.find(ptr);
  if (it == allocated_.end()) {
    return NotFound("unknown device pointer");
  }
  return it->second;
}

}  // namespace vgpu::gpu
