// Execution timeline recording.
//
// The device (and the GVM above it) can record every operation as a timed
// span on a named lane: copy engines, the kernel fabric, context ownership,
// GVM staging. The timeline exports Chrome trace-event JSON, so a
// reproduction of the paper's Figure 5/6 pipelines can be inspected in
// chrome://tracing or Perfetto.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"

namespace vgpu::gpu {

struct TraceEvent {
  std::string name;      // e.g. "H2D 80 MB", "sgemm", "ctx switch 1->2"
  std::string category;  // "copy" | "kernel" | "context" | "staging" | ...
  std::string lane;      // rendering track, e.g. "engine:h2d", "client 3"
  SimTime begin = 0;
  SimTime end = 0;

  SimDuration duration() const { return end - begin; }
};

class Timeline {
 public:
  void record(TraceEvent event);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Sum of span durations in `category` (overlaps counted per event).
  SimDuration busy_time(const std::string& category) const;

  /// Maximum number of simultaneously-open spans in `category`.
  int max_concurrency(const std::string& category) const;

  /// Chrome trace-event JSON (complete "X" events, microsecond units).
  Status write_chrome_trace(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace vgpu::gpu
