// Grid-sharded parallel kernel execution engine.
//
// The live GVM models a Fermi device: one context, up to 16 concurrent
// kernels, 14 SMs all busy when the grids allow it. The pre-engine
// runtime executed each client's kernel as one serial job on one pool
// thread, so a single large grid could never use more than one core and
// an N-client cohort saturated at N cores. This engine makes the compute
// path scale like the hardware it models:
//
//   * every launch is decomposed into block-range shards — grid blocks
//     are the shard unit, exactly the device's own unit of scheduling;
//   * shards run on a work-stealing pool: per-worker Chase-Lev deques
//     (LIFO for the owner, FIFO for thieves) with a global overflow
//     queue, idle workers parking via the shared ipc::WaitStrategy;
//   * shards-in-flight per launch are capped by the kernel's SM
//     occupancy (gpu/occupancy.hpp): a grid that could co-schedule at
//     most K blocks on the modeled device fans out to at most K shards,
//     so small-grid kernels leave workers free for other clients' work —
//     the paper's concurrent-kernel-execution story, reproduced on cores.
//
// Waiters participate: wait() executes shards instead of blocking, so a
// kernel body may call parallel_for() from inside a worker (nested
// stages, e.g. MG's stencil chain) without deadlock even on one worker.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/status.hpp"
#include "gpu/occupancy.hpp"
#include "gpu/spec.hpp"
#include "ipc/transport.hpp"

#include "exec/steal_deque.hpp"

namespace vgpu::obs {
class Tracer;
}

namespace vgpu::fault {
class Injector;
}

namespace vgpu::exec {

struct ExecConfig {
  /// Worker threads (the "SM" count of the host-side executor).
  int workers = 4;
  /// Target shards per worker per launch; >1 lets stealing even out
  /// shards of uneven cost.
  int oversubscribe = 4;
  /// Idle-worker parking policy (spin -> yield -> doorbell futex).
  ipc::WaitConfig wait;
  /// Optional span tracer (not owned; must outlive the engine). When set
  /// and enabled, every shard records a kShard span on its worker's lane.
  obs::Tracer* tracer = nullptr;
  /// Optional fault injector (not owned). When set, every shard consults
  /// the kExecShard point before running — a stall rule there models a
  /// straggler SM. Null costs one pointer compare per shard.
  fault::Injector* fault = nullptr;
};

struct ExecStats {
  std::atomic<long> launches{0};
  std::atomic<long> shards_executed{0};
  /// Shards acquired from another worker's deque.
  std::atomic<long> steals{0};
  /// Shards that missed the owner's deque and went to the global queue.
  std::atomic<long> overflow_pushes{0};
  /// Fire-and-forget jobs (submit()), e.g. one per granted kernel.
  std::atomic<long> external_jobs{0};
};

/// Max co-resident blocks of geometry `g` on device `spec` — the engine's
/// shards-in-flight cap for that kernel (>= 1). A kernel whose occupancy
/// is 4 blocks fans out to at most 4 shards however many workers exist.
long occupancy_shard_cap(const gpu::DeviceSpec& spec,
                         const gpu::KernelGeometry& g);

/// Balanced shard count for a launch: min(total, workers * oversubscribe,
/// cap), at least 1.
long plan_shard_count(long total_blocks, int workers, int oversubscribe,
                      long max_shards);

class ExecEngine {
 public:
  /// Completion handle for one launch(). The launching scope owns it and
  /// must wait() before destroying it (shards reference it).
  class Group {
   public:
    Group() = default;
    Group(const Group&) = delete;
    Group& operator=(const Group&) = delete;
    bool done() const {
      return pending_.load(std::memory_order_acquire) == 0;
    }

   private:
    friend class ExecEngine;
    RangeFn fn_;
    std::atomic<long> pending_{0};
    std::mutex error_mutex_;
    std::exception_ptr error_;
  };

  explicit ExecEngine(ExecConfig config = {});
  ExecEngine(const ExecEngine&) = delete;
  ExecEngine& operator=(const ExecEngine&) = delete;
  ~ExecEngine();

  /// Stops the workers (drains nothing: callers must have wait()ed their
  /// groups; pending external jobs still run). Idempotent; later
  /// launch/submit calls return kFailedPrecondition.
  void shutdown();

  /// Decomposes [0, total_blocks) into shards and enqueues them on this
  /// thread's deque (worker callers) or the global queue. `max_shards`
  /// caps the fan-out (0 = uncapped); pass occupancy_shard_cap() to tie
  /// it to the modeled device. The group must outlive the wait.
  Status launch(Group& group, long total_blocks, RangeFn fn,
                long max_shards = 0);

  /// Participating wait: executes shards (own deque, steals, global
  /// overflow) until the group completes, then rethrows the first shard
  /// exception if any. Safe from workers and external threads alike.
  void wait(Group& group);

  /// launch + wait. Errors surface as exceptions (from shards) or a
  /// non-ok Status (engine shut down).
  Status parallel_for(long total_blocks, const RangeFn& fn,
                      long max_shards = 0);

  /// Fire-and-forget job on the pool (the server's per-grant kernel job);
  /// the job body is responsible for its own error handling.
  Status submit(std::function<void()> job);

  /// A ParallelFor bound to this engine with a fixed shard cap — what the
  /// runtime hands to sharded kernel bodies.
  ParallelFor executor(long max_shards = 0);

  int workers() const { return static_cast<int>(deques_.size()); }
  const ExecStats& stats() const { return stats_; }
  /// Shards executed by worker `i`; index workers() counts non-worker
  /// participants (threads inside wait()). The spread of these counts is
  /// the worker occupancy histogram the server prints.
  long worker_shards(int i) const;

 private:
  struct Shard {
    Group* group = nullptr;
    long begin = 0;
    long end = 0;
  };
  struct GlobalItem {
    Shard shard;                  // valid when job == nullptr
    std::function<void()> job;    // external job otherwise
  };

  void worker_loop(int index);
  void run_shard(const Shard& shard, int slot);
  /// Executes one available shard (and, when `take_jobs`, one external
  /// job). Returns false when nothing was available.
  bool run_one(int slot, bool take_jobs);
  bool work_available() const;
  void enqueue_shards(Group& group, long total, long nshards);

  ExecConfig config_;
  std::vector<std::unique_ptr<StealDeque<Shard>>> deques_;
  std::mutex global_mutex_;
  std::deque<GlobalItem> global_;
  std::atomic<long> global_size_{0};
  ipc::Doorbell::Word door_word_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stopping_{false};
  ExecStats stats_;
  /// Per-participant shard counts (workers + 1 shared external slot).
  std::vector<std::atomic<long>> participant_shards_;
  std::atomic<std::uint32_t> steal_seed_{0x9e3779b9u};
};

}  // namespace vgpu::exec
