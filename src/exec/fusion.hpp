// Fusion seam for elementwise kernel chains (docs/graphs.md).
//
// A graph replay that finds two adjacent elementwise nodes — node B's
// sole dependency is node A, A's sole consumer is B, equal grids, and
// B reads exactly what A wrote — can execute the pair as one pass over
// the data instead of two: every block range runs stage A then stage B
// while the range is still cache-hot, the same trick the live path's
// double-buffered streaming uses for copy/compute overlap.
//
// The contract that makes fusion bitwise-safe is the elementwise stream
// contract (docs/execution.md): a stage's block k reads exactly element
// block k of its inputs and writes exactly element block k of its
// output. Under that contract the per-element arithmetic is identical
// no matter how block ranges interleave across stages, so a fused chain
// is bitwise-equal to running the member kernels serially.
#pragma once

#include <algorithm>
#include <span>

#include "common/parallel.hpp"
#include "common/status.hpp"

#include "exec/engine.hpp"

namespace vgpu::exec {

/// One stage of a fused chain: executes blocks [begin, end) of its
/// kernel over spans the caller pre-bound (closure state).
using FusedStage = RangeFn;

/// Runs `stages` back-to-back per block range, making one pass over the
/// data. With an engine: a single parallel_for whose shard body applies
/// every stage to its range (shards steal/balance as usual, capped by
/// `max_shards` — pass the min of the member kernels' occupancy caps).
/// Without one (`engine == nullptr`, the serial oracle path): a chunked
/// loop over the grid with the same per-range stage order.
inline Status run_fused(ExecEngine* engine, long total_blocks,
                        std::span<const FusedStage> stages, long max_shards,
                        long serial_chunk = 64) {
  if (total_blocks <= 0 || stages.empty()) return Status::Ok();
  if (engine != nullptr) {
    return engine->parallel_for(
        total_blocks,
        [&stages](long begin, long end) {
          for (const auto& stage : stages) stage(begin, end);
        },
        max_shards);
  }
  const long chunk = std::max<long>(1, serial_chunk);
  for (long begin = 0; begin < total_blocks; begin += chunk) {
    const long end = std::min(total_blocks, begin + chunk);
    for (const auto& stage : stages) stage(begin, end);
  }
  return Status::Ok();
}

}  // namespace vgpu::exec
