// Chase-Lev work-stealing deque (fixed capacity, lock-free).
//
// One owner thread pushes and pops at the bottom (LIFO, cache-warm);
// any number of thieves steal from the top (FIFO, oldest shard first —
// the biggest remaining chunk of a recursively split range). Memory
// ordering follows Lê/Pop/Cohen/Nardelli, "Correct and Efficient
// Work-Stealing for Weak Memory Models" (PPoPP'13), restricted to a
// fixed power-of-two buffer: a full deque rejects the push and the
// caller overflows to the engine's global queue instead of growing.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <optional>

namespace vgpu::exec {

template <typename T, std::size_t Capacity = 1024>
class StealDeque {
  static_assert((Capacity & (Capacity - 1)) == 0, "capacity must be 2^k");

 public:
  /// Owner only. Returns false when the deque is full (caller overflows
  /// to a shared queue; nothing is dropped).
  bool push_bottom(const T& value) {
    const long b = bottom_.load(std::memory_order_relaxed);
    const long t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<long>(Capacity)) return false;
    slot(b) = value;
    // Publish the element before the new bottom becomes visible to
    // thieves reading bottom with acquire.
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  /// Owner only: most recently pushed element, if any.
  std::optional<T> pop_bottom() {
    long b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    // Full fence: the bottom store must be visible to thieves before we
    // read top, or a concurrent steal of the last element could be
    // double-taken.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    long t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Deque was already empty; restore.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    T value = slot(b);
    if (t == b) {
      // Last element: race the thieves for it via top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        // A thief won; the deque is empty.
        bottom_.store(b + 1, std::memory_order_relaxed);
        return std::nullopt;
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
      return value;
    }
    return value;  // more than one element: no race possible
  }

  /// Any thread: oldest element, if the race for it is won.
  std::optional<T> steal() {
    long t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const long b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return std::nullopt;
    T value = slot(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;  // lost to the owner or another thief
    }
    return value;
  }

  /// Approximate (racy) — for wait predicates and stats only.
  bool empty() const {
    return top_.load(std::memory_order_acquire) >=
           bottom_.load(std::memory_order_acquire);
  }

 private:
  T& slot(long i) {
    return buffer_[static_cast<std::size_t>(i) & (Capacity - 1)];
  }

  alignas(64) std::atomic<long> top_{0};
  alignas(64) std::atomic<long> bottom_{0};
  alignas(64) std::array<T, Capacity> buffer_{};
};

}  // namespace vgpu::exec
