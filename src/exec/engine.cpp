#include "exec/engine.hpp"

#include <algorithm>
#include <chrono>

#include "common/log.hpp"
#include "fault/fault.hpp"
#include "obs/trace.hpp"

namespace vgpu::exec {

namespace {

/// Which engine (if any) the current thread is a worker of, and its
/// index there. Lets nested parallel_for calls from kernel bodies land
/// on the calling worker's own deque.
thread_local const ExecEngine* tls_engine = nullptr;
thread_local int tls_worker = -1;

}  // namespace

long occupancy_shard_cap(const gpu::DeviceSpec& spec,
                         const gpu::KernelGeometry& g) {
  const gpu::Occupancy occ = gpu::compute_occupancy(spec, g);
  return std::max<long>(1, occ.device_blocks(spec));
}

long plan_shard_count(long total_blocks, int workers, int oversubscribe,
                      long max_shards) {
  long target = std::min(
      total_blocks, static_cast<long>(workers) * std::max(1, oversubscribe));
  if (max_shards > 0) target = std::min(target, max_shards);
  return std::max<long>(1, target);
}

ExecEngine::ExecEngine(ExecConfig config) : config_(config) {
  VGPU_ASSERT(config_.workers >= 1);
  deques_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    deques_.push_back(std::make_unique<StealDeque<Shard>>());
  }
  participant_shards_ =
      std::vector<std::atomic<long>>(static_cast<std::size_t>(config_.workers) + 1);
  threads_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ExecEngine::~ExecEngine() { shutdown(); }

void ExecEngine::shutdown() {
  if (stopping_.exchange(true)) return;
  ipc::Doorbell(&door_word_).ring();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

long ExecEngine::worker_shards(int i) const {
  if (i < 0 || static_cast<std::size_t>(i) >= participant_shards_.size()) {
    return 0;
  }
  return participant_shards_[static_cast<std::size_t>(i)].load(
      std::memory_order_relaxed);
}

bool ExecEngine::work_available() const {
  if (global_size_.load(std::memory_order_acquire) > 0) return true;
  for (const auto& d : deques_) {
    if (!d->empty()) return true;
  }
  return false;
}

void ExecEngine::enqueue_shards(Group& group, long total, long nshards) {
  group.pending_.store(nshards, std::memory_order_release);
  const bool local = tls_engine == this && tls_worker >= 0;
  std::vector<GlobalItem> overflow;
  for (long s = 0; s < nshards; ++s) {
    Shard shard;
    shard.group = &group;
    shard.begin = total * s / nshards;
    shard.end = total * (s + 1) / nshards;
    if (local &&
        deques_[static_cast<std::size_t>(tls_worker)]->push_bottom(shard)) {
      continue;
    }
    if (local) stats_.overflow_pushes.fetch_add(1, std::memory_order_relaxed);
    overflow.push_back(GlobalItem{shard, {}});
  }
  if (!overflow.empty()) {
    std::lock_guard<std::mutex> lock(global_mutex_);
    for (auto& item : overflow) global_.push_back(std::move(item));
    global_size_.fetch_add(static_cast<long>(overflow.size()),
                           std::memory_order_release);
  }
  ipc::Doorbell(&door_word_).ring();
}

Status ExecEngine::launch(Group& group, long total_blocks, RangeFn fn,
                          long max_shards) {
  if (stopping_.load(std::memory_order_acquire)) {
    return FailedPrecondition("exec engine is shut down");
  }
  VGPU_ASSERT_MSG(group.pending_.load(std::memory_order_relaxed) == 0,
                  "group reused before wait() completed");
  group.error_ = nullptr;
  if (total_blocks <= 0) {
    group.fn_ = nullptr;
    return Status::Ok();
  }
  group.fn_ = std::move(fn);
  stats_.launches.fetch_add(1, std::memory_order_relaxed);
  const long nshards = plan_shard_count(total_blocks, workers(),
                                       config_.oversubscribe, max_shards);
  enqueue_shards(group, total_blocks, nshards);
  return Status::Ok();
}

void ExecEngine::run_shard(const Shard& shard, int slot) {
  Group* group = shard.group;
  if (config_.fault != nullptr) {
    config_.fault->maybe_stall(fault::Point::kExecShard);
  }
  // Shard span: blocks [begin, end) on this participant's lane. Waiters
  // (slot == workers()) share the last worker lane + 1.
  const SimTime t0 =
      config_.tracer != nullptr ? config_.tracer->begin_span()
                                : obs::kSpanDisabled;
  try {
    group->fn_(shard.begin, shard.end);
  } catch (...) {
    std::lock_guard<std::mutex> lock(group->error_mutex_);
    if (group->error_ == nullptr) group->error_ = std::current_exception();
  }
  if (config_.tracer != nullptr) {
    config_.tracer->end_span(t0, obs::Phase::kShard, obs::worker_lane(slot),
                             static_cast<std::int32_t>(shard.end - shard.begin));
  }
  stats_.shards_executed.fetch_add(1, std::memory_order_relaxed);
  participant_shards_[static_cast<std::size_t>(slot)].fetch_add(
      1, std::memory_order_relaxed);
  group->pending_.fetch_sub(1, std::memory_order_acq_rel);
}

bool ExecEngine::run_one(int slot, bool take_jobs) {
  // Own deque first: cache-warm, contention-free.
  if (slot >= 0 && slot < workers()) {
    if (auto shard = deques_[static_cast<std::size_t>(slot)]->pop_bottom()) {
      run_shard(*shard, slot);
      return true;
    }
  }
  // Steal: random starting victim, then sweep.
  const int n = workers();
  const std::uint32_t seed =
      steal_seed_.fetch_add(0x9e3779b9u, std::memory_order_relaxed);
  for (int v = 0; v < n; ++v) {
    const int victim = static_cast<int>((seed + static_cast<std::uint32_t>(v)) %
                                        static_cast<std::uint32_t>(n));
    if (victim == slot) continue;
    if (auto shard = deques_[static_cast<std::size_t>(victim)]->steal()) {
      stats_.steals.fetch_add(1, std::memory_order_relaxed);
      run_shard(*shard, slot);
      return true;
    }
  }
  // Global overflow queue: overflowed shards and (for workers) external
  // jobs. Waiters skip jobs so a wait() cannot nest an unrelated kernel.
  if (global_size_.load(std::memory_order_acquire) > 0) {
    GlobalItem item;
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(global_mutex_);
      for (auto it = global_.begin(); it != global_.end(); ++it) {
        if (it->job != nullptr && !take_jobs) continue;
        item = std::move(*it);
        global_.erase(it);
        global_size_.fetch_sub(1, std::memory_order_release);
        found = true;
        break;
      }
    }
    if (found) {
      if (item.job != nullptr) {
        try {
          item.job();
        } catch (...) {
          VGPU_ERROR("exec engine: external job threw an exception "
                     "(jobs must handle their own errors)");
        }
      } else {
        run_shard(item.shard, slot);
      }
      return true;
    }
  }
  return false;
}

void ExecEngine::wait(Group& group) {
  const int slot = tls_engine == this ? tls_worker : workers();
  ipc::WaitStrategy waiter(config_.wait);
  while (!group.done()) {
    if (run_one(slot, /*take_jobs=*/false)) continue;
    // Nothing runnable here: the remaining shards are executing on other
    // participants. Spin/yield briefly, then nap (no doorbell: shard
    // completions are too frequent to ring for).
    waiter.wait(
        [&] { return group.done() || work_available(); }, nullptr,
        std::chrono::steady_clock::now() + std::chrono::microseconds(100));
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(group.error_mutex_);
    error = group.error_;
    group.error_ = nullptr;
  }
  group.fn_ = nullptr;
  if (error != nullptr) std::rethrow_exception(error);
}

Status ExecEngine::parallel_for(long total_blocks, const RangeFn& fn,
                                long max_shards) {
  Group group;
  VGPU_RETURN_IF_ERROR(launch(group, total_blocks, fn, max_shards));
  wait(group);
  return Status::Ok();
}

Status ExecEngine::submit(std::function<void()> job) {
  if (stopping_.load(std::memory_order_acquire)) {
    return FailedPrecondition("exec engine is shut down");
  }
  stats_.external_jobs.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(global_mutex_);
    global_.push_back(GlobalItem{{}, std::move(job)});
    global_size_.fetch_add(1, std::memory_order_release);
  }
  ipc::Doorbell(&door_word_).ring();
  return Status::Ok();
}

ParallelFor ExecEngine::executor(long max_shards) {
  return [this, max_shards](long total, const RangeFn& fn) {
    const Status st = parallel_for(total, fn, max_shards);
    // A kernel body cannot handle an engine shutdown mid-stage; surface
    // it like any other kernel failure and let the job wrapper catch it.
    if (!st.ok()) throw std::runtime_error(st.to_string());
  };
}

void ExecEngine::worker_loop(int index) {
  tls_engine = this;
  tls_worker = index;
  if (config_.tracer != nullptr) config_.tracer->ensure_thread();
  ipc::WaitStrategy waiter(config_.wait);
  ipc::Doorbell door(&door_word_);
  for (;;) {
    if (run_one(index, /*take_jobs=*/true)) continue;
    // Drain-before-exit: shutdown() only stops a worker once no work is
    // visible, matching the old ThreadPool's destructor semantics.
    if (stopping_.load(std::memory_order_acquire)) {
      if (!work_available()) return;
      continue;
    }
    waiter.wait(
        [this] {
          return stopping_.load(std::memory_order_acquire) ||
                 work_available();
        },
        &door,
        std::chrono::steady_clock::now() + std::chrono::milliseconds(10));
  }
}

}  // namespace vgpu::exec
