// Minimal leveled logger.
//
// The simulator installs a "now" callback so log lines carry virtual time.
// Logging defaults to kWarn so tests and benches stay quiet; set
// set_log_level(LogLevel::kDebug) — or run with VGPU_LOG=debug in the
// environment — to trace protocol exchanges.
//
// Formatted lines go to stderr unless a sink is installed
// (set_log_sink()); the obs subsystem uses that hook to count lines per
// level in its metrics registry (obs::install_log_capture). Live-path
// code tags its thread with set_log_scope("client 3") so interleaved
// multi-client logs stay attributable: lines then render as
// "[W][client 3] message".
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "common/units.hpp"

namespace vgpu {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses a level name ("debug", "info", "warn", "error", "off").
bool parse_log_level(const std::string& text, LogLevel* out);

/// Applies the VGPU_LOG environment variable (if set and parseable) to
/// the process log level. Runs automatically before the first log_level()
/// read; exposed for tests and for re-reading after setenv().
void init_log_level_from_env();

/// Install a virtual-clock source; pass nullptr to revert to wall time.
void set_log_clock(std::function<SimTime()> now);

/// Receives each fully formatted line (no trailing newline) instead of
/// the default stderr write; pass nullptr to restore stderr output.
using LogSink = std::function<void(LogLevel, const std::string& line)>;
void set_log_sink(LogSink sink);

/// Thread-local attribution tag prepended to this thread's log lines
/// ("client 3", "gvm"); empty clears it. Thread-local so an in-process
/// server thread and client threads stay separately attributed.
void set_log_scope(std::string scope);
const std::string& log_scope();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

#define VGPU_LOG(level, expr)                                       \
  do {                                                              \
    if (static_cast<int>(level) >=                                  \
        static_cast<int>(::vgpu::log_level())) {                    \
      std::ostringstream vgpu_oss_;                                 \
      vgpu_oss_ << expr;                                            \
      ::vgpu::detail::log_line(level, vgpu_oss_.str());             \
    }                                                               \
  } while (0)

#define VGPU_DEBUG(expr) VGPU_LOG(::vgpu::LogLevel::kDebug, expr)
#define VGPU_INFO(expr) VGPU_LOG(::vgpu::LogLevel::kInfo, expr)
#define VGPU_WARN(expr) VGPU_LOG(::vgpu::LogLevel::kWarn, expr)
#define VGPU_ERROR(expr) VGPU_LOG(::vgpu::LogLevel::kError, expr)

}  // namespace vgpu
