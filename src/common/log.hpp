// Minimal leveled logger.
//
// The simulator installs a "now" callback so log lines carry virtual time.
// Logging defaults to kWarn so tests and benches stay quiet; set
// set_log_level(LogLevel::kDebug) to trace protocol exchanges.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "common/units.hpp"

namespace vgpu {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Install a virtual-clock source; pass nullptr to revert to wall time.
void set_log_clock(std::function<SimTime()> now);

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

#define VGPU_LOG(level, expr)                                       \
  do {                                                              \
    if (static_cast<int>(level) >=                                  \
        static_cast<int>(::vgpu::log_level())) {                    \
      std::ostringstream vgpu_oss_;                                 \
      vgpu_oss_ << expr;                                            \
      ::vgpu::detail::log_line(level, vgpu_oss_.str());             \
    }                                                               \
  } while (0)

#define VGPU_DEBUG(expr) VGPU_LOG(::vgpu::LogLevel::kDebug, expr)
#define VGPU_INFO(expr) VGPU_LOG(::vgpu::LogLevel::kInfo, expr)
#define VGPU_WARN(expr) VGPU_LOG(::vgpu::LogLevel::kWarn, expr)
#define VGPU_ERROR(expr) VGPU_LOG(::vgpu::LogLevel::kError, expr)

}  // namespace vgpu
