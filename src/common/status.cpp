#include "common/status.hpp"

namespace vgpu {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kOutOfMemory:
      return "OUT_OF_MEMORY";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kTimedOut:
      return "TIMED_OUT";
  }
  return "UNKNOWN";
}

}  // namespace vgpu
