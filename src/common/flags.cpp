#include "common/flags.hpp"

#include <cstdlib>

namespace vgpu {

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else {
      values_[body] = "";  // bare switch
    }
  }
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

long Flags::get_long(const std::string& name, long fallback) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtol(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return fallback;
}

}  // namespace vgpu
