// ASCII table / CSV emitter for bench harness output.
//
// Benches print the same rows/series the paper's tables and figures report;
// TablePrinter keeps that output aligned and optionally mirrors it to CSV so
// the series can be re-plotted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vgpu {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string num(double v, int precision = 3);

  /// Renders the table with a header rule to `os`.
  void print(std::ostream& os) const;

  /// Writes headers + rows as CSV to `path`. Returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== Figure 9 ... ==") used by every bench binary.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace vgpu
