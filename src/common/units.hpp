// Core unit types shared across the vgpu libraries.
//
// Simulated time is kept in integer nanoseconds (SimTime) so that the
// discrete-event engine is exactly reproducible: no floating-point clock
// drift, total ordering of events is well defined.
#pragma once

#include <cstdint>
#include <string>

namespace vgpu {

/// Simulated time in nanoseconds since simulation start.
using SimTime = std::int64_t;

/// Durations share the representation of SimTime.
using SimDuration = std::int64_t;

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;

/// Largest representable instant; used as "never".
constexpr SimTime kTimeInfinity = INT64_MAX;

constexpr SimDuration nanoseconds(double ns) {
  return static_cast<SimDuration>(ns);
}
constexpr SimDuration microseconds(double us) {
  return static_cast<SimDuration>(us * static_cast<double>(kMicrosecond));
}
constexpr SimDuration milliseconds(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}
constexpr SimDuration seconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}

constexpr double to_us(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}
constexpr double to_ms(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Byte counts. Signed so that size arithmetic (differences) is safe.
using Bytes = std::int64_t;

constexpr Bytes kKiB = 1024;
constexpr Bytes kMiB = 1024 * kKiB;
constexpr Bytes kGiB = 1024 * kMiB;
constexpr Bytes kKB = 1000;
constexpr Bytes kMB = 1000 * kKB;
constexpr Bytes kGB = 1000 * kMB;

/// Bandwidth in bytes per second.
using BytesPerSecond = double;

constexpr BytesPerSecond gb_per_s(double v) { return v * 1e9; }

/// Duration of moving `n` bytes at bandwidth `bw`; at least 1 ns for n > 0.
constexpr SimDuration transfer_time(Bytes n, BytesPerSecond bw) {
  if (n <= 0) return 0;
  const double s = static_cast<double>(n) / bw;
  const auto d = static_cast<SimDuration>(s * 1e9);
  return d > 0 ? d : 1;
}

/// Human-readable formatting helpers (for logs and bench tables).
std::string format_time(SimDuration d);
std::string format_bytes(Bytes b);

}  // namespace vgpu
