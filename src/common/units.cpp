#include "common/units.hpp"

#include <cmath>
#include <cstdio>

namespace vgpu {

std::string format_time(SimDuration d) {
  char buf[64];
  const double ad = std::abs(static_cast<double>(d));
  if (ad >= static_cast<double>(kSecond)) {
    std::snprintf(buf, sizeof(buf), "%.3f s", to_seconds(d));
  } else if (ad >= static_cast<double>(kMillisecond)) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", to_ms(d));
  } else if (ad >= static_cast<double>(kMicrosecond)) {
    std::snprintf(buf, sizeof(buf), "%.3f us", to_us(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(d));
  }
  return buf;
}

std::string format_bytes(Bytes b) {
  char buf[64];
  const double ab = std::abs(static_cast<double>(b));
  if (ab >= static_cast<double>(kGiB)) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB",
                  static_cast<double>(b) / static_cast<double>(kGiB));
  } else if (ab >= static_cast<double>(kMiB)) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB",
                  static_cast<double>(b) / static_cast<double>(kMiB));
  } else if (ab >= static_cast<double>(kKiB)) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB",
                  static_cast<double>(b) / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(b));
  }
  return buf;
}

}  // namespace vgpu
