#include "common/log.hpp"

#include <cstdio>
#include <mutex>

namespace vgpu {
namespace {

LogLevel g_level = LogLevel::kWarn;
std::function<SimTime()> g_clock;
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void set_log_clock(std::function<SimTime()> now) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_clock = std::move(now);
}

namespace detail {

void log_line(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_clock) {
    std::fprintf(stderr, "[%s @%s] %s\n", level_tag(level),
                 format_time(g_clock()).c_str(), msg.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_tag(level), msg.c_str());
  }
}

}  // namespace detail
}  // namespace vgpu
