#include "common/log.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace vgpu {
namespace {

LogLevel g_level = LogLevel::kWarn;
std::once_flag g_env_once;
std::function<SimTime()> g_clock;
LogSink g_sink;
std::mutex g_mutex;

thread_local std::string t_scope;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  // An explicit call wins over (and suppresses a later first-use read of)
  // the environment default.
  std::call_once(g_env_once, [] {});
  g_level = level;
}

LogLevel log_level() {
  std::call_once(g_env_once, [] { init_log_level_from_env(); });
  return g_level;
}

bool parse_log_level(const std::string& text, LogLevel* out) {
  std::string lower(text.size(), '\0');
  std::transform(text.begin(), text.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "debug") *out = LogLevel::kDebug;
  else if (lower == "info") *out = LogLevel::kInfo;
  else if (lower == "warn" || lower == "warning") *out = LogLevel::kWarn;
  else if (lower == "error") *out = LogLevel::kError;
  else if (lower == "off" || lower == "none") *out = LogLevel::kOff;
  else return false;
  return true;
}

void init_log_level_from_env() {
  const char* env = std::getenv("VGPU_LOG");
  if (env == nullptr) return;
  LogLevel level;
  if (parse_log_level(env, &level)) g_level = level;
}

void set_log_clock(std::function<SimTime()> now) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_clock = std::move(now);
}

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void set_log_scope(std::string scope) { t_scope = std::move(scope); }

const std::string& log_scope() { return t_scope; }

namespace detail {

void log_line(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::string line = "[";
  line += level_tag(level);
  if (g_clock) {
    line += " @";
    line += format_time(g_clock());
  }
  line += "]";
  if (!t_scope.empty()) {
    line += "[";
    line += t_scope;
    line += "]";
  }
  line += " ";
  line += msg;
  if (g_sink) {
    g_sink(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace detail
}  // namespace vgpu
