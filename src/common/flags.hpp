// Minimal command-line flag parser for the bench and example binaries.
//
// Accepted forms: --name=value and --switch (boolean true). Anything else
// is a positional argument (the unambiguous subset — a separated
// "--name value" form cannot be told apart from a positional). No
// registration step: callers query by name with a default.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace vgpu {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const {
    return values_.count(name) > 0;
  }

  std::string get_string(const std::string& name,
                         const std::string& fallback = "") const;
  long get_long(const std::string& name, long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  /// --flag or --flag=true/1/yes => true; --flag=false/0/no => false.
  bool get_bool(const std::string& name, bool fallback = false) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace vgpu
