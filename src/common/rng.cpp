#include "common/rng.hpp"

#include <cmath>

namespace vgpu {

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

}  // namespace vgpu
