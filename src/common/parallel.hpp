// Vocabulary types for range-parallel kernel bodies.
//
// Kernels expose their grid-parallel work as (block_begin, block_end)
// range functions; an executor decides how the range is partitioned and
// on which threads the pieces run. `ParallelFor` is the seam between the
// two: kernel bodies accept one and call it per grid-shaped stage, and
// callers bind either the serial executor below (the oracle path) or the
// work-stealing engine in src/exec. Keeping the seam here — not in
// src/exec — lets src/kernels stay free of any executor dependency.
#pragma once

#include <functional>

namespace vgpu {

/// One shard of a grid: executes blocks [begin, end). Implementations
/// must be safe to run concurrently with other shards of the same range.
using RangeFn = std::function<void(long begin, long end)>;

/// Runs `fn` over [0, total), possibly split across threads; must not
/// return until every block has executed. total <= 0 is a no-op.
using ParallelFor = std::function<void(long total, const RangeFn& fn)>;

/// The trivial executor: the whole range as one shard on the calling
/// thread. Kernel entry points default to this, which keeps the serial
/// paths byte-identical to the pre-engine implementations.
inline void serial_for(long total, const RangeFn& fn) {
  if (total > 0) fn(0, total);
}

/// A ParallelFor bound to serial_for (handy as a default argument).
inline const ParallelFor& serial_executor() {
  static const ParallelFor pf = serial_for;
  return pf;
}

}  // namespace vgpu
