// Small statistics toolkit used by benches and tests.
#pragma once

#include <cstddef>
#include <vector>

namespace vgpu {

/// Welford-style running mean / variance; O(1) memory.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile with linear interpolation; `q` in [0, 1]. Copies + sorts.
double percentile(std::vector<double> samples, double q);

/// Fixed-width histogram over [lo, hi); values outside clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace vgpu
