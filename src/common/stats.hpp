// Small statistics toolkit used by benches and tests.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace vgpu {

/// Welford-style running mean / variance; O(1) memory.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Order statistics over one sample set: sorts once at construction, then
/// answers any number of percentile queries without re-sorting or copying.
///
/// This is the repo's single percentile convention (linear interpolation
/// between order statistics at rank q*(n-1), value
/// `s[lo]*(1-frac) + s[hi]*frac`) — the sched/transport stats, the SLO
/// reporter, and the bench binaries all route through it, so a per-tenant
/// p99 in BENCH_mix.json and a wait_p95 in ablation_sched.csv mean the
/// same thing. Edge cases are total rather than asserting: an empty set
/// answers 0.0 for every quantile, a single sample answers that sample,
/// and q outside [0,1] (including NaN) clamps to the nearest edge.
class SampleStats {
 public:
  SampleStats() = default;
  explicit SampleStats(std::vector<double> samples)
      : sorted_(std::move(samples)) {
    std::sort(sorted_.begin(), sorted_.end());
  }

  double percentile(double q) const {
    if (sorted_.empty()) return 0.0;
    if (!(q > 0.0)) q = 0.0;  // also catches NaN
    if (q > 1.0) q = 1.0;
    const double pos = q * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
  }
  double median() const { return percentile(0.5); }
  double min() const { return sorted_.empty() ? 0.0 : sorted_.front(); }
  double max() const { return sorted_.empty() ? 0.0 : sorted_.back(); }
  double mean() const;
  std::size_t count() const { return sorted_.size(); }
  const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Percentile with linear interpolation; `q` in [0, 1]. Copies + sorts —
/// for repeated queries over the same samples build a SampleStats.
double percentile(std::vector<double> samples, double q);

/// Fixed-width histogram over [lo, hi); values outside clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace vgpu
