#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/status.hpp"

namespace vgpu {

double RunningStat::stddev() const { return std::sqrt(variance()); }

double SampleStats::mean() const {
  if (sorted_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : sorted_) sum += s;
  return sum / static_cast<double>(sorted_.size());
}

double percentile(std::vector<double> samples, double q) {
  return SampleStats(std::move(samples)).percentile(q);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  VGPU_ASSERT(hi > lo);
  VGPU_ASSERT(bins > 0);
}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / span *
                                         static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

}  // namespace vgpu
