#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/status.hpp"

namespace vgpu {

double RunningStat::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double q) {
  VGPU_ASSERT(!samples.empty());
  VGPU_ASSERT(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  VGPU_ASSERT(hi > lo);
  VGPU_ASSERT(bins > 0);
}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / span *
                                         static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

}  // namespace vgpu
