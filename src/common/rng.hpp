// Deterministic pseudo-random number generation.
//
// xoshiro256** seeded through SplitMix64; identical across platforms, which
// the discrete-event tests rely on for bit-exact reproducibility.
#pragma once

#include <cstdint>

namespace vgpu {

/// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection-free modulo is fine here; bias is negligible for our use.
    return bound == 0 ? 0 : next_u64() % bound;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Standard normal via Marsaglia polar method (deterministic sequence).
  double normal();

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace vgpu
