// Lightweight error handling used throughout vgpu.
//
// Libraries return Status / StatusOr<T> for recoverable conditions (resource
// exhaustion, protocol violations); programming errors use VGPU_ASSERT which
// aborts. This mirrors the convention of keeping exceptions out of the hot
// simulation path.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace vgpu {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kUnavailable,
  kInternal,
  kTimedOut,
};

const char* error_code_name(ErrorCode code);

class [[nodiscard]] Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (ok()) return "OK";
    return std::string(error_code_name(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return {ErrorCode::kInvalidArgument, std::move(msg)};
}
inline Status OutOfMemory(std::string msg) {
  return {ErrorCode::kOutOfMemory, std::move(msg)};
}
inline Status NotFound(std::string msg) {
  return {ErrorCode::kNotFound, std::move(msg)};
}
inline Status AlreadyExists(std::string msg) {
  return {ErrorCode::kAlreadyExists, std::move(msg)};
}
inline Status FailedPrecondition(std::string msg) {
  return {ErrorCode::kFailedPrecondition, std::move(msg)};
}
inline Status ResourceExhausted(std::string msg) {
  return {ErrorCode::kResourceExhausted, std::move(msg)};
}
inline Status Unavailable(std::string msg) {
  return {ErrorCode::kUnavailable, std::move(msg)};
}
inline Status Internal(std::string msg) {
  return {ErrorCode::kInternal, std::move(msg)};
}
inline Status TimedOut(std::string msg) {
  return {ErrorCode::kTimedOut, std::move(msg)};
}

/// Value-or-error result. Minimal, move-friendly.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    check();
    return *value_;
  }
  const T& value() const& {
    check();
    return *value_;
  }
  T&& value() && {
    check();
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void check() const {
    if (!status_.ok()) {
      std::fprintf(stderr, "StatusOr accessed with error: %s\n",
                   status_.to_string().c_str());
      std::abort();
    }
  }
  Status status_;
  std::optional<T> value_;
};

#define VGPU_ASSERT(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "VGPU_ASSERT failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define VGPU_ASSERT_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "VGPU_ASSERT failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, (msg));                      \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

/// Propagate a non-OK Status from the current function.
#define VGPU_RETURN_IF_ERROR(expr)             \
  do {                                         \
    ::vgpu::Status vgpu_status_ = (expr);      \
    if (!vgpu_status_.ok()) return vgpu_status_; \
  } while (0)

}  // namespace vgpu
