// Integer and floating-point helpers shared across modules.
#pragma once

#include <cmath>
#include <cstdint>

namespace vgpu {

template <typename T>
constexpr T ceil_div(T a, T b) {
  return (a + b - 1) / b;
}

template <typename T>
constexpr T round_up(T a, T multiple) {
  return ceil_div(a, multiple) * multiple;
}

inline bool almost_equal(double a, double b, double rel_tol = 1e-9,
                         double abs_tol = 1e-12) {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::fmax(std::fabs(a), std::fabs(b));
}

/// Relative deviation |a - b| / |b| as a percentage (paper Table III).
inline double deviation_percent(double experimental, double theoretical) {
  if (theoretical == 0.0) return 0.0;
  return std::fabs(experimental - theoretical) / std::fabs(theoretical) *
         100.0;
}

}  // namespace vgpu
