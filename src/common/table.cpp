#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/status.hpp"

namespace vgpu {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  VGPU_ASSERT(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  VGPU_ASSERT_MSG(cells.size() == headers_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << ' ';
    }
    os << "|\n";
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) os << '-';
    os << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

bool TablePrinter::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      // Quote cells containing commas.
      if (row[c].find(',') != std::string::npos) {
        out << '"' << row[c] << '"';
      } else {
        out << row[c];
      }
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return static_cast<bool>(out);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace vgpu
