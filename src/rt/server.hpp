// The live GVM server: a user-space daemon owning the (functional) GPU
// executor, serving VGPU requests from real processes or threads over the
// negotiated IPC transport — the deployable counterpart of the DES Gvm
// used for timing reproduction.
//
// Resource naming, for prefix P and client id k:
//   request queue   P_req          (created by the server; carries REQ,
//                                   mqueue-mode ops and shutdown)
//   doorbell        P_door         (created by the server; ring clients
//                                   and workers wake the serve loop here)
//   response queue  P_resp<k>      (created by the client; REQ handshake
//                                   and mqueue-mode responses)
//   data plane      P_vsm<k>       (created by the client; optional ring
//                                   channel block, then input area, then
//                                   output area — layout fixed at REQ)
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "exec/engine.hpp"
#include "gpu/spec.hpp"
#include "ipc/mqueue.hpp"
#include "ipc/shm.hpp"
#include "ipc/transport.hpp"
#include "obs/obs.hpp"
#include "rt/messages.hpp"
#include "rt/registry.hpp"
#include "rt/thread_pool.hpp"
#include "sched/admission.hpp"
#include "sched/scheduler.hpp"
#include "vmem/pager.hpp"

namespace vgpu::fault {
class Injector;
}

namespace vgpu::rt {

/// How job data crosses the client/server boundary.
enum class DataPlane : std::int32_t {
  /// Paper-faithful: SND copies vsm -> pinned staging, STP copies staging
  /// -> vsm (the Figure 10 "data in/out" overhead, reproduced live).
  kStaged = 0,
  /// Kernels execute directly on spans into the client's vsm region; the
  /// job path moves zero bytes. Relies on the protocol's discipline (the
  /// client only touches the data area between RCV and SND).
  kZeroCopy = 1,
};

const char* data_plane_name(DataPlane plane);
/// Parses the CLI spelling ("staged" | "zero_copy").
bool parse_data_plane(const std::string& text, DataPlane* out);

/// How granted kernels execute on the worker pool.
enum class ExecMode : std::int32_t {
  /// One serial job per granted kernel (pre-engine behaviour; a launch
  /// never uses more than one core).
  kSerial = 0,
  /// Grid-sharded execution on the work-stealing engine: each launch fans
  /// out into block-range shards capped by modeled SM occupancy, and the
  /// staged data plane's copies are chunked and overlapped with compute.
  kSharded = 1,
};

const char* exec_mode_name(ExecMode mode);
/// Parses the CLI spelling ("serial" | "sharded").
bool parse_exec_mode(const std::string& text, ExecMode* out);

struct RtServerConfig {
  std::string prefix = "/vgpu";
  /// STR barrier width (SPMD process count). 1 disables batching.
  int expected_clients = 1;
  /// Worker threads executing kernel functions.
  int workers = 4;
  /// Scheduling policy (src/sched) — the same policy objects the DES GVM
  /// uses, so the live and simulated paths cannot drift. For the default
  /// kBarrierCoFlush policy the width is `expected_clients`.
  sched::SchedulerConfig sched;
  /// Per-client cap on bytes_in + bytes_out at REQ; 0 = unlimited.
  /// Over-quota requests are rejected with RtAck::kError.
  Bytes per_client_quota = 0;
  /// Control-plane transport offered to clients. REQ negotiates: the
  /// selected transport is the best both sides speak, falling back to the
  /// paper-faithful message queue.
  ipc::TransportKind transport = ipc::TransportKind::kMessageQueue;
  /// Data plane for kernel execution (see DataPlane).
  DataPlane data_plane = DataPlane::kStaged;
  /// Execution mode for granted kernels (see ExecMode).
  ExecMode exec = ExecMode::kSerial;
  /// Sharded mode: target shards per worker per launch (engine
  /// oversubscription; stealing evens out shard-cost skew).
  int shard_oversubscribe = 4;
  /// Sharded + staged: copy-chunk granularity for the overlapped
  /// stage-in/write-back path.
  Bytes copy_chunk = 256 * kKiB;
  /// Modeled device for occupancy shard caps (sharded mode).
  gpu::DeviceSpec device = gpu::tesla_c2070();
  /// Serve-loop wait strategy (spin -> yield -> doorbell park).
  ipc::WaitConfig wait;
  /// Observability: span tracing (per-job queue/Tin/Tcomp/Tout phases)
  /// and ring sizing. The metrics registry is always on; stop() exports
  /// every legacy counter into it (see docs/observability.md).
  obs::ObsConfig obs;
  /// Lease: a registered client whose process is gone (pid probe), or that
  /// stays silent for this long while nothing of its is queued or running,
  /// is declared dead and fully reclaimed (vsm, rings, queues, quota,
  /// scheduler state — the barrier wave releases for the survivors).
  /// Zero disables client-death detection entirely.
  std::chrono::milliseconds lease_timeout{5000};
  /// How often the serve loop sweeps leases (and the pid probes run).
  std::chrono::milliseconds lease_check_interval{50};
  /// Released clients linger this long before their state is dropped, so
  /// a duplicate RLS (retry after a lost ack) still gets its replay.
  std::chrono::milliseconds release_linger{100};
  /// Admission capacity across all registered clients (bytes_in +
  /// bytes_out summed); 0 = unlimited. When new work does not fit, REQ
  /// answers kWait (backpressure: the client backs off and re-attaches).
  Bytes total_capacity = 0;
  /// After this many consecutive kWait answers to the same client id, the
  /// server degrades to DENIED (kError) instead of stringing the client
  /// along — graceful degradation under sustained overload. 0 disables.
  int deny_after_backpressure = 16;
  /// Optional fault injector (not owned; must outlive the server). Drives
  /// the server-side points (server.handle, server.respond, device.alloc)
  /// and is forwarded to the exec engine (exec.shard) and the vmem pager
  /// (vmem.pagein). Null (the default) costs one pointer compare per hook.
  fault::Injector* fault = nullptr;
  /// Transparent memory oversubscription (src/vmem). When enabled,
  /// admission runs in paged mode — clients are admitted up to the
  /// *virtual* capacity (device + host ledger) and never denied or
  /// whole-client evicted under memory pressure — and the grant path pins
  /// each job's working set on the modeled device, spilling cold pages of
  /// other clients to the host-RAM ledger (see docs/memory.md).
  struct Vmem {
    bool enabled = false;
    Bytes page_size = 2 * kMiB;
    /// Modeled device memory backing page frames; 0 = use total_capacity.
    Bytes device_capacity = 0;
    /// Host ledger bound for spilled pages.
    Bytes host_ledger = 1024 * kMiB;
    /// Sequential pages faulted ahead on a residency miss.
    int prefetch_window = 4;
  } vmem;
};

struct RtServerStats {
  std::atomic<long> requests{0};
  std::atomic<long> flushes{0};
  std::atomic<long> jobs_run{0};
  std::atomic<long> waits_sent{0};
  /// Requests that arrived via a shm-ring lane (no syscalls).
  std::atomic<long> ring_requests{0};
  /// Data-plane bytes memcpy'd on the job path (staged mode only; the
  /// zero-copy plane keeps this at 0).
  std::atomic<long> bytes_copied{0};
  /// Kernel entries avoided versus the mqueue control plane: 4 per ring
  /// round trip (client mq_send + server mq_timedreceive + server mq_send
  /// + client mq_receive), doorbell futexes not deducted (the spin phase
  /// elides most of them; see spin_wakeups).
  std::atomic<long> syscalls_saved{0};
  /// Serve-loop idle waits satisfied while spinning (no futex park).
  std::atomic<long> spin_wakeups{0};
  /// Serve-loop futex parks.
  std::atomic<long> doorbell_blocks{0};
  /// Data-plane bytes whose copy ran while the engine had other compute
  /// in flight (sharded mode: the chunked-overlap payoff; 0 in serial
  /// mode, where every copy serializes against compute).
  std::atomic<long> overlap_bytes{0};
  /// Kernel jobs that raised an exception (surfaced to the client as an
  /// RtAck::kError at STP instead of terminating the server).
  std::atomic<long> jobs_failed{0};
  /// Client leases expired (pid probe or silent deadline).
  std::atomic<long> leases_expired{0};
  /// Dead clients fully reclaimed (segments, queues, quota, scheduler).
  std::atomic<long> clients_reclaimed{0};
  /// Admitted quota bytes returned by reclamation.
  std::atomic<long> reclaimed_bytes{0};
  /// REQ answered kWait (admission backpressure under memory pressure).
  std::atomic<long> backpressure{0};
  /// REQ answered kError after sustained backpressure (DENIED).
  std::atomic<long> denials{0};
  /// Repeated-seq requests absorbed by replaying the recorded response.
  std::atomic<long> duplicates_absorbed{0};
  /// Responses dropped on a full (likely dead) client queue or ring.
  std::atomic<long> responses_dropped{0};
  /// Histogram of requests handled per serve-loop wakeup; bucket i counts
  /// wakeups that drained a batch of depth in [2^i, 2^(i+1)).
  static constexpr int kBatchBuckets = 8;  // 1,2-3,4-7,...,128+
  std::atomic<long> batch_depth[kBatchBuckets] = {};

  void record_batch(std::size_t depth);
};

/// Snapshot of the execution engine's counters, captured at stop() (the
/// engine itself is torn down with the serve loop).
struct RtExecCounters {
  long launches = 0;
  long shards_executed = 0;
  long steals = 0;
  long overflow_pushes = 0;
  long external_jobs = 0;
  /// Shards executed per worker; the last entry counts non-worker
  /// participants (threads inside engine waits).
  std::vector<long> worker_shards;
};

class RtServer {
 public:
  RtServer(RtServerConfig config, const KernelRegistry& registry);
  RtServer(const RtServer&) = delete;
  RtServer& operator=(const RtServer&) = delete;
  ~RtServer();

  /// Creates the request queue and doorbell region, then starts the serve
  /// thread.
  Status start();

  /// Posts a shutdown message and joins the serve thread. Idempotent.
  void stop();

  const RtServerStats& stats() const { return stats_; }
  const RtServerConfig& config() const { return config_; }
  /// Execution-engine counters; meaningful after stop() in sharded mode
  /// (all zeros in serial mode).
  const RtExecCounters& exec_counters() const { return exec_counters_; }
  /// Scheduler counters; read after stop() (the serve thread owns the
  /// scheduler while running).
  const sched::Scheduler& scheduler() const { return *scheduler_; }
  const sched::AdmissionController& admission() const { return *admission_; }
  /// The vmem pager; null unless config.vmem.enabled. Counters are safe
  /// to read after stop() (the serve thread owns the pager while running).
  const vmem::Pager* pager() const { return pager_.get(); }
  /// The observability hub: metrics registry (fully populated after
  /// stop(), via export_obs) and the span tracer.
  obs::Hub& obs() { return obs_; }
  const obs::Hub& obs() const { return obs_; }

 private:
  struct ClientState {
    ipc::SharedMemory vsm;
    /// REQ handshake and mqueue-mode responses (client-created).
    ipc::MessageQueue<RtResponse> resp;
    /// Post-negotiation response path (and, for rings, request source).
    std::unique_ptr<ipc::ServerLane<RtRequest, RtResponse>> lane;
    RtChannel* channel = nullptr;      // ring transport only; inside vsm
    std::size_t data_offset = 0;       // data area offset inside vsm
    std::vector<std::byte> staging_in;   // staged data plane only
    std::vector<std::byte> staging_out;
    const RtKernelFn* kernel = nullptr;
    int id = -1;         // client id (the span lane)
    int kernel_id = -1;
    /// STR arrival per the tracer clock; closes the kQueueWait span at
    /// grant time (kSpanDisabled while tracing is off).
    SimTime str_begin = obs::kSpanDisabled;
    std::int64_t params[4] = {};
    Bytes bytes_in = 0;
    Bytes bytes_out = 0;
    bool str_pending = false;
    std::shared_ptr<std::atomic<bool>> job_done =
        std::make_shared<std::atomic<bool>>(true);
    /// Set by the job when the kernel threw; STP answers kError.
    std::shared_ptr<std::atomic<bool>> job_failed =
        std::make_shared<std::atomic<bool>>(false);
    /// Lease bookkeeping. `pid` is the client's process id from REQ (0 for
    /// in-process clients: no liveness probe). `last_seen` is the tracer-
    /// clock time of the client's last control message.
    int pid = 0;
    SimTime last_seen = 0;
    /// Lease expired; resources are reclaimed once the in-flight job (if
    /// any) drains — the job still references vsm and the staging buffers.
    bool doomed = false;
    /// RLS handled; state lingers for release_linger so duplicate RLS
    /// retries get their replay instead of "unknown client".
    bool released = false;
    SimTime released_at = 0;
    /// At-least-once RPC: highest request seq seen and the response it
    /// got. A repeat of last_seq replays last_response verbatim (the
    /// request side effects must not run twice); seq 0 opts out.
    std::int64_t last_seq = 0;
    RtResponse last_response{};
    bool has_last_response = false;
    /// Quota charged against total_capacity at admission (returned on
    /// release or reclamation).
    Bytes admitted_bytes = 0;
    /// vmem registrations (0 = unbound): input/output backing — staging
    /// buffers in staged mode, the vsm data areas in zero-copy mode.
    vmem::AllocId alloc_in = 0;
    vmem::AllocId alloc_out = 0;

    std::span<std::byte> input_area() {
      return vsm.bytes().subspan(data_offset,
                                 static_cast<std::size_t>(bytes_in));
    }
    std::span<std::byte> output_area() {
      return vsm.bytes().subspan(
          data_offset + static_cast<std::size_t>(bytes_in),
          static_cast<std::size_t>(bytes_out));
    }
  };

  void serve_loop();
  /// One non-blocking sweep over the shared queue and every ring lane.
  /// Returns the number of requests handled; sets *shutdown when the
  /// shutdown message was seen.
  std::size_t drain_requests(bool* shutdown);
  void handle(const RtRequest& request);
  void handle_req(const RtRequest& request);
  /// Drains scheduler grants: dispatches every granted client's job batch
  /// to the worker pool and ACKs the STRs.
  void pump();
  /// Builds the worker-pool job for a granted client (marks it busy).
  std::function<void()> make_job(int client_id, ClientState& client);
  /// Job body for sharded mode: chunked stage-in, engine-sharded kernel,
  /// chunked write-back (runs on an engine worker).
  void run_sharded_job(ClientState& client);
  /// Pipelined elementwise path: copy chunk k+1's input slices while
  /// chunk k computes (double-buffered copy/compute overlap).
  void run_streamed(ClientState& client, const RtStream& stream, long cap);
  /// Chunked memcpy on the engine; counts overlap when other jobs are in
  /// flight.
  void copy_chunked(std::byte* dst, const std::byte* src, Bytes total);
  /// Feeds worker-thread job completions back into the scheduler (serve
  /// thread only).
  void drain_completions();
  void respond(ClientState& client, RtAck ack);
  /// Records the response for duplicate replay, applies the
  /// server.respond fault point, and sends without ever blocking the
  /// serve loop (a full dead-client queue counts responses_dropped).
  void send_response(ClientState& client, const RtResponse& response);
  /// Lease sweep (rate-limited by lease_check_interval): pid probes,
  /// silent-deadline expiry, deferred reclamation of doomed clients whose
  /// jobs drained, and garbage collection of lingering released clients.
  void check_leases();
  /// Declares a client dead: dequeues it from the scheduler (releasing
  /// the barrier wave for survivors), records the kLeaseExpiry span, and
  /// marks it doomed for reclamation.
  void expire_lease(ClientState& client, SimTime now);
  /// The single code path returning a client's bytes to the admission
  /// ledger — RLS, lease expiry, and stale re-attach replacement all land
  /// here — and, with the pager on, reclaiming its pages and ledger
  /// slots. `count_reclaimed` adds the bytes to rt.reclaimed_bytes
  /// (crash-path accounting; a clean RLS does not count).
  void return_quota(ClientState& client, bool count_reclaimed);
  /// Modeled device capacity backing the pager's frames.
  Bytes device_capacity() const;
  /// Admission budget: virtual (device + ledger) in vmem mode, else
  /// total_capacity; "unlimited" when neither is configured.
  Bytes admission_capacity() const;
  /// Tears down one client's resources: ring lane, quota bytes, and the
  /// orphaned P_vsm / P_resp names. Returns the next map iterator.
  std::map<int, ClientState>::iterator reclaim(
      std::map<int, ClientState>::iterator it);
  /// True when any ring lane holds an unread request.
  bool ring_request_pending();
  /// Monotonic nanoseconds since server start — the scheduler's clock.
  SimTime rt_now() const;
  /// Syncs every legacy stats_/exec_counters_/sched counter into the obs
  /// registry (the single source print paths read from). Runs at stop().
  void export_obs();

  RtServerConfig config_;
  const KernelRegistry& registry_;
  ipc::MessageQueue<RtRequest> requests_;
  ipc::SharedMemory door_shm_;  // serve-loop doorbell (P_door)
  std::map<int, ClientState> clients_;
  int ring_lanes_ = 0;  // clients negotiated onto the ring transport
  Bytes admitted_total_ = 0;     // quota charged across live clients
  SimTime last_lease_check_ = 0;
  std::map<int, int> backpressure_counts_;  // consecutive kWait per client
  std::vector<RtRequest> ring_batch_;  // drain_requests scratch
  std::unique_ptr<sched::Scheduler> scheduler_;
  std::unique_ptr<sched::AdmissionController> admission_;
  std::unique_ptr<vmem::Pager> pager_;  // null unless config.vmem.enabled
  std::chrono::steady_clock::time_point start_time_;
  std::mutex completions_mutex_;
  std::vector<int> completions_;  // worker -> serve thread job completions
  std::atomic<int> pending_completions_{0};
  std::unique_ptr<ThreadPool> pool_;             // serial mode
  std::unique_ptr<exec::ExecEngine> engine_;     // sharded mode
  std::atomic<int> jobs_in_flight_{0};
  RtExecCounters exec_counters_;
  std::thread serve_thread_;
  std::atomic<bool> running_{false};
  RtServerStats stats_;
  obs::Hub obs_;
};

}  // namespace vgpu::rt
