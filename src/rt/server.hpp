// The live GVM server: a user-space daemon owning the (functional) GPU
// executor, serving VGPU requests from real processes or threads over
// POSIX message queues and shared memory — the deployable counterpart of
// the DES Gvm used for timing reproduction.
//
// Resource naming, for prefix P and client id k:
//   request queue   P_req          (created by the server)
//   response queue  P_resp<k>      (created by the client)
//   data plane      P_vsm<k>       (created by the client; input area then
//                                   output area, sizes fixed at REQ)
#pragma once

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "ipc/mqueue.hpp"
#include "ipc/shm.hpp"
#include "rt/messages.hpp"
#include "rt/registry.hpp"
#include "rt/thread_pool.hpp"
#include "sched/admission.hpp"
#include "sched/scheduler.hpp"

namespace vgpu::rt {

struct RtServerConfig {
  std::string prefix = "/vgpu";
  /// STR barrier width (SPMD process count). 1 disables batching.
  int expected_clients = 1;
  /// Worker threads executing kernel functions.
  int workers = 4;
  /// Scheduling policy (src/sched) — the same policy objects the DES GVM
  /// uses, so the live and simulated paths cannot drift. For the default
  /// kBarrierCoFlush policy the width is `expected_clients`.
  sched::SchedulerConfig sched;
  /// Per-client cap on bytes_in + bytes_out at REQ; 0 = unlimited.
  /// Over-quota requests are rejected with RtAck::kError.
  Bytes per_client_quota = 0;
};

struct RtServerStats {
  std::atomic<long> requests{0};
  std::atomic<long> flushes{0};
  std::atomic<long> jobs_run{0};
  std::atomic<long> waits_sent{0};
};

class RtServer {
 public:
  RtServer(RtServerConfig config, const KernelRegistry& registry);
  RtServer(const RtServer&) = delete;
  RtServer& operator=(const RtServer&) = delete;
  ~RtServer();

  /// Creates the request queue and starts the serve thread.
  Status start();

  /// Posts a shutdown message and joins the serve thread. Idempotent.
  void stop();

  const RtServerStats& stats() const { return stats_; }
  const RtServerConfig& config() const { return config_; }
  /// Scheduler counters; read after stop() (the serve thread owns the
  /// scheduler while running).
  const sched::Scheduler& scheduler() const { return *scheduler_; }
  const sched::AdmissionController& admission() const { return *admission_; }

 private:
  struct ClientState {
    ipc::SharedMemory vsm;
    ipc::MessageQueue<RtResponse> resp;
    std::vector<std::byte> staging_in;   // "pinned" staging buffers
    std::vector<std::byte> staging_out;
    const RtKernelFn* kernel = nullptr;
    std::int64_t params[4] = {};
    Bytes bytes_in = 0;
    Bytes bytes_out = 0;
    bool str_pending = false;
    std::shared_ptr<std::atomic<bool>> job_done =
        std::make_shared<std::atomic<bool>>(true);
  };

  void serve_loop();
  void handle(const RtRequest& request);
  void handle_req(const RtRequest& request);
  /// Drains scheduler grants: dispatches every granted client's job to
  /// the worker pool and ACKs its STR.
  void pump();
  void dispatch(int client_id);
  /// Feeds worker-thread job completions back into the scheduler (serve
  /// thread only).
  void drain_completions();
  void respond(ClientState& client, RtAck ack);
  /// Monotonic nanoseconds since server start — the scheduler's clock.
  SimTime rt_now() const;

  RtServerConfig config_;
  const KernelRegistry& registry_;
  ipc::MessageQueue<RtRequest> requests_;
  std::map<int, ClientState> clients_;
  std::unique_ptr<sched::Scheduler> scheduler_;
  std::unique_ptr<sched::AdmissionController> admission_;
  std::chrono::steady_clock::time_point start_time_;
  std::mutex completions_mutex_;
  std::vector<int> completions_;  // worker -> serve thread job completions
  std::unique_ptr<ThreadPool> pool_;
  std::thread serve_thread_;
  std::atomic<bool> running_{false};
  RtServerStats stats_;
};

}  // namespace vgpu::rt
