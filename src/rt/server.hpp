// The live GVM server: a user-space daemon owning the (functional) GPU
// executor, serving VGPU requests from real processes or threads over the
// negotiated IPC transport — the deployable counterpart of the DES Gvm
// used for timing reproduction.
//
// Resource naming, for prefix P and client id k:
//   request queue   P_req          (created by the server; carries REQ,
//                                   mqueue-mode ops and shutdown)
//   doorbell        P_door         (created by the server; ring clients
//                                   and workers wake the serve loop here)
//   response queue  P_resp<k>      (created by the client; REQ handshake
//                                   and mqueue-mode responses)
//   data plane      P_vsm<k>       (created by the client; optional ring
//                                   channel block, then input area, then
//                                   output area — layout fixed at REQ)
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <queue>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "exec/engine.hpp"
#include "gpu/spec.hpp"
#include "ipc/arena.hpp"
#include "ipc/control.hpp"
#include "ipc/mqueue.hpp"
#include "ipc/shm.hpp"
#include "ipc/transport.hpp"
#include "obs/obs.hpp"
#include "rt/graph.hpp"
#include "rt/messages.hpp"
#include "rt/registry.hpp"
#include "rt/session.hpp"
#include "rt/thread_pool.hpp"
#include "sched/admission.hpp"
#include "sched/placement.hpp"
#include "sched/scheduler.hpp"
#include "vmem/pager.hpp"

namespace vgpu::fault {
class Injector;
}

namespace vgpu::rt {

/// How job data crosses the client/server boundary.
enum class DataPlane : std::int32_t {
  /// Paper-faithful: SND copies vsm -> pinned staging, STP copies staging
  /// -> vsm (the Figure 10 "data in/out" overhead, reproduced live).
  kStaged = 0,
  /// Kernels execute directly on spans into the client's vsm region; the
  /// job path moves zero bytes. Relies on the protocol's discipline (the
  /// client only touches the data area between RCV and SND).
  kZeroCopy = 1,
};

const char* data_plane_name(DataPlane plane);
/// Parses the CLI spelling ("staged" | "zero_copy").
bool parse_data_plane(const std::string& text, DataPlane* out);

/// How granted kernels execute on the worker pool.
enum class ExecMode : std::int32_t {
  /// One serial job per granted kernel (pre-engine behaviour; a launch
  /// never uses more than one core).
  kSerial = 0,
  /// Grid-sharded execution on the work-stealing engine: each launch fans
  /// out into block-range shards capped by modeled SM occupancy, and the
  /// staged data plane's copies are chunked and overlapped with compute.
  kSharded = 1,
};

const char* exec_mode_name(ExecMode mode);
/// Parses the CLI spelling ("serial" | "sharded").
bool parse_exec_mode(const std::string& text, ExecMode* out);

/// Ceiling conversion for the serve loop's idle park: microseconds to
/// whole milliseconds (mq_timedreceive granularity), never below 1ms.
/// Truncating instead (the old `count() / 1000`) cut a 1.9ms park to 1ms
/// and woke the idle loop up to twice as often as the scheduler asked.
inline std::chrono::milliseconds park_ceil_ms(std::chrono::microseconds park) {
  const auto ms = (park.count() + 999) / 1000;
  return std::chrono::milliseconds(ms < 1 ? 1 : ms);
}

struct RtServerConfig {
  std::string prefix = "/vgpu";
  /// STR barrier width (SPMD process count). 1 disables batching.
  int expected_clients = 1;
  /// Worker threads executing kernel functions.
  int workers = 4;
  /// Scheduling policy (src/sched) — the same policy objects the DES GVM
  /// uses, so the live and simulated paths cannot drift. For the default
  /// kBarrierCoFlush policy the width is `expected_clients`.
  sched::SchedulerConfig sched;
  /// Per-client cap on bytes_in + bytes_out at REQ; 0 = unlimited.
  /// Over-quota requests are rejected with RtAck::kError.
  Bytes per_client_quota = 0;
  /// Control-plane transport offered to clients. REQ negotiates: the
  /// selected transport is the best both sides speak, falling back to the
  /// paper-faithful message queue.
  ipc::TransportKind transport = ipc::TransportKind::kMessageQueue;
  /// Data plane for kernel execution (see DataPlane).
  DataPlane data_plane = DataPlane::kStaged;
  /// Execution mode for granted kernels (see ExecMode).
  ExecMode exec = ExecMode::kSerial;
  /// Sharded mode: target shards per worker per launch (engine
  /// oversubscription; stealing evens out shard-cost skew).
  int shard_oversubscribe = 4;
  /// Sharded + staged: copy-chunk granularity for the overlapped
  /// stage-in/write-back path.
  Bytes copy_chunk = 256 * kKiB;
  /// Modeled device for occupancy shard caps (sharded mode).
  gpu::DeviceSpec device = gpu::tesla_c2070();
  /// Serve-loop wait strategy (spin -> yield -> doorbell park).
  ipc::WaitConfig wait;
  /// Session-table capacity: the most concurrently attached clients the
  /// control region's ready set is sized for. Attaches beyond it answer
  /// kWait (backpressure), never a crash.
  int max_sessions = 4096;
  /// Handshake mailboxes in the control region. Arena clients take their
  /// REQ ack here instead of a private response queue — POSIX caps the
  /// per-user mqueue count (fs.mqueue.queues_max, typically 256) far
  /// below the populations the load harness drives.
  int handshake_mailboxes = 256;
  /// Pooled vsm arena size; 0 disables (every client creates a private
  /// P_vsm<k> segment). When set, clients advertising the arena
  /// capability get their region carved out of one shared
  /// (hugepage-advised) segment — see docs/scaling.md.
  Bytes arena_size = 0;
  bool arena_hugepages = true;
  /// Lease sweep rotation: sessions pid-probed (and lanes reconciled)
  /// per lease_check_interval. Bounds the sweep at scale; populations at
  /// or below this see exactly the pre-rotation probe latency.
  int probe_batch = 64;
  /// Observability: span tracing (per-job queue/Tin/Tcomp/Tout phases)
  /// and ring sizing. The metrics registry is always on; stop() exports
  /// every legacy counter into it (see docs/observability.md).
  obs::ObsConfig obs;
  /// Lease: a registered client whose process is gone (pid probe), or that
  /// stays silent for this long while nothing of its is queued or running,
  /// is declared dead and fully reclaimed (vsm, rings, queues, quota,
  /// scheduler state — the barrier wave releases for the survivors).
  /// Zero disables client-death detection entirely.
  std::chrono::milliseconds lease_timeout{5000};
  /// How often the serve loop sweeps leases (and the pid probes run).
  std::chrono::milliseconds lease_check_interval{50};
  /// Released clients linger this long before their state is dropped, so
  /// a duplicate RLS (retry after a lost ack) still gets its replay.
  std::chrono::milliseconds release_linger{100};
  /// Admission capacity across all registered clients (bytes_in +
  /// bytes_out summed); 0 = unlimited. When new work does not fit, REQ
  /// answers kWait (backpressure: the client backs off and re-attaches).
  Bytes total_capacity = 0;
  /// After this many consecutive kWait answers to the same client id, the
  /// server degrades to DENIED (kError) instead of stringing the client
  /// along — graceful degradation under sustained overload. 0 disables.
  int deny_after_backpressure = 16;
  /// Optional fault injector (not owned; must outlive the server). Drives
  /// the server-side points (server.handle, server.respond, device.alloc)
  /// and is forwarded to the exec engine (exec.shard) and the vmem pager
  /// (vmem.pagein). Null (the default) costs one pointer compare per hook.
  fault::Injector* fault = nullptr;
  /// Transparent memory oversubscription (src/vmem). When enabled,
  /// admission runs in paged mode — clients are admitted up to the
  /// *virtual* capacity (device + host ledger) and never denied or
  /// whole-client evicted under memory pressure — and the grant path pins
  /// each job's working set on the modeled device, spilling cold pages of
  /// other clients to the host-RAM ledger (see docs/memory.md).
  struct Vmem {
    bool enabled = false;
    Bytes page_size = 2 * kMiB;
    /// Modeled device memory backing page frames; 0 = use total_capacity.
    Bytes device_capacity = 0;
    /// Host ledger bound for spilled pages.
    Bytes host_ledger = 1024 * kMiB;
    /// Sequential pages faulted ahead on a residency miss.
    int prefetch_window = 4;
    /// Modeled memory domains (devices) behind the front door: each gets
    /// its own pager (device_capacity frames + host_ledger) and clients
    /// are routed to one at REQ time by `placement`. Metrics gain
    /// per-device labels (vmem.device<k>.*, gpu.device<k>.mem.*,
    /// rt.device<k>.*) alongside the pooled vmem.* aggregates.
    int devices = 1;
  } vmem;
  /// Placement policy routing clients across the vmem memory domains at
  /// REQ time (static / pack / spread / locality); only consulted when
  /// vmem.devices > 1.
  sched::PlacementConfig placement;
};

struct RtServerStats {
  std::atomic<long> requests{0};
  std::atomic<long> flushes{0};
  std::atomic<long> jobs_run{0};
  std::atomic<long> waits_sent{0};
  /// Requests that arrived via a shm-ring lane (no syscalls).
  std::atomic<long> ring_requests{0};
  /// Data-plane bytes memcpy'd on the job path (staged mode only; the
  /// zero-copy plane keeps this at 0).
  std::atomic<long> bytes_copied{0};
  /// Kernel entries avoided versus the mqueue control plane: 4 per ring
  /// round trip (client mq_send + server mq_timedreceive + server mq_send
  /// + client mq_receive), doorbell futexes not deducted (the spin phase
  /// elides most of them; see spin_wakeups).
  std::atomic<long> syscalls_saved{0};
  /// Serve-loop idle waits satisfied while spinning (no futex park).
  std::atomic<long> spin_wakeups{0};
  /// Serve-loop futex parks.
  std::atomic<long> doorbell_blocks{0};
  /// Data-plane bytes whose copy ran while the engine had other compute
  /// in flight (sharded mode: the chunked-overlap payoff; 0 in serial
  /// mode, where every copy serializes against compute).
  std::atomic<long> overlap_bytes{0};
  /// Kernel jobs that raised an exception (surfaced to the client as an
  /// RtAck::kError at STP instead of terminating the server).
  std::atomic<long> jobs_failed{0};
  /// Client leases expired (pid probe or silent deadline).
  std::atomic<long> leases_expired{0};
  /// Dead clients fully reclaimed (segments, queues, quota, scheduler).
  std::atomic<long> clients_reclaimed{0};
  /// Admitted quota bytes returned by reclamation.
  std::atomic<long> reclaimed_bytes{0};
  /// REQ answered kWait (admission backpressure under memory pressure).
  std::atomic<long> backpressure{0};
  /// REQ answered kError after sustained backpressure (DENIED).
  std::atomic<long> denials{0};
  /// Repeated-seq requests absorbed by replaying the recorded response.
  std::atomic<long> duplicates_absorbed{0};
  /// Responses dropped on a full (likely dead) client queue or ring.
  std::atomic<long> responses_dropped{0};
  /// Sessions attached into the slot table (REQ accepted).
  std::atomic<long> sessions_attached{0};
  /// Slots recycled back to the free list (detach under churn).
  std::atomic<long> slots_recycled{0};
  /// Verbs rejected because their session token's generation was recycled.
  std::atomic<long> stale_sessions{0};
  /// REQ acks delivered through control-region mailboxes (no mqueue).
  std::atomic<long> mailbox_acks{0};
  /// REQs granted a region inside the pooled vsm arena.
  std::atomic<long> arena_grants{0};
  /// Arena asks declined (no arena configured, or transiently full).
  std::atomic<long> arena_declines{0};
  /// Ring requests recovered by the reconciliation sweep instead of the
  /// ready set (a publisher died mid-publish, or a pre-session client).
  std::atomic<long> reconcile_requests{0};
  /// Serve-thread CPU time (CLOCK_THREAD_CPUTIME_ID), total over the
  /// serve loop's life; divide by rt.requests for CPU-per-request.
  std::atomic<long> serve_cpu_ns{0};
  /// Histogram of requests handled per serve-loop wakeup; bucket i counts
  /// wakeups that drained a batch of depth in [2^i, 2^(i+1)).
  static constexpr int kBatchBuckets = 8;  // 1,2-3,4-7,...,128+
  std::atomic<long> batch_depth[kBatchBuckets] = {};
  /// Ready-set depth per drain (same 2^i bucketing): how many lanes were
  /// actually ready per wakeup — the tentpole's O(ready) evidence.
  std::atomic<long> ready_depth[kBatchBuckets] = {};
  /// Grants written back per pump (one response sweep each).
  std::atomic<long> grants_per_pump[kBatchBuckets] = {};
  /// Control-plane messages received, per verb — the measured baseline
  /// for the graph path's fewer-messages-per-iteration claim. Duplicates
  /// count too: every arrival is control-plane work.
  std::atomic<long> ctrl_req{0};
  std::atomic<long> ctrl_snd{0};
  std::atomic<long> ctrl_str{0};
  std::atomic<long> ctrl_stp{0};
  std::atomic<long> ctrl_rcv{0};
  std::atomic<long> ctrl_rls{0};
  /// kGraphUpload + kLaunchGraph messages.
  std::atomic<long> ctrl_graph{0};
  /// Graph capture/replay (docs/graphs.md).
  std::atomic<long> graph_uploads{0};       // upload chunks received
  std::atomic<long> graphs_cached{0};       // validated + cached
  std::atomic<long> graphs_rejected{0};     // failed validation
  std::atomic<long> graph_replays{0};       // kLaunchGraph jobs completed
  std::atomic<long> graph_nodes_run{0};     // nodes executed across replays
  /// Kernel nodes whose data pass was merged into their predecessor's
  /// fused chain (the saved sweeps over the data).
  std::atomic<long> graph_nodes_fused{0};
  /// Control messages a replay avoided versus per-launch execution:
  /// 4 verbs (SND/STR/STP/RCV) per kernel node, minus the one launch.
  std::atomic<long> graph_messages_saved{0};
  /// Cached graphs torn down with their session (lease expiry, RLS
  /// linger GC, re-attach replacement).
  std::atomic<long> graphs_reclaimed{0};
  /// Nodes currently cached across all sessions; must drain to zero when
  /// every session dies (the recovery tests' leak check).
  std::atomic<long> graph_nodes_live{0};

  void record_batch(std::size_t depth);
  void record_ready(std::size_t depth);
  void record_pump(std::size_t grants);
};

/// Snapshot of the execution engine's counters, captured at stop() (the
/// engine itself is torn down with the serve loop).
struct RtExecCounters {
  long launches = 0;
  long shards_executed = 0;
  long steals = 0;
  long overflow_pushes = 0;
  long external_jobs = 0;
  /// Shards executed per worker; the last entry counts non-worker
  /// participants (threads inside engine waits).
  std::vector<long> worker_shards;
};

class RtServer {
 public:
  RtServer(RtServerConfig config, const KernelRegistry& registry);
  RtServer(const RtServer&) = delete;
  RtServer& operator=(const RtServer&) = delete;
  ~RtServer();

  /// Creates the request queue and doorbell region, then starts the serve
  /// thread.
  Status start();

  /// Posts a shutdown message and joins the serve thread. Idempotent.
  void stop();

  const RtServerStats& stats() const { return stats_; }
  const RtServerConfig& config() const { return config_; }
  /// Execution-engine counters; meaningful after stop() in sharded mode
  /// (all zeros in serial mode).
  const RtExecCounters& exec_counters() const { return exec_counters_; }
  /// Scheduler counters; read after stop() (the serve thread owns the
  /// scheduler while running).
  const sched::Scheduler& scheduler() const { return *scheduler_; }
  const sched::AdmissionController& admission() const { return *admission_; }
  /// The vmem pager (memory domain 0); null unless config.vmem.enabled.
  /// Counters are safe to read after stop() (the serve thread owns the
  /// pagers while running).
  const vmem::Pager* pager() const {
    return pagers_.empty() ? nullptr : pagers_.front().get();
  }
  /// Memory domains behind the front door (0 when vmem is off).
  std::size_t memory_domains() const { return pagers_.size(); }
  const vmem::Pager* pager(std::size_t domain) const {
    return pagers_[domain].get();
  }
  /// The observability hub: metrics registry (fully populated after
  /// stop(), via export_obs) and the span tracer.
  obs::Hub& obs() { return obs_; }
  const obs::Hub& obs() const { return obs_; }

 private:
  struct ClientState {
    /// Private P_vsm<k> segment (empty when the region lives in the
    /// pooled arena).
    ipc::SharedMemory vsm;
    /// The client's channel-plus-data region: the vsm segment's bytes, or
    /// an arena slice. All data-area access goes through this view.
    std::span<std::byte> region;
    /// Arena placement (-1 = private segment).
    std::int64_t arena_offset = -1;
    /// REQ handshake and mqueue-mode responses (client-created; invalid
    /// for arena clients, whose handshake used a control-region mailbox).
    ipc::MessageQueue<RtResponse> resp;
    /// Post-negotiation response path (and, for rings, request source).
    std::unique_ptr<ipc::ServerLane<RtRequest, RtResponse>> lane;
    RtChannel* channel = nullptr;      // ring transport only; head of region
    std::size_t data_offset = 0;       // data area offset inside region
    /// Slot-table coordinates; token() is what verbs carry.
    std::uint32_t slot = 0;
    std::uint32_t generation = 0;
    std::int64_t token() const { return make_session_token(slot, generation); }
    std::vector<std::byte> staging_in;   // staged data plane only
    std::vector<std::byte> staging_out;
    const RtKernelFn* kernel = nullptr;
    int id = -1;         // client id (the span lane)
    int kernel_id = -1;
    /// STR arrival per the tracer clock; closes the kQueueWait span at
    /// grant time (kSpanDisabled while tracing is off).
    SimTime str_begin = obs::kSpanDisabled;
    std::int64_t params[4] = {};
    Bytes bytes_in = 0;
    Bytes bytes_out = 0;
    bool str_pending = false;
    std::shared_ptr<std::atomic<bool>> job_done =
        std::make_shared<std::atomic<bool>>(true);
    /// Set by the job when the kernel threw; STP answers kError.
    std::shared_ptr<std::atomic<bool>> job_failed =
        std::make_shared<std::atomic<bool>>(false);
    /// Lease bookkeeping. `pid` is the client's process id from REQ (0 for
    /// in-process clients: no liveness probe). `last_seen` is the tracer-
    /// clock time of the client's last control message.
    int pid = 0;
    SimTime last_seen = 0;
    /// Lease expired; resources are reclaimed once the in-flight job (if
    /// any) drains — the job still references vsm and the staging buffers.
    bool doomed = false;
    /// RLS handled; state lingers for release_linger so duplicate RLS
    /// retries get their replay instead of "unknown client".
    bool released = false;
    SimTime released_at = 0;
    /// At-least-once RPC: highest request seq seen and the response it
    /// got. A repeat of last_seq replays last_response verbatim (the
    /// request side effects must not run twice); seq 0 opts out.
    std::int64_t last_seq = 0;
    RtResponse last_response{};
    bool has_last_response = false;
    /// Quota charged against total_capacity at admission (returned on
    /// release or reclamation).
    Bytes admitted_bytes = 0;
    /// vmem registrations (0 = unbound): input/output backing — staging
    /// buffers in staged mode, the vsm data areas in zero-copy mode.
    vmem::AllocId alloc_in = 0;
    vmem::AllocId alloc_out = 0;
    /// The vmem memory domain (device) serving this session.
    int device = 0;
    /// Cached graphs, keyed by the client-chosen graph id; they die with
    /// the session (destroy_session), and a replay in flight pins its
    /// graph through the shared_ptr its job captured.
    std::unordered_map<int, std::shared_ptr<const RtGraph>> graphs;
    /// Multi-part kGraphUpload accumulation.
    std::vector<std::byte> graph_upload;
    int graph_upload_id = -1;
    std::int64_t graph_upload_total = 0;
    std::int64_t graph_upload_received = 0;
    /// kLaunchGraph granted but not yet jobbed: the graph id
    /// (make_graph_job consumes it) and the per-iteration bindings.
    int graph_pending = -1;
    std::int64_t graph_params[4] = {};
    /// Deferred completion ack: a kLaunchGraph is acked once, when the
    /// replay finishes (drain_completions) — unless the client already
    /// fell back to STP polling (last_seq moved past graph_launch_seq).
    bool graph_ack_deferred = false;
    std::int64_t graph_launch_seq = 0;
    /// True while the most recent job was a graph replay: STP must not
    /// write back staging bytes the replay never produced.
    bool last_job_graph = false;

    std::span<std::byte> input_area() {
      return region.subspan(data_offset, static_cast<std::size_t>(bytes_in));
    }
    std::span<std::byte> output_area() {
      return region.subspan(data_offset + static_cast<std::size_t>(bytes_in),
                            static_cast<std::size_t>(bytes_out));
    }
    /// The whole data area (input then output) — graph node offsets are
    /// relative to its base.
    std::span<std::byte> data_area() {
      return region.subspan(data_offset,
                            static_cast<std::size_t>(bytes_in + bytes_out));
    }
  };

  /// Deadline-ordered lease work: instead of scanning every client each
  /// sweep, the serve loop pops only entries that are due. Entries are
  /// lazily validated — a recycled (slot, generation) no longer resolves
  /// and is dropped; a deadline pushed back by later activity re-arms at
  /// the recomputed time.
  struct LeaseDeadline {
    enum class Kind { kSilent, kLinger, kDoomed };
    SimTime due = 0;
    std::uint32_t slot = 0;
    std::uint32_t generation = 0;
    Kind kind = Kind::kSilent;
    bool operator>(const LeaseDeadline& other) const {
      return due > other.due;
    }
  };

  void serve_loop();
  /// One non-blocking sweep over the shared queue, then over exactly the
  /// lanes the ready set names (O(ready), not O(attached)). Returns the
  /// number of requests handled; sets *shutdown when the shutdown message
  /// was seen.
  std::size_t drain_requests(bool* shutdown);
  void handle(const RtRequest& request);
  void handle_req(const RtRequest& request);
  /// Graph verbs (docs/graphs.md): chunk accumulation + validate/cache,
  /// and the deferred-ack launch that enqueues a whole-graph round.
  void handle_graph_upload(const RtRequest& request, ClientState& client);
  void handle_launch_graph(const RtRequest& request, ClientState& client);
  /// O(1) session lookup: token-checked slot access when the verb carries
  /// one (stale generations are rejected and counted), id-table fallback
  /// for pre-session clients.
  ClientState* resolve(const RtRequest& request);
  /// Answers a REQ that never reached registration (busy / denied /
  /// backpressured): through the request's claimed mailbox when it names
  /// one, else over the client's P_resp<k> queue.
  void handshake_reply(const RtRequest& request, RtAck ack,
                       std::int64_t arena_offset);
  /// Drains scheduler grants: dispatches every granted client's job batch
  /// to the worker pool and ACKs the STRs.
  void pump();
  /// Builds the worker-pool job for a granted client (marks it busy).
  std::function<void()> make_job(int client_id, ClientState& client);
  /// Graph-grant variant: one job replays the whole cached DAG; the ack
  /// is deferred to completion (no grant-time STR ack).
  std::function<void()> make_graph_job(int client_id, ClientState& client);
  /// Replays a graph over the client's data area: level-ordered (nodes of
  /// one level run concurrently under the engine), elementwise chains
  /// fused through exec::run_fused, per-node kGraphNode spans nested in
  /// one kGraph span.
  void run_graph_job(ClientState& client, const RtGraph& graph,
                     const std::int64_t* bindings);
  /// Job body for sharded mode: chunked stage-in, engine-sharded kernel,
  /// chunked write-back (runs on an engine worker).
  void run_sharded_job(ClientState& client);
  /// Pipelined elementwise path: copy chunk k+1's input slices while
  /// chunk k computes (double-buffered copy/compute overlap).
  void run_streamed(ClientState& client, const RtStream& stream, long cap);
  /// Chunked memcpy on the engine; counts overlap when other jobs are in
  /// flight.
  void copy_chunked(std::byte* dst, const std::byte* src, Bytes total);
  /// Feeds worker-thread job completions back into the scheduler (serve
  /// thread only).
  void drain_completions();
  void respond(ClientState& client, RtAck ack);
  /// Records the response for duplicate replay, applies the
  /// server.respond fault point, and sends without ever blocking the
  /// serve loop (a full dead-client queue counts responses_dropped).
  void send_response(ClientState& client, const RtResponse& response);
  /// Sends without recording a duplicate-replay answer: the kWait a
  /// repeated in-flight kLaunchGraph gets must not shadow the completion
  /// ack a later retry needs to replay.
  void send_unrecorded(ClientState& client, RtAck ack);
  /// The raw fault-pointed send both of the above share.
  void send_now(ClientState& client, const RtResponse& response);
  /// Per-verb control-plane message accounting (rt.ctrl_messages_*).
  void count_ctrl(RtOp op);
  /// Lease sweep (rate-limited by lease_check_interval): pops only the
  /// *due* entries off the deadline heap (silent expiry, linger GC,
  /// doomed reclaim), then rotates a bounded pid-probe/lane-reconcile
  /// window of probe_batch sessions — idle wakeups stop scanning every
  /// client.
  void check_leases();
  /// Pushes a lazily-validated deadline for `client` onto the heap.
  void arm_lease(const ClientState& client, LeaseDeadline::Kind kind,
                 SimTime due);
  /// Declares a client dead: dequeues it from the scheduler (releasing
  /// the barrier wave for survivors), records the kLeaseExpiry span, and
  /// marks it doomed for reclamation.
  void expire_lease(ClientState& client, SimTime now);
  /// The single code path returning a client's bytes to the admission
  /// ledger — RLS, lease expiry, and stale re-attach replacement all land
  /// here — and, with the pager on, reclaiming its pages and ledger
  /// slots. `count_reclaimed` adds the bytes to rt.reclaimed_bytes
  /// (crash-path accounting; a clean RLS does not count).
  void return_quota(ClientState& client, bool count_reclaimed);
  /// Modeled device capacity backing the pager's frames.
  Bytes device_capacity() const;
  /// Admission budget: virtual (device + ledger) in vmem mode, else
  /// total_capacity; "unlimited" when neither is configured.
  Bytes admission_capacity() const;
  /// Tears down one session: ring-lane count, arena slice or orphaned
  /// P_vsm / P_resp names (`unlink_names`: crash path only — a released
  /// client unlinks its own), id-table entry, and the slot itself (its
  /// generation bumps, invalidating outstanding tokens). Quota is the
  /// caller's job (RLS / expiry / replacement each return it already).
  void destroy_session(std::uint32_t slot, bool unlink_names,
                       bool count_reclaimed);
  /// Monotonic nanoseconds since server start — the scheduler's clock.
  SimTime rt_now() const;
  /// Syncs every legacy stats_/exec_counters_/sched counter into the obs
  /// registry (the single source print paths read from). Runs at stop().
  void export_obs();

  RtServerConfig config_;
  const KernelRegistry& registry_;
  ipc::MessageQueue<RtRequest> requests_;
  /// The control region (P_door): doorbell word + ready set + handshake
  /// mailboxes. ctrl_ is a view into this mapping.
  ipc::SharedMemory door_shm_;
  ipc::ControlRegion<RtResponse> ctrl_;
  /// Pooled vsm arena (invalid unless config.arena_size > 0).
  ipc::ShmArena arena_;
  /// The session table and the id index over it. The table is the owner;
  /// id_slots_ exists for REQ-time re-attach and pre-session verbs.
  SlotTable<ClientState> sessions_;
  std::unordered_map<int, std::uint32_t> id_slots_;
  int ring_lanes_ = 0;  // clients negotiated onto the ring transport
  Bytes admitted_total_ = 0;     // quota charged across live clients
  SimTime last_lease_check_ = 0;
  std::priority_queue<LeaseDeadline, std::vector<LeaseDeadline>,
                      std::greater<LeaseDeadline>>
      lease_heap_;
  std::uint32_t probe_cursor_ = 0;  // pid-probe/reconcile rotation
  std::unordered_map<int, int> backpressure_counts_;  // consecutive kWait
  std::vector<RtRequest> ring_batch_;        // drain_requests scratch
  std::vector<std::uint32_t> ready_batch_;   // drained ready slots
  std::vector<int> done_batch_;              // drain_completions scratch
  std::vector<int> grant_ids_;               // pump scratch
  std::vector<std::size_t> grant_cohorts_;
  std::vector<ClientState*> grant_acks_;
  std::unique_ptr<sched::Scheduler> scheduler_;
  std::unique_ptr<sched::AdmissionController> admission_;
  /// One pager per memory domain; empty unless config.vmem.enabled.
  std::vector<std::unique_ptr<vmem::Pager>> pagers_;
  bool paging() const { return !pagers_.empty(); }
  vmem::Pager* pager_of(const ClientState& client) {
    return pagers_[static_cast<std::size_t>(client.device)].get();
  }
  /// Chooses the memory domain for an attaching client (placement over
  /// live per-domain load) and updates the per-device accounting.
  int place_domain(int client_id, Bytes bytes);
  std::unique_ptr<sched::Placement> placement_;  // domain router
  std::vector<long> domain_clients_;      // attached clients per domain
  std::vector<long> domain_placements_;   // REQ-time placements per domain
  std::unordered_map<int, int> warm_domain_;  // client -> last domain
  std::chrono::steady_clock::time_point start_time_;
  std::mutex completions_mutex_;
  std::vector<int> completions_;  // worker -> serve thread job completions
  std::atomic<int> pending_completions_{0};
  std::unique_ptr<ThreadPool> pool_;             // serial mode
  std::unique_ptr<exec::ExecEngine> engine_;     // sharded mode
  std::atomic<int> jobs_in_flight_{0};
  RtExecCounters exec_counters_;
  std::thread serve_thread_;
  std::atomic<bool> running_{false};
  RtServerStats stats_;
  obs::Hub obs_;
};

}  // namespace vgpu::rt
