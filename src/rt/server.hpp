// The live GVM server: a user-space daemon owning the (functional) GPU
// executor, serving VGPU requests from real processes or threads over the
// negotiated IPC transport — the deployable counterpart of the DES Gvm
// used for timing reproduction.
//
// Resource naming, for prefix P and client id k:
//   request queue   P_req          (created by the server; carries REQ,
//                                   mqueue-mode ops and shutdown)
//   doorbell        P_door         (created by the server; ring clients
//                                   and workers wake the serve loop here)
//   response queue  P_resp<k>      (created by the client; REQ handshake
//                                   and mqueue-mode responses)
//   data plane      P_vsm<k>       (created by the client; optional ring
//                                   channel block, then input area, then
//                                   output area — layout fixed at REQ)
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "ipc/mqueue.hpp"
#include "ipc/shm.hpp"
#include "ipc/transport.hpp"
#include "rt/messages.hpp"
#include "rt/registry.hpp"
#include "rt/thread_pool.hpp"
#include "sched/admission.hpp"
#include "sched/scheduler.hpp"

namespace vgpu::rt {

/// How job data crosses the client/server boundary.
enum class DataPlane : std::int32_t {
  /// Paper-faithful: SND copies vsm -> pinned staging, STP copies staging
  /// -> vsm (the Figure 10 "data in/out" overhead, reproduced live).
  kStaged = 0,
  /// Kernels execute directly on spans into the client's vsm region; the
  /// job path moves zero bytes. Relies on the protocol's discipline (the
  /// client only touches the data area between RCV and SND).
  kZeroCopy = 1,
};

const char* data_plane_name(DataPlane plane);
/// Parses the CLI spelling ("staged" | "zero_copy").
bool parse_data_plane(const std::string& text, DataPlane* out);

struct RtServerConfig {
  std::string prefix = "/vgpu";
  /// STR barrier width (SPMD process count). 1 disables batching.
  int expected_clients = 1;
  /// Worker threads executing kernel functions.
  int workers = 4;
  /// Scheduling policy (src/sched) — the same policy objects the DES GVM
  /// uses, so the live and simulated paths cannot drift. For the default
  /// kBarrierCoFlush policy the width is `expected_clients`.
  sched::SchedulerConfig sched;
  /// Per-client cap on bytes_in + bytes_out at REQ; 0 = unlimited.
  /// Over-quota requests are rejected with RtAck::kError.
  Bytes per_client_quota = 0;
  /// Control-plane transport offered to clients. REQ negotiates: the
  /// selected transport is the best both sides speak, falling back to the
  /// paper-faithful message queue.
  ipc::TransportKind transport = ipc::TransportKind::kMessageQueue;
  /// Data plane for kernel execution (see DataPlane).
  DataPlane data_plane = DataPlane::kStaged;
  /// Serve-loop wait strategy (spin -> yield -> doorbell park).
  ipc::WaitConfig wait;
};

struct RtServerStats {
  std::atomic<long> requests{0};
  std::atomic<long> flushes{0};
  std::atomic<long> jobs_run{0};
  std::atomic<long> waits_sent{0};
  /// Requests that arrived via a shm-ring lane (no syscalls).
  std::atomic<long> ring_requests{0};
  /// Data-plane bytes memcpy'd on the job path (staged mode only; the
  /// zero-copy plane keeps this at 0).
  std::atomic<long> bytes_copied{0};
  /// Kernel entries avoided versus the mqueue control plane: 4 per ring
  /// round trip (client mq_send + server mq_timedreceive + server mq_send
  /// + client mq_receive), doorbell futexes not deducted (the spin phase
  /// elides most of them; see spin_wakeups).
  std::atomic<long> syscalls_saved{0};
  /// Serve-loop idle waits satisfied while spinning (no futex park).
  std::atomic<long> spin_wakeups{0};
  /// Serve-loop futex parks.
  std::atomic<long> doorbell_blocks{0};
  /// Histogram of requests handled per serve-loop wakeup; bucket i counts
  /// wakeups that drained a batch of depth in [2^i, 2^(i+1)).
  static constexpr int kBatchBuckets = 8;  // 1,2-3,4-7,...,128+
  std::atomic<long> batch_depth[kBatchBuckets] = {};

  void record_batch(std::size_t depth);
};

class RtServer {
 public:
  RtServer(RtServerConfig config, const KernelRegistry& registry);
  RtServer(const RtServer&) = delete;
  RtServer& operator=(const RtServer&) = delete;
  ~RtServer();

  /// Creates the request queue and doorbell region, then starts the serve
  /// thread.
  Status start();

  /// Posts a shutdown message and joins the serve thread. Idempotent.
  void stop();

  const RtServerStats& stats() const { return stats_; }
  const RtServerConfig& config() const { return config_; }
  /// Scheduler counters; read after stop() (the serve thread owns the
  /// scheduler while running).
  const sched::Scheduler& scheduler() const { return *scheduler_; }
  const sched::AdmissionController& admission() const { return *admission_; }

 private:
  struct ClientState {
    ipc::SharedMemory vsm;
    /// REQ handshake and mqueue-mode responses (client-created).
    ipc::MessageQueue<RtResponse> resp;
    /// Post-negotiation response path (and, for rings, request source).
    std::unique_ptr<ipc::ServerLane<RtRequest, RtResponse>> lane;
    RtChannel* channel = nullptr;      // ring transport only; inside vsm
    std::size_t data_offset = 0;       // data area offset inside vsm
    std::vector<std::byte> staging_in;   // staged data plane only
    std::vector<std::byte> staging_out;
    const RtKernelFn* kernel = nullptr;
    std::int64_t params[4] = {};
    Bytes bytes_in = 0;
    Bytes bytes_out = 0;
    bool str_pending = false;
    std::shared_ptr<std::atomic<bool>> job_done =
        std::make_shared<std::atomic<bool>>(true);

    std::span<std::byte> input_area() {
      return vsm.bytes().subspan(data_offset,
                                 static_cast<std::size_t>(bytes_in));
    }
    std::span<std::byte> output_area() {
      return vsm.bytes().subspan(
          data_offset + static_cast<std::size_t>(bytes_in),
          static_cast<std::size_t>(bytes_out));
    }
  };

  void serve_loop();
  /// One non-blocking sweep over the shared queue and every ring lane.
  /// Returns the number of requests handled; sets *shutdown when the
  /// shutdown message was seen.
  std::size_t drain_requests(bool* shutdown);
  void handle(const RtRequest& request);
  void handle_req(const RtRequest& request);
  /// Drains scheduler grants: dispatches every granted client's job batch
  /// to the worker pool and ACKs the STRs.
  void pump();
  /// Builds the worker-pool job for a granted client (marks it busy).
  std::function<void()> make_job(int client_id, ClientState& client);
  /// Feeds worker-thread job completions back into the scheduler (serve
  /// thread only).
  void drain_completions();
  void respond(ClientState& client, RtAck ack);
  /// True when any ring lane holds an unread request.
  bool ring_request_pending();
  /// Monotonic nanoseconds since server start — the scheduler's clock.
  SimTime rt_now() const;

  RtServerConfig config_;
  const KernelRegistry& registry_;
  ipc::MessageQueue<RtRequest> requests_;
  ipc::SharedMemory door_shm_;  // serve-loop doorbell (P_door)
  std::map<int, ClientState> clients_;
  int ring_lanes_ = 0;  // clients negotiated onto the ring transport
  std::vector<RtRequest> ring_batch_;  // drain_requests scratch
  std::unique_ptr<sched::Scheduler> scheduler_;
  std::unique_ptr<sched::AdmissionController> admission_;
  std::chrono::steady_clock::time_point start_time_;
  std::mutex completions_mutex_;
  std::vector<int> completions_;  // worker -> serve thread job completions
  std::atomic<int> pending_completions_{0};
  std::unique_ptr<ThreadPool> pool_;
  std::thread serve_thread_;
  std::atomic<bool> running_{false};
  RtServerStats stats_;
};

}  // namespace vgpu::rt
