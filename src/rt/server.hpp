// The live GVM server: a user-space daemon owning the (functional) GPU
// executor, serving VGPU requests from real processes or threads over
// POSIX message queues and shared memory — the deployable counterpart of
// the DES Gvm used for timing reproduction.
//
// Resource naming, for prefix P and client id k:
//   request queue   P_req          (created by the server)
//   response queue  P_resp<k>      (created by the client)
//   data plane      P_vsm<k>       (created by the client; input area then
//                                   output area, sizes fixed at REQ)
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/status.hpp"
#include "common/units.hpp"
#include "ipc/mqueue.hpp"
#include "ipc/shm.hpp"
#include "rt/messages.hpp"
#include "rt/registry.hpp"
#include "rt/thread_pool.hpp"

namespace vgpu::rt {

struct RtServerConfig {
  std::string prefix = "/vgpu";
  /// STR barrier width (SPMD process count). 1 disables batching.
  int expected_clients = 1;
  /// Worker threads executing kernel functions.
  int workers = 4;
};

struct RtServerStats {
  std::atomic<long> requests{0};
  std::atomic<long> flushes{0};
  std::atomic<long> jobs_run{0};
  std::atomic<long> waits_sent{0};
};

class RtServer {
 public:
  RtServer(RtServerConfig config, const KernelRegistry& registry);
  RtServer(const RtServer&) = delete;
  RtServer& operator=(const RtServer&) = delete;
  ~RtServer();

  /// Creates the request queue and starts the serve thread.
  Status start();

  /// Posts a shutdown message and joins the serve thread. Idempotent.
  void stop();

  const RtServerStats& stats() const { return stats_; }
  const RtServerConfig& config() const { return config_; }

 private:
  struct ClientState {
    ipc::SharedMemory vsm;
    ipc::MessageQueue<RtResponse> resp;
    std::vector<std::byte> staging_in;   // "pinned" staging buffers
    std::vector<std::byte> staging_out;
    const RtKernelFn* kernel = nullptr;
    std::int64_t params[4] = {};
    Bytes bytes_in = 0;
    Bytes bytes_out = 0;
    bool str_pending = false;
    std::shared_ptr<std::atomic<bool>> job_done =
        std::make_shared<std::atomic<bool>>(true);
  };

  void serve_loop();
  void handle(const RtRequest& request);
  void handle_req(const RtRequest& request);
  void flush_pending();
  void respond(ClientState& client, RtAck ack);

  RtServerConfig config_;
  const KernelRegistry& registry_;
  ipc::MessageQueue<RtRequest> requests_;
  std::map<int, ClientState> clients_;
  int str_count_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  std::thread serve_thread_;
  std::atomic<bool> running_{false};
  RtServerStats stats_;
};

}  // namespace vgpu::rt
