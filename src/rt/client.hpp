// Client-side API layer of the live GVM: exposes the paper's VGPU routines
// (REQ/SND/STR/STP/RCV/RLS) over real POSIX IPC. The client owns its
// response queue and its virtual-shared-memory region; input data is
// written directly into the vsm (no extra client-side copy), as in the
// paper's design.
#pragma once

#include <chrono>
#include <span>
#include <string>

#include "common/status.hpp"
#include "common/units.hpp"
#include "ipc/mqueue.hpp"
#include "ipc/shm.hpp"
#include "rt/messages.hpp"

namespace vgpu::rt {

class RtClient {
 public:
  /// Creates the client's IPC resources and connects to the server at
  /// `prefix`. `bytes_in` / `bytes_out` fix the vsm layout for this task.
  static StatusOr<RtClient> connect(const std::string& prefix, int id,
                                    Bytes bytes_in, Bytes bytes_out);

  RtClient(RtClient&&) = default;
  RtClient& operator=(RtClient&&) = default;

  /// The vsm input area: write task input here before snd().
  std::span<std::byte> input() {
    return vsm_.bytes().subspan(0, static_cast<std::size_t>(bytes_in_));
  }
  /// The vsm output area: valid after rcv().
  std::span<const std::byte> output() const {
    return {vsm_.data() + bytes_in_, static_cast<std::size_t>(bytes_out_)};
  }

  /// REQ: acquire VGPU resources for `kernel_id` with scalar `params`.
  Status req(int kernel_id, const std::int64_t params[4]);
  /// SND: hand the input area to the GVM for staging.
  Status snd();
  /// STR: start execution (barrier-synchronized on the server).
  Status str();
  /// STP loop: polls until the GVM acknowledges completion.
  Status wait_done(
      std::chrono::microseconds poll = std::chrono::microseconds(200));
  /// RCV: results are in the output area afterwards.
  Status rcv();
  /// RLS: release VGPU resources.
  Status rls();

  long waits_observed() const { return waits_; }

 private:
  RtClient(int id, ipc::MessageQueue<RtRequest> req,
           ipc::MessageQueue<RtResponse> resp, ipc::SharedMemory vsm,
           Bytes bytes_in, Bytes bytes_out)
      : id_(id),
        req_(std::move(req)),
        resp_(std::move(resp)),
        vsm_(std::move(vsm)),
        bytes_in_(bytes_in),
        bytes_out_(bytes_out) {}

  StatusOr<RtAck> call(RtRequest request);

  int id_;
  ipc::MessageQueue<RtRequest> req_;
  ipc::MessageQueue<RtResponse> resp_;
  ipc::SharedMemory vsm_;
  Bytes bytes_in_;
  Bytes bytes_out_;
  long waits_ = 0;
};

}  // namespace vgpu::rt
