// Client-side API layer of the live GVM: exposes the paper's VGPU routines
// (REQ/SND/STR/STP/RCV/RLS) over real POSIX IPC. The client owns its
// response queue and its virtual-shared-memory region; input data is
// written directly into the vsm (no extra client-side copy), as in the
// paper's design.
//
// REQ negotiates the control-plane transport: the client advertises what
// it can speak (message queue always; shm ring when it could map the
// server's doorbell), the server answers with its selection, and every
// later verb travels over that transport (see docs/transport.md).
#pragma once

#include <chrono>
#include <memory>
#include <span>
#include <string>

#include "common/status.hpp"
#include "common/units.hpp"
#include "ipc/mqueue.hpp"
#include "ipc/shm.hpp"
#include "ipc/transport.hpp"
#include "obs/trace.hpp"
#include "rt/messages.hpp"

namespace vgpu::fault {
class Injector;
}

namespace vgpu::rt {

struct RtClientOptions {
  /// Preferred control-plane transport; the server may negotiate down to
  /// the message queue. kMessageQueue here skips advertising the ring
  /// capability entirely (paper-faithful wire behaviour).
  ipc::TransportKind transport = ipc::TransportKind::kShmRing;
  /// Wait strategy for ring receives.
  ipc::WaitConfig wait;
  /// Optional span tracer (not owned; must outlive the client). When set,
  /// every verb round trip records a kClientVerb span on this client's
  /// lane (aux = the RtOp) — the client-observed latency next to the
  /// server-side phase spans. In-process harnesses pass the server's own
  /// tracer so both ends share one timebase.
  obs::Tracer* tracer = nullptr;
  /// Deadline for one control-plane round trip. A verb whose response
  /// does not arrive within this window is resent (same seq: the server
  /// replays its recorded answer, so the retry is side-effect free).
  std::chrono::milliseconds op_timeout{2500};
  /// Resends after the first attempt before the verb fails kTimedOut —
  /// the bound that turns a dead server into an error instead of a hang.
  int max_retries = 3;
  /// First retry backoff; doubles per attempt (capped at 100 ms).
  std::chrono::microseconds retry_backoff{500};
  /// Overall bound on wait_done() (STP polling); 0 = unlimited, matching
  /// the paper client's poll-forever loop.
  std::chrono::milliseconds done_timeout{0};
  /// Optional fault injector (not owned). Drives the client-side points:
  /// kill-between-verbs (client.after_*) and the ctrl.send / ctrl.recv
  /// message faults on the negotiated transport. ONLY configure kill
  /// rules in expendable (forked) clients — they SIGKILL the process.
  fault::Injector* fault = nullptr;
};

class RtClient {
 public:
  /// Creates the client's IPC resources and connects to the server at
  /// `prefix`. `bytes_in` / `bytes_out` fix the vsm layout for this task.
  static StatusOr<RtClient> connect(const std::string& prefix, int id,
                                    Bytes bytes_in, Bytes bytes_out,
                                    RtClientOptions options = {});

  RtClient(RtClient&&) = default;
  RtClient& operator=(RtClient&&) = default;

  /// The vsm input area: write task input here before snd().
  std::span<std::byte> input() {
    return vsm_.bytes().subspan(data_offset_,
                                static_cast<std::size_t>(bytes_in_));
  }
  /// The vsm output area: valid after rcv().
  std::span<const std::byte> output() const {
    return {vsm_.data() + data_offset_ + bytes_in_,
            static_cast<std::size_t>(bytes_out_)};
  }

  /// REQ: acquire VGPU resources for `kernel_id` with scalar `params`.
  /// Also performs the transport negotiation.
  Status req(int kernel_id, const std::int64_t params[4]);
  /// SND: hand the input area to the GVM for staging.
  Status snd();
  /// STR: start execution (barrier-synchronized on the server).
  Status str();
  /// STP loop: polls until the GVM acknowledges completion. On the ring
  /// transport the poll is adaptive (immediate re-polls, then exponential
  /// backoff capped at `poll`); on the message queue it sleeps `poll`
  /// between attempts, as the paper's client does.
  Status wait_done(
      std::chrono::microseconds poll = std::chrono::microseconds(200));
  /// RCV: results are in the output area afterwards.
  Status rcv();
  /// RLS: release VGPU resources.
  Status rls();

  long waits_observed() const { return waits_; }
  /// The negotiated control-plane transport (valid after req()).
  ipc::TransportKind transport() const { return active_; }

 private:
  RtClient(int id, std::unique_ptr<ipc::MessageQueue<RtRequest>> req,
           std::unique_ptr<ipc::MessageQueue<RtResponse>> resp,
           ipc::SharedMemory vsm, ipc::SharedMemory door,
           RtChannel* channel, std::uint32_t caps, Bytes bytes_in,
           Bytes bytes_out, RtClientOptions options)
      : id_(id),
        req_(std::move(req)),
        resp_(std::move(resp)),
        vsm_(std::move(vsm)),
        door_(std::move(door)),
        channel_(channel),
        caps_(caps),
        data_offset_(vsm_data_offset(caps)),
        bytes_in_(bytes_in),
        bytes_out_(bytes_out),
        options_(options) {}

  StatusOr<RtAck> call(RtRequest request);

  int id_;
  // Heap-held queues so transport endpoints can keep stable pointers to
  // them across RtClient moves.
  std::unique_ptr<ipc::MessageQueue<RtRequest>> req_;
  std::unique_ptr<ipc::MessageQueue<RtResponse>> resp_;
  ipc::SharedMemory vsm_;
  ipc::SharedMemory door_;    // server doorbell region (ring caps only)
  RtChannel* channel_ = nullptr;  // inside vsm_, when ring caps advertised
  std::unique_ptr<ipc::ClientTransport<RtRequest, RtResponse>> chan_;
  std::uint32_t caps_;
  std::size_t data_offset_;
  ipc::TransportKind active_ = ipc::TransportKind::kMessageQueue;
  Bytes bytes_in_;
  Bytes bytes_out_;
  RtClientOptions options_;
  long waits_ = 0;
  /// Monotone per-client sequence number stamped on every request; the
  /// retry layer resends under the same seq and discards stale responses.
  std::int64_t seq_ = 0;
};

}  // namespace vgpu::rt
