// Client-side API layer of the live GVM: exposes the paper's VGPU routines
// (REQ/SND/STR/STP/RCV/RLS) over real POSIX IPC. The client owns (or is
// granted) a virtual-shared-memory region; input data is written directly
// into it (no extra client-side copy), as in the paper's design.
//
// REQ negotiates the control-plane transport: the client advertises what
// it can speak (message queue always; shm ring when it could map the
// server's doorbell; pooled-arena placement when asked to), the server
// answers with its selection, and every later verb travels over that
// transport (see docs/transport.md and docs/scaling.md).
//
// Thousands of clients in one process share an RtClientContext: the
// server's request queue, the control region (ready set + handshake
// mailboxes) and the pooled arena are one set of process resources, not
// per-client ones — a 10k-client load generator opens three kernel
// objects, not 30k.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "ipc/control.hpp"
#include "ipc/mqueue.hpp"
#include "ipc/shm.hpp"
#include "ipc/transport.hpp"
#include "obs/trace.hpp"
#include "rt/graph.hpp"
#include "rt/messages.hpp"

namespace vgpu::fault {
class Injector;
}

namespace vgpu::rt {

/// Process-wide client-side resources for one server prefix, shared by
/// every RtClient connected through it. Everything here is safe for
/// concurrent use from many client threads: the request queue is a
/// kernel object, the control region's structures are lock-free, and the
/// lazily mapped arena is guarded.
class RtClientContext {
 public:
  static StatusOr<std::shared_ptr<RtClientContext>> open(
      const std::string& prefix);

  const std::string& prefix() const { return prefix_; }
  ipc::MessageQueue<RtRequest>* request_queue() { return &req_; }
  /// Null on pre-control servers (doorbell-only region, or none at all).
  ipc::ControlRegion<RtResponse>* control() {
    return ctrl_.valid() ? &ctrl_ : nullptr;
  }
  /// The serve-loop doorbell word; null when the server published no
  /// doorbell region (mqueue-only servers).
  ipc::Doorbell::Word* server_door() {
    return door_.data() != nullptr
               ? reinterpret_cast<ipc::Doorbell::Word*>(door_.data())
               : nullptr;
  }
  /// Lazily maps the server's pooled vsm arena. Null when the server
  /// created none — the caller falls back to a private segment.
  std::byte* arena_base();

 private:
  explicit RtClientContext(std::string prefix) : prefix_(std::move(prefix)) {}

  std::string prefix_;
  ipc::MessageQueue<RtRequest> req_;
  ipc::SharedMemory door_;
  ipc::ControlRegion<RtResponse> ctrl_;
  std::mutex arena_mu_;
  ipc::SharedMemory arena_;
  bool arena_tried_ = false;
};

/// Retry backoff with decorrelated jitter. A pure-exponential schedule
/// synchronizes every client that timed out together — they all resend on
/// the same beat and collide again. Decorrelated jitter (next sleep drawn
/// uniformly from [base, 3 * previous], capped) spreads the herd while
/// keeping the same bounded growth. The draw comes from a SplitMix64
/// stream seeded by the caller, so a FaultPlan chaos run replays its
/// retry timing bit-exactly.
struct RtBackoff {
  std::chrono::microseconds base{500};
  std::chrono::microseconds cap{100'000};

  void seed(std::uint64_t s) {
    state_ = s;
    prev_ = base;
  }
  /// The next sleep duration (advances the jitter stream).
  std::chrono::microseconds next() {
    // SplitMix64 step: deterministic for a given seed, no shared state.
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    const std::int64_t lo = std::max<std::int64_t>(1, base.count());
    const std::int64_t hi = std::max<std::int64_t>(lo, 3 * prev_.count());
    const std::int64_t span = hi - lo + 1;
    prev_ = std::min(
        cap, std::chrono::microseconds(
                 lo + static_cast<std::int64_t>(z % static_cast<std::uint64_t>(
                                                        span))));
    return prev_;
  }

 private:
  std::uint64_t state_ = 0;
  std::chrono::microseconds prev_{0};
};

struct RtClientOptions {
  /// Preferred control-plane transport; the server may negotiate down to
  /// the message queue. kMessageQueue here skips advertising the ring
  /// capability entirely (paper-faithful wire behaviour).
  ipc::TransportKind transport = ipc::TransportKind::kShmRing;
  /// Ask for a region inside the server's pooled vsm arena instead of
  /// creating a private P_vsm<k> segment and P_resp<k> queue. The REQ ack
  /// travels over a control-region handshake mailbox, so an arena client
  /// costs the kernel *zero* per-client objects — the scaling path when
  /// fs.mqueue.queues_max caps the population. Falls back to the private
  /// path when the server declines (arena_offset == -2) or the context
  /// lacks the control region. Implies the ring transport.
  bool arena = false;
  /// Wait strategy for ring receives.
  ipc::WaitConfig wait;
  /// Optional span tracer (not owned; must outlive the client). When set,
  /// every verb round trip records a kClientVerb span on this client's
  /// lane (aux = the RtOp) — the client-observed latency next to the
  /// server-side phase spans. In-process harnesses pass the server's own
  /// tracer so both ends share one timebase.
  obs::Tracer* tracer = nullptr;
  /// Deadline for one control-plane round trip. A verb whose response
  /// does not arrive within this window is resent (same seq: the server
  /// replays its recorded answer, so the retry is side-effect free).
  std::chrono::milliseconds op_timeout{2500};
  /// Resends after the first attempt before the verb fails kTimedOut —
  /// the bound that turns a dead server into an error instead of a hang.
  int max_retries = 3;
  /// First retry backoff; doubles per attempt (capped at 100 ms).
  std::chrono::microseconds retry_backoff{500};
  /// Overall bound on wait_done() (STP polling); 0 = unlimited, matching
  /// the paper client's poll-forever loop.
  std::chrono::milliseconds done_timeout{0};
  /// Optional fault injector (not owned). Drives the client-side points:
  /// kill-between-verbs (client.after_*) and the ctrl.send / ctrl.recv
  /// message faults on the negotiated transport. ONLY configure kill
  /// rules in expendable (forked) clients — they SIGKILL the process.
  fault::Injector* fault = nullptr;
  /// Scheduling hint stamped on the REQ (read by the priority-aging
  /// policy; higher runs first). The trace replay engine maps each
  /// tenant's priority attribute here.
  int priority = 0;
};

class RtClient {
 public:
  /// Creates the client's IPC resources and connects to the server at
  /// `prefix`. `bytes_in` / `bytes_out` fix the vsm layout for this task.
  /// Opens a fresh single-client context; multi-client harnesses use the
  /// context overload so the per-process resources are opened once.
  static StatusOr<RtClient> connect(const std::string& prefix, int id,
                                    Bytes bytes_in, Bytes bytes_out,
                                    RtClientOptions options = {});
  /// Connects through a shared context (thread-safe; one context serves
  /// any number of concurrent clients).
  static StatusOr<RtClient> connect(std::shared_ptr<RtClientContext> context,
                                    int id, Bytes bytes_in, Bytes bytes_out,
                                    RtClientOptions options = {});

  RtClient(RtClient&&) = default;
  RtClient& operator=(RtClient&&) = default;

  /// The vsm input area: write task input here before snd(). For arena
  /// clients the region exists only after req() granted placement.
  std::span<std::byte> input() {
    return region_.subspan(data_offset_, static_cast<std::size_t>(bytes_in_));
  }
  /// The vsm output area: valid after rcv().
  std::span<const std::byte> output() const {
    return region_.subspan(data_offset_ + static_cast<std::size_t>(bytes_in_),
                           static_cast<std::size_t>(bytes_out_));
  }

  /// REQ: acquire VGPU resources for `kernel_id` with scalar `params`.
  /// Also performs the transport negotiation (and, when asked, the
  /// arena-placement handshake).
  Status req(int kernel_id, const std::int64_t params[4]);
  /// SND: hand the input area to the GVM for staging.
  Status snd();
  /// STR: start execution (barrier-synchronized on the server).
  Status str();
  /// STP loop: polls until the GVM acknowledges completion. On the ring
  /// transport the poll is adaptive (immediate re-polls, then exponential
  /// backoff capped at `poll`); on the message queue it sleeps `poll`
  /// between attempts, as the paper's client does.
  Status wait_done(
      std::chrono::microseconds poll = std::chrono::microseconds(200));
  /// RCV: results are in the output area afterwards.
  Status rcv();
  /// RLS: release VGPU resources.
  Status rls();

  // --- Graph capture / replay (docs/graphs.md) ---------------------------
  //
  // Between begin_capture() and end_capture() the data-plane verbs record
  // instead of executing: str() appends a kernel node replaying the last
  // REQ's kernel over the whole input/output areas, and snd(), rcv() and
  // wait_done() become no-ops (a replay runs zero-copy on the vsm region,
  // so there is nothing to stage per iteration). Explicit capture_kernel /
  // capture_copy record finer-grained DAGs than the verb mirror can. The
  // captured graph uploads once through kGraphUpload chunks; afterwards
  // launch_graph() fires the whole recorded sequence with a single verb.

  /// Starts recording. Fails when a capture is already open.
  Status begin_capture();
  /// Records a kernel node. Offsets are data-area-relative (input at 0,
  /// output at bytes_in). `deps` lists earlier node indices; `bindings`
  /// (optional, 4 slots) maps params to kLaunchGraph argument slots.
  /// Returns the node's index.
  StatusOr<int> capture_kernel(int kernel_id, const std::int64_t params[4],
                               std::int64_t in_offset, std::int64_t in_bytes,
                               std::int64_t out_offset, std::int64_t out_bytes,
                               std::span<const int> deps = {},
                               const std::int32_t* bindings = nullptr);
  /// Records a copy node (memmove dst <- src inside the data area).
  StatusOr<int> capture_copy(std::int64_t src_offset, std::int64_t dst_offset,
                             std::int64_t bytes, std::span<const int> deps = {});
  /// Ends recording and returns the graph hash (equal recorded sequences
  /// hash equal — the capture-determinism contract). The nodes stay
  /// buffered for upload_graph().
  StatusOr<std::uint64_t> end_capture();
  /// The recorded nodes of the last finished capture.
  std::span<const RtGraphNode> captured() const { return captured_; }

  /// Uploads the last finished capture under `graph_id`, chunking the
  /// serialized bytes through the vsm input area (multi-part when the
  /// graph outgrows it). The input area's prior contents are clobbered.
  Status upload_graph(int graph_id);
  /// Uploads an explicit node list under `graph_id`.
  Status upload_graph(int graph_id, std::span<const RtGraphNode> nodes);
  /// Fires one replay of `graph_id`. `bindings` (optional) supplies the
  /// 4 per-iteration scalars bound nodes substitute. One message per
  /// iteration on the fast path: the server acks once, at completion.
  /// When the ack outruns the op window (long replays) the client falls
  /// back to STP polling — same at-least-once contract as every verb.
  Status launch_graph(int graph_id, const std::int64_t* bindings = nullptr);

  long waits_observed() const { return waits_; }
  /// The negotiated control-plane transport (valid after req()).
  ipc::TransportKind transport() const { return active_; }
  /// The session token the REQ ack assigned (0 before req(), or against a
  /// pre-session server).
  std::int64_t session() const { return session_; }
  /// True when the region lives inside the server's pooled arena.
  bool in_arena() const { return arena_offset_ >= 0; }

 private:
  RtClient(std::shared_ptr<RtClientContext> context, int id, Bytes bytes_in,
           Bytes bytes_out, RtClientOptions options)
      : ctx_(std::move(context)),
        id_(id),
        bytes_in_(bytes_in),
        bytes_out_(bytes_out),
        options_(options) {}

  StatusOr<RtAck> call(RtRequest request);
  /// Creates the private P_vsm<k> segment (+ channel block when `caps`
  /// advertises the ring) and P_resp<k> queue — the classic per-client
  /// resources, also the fallback when the arena declines.
  Status open_private(std::uint32_t caps);
  /// One REQ send/await round over the mailbox or the response queue.
  /// Fills `*out` and returns Ok, or kUnavailable to mean "resend".
  Status await_handshake(const RtRequest& request, std::int32_t mailbox,
                         RtResponse* out);
  /// Installs the post-handshake transport and region from the REQ grant.
  Status adopt_grant(const RtResponse& granted, std::uint32_t caps);

  std::shared_ptr<RtClientContext> ctx_;
  int id_;
  // Heap-held so the mqueue transport endpoint keeps a stable pointer
  // across RtClient moves. Null for arena clients (mailbox handshake).
  std::unique_ptr<ipc::MessageQueue<RtResponse>> resp_;
  ipc::SharedMemory vsm_;         // private segment (non-arena path)
  std::span<std::byte> region_;   // the vsm view: private segment or arena slice
  RtChannel* channel_ = nullptr;  // at the head of region_, ring caps only
  std::unique_ptr<ipc::ClientTransport<RtRequest, RtResponse>> chan_;
  std::uint32_t caps_ = ipc::kTransportCapMqueue;
  std::size_t data_offset_ = 0;
  ipc::TransportKind active_ = ipc::TransportKind::kMessageQueue;
  std::int64_t session_ = 0;      // REQ ack token, stamped on every verb
  std::int64_t arena_offset_ = -1;
  Bytes bytes_in_;
  Bytes bytes_out_;
  RtClientOptions options_;
  long waits_ = 0;
  /// Monotone per-client sequence number stamped on every request; the
  /// retry layer resends under the same seq and discards stale responses.
  std::int64_t seq_ = 0;
  /// Jitter stream seed: the FaultPlan seed when an injector is attached
  /// (chaos runs replay their retry timing), a fixed constant otherwise;
  /// mixed with the client id so co-located clients never share a stream.
  std::uint64_t backoff_seed_ = 0;
  bool capturing_ = false;
  std::vector<RtGraphNode> capture_;   // open recording
  std::vector<RtGraphNode> captured_;  // last finished recording
  int last_kernel_id_ = -1;            // from req(): what str() mirrors
  std::int64_t last_params_[4] = {};
};

}  // namespace vgpu::rt
