// Minimal fixed-size thread pool used by the live GVM server to execute
// kernel functions concurrently (the real-machine analogue of Fermi's
// concurrent kernel execution).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "common/status.hpp"

namespace vgpu::rt {

class ThreadPool {
 public:
  /// Called when a job escapes with an exception (jobs should catch their
  /// own; this is the backstop that keeps a throw from std::terminate-ing
  /// the server). Runs on the worker thread.
  using ErrorHandler = std::function<void(const char* what)>;

  explicit ThreadPool(int threads, ErrorHandler on_error = nullptr)
      : on_error_(std::move(on_error)) {
    VGPU_ASSERT(threads >= 1);
    for (int i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() { shutdown(); }

  /// Stops accepting jobs and joins the workers once the queue drains.
  /// Idempotent; submits racing with (or after) shutdown get
  /// kFailedPrecondition instead of an assertion failure.
  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

  [[nodiscard]] Status submit(std::function<void()> job) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        return FailedPrecondition("thread pool is shut down");
      }
      jobs_.push_back(std::move(job));
    }
    cv_.notify_one();
    return Status::Ok();
  }

  /// Enqueues a whole batch under one lock acquisition and one broadcast —
  /// the server's pump() uses this so a barrier cohort's worth of kernel
  /// jobs costs one wakeup, not one per client.
  [[nodiscard]] Status submit_batch(std::vector<std::function<void()>> jobs) {
    if (jobs.empty()) return Status::Ok();
    const bool single = jobs.size() == 1;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        return FailedPrecondition("thread pool is shut down");
      }
      for (auto& job : jobs) jobs_.push_back(std::move(job));
    }
    if (single) {
      cv_.notify_one();
    } else {
      cv_.notify_all();
    }
    return Status::Ok();
  }

  std::size_t workers() const { return workers_.size(); }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
        if (jobs_.empty()) {
          if (stopping_) return;
          continue;
        }
        job = std::move(jobs_.front());
        jobs_.pop_front();
      }
      try {
        job();
      } catch (const std::exception& e) {
        if (on_error_ != nullptr) {
          on_error_(e.what());
        } else {
          VGPU_ERROR("thread pool job threw: " << e.what());
        }
      } catch (...) {
        if (on_error_ != nullptr) {
          on_error_("unknown exception");
        } else {
          VGPU_ERROR("thread pool job threw a non-std exception");
        }
      }
    }
  }

  ErrorHandler on_error_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> jobs_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace vgpu::rt
