// Minimal fixed-size thread pool used by the live GVM server to execute
// kernel functions concurrently (the real-machine analogue of Fermi's
// concurrent kernel execution).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.hpp"

namespace vgpu::rt {

class ThreadPool {
 public:
  explicit ThreadPool(int threads) {
    VGPU_ASSERT(threads >= 1);
    for (int i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  void submit(std::function<void()> job) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      VGPU_ASSERT_MSG(!stopping_, "submit after shutdown");
      jobs_.push_back(std::move(job));
    }
    cv_.notify_one();
  }

  /// Enqueues a whole batch under one lock acquisition and one broadcast —
  /// the server's pump() uses this so a barrier cohort's worth of kernel
  /// jobs costs one wakeup, not one per client.
  void submit_batch(std::vector<std::function<void()>> jobs) {
    if (jobs.empty()) return;
    const bool single = jobs.size() == 1;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      VGPU_ASSERT_MSG(!stopping_, "submit after shutdown");
      for (auto& job : jobs) jobs_.push_back(std::move(job));
    }
    if (single) {
      cv_.notify_one();
    } else {
      cv_.notify_all();
    }
  }

  std::size_t workers() const { return workers_.size(); }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
        if (jobs_.empty()) {
          if (stopping_) return;
          continue;
        }
        job = std::move(jobs_.front());
        jobs_.pop_front();
      }
      job();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> jobs_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace vgpu::rt
