// O(1) slot-indexed session table with generation-counted recycling: the
// serve loop's replacement for a std::map of clients. attach() hands out
// the lowest recycled slot (LIFO free list — churny populations stay
// dense), detach() bumps the slot's generation so any verb still carrying
// the old token resolves to null instead of the slot's new tenant.
// Entries are heap-held so their addresses stay stable across attaches
// (in-flight jobs capture ClientState pointers).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace vgpu::rt {

template <typename T>
class SlotTable {
 public:
  struct Ref {
    std::uint32_t slot = 0;
    std::uint32_t generation = 0;
    T* value = nullptr;
  };

  explicit SlotTable(std::uint32_t capacity) : slots_(capacity) {}

  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(slots_.size());
  }
  std::size_t active() const { return active_; }
  /// One past the highest slot ever handed out; bounds full sweeps to the
  /// populated prefix of the table.
  std::uint32_t high_water() const { return high_water_; }

  /// Claims a slot for `value`; nullopt when the table is full (the
  /// caller backpressures the attach).
  std::optional<Ref> attach(std::unique_ptr<T> value) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else if (high_water_ < capacity()) {
      slot = high_water_++;
      slots_[slot].generation = 1;  // tokens must never pack to 0
    } else {
      return std::nullopt;
    }
    Entry& entry = slots_[slot];
    entry.value = std::move(value);
    ++active_;
    return Ref{slot, entry.generation, entry.value.get()};
  }

  /// Token-checked lookup: null when the slot is empty or `generation`
  /// predates the current tenant (a recycled lane).
  T* get(std::uint32_t slot, std::uint32_t generation) {
    if (slot >= high_water_) return nullptr;
    Entry& entry = slots_[slot];
    if (entry.generation != generation) return nullptr;
    return entry.value.get();
  }

  /// Unchecked-by-generation access (server-internal iteration helpers).
  T* at(std::uint32_t slot) {
    return slot < high_water_ ? slots_[slot].value.get() : nullptr;
  }
  std::uint32_t generation(std::uint32_t slot) const {
    return slot < high_water_ ? slots_[slot].generation : 0;
  }

  /// Empties the slot, bumps its generation (invalidating outstanding
  /// tokens) and recycles it. Returns the evicted value (null if empty).
  std::unique_ptr<T> detach(std::uint32_t slot) {
    if (slot >= high_water_) return nullptr;
    Entry& entry = slots_[slot];
    if (entry.value == nullptr) return nullptr;
    std::unique_ptr<T> out = std::move(entry.value);
    ++entry.generation;
    free_.push_back(slot);
    --active_;
    return out;
  }

  /// Visits every occupied slot: fn(slot, T&). Safe against detach of the
  /// visited slot inside fn; do not attach from fn.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::uint32_t slot = 0; slot < high_water_; ++slot) {
      if (slots_[slot].value != nullptr) fn(slot, *slots_[slot].value);
    }
  }

 private:
  struct Entry {
    std::uint32_t generation = 0;
    std::unique_ptr<T> value;
  };

  std::vector<Entry> slots_;
  std::vector<std::uint32_t> free_;
  std::uint32_t high_water_ = 0;
  std::size_t active_ = 0;
};

}  // namespace vgpu::rt
