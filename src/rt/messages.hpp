// Wire format of the live GVM protocol: fixed-size POD records carried by
// POSIX message queues (paper Figure 8's REQ/SND/STR/STP/RCV/RLS).
#pragma once

#include <cstdint>

namespace vgpu::rt {

enum class RtOp : std::int32_t {
  kReq = 1,
  kSnd,
  kStr,
  kStp,
  kRcv,
  kRls,
  kShutdown,  // server-internal: posted by stop()
};

enum class RtAck : std::int32_t {
  kAck = 1,
  kWait,
  kError,
};

struct RtRequest {
  RtOp op = RtOp::kReq;
  std::int32_t client = -1;
  std::int32_t kernel_id = -1;      // REQ only
  std::int32_t priority = 0;        // REQ only (priority-aging scheduler)
  std::int64_t bytes_in = 0;        // REQ only
  std::int64_t bytes_out = 0;       // REQ only
  std::int64_t params[4] = {};      // forwarded to the kernel function
};

struct RtResponse {
  RtAck ack = RtAck::kAck;
};

}  // namespace vgpu::rt
