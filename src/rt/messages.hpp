// Wire format of the live GVM protocol: fixed-size POD records carried by
// the negotiated control-plane transport (paper Figure 8's
// REQ/SND/STR/STP/RCV/RLS over POSIX message queues, or the same records
// over per-client shared-memory rings — see ipc/transport.hpp and
// docs/transport.md).
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "ipc/transport.hpp"

namespace vgpu::rt {

enum class RtOp : std::int32_t {
  kReq = 1,
  kSnd,
  kStr,
  kStp,
  kRcv,
  kRls,
  kShutdown,  // server-internal: posted by stop()
  /// Graph verbs (docs/graphs.md). kGraphUpload carries one chunk of a
  /// serialized RtGraph through the client's vsm input area:
  ///   kernel_id = graph id, params[0] = total bytes, params[1] = chunk
  ///   offset, params[2] = chunk bytes. The server acks each chunk and
  ///   validates + caches the graph when the last chunk lands.
  kGraphUpload,
  /// Fires one replay of a cached graph: kernel_id = graph id, params =
  /// the per-iteration scalar bindings substituted into nodes that
  /// declared a binding slot. The server acks once, when the whole graph
  /// completes (kWait answers a duplicate while the replay is running).
  kLaunchGraph,
};

enum class RtAck : std::int32_t {
  kAck = 1,
  kWait,
  kError,
};

struct RtRequest {
  RtOp op = RtOp::kReq;
  std::int32_t client = -1;
  std::int32_t kernel_id = -1;  // REQ only
  std::int32_t priority = 0;    // REQ only (priority-aging scheduler)
  /// REQ only: transports the client can speak (ipc::kTransportCap*).
  /// Zero (a pre-negotiation client) means mqueue-only.
  std::uint32_t transport_caps = ipc::kTransportCapMqueue;
  /// REQ only: the client's OS process id — the lease layer's liveness
  /// probe target. 0 (a pre-lease client) disables the pid probe; the
  /// deadline expiry still applies.
  std::int32_t pid = 0;
  /// Per-client monotone sequence number, stamped on every verb. Makes the
  /// control plane safe under at-least-once delivery: the server replays
  /// its recorded response for a repeated seq instead of re-executing the
  /// verb, and the client discards responses for superseded seqs. 0 (a
  /// pre-seq client) opts out of duplicate detection.
  std::int64_t seq = 0;
  /// Session token from the REQ ack (slot | generation), stamped on every
  /// post-REQ verb: the server resolves it in O(1) against its slot table
  /// and rejects tokens whose generation was recycled. 0 (a pre-session
  /// client) falls back to the id lookup.
  std::int64_t session = 0;
  /// REQ only: handshake mailbox index the client claimed in the control
  /// region (-1 = none; the ack travels over P_resp<k> instead).
  std::int32_t mailbox = -1;
  std::int64_t bytes_in = 0;        // REQ only
  std::int64_t bytes_out = 0;       // REQ only
  std::int64_t params[4] = {};      // forwarded to the kernel function
};

struct RtResponse {
  RtAck ack = RtAck::kAck;
  /// REQ ack only: the transport the server selected for this client's
  /// post-REQ traffic (a static_cast of ipc::TransportKind).
  std::int32_t transport =
      static_cast<std::int32_t>(ipc::TransportKind::kMessageQueue);
  /// Echo of the request seq this response answers (0 from pre-seq
  /// servers); the client's retry loop matches on it.
  std::int64_t seq = 0;
  /// REQ ack only: the session token to stamp on every later verb (0 from
  /// pre-session servers).
  std::int64_t session = 0;
  /// REQ ack only: byte offset of this client's region inside the pooled
  /// vsm arena, when the client advertised kTransportCapVsmArena and the
  /// server granted it; -1 = no arena (create a private segment).
  std::int64_t arena_offset = -1;
};

/// The control-plane channel embedded at the head of the vsm region when
/// the client advertises the shm-ring capability.
using RtChannel = ipc::ShmChannelBlock<RtRequest, RtResponse>;

/// Session tokens pack (slot, generation) into one int64. Generations
/// start at 1, so a valid token is never 0 (the "no token" sentinel).
constexpr std::int64_t make_session_token(std::uint32_t slot,
                                          std::uint32_t generation) {
  return (static_cast<std::int64_t>(generation) << 32) |
         static_cast<std::int64_t>(slot);
}
constexpr std::uint32_t session_slot(std::int64_t token) {
  return static_cast<std::uint32_t>(token & 0xffffffff);
}
constexpr std::uint32_t session_generation(std::int64_t token) {
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(token) >> 32);
}

/// Byte offset of the data area (input then output) inside P_vsm<k>. The
/// layout depends only on the *advertised* capabilities — not on the
/// negotiated result — so both sides can compute it from the REQ message.
constexpr std::size_t vsm_data_offset(std::uint32_t transport_caps) {
  return (transport_caps & ipc::kTransportCapShmRing) != 0
             ? sizeof(RtChannel)
             : 0;
}

/// Total size of P_vsm<k> for a given capability set and data-plane
/// footprint (an all-empty data plane is clamped to one byte).
constexpr Bytes vsm_region_size(std::uint32_t transport_caps, Bytes bytes_in,
                                Bytes bytes_out) {
  const Bytes data = bytes_in + bytes_out > 0 ? bytes_in + bytes_out : 1;
  return static_cast<Bytes>(vsm_data_offset(transport_caps)) + data;
}

}  // namespace vgpu::rt
