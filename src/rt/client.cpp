#include "rt/client.hpp"

#include <algorithm>
#include <new>
#include <thread>
#include <utility>

#include "common/log.hpp"

namespace vgpu::rt {

StatusOr<RtClient> RtClient::connect(const std::string& prefix, int id,
                                     Bytes bytes_in, Bytes bytes_out,
                                     RtClientOptions options) {
  // Tag this thread's log lines so interleaved multi-client output stays
  // attributable ("[W][client 3] ...").
  set_log_scope("client " + std::to_string(id));
  const std::string suffix = std::to_string(id);
  auto req = ipc::MessageQueue<RtRequest>::open(prefix + "_req");
  if (!req.ok()) return req.status();
  auto resp =
      ipc::MessageQueue<RtResponse>::create(prefix + "_resp" + suffix);
  if (!resp.ok()) return resp.status();

  // Advertise the ring capability only when the server's doorbell region
  // is reachable; otherwise degrade to mqueue-only (e.g. a pre-transport
  // server that never published one).
  std::uint32_t caps = ipc::kTransportCapMqueue;
  ipc::SharedMemory door;
  if (options.transport == ipc::TransportKind::kShmRing) {
    auto opened =
        ipc::SharedMemory::open(prefix + "_door", ipc::kDoorbellRegionSize);
    if (opened.ok()) {
      door = std::move(*opened);
      caps |= ipc::kTransportCapShmRing;
    }
  }

  auto vsm = ipc::SharedMemory::create(
      prefix + "_vsm" + suffix, vsm_region_size(caps, bytes_in, bytes_out));
  if (!vsm.ok()) return vsm.status();
  RtChannel* channel = nullptr;
  if ((caps & ipc::kTransportCapShmRing) != 0) {
    // Construct and publish the channel block before the server can see
    // the REQ that names this region.
    channel = new (vsm->data()) RtChannel();
    channel->publish();
  }

  return RtClient(
      id,
      std::make_unique<ipc::MessageQueue<RtRequest>>(std::move(*req)),
      std::make_unique<ipc::MessageQueue<RtResponse>>(std::move(*resp)),
      std::move(*vsm), std::move(door), channel, caps, bytes_in, bytes_out,
      options);
}

StatusOr<RtAck> RtClient::call(RtRequest request) {
  request.client = id_;
  if (chan_ == nullptr) {
    return FailedPrecondition("protocol op before REQ negotiated a transport");
  }
  obs::Tracer* tracer = options_.tracer;
  const SimTime t0 =
      tracer != nullptr ? tracer->begin_span() : obs::kSpanDisabled;
  VGPU_RETURN_IF_ERROR(chan_->send(request));
  auto response = chan_->receive(std::chrono::milliseconds(10'000));
  if (tracer != nullptr) {
    tracer->end_span(t0, obs::Phase::kClientVerb, id_,
                     static_cast<std::int32_t>(request.op));
  }
  if (!response.ok()) return response.status();
  if (response->ack == RtAck::kError) {
    return Internal("GVM rejected the request");
  }
  return response->ack;
}

Status RtClient::req(int kernel_id, const std::int64_t params[4]) {
  RtRequest request;
  request.op = RtOp::kReq;
  request.client = id_;
  request.kernel_id = kernel_id;
  request.transport_caps = caps_;
  request.bytes_in = bytes_in_;
  request.bytes_out = bytes_out_;
  for (int i = 0; i < 4; ++i) request.params[i] = params[i];
  // The handshake always travels over the message queues; only afterwards
  // does traffic switch to whatever the server selected.
  VGPU_RETURN_IF_ERROR(req_->send(request));
  auto response = resp_->receive(std::chrono::milliseconds(10'000));
  if (!response.ok()) return response.status();
  if (response->ack == RtAck::kError) {
    return Internal("GVM rejected the request");
  }
  const auto selected = static_cast<ipc::TransportKind>(response->transport);
  if (selected == ipc::TransportKind::kShmRing &&
      (caps_ & ipc::kTransportCapShmRing) != 0 && channel_ != nullptr) {
    active_ = ipc::TransportKind::kShmRing;
    chan_ = std::make_unique<ipc::RingClientTransport<RtRequest, RtResponse>>(
        channel_, door_.as<ipc::Doorbell::Word>(), options_.wait);
  } else {
    active_ = ipc::TransportKind::kMessageQueue;
    chan_ = std::make_unique<ipc::MqClientTransport<RtRequest, RtResponse>>(
        req_.get(), resp_.get());
  }
  return Status::Ok();
}

Status RtClient::snd() {
  auto ack = call(RtRequest{RtOp::kSnd});
  if (!ack.ok()) return ack.status();
  return Status::Ok();
}

Status RtClient::str() {
  auto ack = call(RtRequest{RtOp::kStr});
  if (!ack.ok()) return ack.status();
  return Status::Ok();
}

Status RtClient::wait_done(std::chrono::microseconds poll) {
  // On the ring transport an STP round trip costs no syscalls, so the
  // first re-polls are immediate (they catch microsecond-scale jobs), then
  // back off exponentially to `poll`. The mqueue path keeps the paper
  // client's fixed sleep so its timing behaviour is unchanged.
  int fast_polls = 0;
  std::chrono::microseconds delay{0};
  for (;;) {
    auto ack = call(RtRequest{RtOp::kStp});
    if (!ack.ok()) return ack.status();
    if (*ack == RtAck::kAck) return Status::Ok();
    ++waits_;
    if (active_ != ipc::TransportKind::kShmRing) {
      std::this_thread::sleep_for(poll);
      continue;
    }
    if (fast_polls < 64) {
      ++fast_polls;
      std::this_thread::yield();
      continue;
    }
    delay = delay.count() == 0 ? std::chrono::microseconds(1)
                               : std::min(poll, delay * 2);
    std::this_thread::sleep_for(delay);
  }
}

Status RtClient::rcv() {
  auto ack = call(RtRequest{RtOp::kRcv});
  if (!ack.ok()) return ack.status();
  return Status::Ok();
}

Status RtClient::rls() {
  auto ack = call(RtRequest{RtOp::kRls});
  if (!ack.ok()) return ack.status();
  return Status::Ok();
}

}  // namespace vgpu::rt
