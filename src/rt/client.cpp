#include "rt/client.hpp"

#include <unistd.h>

#include <algorithm>
#include <new>
#include <thread>
#include <utility>

#include "common/log.hpp"
#include "fault/fault.hpp"
#include "fault/transport_fault.hpp"

namespace vgpu::rt {

namespace {

constexpr std::chrono::microseconds kBackoffCap{100'000};

/// Sleeps the current backoff and doubles it (bounded exponential).
void back_off(std::chrono::microseconds* backoff) {
  if (backoff->count() > 0) std::this_thread::sleep_for(*backoff);
  *backoff = std::min(kBackoffCap,
                      *backoff * 2 + std::chrono::microseconds(1));
}

}  // namespace

StatusOr<RtClient> RtClient::connect(const std::string& prefix, int id,
                                     Bytes bytes_in, Bytes bytes_out,
                                     RtClientOptions options) {
  // Tag this thread's log lines so interleaved multi-client output stays
  // attributable ("[W][client 3] ...").
  set_log_scope("client " + std::to_string(id));
  const std::string suffix = std::to_string(id);
  auto req = ipc::MessageQueue<RtRequest>::open(prefix + "_req");
  if (!req.ok()) return req.status();
  auto resp =
      ipc::MessageQueue<RtResponse>::create(prefix + "_resp" + suffix);
  if (!resp.ok()) return resp.status();

  // Advertise the ring capability only when the server's doorbell region
  // is reachable; otherwise degrade to mqueue-only (e.g. a pre-transport
  // server that never published one).
  std::uint32_t caps = ipc::kTransportCapMqueue;
  ipc::SharedMemory door;
  if (options.transport == ipc::TransportKind::kShmRing) {
    auto opened =
        ipc::SharedMemory::open(prefix + "_door", ipc::kDoorbellRegionSize);
    if (opened.ok()) {
      door = std::move(*opened);
      caps |= ipc::kTransportCapShmRing;
    }
  }

  auto vsm = ipc::SharedMemory::create(
      prefix + "_vsm" + suffix, vsm_region_size(caps, bytes_in, bytes_out));
  if (!vsm.ok()) return vsm.status();
  RtChannel* channel = nullptr;
  if ((caps & ipc::kTransportCapShmRing) != 0) {
    // Construct and publish the channel block before the server can see
    // the REQ that names this region.
    channel = new (vsm->data()) RtChannel();
    channel->publish();
  }

  return RtClient(
      id,
      std::make_unique<ipc::MessageQueue<RtRequest>>(std::move(*req)),
      std::make_unique<ipc::MessageQueue<RtResponse>>(std::move(*resp)),
      std::move(*vsm), std::move(door), channel, caps, bytes_in, bytes_out,
      options);
}

StatusOr<RtAck> RtClient::call(RtRequest request) {
  request.client = id_;
  request.seq = ++seq_;
  if (chan_ == nullptr) {
    return FailedPrecondition("protocol op before REQ negotiated a transport");
  }
  obs::Tracer* tracer = options_.tracer;
  const SimTime t0 =
      tracer != nullptr ? tracer->begin_span() : obs::kSpanDisabled;
  const auto finish = [&] {
    if (tracer != nullptr) {
      tracer->end_span(t0, obs::Phase::kClientVerb, id_,
                       static_cast<std::int32_t>(request.op));
    }
  };
  // Bounded at-least-once RPC: resend under the same seq on timeout (the
  // server replays its recorded answer, so a retry never re-runs the
  // verb), discard stale responses from earlier attempts, and surface
  // kTimedOut once the retry budget is spent — a dead server becomes an
  // error, not a hang.
  std::chrono::microseconds backoff = options_.retry_backoff;
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) back_off(&backoff);
    const Status sent = chan_->send(request);
    if (!sent.ok()) {
      if (sent.code() != ErrorCode::kUnavailable) {
        finish();
        return sent;
      }
      continue;  // full ring/queue: back off and resend
    }
    for (;;) {
      auto response = chan_->receive(options_.op_timeout);
      if (!response.ok()) {
        if (response.status().code() != ErrorCode::kUnavailable) {
          finish();
          return response.status();
        }
        break;  // round-trip deadline expired: resend
      }
      if (response->seq != 0 && response->seq < request.seq) {
        continue;  // stale answer to a superseded attempt
      }
      finish();
      if (response->ack == RtAck::kError) {
        return Internal("GVM rejected the request");
      }
      return response->ack;
    }
  }
  finish();
  return TimedOut("GVM did not answer op " +
                  std::to_string(static_cast<int>(request.op)) + " after " +
                  std::to_string(options_.max_retries + 1) + " attempts");
}

Status RtClient::req(int kernel_id, const std::int64_t params[4]) {
  RtRequest request;
  request.op = RtOp::kReq;
  request.client = id_;
  request.kernel_id = kernel_id;
  request.transport_caps = caps_;
  request.pid = static_cast<std::int32_t>(::getpid());
  request.seq = ++seq_;
  request.bytes_in = bytes_in_;
  request.bytes_out = bytes_out_;
  for (int i = 0; i < 4; ++i) request.params[i] = params[i];
  // The handshake always travels over the message queues; only afterwards
  // does traffic switch to whatever the server selected. REQ is an
  // idempotent re-attach (the server retires a stale registration for the
  // same id), so timeouts and kWait backpressure both resend it whole.
  std::chrono::microseconds backoff = options_.retry_backoff;
  bool backpressured = false;
  RtResponse granted;
  bool have_grant = false;
  for (int attempt = 0; attempt <= options_.max_retries && !have_grant;
       ++attempt) {
    if (attempt > 0) back_off(&backoff);
    const Status sent = req_->send(request);
    if (!sent.ok()) {
      if (sent.code() != ErrorCode::kUnavailable) return sent;
      continue;
    }
    for (;;) {
      auto response = resp_->receive(options_.op_timeout);
      if (!response.ok()) {
        if (response.status().code() != ErrorCode::kUnavailable) {
          return response.status();
        }
        break;  // handshake deadline expired: re-attach
      }
      if (response->seq != 0 && response->seq < request.seq) continue;
      if (response->ack == RtAck::kWait) {
        // Admission backpressure: back off, then re-attach.
        backpressured = true;
        break;
      }
      if (response->ack == RtAck::kError) {
        return Internal("GVM rejected the request");
      }
      granted = *response;
      have_grant = true;
      break;
    }
  }
  if (!have_grant) {
    if (backpressured) {
      return Unavailable("GVM admission backpressure persisted across " +
                         std::to_string(options_.max_retries + 1) +
                         " attempts");
    }
    return TimedOut("GVM did not answer REQ after " +
                    std::to_string(options_.max_retries + 1) + " attempts");
  }
  const auto selected = static_cast<ipc::TransportKind>(granted.transport);
  if (selected == ipc::TransportKind::kShmRing &&
      (caps_ & ipc::kTransportCapShmRing) != 0 && channel_ != nullptr) {
    active_ = ipc::TransportKind::kShmRing;
    chan_ = std::make_unique<ipc::RingClientTransport<RtRequest, RtResponse>>(
        channel_, door_.as<ipc::Doorbell::Word>(), options_.wait);
  } else {
    active_ = ipc::TransportKind::kMessageQueue;
    chan_ = std::make_unique<ipc::MqClientTransport<RtRequest, RtResponse>>(
        req_.get(), resp_.get());
  }
  if (options_.fault != nullptr) {
    chan_ =
        std::make_unique<fault::FaultyClientTransport<RtRequest, RtResponse>>(
            std::move(chan_), options_.fault);
    options_.fault->maybe_kill(fault::Point::kClientAfterReq);
  }
  return Status::Ok();
}

Status RtClient::snd() {
  auto ack = call(RtRequest{RtOp::kSnd});
  if (!ack.ok()) return ack.status();
  if (options_.fault != nullptr) {
    options_.fault->maybe_kill(fault::Point::kClientAfterSnd);
  }
  return Status::Ok();
}

Status RtClient::str() {
  auto ack = call(RtRequest{RtOp::kStr});
  if (!ack.ok()) return ack.status();
  if (options_.fault != nullptr) {
    options_.fault->maybe_kill(fault::Point::kClientAfterStr);
  }
  return Status::Ok();
}

Status RtClient::wait_done(std::chrono::microseconds poll) {
  // On the ring transport an STP round trip costs no syscalls, so the
  // first re-polls are immediate (they catch microsecond-scale jobs), then
  // back off exponentially to `poll`. The mqueue path keeps the paper
  // client's fixed sleep so its timing behaviour is unchanged.
  const bool bounded = options_.done_timeout.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() + options_.done_timeout;
  int fast_polls = 0;
  std::chrono::microseconds delay{0};
  for (;;) {
    auto ack = call(RtRequest{RtOp::kStp});
    if (!ack.ok()) return ack.status();
    if (*ack == RtAck::kAck) {
      if (options_.fault != nullptr) {
        options_.fault->maybe_kill(fault::Point::kClientAfterStp);
      }
      return Status::Ok();
    }
    ++waits_;
    if (bounded && std::chrono::steady_clock::now() >= deadline) {
      return TimedOut("job did not complete within done_timeout");
    }
    if (active_ != ipc::TransportKind::kShmRing) {
      std::this_thread::sleep_for(poll);
      continue;
    }
    if (fast_polls < 64) {
      ++fast_polls;
      std::this_thread::yield();
      continue;
    }
    delay = delay.count() == 0 ? std::chrono::microseconds(1)
                               : std::min(poll, delay * 2);
    std::this_thread::sleep_for(delay);
  }
}

Status RtClient::rcv() {
  auto ack = call(RtRequest{RtOp::kRcv});
  if (!ack.ok()) return ack.status();
  if (options_.fault != nullptr) {
    options_.fault->maybe_kill(fault::Point::kClientAfterRcv);
  }
  return Status::Ok();
}

Status RtClient::rls() {
  auto ack = call(RtRequest{RtOp::kRls});
  if (!ack.ok()) return ack.status();
  return Status::Ok();
}

}  // namespace vgpu::rt
