#include "rt/client.hpp"

#include <thread>

namespace vgpu::rt {

StatusOr<RtClient> RtClient::connect(const std::string& prefix, int id,
                                     Bytes bytes_in, Bytes bytes_out) {
  const std::string suffix = std::to_string(id);
  auto req = ipc::MessageQueue<RtRequest>::open(prefix + "_req");
  if (!req.ok()) return req.status();
  auto resp =
      ipc::MessageQueue<RtResponse>::create(prefix + "_resp" + suffix);
  if (!resp.ok()) return resp.status();
  auto vsm = ipc::SharedMemory::create(prefix + "_vsm" + suffix,
                                       std::max<Bytes>(bytes_in + bytes_out, 1));
  if (!vsm.ok()) return vsm.status();
  return RtClient(id, std::move(*req), std::move(*resp), std::move(*vsm),
                  bytes_in, bytes_out);
}

StatusOr<RtAck> RtClient::call(RtRequest request) {
  request.client = id_;
  VGPU_RETURN_IF_ERROR(req_.send(request));
  auto response = resp_.receive(std::chrono::milliseconds(10'000));
  if (!response.ok()) return response.status();
  if (response->ack == RtAck::kError) {
    return Internal("GVM rejected the request");
  }
  return response->ack;
}

Status RtClient::req(int kernel_id, const std::int64_t params[4]) {
  RtRequest request;
  request.op = RtOp::kReq;
  request.kernel_id = kernel_id;
  request.bytes_in = bytes_in_;
  request.bytes_out = bytes_out_;
  for (int i = 0; i < 4; ++i) request.params[i] = params[i];
  auto ack = call(request);
  if (!ack.ok()) return ack.status();
  return Status::Ok();
}

Status RtClient::snd() {
  auto ack = call(RtRequest{RtOp::kSnd});
  if (!ack.ok()) return ack.status();
  return Status::Ok();
}

Status RtClient::str() {
  auto ack = call(RtRequest{RtOp::kStr});
  if (!ack.ok()) return ack.status();
  return Status::Ok();
}

Status RtClient::wait_done(std::chrono::microseconds poll) {
  for (;;) {
    auto ack = call(RtRequest{RtOp::kStp});
    if (!ack.ok()) return ack.status();
    if (*ack == RtAck::kAck) return Status::Ok();
    ++waits_;
    std::this_thread::sleep_for(poll);
  }
}

Status RtClient::rcv() {
  auto ack = call(RtRequest{RtOp::kRcv});
  if (!ack.ok()) return ack.status();
  return Status::Ok();
}

Status RtClient::rls() {
  auto ack = call(RtRequest{RtOp::kRls});
  if (!ack.ok()) return ack.status();
  return Status::Ok();
}

}  // namespace vgpu::rt
