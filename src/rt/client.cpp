#include "rt/client.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <new>
#include <thread>
#include <utility>

#include "common/log.hpp"
#include "fault/fault.hpp"
#include "fault/transport_fault.hpp"

namespace vgpu::rt {

namespace {

/// Default jitter seed for clients without a fault injector: any fixed
/// constant works, determinism is what matters.
constexpr std::uint64_t kDefaultBackoffSeed = 0x6b8b4567327b23c6ull;

}  // namespace

// ---------------------------------------------------------------------------
// RtClientContext
// ---------------------------------------------------------------------------

StatusOr<std::shared_ptr<RtClientContext>> RtClientContext::open(
    const std::string& prefix) {
  auto ctx = std::shared_ptr<RtClientContext>(new RtClientContext(prefix));
  auto req = ipc::MessageQueue<RtRequest>::open(prefix + "_req");
  if (!req.ok()) return req.status();
  ctx->req_ = std::move(*req);

  // The doorbell region is optional (mqueue-only servers publish none) and
  // its *layout* is a negotiation: a control-region server carries the
  // ready set and handshake mailboxes behind the futex word, a pre-control
  // server only the word itself. attach() validates the magic, so a bare
  // doorbell degrades gracefully to doorbell-only operation.
  auto door = ipc::SharedMemory::open_existing(prefix + "_door");
  if (door.ok() && door->size() >= ipc::kDoorbellRegionSize) {
    ctx->door_ = std::move(*door);
    auto ctrl = ipc::ControlRegion<RtResponse>::attach(ctx->door_.data(),
                                                       ctx->door_.size());
    if (ctrl.ok()) ctx->ctrl_ = *ctrl;
  }
  return ctx;
}

std::byte* RtClientContext::arena_base() {
  std::lock_guard<std::mutex> lock(arena_mu_);
  if (!arena_tried_) {
    arena_tried_ = true;
    auto arena = ipc::SharedMemory::open_existing(prefix_ + "_arena");
    if (arena.ok()) arena_ = std::move(*arena);
  }
  return arena_.valid() ? arena_.data() : nullptr;
}

// ---------------------------------------------------------------------------
// RtClient
// ---------------------------------------------------------------------------

StatusOr<RtClient> RtClient::connect(const std::string& prefix, int id,
                                     Bytes bytes_in, Bytes bytes_out,
                                     RtClientOptions options) {
  auto ctx = RtClientContext::open(prefix);
  if (!ctx.ok()) return ctx.status();
  return connect(std::move(*ctx), id, bytes_in, bytes_out, options);
}

StatusOr<RtClient> RtClient::connect(std::shared_ptr<RtClientContext> context,
                                     int id, Bytes bytes_in, Bytes bytes_out,
                                     RtClientOptions options) {
  // Tag this thread's log lines so interleaved multi-client output stays
  // attributable ("[W][client 3] ...").
  set_log_scope("client " + std::to_string(id));
  RtClient client(std::move(context), id, bytes_in, bytes_out, options);
  // Chaos runs replay their retry timing from the FaultPlan seed; the id
  // mix keeps co-located clients off a shared jitter stream.
  client.backoff_seed_ =
      (options.fault != nullptr ? options.fault->plan().seed()
                                : kDefaultBackoffSeed) ^
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id)) *
       0x9e3779b97f4a7c15ull);

  const bool ring_reachable =
      options.transport == ipc::TransportKind::kShmRing &&
      client.ctx_->server_door() != nullptr;
  std::uint32_t caps = ipc::kTransportCapMqueue;
  if (ring_reachable) caps |= ipc::kTransportCapShmRing;
  // The arena path needs all three legs: the ring (its only post-REQ
  // transport), the control region (its handshake channel) and the arena
  // segment itself. Probe them up front so a doomed request never burns a
  // handshake round trip.
  if (options.arena && ring_reachable && client.ctx_->control() != nullptr &&
      client.ctx_->arena_base() != nullptr) {
    caps |= ipc::kTransportCapVsmArena;
  }
  client.caps_ = caps;

  if ((caps & ipc::kTransportCapVsmArena) == 0) {
    // Classic per-client resources, created before REQ so input() is
    // usable immediately; arena clients get their region from the grant.
    const Status opened = client.open_private(caps);
    if (!opened.ok()) return opened;
  }
  return client;
}

Status RtClient::open_private(std::uint32_t caps) {
  const std::string suffix = std::to_string(id_);
  auto resp = ipc::MessageQueue<RtResponse>::create(ctx_->prefix() + "_resp" +
                                                    suffix);
  if (!resp.ok()) return resp.status();
  resp_ = std::make_unique<ipc::MessageQueue<RtResponse>>(std::move(*resp));

  auto vsm =
      ipc::SharedMemory::create(ctx_->prefix() + "_vsm" + suffix,
                                vsm_region_size(caps, bytes_in_, bytes_out_));
  if (!vsm.ok()) return vsm.status();
  vsm_ = std::move(*vsm);
  region_ = vsm_.bytes();
  data_offset_ = vsm_data_offset(caps);
  caps_ = caps;
  channel_ = nullptr;
  if ((caps & ipc::kTransportCapShmRing) != 0) {
    // Construct and publish the channel block before the server can see
    // the REQ that names this region.
    channel_ = new (vsm_.data()) RtChannel();
    channel_->publish();
  }
  return Status::Ok();
}

StatusOr<RtAck> RtClient::call(RtRequest request) {
  request.client = id_;
  request.seq = ++seq_;
  request.session = session_;
  if (chan_ == nullptr) {
    return FailedPrecondition("protocol op before REQ negotiated a transport");
  }
  obs::Tracer* tracer = options_.tracer;
  const SimTime t0 =
      tracer != nullptr ? tracer->begin_span() : obs::kSpanDisabled;
  const auto finish = [&] {
    if (tracer != nullptr) {
      tracer->end_span(t0, obs::Phase::kClientVerb, id_,
                       static_cast<std::int32_t>(request.op));
    }
  };
  // Bounded at-least-once RPC: resend under the same seq on timeout (the
  // server replays its recorded answer, so a retry never re-runs the
  // verb), discard stale responses from earlier attempts, and surface
  // kTimedOut once the retry budget is spent — a dead server becomes an
  // error, not a hang.
  RtBackoff backoff;
  backoff.base = options_.retry_backoff;
  backoff.seed(backoff_seed_ ^ static_cast<std::uint64_t>(request.seq));
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) std::this_thread::sleep_for(backoff.next());
    const Status sent = chan_->send(request);
    if (!sent.ok()) {
      if (sent.code() != ErrorCode::kUnavailable) {
        finish();
        return sent;
      }
      continue;  // full ring/queue: back off and resend
    }
    for (;;) {
      auto response = chan_->receive(options_.op_timeout);
      if (!response.ok()) {
        if (response.status().code() != ErrorCode::kUnavailable) {
          finish();
          return response.status();
        }
        break;  // round-trip deadline expired: resend
      }
      if (response->seq != 0 && response->seq < request.seq) {
        continue;  // stale answer to a superseded attempt
      }
      finish();
      if (response->ack == RtAck::kError) {
        return Internal("GVM rejected the request");
      }
      return response->ack;
    }
  }
  finish();
  return TimedOut("GVM did not answer op " +
                  std::to_string(static_cast<int>(request.op)) + " after " +
                  std::to_string(options_.max_retries + 1) + " attempts");
}

Status RtClient::await_handshake(const RtRequest& request,
                                 std::int32_t mailbox, RtResponse* out) {
  if (mailbox >= 0) {
    // Mailbox collect: a lock-free poll against the control region, with
    // a sleep that starts fine-grained (sub-millisecond handshakes) and
    // backs off — no kernel object, no syscall on the hit path.
    ipc::ControlRegion<RtResponse>* ctrl = ctx_->control();
    const auto deadline =
        std::chrono::steady_clock::now() + options_.op_timeout;
    std::chrono::microseconds nap{1};
    for (;;) {
      if (ctrl->try_collect(mailbox, id_, out)) {
        if (out->seq != 0 && out->seq < request.seq) continue;  // stale
        return Status::Ok();
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        return Unavailable("handshake mailbox collect timed out");
      }
      std::this_thread::sleep_for(nap);
      nap = std::min(nap * 2, std::chrono::microseconds(500));
    }
  }
  for (;;) {
    auto response = resp_->receive(options_.op_timeout);
    if (!response.ok()) return response.status();
    if (response->seq != 0 && response->seq < request.seq) continue;
    *out = *response;
    return Status::Ok();
  }
}

Status RtClient::adopt_grant(const RtResponse& granted, std::uint32_t caps) {
  session_ = granted.session;
  if (granted.arena_offset >= 0) {
    // Pooled placement: the region is a server-carved slice of the arena,
    // with the server-constructed channel block at its head.
    std::byte* base = ctx_->arena_base();
    if (base == nullptr) {
      return Internal("arena grant but the arena segment is unmapped");
    }
    arena_offset_ = granted.arena_offset;
    region_ = {base + granted.arena_offset,
               static_cast<std::size_t>(
                   vsm_region_size(caps, bytes_in_, bytes_out_))};
    data_offset_ = vsm_data_offset(caps);
    channel_ = reinterpret_cast<RtChannel*>(region_.data());
    if (!channel_->valid()) {
      return Internal("arena grant carries an unpublished channel block");
    }
  }
  const auto selected = static_cast<ipc::TransportKind>(granted.transport);
  if (selected == ipc::TransportKind::kShmRing &&
      (caps & ipc::kTransportCapShmRing) != 0 && channel_ != nullptr) {
    active_ = ipc::TransportKind::kShmRing;
    // Session-aware servers hand out a token whose slot keys the ready
    // set; publish it on every send so the serve loop's drain touches
    // only lanes with work. Pre-session servers (token 0) get the plain
    // ring endpoint — doorbell-only wakeups, as before.
    if (ctx_->control() != nullptr && session_ != 0) {
      chan_ = std::make_unique<
          ipc::SessionRingTransport<RtRequest, RtResponse>>(
          channel_, ctx_->control(), session_slot(session_),
          ctx_->server_door(), options_.wait);
    } else {
      chan_ =
          std::make_unique<ipc::RingClientTransport<RtRequest, RtResponse>>(
              channel_, ctx_->server_door(), options_.wait);
    }
  } else {
    if (resp_ == nullptr) {
      // An arena client has no response queue; a server that grants the
      // arena but not the ring has broken the protocol's invariant.
      return Internal("mqueue transport selected without a response queue");
    }
    active_ = ipc::TransportKind::kMessageQueue;
    chan_ = std::make_unique<ipc::MqClientTransport<RtRequest, RtResponse>>(
        ctx_->request_queue(), resp_.get());
  }
  if (options_.fault != nullptr) {
    chan_ =
        std::make_unique<fault::FaultyClientTransport<RtRequest, RtResponse>>(
            std::move(chan_), options_.fault);
  }
  return Status::Ok();
}

Status RtClient::req(int kernel_id, const std::int64_t params[4]) {
  RtRequest request;
  request.op = RtOp::kReq;
  request.client = id_;
  request.kernel_id = kernel_id;
  request.priority = options_.priority;
  request.transport_caps = caps_;
  request.pid = static_cast<std::int32_t>(::getpid());
  request.seq = ++seq_;
  request.bytes_in = bytes_in_;
  request.bytes_out = bytes_out_;
  for (int i = 0; i < 4; ++i) request.params[i] = params[i];
  // Remember the launch shape so a later capture scope can mirror str().
  last_kernel_id_ = kernel_id;
  for (int i = 0; i < 4; ++i) last_params_[i] = params[i];

  // Arena clients answer over a claimed handshake mailbox; everyone else
  // over their private response queue. The pool is smaller than the
  // population it serves (an attach storm claims every box at once), but
  // boxes recycle within one handshake round trip — so a failed claim
  // retries against the pool for the op window before giving up on the
  // arena. The private-path fallback is a last resort: it needs a kernel
  // queue, the very resource whose cap the arena path exists to dodge.
  std::int32_t mailbox = -1;
  if ((caps_ & ipc::kTransportCapVsmArena) != 0) {
    const auto claim_deadline =
        std::chrono::steady_clock::now() + options_.op_timeout;
    std::chrono::microseconds nap{50};
    for (;;) {
      mailbox = ctx_->control()->claim_mailbox(id_);
      if (mailbox >= 0 || std::chrono::steady_clock::now() >= claim_deadline) {
        break;
      }
      std::this_thread::sleep_for(nap);
      nap = std::min(nap * 2, std::chrono::microseconds(2000));
    }
    if (mailbox < 0) {
      caps_ &= ~ipc::kTransportCapVsmArena;
      const Status opened = open_private(caps_);
      if (!opened.ok()) return opened;
      request.transport_caps = caps_;
    }
  }
  request.mailbox = mailbox;
  const auto release_mailbox = [&] {
    if (mailbox >= 0) {
      ctx_->control()->release_mailbox(mailbox, id_);
      mailbox = -1;
      request.mailbox = -1;
    }
  };

  // The handshake always travels over the pre-session path; only
  // afterwards does traffic switch to whatever the server selected. REQ
  // is an idempotent re-attach (the server retires a stale registration
  // for the same id), so timeouts and kWait backpressure both resend it
  // whole.
  RtBackoff backoff;
  backoff.base = options_.retry_backoff;
  backoff.seed(backoff_seed_ ^ static_cast<std::uint64_t>(request.seq));
  bool backpressured = false;
  RtResponse granted;
  bool have_grant = false;
  for (int attempt = 0; attempt <= options_.max_retries && !have_grant;
       ++attempt) {
    if (attempt > 0) std::this_thread::sleep_for(backoff.next());
    const Status sent = ctx_->request_queue()->send(request);
    if (!sent.ok()) {
      if (sent.code() != ErrorCode::kUnavailable) {
        release_mailbox();
        return sent;
      }
      continue;
    }
    RtResponse response;
    const Status got = await_handshake(request, mailbox, &response);
    if (!got.ok()) {
      if (got.code() != ErrorCode::kUnavailable) {
        release_mailbox();
        return got;
      }
      continue;  // handshake deadline expired: re-attach
    }
    if (response.ack == RtAck::kWait) {
      if (response.arena_offset == -2 &&
          (caps_ & ipc::kTransportCapVsmArena) != 0) {
        // Permanent arena decline: this server cannot host the region.
        // Fall back to a private segment and re-REQ without the bit —
        // no backoff, the decline is a protocol answer, not pressure.
        release_mailbox();
        caps_ &= ~ipc::kTransportCapVsmArena;
        const Status opened = open_private(caps_);
        if (!opened.ok()) return opened;
        request.transport_caps = caps_;
        continue;
      }
      // Admission backpressure (or a transiently full arena): back off,
      // then re-attach.
      backpressured = true;
      continue;
    }
    if (response.ack == RtAck::kError) {
      release_mailbox();
      return Internal("GVM rejected the request");
    }
    granted = response;
    have_grant = true;
  }
  release_mailbox();
  if (!have_grant) {
    if (backpressured) {
      return Unavailable("GVM admission backpressure persisted across " +
                         std::to_string(options_.max_retries + 1) +
                         " attempts");
    }
    return TimedOut("GVM did not answer REQ after " +
                    std::to_string(options_.max_retries + 1) + " attempts");
  }
  const Status adopted = adopt_grant(granted, caps_);
  if (!adopted.ok()) return adopted;
  if (options_.fault != nullptr) {
    options_.fault->maybe_kill(fault::Point::kClientAfterReq);
  }
  return Status::Ok();
}

Status RtClient::snd() {
  if (capturing_) return Status::Ok();  // replays run zero-copy on the vsm
  auto ack = call(RtRequest{RtOp::kSnd});
  if (!ack.ok()) return ack.status();
  if (options_.fault != nullptr) {
    options_.fault->maybe_kill(fault::Point::kClientAfterSnd);
  }
  return Status::Ok();
}

Status RtClient::str() {
  if (capturing_) {
    // Mirror the verb: record "run the REQ kernel over the whole input
    // area into the whole output area", chained after the previous node
    // (the verb sequence is serial, so is its recording).
    if (last_kernel_id_ < 0) {
      return FailedPrecondition("capture str() before any req()");
    }
    const int prev = static_cast<int>(capture_.size()) - 1;
    const std::span<const int> deps =
        prev >= 0 ? std::span<const int>(&prev, 1) : std::span<const int>();
    return capture_kernel(last_kernel_id_, last_params_, 0, bytes_in_,
                          bytes_in_, bytes_out_, deps)
        .status();
  }
  auto ack = call(RtRequest{RtOp::kStr});
  if (!ack.ok()) return ack.status();
  if (options_.fault != nullptr) {
    options_.fault->maybe_kill(fault::Point::kClientAfterStr);
  }
  return Status::Ok();
}

Status RtClient::wait_done(std::chrono::microseconds poll) {
  if (capturing_) return Status::Ok();
  // On the ring transport an STP round trip costs no syscalls, so the
  // first re-polls are immediate (they catch microsecond-scale jobs), then
  // back off exponentially to `poll`. The mqueue path keeps the paper
  // client's fixed sleep so its timing behaviour is unchanged.
  const bool bounded = options_.done_timeout.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() + options_.done_timeout;
  int fast_polls = 0;
  std::chrono::microseconds delay{0};
  for (;;) {
    auto ack = call(RtRequest{RtOp::kStp});
    if (!ack.ok()) return ack.status();
    if (*ack == RtAck::kAck) {
      if (options_.fault != nullptr) {
        options_.fault->maybe_kill(fault::Point::kClientAfterStp);
      }
      return Status::Ok();
    }
    ++waits_;
    if (bounded && std::chrono::steady_clock::now() >= deadline) {
      return TimedOut("job did not complete within done_timeout");
    }
    if (active_ != ipc::TransportKind::kShmRing) {
      std::this_thread::sleep_for(poll);
      continue;
    }
    if (fast_polls < 64) {
      ++fast_polls;
      std::this_thread::yield();
      continue;
    }
    delay = delay.count() == 0 ? std::chrono::microseconds(1)
                               : std::min(poll, delay * 2);
    std::this_thread::sleep_for(delay);
  }
}

Status RtClient::rcv() {
  if (capturing_) return Status::Ok();
  auto ack = call(RtRequest{RtOp::kRcv});
  if (!ack.ok()) return ack.status();
  if (options_.fault != nullptr) {
    options_.fault->maybe_kill(fault::Point::kClientAfterRcv);
  }
  return Status::Ok();
}

Status RtClient::rls() {
  auto ack = call(RtRequest{RtOp::kRls});
  if (!ack.ok()) return ack.status();
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Graph capture / replay
// ---------------------------------------------------------------------------

Status RtClient::begin_capture() {
  if (capturing_) return FailedPrecondition("capture already open");
  capture_.clear();
  capturing_ = true;
  return Status::Ok();
}

StatusOr<int> RtClient::capture_kernel(int kernel_id,
                                       const std::int64_t params[4],
                                       std::int64_t in_offset,
                                       std::int64_t in_bytes,
                                       std::int64_t out_offset,
                                       std::int64_t out_bytes,
                                       std::span<const int> deps,
                                       const std::int32_t* bindings) {
  if (!capturing_) return FailedPrecondition("no capture open");
  if (capture_.size() >= static_cast<std::size_t>(kGraphMaxNodes)) {
    return InvalidArgument("capture exceeds the graph node limit");
  }
  if (deps.size() > static_cast<std::size_t>(kGraphMaxDeps)) {
    return InvalidArgument("too many dependencies for one node");
  }
  RtGraphNode node;
  node.kind = static_cast<std::int32_t>(GraphNodeKind::kKernel);
  node.kernel_id = kernel_id;
  for (int i = 0; i < 4; ++i) node.params[i] = params[i];
  if (bindings != nullptr) {
    for (int i = 0; i < 4; ++i) node.bindings[i] = bindings[i];
  }
  node.src_offset = in_offset;
  node.src_bytes = in_bytes;
  node.dst_offset = out_offset;
  node.dst_bytes = out_bytes;
  node.dep_count = static_cast<std::int32_t>(deps.size());
  for (std::size_t d = 0; d < deps.size(); ++d) {
    if (deps[d] < 0 || deps[d] >= static_cast<int>(capture_.size())) {
      return InvalidArgument("dependency on a node not yet captured");
    }
    node.deps[d] = deps[d];
  }
  capture_.push_back(node);
  return static_cast<int>(capture_.size()) - 1;
}

StatusOr<int> RtClient::capture_copy(std::int64_t src_offset,
                                     std::int64_t dst_offset,
                                     std::int64_t bytes,
                                     std::span<const int> deps) {
  if (!capturing_) return FailedPrecondition("no capture open");
  if (capture_.size() >= static_cast<std::size_t>(kGraphMaxNodes)) {
    return InvalidArgument("capture exceeds the graph node limit");
  }
  if (deps.size() > static_cast<std::size_t>(kGraphMaxDeps)) {
    return InvalidArgument("too many dependencies for one node");
  }
  RtGraphNode node;
  node.kind = static_cast<std::int32_t>(GraphNodeKind::kCopy);
  node.src_offset = src_offset;
  node.src_bytes = bytes;
  node.dst_offset = dst_offset;
  node.dst_bytes = bytes;
  node.dep_count = static_cast<std::int32_t>(deps.size());
  for (std::size_t d = 0; d < deps.size(); ++d) {
    if (deps[d] < 0 || deps[d] >= static_cast<int>(capture_.size())) {
      return InvalidArgument("dependency on a node not yet captured");
    }
    node.deps[d] = deps[d];
  }
  capture_.push_back(node);
  return static_cast<int>(capture_.size()) - 1;
}

StatusOr<std::uint64_t> RtClient::end_capture() {
  if (!capturing_) return FailedPrecondition("no capture open");
  capturing_ = false;
  if (capture_.empty()) return InvalidArgument("capture recorded no nodes");
  captured_ = std::move(capture_);
  capture_.clear();
  return graph_hash(captured_);
}

Status RtClient::upload_graph(int graph_id) {
  if (capturing_) return FailedPrecondition("end_capture before upload");
  if (captured_.empty()) return FailedPrecondition("no finished capture");
  return upload_graph(graph_id, captured_);
}

Status RtClient::upload_graph(int graph_id,
                              std::span<const RtGraphNode> nodes) {
  if (nodes.empty()) return InvalidArgument("cannot upload an empty graph");
  if (bytes_in_ <= 0) {
    return FailedPrecondition("graph upload chunks through the input area");
  }
  const std::vector<std::byte> wire = serialize_graph(nodes);
  const auto total = static_cast<std::int64_t>(wire.size());
  std::span<std::byte> in = input();
  std::int64_t offset = 0;
  while (offset < total) {
    const std::int64_t chunk = std::min<std::int64_t>(total - offset, bytes_in_);
    std::memcpy(in.data(), wire.data() + offset,
                static_cast<std::size_t>(chunk));
    RtRequest request{RtOp::kGraphUpload};
    request.kernel_id = graph_id;
    request.params[0] = total;
    request.params[1] = offset;
    request.params[2] = chunk;
    auto ack = call(request);
    if (!ack.ok()) return ack.status();
    if (*ack != RtAck::kAck) {
      return Internal("GVM declined a graph upload chunk");
    }
    offset += chunk;
  }
  return Status::Ok();
}

Status RtClient::launch_graph(int graph_id, const std::int64_t* bindings) {
  RtRequest request{RtOp::kLaunchGraph};
  request.kernel_id = graph_id;
  if (bindings != nullptr) {
    for (int i = 0; i < 4; ++i) request.params[i] = bindings[i];
  }
  auto ack = call(request);
  if (!ack.ok()) {
    // The completion ack outran the retry budget (a long replay): fall
    // back to the classic STP poll, which owns the answer from here on.
    if (ack.status().code() == ErrorCode::kTimedOut) return wait_done();
    return ack.status();
  }
  if (*ack == RtAck::kWait) {
    // A retry raced the in-flight replay; poll it to completion.
    ++waits_;
    return wait_done();
  }
  return Status::Ok();
}

}  // namespace vgpu::rt
