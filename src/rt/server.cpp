#include "rt/server.hpp"

#include <cstring>
#include <limits>

#include "common/log.hpp"

namespace vgpu::rt {

namespace {

/// Like the DES GVM: for the default barrier policy the width comes from
/// the legacy `expected_clients` knob, so the two paths configure the
/// shared policy objects identically.
sched::SchedulerConfig effective_sched_config(const RtServerConfig& config) {
  sched::SchedulerConfig sc = config.sched;
  if (sc.policy == sched::Policy::kBarrierCoFlush) {
    sc.barrier_width = config.expected_clients;
  }
  return sc;
}

sched::AdmissionConfig admission_config(const RtServerConfig& config) {
  sched::AdmissionConfig ac;
  // The live executor runs in host memory; only the per-client quota is
  // enforced here (no device capacity to model).
  ac.capacity = std::numeric_limits<Bytes>::max();
  ac.per_client_quota = config.per_client_quota;
  return ac;
}

}  // namespace

RtServer::RtServer(RtServerConfig config, const KernelRegistry& registry)
    : config_(std::move(config)),
      registry_(registry),
      scheduler_(sched::Scheduler::make(effective_sched_config(config_))),
      admission_(
          std::make_unique<sched::AdmissionController>(admission_config(config_))) {
  VGPU_ASSERT(config_.expected_clients >= 1);
}

SimTime RtServer::rt_now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start_time_)
      .count();
}

RtServer::~RtServer() { stop(); }

Status RtServer::start() {
  auto queue = ipc::MessageQueue<RtRequest>::create(config_.prefix + "_req",
                                                    /*max_messages=*/8);
  if (!queue.ok()) return queue.status();
  requests_ = std::move(*queue);
  pool_ = std::make_unique<ThreadPool>(config_.workers);
  start_time_ = std::chrono::steady_clock::now();
  running_.store(true);
  serve_thread_ = std::thread([this] { serve_loop(); });
  return Status::Ok();
}

void RtServer::stop() {
  if (!running_.exchange(false)) return;
  RtRequest shutdown;
  shutdown.op = RtOp::kShutdown;
  (void)requests_.send(shutdown);
  if (serve_thread_.joinable()) serve_thread_.join();
  pool_.reset();  // drains in-flight jobs
  clients_.clear();
}

void RtServer::serve_loop() {
  // A short receive timeout keeps the loop ticking: worker-thread job
  // completions are fed back into the scheduler here (it is serve-thread
  // only), and time-based policies (quantum expiry, anti-thrash
  // hysteresis) are polled at this granularity.
  for (;;) {
    auto request = requests_.receive(std::chrono::milliseconds(1));
    if (!request.ok()) {
      if (request.status().code() != ErrorCode::kUnavailable) {
        VGPU_ERROR("rt server: receive failed: "
                   << request.status().to_string());
        return;
      }
    } else {
      if (request->op == RtOp::kShutdown) return;
      stats_.requests.fetch_add(1);
      handle(*request);
    }
    drain_completions();
    pump();
  }
}

void RtServer::drain_completions() {
  std::vector<int> done;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    done.swap(completions_);
  }
  for (int id : done) scheduler_->on_complete(id, rt_now());
}

void RtServer::respond(ClientState& client, RtAck ack) {
  const Status st = client.resp.send(RtResponse{ack});
  if (!st.ok()) {
    VGPU_ERROR("rt server: response send failed: " << st.to_string());
  }
}

void RtServer::handle(const RtRequest& request) {
  if (request.op == RtOp::kReq) {
    handle_req(request);
    return;
  }
  auto it = clients_.find(request.client);
  if (it == clients_.end()) {
    VGPU_ERROR("rt server: request from unknown client " << request.client);
    return;
  }
  ClientState& client = it->second;
  switch (request.op) {
    case RtOp::kSnd: {
      // Stage input: virtual shared memory -> private ("pinned") buffer.
      std::memcpy(client.staging_in.data(), client.vsm.data(),
                  static_cast<std::size_t>(client.bytes_in));
      respond(client, RtAck::kAck);
      break;
    }
    case RtOp::kStr: {
      client.str_pending = true;
      scheduler_->enqueue(request.client, rt_now());
      break;  // the serve loop pumps grants after every message
    }
    case RtOp::kStp: {
      if (!client.job_done->load(std::memory_order_acquire)) {
        stats_.waits_sent.fetch_add(1);
        respond(client, RtAck::kWait);
        break;
      }
      // Result: staging buffer -> virtual shared memory (output area).
      std::memcpy(client.vsm.data() + client.bytes_in,
                  client.staging_out.data(),
                  static_cast<std::size_t>(client.bytes_out));
      respond(client, RtAck::kAck);
      break;
    }
    case RtOp::kRcv: {
      respond(client, RtAck::kAck);
      break;
    }
    case RtOp::kRls: {
      respond(client, RtAck::kAck);
      clients_.erase(it);
      scheduler_->on_release(request.client, rt_now());
      break;
    }
    case RtOp::kReq:
    case RtOp::kShutdown:
      break;  // handled elsewhere
  }
}

void RtServer::handle_req(const RtRequest& request) {
  ClientState client;
  const std::string suffix = std::to_string(request.client);
  auto resp = ipc::MessageQueue<RtResponse>::open(config_.prefix + "_resp" +
                                                  suffix);
  if (!resp.ok()) {
    VGPU_ERROR("rt server: cannot open response queue: "
               << resp.status().to_string());
    return;
  }
  client.resp = std::move(*resp);

  // Admission: enforce the per-client quota before binding any resources.
  const auto decision = admission_->admit(request.bytes_in + request.bytes_out,
                                          std::numeric_limits<Bytes>::max(),
                                          {});
  if (decision.action != sched::AdmitAction::kAdmit) {
    VGPU_ERROR("rt server: denied client " << request.client
                                           << " (over device-memory quota)");
    respond(client, RtAck::kError);
    return;
  }

  // The client clamps an all-empty data plane to one byte; mirror that.
  const Bytes vsm_size =
      std::max<Bytes>(request.bytes_in + request.bytes_out, 1);
  auto vsm =
      ipc::SharedMemory::open(config_.prefix + "_vsm" + suffix, vsm_size);
  if (!vsm.ok()) {
    VGPU_ERROR("rt server: cannot open vsm: " << vsm.status().to_string());
    respond(client, RtAck::kError);
    return;
  }
  client.vsm = std::move(*vsm);

  client.kernel = registry_.find(request.kernel_id);
  if (client.kernel == nullptr) {
    VGPU_ERROR("rt server: unknown kernel id " << request.kernel_id);
    respond(client, RtAck::kError);
    return;
  }
  std::memcpy(client.params, request.params, sizeof(client.params));
  client.bytes_in = request.bytes_in;
  client.bytes_out = request.bytes_out;
  client.staging_in.resize(static_cast<std::size_t>(request.bytes_in));
  client.staging_out.resize(static_cast<std::size_t>(request.bytes_out));

  // A client may re-REQ after a crash/reconnect; retire the stale
  // registration before admitting the new one.
  if (clients_.find(request.client) != clients_.end()) {
    scheduler_->on_release(request.client, rt_now());
  }
  sched::ClientRequest sreq;
  sreq.client = request.client;
  sreq.bytes_in = request.bytes_in;
  sreq.bytes_out = request.bytes_out;
  sreq.priority = request.priority;
  scheduler_->admit(sreq, rt_now());

  auto [it, inserted] =
      clients_.insert_or_assign(request.client, std::move(client));
  (void)inserted;
  respond(it->second, RtAck::kAck);
}

void RtServer::pump() {
  for (;;) {
    const std::vector<int> batch = scheduler_->pick_next(rt_now());
    if (batch.empty()) break;
    // One flush per granted batch, matching the DES GVM's accounting
    // (a barrier cohort co-flush counts once).
    stats_.flushes.fetch_add(1);
    for (int id : batch) dispatch(id);
  }
}

void RtServer::dispatch(int client_id) {
  auto it = clients_.find(client_id);
  VGPU_ASSERT_MSG(it != clients_.end(), "grant for unregistered client");
  ClientState& client = it->second;
  VGPU_ASSERT_MSG(client.str_pending, "grant without a pending STR");
  client.str_pending = false;
  client.job_done->store(false, std::memory_order_release);
  // The job captures raw buffer pointers; ClientState outlives the job
  // because RLS is only sent by clients after STP acknowledged
  // completion, and stop() drains the pool before clearing clients_.
  auto done = client.job_done;
  const RtKernelFn* kernel = client.kernel;
  std::span<const std::byte> in{client.staging_in.data(),
                                client.staging_in.size()};
  std::span<std::byte> out{client.staging_out.data(),
                           client.staging_out.size()};
  const std::int64_t* params = client.params;
  pool_->submit([this, kernel, in, out, params, done, client_id] {
    (*kernel)(in, out, params);
    stats_.jobs_run.fetch_add(1);
    done->store(true, std::memory_order_release);
    // Feed the completion back to the serve thread, which owns the
    // scheduler; it drains this on its next tick.
    std::lock_guard<std::mutex> lock(completions_mutex_);
    completions_.push_back(client_id);
  });
  respond(client, RtAck::kAck);
}

}  // namespace vgpu::rt
