#include "rt/server.hpp"

#include <signal.h>
#include <time.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <limits>
#include <new>
#include <thread>

#include "common/log.hpp"
#include "common/math.hpp"
#include "exec/fusion.hpp"
#include "fault/fault.hpp"

namespace vgpu::rt {

namespace {

/// Like the DES GVM: for the default barrier policy the width comes from
/// the legacy `expected_clients` knob, so the two paths configure the
/// shared policy objects identically.
sched::SchedulerConfig effective_sched_config(const RtServerConfig& config) {
  sched::SchedulerConfig sc = config.sched;
  if (sc.policy == sched::Policy::kBarrierCoFlush) {
    sc.barrier_width = config.expected_clients;
  }
  return sc;
}

sched::AdmissionConfig admission_config(const RtServerConfig& config) {
  sched::AdmissionConfig ac;
  // The live executor runs in host memory; total_capacity (when set)
  // models the device memory the paper's admission path guards, and the
  // per-client quota applies on top.
  ac.capacity = config.total_capacity > 0 ? config.total_capacity
                                          : std::numeric_limits<Bytes>::max();
  if (config.vmem.enabled) {
    // Paged mode: admission guards the *virtual* budget (device + host
    // ledger) and bounds any single working set by the physical device;
    // memory pressure inside that envelope is the pager's problem, so no
    // client is ever denied or whole-client evicted for it.
    const Bytes device = config.vmem.device_capacity > 0
                             ? config.vmem.device_capacity
                             : config.total_capacity;
    // With several memory domains the virtual budget scales with the
    // domain count; the pin bound stays per-device (one working set must
    // fit one device regardless of how many exist).
    const Bytes domains = std::max(1, config.vmem.devices);
    ac.paged = true;
    ac.pin_limit = device;
    ac.capacity = device > 0 ? domains * (device + config.vmem.host_ledger)
                             : std::numeric_limits<Bytes>::max();
  }
  ac.per_client_quota = config.per_client_quota;
  return ac;
}

/// Nanoseconds for a millisecond config knob (SimTime is ns).
SimTime to_ns(std::chrono::milliseconds ms) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(ms).count();
}

}  // namespace

const char* data_plane_name(DataPlane plane) {
  switch (plane) {
    case DataPlane::kStaged:
      return "staged";
    case DataPlane::kZeroCopy:
      return "zero_copy";
  }
  return "unknown";
}

bool parse_data_plane(const std::string& text, DataPlane* out) {
  if (text == "staged" || text == "pinned") {
    *out = DataPlane::kStaged;
    return true;
  }
  if (text == "zero_copy" || text == "zerocopy" || text == "zc") {
    *out = DataPlane::kZeroCopy;
    return true;
  }
  return false;
}

const char* exec_mode_name(ExecMode mode) {
  switch (mode) {
    case ExecMode::kSerial:
      return "serial";
    case ExecMode::kSharded:
      return "sharded";
  }
  return "unknown";
}

bool parse_exec_mode(const std::string& text, ExecMode* out) {
  if (text == "serial") {
    *out = ExecMode::kSerial;
    return true;
  }
  if (text == "sharded" || text == "shard") {
    *out = ExecMode::kSharded;
    return true;
  }
  return false;
}

namespace {
/// floor(log2(depth)), capped at the last bucket.
int depth_bucket(std::size_t depth, int buckets) {
  int bucket = 0;
  while (bucket + 1 < buckets && (depth >> (bucket + 1)) != 0) ++bucket;
  return bucket;
}
}  // namespace

void RtServerStats::record_batch(std::size_t depth) {
  if (depth == 0) return;
  batch_depth[depth_bucket(depth, kBatchBuckets)].fetch_add(
      1, std::memory_order_relaxed);
}

void RtServerStats::record_ready(std::size_t depth) {
  if (depth == 0) return;
  ready_depth[depth_bucket(depth, kBatchBuckets)].fetch_add(
      1, std::memory_order_relaxed);
}

void RtServerStats::record_pump(std::size_t grants) {
  if (grants == 0) return;
  grants_per_pump[depth_bucket(grants, kBatchBuckets)].fetch_add(
      1, std::memory_order_relaxed);
}

RtServer::RtServer(RtServerConfig config, const KernelRegistry& registry)
    : config_(std::move(config)),
      registry_(registry),
      sessions_(static_cast<std::uint32_t>(std::max(1, config_.max_sessions))),
      scheduler_(sched::Scheduler::make(effective_sched_config(config_))),
      admission_(
          std::make_unique<sched::AdmissionController>(admission_config(config_))),
      obs_(config_.obs) {
  VGPU_ASSERT(config_.expected_clients >= 1);
}

SimTime RtServer::rt_now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start_time_)
      .count();
}

Bytes RtServer::device_capacity() const {
  return config_.vmem.device_capacity > 0 ? config_.vmem.device_capacity
                                          : config_.total_capacity;
}

Bytes RtServer::admission_capacity() const {
  if (config_.vmem.enabled && device_capacity() > 0) {
    return static_cast<Bytes>(std::max(1, config_.vmem.devices)) *
           (device_capacity() + config_.vmem.host_ledger);
  }
  return config_.total_capacity > 0 ? config_.total_capacity
                                    : std::numeric_limits<Bytes>::max();
}

int RtServer::place_domain(int client_id, Bytes bytes) {
  std::size_t chosen = 0;
  if (pagers_.size() > 1) {
    // Live per-domain snapshot: attached clients double as the pending
    // signal (the serve loop has no per-domain round queue), free memory
    // is frames not currently resident.
    std::vector<sched::DeviceLoad> loads;
    loads.reserve(pagers_.size());
    for (std::size_t d = 0; d < pagers_.size(); ++d) {
      sched::DeviceLoad load;
      load.device = static_cast<int>(d);
      load.clients = static_cast<int>(domain_clients_[d]);
      load.pending = static_cast<int>(domain_clients_[d]);
      load.capacity = device_capacity();
      load.free_mem =
          std::max<Bytes>(0, load.capacity - pagers_[d]->resident_bytes());
      loads.push_back(load);
    }
    sched::PlacementRequest request;
    request.client = client_id;
    request.bytes = bytes;
    const auto warm = warm_domain_.find(client_id);
    request.warm_device = warm != warm_domain_.end() ? warm->second : -1;
    const int device = placement_->choose(request, loads);
    if (device >= 0) chosen = static_cast<std::size_t>(device);
  }
  if (chosen < domain_clients_.size()) {
    ++domain_clients_[chosen];
    ++domain_placements_[chosen];
  }
  warm_domain_[client_id] = static_cast<int>(chosen);
  return static_cast<int>(chosen);
}

RtServer::~RtServer() { stop(); }

Status RtServer::start() {
  // Control region first: it must exist before any client can learn the
  // server is up (which it does by opening the request queue). The
  // doorbell word sits at offset 0, where pre-control clients expect the
  // bare P_door region's futex word.
  const std::uint32_t max_sessions =
      static_cast<std::uint32_t>(std::max(1, config_.max_sessions));
  const std::uint32_t mailboxes =
      static_cast<std::uint32_t>(std::max(0, config_.handshake_mailboxes));
  auto door = ipc::SharedMemory::create(
      config_.prefix + "_door",
      ipc::ControlRegion<RtResponse>::size_for(max_sessions, mailboxes));
  if (!door.ok()) return door.status();
  door_shm_ = std::move(*door);
  ctrl_ = ipc::ControlRegion<RtResponse>::init(door_shm_.data(), max_sessions,
                                               mailboxes);
  if (config_.arena_size > 0) {
    auto arena = ipc::ShmArena::create(config_.prefix + "_arena",
                                       config_.arena_size,
                                       config_.arena_hugepages);
    if (!arena.ok()) return arena.status();
    arena_ = std::move(*arena);
  }
  auto queue = ipc::MessageQueue<RtRequest>::create(config_.prefix + "_req",
                                                    /*max_messages=*/8);
  if (!queue.ok()) return queue.status();
  requests_ = std::move(*queue);
  if (config_.exec == ExecMode::kSharded) {
    exec::ExecConfig ec;
    ec.workers = config_.workers;
    ec.oversubscribe = config_.shard_oversubscribe;
    ec.tracer = &obs_.tracer();
    ec.fault = config_.fault;
    engine_ = std::make_unique<exec::ExecEngine>(ec);
  } else {
    pool_ = std::make_unique<ThreadPool>(
        config_.workers,
        [this](const char* what) {
          // Jobs catch their own exceptions; this backstop only fires for
          // throws outside the kernel try-block.
          stats_.jobs_failed.fetch_add(1);
          VGPU_ERROR("rt server: worker job threw: " << what);
        });
  }
  if (config_.vmem.enabled) {
    if (device_capacity() <= 0) {
      return InvalidArgument(
          "vmem requires a device size: set vmem.device_capacity or "
          "total_capacity");
    }
    vmem::PagerConfig pc;
    pc.page_size = config_.vmem.page_size;
    pc.device_capacity = device_capacity();
    pc.host_ledger_capacity = config_.vmem.host_ledger;
    pc.prefetch_window = config_.vmem.prefetch_window;
    const int domains = std::max(1, config_.vmem.devices);
    for (int d = 0; d < domains; ++d) {
      pagers_.push_back(
          std::make_unique<vmem::Pager>(pc, config_.fault, &obs_.tracer()));
    }
    placement_ = sched::Placement::make(config_.placement);
    domain_clients_.assign(static_cast<std::size_t>(domains), 0);
    domain_placements_.assign(static_cast<std::size_t>(domains), 0);
  }
  start_time_ = std::chrono::steady_clock::now();
  // Span timestamps and scheduler timestamps share one zero point.
  obs_.tracer().set_epoch(start_time_);
  running_.store(true);
  serve_thread_ = std::thread([this] { serve_loop(); });
  return Status::Ok();
}

void RtServer::stop() {
  if (!running_.exchange(false)) return;
  RtRequest shutdown;
  shutdown.op = RtOp::kShutdown;
  (void)requests_.send(shutdown);
  if (serve_thread_.joinable()) serve_thread_.join();
  pool_.reset();  // drains in-flight jobs
  if (engine_ != nullptr) {
    // Jobs have completed (clients RLS before stop in the protocol, and
    // the engine drains before exit); snapshot the counters for printing.
    engine_->shutdown();
    const exec::ExecStats& es = engine_->stats();
    exec_counters_.launches = es.launches.load();
    exec_counters_.shards_executed = es.shards_executed.load();
    exec_counters_.steals = es.steals.load();
    exec_counters_.overflow_pushes = es.overflow_pushes.load();
    exec_counters_.external_jobs = es.external_jobs.load();
    exec_counters_.worker_shards.clear();
    for (int i = 0; i <= engine_->workers(); ++i) {
      exec_counters_.worker_shards.push_back(engine_->worker_shards(i));
    }
    engine_.reset();
  }
  sessions_.for_each(
      [this](std::uint32_t slot, ClientState&) { sessions_.detach(slot); });
  id_slots_.clear();
  ring_lanes_ = 0;
  export_obs();
}

void RtServer::export_obs() {
  obs::Registry& reg = obs_.metrics();
  const auto set = [&reg](const char* name, long v) {
    reg.counter(name)->set(v);
  };
  set("rt.requests", stats_.requests.load());
  set("rt.flushes", stats_.flushes.load());
  set("rt.jobs_run", stats_.jobs_run.load());
  set("rt.jobs_failed", stats_.jobs_failed.load());
  set("rt.waits_sent", stats_.waits_sent.load());
  set("rt.ring_requests", stats_.ring_requests.load());
  set("rt.bytes_copied", stats_.bytes_copied.load());
  set("rt.overlap_bytes", stats_.overlap_bytes.load());
  set("rt.syscalls_saved", stats_.syscalls_saved.load());
  set("rt.spin_wakeups", stats_.spin_wakeups.load());
  set("rt.doorbell_blocks", stats_.doorbell_blocks.load());
  set("rt.leases_expired", stats_.leases_expired.load());
  set("rt.clients_reclaimed", stats_.clients_reclaimed.load());
  set("rt.reclaimed_bytes", stats_.reclaimed_bytes.load());
  set("rt.backpressure", stats_.backpressure.load());
  set("rt.denials", stats_.denials.load());
  set("rt.duplicates_absorbed", stats_.duplicates_absorbed.load());
  set("rt.responses_dropped", stats_.responses_dropped.load());
  set("rt.sessions_attached", stats_.sessions_attached.load());
  set("rt.slots_recycled", stats_.slots_recycled.load());
  set("rt.stale_sessions", stats_.stale_sessions.load());
  set("rt.mailbox_acks", stats_.mailbox_acks.load());
  set("rt.arena_grants", stats_.arena_grants.load());
  set("rt.arena_declines", stats_.arena_declines.load());
  set("rt.reconcile_requests", stats_.reconcile_requests.load());
  set("rt.serve_cpu_ns", stats_.serve_cpu_ns.load());
  set("rt.ctrl_messages_req", stats_.ctrl_req.load());
  set("rt.ctrl_messages_snd", stats_.ctrl_snd.load());
  set("rt.ctrl_messages_str", stats_.ctrl_str.load());
  set("rt.ctrl_messages_stp", stats_.ctrl_stp.load());
  set("rt.ctrl_messages_rcv", stats_.ctrl_rcv.load());
  set("rt.ctrl_messages_rls", stats_.ctrl_rls.load());
  set("rt.ctrl_messages_graph", stats_.ctrl_graph.load());
  set("rt.graph_uploads", stats_.graph_uploads.load());
  set("rt.graphs_cached", stats_.graphs_cached.load());
  set("rt.graphs_rejected", stats_.graphs_rejected.load());
  set("rt.graph_replays", stats_.graph_replays.load());
  set("rt.graph_nodes_run", stats_.graph_nodes_run.load());
  set("rt.graph_nodes_fused", stats_.graph_nodes_fused.load());
  set("rt.graph_messages_saved", stats_.graph_messages_saved.load());
  set("rt.graphs_reclaimed", stats_.graphs_reclaimed.load());
  set("rt.graph_nodes_live", stats_.graph_nodes_live.load());
  if (arena_.valid()) {
    const ipc::ShmArena::Stats& as = arena_.stats();
    set("arena.allocs", as.allocs);
    set("arena.frees", as.frees);
    set("arena.alloc_failures", as.failures);
    reg.gauge("arena.in_use_bytes")->set(static_cast<double>(as.in_use));
    reg.gauge("arena.peak_bytes")->set(static_cast<double>(as.peak_in_use));
    set("arena.hugepages", as.hugepages ? 1 : 0);
  }
  // Legacy bucket i counted wakeup depths in [2^i, 2^(i+1)); histogram
  // bucket i counts samples <= bounds[i], so bound i = 2^(i+1) - 1 maps
  // the buckets one-to-one (the overflow bucket is the legacy "128+").
  const auto export_depths = [&reg](const char* name,
                                    const std::atomic<long>* buckets) {
    std::vector<double> bounds;
    for (int i = 0; i + 1 < RtServerStats::kBatchBuckets; ++i) {
      bounds.push_back(static_cast<double>((2L << i) - 1));
    }
    obs::Histogram* hist = reg.histogram(name, std::move(bounds));
    for (int i = 0; i < RtServerStats::kBatchBuckets; ++i) {
      const long have = buckets[i].load();
      const long exported = hist->bucket_count(static_cast<std::size_t>(i));
      if (have > exported) {
        hist->add_count(static_cast<std::size_t>(i), have - exported);
      }
    }
  };
  export_depths("rt.batch_depth", stats_.batch_depth);
  export_depths("rt.ready_depth", stats_.ready_depth);
  export_depths("rt.grants_per_pump", stats_.grants_per_pump);
  set("exec.launches", exec_counters_.launches);
  set("exec.shards_executed", exec_counters_.shards_executed);
  set("exec.steals", exec_counters_.steals);
  set("exec.overflow_pushes", exec_counters_.overflow_pushes);
  set("exec.external_jobs", exec_counters_.external_jobs);
  for (std::size_t i = 0; i < exec_counters_.worker_shards.size(); ++i) {
    const std::string name =
        i + 1 == exec_counters_.worker_shards.size()
            ? "exec.worker_shards.external"
            : "exec.worker_shards." + std::to_string(i);
    reg.counter(name)->set(exec_counters_.worker_shards[i]);
  }
  const sched::SchedStats& ss = scheduler_->stats();
  set("sched.admitted", ss.admitted);
  set("sched.released", ss.released);
  set("sched.enqueued", ss.enqueued);
  set("sched.grants", ss.grants);
  set("sched.batches", ss.batches);
  set("sched.pumps", ss.pumps);
  set("sched.quanta_granted", ss.quanta_granted);
  set("sched.rotations", ss.rotations);
  set("sched.aging_promotions", ss.aging_promotions);
  set("sched.resident_holds", ss.resident_holds);
  set("sched.failures", ss.failures);
  reg.gauge("sched.mean_wait_ms")->set(ss.mean_wait() * 1e3);
  reg.gauge("sched.p95_wait_ms")->set(ss.wait_percentile(0.95) * 1e3);
  const sched::AdmissionStats& as = admission_->stats();
  set("admission.admitted", as.admitted);
  set("admission.rejected", as.rejected);
  set("admission.backpressured", as.backpressured);
  set("admission.evictions", as.evictions);
  if (paging()) {
    // The oversubscription promise: paged admission never names victims,
    // so anything nonzero here means a whole client lost its memory.
    set("vmem.evictions_whole_client", as.evictions);
    if (pagers_.size() == 1) {
      pagers_.front()->export_metrics(reg);
    } else {
      // Multi-domain: pooled vmem.* aggregates (so the single-device
      // dashboards and gates keep working) plus the per-device labels.
      vmem::PagerCounters sum;
      Bytes resident = 0, ledger = 0;
      for (std::size_t d = 0; d < pagers_.size(); ++d) {
        const vmem::PagerCounters& c = pagers_[d]->counters();
        sum.faults += c.faults;
        sum.page_ins += c.page_ins;
        sum.page_outs += c.page_outs;
        sum.evicted_pages += c.evicted_pages;
        sum.clean_drops += c.clean_drops;
        sum.prefetch_issued += c.prefetch_issued;
        sum.prefetch_hits += c.prefetch_hits;
        sum.pin_shortfalls += c.pin_shortfalls;
        sum.host_restores += c.host_restores;
        sum.frame_alloc_failures += c.frame_alloc_failures;
        sum.handoffs_out += c.handoffs_out;
        sum.handoffs_in += c.handoffs_in;
        sum.bytes_handed_off += c.bytes_handed_off;
        resident += pagers_[d]->resident_bytes();
        ledger += pagers_[d]->ledger_bytes();
        const std::string dev = "device" + std::to_string(d);
        pagers_[d]->export_metrics(reg, "vmem." + dev + ".",
                                   "gpu." + dev + ".mem.");
        reg.counter("rt." + dev + ".placements")
            ->set(domain_placements_[d]);
        reg.gauge("rt." + dev + ".clients")
            ->set(static_cast<double>(domain_clients_[d]));
      }
      reg.counter("vmem.faults")->set(sum.faults);
      reg.counter("vmem.page_ins")->set(sum.page_ins);
      reg.counter("vmem.page_outs")->set(sum.page_outs);
      reg.counter("vmem.evictions_pages")->set(sum.evicted_pages);
      reg.counter("vmem.clean_drops")->set(sum.clean_drops);
      reg.counter("vmem.prefetch_issued")->set(sum.prefetch_issued);
      reg.counter("vmem.prefetch_hits")->set(sum.prefetch_hits);
      reg.counter("vmem.pin_shortfalls")->set(sum.pin_shortfalls);
      reg.counter("vmem.host_restores")->set(sum.host_restores);
      reg.counter("vmem.frame_alloc_failures")
          ->set(sum.frame_alloc_failures);
      reg.counter("vmem.handoffs_out")->set(sum.handoffs_out);
      reg.counter("vmem.handoffs_in")->set(sum.handoffs_in);
      reg.counter("vmem.bytes_handed_off")->set(sum.bytes_handed_off);
      reg.gauge("vmem.resident_bytes")->set(static_cast<double>(resident));
      reg.gauge("vmem.ledger_bytes")->set(static_cast<double>(ledger));
    }
  }
  set("obs.spans_dropped", obs_.tracer().dropped());
  if (config_.fault != nullptr) config_.fault->export_metrics(reg);
}

std::size_t RtServer::drain_requests(bool* shutdown) {
  std::size_t handled = 0;
  // Sweep the shared message queue dry without blocking.
  for (;;) {
    auto request = requests_.receive(std::chrono::milliseconds(0));
    if (!request.ok()) {
      if (request.status().code() != ErrorCode::kUnavailable) {
        VGPU_ERROR("rt server: receive failed: "
                   << request.status().to_string());
        *shutdown = true;
      }
      break;
    }
    if (request->op == RtOp::kShutdown) {
      *shutdown = true;
      return handled;
    }
    stats_.requests.fetch_add(1);
    handle(*request);
    ++handled;
  }
  // Ready-set drain: the control region names exactly the lanes whose
  // clients published since the last wakeup, so this sweep is O(ready),
  // never O(attached). Collect every pending ring request before handling
  // any: handle() may detach a session (stale re-attach replacement),
  // which would invalidate the lane being swept.
  ready_batch_.clear();
  if (ctrl_.drain_ready(&ready_batch_) == 0) return handled;
  stats_.record_ready(ready_batch_.size());
  ring_batch_.clear();
  for (const std::uint32_t slot : ready_batch_) {
    ClientState* client = sessions_.at(slot);
    if (client == nullptr || client->lane == nullptr) continue;
    while (auto request = client->lane->try_receive()) {
      ring_batch_.push_back(*request);
    }
  }
  for (const RtRequest& request : ring_batch_) {
    stats_.requests.fetch_add(1);
    stats_.ring_requests.fetch_add(1);
    // client mq_send + server mq_timedreceive + server mq_send + client
    // mq_receive, all elided by the ring round trip.
    stats_.syscalls_saved.fetch_add(4);
    handle(request);
    ++handled;
  }
  return handled;
}

void RtServer::serve_loop() {
  obs::Tracer& tracer = obs_.tracer();
  tracer.ensure_thread();
  ipc::WaitStrategy waiter(config_.wait);
  ipc::Doorbell door(door_shm_.as<ipc::Doorbell::Word>());
  // Serve-thread CPU, measured on the thread's own clock: wall time in a
  // futex park costs nothing here, so cpu_ns / requests is an honest
  // server-side cost-per-request even for mostly-idle runs.
  timespec cpu_begin{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &cpu_begin);
  const auto flush_cpu = [&cpu_begin, this] {
    timespec cpu_end{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &cpu_end);
    stats_.serve_cpu_ns.store(
        (cpu_end.tv_sec - cpu_begin.tv_sec) * 1000000000L +
        (cpu_end.tv_nsec - cpu_begin.tv_nsec));
  };
  for (;;) {
    bool shutdown = false;
    const SimTime drain_begin = tracer.begin_span();
    const std::size_t handled = drain_requests(&shutdown);
    if (handled > 0) {
      stats_.record_batch(handled);
      tracer.end_span(drain_begin, obs::Phase::kBatchDrain, obs::kLaneServer,
                      static_cast<std::int32_t>(handled));
    }
    if (shutdown) break;
    drain_completions();
    check_leases();
    pump();
    if (handled > 0) continue;  // stay hot while requests keep arriving
    // Idle. Bound the park so time-based policies (quantum expiry,
    // anti-thrash hysteresis) are still polled promptly.
    auto park = std::chrono::microseconds(1000);
    const SimTime wake = scheduler_->next_wakeup(rt_now());
    if (wake != kTimeInfinity) {
      const SimTime now = rt_now();
      const SimTime delta_ns = wake > now ? wake - now : 0;
      park = std::min(park, std::chrono::microseconds(delta_ns / 1000 + 1));
    }
    const SimTime park_begin = tracer.begin_span();
    if (ring_lanes_ == 0) {
      // Pure-mqueue mode: block inside the kernel on the shared queue,
      // exactly like the paper's timed-receive serve loop.
      auto request = requests_.receive(park_ceil_ms(park));
      tracer.end_span(park_begin, obs::Phase::kPark, obs::kLaneServer);
      if (request.ok()) {
        if (request->op == RtOp::kShutdown) break;
        stats_.requests.fetch_add(1);
        handle(*request);
        stats_.record_batch(1);
        drain_completions();
        pump();
      } else if (request.status().code() != ErrorCode::kUnavailable) {
        VGPU_ERROR("rt server: receive failed: "
                   << request.status().to_string());
        break;
      }
    } else {
      // Ring mode: adaptive spin -> yield -> futex park on the doorbell.
      // The predicate is two shared loads — the ready-set head published
      // by clients and the worker completion count — independent of how
      // many sessions are attached. The mqueue is re-polled at least
      // every `park`.
      waiter.wait(
          [this] {
            return !ctrl_.ready_empty() ||
                   pending_completions_.load(std::memory_order_acquire) > 0;
          },
          &door, std::chrono::steady_clock::now() + park);
      tracer.end_span(park_begin, obs::Phase::kPark, obs::kLaneServer);
    }
  }
  flush_cpu();
  stats_.spin_wakeups.store(waiter.stats().spin_hits +
                            waiter.stats().yield_hits);
  stats_.doorbell_blocks.store(waiter.stats().blocks);
}

void RtServer::drain_completions() {
  // done_batch_ and completions_ ping-pong their storage: the clear-then-
  // swap keeps both buffers' capacity, so the steady-state wakeup path
  // never allocates.
  done_batch_.clear();
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    done_batch_.swap(completions_);
    pending_completions_.store(0, std::memory_order_release);
  }
  for (int id : done_batch_) {
    auto it = id_slots_.find(id);
    ClientState* client =
        it != id_slots_.end() ? sessions_.at(it->second) : nullptr;
    // The working set stays pinned for exactly the kernel's lifetime;
    // after this the clock may spill it for the next grant's pins. (A
    // session already destroyed mid-job released its pages on that path.)
    if (paging() && client != nullptr) pager_of(*client)->unpin(id);
    scheduler_->on_complete(id, rt_now());
    // A doomed session was only waiting for this job to drain; reclaim it
    // now instead of on the next lease sweep.
    if (client == nullptr) continue;
    if (client->doomed &&
        client->job_done->load(std::memory_order_acquire)) {
      destroy_session(it->second, /*unlink_names=*/true,
                      /*count_reclaimed=*/true);
      continue;
    }
    if (client->graph_ack_deferred &&
        client->job_done->load(std::memory_order_acquire)) {
      // Deferred graph ack: one response per whole-graph completion. If
      // the client already fell back to STP polling (a newer verb moved
      // last_seq past the launch), STP owns the answer instead.
      client->graph_ack_deferred = false;
      if (!client->released &&
          client->last_seq == client->graph_launch_seq) {
        if (paging() && client->alloc_out != 0) {
          (void)pager_of(*client)->ensure_readable(client->alloc_out);
          pager_of(*client)->touch(client->alloc_out);
        }
        respond(*client,
                client->job_failed->load(std::memory_order_acquire)
                    ? RtAck::kError
                    : RtAck::kAck);
      }
    }
  }
}

void RtServer::respond(ClientState& client, RtAck ack) {
  const ipc::TransportKind kind = client.lane != nullptr
                                      ? client.lane->kind()
                                      : ipc::TransportKind::kMessageQueue;
  RtResponse response;
  response.ack = ack;
  response.transport = static_cast<std::int32_t>(kind);
  response.seq = client.last_seq;
  send_response(client, response);
}

void RtServer::send_unrecorded(ClientState& client, RtAck ack) {
  RtResponse response;
  response.ack = ack;
  response.transport = static_cast<std::int32_t>(
      client.lane != nullptr ? client.lane->kind()
                             : ipc::TransportKind::kMessageQueue);
  response.seq = client.last_seq;
  send_now(client, response);
}

void RtServer::send_response(ClientState& client, const RtResponse& response) {
  // Record before sending: a duplicate of this request replays exactly
  // this answer, whether or not the send below reaches the client.
  client.last_response = response;
  client.has_last_response = true;
  send_now(client, response);
}

void RtServer::send_now(ClientState& client, const RtResponse& response) {
  if (config_.fault != nullptr) {
    if (const fault::Decision d =
            config_.fault->on(fault::Point::kServerRespond)) {
      if (d.action == fault::Action::kDrop) return;  // lost response
      if (d.delay.count() > 0) std::this_thread::sleep_for(d.delay);
    }
  }
  const Status st = client.lane != nullptr ? client.lane->send(response)
                                           : client.resp.send(response);
  if (!st.ok()) {
    if (st.code() == ErrorCode::kUnavailable) {
      // Full queue/ring: the client is likely dead and no longer draining.
      // Never block the serve loop on it; the lease sweep reclaims it.
      stats_.responses_dropped.fetch_add(1);
    } else {
      VGPU_ERROR("rt server: response send failed: " << st.to_string());
    }
  }
}

void RtServer::check_leases() {
  const SimTime now = rt_now();
  if (now - last_lease_check_ < to_ns(config_.lease_check_interval)) return;
  last_lease_check_ = now;
  const SimTime lease_ns = to_ns(config_.lease_timeout);
  const SimTime linger_ns = to_ns(config_.release_linger);
  const SimTime interval_ns = to_ns(config_.lease_check_interval);
  // Deadline heap: pop only what is due — an idle sweep at 10k attached
  // sessions touches nothing. Every popped entry is lazily re-validated:
  // a recycled (slot, generation) resolves to null and drops out, and a
  // deadline pushed back by later activity re-arms at the recomputed time
  // instead of acting.
  while (!lease_heap_.empty() && lease_heap_.top().due <= now) {
    const LeaseDeadline deadline = lease_heap_.top();
    lease_heap_.pop();
    ClientState* client = sessions_.get(deadline.slot, deadline.generation);
    if (client == nullptr) continue;  // recycled since arming
    switch (deadline.kind) {
      case LeaseDeadline::Kind::kSilent: {
        if (client->released || client->doomed || lease_ns <= 0) break;
        if (client->str_pending ||
            !client->job_done->load(std::memory_order_acquire)) {
          // A client whose STR is queued or whose job is executing is
          // legitimately idle at the barrier, not dead. Keep watching.
          arm_lease(*client, LeaseDeadline::Kind::kSilent, now + lease_ns);
          break;
        }
        if (now - client->last_seen < lease_ns) {
          arm_lease(*client, LeaseDeadline::Kind::kSilent,
                    client->last_seen + lease_ns);
          break;
        }
        // Silent past the deadline with nothing queued or running.
        expire_lease(*client, now);
        break;
      }
      case LeaseDeadline::Kind::kLinger: {
        // Normal RLS: quota and scheduler state already returned; the
        // entry lingered only to answer duplicate RLS retries.
        if (!client->released) break;
        if (now - client->released_at >= linger_ns) {
          destroy_session(deadline.slot, /*unlink_names=*/false,
                          /*count_reclaimed=*/false);
        } else {
          arm_lease(*client, LeaseDeadline::Kind::kLinger,
                    client->released_at + linger_ns);
        }
        break;
      }
      case LeaseDeadline::Kind::kDoomed: {
        if (!client->doomed) break;
        if (client->job_done->load(std::memory_order_acquire)) {
          // The in-flight job has drained; nothing references the region
          // or staging buffers any more.
          destroy_session(deadline.slot, /*unlink_names=*/true,
                          /*count_reclaimed=*/true);
        } else {
          arm_lease(*client, LeaseDeadline::Kind::kDoomed, now + interval_ns);
        }
        break;
      }
    }
  }
  // Bounded pid-probe / lane-reconcile rotation: a probe_batch window of
  // slots per sweep instead of every attached client. Populations at or
  // below probe_batch keep the pre-rotation detection latency.
  const std::uint32_t high = sessions_.high_water();
  if (high == 0) return;
  const std::uint32_t window = std::min(
      high, static_cast<std::uint32_t>(std::max(1, config_.probe_batch)));
  ring_batch_.clear();
  for (std::uint32_t i = 0; i < window; ++i) {
    const std::uint32_t slot = (probe_cursor_ + i) % high;
    ClientState* client = sessions_.at(slot);
    if (client == nullptr || client->released || client->doomed) continue;
    if (lease_ns > 0 && client->pid > 0 && ::kill(client->pid, 0) != 0 &&
        errno == ESRCH) {
      expire_lease(*client, now);  // the client process is gone
      continue;
    }
    // Reconciliation: drain the lane directly, healing the (instruction-
    // wide) window where a publisher died after setting its queued flag
    // but before linking its ready node — a set flag would otherwise
    // absorb every later publish for the slot.
    if (client->lane != nullptr &&
        client->lane->kind() == ipc::TransportKind::kShmRing) {
      while (auto request = client->lane->try_receive()) {
        ring_batch_.push_back(*request);
      }
    }
  }
  probe_cursor_ = (probe_cursor_ + window) % high;
  for (const RtRequest& request : ring_batch_) {
    stats_.requests.fetch_add(1);
    stats_.ring_requests.fetch_add(1);
    stats_.reconcile_requests.fetch_add(1);
    handle(request);
  }
}

void RtServer::return_quota(ClientState& client, bool count_reclaimed) {
  if (!client.graphs.empty()) {
    // Cached graphs die with the lease, on whichever path retired it
    // (RLS, expiry, re-attach replacement). A replay in flight keeps its
    // own graph alive through the job's shared_ptr; the cache goes now.
    long nodes = 0;
    for (const auto& [gid, graph] : client.graphs) {
      nodes += static_cast<long>(graph->nodes.size());
    }
    stats_.graph_nodes_live.fetch_sub(nodes);
    stats_.graphs_reclaimed.fetch_add(static_cast<long>(client.graphs.size()));
    client.graphs.clear();
  }
  if (client.admitted_bytes > 0) {
    admitted_total_ -= client.admitted_bytes;
    if (count_reclaimed) {
      stats_.reclaimed_bytes.fetch_add(client.admitted_bytes);
    }
    client.admitted_bytes = 0;
  }
  backpressure_counts_.erase(client.id);
  if (paging() && (client.alloc_in != 0 || client.alloc_out != 0)) {
    // Page frames and ledger slots ride the same exit as the quota bytes:
    // whichever path retired the client (RLS, lease expiry, or re-attach
    // replacement) frees its memory for the survivors in one place.
    // unpin tolerates a teardown mid-grant.
    pager_of(client)->unpin(client.id);
    (void)pager_of(client)->release_client(client.id);
    client.alloc_in = 0;
    client.alloc_out = 0;
    const auto domain = static_cast<std::size_t>(client.device);
    if (domain < domain_clients_.size() && domain_clients_[domain] > 0) {
      --domain_clients_[domain];
    }
    scheduler_->set_residency(client.id, false);
  }
}

void RtServer::arm_lease(const ClientState& client, LeaseDeadline::Kind kind,
                         SimTime due) {
  lease_heap_.push(LeaseDeadline{due, client.slot, client.generation, kind});
}

void RtServer::expire_lease(ClientState& client, SimTime now) {
  VGPU_WARN("rt server: lease expired for client "
            << client.id << (client.pid > 0 ? " (pid probe)" : "")
            << "; reclaiming");
  // Dequeue first: a pending STR leaves the scheduler here, and for the
  // barrier policy the cohort width shrinks so the survivors' flush
  // proceeds without the dead member.
  scheduler_->on_failure(client.id, now);
  return_quota(client, /*count_reclaimed=*/true);
  stats_.leases_expired.fetch_add(1);
  if (obs_.tracer().enabled()) {
    // The silent window itself is the span: last heartbeat -> expiry.
    obs_.tracer().record(obs::Phase::kLeaseExpiry, client.id, client.pid,
                         client.last_seen, now);
  }
  client.str_pending = false;
  client.doomed = true;
  if (client.job_done->load(std::memory_order_acquire)) {
    // Nothing in flight references the region; reclaim immediately. This
    // invalidates `client` — callers must not touch it afterwards.
    destroy_session(client.slot, /*unlink_names=*/true,
                    /*count_reclaimed=*/true);
  } else {
    // The job still holds the buffers; drain_completions (or the next
    // sweep) reclaims once it lands.
    arm_lease(client, LeaseDeadline::Kind::kDoomed,
              now + to_ns(config_.lease_check_interval));
  }
}

void RtServer::destroy_session(std::uint32_t slot, bool unlink_names,
                               bool count_reclaimed) {
  ClientState* client = sessions_.at(slot);
  if (client == nullptr) return;
  if (client->lane != nullptr &&
      client->lane->kind() == ipc::TransportKind::kShmRing) {
    --ring_lanes_;
  }
  if (unlink_names) {
    // Crashed client: unlink the kernel names it can no longer clean up.
    // The server's own mappings stay valid until the handles close; a
    // released client unlinks its own names, so callers skip those (a
    // fresh incarnation may already have recreated them). Arena clients
    // have no private vsm segment to unlink.
    const std::string suffix = std::to_string(client->id);
    if (client->arena_offset < 0) {
      ipc::SharedMemory::unlink(config_.prefix + "_vsm" + suffix);
    }
    ipc::MessageQueueBase::unlink(config_.prefix + "_resp" + suffix);
  }
  if (count_reclaimed) stats_.clients_reclaimed.fetch_add(1);
  if (!client->graphs.empty()) {
    // Backstop for destroy paths that skipped return_quota: the cached
    // graphs must never outlive their session.
    long nodes = 0;
    for (const auto& [gid, graph] : client->graphs) {
      nodes += static_cast<long>(graph->nodes.size());
    }
    stats_.graph_nodes_live.fetch_sub(nodes);
    stats_.graphs_reclaimed.fetch_add(
        static_cast<long>(client->graphs.size()));
    client->graphs.clear();
  }
  if (client->arena_offset >= 0) arena_.release(client->arena_offset);
  if (auto it = id_slots_.find(client->id);
      it != id_slots_.end() && it->second == slot) {
    id_slots_.erase(it);
  }
  sessions_.detach(slot);  // bumps the generation: outstanding tokens die
  stats_.slots_recycled.fetch_add(1);
}

RtServer::ClientState* RtServer::resolve(const RtRequest& request) {
  if (request.session != 0) {
    ClientState* client = sessions_.get(session_slot(request.session),
                                        session_generation(request.session));
    if (client == nullptr) {
      // The token's generation predates the slot's current tenant (a
      // recycled lane, or a token minted before a crash-reattach).
      // Rejecting — never falling back to the id — is what makes slot
      // reuse safe under churn.
      stats_.stale_sessions.fetch_add(1);
      return nullptr;
    }
    return client;
  }
  // Pre-session verb: the O(1) id index stands in for the token.
  auto it = id_slots_.find(request.client);
  if (it == id_slots_.end()) {
    VGPU_ERROR("rt server: request from unknown client " << request.client);
    return nullptr;
  }
  return sessions_.at(it->second);
}

void RtServer::count_ctrl(RtOp op) {
  switch (op) {
    case RtOp::kReq:
      stats_.ctrl_req.fetch_add(1);
      break;
    case RtOp::kSnd:
      stats_.ctrl_snd.fetch_add(1);
      break;
    case RtOp::kStr:
      stats_.ctrl_str.fetch_add(1);
      break;
    case RtOp::kStp:
      stats_.ctrl_stp.fetch_add(1);
      break;
    case RtOp::kRcv:
      stats_.ctrl_rcv.fetch_add(1);
      break;
    case RtOp::kRls:
      stats_.ctrl_rls.fetch_add(1);
      break;
    case RtOp::kGraphUpload:
    case RtOp::kLaunchGraph:
      stats_.ctrl_graph.fetch_add(1);
      break;
    case RtOp::kShutdown:
      break;
  }
}

void RtServer::handle(const RtRequest& request) {
  count_ctrl(request.op);
  if (config_.fault != nullptr) {
    if (const fault::Decision d =
            config_.fault->on(fault::Point::kServerHandle)) {
      if (d.action == fault::Action::kDrop) return;  // lost control message
      if (d.delay.count() > 0) std::this_thread::sleep_for(d.delay);
    }
  }
  if (request.op == RtOp::kReq) {
    handle_req(request);
    return;
  }
  ClientState* resolved = resolve(request);
  if (resolved == nullptr) return;
  ClientState& client = *resolved;
  client.last_seen = rt_now();
  // At-least-once delivery: a repeat of the last seq is a client retry
  // after a lost response — replay the recorded answer instead of running
  // the verb's side effects twice. Anything older is a stale duplicate.
  if (request.seq != 0 && client.last_seq != 0) {
    if (request.seq == client.last_seq) {
      if (client.has_last_response) {
        stats_.duplicates_absorbed.fetch_add(1);
        send_response(client, client.last_response);
      } else if (request.op == RtOp::kLaunchGraph &&
                 client.graph_ack_deferred) {
        // The replay is still running and its completion ack is what a
        // later retry must replay: answer kWait without recording it, so
        // the client falls back to STP polling.
        stats_.waits_sent.fetch_add(1);
        send_unrecorded(client, RtAck::kWait);
      }
      return;
    }
    if (request.seq < client.last_seq) return;
  }
  if (client.released) return;  // lingering entry: replays only
  client.last_seq = request.seq;
  client.has_last_response = false;
  switch (request.op) {
    case RtOp::kSnd: {
      if (paging() && client.alloc_in != 0) {
        // The client rewrote its input area: write-allocate — any ledger
        // copy of those pages is stale and must not be restored over the
        // fresh bytes.
        pager_of(client)->host_write(client.alloc_in);
      }
      if (config_.data_plane == DataPlane::kStaged &&
          config_.exec == ExecMode::kSerial) {
        // Stage input: virtual shared memory -> private ("pinned") buffer.
        const SimTime t0 = obs_.tracer().begin_span();
        std::memcpy(client.staging_in.data(), client.input_area().data(),
                    static_cast<std::size_t>(client.bytes_in));
        obs_.tracer().end_span(t0, obs::Phase::kCopyIn, client.id,
                               client.kernel_id);
        stats_.bytes_copied.fetch_add(client.bytes_in);
      }
      // Sharded mode defers the staging copy into the job itself, where it
      // is chunked and overlapped with compute (the serve thread never
      // blocks on a memcpy). Zero-copy plane: the kernel reads the vsm
      // directly; SND is a pure protocol ack either way.
      respond(client, RtAck::kAck);
      break;
    }
    case RtOp::kStr: {
      if (client.str_pending ||
          !client.job_done->load(std::memory_order_acquire)) {
        // Duplicate STR (pre-seq client, or delivery raced the grant ack)
        // while one is already queued or running: the grant/completion
        // path answers both. Re-enqueueing would corrupt the scheduler.
        break;
      }
      client.str_pending = true;
      client.str_begin = obs_.tracer().begin_span();
      // A plain round charges the admission-time footprint again.
      scheduler_->clear_round_cost(client.id);
      client.graph_pending = -1;
      scheduler_->enqueue(client.id, rt_now());
      break;  // the serve loop pumps grants after every drain
    }
    case RtOp::kStp: {
      if (client.str_pending ||
          !client.job_done->load(std::memory_order_acquire)) {
        // str_pending covers the enqueued-but-not-granted window: job_done
        // still holds the previous round's true until the grant runs, so
        // without it an STP poll would ack pre-replay output as complete.
        stats_.waits_sent.fetch_add(1);
        respond(client, RtAck::kWait);
        break;
      }
      if (client.job_failed->load(std::memory_order_acquire)) {
        // The kernel threw; surface the failure instead of handing back
        // stale output bytes.
        respond(client, RtAck::kError);
        break;
      }
      if (paging() && client.alloc_out != 0) {
        // The client reads its result next; make sure nothing the pager
        // spilled (and the test-only scrub mode poisoned) is still stale.
        (void)pager_of(client)->ensure_readable(client.alloc_out);
        pager_of(client)->touch(client.alloc_out);
      }
      if (config_.data_plane == DataPlane::kStaged &&
          config_.exec == ExecMode::kSerial && !client.last_job_graph) {
        // Result: staging buffer -> virtual shared memory (output area).
        // (Sharded jobs already wrote back, chunked, before completing;
        // graph replays write the vsm data area directly.)
        const SimTime t0 = obs_.tracer().begin_span();
        std::memcpy(client.output_area().data(), client.staging_out.data(),
                    static_cast<std::size_t>(client.bytes_out));
        obs_.tracer().end_span(t0, obs::Phase::kCopyOut, client.id,
                               client.kernel_id);
        stats_.bytes_copied.fetch_add(client.bytes_out);
      }
      respond(client, RtAck::kAck);
      break;
    }
    case RtOp::kRcv: {
      if (paging() && client.alloc_out != 0) {
        // Zero-copy clients read the vsm output area after this ack.
        (void)pager_of(client)->ensure_readable(client.alloc_out);
      }
      respond(client, RtAck::kAck);
      break;
    }
    case RtOp::kRls: {
      respond(client, RtAck::kAck);
      scheduler_->on_release(client.id, rt_now());
      return_quota(client, /*count_reclaimed=*/false);
      // The entry lingers (release_linger) so a duplicate RLS retry gets
      // its replay; the armed deadline garbage-collects it.
      client.released = true;
      client.released_at = rt_now();
      arm_lease(client, LeaseDeadline::Kind::kLinger,
                client.released_at + to_ns(config_.release_linger));
      break;
    }
    case RtOp::kGraphUpload: {
      handle_graph_upload(request, client);
      break;
    }
    case RtOp::kLaunchGraph: {
      handle_launch_graph(request, client);
      break;
    }
    case RtOp::kReq:
    case RtOp::kShutdown:
      break;  // handled elsewhere
  }
}

void RtServer::handle_graph_upload(const RtRequest& request,
                                   ClientState& client) {
  stats_.graph_uploads.fetch_add(1);
  const std::int64_t total = request.params[0];
  const std::int64_t offset = request.params[1];
  const std::int64_t nbytes = request.params[2];
  constexpr std::int64_t kMaxWire =
      static_cast<std::int64_t>(sizeof(RtGraphHeader)) +
      static_cast<std::int64_t>(kGraphMaxNodes) *
          static_cast<std::int64_t>(sizeof(RtGraphNode));
  if (total <= 0 || total > kMaxWire || offset < 0 || nbytes <= 0 ||
      offset + nbytes > total || nbytes > client.bytes_in) {
    stats_.graphs_rejected.fetch_add(1);
    VGPU_WARN("rt server: malformed graph upload chunk from client "
              << client.id);
    respond(client, RtAck::kError);
    return;
  }
  if (offset == 0) {
    // First chunk (re)starts the accumulation; a retried first chunk
    // after a lost ack is absorbed by the seq-replay path above.
    client.graph_upload.assign(static_cast<std::size_t>(total), std::byte{0});
    client.graph_upload_id = request.kernel_id;
    client.graph_upload_total = total;
    client.graph_upload_received = 0;
  }
  if (client.graph_upload_total != total ||
      client.graph_upload_id != request.kernel_id ||
      client.graph_upload.size() != static_cast<std::size_t>(total)) {
    stats_.graphs_rejected.fetch_add(1);
    VGPU_WARN("rt server: graph upload chunk does not match the upload in "
              "progress (client "
              << client.id << ")");
    client.graph_upload.clear();
    client.graph_upload_total = 0;
    respond(client, RtAck::kError);
    return;
  }
  // The chunk bytes travel at the head of the client's vsm input area.
  std::memcpy(client.graph_upload.data() + offset, client.input_area().data(),
              static_cast<std::size_t>(nbytes));
  client.graph_upload_received += nbytes;
  if (client.graph_upload_received < total) {
    respond(client, RtAck::kAck);
    return;
  }
  auto parsed = parse_graph({client.graph_upload.data(),
                             client.graph_upload.size()},
                            registry_, client.bytes_in + client.bytes_out);
  client.graph_upload.clear();
  client.graph_upload.shrink_to_fit();
  client.graph_upload_total = 0;
  if (!parsed.ok()) {
    stats_.graphs_rejected.fetch_add(1);
    VGPU_WARN("rt server: rejected graph " << request.kernel_id
                                           << " from client " << client.id
                                           << ": "
                                           << parsed.status().to_string());
    respond(client, RtAck::kError);
    return;
  }
  if (auto old = client.graphs.find(request.kernel_id);
      old != client.graphs.end()) {
    // Re-upload replaces; a replay in flight still pins the old graph.
    stats_.graph_nodes_live.fetch_sub(
        static_cast<long>(old->second->nodes.size()));
  }
  auto graph = std::make_shared<const RtGraph>(std::move(*parsed));
  stats_.graph_nodes_live.fetch_add(static_cast<long>(graph->nodes.size()));
  stats_.graphs_cached.fetch_add(1);
  client.graphs[request.kernel_id] = std::move(graph);
  respond(client, RtAck::kAck);
}

void RtServer::handle_launch_graph(const RtRequest& request,
                                   ClientState& client) {
  auto it = client.graphs.find(request.kernel_id);
  if (it == client.graphs.end()) {
    VGPU_WARN("rt server: launch of unknown graph " << request.kernel_id
                                                    << " from client "
                                                    << client.id);
    respond(client, RtAck::kError);
    return;
  }
  if (client.str_pending ||
      !client.job_done->load(std::memory_order_acquire)) {
    // A round is already queued or running (pre-seq duplicate, or the
    // launch raced the previous completion); the grant/completion path
    // answers it. Re-enqueueing would corrupt the scheduler.
    return;
  }
  if (paging() && client.alloc_in != 0) {
    // The client rewrote its inputs before firing the iteration.
    pager_of(client)->host_write(client.alloc_in);
  }
  client.graph_pending = request.kernel_id;
  std::memcpy(client.graph_params, request.params,
              sizeof(client.graph_params));
  client.graph_ack_deferred = true;
  client.graph_launch_seq = request.seq;
  client.str_pending = true;
  client.str_begin = obs_.tracer().begin_span();
  // One graph grant stands for the whole DAG: charge its aggregate
  // bytes/blocks instead of the admission-time footprint.
  scheduler_->set_round_cost(client.id, it->second->aggregate_bytes(),
                             it->second->plan.total_blocks);
  scheduler_->enqueue(client.id, rt_now());
  // No response here: the ack goes out once, at replay completion.
}

void RtServer::handshake_reply(const RtRequest& request, RtAck ack,
                               std::int64_t arena_offset) {
  RtResponse response;
  response.ack = ack;
  response.transport =
      static_cast<std::int32_t>(ipc::TransportKind::kMessageQueue);
  response.seq = request.seq;
  response.arena_offset = arena_offset;
  if (config_.fault != nullptr) {
    if (const fault::Decision d =
            config_.fault->on(fault::Point::kServerRespond)) {
      if (d.action == fault::Action::kDrop) return;  // lost response
      if (d.delay.count() > 0) std::this_thread::sleep_for(d.delay);
    }
  }
  if (request.mailbox >= 0) {
    if (ctrl_.deliver(request.mailbox, request.client, response)) {
      stats_.mailbox_acks.fetch_add(1);
    } else {
      // Stale index or a crashed claimant whose box was recycled.
      stats_.responses_dropped.fetch_add(1);
    }
    return;
  }
  auto resp = ipc::MessageQueue<RtResponse>::open(
      config_.prefix + "_resp" + std::to_string(request.client));
  if (!resp.ok()) {
    VGPU_ERROR("rt server: cannot answer REQ for client "
               << request.client << ": " << resp.status().to_string());
    return;
  }
  const Status st = resp->try_send(response);
  if (!st.ok() && st.code() != ErrorCode::kUnavailable) {
    VGPU_ERROR("rt server: response send failed: " << st.to_string());
  }
}

void RtServer::handle_req(const RtRequest& request) {
  // The admission span covers the whole REQ handling: queue/region
  // binding, the quota verdict, and transport negotiation.
  const SimTime adm_begin = obs_.tracer().begin_span();
  const auto finish = [&] {
    obs_.tracer().end_span(adm_begin, obs::Phase::kAdmission, request.client,
                           request.kernel_id);
  };

  // Re-attach while the previous incarnation's job is still executing:
  // that job references the old region and staging buffers, so the
  // registration cannot be replaced yet. Ask the client to back off.
  if (auto busy = id_slots_.find(request.client); busy != id_slots_.end()) {
    ClientState* prev = sessions_.at(busy->second);
    if (prev != nullptr && !prev->job_done->load(std::memory_order_acquire)) {
      handshake_reply(request, RtAck::kWait, -1);
      finish();
      return;
    }
  }

  // Fault: a device-memory allocation failure at binding time.
  if (config_.fault != nullptr &&
      config_.fault->should_fail(fault::Point::kDeviceAlloc)) {
    VGPU_WARN("rt server: injected allocation failure for client "
              << request.client);
    handshake_reply(request, RtAck::kError, -1);
    finish();
    return;
  }

  // Admission: per-client quota plus (when configured) the shared
  // capacity already charged to registered clients. A transient shortfall
  // answers kWait — the client backs off and re-attaches — and sustained
  // overload degrades to a firm DENIED so the client stops burning
  // retries on a server that cannot take it.
  const Bytes ask = request.bytes_in + request.bytes_out;
  const Bytes capacity = admission_capacity();
  const Bytes charged = std::min(capacity, admitted_total_);
  const auto decision = admission_->admit(ask, capacity - charged, {});
  if (decision.action != sched::AdmitAction::kAdmit) {
    bool deny = decision.action != sched::AdmitAction::kRetry;
    if (!deny) {
      stats_.backpressure.fetch_add(1);
      int& strikes = backpressure_counts_[request.client];
      if (config_.deny_after_backpressure > 0 &&
          ++strikes >= config_.deny_after_backpressure) {
        deny = true;
      }
    }
    if (deny) {
      VGPU_WARN("rt server: denied client " << request.client
                                            << " (admission)");
      backpressure_counts_.erase(request.client);
      stats_.denials.fetch_add(1);
      handshake_reply(request, RtAck::kError, -1);
    } else {
      handshake_reply(request, RtAck::kWait, -1);
    }
    finish();
    return;
  }
  backpressure_counts_.erase(request.client);

  const RtKernelFn* kernel = registry_.find(request.kernel_id);
  if (kernel == nullptr) {
    VGPU_ERROR("rt server: unknown kernel id " << request.kernel_id);
    handshake_reply(request, RtAck::kError, -1);
    finish();
    return;
  }

  // The region layout is a pure function of the *advertised* capabilities,
  // so both sides compute it from the REQ message alone.
  const std::uint32_t caps =
      request.transport_caps != 0 ? request.transport_caps
                                  : ipc::kTransportCapMqueue;
  const bool ring_offered =
      config_.transport == ipc::TransportKind::kShmRing &&
      (caps & ipc::kTransportCapShmRing) != 0;
  const Bytes region_size =
      vsm_region_size(caps, request.bytes_in, request.bytes_out);
  const std::string suffix = std::to_string(request.client);

  auto state = std::make_unique<ClientState>();
  ClientState& client = *state;  // heap-held: stays valid across attach()
  client.id = request.client;
  client.pid = request.pid;
  client.last_seq = request.seq;
  client.kernel = kernel;
  client.kernel_id = request.kernel_id;
  std::memcpy(client.params, request.params, sizeof(client.params));
  client.bytes_in = request.bytes_in;
  client.bytes_out = request.bytes_out;
  client.data_offset = vsm_data_offset(caps);
  if (config_.data_plane == DataPlane::kStaged) {
    client.staging_in.resize(static_cast<std::size_t>(request.bytes_in));
    client.staging_out.resize(static_cast<std::size_t>(request.bytes_out));
  }

  if (request.mailbox < 0) {
    // Classic handshake: the ack travels over the client's private
    // response queue (mailbox clients never created one).
    auto resp = ipc::MessageQueue<RtResponse>::open(config_.prefix + "_resp" +
                                                    suffix);
    if (!resp.ok()) {
      VGPU_ERROR("rt server: cannot open response queue: "
                 << resp.status().to_string());
      finish();
      return;
    }
    client.resp = std::move(*resp);
  }

  // A client may re-REQ after a crash/reconnect (the idempotent re-attach
  // the retry layer depends on); retire the stale registration before
  // admitting the new one — this also frees its arena slice, so the new
  // region never backpressures on the client's own stale footprint.
  // on_failure (not on_release): the stale incarnation may have died with
  // a STR still queued.
  if (auto staleit = id_slots_.find(request.client);
      staleit != id_slots_.end()) {
    if (ClientState* stale = sessions_.at(staleit->second); stale != nullptr) {
      if (!stale->released && !stale->doomed) {
        scheduler_->on_failure(request.client, rt_now());
      }
      return_quota(*stale, /*count_reclaimed=*/false);
      destroy_session(staleit->second, /*unlink_names=*/false,
                      /*count_reclaimed=*/false);
    }
  }

  // Region: a slice of the pooled arena when the client asked for one (and
  // the ring negotiation holds — the arena path has no response queue, so
  // post-handshake verbs need the ring), else the client's private
  // P_vsm<k> segment.
  bool use_ring = ring_offered;
  if ((caps & ipc::kTransportCapVsmArena) != 0) {
    if (!arena_.valid() || !ring_offered) {
      // Permanent decline (-2): this server cannot host the region. The
      // client falls back to a private segment immediately, no backoff.
      stats_.arena_declines.fetch_add(1);
      handshake_reply(request, RtAck::kWait, -2);
      finish();
      return;
    }
    const std::int64_t offset = arena_.allocate(region_size);
    if (offset < 0) {
      // Transiently full (-1 + kWait): back off and retry — the space
      // frees as other sessions detach.
      stats_.arena_declines.fetch_add(1);
      handshake_reply(request, RtAck::kWait, -1);
      finish();
      return;
    }
    stats_.arena_grants.fetch_add(1);
    client.arena_offset = offset;
    client.region = {arena_.at(offset),
                     static_cast<std::size_t>(region_size)};
    // The server owns arena placement, so it constructs the channel block
    // (in the private-segment path the client does, pre-REQ).
    client.channel = new (client.region.data()) RtChannel();
    client.channel->publish();
  } else {
    auto vsm =
        ipc::SharedMemory::open(config_.prefix + "_vsm" + suffix, region_size);
    if (!vsm.ok()) {
      VGPU_ERROR("rt server: cannot open vsm: " << vsm.status().to_string());
      handshake_reply(request, RtAck::kError, -1);
      finish();
      return;
    }
    client.vsm = std::move(*vsm);
    client.region = {client.vsm.data(), static_cast<std::size_t>(region_size)};
    // Transport negotiation: take the ring when the server offers it, the
    // client advertised it, and the channel block checks out (magic +
    // version); otherwise fall back to the message queue. The data offset
    // keeps the advertised layout either way.
    if (use_ring) {
      auto* channel = reinterpret_cast<RtChannel*>(client.region.data());
      if (channel->valid()) {
        client.channel = channel;
      } else {
        VGPU_ERROR("rt server: client "
                   << request.client
                   << " advertised a ring but its channel "
                      "block is invalid; using mqueue");
        use_ring = false;
      }
    }
  }

  client.last_seen = rt_now();
  client.admitted_bytes = ask;
  const std::int64_t arena_offset = client.arena_offset;
  auto ref = sessions_.attach(std::move(state));
  if (!ref.has_value()) {
    // Session table full: backpressure, never a crash. The arena slice
    // (if any) goes back; the ClientState (and its vsm mapping) died with
    // the rejected attach.
    if (arena_offset >= 0) arena_.release(arena_offset);
    stats_.backpressure.fetch_add(1);
    handshake_reply(request, RtAck::kWait, -1);
    finish();
    return;
  }
  client.slot = ref->slot;
  client.generation = ref->generation;
  // A leftover ready flag from the slot's previous tenant would absorb
  // the new tenant's publishes; clear it before the ack reveals the slot.
  ctrl_.reset_ready(client.slot);
  id_slots_[request.client] = client.slot;
  stats_.sessions_attached.fetch_add(1);
  admitted_total_ += ask;

  sched::ClientRequest sreq;
  sreq.client = request.client;
  sreq.bytes_in = request.bytes_in;
  sreq.bytes_out = request.bytes_out;
  sreq.priority = request.priority;
  scheduler_->admit(sreq, rt_now());

  if (paging()) {
    // Route the session to a memory domain first (placement over live
    // per-domain load), then register the job's backing with that
    // domain's pager: the staging buffers in staged mode, the region's
    // data areas in zero-copy mode. Pages are born host-side; the grant
    // path faults them in and pins them.
    client.device =
        place_domain(client.id, client.bytes_in + client.bytes_out);
    std::byte* in_base = config_.data_plane == DataPlane::kStaged
                             ? client.staging_in.data()
                             : client.input_area().data();
    std::byte* out_base = config_.data_plane == DataPlane::kStaged
                              ? client.staging_out.data()
                              : client.output_area().data();
    if (client.bytes_in > 0) {
      client.alloc_in =
          pager_of(client)->bind(client.id, in_base, client.bytes_in);
    }
    if (client.bytes_out > 0) {
      client.alloc_out =
          pager_of(client)->bind(client.id, out_base, client.bytes_out);
    }
  }
  ipc::TransportKind selected = ipc::TransportKind::kMessageQueue;
  if (use_ring) {
    client.lane = std::make_unique<ipc::RingServerLane<RtRequest, RtResponse>>(
        client.channel);
    selected = ipc::TransportKind::kShmRing;
    ++ring_lanes_;
  } else {
    client.channel = nullptr;
    client.lane = std::make_unique<ipc::MqServerLane<RtRequest, RtResponse>>(
        &client.resp);
  }
  if (to_ns(config_.lease_timeout) > 0) {
    arm_lease(client, LeaseDeadline::Kind::kSilent,
              client.last_seen + to_ns(config_.lease_timeout));
  }
  // The handshake answers on the pre-session path — mailbox or response
  // queue — because the client only switches to the negotiated transport
  // after reading this ack (which carries its session token and, for
  // arena clients, the region placement).
  RtResponse ack;
  ack.ack = RtAck::kAck;
  ack.transport = static_cast<std::int32_t>(selected);
  ack.seq = request.seq;
  ack.session = client.token();
  ack.arena_offset = client.arena_offset;
  client.last_response = ack;
  client.has_last_response = true;
  if (request.mailbox >= 0) {
    if (ctrl_.deliver(request.mailbox, request.client, ack)) {
      stats_.mailbox_acks.fetch_add(1);
    } else {
      // Claimant gone (stale index or crashed client): the lease sweep
      // will reclaim the session it never heard about.
      stats_.responses_dropped.fetch_add(1);
    }
  } else {
    const Status st = client.resp.send(ack);
    if (!st.ok()) {
      VGPU_ERROR("rt server: response send failed: " << st.to_string());
    }
  }
  finish();
}

void RtServer::pump() {
  // Grant batching: one scheduler sweep collects every batch this wakeup
  // produces; jobs are submitted per cohort (the flush accounting), and
  // the STR acks for the whole pump go out in one response sweep at the
  // end — under bursty arrivals the serve loop writes grants back in
  // O(granted) without re-entering the scheduler between cohorts.
  grant_ids_.clear();
  grant_cohorts_.clear();
  const std::size_t total =
      scheduler_->drain_grants(rt_now(), &grant_ids_, &grant_cohorts_);
  if (total == 0) return;
  stats_.record_pump(total);
  grant_acks_.clear();
  bool pinned_any = false;
  std::size_t next = 0;
  for (const std::size_t cohort : grant_cohorts_) {
    // One flush per granted batch, matching the DES GVM's accounting
    // (a barrier cohort co-flush counts once).
    stats_.flushes.fetch_add(1);
    std::vector<std::function<void()>> jobs;
    jobs.reserve(cohort);
    SimTime barrier_begin = kTimeInfinity;  // earliest STR in the cohort
    for (std::size_t i = 0; i < cohort; ++i) {
      const int id = grant_ids_[next++];
      auto it = id_slots_.find(id);
      VGPU_ASSERT_MSG(it != id_slots_.end(), "grant for unregistered client");
      ClientState* state = sessions_.at(it->second);
      VGPU_ASSERT_MSG(state != nullptr, "grant for recycled session");
      // The queue-wait span closes here: STR arrival -> scheduler grant.
      if (state->str_begin >= 0) {
        obs_.tracer().end_span(state->str_begin, obs::Phase::kQueueWait, id,
                               state->kernel_id);
        barrier_begin = std::min(barrier_begin, state->str_begin);
        state->str_begin = obs::kSpanDisabled;
      }
      if (paging()) {
        // Grant-time residency: fault and pin the working set before
        // launch so the kernel never pages mid-run; cold pages of other
        // clients spill to the host ledger to make room. A shortfall
        // (ledger exhausted) still runs — backing bytes stay valid — and
        // is counted, not deadlocked on.
        const bool resident = pager_of(*state)->pin_working_set(id);
        scheduler_->set_residency(id, resident);
        pinned_any = true;
      }
      if (state->graph_pending >= 0) {
        // A graph grant acks at completion (drain_completions), never at
        // grant time — that is the whole-graph single-ack contract.
        jobs.push_back(make_graph_job(id, *state));
      } else {
        jobs.push_back(make_job(id, *state));
        grant_acks_.push_back(state);
      }
    }
    if (barrier_begin != kTimeInfinity && obs_.tracer().enabled()) {
      // Cohort co-flush: first member's STR -> this grant (the barrier
      // formation time the DES GVM models as the flush window).
      obs_.tracer().record(obs::Phase::kFlushBarrier, obs::kLaneServer,
                           static_cast<std::int32_t>(cohort),
                           barrier_begin, obs_.tracer().now());
    }
    // One lock + one wakeup for the whole cohort.
    Status submitted = Status::Ok();
    if (engine_ != nullptr) {
      for (auto& job : jobs) {
        Status st = engine_->submit(std::move(job));
        if (!st.ok()) submitted = std::move(st);
      }
    } else {
      submitted = pool_->submit_batch(std::move(jobs));
    }
    if (!submitted.ok()) {
      VGPU_ERROR("rt server: job submit failed: " << submitted.to_string());
    }
  }
  for (ClientState* client : grant_acks_) respond(*client, RtAck::kAck);
  if (paging() && pinned_any) {
    // Pinning may have spilled pages of idle holders; refresh the
    // scheduler's residency view so TimeQuantum's anti-thrash hold only
    // protects working sets that are actually still on-device.
    sessions_.for_each([this](std::uint32_t, ClientState& state) {
      if (!state.released && !state.doomed &&
          (state.alloc_in != 0 || state.alloc_out != 0)) {
        scheduler_->set_residency(
            state.id, pager_of(state)->working_set_resident(state.id));
      }
    });
  }
}

std::function<void()> RtServer::make_job(int client_id, ClientState& client) {
  VGPU_ASSERT_MSG(client.str_pending, "grant without a pending STR");
  client.str_pending = false;
  client.last_job_graph = false;
  client.job_done->store(false, std::memory_order_release);
  client.job_failed->store(false, std::memory_order_release);
  // The job captures raw buffer pointers (and, in sharded mode, the
  // ClientState pointer — stable: slot entries are heap-held, so attach
  // churn never moves them); ClientState outlives the job because every
  // destroy path (RLS linger, lease expiry, re-attach replacement) gates
  // on job_done, and stop() drains the pool before detaching sessions.
  auto done = client.job_done;
  auto failed = client.job_failed;
  const RtKernelFn* kernel = client.kernel;
  std::span<const std::byte> in;
  std::span<std::byte> out;
  if (config_.data_plane == DataPlane::kZeroCopy) {
    // Kernels run directly on the client's vsm region: no staging copies
    // on the job path at all.
    in = client.input_area();
    out = client.output_area();
  } else {
    in = {client.staging_in.data(), client.staging_in.size()};
    out = {client.staging_out.data(), client.staging_out.size()};
  }
  const std::int64_t* params = client.params;
  const int kernel_id = client.kernel_id;
  ClientState* state = &client;
  const bool sharded = engine_ != nullptr;
  ipc::Doorbell door(door_shm_.as<ipc::Doorbell::Word>());
  return [this, kernel, in, out, params, done, failed, client_id, kernel_id,
          door, state, sharded]() mutable {
    jobs_in_flight_.fetch_add(1, std::memory_order_acq_rel);
    bool error = false;
    try {
      if (sharded) {
        run_sharded_job(*state);
      } else {
        const SimTime t0 = obs_.tracer().begin_span();
        (*kernel)(in, out, params);
        obs_.tracer().end_span(t0, obs::Phase::kKernel, client_id, kernel_id);
      }
    } catch (const std::exception& e) {
      VGPU_ERROR("rt server: kernel job for client " << client_id
                                                     << " threw: " << e.what());
      error = true;
    } catch (...) {
      VGPU_ERROR("rt server: kernel job for client " << client_id
                                                     << " threw");
      error = true;
    }
    jobs_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    if (error) stats_.jobs_failed.fetch_add(1);
    failed->store(error, std::memory_order_release);
    stats_.jobs_run.fetch_add(1);
    done->store(true, std::memory_order_release);
    // Feed the completion back to the serve thread, which owns the
    // scheduler, then ring its doorbell so a parked loop reacts now.
    {
      std::lock_guard<std::mutex> lock(completions_mutex_);
      completions_.push_back(client_id);
      pending_completions_.fetch_add(1, std::memory_order_release);
    }
    door.ring();
  };
}

void RtServer::copy_chunked(std::byte* dst, const std::byte* src,
                            Bytes total) {
  if (total <= 0) return;
  const Bytes chunk = std::max<Bytes>(1, config_.copy_chunk);
  const long nchunks = ceil_div(total, chunk);
  // Overlap accounting: another job computing while these chunks copy is
  // exactly the copy/compute overlap the serial path cannot have.
  const bool overlapped = jobs_in_flight_.load(std::memory_order_acquire) > 1;
  const Status st = engine_->parallel_for(nchunks, [&](long begin, long end) {
    for (long k = begin; k < end; ++k) {
      const Bytes off = k * chunk;
      const Bytes len = std::min(chunk, total - off);
      std::memcpy(dst + off, src + off, static_cast<std::size_t>(len));
    }
  });
  if (!st.ok()) throw std::runtime_error(st.to_string());
  stats_.bytes_copied.fetch_add(total);
  if (overlapped) stats_.overlap_bytes.fetch_add(total);
}

void RtServer::run_streamed(ClientState& client, const RtStream& stream,
                            long cap) {
  const long grid = stream.grid(client.params);
  std::span<const std::byte> in{client.staging_in.data(),
                                client.staging_in.size()};
  std::span<std::byte> out{client.staging_out.data(),
                           client.staging_out.size()};
  std::span<std::byte> vsm_in = client.input_area();
  // Chunk count: aim for copy_chunk-sized input pieces, at least two so
  // the pipeline has something to overlap, never more than the grid.
  const long by_bytes =
      ceil_div(std::max<Bytes>(1, client.bytes_in),
               std::max<Bytes>(1, config_.copy_chunk));
  const long nchunks = std::clamp(by_bytes, 2L, grid);
  obs::Tracer& tracer = obs_.tracer();
  if (grid <= 1 || nchunks < 2) {
    // Degenerate grid: plain chunked stage-in, then the whole kernel.
    const SimTime i0 = tracer.begin_span();
    copy_chunked(client.staging_in.data(), vsm_in.data(), client.bytes_in);
    tracer.end_span(i0, obs::Phase::kCopyIn, client.id, client.kernel_id);
    const SimTime k0 = tracer.begin_span();
    stream.run(in, out, client.params, 0, grid);
    tracer.end_span(k0, obs::Phase::kKernel, client.id, client.kernel_id);
    const SimTime o0 = tracer.begin_span();
    copy_chunked(client.output_area().data(), client.staging_out.data(),
                 client.bytes_out);
    tracer.end_span(o0, obs::Phase::kCopyOut, client.id, client.kernel_id);
    return;
  }
  auto chunk_begin = [&](long k) { return grid * k / nchunks; };
  auto copy_in_chunk = [&](long k) {
    // Per-chunk copy-in span: these overlap the kernel span below — the
    // trace shows exactly which copies hid under compute.
    const SimTime t0 = tracer.begin_span();
    const RtStreamView view =
        stream.input_slices(client.params, chunk_begin(k), chunk_begin(k + 1));
    Bytes bytes = 0;
    for (int s = 0; s < view.count; ++s) {
      const RtStreamSlice& slice = view.slices[s];
      if (slice.len == 0) continue;
      std::memcpy(client.staging_in.data() + slice.offset,
                  vsm_in.data() + slice.offset, slice.len);
      bytes += static_cast<Bytes>(slice.len);
    }
    tracer.end_span(t0, obs::Phase::kCopyIn, client.id, client.kernel_id);
    stats_.bytes_copied.fetch_add(bytes);
    return bytes;
  };
  // Double-buffered pipeline: while chunk k computes, one engine shard
  // copies chunk k+1's input slices in.
  copy_in_chunk(0);
  const SimTime kernel_begin = tracer.begin_span();
  for (long k = 0; k < nchunks; ++k) {
    exec::ExecEngine::Group copy_group;
    Bytes next_bytes = 0;
    if (k + 1 < nchunks) {
      const long next = k + 1;
      const Status st = engine_->launch(
          copy_group, 1,
          [&, next](long, long) { next_bytes = copy_in_chunk(next); });
      if (!st.ok()) throw std::runtime_error(st.to_string());
    }
    const long begin = chunk_begin(k);
    const long blocks = chunk_begin(k + 1) - begin;
    const Status st = engine_->parallel_for(
        blocks,
        [&](long b0, long b1) {
          stream.run(in, out, client.params, begin + b0, begin + b1);
        },
        cap);
    if (!st.ok()) throw std::runtime_error(st.to_string());
    engine_->wait(copy_group);
    if (engine_->workers() > 1 && next_bytes > 0) {
      stats_.overlap_bytes.fetch_add(next_bytes);
    }
  }
  // One kernel span for the whole pipelined grid; the per-chunk copy-in
  // spans above nest inside it (that is the overlap, rendered).
  tracer.end_span(kernel_begin, obs::Phase::kKernel, client.id,
                  client.kernel_id);
  const SimTime o0 = tracer.begin_span();
  copy_chunked(client.output_area().data(), client.staging_out.data(),
               client.bytes_out);
  tracer.end_span(o0, obs::Phase::kCopyOut, client.id, client.kernel_id);
}

void RtServer::run_sharded_job(ClientState& client) {
  const bool staged = config_.data_plane == DataPlane::kStaged;
  // Occupancy cap: the launch fans out to at most the number of blocks of
  // this kernel's geometry the modeled device can co-schedule.
  long cap = 0;
  if (const RtGeometryFn* geometry = registry_.find_geometry(client.kernel_id);
      geometry != nullptr) {
    cap = exec::occupancy_shard_cap(config_.device, (*geometry)(client.params));
  }
  if (staged) {
    if (const RtStream* stream = registry_.find_stream(client.kernel_id);
        stream != nullptr) {
      run_streamed(client, *stream, cap);
      return;
    }
  }
  obs::Tracer& tracer = obs_.tracer();
  std::span<const std::byte> in;
  std::span<std::byte> out;
  if (staged) {
    const SimTime t0 = tracer.begin_span();
    copy_chunked(client.staging_in.data(), client.input_area().data(),
                 client.bytes_in);
    tracer.end_span(t0, obs::Phase::kCopyIn, client.id, client.kernel_id);
    in = {client.staging_in.data(), client.staging_in.size()};
    out = {client.staging_out.data(), client.staging_out.size()};
  } else {
    in = client.input_area();
    out = client.output_area();
  }
  const SimTime k0 = tracer.begin_span();
  if (const RtShardedKernelFn* sharded =
          registry_.find_sharded(client.kernel_id);
      sharded != nullptr) {
    (*sharded)(in, out, client.params, engine_->executor(cap));
  } else {
    (*client.kernel)(in, out, client.params);
  }
  tracer.end_span(k0, obs::Phase::kKernel, client.id, client.kernel_id);
  if (staged) {
    const SimTime t0 = tracer.begin_span();
    copy_chunked(client.output_area().data(), client.staging_out.data(),
                 client.bytes_out);
    tracer.end_span(t0, obs::Phase::kCopyOut, client.id, client.kernel_id);
  }
}

std::function<void()> RtServer::make_graph_job(int client_id,
                                               ClientState& client) {
  VGPU_ASSERT_MSG(client.str_pending, "graph grant without a pending launch");
  client.str_pending = false;
  client.last_job_graph = true;
  client.job_done->store(false, std::memory_order_release);
  client.job_failed->store(false, std::memory_order_release);
  auto done = client.job_done;
  auto failed = client.job_failed;
  // The shared_ptr pins the graph across a concurrent re-upload or
  // session teardown; ClientState itself outlives the job (every destroy
  // path gates on job_done, see make_job).
  auto graph = client.graphs.at(client.graph_pending);
  std::array<std::int64_t, 4> bindings;
  std::memcpy(bindings.data(), client.graph_params, sizeof(client.graph_params));
  client.graph_pending = -1;  // consumed by this grant
  ClientState* state = &client;
  ipc::Doorbell door(door_shm_.as<ipc::Doorbell::Word>());
  return [this, graph, bindings, done, failed, client_id, state,
          door]() mutable {
    jobs_in_flight_.fetch_add(1, std::memory_order_acq_rel);
    bool error = false;
    try {
      run_graph_job(*state, *graph, bindings.data());
    } catch (const std::exception& e) {
      VGPU_ERROR("rt server: graph replay for client "
                 << client_id << " threw: " << e.what());
      error = true;
    } catch (...) {
      VGPU_ERROR("rt server: graph replay for client " << client_id
                                                       << " threw");
      error = true;
    }
    jobs_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    if (error) stats_.jobs_failed.fetch_add(1);
    stats_.jobs_run.fetch_add(1);
    stats_.graph_replays.fetch_add(1);
    stats_.graph_nodes_run.fetch_add(
        static_cast<long>(graph->nodes.size()));
    // Versus per-launch execution each kernel node costs a SND+STR+STP+RCV
    // exchange; the replay cost one kLaunchGraph message.
    stats_.graph_messages_saved.fetch_add(
        std::max<long>(0, 4 * graph->plan.kernel_nodes - 1));
    failed->store(error, std::memory_order_release);
    done->store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(completions_mutex_);
      completions_.push_back(client_id);
      pending_completions_.fetch_add(1, std::memory_order_release);
    }
    door.ring();
  };
}

void RtServer::run_graph_job(ClientState& client, const RtGraph& graph,
                             const std::int64_t* bindings) {
  obs::Tracer& tracer = obs_.tracer();
  const SimTime g0 = tracer.begin_span();
  // Graph nodes run zero-copy on the client's vsm data area in *both*
  // data-plane modes: copy nodes are the graph's own explicit data
  // movement, so staging on top of them would double every byte moved —
  // and the zero-copy and staged replays stay bitwise-identical.
  std::span<std::byte> data = client.data_area();
  const GraphPlan& plan = graph.plan;
  // run_unit executes on engine worker threads when a level has several
  // units, so fused-chain heads in one level increment this concurrently.
  std::atomic<long> fused_tails{0};

  const auto resolve_params = [&](const RtGraphNode& node,
                                  std::int64_t* out_params) {
    std::memcpy(out_params, node.params, sizeof(node.params));
    for (int i = 0; i < 4; ++i) {
      if (node.bindings[i] >= 0) out_params[i] = bindings[node.bindings[i]];
    }
  };

  // Executes node `idx` — and, when it heads a fused chain, the whole
  // chain as one pass over the data (exec/fusion.hpp).
  const auto run_unit = [&](int idx) {
    const RtGraphNode& node = graph.nodes[idx];
    const SimTime n0 = tracer.begin_span();
    if (node.kind == static_cast<std::int32_t>(GraphNodeKind::kCopy)) {
      std::memmove(data.data() + node.dst_offset,
                   data.data() + node.src_offset,
                   static_cast<std::size_t>(node.src_bytes));
      stats_.bytes_copied.fetch_add(node.src_bytes);
      tracer.end_span(n0, obs::Phase::kGraphNode, client.id, /*aux=*/-1);
      return;
    }
    if (plan.fuse_next[idx] >= 0) {
      // Fused chain: one stage per member, one sweep over the grid.
      std::vector<exec::FusedStage> stages;
      long grid = 0;
      long cap = 0;
      for (int k = idx; k >= 0; k = plan.fuse_next[k]) {
        const RtGraphNode* n = &graph.nodes[k];
        const RtStream* stream = registry_.find_stream(n->kernel_id);
        grid = stream->grid(n->params);
        if (const RtGeometryFn* geometry =
                registry_.find_geometry(n->kernel_id);
            geometry != nullptr) {
          const long member_cap =
              exec::occupancy_shard_cap(config_.device,
                                        (*geometry)(n->params));
          if (member_cap > 0) {
            cap = cap > 0 ? std::min(cap, member_cap) : member_cap;
          }
        }
        const std::span<const std::byte> in = data.subspan(
            static_cast<std::size_t>(n->src_offset),
            static_cast<std::size_t>(n->src_bytes));
        const std::span<std::byte> out = data.subspan(
            static_cast<std::size_t>(n->dst_offset),
            static_cast<std::size_t>(n->dst_bytes));
        stages.push_back([stream, n, in, out](long b0, long b1) {
          stream->run(in, out, n->params, b0, b1);
        });
      }
      const Status st = exec::run_fused(
          engine_.get(), grid, {stages.data(), stages.size()}, cap);
      if (!st.ok()) throw std::runtime_error(st.to_string());
      fused_tails.fetch_add(static_cast<long>(stages.size()) - 1,
                            std::memory_order_relaxed);
      tracer.end_span(n0, obs::Phase::kGraphNode, client.id, node.kernel_id);
      return;
    }
    std::int64_t params[4];
    resolve_params(node, params);
    const std::span<const std::byte> in =
        data.subspan(static_cast<std::size_t>(node.src_offset),
                     static_cast<std::size_t>(node.src_bytes));
    const std::span<std::byte> out =
        data.subspan(static_cast<std::size_t>(node.dst_offset),
                     static_cast<std::size_t>(node.dst_bytes));
    long cap = 0;
    if (const RtGeometryFn* geometry = registry_.find_geometry(node.kernel_id);
        geometry != nullptr) {
      cap = exec::occupancy_shard_cap(config_.device, (*geometry)(params));
    }
    const RtShardedKernelFn* sharded =
        engine_ != nullptr ? registry_.find_sharded(node.kernel_id) : nullptr;
    if (sharded != nullptr) {
      (*sharded)(in, out, params, engine_->executor(cap));
    } else {
      (*registry_.find(node.kernel_id))(in, out, params);
    }
    tracer.end_span(n0, obs::Phase::kGraphNode, client.id, node.kernel_id);
  };

  // Level-ordered replay: nodes of one level are mutually unordered
  // (validated conflict-free), so the engine runs them concurrently; a
  // fused chain executes as one unit at its head's level.
  std::vector<int> units;
  for (int level = 0; level < plan.level_count; ++level) {
    units.clear();
    for (int i = 0; i < static_cast<int>(graph.nodes.size()); ++i) {
      if (plan.level_of[i] == level && !plan.fused_tail[i]) {
        units.push_back(i);
      }
    }
    if (engine_ != nullptr && units.size() > 1) {
      exec::ExecEngine::Group group;
      for (const int idx : units) {
        const Status st =
            engine_->launch(group, 1, [&run_unit, idx](long, long) {
              run_unit(idx);
            });
        if (!st.ok()) throw std::runtime_error(st.to_string());
      }
      engine_->wait(group);  // rethrows the first unit exception
    } else {
      for (const int idx : units) run_unit(idx);
    }
  }
  if (const long tails = fused_tails.load(std::memory_order_relaxed);
      tails > 0) {
    stats_.graph_nodes_fused.fetch_add(tails);
  }
  tracer.end_span(g0, obs::Phase::kGraph, client.id,
                  static_cast<std::int32_t>(graph.nodes.size()));
}

}  // namespace vgpu::rt
