#include "rt/server.hpp"

#include <cstring>

#include "common/log.hpp"

namespace vgpu::rt {

RtServer::RtServer(RtServerConfig config, const KernelRegistry& registry)
    : config_(std::move(config)), registry_(registry) {
  VGPU_ASSERT(config_.expected_clients >= 1);
}

RtServer::~RtServer() { stop(); }

Status RtServer::start() {
  auto queue = ipc::MessageQueue<RtRequest>::create(config_.prefix + "_req",
                                                    /*max_messages=*/8);
  if (!queue.ok()) return queue.status();
  requests_ = std::move(*queue);
  pool_ = std::make_unique<ThreadPool>(config_.workers);
  running_.store(true);
  serve_thread_ = std::thread([this] { serve_loop(); });
  return Status::Ok();
}

void RtServer::stop() {
  if (!running_.exchange(false)) return;
  RtRequest shutdown;
  shutdown.op = RtOp::kShutdown;
  (void)requests_.send(shutdown);
  if (serve_thread_.joinable()) serve_thread_.join();
  pool_.reset();  // drains in-flight jobs
  clients_.clear();
}

void RtServer::serve_loop() {
  for (;;) {
    auto request = requests_.receive();
    if (!request.ok()) {
      VGPU_ERROR("rt server: receive failed: "
                 << request.status().to_string());
      return;
    }
    if (request->op == RtOp::kShutdown) return;
    stats_.requests.fetch_add(1);
    handle(*request);
  }
}

void RtServer::respond(ClientState& client, RtAck ack) {
  const Status st = client.resp.send(RtResponse{ack});
  if (!st.ok()) {
    VGPU_ERROR("rt server: response send failed: " << st.to_string());
  }
}

void RtServer::handle(const RtRequest& request) {
  if (request.op == RtOp::kReq) {
    handle_req(request);
    return;
  }
  auto it = clients_.find(request.client);
  if (it == clients_.end()) {
    VGPU_ERROR("rt server: request from unknown client " << request.client);
    return;
  }
  ClientState& client = it->second;
  switch (request.op) {
    case RtOp::kSnd: {
      // Stage input: virtual shared memory -> private ("pinned") buffer.
      std::memcpy(client.staging_in.data(), client.vsm.data(),
                  static_cast<std::size_t>(client.bytes_in));
      respond(client, RtAck::kAck);
      break;
    }
    case RtOp::kStr: {
      client.str_pending = true;
      ++str_count_;
      if (str_count_ >= config_.expected_clients) flush_pending();
      break;
    }
    case RtOp::kStp: {
      if (!client.job_done->load(std::memory_order_acquire)) {
        stats_.waits_sent.fetch_add(1);
        respond(client, RtAck::kWait);
        break;
      }
      // Result: staging buffer -> virtual shared memory (output area).
      std::memcpy(client.vsm.data() + client.bytes_in,
                  client.staging_out.data(),
                  static_cast<std::size_t>(client.bytes_out));
      respond(client, RtAck::kAck);
      break;
    }
    case RtOp::kRcv: {
      respond(client, RtAck::kAck);
      break;
    }
    case RtOp::kRls: {
      respond(client, RtAck::kAck);
      clients_.erase(it);
      break;
    }
    case RtOp::kReq:
    case RtOp::kShutdown:
      break;  // handled elsewhere
  }
}

void RtServer::handle_req(const RtRequest& request) {
  ClientState client;
  const std::string suffix = std::to_string(request.client);
  auto resp = ipc::MessageQueue<RtResponse>::open(config_.prefix + "_resp" +
                                                  suffix);
  if (!resp.ok()) {
    VGPU_ERROR("rt server: cannot open response queue: "
               << resp.status().to_string());
    return;
  }
  client.resp = std::move(*resp);

  // The client clamps an all-empty data plane to one byte; mirror that.
  const Bytes vsm_size =
      std::max<Bytes>(request.bytes_in + request.bytes_out, 1);
  auto vsm =
      ipc::SharedMemory::open(config_.prefix + "_vsm" + suffix, vsm_size);
  if (!vsm.ok()) {
    VGPU_ERROR("rt server: cannot open vsm: " << vsm.status().to_string());
    respond(client, RtAck::kError);
    return;
  }
  client.vsm = std::move(*vsm);

  client.kernel = registry_.find(request.kernel_id);
  if (client.kernel == nullptr) {
    VGPU_ERROR("rt server: unknown kernel id " << request.kernel_id);
    respond(client, RtAck::kError);
    return;
  }
  std::memcpy(client.params, request.params, sizeof(client.params));
  client.bytes_in = request.bytes_in;
  client.bytes_out = request.bytes_out;
  client.staging_in.resize(static_cast<std::size_t>(request.bytes_in));
  client.staging_out.resize(static_cast<std::size_t>(request.bytes_out));

  auto [it, inserted] =
      clients_.insert_or_assign(request.client, std::move(client));
  (void)inserted;
  respond(it->second, RtAck::kAck);
}

void RtServer::flush_pending() {
  stats_.flushes.fetch_add(1);
  for (auto& [id, client] : clients_) {
    if (!client.str_pending) continue;
    client.str_pending = false;
    client.job_done->store(false, std::memory_order_release);
    // The job captures raw buffer pointers; ClientState outlives the job
    // because RLS is only sent by clients after STP acknowledged
    // completion, and stop() drains the pool before clearing clients_.
    auto done = client.job_done;
    const RtKernelFn* kernel = client.kernel;
    std::span<const std::byte> in{client.staging_in.data(),
                                  client.staging_in.size()};
    std::span<std::byte> out{client.staging_out.data(),
                             client.staging_out.size()};
    const std::int64_t* params = client.params;
    pool_->submit([this, kernel, in, out, params, done] {
      (*kernel)(in, out, params);
      stats_.jobs_run.fetch_add(1);
      done->store(true, std::memory_order_release);
    });
    respond(client, RtAck::kAck);
  }
  str_count_ = 0;
}

}  // namespace vgpu::rt
