#include "rt/registry.hpp"

#include <chrono>
#include <thread>

#include "kernels/blackscholes.hpp"
#include "kernels/blas1.hpp"
#include "kernels/electrostatics.hpp"
#include "kernels/ep.hpp"
#include "kernels/matmul.hpp"
#include "kernels/mg.hpp"

namespace vgpu::rt {

int KernelRegistry::add(std::string name, RtKernelFn fn) {
  for (const Entry& e : entries_) {
    VGPU_ASSERT_MSG(e.name != name, "duplicate kernel name");
  }
  entries_.push_back(Entry{std::move(name), std::move(fn)});
  return static_cast<int>(entries_.size()) - 1;
}

StatusOr<int> KernelRegistry::id_of(const std::string& name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) return static_cast<int>(i);
  }
  return NotFound("kernel '" + name + "' not registered");
}

const RtKernelFn* KernelRegistry::find(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= entries_.size()) {
    return nullptr;
  }
  return &entries_[static_cast<std::size_t>(id)].fn;
}

const std::string* KernelRegistry::name_of(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= entries_.size()) {
    return nullptr;
  }
  return &entries_[static_cast<std::size_t>(id)].name;
}

namespace {

template <typename T>
std::span<const T> in_as(std::span<const std::byte> in, std::size_t count,
                         std::size_t offset_elems = 0) {
  VGPU_ASSERT((offset_elems + count) * sizeof(T) <= in.size());
  return {reinterpret_cast<const T*>(in.data()) + offset_elems, count};
}

template <typename T>
std::span<T> out_as(std::span<std::byte> out, std::size_t count,
                    std::size_t offset_elems = 0) {
  VGPU_ASSERT((offset_elems + count) * sizeof(T) <= out.size());
  return {reinterpret_cast<T*>(out.data()) + offset_elems, count};
}

KernelRegistry make_builtins() {
  KernelRegistry reg;

  reg.add("vecadd", [](std::span<const std::byte> in,
                       std::span<std::byte> out, const std::int64_t* p) {
    const auto n = static_cast<std::size_t>(p[0]);
    kernels::vecadd(in_as<float>(in, n), in_as<float>(in, n, n),
                    out_as<float>(out, n));
  });

  reg.add("saxpy", [](std::span<const std::byte> in, std::span<std::byte> out,
                      const std::int64_t* p) {
    const auto n = static_cast<std::size_t>(p[0]);
    auto y = out_as<float>(out, n);
    auto yin = in_as<float>(in, n, n);
    std::copy(yin.begin(), yin.end(), y.begin());
    kernels::saxpy(2.0f, in_as<float>(in, n), y);
  });

  reg.add("blackscholes", [](std::span<const std::byte> in,
                             std::span<std::byte> out,
                             const std::int64_t* p) {
    const auto n = static_cast<std::size_t>(p[0]);
    kernels::OptionBatch batch{in_as<float>(in, n), in_as<float>(in, n, n),
                               in_as<float>(in, n, 2 * n), 0.02f, 0.30f};
    kernels::black_scholes(batch, out_as<float>(out, n),
                           out_as<float>(out, n, n));
  });

  reg.add("sgemm", [](std::span<const std::byte> in, std::span<std::byte> out,
                      const std::int64_t* p) {
    const auto n = static_cast<int>(p[0]);
    const auto nn = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
    kernels::sgemm(in_as<float>(in, nn), in_as<float>(in, nn, nn),
                   out_as<float>(out, nn), n);
  });

  reg.add("ep", [](std::span<const std::byte>, std::span<std::byte> out,
                   const std::int64_t* p) {
    auto result = out_as<kernels::EpResult>(out, 1);
    result[0] = kernels::ep_chunked(static_cast<int>(p[0]),
                                    static_cast<int>(p[1]));
  });

  reg.add("reduce_sum", [](std::span<const std::byte> in,
                           std::span<std::byte> out, const std::int64_t* p) {
    const auto n = static_cast<std::size_t>(p[0]);
    out_as<float>(out, 1)[0] = kernels::reduce_sum(in_as<float>(in, n));
  });

  reg.add("dot", [](std::span<const std::byte> in, std::span<std::byte> out,
                    const std::int64_t* p) {
    const auto n = static_cast<std::size_t>(p[0]);
    out_as<float>(out, 1)[0] =
        kernels::dot(in_as<float>(in, n), in_as<float>(in, n, n));
  });

  reg.add("mg_vcycle", [](std::span<const std::byte> in,
                          std::span<std::byte> out, const std::int64_t* p) {
    const auto n = static_cast<int>(p[0]);
    const auto iterations = static_cast<int>(p[1]);
    const auto cells = static_cast<std::size_t>(n) * n * n;
    kernels::Grid3 v(n), u(n);
    auto vin = in_as<double>(in, cells);
    std::copy(vin.begin(), vin.end(), v.data().begin());
    u.fill(0.0);
    for (int it = 0; it < iterations; ++it) kernels::mg_vcycle(u, v);
    auto uout = out_as<double>(out, cells);
    std::copy(u.data().begin(), u.data().end(), uout.begin());
  });

  reg.add("coulomb_slab", [](std::span<const std::byte> in,
                             std::span<std::byte> out,
                             const std::int64_t* p) {
    const auto natoms = static_cast<std::size_t>(p[0]);
    kernels::Lattice lat;
    lat.nx = static_cast<int>(p[1]);
    lat.ny = static_cast<int>(p[2]);
    lat.spacing = 0.5f;
    lat.z = 0.0f;
    const auto points = static_cast<std::size_t>(lat.nx) *
                        static_cast<std::size_t>(lat.ny);
    kernels::coulomb_slab(in_as<kernels::Atom>(in, natoms), lat,
                          out_as<float>(out, points));
  });

  reg.add("sleep_ms", [](std::span<const std::byte>, std::span<std::byte>,
                         const std::int64_t* p) {
    std::this_thread::sleep_for(std::chrono::milliseconds(p[0]));
  });

  return reg;
}

}  // namespace

KernelRegistry& builtin_registry() {
  static KernelRegistry registry = make_builtins();
  return registry;
}

}  // namespace vgpu::rt
