#include "rt/registry.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "common/math.hpp"
#include "kernels/blackscholes.hpp"
#include "kernels/blas1.hpp"
#include "kernels/cg.hpp"
#include "kernels/electrostatics.hpp"
#include "kernels/ep.hpp"
#include "kernels/matmul.hpp"
#include "kernels/mg.hpp"

namespace vgpu::rt {

int KernelRegistry::add(std::string name, RtKernelFn fn,
                        RtShardedKernelFn sharded, RtGeometryFn geometry) {
  for (const Entry& e : entries_) {
    VGPU_ASSERT_MSG(e.name != name, "duplicate kernel name");
  }
  Entry entry;
  entry.name = std::move(name);
  entry.fn = std::move(fn);
  entry.sharded = std::move(sharded);
  entry.geometry = std::move(geometry);
  entries_.push_back(std::move(entry));
  return static_cast<int>(entries_.size()) - 1;
}

void KernelRegistry::set_stream(int id, RtStream stream) {
  VGPU_ASSERT(id >= 0 && static_cast<std::size_t>(id) < entries_.size());
  entries_[static_cast<std::size_t>(id)].stream = std::move(stream);
  entries_[static_cast<std::size_t>(id)].has_stream = true;
}

StatusOr<int> KernelRegistry::id_of(const std::string& name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) return static_cast<int>(i);
  }
  return NotFound("kernel '" + name + "' not registered");
}

const RtKernelFn* KernelRegistry::find(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= entries_.size()) {
    return nullptr;
  }
  return &entries_[static_cast<std::size_t>(id)].fn;
}

const RtShardedKernelFn* KernelRegistry::find_sharded(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= entries_.size()) {
    return nullptr;
  }
  const Entry& e = entries_[static_cast<std::size_t>(id)];
  return e.sharded ? &e.sharded : nullptr;
}

const RtGeometryFn* KernelRegistry::find_geometry(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= entries_.size()) {
    return nullptr;
  }
  const Entry& e = entries_[static_cast<std::size_t>(id)];
  return e.geometry ? &e.geometry : nullptr;
}

const RtStream* KernelRegistry::find_stream(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= entries_.size()) {
    return nullptr;
  }
  const Entry& e = entries_[static_cast<std::size_t>(id)];
  return e.has_stream ? &e.stream : nullptr;
}

const std::string* KernelRegistry::name_of(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= entries_.size()) {
    return nullptr;
  }
  return &entries_[static_cast<std::size_t>(id)].name;
}

namespace {

template <typename T>
std::span<const T> in_as(std::span<const std::byte> in, std::size_t count,
                         std::size_t offset_elems = 0) {
  VGPU_ASSERT((offset_elems + count) * sizeof(T) <= in.size());
  return {reinterpret_cast<const T*>(in.data()) + offset_elems, count};
}

template <typename T>
std::span<T> out_as(std::span<std::byte> out, std::size_t count,
                    std::size_t offset_elems = 0) {
  VGPU_ASSERT((offset_elems + count) * sizeof(T) <= out.size());
  return {reinterpret_cast<T*>(out.data()) + offset_elems, count};
}

/// Element range [lo, hi) covered by blocks [begin, end) of `block` items
/// over an n-element space.
std::pair<std::size_t, std::size_t> elem_range(long n, long block, long begin,
                                               long end) {
  return {static_cast<std::size_t>(std::min(n, begin * block)),
          static_cast<std::size_t>(std::min(n, end * block))};
}

/// The CG matrix is a pure function of (n, nz_per_row) — NPB style, fixed
/// seed — so client and server sides agree on A without shipping it.
/// Cached because building it costs more than an iteration over it.
const kernels::CsrMatrix& cg_matrix(int n, int nz_per_row) {
  static std::mutex mu;
  static std::map<std::pair<int, int>,
                  std::unique_ptr<const kernels::CsrMatrix>>
      cache;
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = cache[{n, nz_per_row}];
  if (slot == nullptr) {
    slot = std::make_unique<const kernels::CsrMatrix>(
        kernels::cg_make_matrix(n, nz_per_row, 10.0));
  }
  return *slot;
}

/// One CG iteration, the loop body of kernels::cg_solve verbatim (spmv
/// and axpys sharded through `pf`, dot reductions serial — the fixed
/// reduction order that keeps sharded runs bitwise-exact).
///   params[0]=n  params[1]=nz_per_row
///   in : [b | x | r | p]   (4n doubles; b rides along for layout parity
///                           with the solver workload, the step reads x/r/p)
///   out: [x' | r' | p']    (3n doubles)
void cg_step_body(std::span<const std::byte> in, std::span<std::byte> out,
                  const std::int64_t* p, const ParallelFor& pf) {
  const auto n = static_cast<std::size_t>(p[0]);
  const kernels::CsrMatrix& a = cg_matrix(static_cast<int>(p[0]),
                                          static_cast<int>(p[1]));
  auto x = in_as<double>(in, n, n);
  auto r = in_as<double>(in, n, 2 * n);
  auto pv = in_as<double>(in, n, 3 * n);
  auto x_next = out_as<double>(out, n);
  auto r_next = out_as<double>(out, n, n);
  auto p_next = out_as<double>(out, n, 2 * n);

  std::vector<double> ap(n);
  kernels::spmv(a, pv, ap, pf);
  double rho = 0.0;
  for (std::size_t i = 0; i < n; ++i) rho += r[i] * r[i];
  double pap = 0.0;
  for (std::size_t i = 0; i < n; ++i) pap += pv[i] * ap[i];
  const double alpha = rho / pap;
  pf(static_cast<long>(n), [&](long begin, long end) {
    for (long i = begin; i < end; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      x_next[idx] = x[idx] + alpha * pv[idx];
      r_next[idx] = r[idx] - alpha * ap[idx];
    }
  });
  double rho_next = 0.0;
  for (std::size_t i = 0; i < n; ++i) rho_next += r_next[i] * r_next[i];
  const double beta = rho_next / rho;
  pf(static_cast<long>(n), [&](long begin, long end) {
    for (long i = begin; i < end; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      p_next[idx] = r_next[idx] + beta * pv[idx];
    }
  });
}

/// One MG V-cycle continuing from the supplied iterate (unlike the
/// "mg_vcycle" builtin, which starts from u = 0 and loops internally).
///   params[0]=n
///   in : [u | v]  (2 n^3 doubles)     out: u'  (n^3 doubles)
void mg_step_body(std::span<const std::byte> in, std::span<std::byte> out,
                  const std::int64_t* p, const ParallelFor& pf) {
  const auto n = static_cast<int>(p[0]);
  const auto cells = static_cast<std::size_t>(n) * n * n;
  kernels::Grid3 u(n), v(n);
  auto uin = in_as<double>(in, cells);
  auto vin = in_as<double>(in, cells, cells);
  std::copy(uin.begin(), uin.end(), u.data().begin());
  std::copy(vin.begin(), vin.end(), v.data().begin());
  kernels::mg_vcycle(u, v, pf);
  auto uout = out_as<double>(out, cells);
  std::copy(u.data().begin(), u.data().end(), uout.begin());
}

KernelRegistry make_builtins() {
  KernelRegistry reg;

  const int vecadd_id = reg.add(
      "vecadd",
      [](std::span<const std::byte> in, std::span<std::byte> out,
         const std::int64_t* p) {
        const auto n = static_cast<std::size_t>(p[0]);
        kernels::vecadd(in_as<float>(in, n), in_as<float>(in, n, n),
                        out_as<float>(out, n));
      },
      [](std::span<const std::byte> in, std::span<std::byte> out,
         const std::int64_t* p, const ParallelFor& pf) {
        const auto n = static_cast<std::size_t>(p[0]);
        kernels::vecadd(in_as<float>(in, n), in_as<float>(in, n, n),
                        out_as<float>(out, n), pf);
      },
      [](const std::int64_t* p) { return kernels::vecadd_launch(p[0]).geometry; });
  {
    RtStream s;
    s.grid = [](const std::int64_t* p) {
      return ceil_div(p[0], kernels::kVecBlock);
    };
    s.run = [](std::span<const std::byte> in, std::span<std::byte> out,
               const std::int64_t* p, long begin, long end) {
      const auto n = static_cast<std::size_t>(p[0]);
      kernels::vecadd_blocks(in_as<float>(in, n), in_as<float>(in, n, n),
                             out_as<float>(out, n), begin, end);
    };
    s.input_slices = [](const std::int64_t* p, long begin, long end) {
      const auto [lo, hi] = elem_range(p[0], kernels::kVecBlock, begin, end);
      const auto n = static_cast<std::size_t>(p[0]);
      RtStreamView v;
      v.count = 2;
      v.slices[0] = {lo * sizeof(float), (hi - lo) * sizeof(float)};  // A
      v.slices[1] = {(n + lo) * sizeof(float), (hi - lo) * sizeof(float)};
      return v;
    };
    reg.set_stream(vecadd_id, std::move(s));
  }

  const int saxpy_id = reg.add(
      "saxpy",
      [](std::span<const std::byte> in, std::span<std::byte> out,
         const std::int64_t* p) {
        const auto n = static_cast<std::size_t>(p[0]);
        auto y = out_as<float>(out, n);
        auto yin = in_as<float>(in, n, n);
        std::copy(yin.begin(), yin.end(), y.begin());
        kernels::saxpy(2.0f, in_as<float>(in, n), y);
      },
      [](std::span<const std::byte> in, std::span<std::byte> out,
         const std::int64_t* p, const ParallelFor& pf) {
        const auto n = static_cast<std::size_t>(p[0]);
        auto y = out_as<float>(out, n);
        auto yin = in_as<float>(in, n, n);
        auto x = in_as<float>(in, n);
        pf(ceil_div(static_cast<long>(n), kernels::kVecBlock),
           [&](long begin, long end) {
             const auto [lo, hi] = elem_range(static_cast<long>(n),
                                              kernels::kVecBlock, begin, end);
             std::copy(yin.begin() + static_cast<std::ptrdiff_t>(lo),
                       yin.begin() + static_cast<std::ptrdiff_t>(hi),
                       y.begin() + static_cast<std::ptrdiff_t>(lo));
             kernels::saxpy_blocks(2.0f, x, y, begin, end);
           });
      },
      [](const std::int64_t* p) { return kernels::saxpy_launch(p[0]).geometry; });
  {
    RtStream s;
    s.grid = [](const std::int64_t* p) {
      return ceil_div(p[0], kernels::kVecBlock);
    };
    s.run = [](std::span<const std::byte> in, std::span<std::byte> out,
               const std::int64_t* p, long begin, long end) {
      const auto n = static_cast<std::size_t>(p[0]);
      auto y = out_as<float>(out, n);
      auto yin = in_as<float>(in, n, n);
      const auto [lo, hi] =
          elem_range(static_cast<long>(n), kernels::kVecBlock, begin, end);
      std::copy(yin.begin() + static_cast<std::ptrdiff_t>(lo),
                yin.begin() + static_cast<std::ptrdiff_t>(hi),
                y.begin() + static_cast<std::ptrdiff_t>(lo));
      kernels::saxpy_blocks(2.0f, in_as<float>(in, n), y, begin, end);
    };
    s.input_slices = [](const std::int64_t* p, long begin, long end) {
      const auto [lo, hi] = elem_range(p[0], kernels::kVecBlock, begin, end);
      const auto n = static_cast<std::size_t>(p[0]);
      RtStreamView v;
      v.count = 2;
      v.slices[0] = {lo * sizeof(float), (hi - lo) * sizeof(float)};  // X
      v.slices[1] = {(n + lo) * sizeof(float), (hi - lo) * sizeof(float)};
      return v;
    };
    reg.set_stream(saxpy_id, std::move(s));
  }

  const int bs_id = reg.add(
      "blackscholes",
      [](std::span<const std::byte> in, std::span<std::byte> out,
         const std::int64_t* p) {
        const auto n = static_cast<std::size_t>(p[0]);
        kernels::OptionBatch batch{in_as<float>(in, n), in_as<float>(in, n, n),
                                   in_as<float>(in, n, 2 * n), 0.02f, 0.30f};
        kernels::black_scholes(batch, out_as<float>(out, n),
                               out_as<float>(out, n, n));
      },
      [](std::span<const std::byte> in, std::span<std::byte> out,
         const std::int64_t* p, const ParallelFor& pf) {
        const auto n = static_cast<std::size_t>(p[0]);
        kernels::OptionBatch batch{in_as<float>(in, n), in_as<float>(in, n, n),
                                   in_as<float>(in, n, 2 * n), 0.02f, 0.30f};
        kernels::black_scholes(batch, out_as<float>(out, n),
                               out_as<float>(out, n, n), pf);
      },
      [](const std::int64_t* p) {
        return kernels::black_scholes_launch(p[0]).geometry;
      });
  {
    RtStream s;
    s.grid = [](const std::int64_t* p) {
      return kernels::black_scholes_blocks(p[0]);
    };
    s.run = [](std::span<const std::byte> in, std::span<std::byte> out,
               const std::int64_t* p, long begin, long end) {
      const auto n = static_cast<std::size_t>(p[0]);
      kernels::OptionBatch batch{in_as<float>(in, n), in_as<float>(in, n, n),
                                 in_as<float>(in, n, 2 * n), 0.02f, 0.30f};
      kernels::black_scholes_blocks(batch, out_as<float>(out, n),
                                    out_as<float>(out, n, n), begin, end);
    };
    s.input_slices = [](const std::int64_t* p, long begin, long end) {
      const auto [lo, hi] = elem_range(p[0], kernels::kBsBlock, begin, end);
      const auto n = static_cast<std::size_t>(p[0]);
      RtStreamView v;
      v.count = 3;  // S, X, T
      for (int op = 0; op < 3; ++op) {
        v.slices[op] = {(static_cast<std::size_t>(op) * n + lo) * sizeof(float),
                        (hi - lo) * sizeof(float)};
      }
      return v;
    };
    reg.set_stream(bs_id, std::move(s));
  }

  reg.add(
      "sgemm",
      [](std::span<const std::byte> in, std::span<std::byte> out,
         const std::int64_t* p) {
        const auto n = static_cast<int>(p[0]);
        const auto nn =
            static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
        kernels::sgemm(in_as<float>(in, nn), in_as<float>(in, nn, nn),
                       out_as<float>(out, nn), n);
      },
      [](std::span<const std::byte> in, std::span<std::byte> out,
         const std::int64_t* p, const ParallelFor& pf) {
        const auto n = static_cast<int>(p[0]);
        const auto nn =
            static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
        kernels::sgemm(in_as<float>(in, nn), in_as<float>(in, nn, nn),
                       out_as<float>(out, nn), n, pf);
      },
      [](const std::int64_t* p) {
        return kernels::matmul_launch(static_cast<int>(p[0])).geometry;
      });

  reg.add(
      "ep",
      [](std::span<const std::byte>, std::span<std::byte> out,
         const std::int64_t* p) {
        auto result = out_as<kernels::EpResult>(out, 1);
        result[0] = kernels::ep_chunked(static_cast<int>(p[0]),
                                        static_cast<int>(p[1]));
      },
      [](std::span<const std::byte>, std::span<std::byte> out,
         const std::int64_t* p, const ParallelFor& pf) {
        auto result = out_as<kernels::EpResult>(out, 1);
        result[0] = kernels::ep_chunked(static_cast<int>(p[0]),
                                        static_cast<int>(p[1]), pf);
      },
      [](const std::int64_t* p) {
        return kernels::ep_launch(static_cast<int>(p[0])).geometry;
      });

  reg.add(
      "reduce_sum",
      [](std::span<const std::byte> in, std::span<std::byte> out,
         const std::int64_t* p) {
        const auto n = static_cast<std::size_t>(p[0]);
        out_as<float>(out, 1)[0] = kernels::reduce_sum(in_as<float>(in, n));
      },
      [](std::span<const std::byte> in, std::span<std::byte> out,
         const std::int64_t* p, const ParallelFor& pf) {
        const auto n = static_cast<std::size_t>(p[0]);
        out_as<float>(out, 1)[0] = kernels::reduce_sum(in_as<float>(in, n), pf);
      },
      [](const std::int64_t* p) {
        return kernels::reduce_launch(p[0]).geometry;
      });

  reg.add(
      "dot",
      [](std::span<const std::byte> in, std::span<std::byte> out,
         const std::int64_t* p) {
        const auto n = static_cast<std::size_t>(p[0]);
        out_as<float>(out, 1)[0] =
            kernels::dot(in_as<float>(in, n), in_as<float>(in, n, n));
      },
      [](std::span<const std::byte> in, std::span<std::byte> out,
         const std::int64_t* p, const ParallelFor& pf) {
        const auto n = static_cast<std::size_t>(p[0]);
        out_as<float>(out, 1)[0] =
            kernels::dot(in_as<float>(in, n), in_as<float>(in, n, n), pf);
      },
      [](const std::int64_t* p) {
        return kernels::reduce_launch(p[0]).geometry;
      });

  reg.add(
      "mg_vcycle",
      [](std::span<const std::byte> in, std::span<std::byte> out,
         const std::int64_t* p) {
        const auto n = static_cast<int>(p[0]);
        const auto iterations = static_cast<int>(p[1]);
        const auto cells = static_cast<std::size_t>(n) * n * n;
        kernels::Grid3 v(n), u(n);
        auto vin = in_as<double>(in, cells);
        std::copy(vin.begin(), vin.end(), v.data().begin());
        u.fill(0.0);
        for (int it = 0; it < iterations; ++it) kernels::mg_vcycle(u, v);
        auto uout = out_as<double>(out, cells);
        std::copy(u.data().begin(), u.data().end(), uout.begin());
      },
      [](std::span<const std::byte> in, std::span<std::byte> out,
         const std::int64_t* p, const ParallelFor& pf) {
        const auto n = static_cast<int>(p[0]);
        const auto iterations = static_cast<int>(p[1]);
        const auto cells = static_cast<std::size_t>(n) * n * n;
        kernels::Grid3 v(n), u(n);
        auto vin = in_as<double>(in, cells);
        std::copy(vin.begin(), vin.end(), v.data().begin());
        u.fill(0.0);
        for (int it = 0; it < iterations; ++it) kernels::mg_vcycle(u, v, pf);
        auto uout = out_as<double>(out, cells);
        std::copy(u.data().begin(), u.data().end(), uout.begin());
      },
      [](const std::int64_t* p) {
        return kernels::mg_launch(static_cast<int>(p[0])).geometry;
      });

  reg.add(
      "coulomb_slab",
      [](std::span<const std::byte> in, std::span<std::byte> out,
         const std::int64_t* p) {
        const auto natoms = static_cast<std::size_t>(p[0]);
        kernels::Lattice lat;
        lat.nx = static_cast<int>(p[1]);
        lat.ny = static_cast<int>(p[2]);
        lat.spacing = 0.5f;
        lat.z = 0.0f;
        const auto points = static_cast<std::size_t>(lat.nx) *
                            static_cast<std::size_t>(lat.ny);
        kernels::coulomb_slab(in_as<kernels::Atom>(in, natoms), lat,
                              out_as<float>(out, points));
      },
      [](std::span<const std::byte> in, std::span<std::byte> out,
         const std::int64_t* p, const ParallelFor& pf) {
        const auto natoms = static_cast<std::size_t>(p[0]);
        kernels::Lattice lat;
        lat.nx = static_cast<int>(p[1]);
        lat.ny = static_cast<int>(p[2]);
        lat.spacing = 0.5f;
        lat.z = 0.0f;
        const auto points = static_cast<std::size_t>(lat.nx) *
                            static_cast<std::size_t>(lat.ny);
        kernels::coulomb_slab(in_as<kernels::Atom>(in, natoms), lat,
                              out_as<float>(out, points), 0.05f, pf);
      },
      [](const std::int64_t* p) {
        return kernels::electrostatics_launch(p[0], p[1] * p[2]).geometry;
      });

  // Single-iteration NPB steps: the graph-replay workloads chain K of
  // these into one captured DAG, with copy nodes feeding each iteration's
  // outputs back into the next iteration's input slots. Their bodies
  // mirror the corresponding solver loop body statement for statement
  // (same shard boundaries, dots serial), so K chained steps are bitwise
  // identical to K solver iterations.

  reg.add(
      "cg_step",
      [](std::span<const std::byte> in, std::span<std::byte> out,
         const std::int64_t* p) {
        cg_step_body(in, out, p, serial_executor());
      },
      [](std::span<const std::byte> in, std::span<std::byte> out,
         const std::int64_t* p, const ParallelFor& pf) {
        cg_step_body(in, out, p, pf);
      },
      [](const std::int64_t* p) {
        return kernels::cg_launch(static_cast<int>(p[0]),
                                  static_cast<int>(p[1]))
            .geometry;
      });

  reg.add(
      "mg_step",
      [](std::span<const std::byte> in, std::span<std::byte> out,
         const std::int64_t* p) {
        mg_step_body(in, out, p, serial_executor());
      },
      [](std::span<const std::byte> in, std::span<std::byte> out,
         const std::int64_t* p, const ParallelFor& pf) {
        mg_step_body(in, out, p, pf);
      },
      [](const std::int64_t* p) {
        return kernels::mg_launch(static_cast<int>(p[0])).geometry;
      });

  reg.add("sleep_ms", [](std::span<const std::byte>, std::span<std::byte>,
                         const std::int64_t* p) {
    std::this_thread::sleep_for(std::chrono::milliseconds(p[0]));
  });

  return reg;
}

}  // namespace

KernelRegistry& builtin_registry() {
  static KernelRegistry registry = make_builtins();
  return registry;
}

}  // namespace vgpu::rt
