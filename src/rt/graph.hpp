// Graph capture/replay wire format and replay planning (docs/graphs.md).
//
// An iterative client records its SND→STR→RCV sequence once as a DAG of
// copy and kernel nodes over its own vsm data area, uploads the
// serialized graph through kGraphUpload chunks, and then fires whole
// iterations with single kLaunchGraph verbs. This header defines the
// POD wire records (shared by client and server, like rt/messages.hpp),
// the deserializer/validator, and the replay plan the server computes
// once at upload time: dependency levels for concurrent execution,
// fusable elementwise chains, and the aggregate bytes/blocks a graph
// grant charges to the scheduler.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"

#include "rt/registry.hpp"

namespace vgpu::rt {

inline constexpr std::uint32_t kGraphMagic = 0x72477076;  // "vpGr"
inline constexpr std::uint32_t kGraphVersion = 1;
inline constexpr int kGraphMaxDeps = 4;
inline constexpr int kGraphMaxNodes = 4096;

enum class GraphNodeKind : std::int32_t {
  kCopy = 0,    // memmove dst <- src inside the data area
  kKernel = 1,  // registry kernel over [src, dst) spans
};

/// One recorded node. Offsets are relative to the client's vsm *data
/// area* (input area at offset 0, output area at offset bytes_in), so a
/// graph is position-independent across re-attach. Dependencies point at
/// earlier nodes only — capture order is the topological order.
struct RtGraphNode {
  std::int32_t kind = 0;       // GraphNodeKind
  std::int32_t kernel_id = -1; // kKernel only
  std::int64_t params[4] = {}; // kKernel only: literal scalar args
  /// Per-param binding slot: params[i] is replaced by the kLaunchGraph
  /// request's params[bindings[i]] at replay; -1 keeps the literal.
  /// Bound params follow the same trust model as kStr params (they must
  /// not grow the kernel's footprint past the validated spans).
  std::int32_t bindings[4] = {-1, -1, -1, -1};
  std::int64_t src_offset = 0;  // kernel input / copy source
  std::int64_t src_bytes = 0;
  std::int64_t dst_offset = 0;  // kernel output / copy destination
  std::int64_t dst_bytes = 0;
  std::int32_t deps[kGraphMaxDeps] = {-1, -1, -1, -1};
  std::int32_t dep_count = 0;
};

struct RtGraphHeader {
  std::uint32_t magic = kGraphMagic;
  std::uint32_t version = kGraphVersion;
  std::int32_t node_count = 0;
  std::int32_t reserved = 0;
  std::uint64_t hash = 0;  // graph_hash() of the node array
};

/// Deterministic FNV-1a over every node field (field-wise, so struct
/// padding never leaks into the hash). Equal recorded sequences hash
/// equal on any host.
std::uint64_t graph_hash(std::span<const RtGraphNode> nodes);

/// Header + node array as wire bytes (what kGraphUpload chunks carry).
std::vector<std::byte> serialize_graph(std::span<const RtGraphNode> nodes);

/// Replay plan, computed once at upload/validation time.
struct GraphPlan {
  /// Dependency depth per node; nodes of one level are mutually
  /// unordered and run concurrently under the engine.
  std::vector<int> level_of;
  int level_count = 0;
  /// How many nodes list node i as a dependency.
  std::vector<int> consumers;
  /// fuse_next[i] = j when kernel node j is fused onto i's chain (j's
  /// sole dep is i, i's sole consumer is j, both streamed, equal grids,
  /// no bindings, j reads what i wrote); -1 otherwise.
  std::vector<int> fuse_next;
  /// True when the node executes as part of its predecessor's chain.
  std::vector<char> fused_tail;
  Bytes copy_bytes = 0;    // aggregate copy-node traffic
  Bytes kernel_bytes = 0;  // aggregate kernel src+dst footprint
  long kernel_nodes = 0;
  /// Aggregate grid blocks across kernel nodes (streamed grid when
  /// available, else 1 per node) — the scheduler's compute-cost proxy.
  double total_blocks = 0.0;
};

struct RtGraph {
  std::vector<RtGraphNode> nodes;
  std::uint64_t hash = 0;
  GraphPlan plan;
  /// Aggregate bytes a replay moves/touches (scheduler charge).
  Bytes aggregate_bytes() const { return plan.copy_bytes + plan.kernel_bytes; }
};

/// Validates a node list against a registry and the client's data-area
/// size, and computes the replay plan. Rejects: empty/oversized graphs,
/// forward or out-of-range dependencies, spans outside [0, data_bytes),
/// kernel ids the registry does not know, overlapping kernel in/out
/// spans, out-of-range binding slots, and span conflicts between
/// mutually unordered nodes (which would race under concurrent replay —
/// copy-node self overlap is fine, memmove semantics).
StatusOr<RtGraph> plan_graph(std::vector<RtGraphNode> nodes,
                             const KernelRegistry& registry, Bytes data_bytes);

/// Deserializes wire bytes (header check + hash recompute) and plans.
StatusOr<RtGraph> parse_graph(std::span<const std::byte> bytes,
                              const KernelRegistry& registry,
                              Bytes data_bytes);

}  // namespace vgpu::rt
