#include "rt/graph.hpp"

#include <algorithm>
#include <cstring>

namespace vgpu::rt {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void hash_u64(std::uint64_t v, std::uint64_t* h) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xff;
    *h *= kFnvPrime;
  }
}

/// Spans a node reads / writes, as [offset, offset+bytes) pairs.
struct NodeSpan {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  bool overlaps(const NodeSpan& other) const {
    return begin < other.end && other.begin < end;
  }
};
NodeSpan read_span(const RtGraphNode& node) {
  return {node.src_offset, node.src_offset + node.src_bytes};
}
NodeSpan write_span(const RtGraphNode& node) {
  return {node.dst_offset, node.dst_offset + node.dst_bytes};
}

bool has_bindings(const RtGraphNode& node) {
  for (int b : node.bindings) {
    if (b >= 0) return true;
  }
  return false;
}

/// True when nodes i and j (i < j, mutually unordered) would race: a
/// write of one overlaps anything the other touches.
bool conflicts(const RtGraphNode& a, const RtGraphNode& b) {
  return write_span(a).overlaps(read_span(b)) ||
         write_span(a).overlaps(write_span(b)) ||
         write_span(b).overlaps(read_span(a));
}

}  // namespace

std::uint64_t graph_hash(std::span<const RtGraphNode> nodes) {
  std::uint64_t h = kFnvOffset;
  for (const RtGraphNode& node : nodes) {
    hash_u64(static_cast<std::uint64_t>(node.kind), &h);
    hash_u64(static_cast<std::uint64_t>(node.kernel_id), &h);
    for (std::int64_t p : node.params) {
      hash_u64(static_cast<std::uint64_t>(p), &h);
    }
    for (std::int32_t b : node.bindings) {
      hash_u64(static_cast<std::uint64_t>(b), &h);
    }
    hash_u64(static_cast<std::uint64_t>(node.src_offset), &h);
    hash_u64(static_cast<std::uint64_t>(node.src_bytes), &h);
    hash_u64(static_cast<std::uint64_t>(node.dst_offset), &h);
    hash_u64(static_cast<std::uint64_t>(node.dst_bytes), &h);
    for (std::int32_t d : node.deps) {
      hash_u64(static_cast<std::uint64_t>(d), &h);
    }
    hash_u64(static_cast<std::uint64_t>(node.dep_count), &h);
  }
  return h;
}

std::vector<std::byte> serialize_graph(std::span<const RtGraphNode> nodes) {
  RtGraphHeader header;
  header.node_count = static_cast<std::int32_t>(nodes.size());
  header.hash = graph_hash(nodes);
  std::vector<std::byte> out(sizeof(RtGraphHeader) +
                             nodes.size() * sizeof(RtGraphNode));
  std::memcpy(out.data(), &header, sizeof(header));
  if (!nodes.empty()) {
    std::memcpy(out.data() + sizeof(header), nodes.data(),
                nodes.size() * sizeof(RtGraphNode));
  }
  return out;
}

StatusOr<RtGraph> plan_graph(std::vector<RtGraphNode> nodes,
                             const KernelRegistry& registry,
                             Bytes data_bytes) {
  const int n = static_cast<int>(nodes.size());
  if (n < 1 || n > kGraphMaxNodes) {
    return InvalidArgument("graph node count out of range: " +
                           std::to_string(n));
  }
  RtGraph graph;
  GraphPlan& plan = graph.plan;
  plan.level_of.assign(nodes.size(), 0);
  plan.consumers.assign(nodes.size(), 0);
  plan.fuse_next.assign(nodes.size(), -1);
  plan.fused_tail.assign(nodes.size(), 0);

  for (int i = 0; i < n; ++i) {
    const RtGraphNode& node = nodes[i];
    if (node.kind != static_cast<std::int32_t>(GraphNodeKind::kCopy) &&
        node.kind != static_cast<std::int32_t>(GraphNodeKind::kKernel)) {
      return InvalidArgument("graph node " + std::to_string(i) +
                             ": unknown kind");
    }
    if (node.dep_count < 0 || node.dep_count > kGraphMaxDeps) {
      return InvalidArgument("graph node " + std::to_string(i) +
                             ": dep_count out of range");
    }
    int level = 0;
    for (int d = 0; d < node.dep_count; ++d) {
      const std::int32_t dep = node.deps[d];
      if (dep < 0 || dep >= i) {
        // Capture order is the topological order; forward deps are
        // either cycles or corruption.
        return InvalidArgument("graph node " + std::to_string(i) +
                               ": bad dependency " + std::to_string(dep));
      }
      plan.consumers[dep] += 1;
      level = std::max(level, plan.level_of[dep] + 1);
    }
    plan.level_of[i] = level;
    plan.level_count = std::max(plan.level_count, level + 1);

    const bool copy = node.kind == static_cast<std::int32_t>(GraphNodeKind::kCopy);
    // Overflow-free form of offset + bytes <= data_bytes: offset + bytes
    // can wrap int64 to a negative that passes a naive comparison, and
    // these fields come off the wire (the hash is client-computed, so it
    // does not protect against a crafted upload).
    const std::int64_t limit = data_bytes;
    if (node.src_bytes < 0 || node.dst_bytes < 0 || node.src_offset < 0 ||
        node.dst_offset < 0 || node.src_bytes > limit ||
        node.src_offset > limit - node.src_bytes || node.dst_bytes > limit ||
        node.dst_offset > limit - node.dst_bytes) {
      return InvalidArgument("graph node " + std::to_string(i) +
                             ": span outside the data area");
    }
    for (std::int32_t b : node.bindings) {
      if (b < -1 || b >= 4) {
        return InvalidArgument("graph node " + std::to_string(i) +
                               ": binding slot out of range");
      }
    }
    if (copy) {
      if (node.src_bytes != node.dst_bytes) {
        return InvalidArgument("graph node " + std::to_string(i) +
                               ": copy src/dst byte mismatch");
      }
      plan.copy_bytes += static_cast<Bytes>(node.src_bytes);
    } else {
      if (registry.find(node.kernel_id) == nullptr) {
        return InvalidArgument("graph node " + std::to_string(i) +
                               ": unknown kernel id " +
                               std::to_string(node.kernel_id));
      }
      if (read_span(node).overlaps(write_span(node))) {
        return InvalidArgument("graph node " + std::to_string(i) +
                               ": kernel in/out spans overlap");
      }
      plan.kernel_bytes +=
          static_cast<Bytes>(node.src_bytes + node.dst_bytes);
      plan.kernel_nodes += 1;
      const RtStream* stream = registry.find_stream(node.kernel_id);
      plan.total_blocks +=
          (stream != nullptr && !has_bindings(node))
              ? static_cast<double>(stream->grid(node.params))
              : 1.0;
    }
  }

  // Race check: mutually unordered nodes (replayed concurrently, one
  // engine Group per level) must not touch conflicting spans. Reachability
  // via per-node ancestor bitsets over the topological order.
  const int words = (n + 63) / 64;
  std::vector<std::uint64_t> reach(static_cast<std::size_t>(n) * words, 0);
  for (int i = 0; i < n; ++i) {
    std::uint64_t* row = &reach[static_cast<std::size_t>(i) * words];
    for (int d = 0; d < nodes[i].dep_count; ++d) {
      const int dep = nodes[i].deps[d];
      row[dep / 64] |= 1ull << (dep % 64);
      const std::uint64_t* dep_row = &reach[static_cast<std::size_t>(dep) * words];
      for (int w = 0; w < words; ++w) row[w] |= dep_row[w];
    }
  }
  for (int j = 1; j < n; ++j) {
    const std::uint64_t* row = &reach[static_cast<std::size_t>(j) * words];
    for (int i = 0; i < j; ++i) {
      const bool ordered = (row[i / 64] >> (i % 64)) & 1;
      if (!ordered && conflicts(nodes[i], nodes[j])) {
        return InvalidArgument("graph nodes " + std::to_string(i) + " and " +
                               std::to_string(j) +
                               " are unordered but touch overlapping spans");
      }
    }
  }

  // Fusion chains: kernel -> kernel edges where the producer's sole
  // consumer is the consumer's sole dependency, both carry stream
  // descriptors, grids match, neither has replay bindings, and the
  // consumer reads what the producer wrote. Chains extend transitively.
  std::vector<int> fuse_prev(nodes.size(), -1);
  for (int i = 0; i + 1 < n; ++i) {
    const RtGraphNode& a = nodes[i];
    if (a.kind != static_cast<std::int32_t>(GraphNodeKind::kKernel)) continue;
    if (plan.consumers[i] != 1) continue;
    // Find the unique consumer.
    int j = -1;
    for (int k = i + 1; k < n && j < 0; ++k) {
      for (int d = 0; d < nodes[k].dep_count; ++d) {
        if (nodes[k].deps[d] == i) {
          j = k;
          break;
        }
      }
    }
    if (j < 0) continue;
    const RtGraphNode& b = nodes[j];
    if (b.kind != static_cast<std::int32_t>(GraphNodeKind::kKernel)) continue;
    if (b.dep_count != 1) continue;
    if (has_bindings(a) || has_bindings(b)) continue;
    const RtStream* sa = registry.find_stream(a.kernel_id);
    const RtStream* sb = registry.find_stream(b.kernel_id);
    if (sa == nullptr || sb == nullptr) continue;
    if (sa->grid(a.params) != sb->grid(b.params)) continue;
    // b must see a's output inside its input span.
    if (a.dst_offset < b.src_offset ||
        a.dst_offset + a.dst_bytes > b.src_offset + b.src_bytes) {
      continue;
    }
    // Fused shards run block ranges out of order, so only the
    // producer->consumer containment above is protected by the per-block
    // discipline. Any other overlap between b and a member already in the
    // chain — b writing bytes an earlier stage still reads, or b reading
    // bytes a non-adjacent stage writes — lets one shard clobber or
    // stale-read another's data, diverging from serial replay. Refuse.
    bool clobbers = false;
    for (int k = i; k >= 0; k = fuse_prev[k]) {
      if (write_span(b).overlaps(read_span(nodes[k])) ||
          (k != i && read_span(b).overlaps(write_span(nodes[k])))) {
        clobbers = true;
        break;
      }
    }
    if (clobbers) continue;
    plan.fuse_next[i] = j;
    fuse_prev[j] = i;
    plan.fused_tail[j] = 1;
  }

  graph.nodes = std::move(nodes);
  graph.hash = graph_hash(graph.nodes);
  return graph;
}

StatusOr<RtGraph> parse_graph(std::span<const std::byte> bytes,
                              const KernelRegistry& registry,
                              Bytes data_bytes) {
  if (bytes.size() < sizeof(RtGraphHeader)) {
    return InvalidArgument("graph upload shorter than its header");
  }
  RtGraphHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (header.magic != kGraphMagic) {
    return InvalidArgument("graph upload magic mismatch");
  }
  if (header.version != kGraphVersion) {
    return InvalidArgument("graph upload version mismatch");
  }
  if (header.node_count < 1 || header.node_count > kGraphMaxNodes) {
    return InvalidArgument("graph upload node count out of range");
  }
  const std::size_t want =
      sizeof(RtGraphHeader) +
      static_cast<std::size_t>(header.node_count) * sizeof(RtGraphNode);
  if (bytes.size() != want) {
    return InvalidArgument("graph upload size mismatch");
  }
  std::vector<RtGraphNode> nodes(static_cast<std::size_t>(header.node_count));
  std::memcpy(nodes.data(), bytes.data() + sizeof(RtGraphHeader),
              nodes.size() * sizeof(RtGraphNode));
  if (graph_hash(nodes) != header.hash) {
    return InvalidArgument("graph upload hash mismatch");
  }
  return plan_graph(std::move(nodes), registry, data_bytes);
}

}  // namespace vgpu::rt
