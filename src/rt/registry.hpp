// Kernel registry for the live runtime.
//
// Function objects cannot travel across process boundaries, so clients name
// kernels by registry id; the GVM server executes the matching function on
// its worker pool. Client and server link the same registry (same binary or
// same library), which keeps ids stable — the moral equivalent of the
// paper's "GVM takes the requested CUDA kernel functions and prepares the
// kernels when initialized".
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace vgpu::rt {

/// A kernel: reads `in`, writes `out`; `params` carries up to four scalar
/// arguments (problem sizes etc.) from the REQ message.
using RtKernelFn = std::function<void(std::span<const std::byte> in,
                                      std::span<std::byte> out,
                                      const std::int64_t* params)>;

class KernelRegistry {
 public:
  /// Registers and returns the kernel id. Names must be unique.
  int add(std::string name, RtKernelFn fn);

  StatusOr<int> id_of(const std::string& name) const;
  const RtKernelFn* find(int id) const;
  const std::string* name_of(int id) const;
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    RtKernelFn fn;
  };
  std::vector<Entry> entries_;
};

/// Registry preloaded with the library's functional kernels:
///   "vecadd"        params[0]=n        in: [A|B] floats   out: C floats
///   "saxpy"         params[0]=n        in: [X|Y]          out: Y'
///   "blackscholes"  params[0]=n        in: [S|X|T]        out: [call|put]
///   "sgemm"         params[0]=n        in: [A|B]          out: C
///   "ep"            params[0]=m,[1]=chunks  in: none      out: EpResult
///   "sleep_ms"      params[0]=ms       (test helper: busy wait)
KernelRegistry& builtin_registry();

}  // namespace vgpu::rt
