// Kernel registry for the live runtime.
//
// Function objects cannot travel across process boundaries, so clients name
// kernels by registry id; the GVM server executes the matching function on
// its worker pool. Client and server link the same registry (same binary or
// same library), which keeps ids stable — the moral equivalent of the
// paper's "GVM takes the requested CUDA kernel functions and prepares the
// kernels when initialized".
//
// Kernels may additionally register:
//  * a sharded variant taking a ParallelFor — the execution engine's seam:
//    in --exec=sharded mode the server hands it an engine-backed executor
//    so one launch spreads across the worker pool;
//  * a geometry function mapping REQ params to the kernel's launch
//    geometry, which the server feeds to gpu/occupancy.hpp to cap the
//    shard fan-out at the modeled device's co-resident block count;
//  * a stream descriptor (block-range runner + input-slice map) enabling
//    the staged data plane to pipeline chunked input copies against
//    compute of already-copied chunks.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/status.hpp"
#include "gpu/cost.hpp"

namespace vgpu::rt {

/// A kernel: reads `in`, writes `out`; `params` carries up to four scalar
/// arguments (problem sizes etc.) from the REQ message.
using RtKernelFn = std::function<void(std::span<const std::byte> in,
                                      std::span<std::byte> out,
                                      const std::int64_t* params)>;

/// Sharded kernel variant: same contract plus a ParallelFor the body uses
/// to distribute its block loops. With serial_executor() it must produce
/// exactly what the RtKernelFn does.
using RtShardedKernelFn = std::function<void(
    std::span<const std::byte> in, std::span<std::byte> out,
    const std::int64_t* params, const ParallelFor& pf)>;

/// Launch geometry for given REQ params (occupancy-caps the shard count).
using RtGeometryFn =
    std::function<gpu::KernelGeometry(const std::int64_t* params)>;

/// Byte ranges of the input buffer a block range reads (max 4 operands).
struct RtStreamSlice {
  std::size_t offset = 0;
  std::size_t len = 0;
};
struct RtStreamView {
  int count = 0;
  RtStreamSlice slices[4];
};

/// Streamed-execution descriptor for kernels whose blocks consume disjoint
/// input slices (elementwise kernels). Lets the server overlap copy-in of
/// chunk k+1 with compute of chunk k on the staged data plane.
struct RtStream {
  /// Total block count for these params (the `run` block space).
  std::function<long(const std::int64_t* params)> grid;
  /// Executes blocks [begin, end). Must match the serial kernel bitwise.
  std::function<void(std::span<const std::byte> in, std::span<std::byte> out,
                     const std::int64_t* params, long begin, long end)>
      run;
  /// Input byte ranges blocks [begin, end) read.
  std::function<RtStreamView(const std::int64_t* params, long begin,
                             long end)>
      input_slices;
};

class KernelRegistry {
 public:
  /// Registers and returns the kernel id. Names must be unique. The
  /// sharded variant and geometry function are optional (serial-only
  /// kernels simply never fan out).
  int add(std::string name, RtKernelFn fn,
          RtShardedKernelFn sharded = nullptr, RtGeometryFn geometry = nullptr);

  /// Attaches a streamed-execution descriptor to an existing kernel.
  void set_stream(int id, RtStream stream);

  StatusOr<int> id_of(const std::string& name) const;
  const RtKernelFn* find(int id) const;
  /// Null when the kernel has no sharded variant (server falls back to
  /// the serial function).
  const RtShardedKernelFn* find_sharded(int id) const;
  const RtGeometryFn* find_geometry(int id) const;
  const RtStream* find_stream(int id) const;
  const std::string* name_of(int id) const;
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    RtKernelFn fn;
    RtShardedKernelFn sharded;
    RtGeometryFn geometry;
    RtStream stream;
    bool has_stream = false;
  };
  std::vector<Entry> entries_;
};

/// Registry preloaded with the library's functional kernels:
///   "vecadd"        params[0]=n        in: [A|B] floats   out: C floats
///   "saxpy"         params[0]=n        in: [X|Y]          out: Y'
///   "blackscholes"  params[0]=n        in: [S|X|T]        out: [call|put]
///   "sgemm"         params[0]=n        in: [A|B]          out: C
///   "ep"            params[0]=m,[1]=chunks  in: none      out: EpResult
///   "cg_step"       params[0]=n,[1]=nz  in: [b|x|r|p]  out: [x'|r'|p']
///                   (one CG iteration — graph workloads chain K of them)
///   "mg_step"       params[0]=n    in: [u|v]  out: u'  (one V-cycle
///                   continuing from u, unlike "mg_vcycle"'s u=0 loop)
///   "sleep_ms"      params[0]=ms       (test helper: busy wait)
/// All compute kernels carry sharded variants + geometry; the elementwise
/// ones (vecadd, saxpy, blackscholes) also carry stream descriptors.
KernelRegistry& builtin_registry();

}  // namespace vgpu::rt
