#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <thread>

#include "ipc/transport.hpp"
#include "rt/client.hpp"
#include "rt/registry.hpp"
#include "rt/server.hpp"
#include "workloads/trace/replay.hpp"

namespace vgpu::workloads::trace {

namespace {

using Clock = std::chrono::steady_clock;

/// Per-client shm segments left behind under `prefix` (the leak gate);
/// the server-owned _door/_arena names live until server destruction and
/// do not count.
long leaked_segments(const std::string& prefix) {
  namespace fs = std::filesystem;
  const std::string stem = prefix.substr(1);  // shm names drop the '/'
  long leaked = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator("/dev/shm", ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(stem, 0) != 0) continue;
    if (name == stem + "_door" || name == stem + "_arena") continue;
    ++leaked;
  }
  return leaked;
}

struct WorkerPlan {
  const TenantSpec* tenant = nullptr;
  JobShape shape;
  int kernel_id = -1;
  int worker = 0;        // index within the tenant
  int global_id = 0;     // RtClient id
  std::vector<std::int64_t> due_us;  // open-loop schedule (trace time)
  int closed_rounds = 0;             // closed-loop job count
};

}  // namespace

StatusOr<ReplayResult> replay_live(const Trace& trace,
                                   const LiveReplayOptions& options) {
  ipc::TransportKind transport = ipc::TransportKind::kShmRing;
  if (!ipc::parse_transport(options.transport, &transport)) {
    return InvalidArgument("unknown transport '" + options.transport + "'");
  }
  rt::DataPlane data_plane = rt::DataPlane::kZeroCopy;
  if (!rt::parse_data_plane(options.data_plane, &data_plane)) {
    return InvalidArgument("unknown data plane '" + options.data_plane +
                           "'");
  }
  rt::ExecMode exec = rt::ExecMode::kSerial;
  if (!rt::parse_exec_mode(options.exec, &exec)) {
    return InvalidArgument("unknown exec mode '" + options.exec + "'");
  }
  if (options.time_scale <= 0.0) {
    return InvalidArgument("time_scale must be positive");
  }
  const bool ring = transport == ipc::TransportKind::kShmRing;

  // One worker plan per (tenant, worker): ops partitioned by seq % W —
  // the same mapping replay_des uses.
  std::vector<WorkerPlan> workers;
  Bytes arena_need = 0;
  int next_id = 0;
  for (const TenantSpec& t : trace.tenants) {
    auto shape = job_shape(t.kernel, t.scale);
    VGPU_RETURN_IF_ERROR(shape.status());
    const auto kid = rt::builtin_registry().id_of(shape->kernel);
    VGPU_RETURN_IF_ERROR(kid.status());
    const Bytes slice = rt::vsm_region_size(
        ipc::kTransportCapMqueue | ipc::kTransportCapShmRing,
        shape->bytes_in, shape->bytes_out);
    for (int w = 0; w < t.workers; ++w) {
      WorkerPlan plan;
      plan.tenant = &t;
      plan.shape = *shape;
      plan.kernel_id = *kid;
      plan.worker = w;
      plan.global_id = next_id++;
      if (t.arrival == ArrivalKind::kClosedLoop) {
        plan.closed_rounds =
            t.jobs / t.workers + (w < t.jobs % t.workers ? 1 : 0);
      } else {
        for (const TraceOp& op : trace.ops) {
          if (op.tenant == t.id && op.seq % t.workers == w) {
            plan.due_us.push_back(op.t_us);
          }
        }
      }
      arena_need += (slice + 128) * 2;
      workers.push_back(std::move(plan));
    }
  }
  if (workers.empty()) return InvalidArgument("trace has no tenants");

  rt::RtServerConfig config;
  config.prefix = options.prefix.empty()
                      ? "/vgpu_mix_" + std::to_string(::getpid())
                      : options.prefix;
  config.expected_clients = 1;  // open loop: no SPMD wave
  config.workers = options.workers;
  config.sched = options.sched;
  config.transport = transport;
  config.data_plane = data_plane;
  config.exec = exec;
  config.max_sessions = static_cast<int>(workers.size()) + 16;
  if (ring) config.arena_size = arena_need + 64 * 1024;
  if (options.vmem) {
    config.vmem.enabled = true;
    config.vmem.page_size = 64 * 1024;
    config.vmem.device_capacity = options.vmem_device_mb * kMiB;
    config.vmem.host_ledger = 256 * kMiB;
  }
  // Slow replay threads on an oversubscribed box must not be declared
  // dead mid-run; lingering released sessions should GC quickly so the
  // leak gate can sample a quiesced server.
  config.lease_timeout = std::chrono::milliseconds(30000);
  config.lease_check_interval = std::chrono::milliseconds(20);
  config.release_linger = std::chrono::milliseconds(20);

  rt::RtServer server(config, rt::builtin_registry());
  VGPU_RETURN_IF_ERROR(server.start());
  auto ctx = rt::RtClientContext::open(config.prefix);
  if (!ctx.ok()) {
    server.stop();
    return ctx.status();
  }

  ReplayResult result;
  obs::SloAggregator agg;
  std::mutex result_mu;  // guards completed/outputs from worker threads
  for (const TenantSpec& t : trace.tenants) {
    agg.declare(t.id, t.name, t.weight,
                obs::SloTarget{t.slo_p50_ms, t.slo_p99_ms});
    result.completed[t.id] = 0;
  }
  std::atomic<long> errors{0};

  const auto start = Clock::now() + std::chrono::milliseconds(200);
  const auto wall_due = [&](std::int64_t t_us) {
    return start + std::chrono::microseconds(static_cast<std::int64_t>(
                       static_cast<double>(t_us) * options.time_scale));
  };

  std::vector<std::thread> threads;
  threads.reserve(workers.size());
  for (const WorkerPlan& plan : workers) {
    threads.emplace_back([&, &plan = plan] {
      const TenantSpec& t = *plan.tenant;
      rt::RtClientOptions copts;
      copts.transport = transport;
      copts.arena = ring;
      copts.priority = t.priority;
      copts.op_timeout = std::chrono::milliseconds(10000);
      copts.max_retries = 8;
      auto client = rt::RtClient::connect(*ctx, plan.global_id,
                                          plan.shape.bytes_in,
                                          plan.shape.bytes_out, copts);
      if (!client.ok() ||
          !client->req(plan.kernel_id, plan.shape.params).ok()) {
        errors.fetch_add(1);
        agg.record_error(t.id);
        return;
      }
      const auto fill_input = [&] {
        if (plan.shape.bytes_in > 0 && plan.shape.fill) {
          plan.shape.fill(client->input());
        }
      };
      fill_input();

      // Graph-capture tenants record the round loop once and fire each
      // job as a single kLaunchGraph verb; any capture failure falls
      // back to the plain verb loop (the job stream must go on).
      bool use_graph = false;
      if (t.graph) {
        use_graph = client->begin_capture().ok() && client->snd().ok() &&
                    client->str().ok() && client->wait_done().ok() &&
                    client->rcv().ok() && client->end_capture().ok() &&
                    client->upload_graph(/*graph_id=*/1).ok();
        // Upload travels through the input area; restore the payload.
        fill_input();
      }
      const auto run_job = [&]() -> bool {
        if (use_graph) return client->launch_graph(1).ok();
        return client->snd().ok() && client->str().ok() &&
               client->wait_done().ok() && client->rcv().ok();
      };

      long done = 0;
      if (t.arrival == ArrivalKind::kClosedLoop) {
        const auto think = std::chrono::microseconds(
            static_cast<std::int64_t>(t.think_ms * 1000.0 *
                                      options.time_scale));
        for (int r = 0; r < plan.closed_rounds; ++r) {
          const auto released = Clock::now();
          if (run_job()) {
            agg.record(t.id, std::chrono::duration<double, std::milli>(
                                 Clock::now() - released)
                                 .count());
            ++done;
          } else {
            errors.fetch_add(1);
            agg.record_error(t.id);
          }
          if (think.count() > 0 && r + 1 < plan.closed_rounds) {
            std::this_thread::sleep_for(think);
          }
        }
      } else {
        for (const std::int64_t t_us : plan.due_us) {
          const auto due = wall_due(t_us);
          std::this_thread::sleep_until(due);
          if (run_job()) {
            // Latency from the *scheduled* release: queueing delay from
            // a backed-up previous job stays charged to the tenant.
            agg.record(t.id, std::chrono::duration<double, std::milli>(
                                 Clock::now() - due)
                                 .count());
            ++done;
          } else {
            errors.fetch_add(1);
            agg.record_error(t.id);
          }
        }
      }
      {
        std::lock_guard<std::mutex> lock(result_mu);
        result.completed[t.id] += done;
        if (options.capture_outputs && plan.worker == 0 &&
            plan.shape.functional) {
          result.outputs[t.id].assign(client->output().begin(),
                                      client->output().end());
        }
      }
      if (!client->rls().ok()) {
        errors.fetch_add(1);
        agg.record_error(t.id);
      }
    });
  }
  for (auto& th : threads) th.join();
  const double makespan_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();

  // Let the serve loop GC the lingering released sessions, then sample
  // the slot ledger while the server is still the slots' owner.
  std::this_thread::sleep_for(config.release_linger +
                              4 * config.lease_check_interval +
                              std::chrono::milliseconds(100));
  const rt::RtServerStats& stats = server.stats();
  result.leaked_slots =
      stats.sessions_attached.load() - stats.slots_recycled.load();
  result.leaked_segments = leaked_segments(config.prefix);
  server.stop();

  result.errors = errors.load();
  result.makespan_ms = makespan_ms;
  result.report = agg.report(makespan_ms);
  return result;
}

}  // namespace vgpu::workloads::trace
