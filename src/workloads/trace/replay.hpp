// Replay engines for multi-tenant traces (trace.hpp): the same Trace
// drives either the DES `gvm::run_mixed` path or the live `RtServer`
// path, and both feed the same per-tenant SLO reporter (obs/slo.hpp).
//
// Both engines are open-loop and coordination-omission-safe: a job's
// latency is measured from its *scheduled* trace release time, so a
// replayer that falls behind charges the queueing delay to the tenant
// instead of silently thinning the arrival stream. Closed-loop tenants
// (batch) release their next job think_ms after the previous completion,
// as the trace's tenant descriptor says.
//
// Tenant-to-client mapping is identical on both paths: a tenant with W
// workers becomes W clients, and open-loop op `seq` lands on worker
// `seq % W` — the invariant behind the DES-vs-live cross-check (same
// per-tenant completion counts, and for functional kernels bitwise-equal
// outputs, since both paths fill inputs with the same JobShape filler).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "gpu/spec.hpp"
#include "gvm/experiment.hpp"
#include "obs/slo.hpp"
#include "sched/scheduler.hpp"
#include "workloads/trace/trace.hpp"

namespace vgpu::workloads::trace {

struct ReplayResult {
  obs::SloReport report;
  double makespan_ms = 0.0;
  std::map<int, long> completed;  // tenant -> jobs finished
  long errors = 0;
  /// Functional capture: each functional tenant's output bytes after its
  /// last job (identical across jobs — same input every round).
  std::map<int, std::vector<std::byte>> outputs;
  /// Live-only leak gates (0 on the DES path).
  long leaked_slots = 0;
  long leaked_segments = 0;
  /// DES-only details (device/scheduler counters, raw samples).
  gvm::RunResult des;
};

struct DesReplayOptions {
  bool functional = false;       // run real kernel bodies (parity kernels)
  bool capture_outputs = false;  // keep per-tenant output bytes
};

/// Replays `trace` through gvm::run_mixed on a simulated device.
/// `config.sched` picks the scheduler policy under test.
StatusOr<ReplayResult> replay_des(const Trace& trace,
                                  const gpu::DeviceSpec& spec,
                                  gvm::GvmConfig config,
                                  const DesReplayOptions& options = {});

struct LiveReplayOptions {
  sched::SchedulerConfig sched;
  std::string transport = "shm";      // shm | mq
  std::string data_plane = "zero_copy";  // staged | zero_copy
  std::string exec = "serial";        // serial | sharded
  int workers = 2;                    // server worker threads
  bool vmem = false;                  // transparent oversubscription
  Bytes vmem_device_mb = 64;
  /// Wall-clock microseconds per trace microsecond; < 1 compresses the
  /// trace for CI smoke runs (arrival *order* and latency accounting are
  /// unchanged — latency is still measured from the scaled schedule).
  double time_scale = 1.0;
  bool capture_outputs = false;
  std::string prefix;  // default: /vgpu_mix_<pid>
};

/// Replays `trace` against an in-process RtServer with threaded clients.
StatusOr<ReplayResult> replay_live(const Trace& trace,
                                   const LiveReplayOptions& options = {});

}  // namespace vgpu::workloads::trace
