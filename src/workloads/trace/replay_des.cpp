#include <cstring>
#include <memory>

#include "workloads/trace/replay.hpp"

namespace vgpu::workloads::trace {

namespace {

/// Host buffers backing one tenant's functional plans: one shared input
/// image (every job sends the same bytes — the parity precondition) and
/// one output buffer per worker.
struct TenantBuffers {
  std::vector<std::byte> input;
  std::vector<std::vector<std::byte>> outputs;  // per worker
};

}  // namespace

StatusOr<ReplayResult> replay_des(const Trace& trace,
                                  const gpu::DeviceSpec& spec,
                                  gvm::GvmConfig config,
                                  const DesReplayOptions& options) {
  std::vector<gvm::MixedClient> mix;
  std::vector<int> client_tenant;  // mix index -> tenant id
  std::map<int, TenantBuffers> buffers;
  std::map<int, bool> functional;

  for (const TenantSpec& t : trace.tenants) {
    auto shape = job_shape(t.kernel, t.scale);
    VGPU_RETURN_IF_ERROR(shape.status());
    const int workers = t.workers;
    const bool run_functional =
        options.functional && shape->functional;
    functional[t.id] = run_functional;
    TenantBuffers* bufs = nullptr;
    if (run_functional) {
      bufs = &buffers[t.id];
      bufs->input.resize(static_cast<std::size_t>(shape->bytes_in));
      if (shape->fill) shape->fill(bufs->input);
      bufs->outputs.resize(static_cast<std::size_t>(workers));
    }
    for (int w = 0; w < workers; ++w) {
      gvm::MixedClient client;
      client.plan = shape->timing_plan;
      client.plan.priority = t.priority;
      client.plan.weight = t.weight;
      if (run_functional) {
        auto& out = bufs->outputs[static_cast<std::size_t>(w)];
        out.resize(static_cast<std::size_t>(shape->bytes_out));
        client.plan.backed = true;
        client.plan.input = bufs->input.data();
        client.plan.output = out.data();
        client.plan.kernel_body = shape->body;
      }
      client.tenant = t.id;
      if (t.arrival == ArrivalKind::kClosedLoop) {
        const int jobs = t.jobs;
        client.rounds = jobs / workers + (w < jobs % workers ? 1 : 0);
        client.think = static_cast<SimDuration>(t.think_ms * 1e6);
      } else {
        client.rounds = 0;  // releases drive the round count
        for (const TraceOp& op : trace.ops) {
          if (op.tenant == t.id && op.seq % workers == w) {
            client.releases.push_back(op.t_us * 1000);  // us -> ns
          }
        }
      }
      client_tenant.push_back(t.id);
      mix.push_back(std::move(client));
    }
  }
  if (mix.empty()) return InvalidArgument("trace has no tenants");

  ReplayResult result;
  result.des = gvm::run_mixed(spec, std::move(config), mix);
  result.makespan_ms =
      static_cast<double>(result.des.turnaround) / 1e6;

  obs::SloAggregator agg;
  for (const TenantSpec& t : trace.tenants) {
    agg.declare(t.id, t.name, t.weight,
                obs::SloTarget{t.slo_p50_ms, t.slo_p99_ms});
    result.completed[t.id] = 0;
  }
  for (const gvm::RoundSample& s : result.des.samples) {
    agg.record(s.tenant, static_cast<double>(s.latency) / 1e6);
    ++result.completed[s.tenant];
  }
  result.report = agg.report(result.makespan_ms);

  if (options.capture_outputs) {
    for (const TenantSpec& t : trace.tenants) {
      if (!functional[t.id]) continue;
      const TenantBuffers& bufs = buffers[t.id];
      if (!bufs.outputs.empty()) {
        result.outputs[t.id] = bufs.outputs.front();
      }
    }
  }
  return result;
}

}  // namespace vgpu::workloads::trace
