#include "workloads/trace/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>

#include "common/rng.hpp"
#include "kernels/blackscholes.hpp"
#include "kernels/blas1.hpp"
#include "kernels/ep.hpp"
#include "kernels/matmul.hpp"
#include "workloads/workloads.hpp"

namespace vgpu::workloads::trace {

namespace {

constexpr const char* kMagic = "vgpu-mix-trace";
constexpr const char* kVersion = "v1";

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

Status parse_i64(const std::string& s, std::int64_t* out) {
  if (s.empty()) return InvalidArgument("empty integer field");
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) {
    return InvalidArgument("bad integer '" + s + "'");
  }
  *out = v;
  return Status::Ok();
}

Status parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s[0] == '-') {
    return InvalidArgument("bad unsigned integer '" + s + "'");
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) {
    return InvalidArgument("bad unsigned integer '" + s + "'");
  }
  *out = v;
  return Status::Ok();
}

Status parse_f64(const std::string& s, double* out) {
  if (s.empty()) return InvalidArgument("empty number field");
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) {
    return InvalidArgument("bad number '" + s + "'");
  }
  *out = v;
  return Status::Ok();
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) tokens.push_back(std::move(tok));
  return tokens;
}

/// FNV-1a over the kernel name, mixed with the scale: the deterministic
/// input-filler seed shared by both replay paths.
std::uint64_t shape_seed(const std::string& kernel, long scale) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : kernel) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  return h ^ (static_cast<std::uint64_t>(scale) * 0x9e3779b97f4a7c15ULL);
}

/// Open-loop arrival synthesis for one tenant. Exponential gaps from the
/// tenant's private xoshiro stream; bursty tenants draw at the boosted
/// rate and skip across idle windows; diurnal tenants thin a 2x-rate
/// stream against a triangle wave over the horizon.
void generate_ops(const TenantSpec& t, std::uint64_t mix_seed,
                  std::int64_t horizon_us, std::vector<TraceOp>* ops) {
  if (t.arrival == ArrivalKind::kClosedLoop) return;
  if (t.rate_hz <= 0.0) return;
  SplitMix64 sm(mix_seed ^
                (0x51d9f3a7b2c4e681ULL *
                 (static_cast<std::uint64_t>(t.id) + 1)));
  Rng rng(sm.next());
  const bool bursty = t.arrival == ArrivalKind::kBursty &&
                      t.burst_ms > 0.0 && t.idle_ms > 0.0;
  const double cycle_us = (t.burst_ms + t.idle_ms) * 1000.0;
  const double on_us = t.burst_ms * 1000.0;
  double rate_hz = t.rate_hz;
  if (bursty) rate_hz *= std::max(1.0, t.burst_factor);
  if (t.arrival == ArrivalKind::kDiurnal) rate_hz *= 2.0;  // thinned below
  const double mean_gap_us = 1e6 / rate_hz;

  double now_us = 0.0;
  int seq = 0;
  while (t.jobs <= 0 || seq < t.jobs) {
    const double u = rng.next_double();
    now_us += -std::log(1.0 - u) * mean_gap_us;
    if (bursty) {
      // Arrivals only exist inside on-windows: anything landing in the
      // idle tail slides to the next window's start.
      const double phase = now_us - std::floor(now_us / cycle_us) * cycle_us;
      if (phase >= on_us) now_us += cycle_us - phase;
    }
    if (now_us >= static_cast<double>(horizon_us)) break;
    if (t.arrival == ArrivalKind::kDiurnal) {
      // Triangle wave: load ramps 0 -> peak -> 0 across the horizon.
      const double frac = now_us / static_cast<double>(horizon_us);
      const double tri = 1.0 - std::fabs(2.0 * frac - 1.0);
      if (rng.next_double() >= tri) continue;  // thinned out
    }
    ops->push_back(TraceOp{static_cast<std::int64_t>(now_us), t.id, seq});
    ++seq;
  }
}

}  // namespace

const char* arrival_name(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBursty: return "bursty";
    case ArrivalKind::kDiurnal: return "diurnal";
    case ArrivalKind::kClosedLoop: return "closed_loop";
  }
  return "?";
}

StatusOr<ArrivalKind> parse_arrival(const std::string& name) {
  if (name == "poisson") return ArrivalKind::kPoisson;
  if (name == "bursty") return ArrivalKind::kBursty;
  if (name == "diurnal") return ArrivalKind::kDiurnal;
  if (name == "closed_loop") return ArrivalKind::kClosedLoop;
  return InvalidArgument("unknown arrival kind '" + name + "'");
}

const TenantSpec* Trace::find_tenant(int id) const {
  for (const TenantSpec& t : tenants) {
    if (t.id == id) return &t;
  }
  return nullptr;
}

std::string Trace::serialize() const {
  std::string out;
  out += std::string(kMagic) + " " + kVersion + "\n";
  out += "mix " + mix + "\n";
  out += "seed " + std::to_string(seed) + "\n";
  out += "horizon_us " + std::to_string(horizon_us) + "\n";
  for (const TenantSpec& t : tenants) {
    out += "tenant id=" + std::to_string(t.id) + " name=" + t.name +
           " arrival=" + arrival_name(t.arrival) + " kernel=" + t.kernel +
           " scale=" + std::to_string(t.scale) +
           " jobs=" + std::to_string(t.jobs) +
           " rate_hz=" + fmt_double(t.rate_hz) +
           " burst_factor=" + fmt_double(t.burst_factor) +
           " burst_ms=" + fmt_double(t.burst_ms) +
           " idle_ms=" + fmt_double(t.idle_ms) +
           " think_ms=" + fmt_double(t.think_ms) +
           " workers=" + std::to_string(t.workers) +
           " priority=" + std::to_string(t.priority) +
           " weight=" + fmt_double(t.weight) +
           " graph=" + (t.graph ? "1" : "0") +
           " slo_p50_ms=" + fmt_double(t.slo_p50_ms) +
           " slo_p99_ms=" + fmt_double(t.slo_p99_ms) + "\n";
  }
  for (const TraceOp& op : ops) {
    out += "op " + std::to_string(op.t_us) + " " +
           std::to_string(op.tenant) + " " + std::to_string(op.seq) + "\n";
  }
  out += "end\n";
  return out;
}

StatusOr<Trace> parse(const std::string& text) {
  std::vector<std::string> lines;
  {
    std::string::size_type pos = 0;
    while (pos <= text.size()) {
      const auto nl = text.find('\n', pos);
      if (nl == std::string::npos) {
        lines.push_back(text.substr(pos));
        break;
      }
      lines.push_back(text.substr(pos, nl - pos));
      pos = nl + 1;
    }
  }
  std::size_t i = 0;
  const auto next_line = [&]() -> const std::string* {
    return i < lines.size() ? &lines[i++] : nullptr;
  };

  const std::string* line = next_line();
  if (line == nullptr) return InvalidArgument("empty trace");
  {
    const auto header = split_ws(*line);
    if (header.size() != 2 || header[0] != kMagic) {
      return InvalidArgument("not a " + std::string(kMagic) + " file");
    }
    if (header[1] != kVersion) {
      return InvalidArgument("unsupported trace version '" + header[1] +
                             "' (this build reads " + kVersion + ")");
    }
  }

  Trace trace;
  // Fixed preamble: mix, seed, horizon_us — in that order.
  if ((line = next_line()) == nullptr) {
    return InvalidArgument("truncated trace: missing 'mix'");
  }
  {
    const auto toks = split_ws(*line);
    if (toks.size() != 2 || toks[0] != "mix") {
      return InvalidArgument("expected 'mix <name>', got '" + *line + "'");
    }
    trace.mix = toks[1];
  }
  if ((line = next_line()) == nullptr) {
    return InvalidArgument("truncated trace: missing 'seed'");
  }
  {
    const auto toks = split_ws(*line);
    if (toks.size() != 2 || toks[0] != "seed") {
      return InvalidArgument("expected 'seed <n>', got '" + *line + "'");
    }
    VGPU_RETURN_IF_ERROR(parse_u64(toks[1], &trace.seed));
  }
  if ((line = next_line()) == nullptr) {
    return InvalidArgument("truncated trace: missing 'horizon_us'");
  }
  {
    const auto toks = split_ws(*line);
    if (toks.size() != 2 || toks[0] != "horizon_us") {
      return InvalidArgument("expected 'horizon_us <n>', got '" + *line +
                             "'");
    }
    VGPU_RETURN_IF_ERROR(parse_i64(toks[1], &trace.horizon_us));
    if (trace.horizon_us < 0) {
      return InvalidArgument("negative horizon_us");
    }
  }

  const auto shapes = job_shape_names();
  std::map<int, int> next_seq;  // per-tenant expected op sequence
  bool saw_end = false;
  bool in_ops = false;
  std::int64_t last_t_us = 0;
  while ((line = next_line()) != nullptr) {
    if (saw_end) {
      if (!line->empty()) {
        return InvalidArgument("trailing data after 'end': '" + *line + "'");
      }
      continue;
    }
    const auto toks = split_ws(*line);
    if (toks.empty()) {
      return InvalidArgument("blank line inside trace body");
    }
    if (toks[0] == "end") {
      if (toks.size() != 1) {
        return InvalidArgument("malformed 'end' trailer");
      }
      saw_end = true;
      continue;
    }
    if (toks[0] == "tenant") {
      if (in_ops) {
        return InvalidArgument("tenant line after op lines");
      }
      TenantSpec t;
      bool have_id = false, have_name = false;
      for (std::size_t k = 1; k < toks.size(); ++k) {
        const auto eq = toks[k].find('=');
        if (eq == std::string::npos) {
          return InvalidArgument("tenant field without '=': '" + toks[k] +
                                 "'");
        }
        const std::string key = toks[k].substr(0, eq);
        const std::string val = toks[k].substr(eq + 1);
        std::int64_t i64 = 0;
        double f64 = 0.0;
        if (key == "id") {
          VGPU_RETURN_IF_ERROR(parse_i64(val, &i64));
          t.id = static_cast<int>(i64);
          have_id = true;
        } else if (key == "name") {
          if (val.empty()) return InvalidArgument("empty tenant name");
          t.name = val;
          have_name = true;
        } else if (key == "arrival") {
          auto kind = parse_arrival(val);
          VGPU_RETURN_IF_ERROR(kind.status());
          t.arrival = *kind;
        } else if (key == "kernel") {
          if (std::find(shapes.begin(), shapes.end(), val) == shapes.end()) {
            return InvalidArgument("unknown kernel '" + val + "'");
          }
          t.kernel = val;
        } else if (key == "scale") {
          VGPU_RETURN_IF_ERROR(parse_i64(val, &i64));
          if (i64 <= 0) return InvalidArgument("non-positive scale");
          t.scale = static_cast<long>(i64);
        } else if (key == "jobs") {
          VGPU_RETURN_IF_ERROR(parse_i64(val, &i64));
          if (i64 < 0) return InvalidArgument("negative jobs");
          t.jobs = static_cast<int>(i64);
        } else if (key == "rate_hz") {
          VGPU_RETURN_IF_ERROR(parse_f64(val, &f64));
          t.rate_hz = f64;
        } else if (key == "burst_factor") {
          VGPU_RETURN_IF_ERROR(parse_f64(val, &f64));
          t.burst_factor = f64;
        } else if (key == "burst_ms") {
          VGPU_RETURN_IF_ERROR(parse_f64(val, &f64));
          t.burst_ms = f64;
        } else if (key == "idle_ms") {
          VGPU_RETURN_IF_ERROR(parse_f64(val, &f64));
          t.idle_ms = f64;
        } else if (key == "think_ms") {
          VGPU_RETURN_IF_ERROR(parse_f64(val, &f64));
          if (f64 < 0.0) return InvalidArgument("negative think_ms");
          t.think_ms = f64;
        } else if (key == "workers") {
          VGPU_RETURN_IF_ERROR(parse_i64(val, &i64));
          if (i64 <= 0) return InvalidArgument("non-positive workers");
          t.workers = static_cast<int>(i64);
        } else if (key == "priority") {
          VGPU_RETURN_IF_ERROR(parse_i64(val, &i64));
          t.priority = static_cast<int>(i64);
        } else if (key == "weight") {
          VGPU_RETURN_IF_ERROR(parse_f64(val, &f64));
          if (f64 <= 0.0) return InvalidArgument("non-positive weight");
          t.weight = f64;
        } else if (key == "graph") {
          VGPU_RETURN_IF_ERROR(parse_i64(val, &i64));
          t.graph = i64 != 0;
        } else if (key == "slo_p50_ms") {
          VGPU_RETURN_IF_ERROR(parse_f64(val, &f64));
          t.slo_p50_ms = f64;
        } else if (key == "slo_p99_ms") {
          VGPU_RETURN_IF_ERROR(parse_f64(val, &f64));
          t.slo_p99_ms = f64;
        } else {
          return InvalidArgument("unknown tenant field '" + key + "'");
        }
      }
      if (!have_id || !have_name) {
        return InvalidArgument("tenant line missing id= or name=");
      }
      if (trace.find_tenant(t.id) != nullptr) {
        return InvalidArgument("duplicate tenant id " +
                               std::to_string(t.id));
      }
      trace.tenants.push_back(std::move(t));
      continue;
    }
    if (toks[0] == "op") {
      in_ops = true;
      if (toks.size() != 4) {
        return InvalidArgument("malformed op line '" + *line + "'");
      }
      std::int64_t t_us = 0, tenant = 0, seq = 0;
      VGPU_RETURN_IF_ERROR(parse_i64(toks[1], &t_us));
      VGPU_RETURN_IF_ERROR(parse_i64(toks[2], &tenant));
      VGPU_RETURN_IF_ERROR(parse_i64(toks[3], &seq));
      if (t_us < 0) return InvalidArgument("negative op time");
      if (t_us < last_t_us) {
        return InvalidArgument("op times out of order at t_us=" +
                               std::to_string(t_us));
      }
      const TenantSpec* spec = trace.find_tenant(static_cast<int>(tenant));
      if (spec == nullptr) {
        return InvalidArgument("op references unknown tenant " +
                               std::to_string(tenant));
      }
      if (spec->arrival == ArrivalKind::kClosedLoop) {
        return InvalidArgument("op on closed-loop tenant " +
                               std::to_string(tenant));
      }
      int& expect = next_seq[static_cast<int>(tenant)];
      if (seq != expect) {
        return InvalidArgument("op sequence gap for tenant " +
                               std::to_string(tenant) + ": expected " +
                               std::to_string(expect) + ", got " +
                               std::to_string(seq));
      }
      ++expect;
      last_t_us = t_us;
      trace.ops.push_back(TraceOp{t_us, static_cast<int>(tenant),
                                  static_cast<int>(seq)});
      continue;
    }
    return InvalidArgument("unrecognized trace line '" + *line + "'");
  }
  if (!saw_end) {
    return InvalidArgument("truncated trace: missing 'end' trailer");
  }
  return trace;
}

Trace generate(std::string mix, std::uint64_t seed,
               std::int64_t horizon_us, std::vector<TenantSpec> tenants) {
  Trace trace;
  trace.mix = std::move(mix);
  trace.seed = seed;
  trace.horizon_us = horizon_us;
  trace.tenants = std::move(tenants);
  std::sort(trace.tenants.begin(), trace.tenants.end(),
            [](const TenantSpec& a, const TenantSpec& b) {
              return a.id < b.id;
            });
  for (const TenantSpec& t : trace.tenants) {
    generate_ops(t, seed, horizon_us, &trace.ops);
  }
  std::sort(trace.ops.begin(), trace.ops.end(),
            [](const TraceOp& a, const TraceOp& b) {
              if (a.t_us != b.t_us) return a.t_us < b.t_us;
              if (a.tenant != b.tenant) return a.tenant < b.tenant;
              return a.seq < b.seq;
            });
  return trace;
}

std::vector<std::string> canonical_mix_names() {
  return {"inference_training", "risk_batch", "diurnal_frontend"};
}

StatusOr<Trace> canonical_mix(const std::string& name,
                              std::int64_t horizon_us, std::uint64_t seed) {
  constexpr std::int64_t kDefaultHorizonUs = 2'000'000;
  const std::int64_t horizon =
      horizon_us > 0 ? horizon_us : kDefaultHorizonUs;
  // Job budgets scale with the horizon so smoke traces keep the same
  // tenant structure at CI size.
  const double h = static_cast<double>(horizon) / 1e6;  // seconds
  const auto jobs_for = [&](double rate_hz) {
    return static_cast<int>(rate_hz * h) + 8;
  };

  std::vector<TenantSpec> tenants;
  if (name == "inference_training") {
    // Latency-sensitive bursty inference tenant sharing the device with a
    // closed-loop training job — the canonical co-location case.
    TenantSpec infer;
    infer.id = 0;
    infer.name = "infer";
    infer.arrival = ArrivalKind::kBursty;
    infer.kernel = "vecadd";
    infer.scale = 4096;
    infer.rate_hz = 120.0;
    infer.burst_factor = 4.0;
    infer.burst_ms = 60.0;
    infer.idle_ms = 140.0;
    infer.jobs = jobs_for(infer.rate_hz);
    infer.workers = 2;
    infer.priority = 4;
    infer.weight = 2.0;
    infer.graph = true;
    infer.slo_p50_ms = 5.0;
    infer.slo_p99_ms = 25.0;
    TenantSpec train;
    train.id = 1;
    train.name = "train";
    train.arrival = ArrivalKind::kClosedLoop;
    train.kernel = "sgemm";
    train.scale = 48;
    train.jobs = std::max(4, static_cast<int>(20.0 * h));
    train.think_ms = 2.0;
    train.workers = 1;
    train.weight = 1.0;
    tenants = {infer, train};
  } else if (name == "risk_batch") {
    // Prades et al.'s case: a bursty Monte Carlo financial-risk tenant
    // (Black-Scholes) rides along with steady service traffic and a
    // batch tenant.
    TenantSpec risk;
    risk.id = 0;
    risk.name = "risk";
    risk.arrival = ArrivalKind::kBursty;
    risk.kernel = "blackscholes";
    risk.scale = 2048;
    risk.rate_hz = 80.0;
    risk.burst_factor = 6.0;
    risk.burst_ms = 50.0;
    risk.idle_ms = 250.0;
    risk.jobs = jobs_for(risk.rate_hz);
    risk.workers = 2;
    risk.priority = 3;
    risk.weight = 2.0;
    risk.slo_p99_ms = 40.0;
    TenantSpec steady;
    steady.id = 1;
    steady.name = "steady";
    steady.arrival = ArrivalKind::kPoisson;
    steady.kernel = "vecadd";
    steady.scale = 8192;
    steady.rate_hz = 60.0;
    steady.jobs = jobs_for(steady.rate_hz);
    steady.workers = 2;
    steady.weight = 1.0;
    steady.slo_p99_ms = 30.0;
    TenantSpec batch;
    batch.id = 2;
    batch.name = "batch";
    batch.arrival = ArrivalKind::kClosedLoop;
    batch.kernel = "sgemm";
    batch.scale = 64;
    batch.jobs = std::max(4, static_cast<int>(15.0 * h));
    batch.think_ms = 1.0;
    batch.workers = 1;
    batch.weight = 1.0;
    tenants = {risk, steady, batch};
  } else if (name == "diurnal_frontend") {
    // A front-end whose load swings across the trace (day/night ramp)
    // over a steady telemetry stream and background training.
    TenantSpec front;
    front.id = 0;
    front.name = "frontend";
    front.arrival = ArrivalKind::kDiurnal;
    front.kernel = "blackscholes";
    front.scale = 1024;
    front.rate_hz = 100.0;
    front.jobs = jobs_for(front.rate_hz);
    front.workers = 2;
    front.priority = 2;
    front.weight = 2.0;
    front.slo_p50_ms = 5.0;
    front.slo_p99_ms = 30.0;
    TenantSpec telemetry;
    telemetry.id = 1;
    telemetry.name = "telemetry";
    telemetry.arrival = ArrivalKind::kPoisson;
    telemetry.kernel = "vecadd";
    telemetry.scale = 2048;
    telemetry.rate_hz = 40.0;
    telemetry.jobs = jobs_for(telemetry.rate_hz);
    telemetry.workers = 1;
    telemetry.weight = 1.0;
    telemetry.slo_p99_ms = 30.0;
    TenantSpec train;
    train.id = 2;
    train.name = "train";
    train.arrival = ArrivalKind::kClosedLoop;
    train.kernel = "sgemm";
    train.scale = 48;
    train.jobs = std::max(4, static_cast<int>(20.0 * h));
    train.think_ms = 2.0;
    train.workers = 1;
    train.weight = 1.0;
    tenants = {front, telemetry, train};
  } else {
    return InvalidArgument("unknown canonical mix '" + name +
                           "' (try: inference_training risk_batch "
                           "diurnal_frontend)");
  }
  return generate(name, seed, horizon, std::move(tenants));
}

std::vector<std::string> job_shape_names() {
  return {"vecadd", "sgemm", "blackscholes", "ep", "mg_vcycle"};
}

StatusOr<JobShape> job_shape(const std::string& kernel, long scale) {
  if (scale <= 0) return InvalidArgument("non-positive job scale");
  JobShape shape;
  shape.kernel = kernel;
  const std::uint64_t fill_seed = shape_seed(kernel, scale);
  if (kernel == "vecadd") {
    const long n = scale;
    shape.params[0] = n;
    shape.bytes_in = 2 * n * 4;
    shape.bytes_out = n * 4;
    shape.timing_plan = vector_add(n).plan;
    shape.functional = true;
    shape.fill = [n, fill_seed](std::span<std::byte> dst) {
      Rng rng(fill_seed);
      auto* f = reinterpret_cast<float*>(dst.data());
      for (long i = 0; i < 2 * n; ++i) {
        f[i] = static_cast<float>(rng.uniform(-8.0, 8.0));
      }
    };
    shape.body = [n](gvm::TaskBuffers& buffers) {
      const float* in = buffers.in->as<float>();
      float* out = buffers.out->as<float>();
      VGPU_ASSERT(in != nullptr && out != nullptr);
      const auto un = static_cast<std::size_t>(n);
      kernels::vecadd({in, un}, {in + un, un}, {out, un});
    };
  } else if (kernel == "sgemm") {
    const long n = scale;  // matrix dimension
    const auto nn = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
    shape.params[0] = n;
    shape.bytes_in = static_cast<Bytes>(2 * nn * 4);
    shape.bytes_out = static_cast<Bytes>(nn * 4);
    shape.timing_plan = matmul(static_cast<int>(n)).plan;
    shape.functional = true;
    shape.fill = [nn, fill_seed](std::span<std::byte> dst) {
      Rng rng(fill_seed);
      auto* f = reinterpret_cast<float*>(dst.data());
      for (std::size_t i = 0; i < 2 * nn; ++i) {
        f[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
      }
    };
    shape.body = [n, nn](gvm::TaskBuffers& buffers) {
      const float* in = buffers.in->as<float>();
      float* out = buffers.out->as<float>();
      VGPU_ASSERT(in != nullptr && out != nullptr);
      kernels::sgemm({in, nn}, {in + nn, nn}, {out, nn},
                     static_cast<int>(n));
    };
  } else if (kernel == "blackscholes") {
    const long n = scale;  // option count
    const auto un = static_cast<std::size_t>(n);
    shape.params[0] = n;
    shape.bytes_in = 3 * n * 4;
    shape.bytes_out = 2 * n * 4;
    shape.timing_plan = black_scholes(n, 1).plan;
    shape.functional = true;
    shape.fill = [un, fill_seed](std::span<std::byte> dst) {
      Rng rng(fill_seed);
      auto* f = reinterpret_cast<float*>(dst.data());
      for (std::size_t i = 0; i < un; ++i) {
        f[i] = static_cast<float>(rng.uniform(5.0, 30.0));            // S
        f[un + i] = static_cast<float>(rng.uniform(1.0, 100.0));      // X
        f[2 * un + i] = static_cast<float>(rng.uniform(0.25, 10.0));  // T
      }
    };
    shape.body = [un](gvm::TaskBuffers& buffers) {
      const float* in = buffers.in->as<float>();
      float* out = buffers.out->as<float>();
      VGPU_ASSERT(in != nullptr && out != nullptr);
      kernels::OptionBatch batch{{in, un}, {in + un, un},
                                 {in + 2 * un, un}, 0.02f, 0.30f};
      kernels::black_scholes(batch, {out, un}, {out + un, un});
    };
  } else if (kernel == "ep") {
    // Timing-only: the live ep kernel folds its pair counts into an
    // EpResult; the DES path runs it through the cost model.
    const long m = scale;
    shape.params[0] = m;
    shape.params[1] = 4;  // blocks
    shape.bytes_in = 0;
    shape.bytes_out = static_cast<Bytes>(sizeof(kernels::EpResult));
    shape.timing_plan = npb_ep(static_cast<int>(m)).plan;
  } else if (kernel == "mg_vcycle") {
    // Timing-only V-cycle on an n^3 grid of doubles.
    const long n = scale;
    const Bytes cells = static_cast<Bytes>(n) * n * n;
    shape.params[0] = n;
    shape.params[1] = 2;  // smoother iterations
    shape.bytes_in = cells * 8;
    shape.bytes_out = cells * 8;
    shape.timing_plan = npb_mg(static_cast<int>(n), 2).plan;
    shape.fill = [cells](std::span<std::byte> dst) {
      auto* d = reinterpret_cast<double*>(dst.data());
      for (Bytes i = 0; i < cells; ++i) {
        d[i] = 0.001 * static_cast<double>(i % 1000);
      }
    };
  } else {
    return InvalidArgument("unknown kernel '" + kernel +
                           "' (try: vecadd sgemm blackscholes ep "
                           "mg_vcycle)");
  }
  return shape;
}

}  // namespace vgpu::workloads::trace
