// Versioned, deterministic multi-tenant workload traces (ROADMAP item 5;
// docs/workloads.md).
//
// A trace is a complete, replayable description of one tenant mix: the
// tenant descriptors (arrival process, kernel + working-set scale, job
// budget, priority/weight scheduling hints, optional graph capture, SLO
// targets) plus the fully materialized open-loop arrival schedule the
// seeded generator drew for them. Both replay engines — the DES
// `gvm::run_mixed` path and the live `RtServer` path — consume the same
// Trace object, so a mix's arrival pattern is *identical* across the two
// paths and across machines: the generator uses only the repo's
// platform-stable Rng (xoshiro256** via SplitMix64) and integer/exact
// arithmetic for the arrival processes.
//
// The on-disk form is line-based text with a magic+version header and an
// `end` trailer (so truncation is detectable), round-trippable
// byte-for-byte: serialize(parse(serialize(t))) == serialize(t). Parsing
// never aborts; every malformed input comes back as a Status.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "gvm/protocol.hpp"

namespace vgpu::workloads::trace {

/// Arrival process archetypes (docs/workloads.md "tenant archetypes").
enum class ArrivalKind {
  kPoisson,     // steady open-loop stream, exponential gaps
  kBursty,      // ML-inference style on/off windows
  kDiurnal,     // slow triangle-wave load swing (front-end day/night)
  kClosedLoop,  // batch: next job released `think_ms` after completion
};

const char* arrival_name(ArrivalKind kind);
StatusOr<ArrivalKind> parse_arrival(const std::string& name);

/// One tenant descriptor. Scheduling hints map onto TaskPlan
/// priority/weight (DES) and the REQ priority field (live).
struct TenantSpec {
  int id = 0;
  std::string name;
  ArrivalKind arrival = ArrivalKind::kPoisson;
  std::string kernel = "vecadd";  // job-shape catalog name
  long scale = 4096;              // working-set scale (see job_shape)
  int jobs = 0;                   // job budget (cap for open loop)
  double rate_hz = 0.0;           // open-loop mean arrival rate
  double burst_factor = 1.0;      // bursty: on-window rate multiplier
  double burst_ms = 0.0;          // bursty: on-window length
  double idle_ms = 0.0;           // bursty: off-window length
  double think_ms = 0.0;          // closed-loop think time
  int workers = 1;                // replay concurrency (clients/threads)
  int priority = 0;
  double weight = 1.0;
  bool graph = false;  // request live graph capture for the round loop
  double slo_p50_ms = 0.0;  // 0 = no target
  double slo_p99_ms = 0.0;
};

/// One scheduled open-loop release: trace-relative microseconds, the
/// tenant it belongs to, and the tenant-local sequence number. Closed-loop
/// tenants have no ops (their releases depend on completions).
struct TraceOp {
  std::int64_t t_us = 0;
  int tenant = 0;
  int seq = 0;
};

struct Trace {
  std::string mix;  // mix name, e.g. "inference_training"
  std::uint64_t seed = 0;
  std::int64_t horizon_us = 0;
  std::vector<TenantSpec> tenants;  // tenant-id order
  std::vector<TraceOp> ops;         // non-decreasing t_us

  const TenantSpec* find_tenant(int id) const;
  std::string serialize() const;
};

/// Parses a serialized trace. Rejects — with Status, never an abort —
/// bad magic, version skew, unknown arrival kinds/keys, duplicate or
/// unknown tenant ids, ops out of order or on closed-loop tenants, and
/// truncated input (missing `end` trailer).
StatusOr<Trace> parse(const std::string& text);

/// Synthesizes the open-loop schedule for `tenants` under `seed`.
/// Deterministic: the same (mix, seed, horizon, tenants) yields a
/// bitwise-identical trace on every run and in every forked process.
Trace generate(std::string mix, std::uint64_t seed, std::int64_t horizon_us,
               std::vector<TenantSpec> tenants);

/// Canonical mixes (docs/workloads.md): "inference_training",
/// "risk_batch", "diurnal_frontend". `horizon_us` 0 keeps each mix's
/// default; smaller values make CI-smoke-sized traces with the same
/// tenant structure.
std::vector<std::string> canonical_mix_names();
StatusOr<Trace> canonical_mix(const std::string& name,
                              std::int64_t horizon_us = 0,
                              std::uint64_t seed = 42);

/// Everything the replay engines need to run one tenant's job on either
/// path: the live registry kernel + params + buffer sizes, the DES
/// cost-model plan for the same shape, and (for kernels with functional
/// parity between the DES kernel_body and the live registry function) a
/// deterministic input filler + in-process body enabling the bitwise
/// DES-vs-live cross-check.
struct JobShape {
  std::string kernel;  // live registry name
  std::int64_t params[4] = {};
  Bytes bytes_in = 0;
  Bytes bytes_out = 0;
  gvm::TaskPlan timing_plan;  // unbacked cost-model plan (DES)
  bool functional = false;
  /// Fills an input buffer of bytes_in deterministically (same bytes on
  /// both paths — the precondition for output parity).
  std::function<void(std::span<std::byte>)> fill;
  /// DES kernel body mirroring the live serial registry function.
  std::function<void(gvm::TaskBuffers&)> body;
};

StatusOr<JobShape> job_shape(const std::string& kernel, long scale);
std::vector<std::string> job_shape_names();

}  // namespace vgpu::workloads::trace
