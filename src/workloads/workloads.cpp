#include "workloads/workloads.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "kernels/blackscholes.hpp"
#include "kernels/blas1.hpp"
#include "kernels/cg.hpp"
#include "kernels/electrostatics.hpp"
#include "kernels/ep.hpp"
#include "kernels/fft.hpp"
#include "kernels/is.hpp"
#include "kernels/matmul.hpp"
#include "kernels/mg.hpp"

namespace vgpu::workloads {

// ---------------------------------------------------------------------------
// Timing workloads (paper problem sizes)
// ---------------------------------------------------------------------------

Workload vector_add(long n) {
  Workload w;
  w.name = "VectorAdd";
  w.paper_class = model::WorkloadClass::kIoIntensive;
  w.plan.bytes_in = 2 * n * 4;   // A and B
  w.plan.bytes_out = n * 4;      // C
  w.plan.kernels = {kernels::vecadd_launch(n)};
  return w;
}

Workload npb_ep(int m) {
  Workload w;
  w.name = "EP";
  w.paper_class = model::WorkloadClass::kComputeIntensive;
  w.plan.bytes_in = 0;     // EP needs no input data (paper: Tdata_in = 0)
  w.plan.bytes_out = 96;   // sums + annulus counts
  w.plan.kernels = {kernels::ep_launch(m)};
  return w;
}

Workload matmul(int n) {
  Workload w;
  w.name = "MM";
  w.paper_class = model::WorkloadClass::kIntermediate;
  const Bytes nn4 = static_cast<Bytes>(n) * n * 4;
  w.plan.bytes_in = 2 * nn4;
  w.plan.bytes_out = nn4;
  w.plan.kernels = {kernels::matmul_launch(n)};
  return w;
}

Workload npb_mg(int n, int iterations) {
  Workload w;
  w.name = "MG";
  w.paper_class = model::WorkloadClass::kComputeIntensive;
  const Bytes grid_bytes = static_cast<Bytes>(n) * n * n * 8;
  w.plan.bytes_in = grid_bytes;   // right-hand side v
  w.plan.bytes_out = grid_bytes;  // solution u
  for (int i = 0; i < iterations; ++i) {
    w.plan.kernels.push_back(kernels::mg_launch(n));
  }
  return w;
}

Workload black_scholes(long options, int rounds) {
  Workload w;
  w.name = "BlackScholes";
  w.paper_class = model::WorkloadClass::kIoIntensive;
  w.plan.bytes_in = 3 * options * 4;   // S, X, T
  w.plan.bytes_out = 2 * options * 4;  // call, put
  w.plan.kernels = {kernels::black_scholes_launch(options)};
  w.rounds = rounds;  // paper: prices refreshed over Nit = 512 rounds
  return w;
}

Workload npb_cg(int na, int iterations) {
  Workload w;
  w.name = "CG";
  w.paper_class = model::WorkloadClass::kComputeIntensive;
  const int nz_per_row = 7;
  // CSR matrix (values + columns + row pointers) and the b vector in;
  // solution vector out.
  const Bytes nnz = static_cast<Bytes>(na) * (2 * nz_per_row + 1);
  w.plan.bytes_in = nnz * 12 + static_cast<Bytes>(na) * 8;
  w.plan.bytes_out = static_cast<Bytes>(na) * 8;
  for (int i = 0; i < iterations; ++i) {
    w.plan.kernels.push_back(kernels::cg_launch(na, nz_per_row));
  }
  return w;
}

Workload electrostatics(long atoms, int slabs) {
  Workload w;
  w.name = "Electrostatics";
  w.paper_class = model::WorkloadClass::kComputeIntensive;
  const long lattice_points = 192 * 192;  // one slab = 288 blocks * 128 thr
  w.plan.bytes_in = atoms * 16;           // x, y, z, q per atom
  w.plan.bytes_out = static_cast<Bytes>(lattice_points) * 4 * slabs;
  for (int i = 0; i < slabs; ++i) {
    w.plan.kernels.push_back(
        kernels::electrostatics_launch(atoms, lattice_points));
  }
  return w;
}

std::vector<Workload> application_benchmarks() {
  return {matmul(), npb_mg(), black_scholes(), npb_cg(), electrostatics()};
}

// ---------------------------------------------------------------------------
// Functional workloads
// ---------------------------------------------------------------------------

namespace {

/// Host-side state shared between a plan's callbacks and verify().
template <typename T>
std::shared_ptr<T> make_state() {
  return std::make_shared<T>();
}

}  // namespace

FunctionalWorkload functional_vecadd(long n) {
  struct State {
    std::vector<float> input;   // [A | B]
    std::vector<float> output;  // C
  };
  auto st = make_state<State>();
  st->input.resize(static_cast<std::size_t>(2 * n));
  st->output.resize(static_cast<std::size_t>(n));
  Rng rng(101);
  for (auto& v : st->input) v = static_cast<float>(rng.uniform(-8.0, 8.0));

  FunctionalWorkload w;
  w.name = "vecadd";
  w.plan = vector_add(n).plan;
  w.plan.backed = true;
  w.plan.input = st->input.data();
  w.plan.output = st->output.data();
  w.plan.kernel_body = [n](gvm::TaskBuffers& buffers) {
    const float* in = buffers.in->as<float>();
    float* out = buffers.out->as<float>();
    VGPU_ASSERT(in != nullptr && out != nullptr);
    const auto un = static_cast<std::size_t>(n);
    kernels::vecadd({in, un}, {in + un, un}, {out, un});
  };
  w.verify = [st, n] {
    const auto un = static_cast<std::size_t>(n);
    for (std::size_t i = 0; i < un; ++i) {
      if (st->output[i] != st->input[i] + st->input[un + i]) return false;
    }
    return true;
  };
  w.state = st;
  return w;
}

FunctionalWorkload functional_matmul(int n) {
  struct State {
    std::vector<float> input;   // [A | B]
    std::vector<float> output;  // C
    std::vector<float> expect;
  };
  auto st = make_state<State>();
  const auto nn = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  st->input.resize(2 * nn);
  st->output.resize(nn);
  st->expect.resize(nn);
  Rng rng(102);
  for (auto& v : st->input) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  kernels::sgemm_reference({st->input.data(), nn},
                           {st->input.data() + nn, nn},
                           {st->expect.data(), nn}, n);

  FunctionalWorkload w;
  w.name = "matmul";
  w.plan = matmul(n).plan;
  w.plan.backed = true;
  w.plan.input = st->input.data();
  w.plan.output = st->output.data();
  w.plan.kernel_body = [n, nn](gvm::TaskBuffers& buffers) {
    const float* in = buffers.in->as<float>();
    float* out = buffers.out->as<float>();
    VGPU_ASSERT(in != nullptr && out != nullptr);
    kernels::sgemm({in, nn}, {in + nn, nn}, {out, nn}, n);
  };
  w.verify = [st, nn] {
    for (std::size_t i = 0; i < nn; ++i) {
      if (std::fabs(st->output[i] - st->expect[i]) > 1e-3f) return false;
    }
    return true;
  };
  w.state = st;
  return w;
}

FunctionalWorkload functional_blackscholes(long options) {
  struct State {
    std::vector<float> input;   // [S | X | T]
    std::vector<float> output;  // [call | put]
  };
  auto st = make_state<State>();
  const auto n = static_cast<std::size_t>(options);
  st->input.resize(3 * n);
  st->output.resize(2 * n);
  Rng rng(103);
  for (std::size_t i = 0; i < n; ++i) {
    st->input[i] = static_cast<float>(rng.uniform(5.0, 30.0));          // S
    st->input[n + i] = static_cast<float>(rng.uniform(1.0, 100.0));     // X
    st->input[2 * n + i] = static_cast<float>(rng.uniform(0.25, 10.0)); // T
  }

  FunctionalWorkload w;
  w.name = "blackscholes";
  w.plan = black_scholes(options, 1).plan;
  w.plan.backed = true;
  w.plan.input = st->input.data();
  w.plan.output = st->output.data();
  w.plan.kernel_body = [n](gvm::TaskBuffers& buffers) {
    const float* in = buffers.in->as<float>();
    float* out = buffers.out->as<float>();
    VGPU_ASSERT(in != nullptr && out != nullptr);
    kernels::OptionBatch batch{{in, n}, {in + n, n}, {in + 2 * n, n},
                               0.02f, 0.30f};
    kernels::black_scholes(batch, {out, n}, {out + n, n});
  };
  w.verify = [st, n] {
    // Put-call parity against the inputs that made the round trip.
    for (std::size_t i = 0; i < n; ++i) {
      const float s = st->input[i];
      const float x = st->input[n + i];
      const float t = st->input[2 * n + i];
      const float lhs = st->output[i] - st->output[n + i];
      const float rhs = s - x * std::exp(-0.02f * t);
      if (std::fabs(lhs - rhs) > 2e-3f * std::max(1.0f, std::fabs(rhs))) {
        return false;
      }
    }
    return true;
  };
  w.state = st;
  return w;
}

FunctionalWorkload functional_ep(int m) {
  struct State {
    kernels::EpResult output;
  };
  auto st = make_state<State>();

  FunctionalWorkload w;
  w.name = "ep";
  w.plan = npb_ep(m).plan;
  w.plan.bytes_out = static_cast<Bytes>(sizeof(kernels::EpResult));
  w.plan.backed = true;
  w.plan.output = &st->output;
  w.plan.kernel_body = [m](gvm::TaskBuffers& buffers) {
    auto* out = buffers.out->as<kernels::EpResult>();
    VGPU_ASSERT(out != nullptr);
    // Partitioned exactly like the 4-block GPU grid.
    *out = kernels::ep_chunked(m, 4);
  };
  w.verify = [st, m] {
    const kernels::EpResult expect = kernels::ep_sequential(m);
    return st->output.q == expect.q &&
           st->output.pairs_accepted == expect.pairs_accepted &&
           std::fabs(st->output.sx - expect.sx) < 1e-6 &&
           std::fabs(st->output.sy - expect.sy) < 1e-6;
  };
  w.state = st;
  return w;
}

FunctionalWorkload functional_mg(int n, int iterations) {
  struct State {
    std::vector<double> input;   // rhs v
    std::vector<double> output;  // solution u
    int n = 0;
  };
  auto st = make_state<State>();
  st->n = n;
  const kernels::Grid3 rhs = kernels::mg_make_rhs(n);
  st->input = rhs.data();
  st->output.resize(st->input.size());

  FunctionalWorkload w;
  w.name = "mg";
  w.plan = npb_mg(n, iterations).plan;
  w.plan.backed = true;
  w.plan.input = st->input.data();
  w.plan.output = st->output.data();
  w.plan.kernel_body = [n, iterations](gvm::TaskBuffers& buffers) {
    const double* in = buffers.in->as<double>();
    double* out = buffers.out->as<double>();
    VGPU_ASSERT(in != nullptr && out != nullptr);
    kernels::Grid3 v(n), u(n);
    std::memcpy(v.data().data(), in, v.data().size() * sizeof(double));
    u.fill(0.0);
    for (int it = 0; it < iterations; ++it) kernels::mg_vcycle(u, v);
    std::memcpy(out, u.data().data(), u.data().size() * sizeof(double));
  };
  w.verify = [st] {
    kernels::Grid3 v(st->n), u(st->n), zero(st->n);
    std::memcpy(v.data().data(), st->input.data(),
                st->input.size() * sizeof(double));
    std::memcpy(u.data().data(), st->output.data(),
                st->output.size() * sizeof(double));
    zero.fill(0.0);
    // The returned solution must beat the zero initial guess decisively.
    return kernels::mg_residual_norm(u, v) <
           0.5 * kernels::mg_residual_norm(zero, v);
  };
  w.state = st;
  return w;
}

FunctionalWorkload functional_cg(int na, int iterations) {
  struct State {
    kernels::CsrMatrix matrix;
    std::vector<double> input;   // b
    std::vector<double> output;  // x
  };
  auto st = make_state<State>();
  st->matrix = kernels::cg_make_matrix(na, 6, 8.0);
  st->input.resize(static_cast<std::size_t>(na));
  st->output.resize(static_cast<std::size_t>(na));
  Rng rng(104);
  for (auto& v : st->input) v = rng.uniform(-1.0, 1.0);

  FunctionalWorkload w;
  w.name = "cg";
  w.plan = npb_cg(na, iterations).plan;
  w.plan.backed = true;
  w.plan.input = st->input.data();
  w.plan.output = st->output.data();
  const kernels::CsrMatrix* matrix = &st->matrix;
  w.plan.kernel_body = [na, iterations, matrix](gvm::TaskBuffers& buffers) {
    const double* in = buffers.in->as<double>();
    double* out = buffers.out->as<double>();
    VGPU_ASSERT(in != nullptr && out != nullptr);
    kernels::cg_solve(*matrix, {in, static_cast<std::size_t>(na)},
                      {out, static_cast<std::size_t>(na)}, iterations, 1e-12);
  };
  w.verify = [st] {
    std::vector<double> ax(st->output.size());
    kernels::spmv(st->matrix, st->output, ax);
    double err = 0.0, bnorm = 0.0;
    for (std::size_t i = 0; i < ax.size(); ++i) {
      err += (st->input[i] - ax[i]) * (st->input[i] - ax[i]);
      bnorm += st->input[i] * st->input[i];
    }
    return std::sqrt(err) < 1e-6 * std::sqrt(bnorm) + 1e-9;
  };
  w.state = st;
  return w;
}

FunctionalWorkload functional_electrostatics(long atoms) {
  struct State {
    std::vector<kernels::Atom> input;
    std::vector<float> output;
    kernels::Lattice lattice{16, 16, 0.5f, 0.25f};
  };
  auto st = make_state<State>();
  st->input = kernels::make_atoms(atoms, 8.0f);
  st->output.resize(static_cast<std::size_t>(st->lattice.nx) *
                    static_cast<std::size_t>(st->lattice.ny));

  FunctionalWorkload w;
  w.name = "electrostatics";
  w.plan = electrostatics(atoms, 1).plan;
  w.plan.bytes_out = static_cast<Bytes>(st->output.size()) * 4;
  w.plan.backed = true;
  w.plan.input = st->input.data();
  w.plan.output = st->output.data();
  const kernels::Lattice lattice = st->lattice;
  const long n_atoms = atoms;
  w.plan.kernel_body = [lattice, n_atoms](gvm::TaskBuffers& buffers) {
    const auto* in = buffers.in->as<kernels::Atom>();
    float* out = buffers.out->as<float>();
    VGPU_ASSERT(in != nullptr && out != nullptr);
    const auto points = static_cast<std::size_t>(lattice.nx) *
                        static_cast<std::size_t>(lattice.ny);
    kernels::coulomb_slab({in, static_cast<std::size_t>(n_atoms)}, lattice,
                          {out, points});
  };
  w.verify = [st] {
    std::vector<float> expect(st->output.size());
    kernels::coulomb_slab(st->input, st->lattice, expect);
    for (std::size_t i = 0; i < expect.size(); ++i) {
      if (std::fabs(st->output[i] - expect[i]) > 1e-4f) return false;
    }
    return true;
  };
  w.state = st;
  return w;
}

FunctionalWorkload functional_stencil(int n) {
  struct State {
    std::vector<double> input;
    std::vector<double> output;
    int n = 0;
  };
  auto st = make_state<State>();
  st->n = n;
  const auto cells = static_cast<std::size_t>(n) * n * n;
  st->input.resize(cells);
  st->output.resize(cells);
  Rng rng(105);
  for (auto& v : st->input) v = rng.uniform(-1.0, 1.0);

  FunctionalWorkload w;
  w.name = "stencil27";
  w.plan.bytes_in = static_cast<Bytes>(cells) * 8;
  w.plan.bytes_out = static_cast<Bytes>(cells) * 8;
  w.plan.backed = true;
  w.plan.input = st->input.data();
  w.plan.output = st->output.data();
  gpu::KernelLaunch l;
  l.name = "stencil27";
  l.geometry = gpu::KernelGeometry{
      ceil_div(static_cast<long>(cells), 128L), 128, 24, 0};
  l.cost = gpu::KernelCost{/*27 reads, mul-adds*/ 54.0, 8.0 * 4.0, 0.7};
  w.plan.kernels = {l};
  w.plan.kernel_body = [n, cells](gvm::TaskBuffers& buffers) {
    const double* in = buffers.in->as<double>();
    double* out = buffers.out->as<double>();
    VGPU_ASSERT(in != nullptr && out != nullptr);
    kernels::Grid3 gin(n), gout(n);
    std::memcpy(gin.data().data(), in, cells * 8);
    kernels::apply_stencil(kernels::mg_operator_a(), gin, gout);
    std::memcpy(out, gout.data().data(), cells * 8);
  };
  w.verify = [st] {
    kernels::Grid3 gin(st->n), expect(st->n);
    std::memcpy(gin.data().data(), st->input.data(),
                st->input.size() * 8);
    kernels::apply_stencil(kernels::mg_operator_a(), gin, expect);
    for (std::size_t i = 0; i < st->output.size(); ++i) {
      if (st->output[i] != expect.data()[i]) return false;
    }
    return true;
  };
  w.state = st;
  return w;
}

FunctionalWorkload functional_pipeline(long n) {
  struct State {
    std::vector<float> input;   // [A | B]
    float output = 0.0f;        // sum of (A + B)
  };
  auto st = make_state<State>();
  st->input.resize(static_cast<std::size_t>(2 * n));
  Rng rng(106);
  for (auto& v : st->input) v = static_cast<float>(rng.uniform(-2.0, 2.0));

  FunctionalWorkload w;
  w.name = "pipeline";
  w.plan.bytes_in = 2 * n * 4;
  w.plan.bytes_out = 4;
  w.plan.backed = true;
  w.plan.input = st->input.data();
  w.plan.output = &st->output;
  w.plan.kernels = {kernels::vecadd_launch(n), kernels::reduce_launch(n)};
  // The functional body runs once, with the final kernel, and performs
  // both pipeline stages on the staged device data.
  w.plan.kernel_body = [n](gvm::TaskBuffers& buffers) {
    const float* in = buffers.in->as<float>();
    float* out = buffers.out->as<float>();
    VGPU_ASSERT(in != nullptr && out != nullptr);
    const auto un = static_cast<std::size_t>(n);
    std::vector<float> sum(un);
    kernels::vecadd({in, un}, {in + un, un}, sum);
    out[0] = kernels::reduce_sum(sum);
  };
  w.verify = [st, n] {
    const auto un = static_cast<std::size_t>(n);
    std::vector<float> sum(un);
    kernels::vecadd({st->input.data(), un}, {st->input.data() + un, un},
                    sum);
    return st->output == kernels::reduce_sum(sum);
  };
  w.state = st;
  return w;
}

Workload npb_ft(int n, int iterations) {
  Workload w;
  w.name = "FT";
  w.paper_class = model::WorkloadClass::kIntermediate;
  const Bytes field_bytes = static_cast<Bytes>(n) * n * n * 16;
  w.plan.bytes_in = field_bytes;
  w.plan.bytes_out = field_bytes;
  for (int i = 0; i < iterations; ++i) {
    w.plan.kernels.push_back(kernels::ft_launch(n));
  }
  return w;
}

Workload npb_is(long n, int max_key, int iterations) {
  Workload w;
  w.name = "IS";
  w.paper_class = model::WorkloadClass::kIoIntensive;
  w.plan.bytes_in = n * 4;
  w.plan.bytes_out = n * 8;  // ranks
  for (int i = 0; i < iterations; ++i) {
    w.plan.kernels.push_back(kernels::is_launch(n, max_key));
  }
  return w;
}

FunctionalWorkload functional_ft(int n) {
  struct State {
    std::vector<kernels::Complex> input;
    std::vector<kernels::Complex> output;
    int n = 0;
  };
  auto st = make_state<State>();
  st->n = n;
  st->input = kernels::ft_make_field(n).data();
  st->output.resize(st->input.size());

  FunctionalWorkload w;
  w.name = "ft";
  w.plan = npb_ft(n, 1).plan;
  w.plan.backed = true;
  w.plan.input = st->input.data();
  w.plan.output = st->output.data();
  w.plan.kernel_body = [n](gvm::TaskBuffers& buffers) {
    const auto* in = buffers.in->as<kernels::Complex>();
    auto* out = buffers.out->as<kernels::Complex>();
    VGPU_ASSERT(in != nullptr && out != nullptr);
    kernels::Field3 field(n);
    std::copy(in, in + field.data().size(), field.data().begin());
    kernels::fft3d(field, false);
    kernels::ft_evolve(field, /*t=*/1.0);
    kernels::fft3d(field, true);
    std::copy(field.data().begin(), field.data().end(), out);
  };
  w.verify = [st] {
    // Independent recomputation of the spectral step.
    kernels::Field3 expect(st->n);
    std::copy(st->input.begin(), st->input.end(), expect.data().begin());
    kernels::fft3d(expect, false);
    kernels::ft_evolve(expect, 1.0);
    kernels::fft3d(expect, true);
    for (std::size_t i = 0; i < st->output.size(); ++i) {
      if (std::abs(st->output[i] - expect.data()[i]) > 1e-9) return false;
    }
    return true;
  };
  w.state = st;
  return w;
}

FunctionalWorkload functional_is(long n, int max_key) {
  struct State {
    std::vector<int> input;
    std::vector<long> output;
    int max_key = 0;
  };
  auto st = make_state<State>();
  st->max_key = max_key;
  st->input = kernels::is_make_keys(n, max_key);
  st->output.resize(static_cast<std::size_t>(n));

  FunctionalWorkload w;
  w.name = "is";
  w.plan = npb_is(n, max_key, 1).plan;
  w.plan.backed = true;
  w.plan.input = st->input.data();
  w.plan.output = st->output.data();
  const int mk = max_key;
  w.plan.kernel_body = [n, mk](gvm::TaskBuffers& buffers) {
    const int* in = buffers.in->as<int>();
    long* out = buffers.out->as<long>();
    VGPU_ASSERT(in != nullptr && out != nullptr);
    const auto ranks =
        kernels::is_rank({in, static_cast<std::size_t>(n)}, mk);
    std::copy(ranks.begin(), ranks.end(), out);
  };
  w.verify = [st] {
    // Defensive: reject out-of-range ranks before scattering with them.
    for (long r : st->output) {
      if (r < 0 || r >= static_cast<long>(st->output.size())) return false;
    }
    const auto sorted = kernels::is_apply_ranks(st->input, st->output);
    if (!std::is_sorted(sorted.begin(), sorted.end())) return false;
    std::vector<int> expect = st->input;
    std::sort(expect.begin(), expect.end());
    return sorted == expect;
  };
  w.state = st;
  return w;
}

std::vector<std::string> functional_workload_names() {
  return {"vecadd", "matmul",         "blackscholes",
          "ep",     "mg",             "cg",
          "electrostatics", "stencil27", "pipeline",
          "ft",     "is"};
}

FunctionalWorkload make_functional(const std::string& name) {
  if (name == "vecadd") return functional_vecadd();
  if (name == "matmul") return functional_matmul();
  if (name == "blackscholes") return functional_blackscholes();
  if (name == "ep") return functional_ep();
  if (name == "mg") return functional_mg();
  if (name == "cg") return functional_cg();
  if (name == "electrostatics") return functional_electrostatics();
  if (name == "stencil27") return functional_stencil();
  if (name == "pipeline") return functional_pipeline();
  if (name == "ft") return functional_ft();
  if (name == "is") return functional_is();
  VGPU_ASSERT_MSG(false, "unknown functional workload");
  return {};
}

}  // namespace vgpu::workloads
