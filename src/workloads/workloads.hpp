// Benchmark workload definitions.
//
// Two forms per benchmark:
//
//  * Timing workloads at the paper's problem sizes (Tables II and IV):
//    unbacked buffers, cost-model kernels — used by the bench harness to
//    regenerate every figure/table. Problem data never materializes, so a
//    50M-element vector addition costs no host memory.
//
//  * Functional workloads at reduced sizes: backed buffers and kernel
//    bodies that really compute, with a verify() oracle — used by
//    integration tests to prove the GVM data path end to end.
//
// Paper workload inventory (Tables II & IV):
//   VectorAdd  50M floats, grid 50K, I/O-intensive
//   EP         class B (M=30), grid 4, compute-intensive
//   MM         2048x2048 SGEMM, grid 4096, intermediate
//   MG         class S (32^3, 4 iters), grid 64, compute-intensive
//   BlackScholes 1M options, Nit=512, grid 480, I/O-intensive
//   CG         class S (NA=1400, 15 iters), grid 8, compute-intensive
//   Electrostatics 100K atoms, 25 slabs, grid 288, compute-intensive
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gvm/protocol.hpp"
#include "model/model.hpp"

namespace vgpu::workloads {

/// A timing workload: per-round task plan + round count + the class label
/// the paper assigns (Table IV).
struct Workload {
  std::string name;
  gvm::TaskPlan plan;
  int rounds = 1;
  model::WorkloadClass paper_class = model::WorkloadClass::kIntermediate;
};

// --- paper-scale timing workloads -------------------------------------------

Workload vector_add(long n = 50'000'000);
Workload npb_ep(int m = 30);
Workload matmul(int n = 2048);
Workload npb_mg(int n = 32, int iterations = 4);
Workload black_scholes(long options = 1'000'000, int rounds = 512);
Workload npb_cg(int na = 1400, int iterations = 15);
Workload electrostatics(long atoms = 100'000, int slabs = 25);

/// The five Table IV application benchmarks (paper Figures 11-16 order:
/// MM, MG, BlackScholes, CG, Electrostatics).
std::vector<Workload> application_benchmarks();

// --- functional workloads ----------------------------------------------------

/// A reduced-size workload whose kernels really compute; verify() checks
/// the results that traveled through the full VGPU data path.
struct FunctionalWorkload {
  std::string name;
  gvm::TaskPlan plan;
  int rounds = 1;
  std::function<bool()> verify;
  std::shared_ptr<void> state;  // owns host data the plan points into
};

FunctionalWorkload functional_vecadd(long n = 4096);
FunctionalWorkload functional_matmul(int n = 48);
FunctionalWorkload functional_blackscholes(long options = 512);
FunctionalWorkload functional_ep(int m = 12);
FunctionalWorkload functional_mg(int n = 16, int iterations = 2);
FunctionalWorkload functional_cg(int na = 128, int iterations = 40);
FunctionalWorkload functional_electrostatics(long atoms = 64);
/// 27-point stencil sweep on an n^3 periodic grid (extension workload).
FunctionalWorkload functional_stencil(int n = 12);
/// Two-kernel pipeline: vecadd then sum-reduction of the result — a
/// multi-kernel TaskPlan exercised end to end.
FunctionalWorkload functional_pipeline(long n = 2048);
/// NPB FT (extension): forward 3-D FFT + evolve + inverse on an n^3 field.
FunctionalWorkload functional_ft(int n = 8);
/// NPB IS (extension): counting-sort key ranking.
FunctionalWorkload functional_is(long n = 8192, int max_key = 512);

/// NPB FT / IS timing workloads (extension; class-S-like sizes).
Workload npb_ft(int n = 64, int iterations = 6);
Workload npb_is(long n = 1 << 23, int max_key = 1 << 19, int iterations = 10);

/// All functional workloads (used by parameterized integration tests).
std::vector<std::string> functional_workload_names();
FunctionalWorkload make_functional(const std::string& name);

}  // namespace vgpu::workloads
