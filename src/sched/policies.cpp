#include "sched/policies.hpp"

#include <algorithm>
#include <cmath>

#include "common/status.hpp"

namespace vgpu::sched {

// ---------------------------------------------------------------------------
// BarrierCoFlush
// ---------------------------------------------------------------------------

void BarrierCoFlush::do_admit(Client&, SimTime) {
  // A new member (typically the crashed rank re-attaching) restores one
  // unit of discounted width.
  if (failures_ > 0) --failures_;
}

void BarrierCoFlush::do_failure(int client, SimTime now) {
  do_release(client, now);
  ++failures_;
}

std::vector<int> BarrierCoFlush::do_pick(SimTime) {
  if (clients_.empty()) return {};
  int width = config_.barrier_width - failures_;
  if (config_.dynamic_width) {
    width = std::min(width, static_cast<int>(clients_.size()));
  }
  width = std::max(width, 1);

  std::vector<int> cohort;
  for (const auto& [id, client] : clients_) {
    if (client.pending) cohort.push_back(id);
  }
  if (static_cast<int>(cohort.size()) < width) return {};
  if (config_.flush_order != FlushOrder::kFifo) {
    const bool ascending = config_.flush_order == FlushOrder::kSmallestFirst;
    std::stable_sort(cohort.begin(), cohort.end(),
                     [this, ascending](int a, int b) {
                       const Bytes lhs = find(a)->request.bytes_in;
                       const Bytes rhs = find(b)->request.bytes_in;
                       return ascending ? lhs < rhs : lhs > rhs;
                     });
  }
  return cohort;
}

// ---------------------------------------------------------------------------
// TimeQuantum
// ---------------------------------------------------------------------------

void TimeQuantum::do_release(int client, SimTime) {
  if (holder_ == client) holder_ = -1;
  std::erase(queue_, client);
}

void TimeQuantum::do_enqueue(Client& client, SimTime now) {
  if (client.request.client == holder_) {
    last_activity_ = now;
    return;
  }
  queue_.push_back(client.request.client);
}

void TimeQuantum::take_ownership(int client, SimTime now) {
  holder_ = client;
  window_end_ = now + config_.quantum;
  last_activity_ = now;
  resident_hold_counted_ = false;
  ++stats_.quanta_granted;
}

void TimeQuantum::rotate(SimTime now) {
  VGPU_ASSERT(!queue_.empty());
  if (holder_ != -1) {
    Client* old = find(holder_);
    if (old != nullptr && old->pending) queue_.push_back(holder_);
    ++stats_.rotations;
  }
  const int next = queue_.front();
  queue_.pop_front();
  take_ownership(next, now);
}

SimTime TimeQuantum::release_time() const {
  // Anti-thrash (nvshare's TQ design): while the holder's working set is
  // device-resident, an idle holder keeps its full window — rotating
  // would page the set out only to page it back moments later. Once the
  // pager has evicted it (or no pager runs), plain hysteresis applies.
  const auto it = clients_.find(holder_);
  if (it != clients_.end() && it->second.resident) return window_end_;
  return std::min(window_end_, last_activity_ + config_.hysteresis);
}

std::vector<int> TimeQuantum::do_pick(SimTime now) {
  if (holder_ == -1) {
    if (queue_.empty()) return {};
    const int next = queue_.front();
    queue_.pop_front();
    take_ownership(next, now);
  }
  Client* h = find(holder_);
  VGPU_ASSERT(h != nullptr);
  if (h->pending) {
    // The holder dispatches freely within its window, and keeps the device
    // past expiry while nobody else waits (work conservation).
    if (now < window_end_ || queue_.empty()) {
      last_activity_ = now;
      return {holder_};
    }
    // Window over with waiters queued: rotate once the in-flight round
    // drains (rounds are not preemptible).
    if (in_flight_ > 0) return {};
    rotate(now);
    return {holder_};
  }
  // Holder has nothing pending.
  if (in_flight_ > 0 || queue_.empty()) return {};
  // Anti-thrash: give the idle holder a grace period to submit its next
  // round before ownership (and, under memory pressure, its working set)
  // moves. next_wakeup() re-polls us when the grace expires.
  if (now < release_time()) {
    const SimTime plain_grace =
        std::min(window_end_, last_activity_ + config_.hysteresis);
    if (now >= plain_grace && !resident_hold_counted_) {
      // Holding only because the working set is resident.
      resident_hold_counted_ = true;
      ++stats_.resident_holds;
    }
    return {};
  }
  rotate(now);
  return {holder_};
}

void TimeQuantum::do_complete(int, SimTime now) { last_activity_ = now; }

SimTime TimeQuantum::next_wakeup(SimTime now) const {
  if (holder_ == -1 || in_flight_ > 0 || queue_.empty()) return kTimeInfinity;
  const auto it = clients_.find(holder_);
  if (it != clients_.end() && it->second.pending) return kTimeInfinity;
  return std::max(release_time(), now);
}

// ---------------------------------------------------------------------------
// FairShare
// ---------------------------------------------------------------------------

double FairShare::deficit(int client) const {
  const auto it = clients_.find(client);
  return it == clients_.end() ? 0.0 : it->second.deficit;
}

void FairShare::do_release(int client, SimTime) {
  const auto it = std::find(ring_.begin(), ring_.end(), client);
  if (it != ring_.end()) {
    if (static_cast<std::size_t>(it - ring_.begin()) < next_) --next_;
    ring_.erase(it);
  }
}

void FairShare::do_enqueue(Client& client, SimTime) {
  ring_.push_back(client.request.client);
}

std::vector<int> FairShare::do_pick(SimTime) {
  if (ring_.empty()) return {};
  // Number of whole passes until at least one pending round is affordable
  // (a pass credits `drr_quantum * weight` to every waiter). Computing the
  // minimum directly makes one pick_next() equivalent to running the DRR
  // wheel however many times progress needs.
  long passes = -1;
  for (int id : ring_) {
    const Client* c = find(id);
    const double quantum = config_.drr_quantum * c->request.weight;
    const double missing = round_cost(*c) - c->deficit;
    const long need =
        missing <= 0 ? 0 : static_cast<long>(std::ceil(missing / quantum));
    if (passes < 0 || need < passes) passes = need;
  }
  std::vector<int> grants;
  if (next_ >= ring_.size()) next_ = 0;
  for (std::size_t step = 0; step < ring_.size(); ++step) {
    const std::size_t i = (next_ + step) % ring_.size();
    Client* c = find(ring_[i]);
    c->deficit += static_cast<double>(passes) * config_.drr_quantum *
                  c->request.weight;
    if (c->deficit >= round_cost(*c)) grants.push_back(ring_[i]);
  }
  next_ = (next_ + 1) % std::max<std::size_t>(ring_.size(), 1);
  return grants;
}

void FairShare::on_granted(Client& client, SimTime now) {
  client.deficit = 0.0;  // idle flows bank no credit (classic DRR)
  do_release(client.request.client, now);  // drop from the active ring
}

// ---------------------------------------------------------------------------
// PriorityAging
// ---------------------------------------------------------------------------

std::vector<int> PriorityAging::do_pick(SimTime now) {
  // Strict priority is exclusive: one round at a time, so a late
  // high-priority arrival never queues behind more than one round.
  if (in_flight_ > 0) return {};
  const double interval =
      std::max<double>(static_cast<double>(config_.aging_interval), 1.0);
  int best = -1, base_best = -1;
  double best_eff = 0.0;
  int best_base = 0;
  for (const auto& [id, client] : clients_) {
    if (!client.pending) continue;
    const double aged =
        static_cast<double>(now - client.enqueue_time) / interval;
    const double eff = static_cast<double>(client.request.priority) + aged;
    if (best == -1 || eff > best_eff) {
      best = id;
      best_eff = eff;
    }
    if (base_best == -1 || client.request.priority > best_base) {
      base_best = id;
      best_base = client.request.priority;
    }
  }
  if (best == -1) return {};
  if (best != base_best) ++stats_.aging_promotions;
  return {best};
}

}  // namespace vgpu::sched
