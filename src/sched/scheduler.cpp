#include "sched/scheduler.hpp"

#include <algorithm>

#include "common/status.hpp"
#include "common/stats.hpp"
#include "sched/policies.hpp"

namespace vgpu::sched {

const char* policy_name(Policy policy) {
  switch (policy) {
    case Policy::kBarrierCoFlush:
      return "barrier";
    case Policy::kTimeQuantum:
      return "tq";
    case Policy::kFairShare:
      return "fair";
    case Policy::kPriorityAging:
      return "prio";
  }
  return "?";
}

bool parse_policy(const std::string& text, Policy* out) {
  if (text == "barrier") {
    *out = Policy::kBarrierCoFlush;
  } else if (text == "tq") {
    *out = Policy::kTimeQuantum;
  } else if (text == "fair") {
    *out = Policy::kFairShare;
  } else if (text == "prio") {
    *out = Policy::kPriorityAging;
  } else {
    return false;
  }
  return true;
}

double SchedStats::wait_percentile(double q) const {
  if (wait_seconds.empty()) return 0.0;
  return percentile(wait_seconds, q);
}

double SchedStats::mean_wait() const {
  if (wait_seconds.empty()) return 0.0;
  double sum = 0.0;
  for (double w : wait_seconds) sum += w;
  return sum / static_cast<double>(wait_seconds.size());
}

std::unique_ptr<Scheduler> Scheduler::make(const SchedulerConfig& config) {
  switch (config.policy) {
    case Policy::kBarrierCoFlush:
      return std::make_unique<BarrierCoFlush>(config);
    case Policy::kTimeQuantum:
      return std::make_unique<TimeQuantum>(config);
    case Policy::kFairShare:
      return std::make_unique<FairShare>(config);
    case Policy::kPriorityAging:
      return std::make_unique<PriorityAging>(config);
  }
  VGPU_ASSERT_MSG(false, "unknown scheduling policy");
  return nullptr;
}

void Scheduler::admit(const ClientRequest& request, SimTime now) {
  VGPU_ASSERT_MSG(clients_.find(request.client) == clients_.end(),
                  "client admitted twice");
  Client& client = clients_[request.client];
  client.request = request;
  ++stats_.admitted;
  do_admit(client, now);
}

void Scheduler::on_release(int client, SimTime now) {
  auto it = clients_.find(client);
  if (it == clients_.end()) return;
  VGPU_ASSERT_MSG(!it->second.pending, "release with a round still pending");
  do_release(client, now);
  clients_.erase(it);
  ++stats_.released;
}

void Scheduler::on_migrate(int client, SimTime now) {
  auto it = clients_.find(client);
  if (it == clients_.end()) return;
  VGPU_ASSERT_MSG(!it->second.pending,
                  "migrate with a round still pending — drain first");
  do_release(client, now);
  clients_.erase(it);
  ++stats_.migrated;
}

void Scheduler::on_failure(int client, SimTime now) {
  auto it = clients_.find(client);
  if (it == clients_.end()) return;
  // Unlike on_release, a pending round is legal here: the client died
  // before its STR could be granted. Drop it so do_pick never grants a
  // ghost. An already-granted in-flight round is left alone — the job
  // completes server-side and its on_complete balances in_flight_.
  it->second.pending = false;
  do_failure(client, now);
  clients_.erase(it);
  ++stats_.failures;
}

void Scheduler::enqueue(int client, SimTime now) {
  Client* c = find(client);
  VGPU_ASSERT_MSG(c != nullptr, "enqueue from unadmitted client");
  VGPU_ASSERT_MSG(!c->pending, "duplicate enqueue before grant");
  c->pending = true;
  c->enqueue_time = now;
  ++stats_.enqueued;
  do_enqueue(*c, now);
}

std::vector<int> Scheduler::pick_next(SimTime now) {
  std::vector<int> batch = do_pick(now);
  if (batch.empty()) return batch;
  ++stats_.batches;
  for (int id : batch) {
    Client* c = find(id);
    VGPU_ASSERT_MSG(c != nullptr && c->pending,
                    "policy granted a client with no pending round");
    on_granted(*c, now);
    c->pending = false;
    stats_.wait_seconds.push_back(to_seconds(now - c->enqueue_time));
    ++stats_.grants;
    ++in_flight_;
  }
  return batch;
}

std::size_t Scheduler::drain_grants(SimTime now, std::vector<int>* out,
                                    std::vector<std::size_t>* cohorts) {
  std::size_t total = 0;
  for (;;) {
    const std::vector<int> batch = pick_next(now);
    if (batch.empty()) break;
    out->insert(out->end(), batch.begin(), batch.end());
    cohorts->push_back(batch.size());
    total += batch.size();
  }
  if (total > 0) ++stats_.pumps;
  return total;
}

void Scheduler::set_residency(int client, bool resident) {
  Client* c = find(client);
  if (c != nullptr) c->resident = resident;
}

void Scheduler::on_complete(int client, SimTime now) {
  VGPU_ASSERT_MSG(in_flight_ > 0, "completion with nothing in flight");
  --in_flight_;
  do_complete(client, now);
}

std::size_t Scheduler::pending() const {
  std::size_t n = 0;
  for (const auto& [id, client] : clients_) {
    if (client.pending) ++n;
  }
  return n;
}

Scheduler::Client* Scheduler::find(int client) {
  auto it = clients_.find(client);
  return it == clients_.end() ? nullptr : &it->second;
}

double Scheduler::round_cost(const Client& client) const {
  const double bytes =
      client.cost_override
          ? static_cast<double>(client.override_bytes)
          : static_cast<double>(client.request.bytes_in +
                                client.request.bytes_out);
  const double compute = client.cost_override ? client.override_compute
                                              : client.request.compute_cost;
  const double cost = bytes + config_.compute_cost_scale * compute;
  return std::max(cost, 1.0);
}

void Scheduler::set_round_cost(int client, Bytes bytes, double compute_cost) {
  Client* c = find(client);
  if (c == nullptr) return;
  c->cost_override = true;
  c->override_bytes = bytes;
  c->override_compute = compute_cost;
}

void Scheduler::clear_round_cost(int client) {
  Client* c = find(client);
  if (c == nullptr) return;
  c->cost_override = false;
}

void Scheduler::do_admit(Client&, SimTime) {}
void Scheduler::do_release(int, SimTime) {}
void Scheduler::do_failure(int client, SimTime now) {
  do_release(client, now);
}
void Scheduler::do_enqueue(Client&, SimTime) {}
void Scheduler::do_complete(int, SimTime) {}
void Scheduler::on_granted(Client&, SimTime) {}

}  // namespace vgpu::sched
