// Pluggable GVM scheduling: the policy layer extracted from the GPU
// Virtualization Manager.
//
// A Scheduler decides *when* and *in what order* client rounds (STR
// requests) are dispatched onto the device. It is pure policy: no
// coroutines, no threads, no clock of its own — callers (the DES
// `gvm::Gvm` and the live `rt::RtServer`) feed it events with an explicit
// timestamp and perform the actual flush/suspend mechanics. Keeping the
// policy side-effect free is what lets the deterministic and the live
// execution paths share one implementation and never drift.
//
// Event protocol (all timestamps are caller-supplied):
//
//   admit(request, now)    client registered (REQ accepted)
//   enqueue(client, now)   client has a round ready to run (STR)
//   pick_next(now)         -> ordered batch of clients to dispatch now
//   on_complete(client)    a dispatched round finished (stream drained)
//   on_release(client)     client deregistered (RLS)
//   on_failure(client)     client died (lease expiry / crash): any pending
//                          round is dropped and the client is deregistered;
//                          unlike on_release this is legal mid-round, and
//                          BarrierCoFlush shrinks its effective width so
//                          the surviving cohort's wave still releases
//   next_wakeup(now)       absolute time to poll pick_next() again even if
//                          no event arrives (time-quantum expiry); callers
//                          arm a timer when this is finite
//
// Policies:
//
//   BarrierCoFlush   the paper's SPMD barrier: hold rounds until `width`
//                    clients are pending, then co-flush the whole cohort
//                    (FIFO / smallest-first / largest-first order)
//   TimeQuantum      nvshare-style exclusive windows: one client owns the
//                    device for up to `quantum`, with an anti-thrash
//                    hysteresis before ownership rotates
//   FairShare        deficit round-robin; each round costs its requested
//                    bytes + scaled compute, so shares are resource-true
//   PriorityAging    strict priority, starvation-avoided by aging waiters
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace vgpu::sched {

enum class Policy { kBarrierCoFlush, kTimeQuantum, kFairShare, kPriorityAging };

/// Cohort order used by BarrierCoFlush (the GVM's historical knob).
enum class FlushOrder { kFifo, kSmallestFirst, kLargestFirst };

const char* policy_name(Policy policy);
/// Parses the CLI spelling ("barrier" | "tq" | "fair" | "prio").
bool parse_policy(const std::string& text, Policy* out);

/// What a client declares at admission time; the basis for every policy's
/// ordering decision.
struct ClientRequest {
  int client = -1;
  Bytes bytes_in = 0;
  Bytes bytes_out = 0;
  double compute_cost = 0.0;  // total flops across the plan's kernels
  int priority = 0;           // PriorityAging: higher runs first
  double weight = 1.0;        // FairShare: relative share
};

struct SchedulerConfig {
  Policy policy = Policy::kBarrierCoFlush;

  // BarrierCoFlush.
  int barrier_width = 1;
  FlushOrder flush_order = FlushOrder::kFifo;
  /// Cap the barrier width at the number of currently admitted clients.
  /// Off by default (strict SPMD semantics; a wave that loses a member
  /// deadlocks, exactly as the paper's design assumes it cannot). Enable
  /// for heterogeneous client populations with unequal lifetimes.
  bool dynamic_width = false;

  // TimeQuantum.
  SimDuration quantum = milliseconds(30.0);
  /// Anti-thrash grace: an idle holder keeps the device this long before
  /// ownership rotates to a waiter (it is likely to submit its next round
  /// immediately, and moving its working set off-device costs two PCIe
  /// sweeps under memory pressure).
  SimDuration hysteresis = milliseconds(2.0);

  // FairShare (deficit round-robin).
  double drr_quantum = 16.0 * 1024 * 1024;  // cost units credited per pass
  double compute_cost_scale = 1e-2;         // flops -> cost units

  // PriorityAging.
  SimDuration aging_interval = milliseconds(10.0);  // +1 priority per wait
};

struct SchedStats {
  long admitted = 0;
  long released = 0;
  long failures = 0;          // on_failure() removals (dead clients)
  long migrated = 0;          // on_migrate() removals (moved to another
                              // device's scheduler between rounds)
  long enqueued = 0;
  long grants = 0;            // rounds dispatched
  long batches = 0;           // non-empty pick_next() results
  long pumps = 0;             // drain_grants() calls granting >= 1 batch
  long quanta_granted = 0;    // TimeQuantum: exclusive windows opened
  long rotations = 0;         // TimeQuantum: ownership changes
  long resident_holds = 0;    // TimeQuantum: idle holds extended because
                              // the holder's working set was resident
  long aging_promotions = 0;  // PriorityAging: aged waiter beat base order
  /// Per-grant wait (enqueue -> grant), seconds. Source of the bench
  /// harness's wait-time percentiles.
  std::vector<double> wait_seconds;

  double wait_percentile(double q) const;
  double mean_wait() const;
};

class Scheduler {
 public:
  static std::unique_ptr<Scheduler> make(const SchedulerConfig& config);

  virtual ~Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  void admit(const ClientRequest& request, SimTime now);
  void on_release(int client, SimTime now);
  /// Removes a client whose session is being handed to another device's
  /// scheduler (cross-device migration). Legal only between rounds — no
  /// pending round, nothing in flight for this client — because the
  /// migrating side drains the round first; the importing scheduler
  /// re-admits the client with its original request.
  void on_migrate(int client, SimTime now);
  /// Removes a dead client. Tolerates any state (pending round, never
  /// enqueued, already gone); an in-flight round stays counted until its
  /// on_complete arrives (the device-side work finishes regardless).
  void on_failure(int client, SimTime now);
  void enqueue(int client, SimTime now);
  /// Ordered batch of clients whose pending round should be dispatched
  /// now; empty when the policy wants to hold. Grant bookkeeping (wait
  /// times, in-flight count) is applied here.
  std::vector<int> pick_next(SimTime now);
  /// Batch-grant interface for the live serve loop: drains every batch
  /// pick_next() would produce at `now` in one call, appending the client
  /// ids to *out and each cohort's width to *cohorts — the caller submits
  /// jobs per cohort but acks the whole pump in one response sweep.
  /// Returns the total clients granted.
  std::size_t drain_grants(SimTime now, std::vector<int>* out,
                           std::vector<std::size_t>* cohorts);
  void on_complete(int client, SimTime now);

  /// Residency hint from the memory layer (the vmem pager): true while
  /// the client's working set is device-resident. Policies may use it for
  /// anti-thrash decisions — TimeQuantum extends an idle resident
  /// holder's grace to its full window, since rotating away from a
  /// resident working set costs two PCIe sweeps under memory pressure.
  /// Unknown clients are ignored; callers that never page (the DES GVM)
  /// never call this and see identical behavior.
  void set_residency(int client, bool resident);

  /// Per-round cost override for graph grants: one kLaunchGraph grant
  /// stands for a whole recorded DAG, so its FairShare charge must be the
  /// graph's aggregate bytes + blocks, not the admission-time footprint.
  /// Sticky until cleared (a plain STR round) or the client is removed.
  /// Unknown clients are ignored.
  void set_round_cost(int client, Bytes bytes, double compute_cost);
  void clear_round_cost(int client);

  /// Absolute time at which pick_next() should be polled again even if no
  /// enqueue/complete event arrives; kTimeInfinity = event-driven only.
  virtual SimTime next_wakeup(SimTime now) const {
    (void)now;
    return kTimeInfinity;
  }

  virtual const char* name() const = 0;
  const SchedulerConfig& config() const { return config_; }
  const SchedStats& stats() const { return stats_; }
  std::size_t clients() const { return clients_.size(); }
  int in_flight() const { return in_flight_; }
  std::size_t pending() const;

 protected:
  struct Client {
    ClientRequest request;
    SimTime enqueue_time = 0;
    bool pending = false;
    bool resident = false;  // vmem residency hint (set_residency)
    double deficit = 0.0;   // FairShare scratch
    bool cost_override = false;  // graph grant: charge aggregate cost
    Bytes override_bytes = 0;
    double override_compute = 0.0;
  };

  explicit Scheduler(SchedulerConfig config) : config_(std::move(config)) {}

  // Policy hooks.
  virtual void do_admit(Client& client, SimTime now);
  virtual void do_release(int client, SimTime now);
  /// Failure hook; the default forwards to do_release (queue scrubbing is
  /// the same), policies override to add failure-specific bookkeeping.
  virtual void do_failure(int client, SimTime now);
  virtual void do_enqueue(Client& client, SimTime now);
  virtual std::vector<int> do_pick(SimTime now) = 0;
  virtual void do_complete(int client, SimTime now);
  /// Called (by the base) for every client in a do_pick batch, before the
  /// pending flag clears — policies update their own queues here.
  virtual void on_granted(Client& client, SimTime now);

  Client* find(int client);
  /// Per-round cost in FairShare units: bytes moved + scaled compute.
  double round_cost(const Client& client) const;

  SchedulerConfig config_;
  std::map<int, Client> clients_;
  int in_flight_ = 0;
  SchedStats stats_;
};

}  // namespace vgpu::sched
