// Device placement: the policy layer that decides *where* a client runs
// when one front door serves several GPUs.
//
// Mirrors the Scheduler abstraction one level up: a Placement is pure
// policy — no coroutines, no clock, no device handles. Callers (the DES
// `gvm::DevicePoolGvm`, the live `rt::RtServer` memory domains) snapshot
// per-device load into DeviceLoad records and ask for a device index per
// placement request; they perform the actual admission and data movement.
//
// Policies:
//
//   static    client id modulo device count — the MultiGvm shim's
//             placement, kept as the experimental control
//   pack      first-fit consolidation: lowest-index device with room,
//             maximizing idle devices (power / fragmentation friendly)
//   spread    least-loaded: minimize outstanding rounds, tie-break on
//             attached clients then free memory (latency friendly)
//   locality  spread, but a returning client sticks to the device that
//             already holds its working set unless that device is more
//             than `stickiness` rounds busier than the best candidate —
//             a migration / re-staging cost is only worth paying for a
//             real imbalance
#pragma once

#include <memory>
#include <span>
#include <string>

#include "common/units.hpp"

namespace vgpu::sched {

enum class PlacementPolicy { kStatic, kPack, kSpread, kLocality };

const char* placement_name(PlacementPolicy policy);
/// Parses the CLI spelling ("static" | "pack" | "spread" | "locality").
bool parse_placement(const std::string& text, PlacementPolicy* out);

struct PlacementConfig {
  PlacementPolicy policy = PlacementPolicy::kSpread;
  /// Locality: a warm device keeps the client unless it has more than
  /// this many outstanding rounds over the otherwise-best device.
  double stickiness = 2.0;
};

/// Caller-supplied live snapshot of one device behind the front door.
struct DeviceLoad {
  int device = -1;
  int clients = 0;         // admitted (attached) clients
  int pending = 0;         // rounds queued or in flight
  Bytes free_mem = 0;
  Bytes capacity = 0;
  double queued_cost = 0;  // aggregate round cost of queued work
};

struct PlacementRequest {
  int client = -1;
  Bytes bytes = 0;          // working-set footprint (in + out)
  double compute_cost = 0;  // aggregate kernel flops of the plan
  /// Device already holding this client's staged working set (-1 = cold):
  /// the locality policy's residency signal.
  int warm_device = -1;
};

class Placement {
 public:
  static std::unique_ptr<Placement> make(const PlacementConfig& config);

  virtual ~Placement() = default;
  Placement(const Placement&) = delete;
  Placement& operator=(const Placement&) = delete;

  /// Chooses a device for `request`. Load-aware policies prefer devices
  /// with `free_mem >= request.bytes` and fall back to the device with the
  /// most free memory when nothing fits (the admission layer then
  /// backpressures or pages as configured). Returns -1 only when
  /// `devices` is empty.
  virtual int choose(const PlacementRequest& request,
                     std::span<const DeviceLoad> devices) const = 0;

  virtual const char* name() const = 0;
  const PlacementConfig& config() const { return config_; }

 protected:
  explicit Placement(PlacementConfig config) : config_(config) {}

  PlacementConfig config_;
};

}  // namespace vgpu::sched
