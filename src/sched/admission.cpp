#include "sched/admission.hpp"

#include <algorithm>

namespace vgpu::sched {

namespace {

/// Least-recently-active victims first: the longer a client has been
/// idle, the less likely its working set is needed soon.
void sort_lru(std::vector<AdmissionController::Victim>& victims) {
  std::stable_sort(victims.begin(), victims.end(),
                   [](const auto& a, const auto& b) {
                     if (a.last_active != b.last_active) {
                       return a.last_active < b.last_active;
                     }
                     return a.client < b.client;
                   });
}

std::vector<int> pick_victims(
    Bytes needed, Bytes device_free,
    std::vector<AdmissionController::Victim> victims) {
  sort_lru(victims);
  std::vector<int> chosen;
  Bytes freed = 0;
  for (const auto& v : victims) {
    if (device_free + freed >= needed) break;
    chosen.push_back(v.client);
    freed += v.bytes;
  }
  if (device_free + freed < needed) chosen.clear();  // cannot make room yet
  return chosen;
}

}  // namespace

AdmitDecision AdmissionController::admit(Bytes bytes, Bytes device_free,
                                         std::vector<Victim> victims) {
  AdmitDecision decision;
  if (bytes > config_.capacity ||
      (config_.per_client_quota > 0 && bytes > config_.per_client_quota) ||
      (config_.paged && config_.pin_limit > 0 && bytes > config_.pin_limit)) {
    decision.action = AdmitAction::kReject;
    ++stats_.rejected;
    return decision;
  }
  if (config_.paged) {
    // Page-granular mode: `device_free` is the caller's remaining
    // *virtual* budget (device + ledger). Whole-client eviction never
    // happens — the pager spills cold pages instead — so the only
    // outcomes are admit and (ledger exhausted) backpressure.
    if (bytes <= device_free) {
      decision.action = AdmitAction::kAdmit;
      ++stats_.admitted;
    } else {
      decision.action = AdmitAction::kRetry;
      ++stats_.backpressured;
    }
    return decision;
  }
  if (bytes <= device_free) {
    decision.action = AdmitAction::kAdmit;
    ++stats_.admitted;
    return decision;
  }
  if (config_.oversubscribe) {
    decision.evict = pick_victims(bytes, device_free, std::move(victims));
    if (!decision.evict.empty()) {
      decision.action = AdmitAction::kAdmit;
      ++stats_.admitted;
      stats_.evictions += static_cast<long>(decision.evict.size());
      return decision;
    }
  }
  // Fits the device but not right now: backpressure until residents
  // release (or, oversubscribed, until someone becomes evictable).
  decision.action = AdmitAction::kRetry;
  ++stats_.backpressured;
  return decision;
}

std::vector<int> AdmissionController::plan_eviction(
    Bytes needed, Bytes device_free, std::vector<Victim> victims) const {
  if (needed <= device_free) return {};
  return pick_victims(needed, device_free, std::move(victims));
}

}  // namespace vgpu::sched
