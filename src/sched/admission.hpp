// Admission control for device memory: per-client quotas plus an
// oversubscription mode that makes room by evicting idle clients' device
// state to host (through the GVM's existing SUS/RES machinery, so the
// swap cost is charged through the PCIe model).
//
// Like the Scheduler, this is pure policy: the caller reports how much
// device memory is free and which residents are currently evictable, and
// receives a decision (admit / retry later / reject) plus the ordered
// victim list to suspend first. The caller performs the suspends and the
// allocation.
#pragma once

#include <vector>

#include "common/units.hpp"

namespace vgpu::sched {

struct AdmissionConfig {
  /// Total device memory; requests larger than this are permanently
  /// rejected.
  Bytes capacity = 0;
  /// Per-client cap on requested device bytes; 0 = unlimited.
  Bytes per_client_quota = 0;
  /// Admit aggregate footprints beyond capacity by evicting idle
  /// residents to host. Off: requests that do not currently fit are
  /// backpressured until residents release.
  bool oversubscribe = false;
  /// Page-granular oversubscription (the vmem pager): `capacity` then
  /// bounds *virtual* memory (device + host ledger) and admission never
  /// names whole-client victims — cold pages spill instead. Takes
  /// precedence over `oversubscribe`.
  bool paged = false;
  /// Paged mode: per-client working-set ceiling (the physical device); a
  /// request larger than this could never be pinned and is rejected.
  /// 0 = no ceiling.
  Bytes pin_limit = 0;
};

enum class AdmitAction {
  kAdmit,   // allocate now (after suspending `evict`, in order)
  kRetry,   // transient pressure: ask again later (backpressure)
  kReject,  // permanent: over quota or larger than the device
};

struct AdmitDecision {
  AdmitAction action = AdmitAction::kAdmit;
  std::vector<int> evict;
};

struct AdmissionStats {
  long admitted = 0;
  long rejected = 0;       // permanent rejections (quota / capacity)
  long backpressured = 0;  // transient kRetry responses
  long evictions = 0;      // victims named in kAdmit decisions
};

class AdmissionController {
 public:
  /// A resident client that could be suspended to make room.
  struct Victim {
    int client = -1;
    Bytes bytes = 0;
    SimTime last_active = 0;
  };

  explicit AdmissionController(AdmissionConfig config) : config_(config) {}

  /// Admission of a new client requesting `bytes` of device memory.
  AdmitDecision admit(Bytes bytes, Bytes device_free,
                      std::vector<Victim> victims);

  /// Room-making for a client that is already admitted (a suspended
  /// client's transparent resume before its flush): no quota check, and
  /// eviction is allowed regardless of the oversubscription mode — the
  /// bytes were admitted before, so they must be able to come back.
  std::vector<int> plan_eviction(Bytes needed, Bytes device_free,
                                 std::vector<Victim> victims) const;

  const AdmissionConfig& config() const { return config_; }
  const AdmissionStats& stats() const { return stats_; }

 private:
  AdmissionConfig config_;
  AdmissionStats stats_;
};

}  // namespace vgpu::sched
