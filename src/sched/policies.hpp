// The four concrete scheduling policies. Most callers go through
// Scheduler::make(); the concrete types are exposed for unit tests that
// poke policy internals (DRR deficits, quantum ownership).
#pragma once

#include <deque>

#include "sched/scheduler.hpp"

namespace vgpu::sched {

/// The paper's SPMD barrier: hold every STR until `barrier_width` clients
/// are pending, then dispatch the whole cohort at once, ordered by the
/// configured FlushOrder. Width 1 degenerates to immediate per-STR
/// dispatch (the GVM's historical `use_barriers=false` ablation).
///
/// Failure semantics: each on_failure() shrinks the effective width by one
/// (floored at 1), so a wave that lost a member to a crash still releases
/// for the survivors; a subsequent admission (the crashed rank
/// re-attaching, or a replacement) restores the width. This keeps the
/// strict SPMD default — unlike dynamic_width it only reacts to observed
/// deaths, never to clients that merely have not arrived yet.
class BarrierCoFlush : public Scheduler {
 public:
  explicit BarrierCoFlush(SchedulerConfig config)
      : Scheduler(std::move(config)) {}
  const char* name() const override { return "barrier"; }

  /// Test hook: dead members currently discounted from the barrier width.
  int failures() const { return failures_; }

 protected:
  void do_admit(Client& client, SimTime now) override;
  void do_failure(int client, SimTime now) override;
  std::vector<int> do_pick(SimTime now) override;

 private:
  int failures_ = 0;
};

/// nvshare-style exclusive windows: one client owns the device for up to
/// `quantum`; within its window it dispatches rounds freely while everyone
/// else queues FCFS. An idle holder keeps ownership for `hysteresis`
/// (anti-thrash) before the window rotates.
class TimeQuantum : public Scheduler {
 public:
  explicit TimeQuantum(SchedulerConfig config)
      : Scheduler(std::move(config)) {}
  const char* name() const override { return "tq"; }

  SimTime next_wakeup(SimTime now) const override;
  int holder() const { return holder_; }

 protected:
  void do_release(int client, SimTime now) override;
  void do_enqueue(Client& client, SimTime now) override;
  std::vector<int> do_pick(SimTime now) override;
  void do_complete(int client, SimTime now) override;

 private:
  void take_ownership(int client, SimTime now);
  void rotate(SimTime now);
  /// When an idle holder loses the device: hysteresis after its last
  /// activity, but never beyond its window — extended to the full window
  /// while the holder's working set is resident (vmem anti-thrash: see
  /// Scheduler::set_residency).
  SimTime release_time() const;

  int holder_ = -1;
  SimTime window_end_ = 0;
  SimTime last_activity_ = 0;
  bool resident_hold_counted_ = false;  // one resident_holds per window
  std::deque<int> queue_;  // pending clients other than the holder, FCFS
};

/// Deficit round-robin over pending rounds. Each pass credits every
/// waiting client `drr_quantum * weight` cost units; a round dispatches
/// once its client's deficit covers its cost (bytes moved + scaled
/// compute), so heavy rounds wait proportionally more passes — shares are
/// resource-true rather than round-count-true.
class FairShare : public Scheduler {
 public:
  explicit FairShare(SchedulerConfig config) : Scheduler(std::move(config)) {}
  const char* name() const override { return "fair"; }

  /// Test hook: the client's accumulated, not-yet-spent credit.
  double deficit(int client) const;

 protected:
  void do_release(int client, SimTime now) override;
  void do_enqueue(Client& client, SimTime now) override;
  std::vector<int> do_pick(SimTime now) override;
  void on_granted(Client& client, SimTime now) override;

 private:
  std::vector<int> ring_;    // active (pending) clients, round-robin order
  std::size_t next_ = 0;     // ring_ index where the next pass starts
};

/// Strict priority with aging: the pending client with the highest
/// effective priority (base + waited/aging_interval) runs next, one round
/// at a time. Aging guarantees starvation freedom: any waiter's effective
/// priority eventually exceeds every base priority.
class PriorityAging : public Scheduler {
 public:
  explicit PriorityAging(SchedulerConfig config)
      : Scheduler(std::move(config)) {}
  const char* name() const override { return "prio"; }

 protected:
  std::vector<int> do_pick(SimTime now) override;
};

}  // namespace vgpu::sched
