#include "sched/placement.hpp"

#include "common/status.hpp"

namespace vgpu::sched {

const char* placement_name(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kStatic:
      return "static";
    case PlacementPolicy::kPack:
      return "pack";
    case PlacementPolicy::kSpread:
      return "spread";
    case PlacementPolicy::kLocality:
      return "locality";
  }
  return "?";
}

bool parse_placement(const std::string& text, PlacementPolicy* out) {
  if (text == "static") {
    *out = PlacementPolicy::kStatic;
  } else if (text == "pack") {
    *out = PlacementPolicy::kPack;
  } else if (text == "spread") {
    *out = PlacementPolicy::kSpread;
  } else if (text == "locality") {
    *out = PlacementPolicy::kLocality;
  } else {
    return false;
  }
  return true;
}

namespace {

/// Less-loaded ordering shared by spread and locality: fewest outstanding
/// rounds, then fewest attached clients, then most free memory, then the
/// lowest index (fully deterministic).
bool less_loaded(const DeviceLoad& a, const DeviceLoad& b) {
  if (a.pending != b.pending) return a.pending < b.pending;
  if (a.clients != b.clients) return a.clients < b.clients;
  if (a.free_mem != b.free_mem) return a.free_mem > b.free_mem;
  return a.device < b.device;
}

/// The device with the most free memory — the fallback when no device can
/// hold the request outright (the admission layer backpressures or pages).
int most_free(std::span<const DeviceLoad> devices) {
  int best = -1;
  Bytes best_free = -1;
  for (const DeviceLoad& d : devices) {
    if (d.free_mem > best_free) {
      best_free = d.free_mem;
      best = d.device;
    }
  }
  return best;
}

class StaticPlacement final : public Placement {
 public:
  using Placement::Placement;
  int choose(const PlacementRequest& request,
             std::span<const DeviceLoad> devices) const override {
    if (devices.empty()) return -1;
    // MultiGvm::gvm_for's modulo, oblivious to load and fit.
    const std::size_t i = static_cast<std::size_t>(request.client) %
                          devices.size();
    return devices[i].device;
  }
  const char* name() const override { return "static"; }
};

class PackPlacement final : public Placement {
 public:
  using Placement::Placement;
  int choose(const PlacementRequest& request,
             std::span<const DeviceLoad> devices) const override {
    if (devices.empty()) return -1;
    for (const DeviceLoad& d : devices) {  // first fit, lowest index
      if (d.free_mem >= request.bytes) return d.device;
    }
    return most_free(devices);
  }
  const char* name() const override { return "pack"; }
};

class SpreadPlacement final : public Placement {
 public:
  using Placement::Placement;
  int choose(const PlacementRequest& request,
             std::span<const DeviceLoad> devices) const override {
    if (devices.empty()) return -1;
    const DeviceLoad* best = nullptr;
    for (const DeviceLoad& d : devices) {
      if (d.free_mem < request.bytes) continue;
      if (best == nullptr || less_loaded(d, *best)) best = &d;
    }
    return best != nullptr ? best->device : most_free(devices);
  }
  const char* name() const override { return "spread"; }
};

class LocalityPlacement final : public Placement {
 public:
  using Placement::Placement;
  int choose(const PlacementRequest& request,
             std::span<const DeviceLoad> devices) const override {
    if (devices.empty()) return -1;
    const DeviceLoad* best = nullptr;
    const DeviceLoad* warm = nullptr;
    for (const DeviceLoad& d : devices) {
      if (d.device == request.warm_device && d.free_mem >= request.bytes) {
        warm = &d;
      }
      if (d.free_mem < request.bytes) continue;
      if (best == nullptr || less_loaded(d, *best)) best = &d;
    }
    if (best == nullptr) return most_free(devices);
    // Stickiness: moving a warm working set costs real transfers, so the
    // warm device wins unless it is substantially busier.
    if (warm != nullptr &&
        warm->pending <= best->pending + config_.stickiness) {
      return warm->device;
    }
    return best->device;
  }
  const char* name() const override { return "locality"; }
};

}  // namespace

std::unique_ptr<Placement> Placement::make(const PlacementConfig& config) {
  switch (config.policy) {
    case PlacementPolicy::kStatic:
      return std::unique_ptr<Placement>(new StaticPlacement(config));
    case PlacementPolicy::kPack:
      return std::unique_ptr<Placement>(new PackPlacement(config));
    case PlacementPolicy::kSpread:
      return std::unique_ptr<Placement>(new SpreadPlacement(config));
    case PlacementPolicy::kLocality:
      return std::unique_ptr<Placement>(new LocalityPlacement(config));
  }
  VGPU_ASSERT_MSG(false, "unknown placement policy");
  return nullptr;
}

}  // namespace vgpu::sched
