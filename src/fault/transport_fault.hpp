// Fault-injecting decorator for the client side of an ipc transport.
//
// Wraps any ClientTransport and consults an Injector on every send
// (kCtrlSend: drop / delay / duplicate) and receive (kCtrlRecv: drop a
// response, delay delivery). Lives in src/fault rather than src/ipc so the
// transport layer itself stays fault-free; the RtClient installs the
// decorator only when its options carry an injector.
#pragma once

#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "fault/fault.hpp"
#include "ipc/transport.hpp"

namespace vgpu::fault {

template <typename Req, typename Resp>
class FaultyClientTransport final : public ipc::ClientTransport<Req, Resp> {
 public:
  FaultyClientTransport(
      std::unique_ptr<ipc::ClientTransport<Req, Resp>> inner,
      Injector* injector)
      : inner_(std::move(inner)), injector_(injector) {}

  ipc::TransportKind kind() const override { return inner_->kind(); }

  Status send(const Req& request) override {
    const Decision decision = injector_ != nullptr
                                  ? injector_->on(Point::kCtrlSend)
                                  : Decision{};
    switch (decision.action) {
      case Action::kDrop:
        return Status::Ok();  // silently lost in transit
      case Action::kDelay:
        std::this_thread::sleep_for(decision.delay);
        break;
      case Action::kDuplicate: {
        const Status first = inner_->send(request);
        if (!first.ok()) return first;
        break;  // fall through to the second copy
      }
      default:
        break;
    }
    return inner_->send(request);
  }

  StatusOr<Resp> receive(std::chrono::milliseconds timeout) override {
    const Decision decision = injector_ != nullptr
                                  ? injector_->on(Point::kCtrlRecv)
                                  : Decision{};
    if (decision.action == Action::kDelay) {
      std::this_thread::sleep_for(decision.delay);
    }
    if (decision.action == Action::kDrop) {
      // Swallow one response, then deliver whatever follows (the caller's
      // retry will re-elicit it).
      auto dropped = inner_->receive(timeout);
      if (!dropped.ok()) return dropped.status();
    }
    return inner_->receive(timeout);
  }

 private:
  std::unique_ptr<ipc::ClientTransport<Req, Resp>> inner_;
  Injector* injector_;
};

}  // namespace vgpu::fault
