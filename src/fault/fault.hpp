// Deterministic fault injection for the live GVM.
//
// A FaultPlan is a seeded, replayable schedule of failures at named
// injection points: drop/delay/duplicate a control message, kill a client
// between two protocol verbs, stall an engine shard, fail a device-model
// allocation. The decision function is *pure* — the same
// (seed, point, occurrence) triple always yields the same verdict, with no
// generator state shared between points — so a schedule replays bit-exactly
// regardless of thread interleaving, and a failing chaos seed reprints as a
// `--fault-plan=` spec anyone can re-run (see docs/fault.md).
//
// The Injector wraps a plan behind zero-cost-when-disabled hooks: subsystem
// call sites hold a nullable `fault::Injector*` and a disabled injector
// (or a null pointer) reduces every hook to a branch on a bool. Occurrence
// counters are atomics, so concurrent call sites (engine shards, forked
// clients) each draw their own deterministic occurrence index.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace vgpu::obs {
class Registry;
}

namespace vgpu::fault {

/// The injection-point registry. Client points sit on the verb boundaries
/// of the REQ/SND/STR/STP/RCV/RLS protocol ("after_req" fires between REQ
/// and SND, and so on through "after_rcv" between RCV and RLS).
enum class Point : std::int32_t {
  kCtrlSend = 0,    // client-side control-message send
  kCtrlRecv,        // client-side control-message receive
  kClientAfterReq,  // verb boundary REQ -> SND
  kClientAfterSnd,  // verb boundary SND -> STR
  kClientAfterStr,  // verb boundary STR -> STP
  kClientAfterStp,  // verb boundary STP -> RCV
  kClientAfterRcv,  // verb boundary RCV -> RLS
  kServerHandle,    // serve-loop request dispatch
  kServerRespond,   // serve-loop response send
  kExecShard,       // exec::ExecEngine shard body
  kDeviceAlloc,     // device-model memory allocation
  kVmemPageIn,      // pager page-in (frame fill / ledger restore)
  kCount,
};

inline constexpr int kPointCount = static_cast<int>(Point::kCount);

/// Spec spelling of a point ("ctrl.send", "client.after_req", ...).
const char* point_name(Point point);
bool parse_point(const std::string& text, Point* out);
/// Every point, in enum order (the registry the tests iterate).
std::vector<Point> all_points();

enum class Action : std::int32_t {
  kNone = 0,
  kDrop,       // swallow the message
  kDelay,      // sleep `delay` before proceeding
  kDuplicate,  // send the message twice
  kKill,       // raise(SIGKILL) — forked clients only
  kStall,      // sleep `delay` inside the instrumented region
  kFail,       // make the operation report failure
  kCount,
};

inline constexpr int kActionCount = static_cast<int>(Action::kCount);

const char* action_name(Action action);
bool parse_action(const std::string& text, Action* out);

/// One injection rule: fire `action` at `point` with `probability`, for
/// occurrences in [after, after + limit) (limit < 0 = unbounded).
struct Rule {
  Point point = Point::kCtrlSend;
  Action action = Action::kNone;
  double probability = 1.0;
  long after = 0;
  long limit = -1;
  std::chrono::microseconds delay{0};
};

/// Verdict for one occurrence of one point.
struct Decision {
  Action action = Action::kNone;
  std::chrono::microseconds delay{0};
  explicit operator bool() const { return action != Action::kNone; }
};

/// A seeded set of rules with a pure decision function. Spec grammar
/// (comma-separated, whitespace-free):
///
///   seed=42,kill@client.after_snd,drop@ctrl.send:p=0.5:after=2:limit=1,
///   stall@exec.shard:delay_us=500
///
/// `seed=` may appear once; every other item is `action@point` with
/// optional `:key=value` options (p, after, limit, delay_us). to_string()
/// round-trips through parse().
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  static StatusOr<FaultPlan> parse(const std::string& spec);
  std::string to_string() const;

  void add(Rule rule) { rules_.push_back(rule); }
  void set_seed(std::uint64_t seed) { seed_ = seed; }
  std::uint64_t seed() const { return seed_; }
  const std::vector<Rule>& rules() const { return rules_; }
  bool empty() const { return rules_.empty(); }

  /// Pure: hashes (seed, point, occurrence) into the probability draw, so
  /// the verdict for any occurrence is independent of evaluation order.
  /// The first rule for `point` whose window contains `occurrence` and
  /// whose draw passes wins.
  Decision decide(Point point, long occurrence) const;

 private:
  std::uint64_t seed_ = 0;
  std::vector<Rule> rules_;
};

/// Thread-safe occurrence counting around a FaultPlan. A
/// default-constructed Injector is disabled: every hook returns
/// immediately without touching a counter.
class Injector {
 public:
  Injector() = default;
  explicit Injector(FaultPlan plan)
      : enabled_(!plan.empty()), plan_(std::move(plan)) {}

  bool enabled() const { return enabled_; }
  const FaultPlan& plan() const { return plan_; }

  /// Draws the next occurrence of `point` and returns the plan's verdict.
  Decision on(Point point);

  /// True when this occurrence should report failure (Action::kFail).
  bool should_fail(Point point);
  /// Sleeps through a kStall/kDelay verdict; no-op otherwise.
  void maybe_stall(Point point);
  /// raise(SIGKILL) on a kKill verdict — call only from processes whose
  /// death is the experiment (forked chaos clients).
  void maybe_kill(Point point);

  long occurrences(Point point) const;
  long fired(Action action) const;

  /// Exports fault.occurrences.<point> and fault.fired.<action> counters.
  void export_metrics(obs::Registry& registry) const;

 private:
  bool enabled_ = false;
  FaultPlan plan_;
  std::array<std::atomic<long>, kPointCount> occurrences_{};
  std::array<std::atomic<long>, kActionCount> fired_{};
};

}  // namespace vgpu::fault
