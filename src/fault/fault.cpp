#include "fault/fault.hpp"

#include <csignal>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "common/rng.hpp"
#include "obs/metrics.hpp"

namespace vgpu::fault {

namespace {

struct PointEntry {
  Point point;
  const char* name;
};

constexpr PointEntry kPointTable[] = {
    {Point::kCtrlSend, "ctrl.send"},
    {Point::kCtrlRecv, "ctrl.recv"},
    {Point::kClientAfterReq, "client.after_req"},
    {Point::kClientAfterSnd, "client.after_snd"},
    {Point::kClientAfterStr, "client.after_str"},
    {Point::kClientAfterStp, "client.after_stp"},
    {Point::kClientAfterRcv, "client.after_rcv"},
    {Point::kServerHandle, "server.handle"},
    {Point::kServerRespond, "server.respond"},
    {Point::kExecShard, "exec.shard"},
    {Point::kDeviceAlloc, "device.alloc"},
    {Point::kVmemPageIn, "vmem.pagein"},
};
static_assert(sizeof(kPointTable) / sizeof(kPointTable[0]) ==
                  static_cast<std::size_t>(kPointCount),
              "point table out of sync with the Point enum");

struct ActionEntry {
  Action action;
  const char* name;
};

constexpr ActionEntry kActionTable[] = {
    {Action::kNone, "none"},   {Action::kDrop, "drop"},
    {Action::kDelay, "delay"}, {Action::kDuplicate, "dup"},
    {Action::kKill, "kill"},   {Action::kStall, "stall"},
    {Action::kFail, "fail"},
};
static_assert(sizeof(kActionTable) / sizeof(kActionTable[0]) ==
                  static_cast<std::size_t>(kActionCount),
              "action table out of sync with the Action enum");

/// Uniform [0, 1) draw from a pure hash of (seed, point, occurrence): each
/// coordinate is pre-mixed with a distinct odd constant so adjacent
/// occurrences (and adjacent points) land far apart in the hash space.
double probability_draw(std::uint64_t seed, Point point, long occurrence) {
  std::uint64_t mix = seed;
  mix ^= (static_cast<std::uint64_t>(point) + 1) * 0x9e3779b97f4a7c15ULL;
  mix ^= (static_cast<std::uint64_t>(occurrence) + 1) * 0xbf58476d1ce4e5b9ULL;
  SplitMix64 sm(mix);
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find(sep, begin);
    if (end == std::string::npos) {
      parts.push_back(text.substr(begin));
      break;
    }
    parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

Status parse_number(const std::string& text, long* out) {
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return InvalidArgument("fault plan: bad number '" + text + "'");
  }
  *out = value;
  return Status::Ok();
}

}  // namespace

const char* point_name(Point point) {
  const auto index = static_cast<std::size_t>(point);
  if (index >= static_cast<std::size_t>(kPointCount)) return "?";
  return kPointTable[index].name;
}

bool parse_point(const std::string& text, Point* out) {
  for (const PointEntry& entry : kPointTable) {
    if (text == entry.name) {
      *out = entry.point;
      return true;
    }
  }
  return false;
}

std::vector<Point> all_points() {
  std::vector<Point> points;
  points.reserve(static_cast<std::size_t>(kPointCount));
  for (const PointEntry& entry : kPointTable) points.push_back(entry.point);
  return points;
}

const char* action_name(Action action) {
  const auto index = static_cast<std::size_t>(action);
  if (index >= static_cast<std::size_t>(kActionCount)) return "?";
  return kActionTable[index].name;
}

bool parse_action(const std::string& text, Action* out) {
  for (const ActionEntry& entry : kActionTable) {
    if (text == entry.name) {
      *out = entry.action;
      return true;
    }
  }
  return false;
}

StatusOr<FaultPlan> FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  for (const std::string& item : split(spec, ',')) {
    if (item.empty()) {
      return InvalidArgument("fault plan: empty item in '" + spec + "'");
    }
    if (item.rfind("seed=", 0) == 0) {
      long seed = 0;
      VGPU_RETURN_IF_ERROR(parse_number(item.substr(5), &seed));
      plan.seed_ = static_cast<std::uint64_t>(seed);
      continue;
    }
    const std::vector<std::string> fields = split(item, ':');
    const std::size_t at = fields[0].find('@');
    if (at == std::string::npos) {
      return InvalidArgument("fault plan: expected action@point, got '" +
                             fields[0] + "'");
    }
    Rule rule;
    const std::string action = fields[0].substr(0, at);
    const std::string point = fields[0].substr(at + 1);
    if (!parse_action(action, &rule.action) || rule.action == Action::kNone) {
      return InvalidArgument("fault plan: unknown action '" + action + "'");
    }
    if (!parse_point(point, &rule.point)) {
      return InvalidArgument("fault plan: unknown point '" + point + "'");
    }
    for (std::size_t i = 1; i < fields.size(); ++i) {
      const std::size_t eq = fields[i].find('=');
      if (eq == std::string::npos) {
        return InvalidArgument("fault plan: expected key=value, got '" +
                               fields[i] + "'");
      }
      const std::string key = fields[i].substr(0, eq);
      const std::string value = fields[i].substr(eq + 1);
      if (key == "p") {
        char* end = nullptr;
        rule.probability = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0' || rule.probability < 0.0 ||
            rule.probability > 1.0) {
          return InvalidArgument("fault plan: bad probability '" + value +
                                 "'");
        }
      } else if (key == "after") {
        VGPU_RETURN_IF_ERROR(parse_number(value, &rule.after));
      } else if (key == "limit") {
        VGPU_RETURN_IF_ERROR(parse_number(value, &rule.limit));
      } else if (key == "delay_us") {
        long us = 0;
        VGPU_RETURN_IF_ERROR(parse_number(value, &us));
        rule.delay = std::chrono::microseconds(us);
      } else {
        return InvalidArgument("fault plan: unknown option '" + key + "'");
      }
    }
    plan.rules_.push_back(rule);
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream out;
  out << "seed=" << seed_;
  for (const Rule& rule : rules_) {
    out << ',' << action_name(rule.action) << '@' << point_name(rule.point);
    if (rule.probability != 1.0) out << ":p=" << rule.probability;
    if (rule.after != 0) out << ":after=" << rule.after;
    if (rule.limit >= 0) out << ":limit=" << rule.limit;
    if (rule.delay.count() != 0) out << ":delay_us=" << rule.delay.count();
  }
  return out.str();
}

Decision FaultPlan::decide(Point point, long occurrence) const {
  for (const Rule& rule : rules_) {
    if (rule.point != point) continue;
    if (occurrence < rule.after) continue;
    if (rule.limit >= 0 && occurrence >= rule.after + rule.limit) continue;
    if (rule.probability < 1.0 &&
        probability_draw(seed_, point, occurrence) >= rule.probability) {
      continue;
    }
    return Decision{rule.action, rule.delay};
  }
  return {};
}

Decision Injector::on(Point point) {
  if (!enabled_) return {};
  const long occurrence =
      occurrences_[static_cast<std::size_t>(point)].fetch_add(
          1, std::memory_order_relaxed);
  const Decision decision = plan_.decide(point, occurrence);
  if (decision) {
    fired_[static_cast<std::size_t>(decision.action)].fetch_add(
        1, std::memory_order_relaxed);
  }
  return decision;
}

bool Injector::should_fail(Point point) {
  if (!enabled_) return false;
  return on(point).action == Action::kFail;
}

void Injector::maybe_stall(Point point) {
  if (!enabled_) return;
  const Decision decision = on(point);
  if (decision.action == Action::kStall || decision.action == Action::kDelay) {
    std::this_thread::sleep_for(decision.delay);
  }
}

void Injector::maybe_kill(Point point) {
  if (!enabled_) return;
  if (on(point).action == Action::kKill) {
    ::raise(SIGKILL);
  }
}

long Injector::occurrences(Point point) const {
  return occurrences_[static_cast<std::size_t>(point)].load(
      std::memory_order_relaxed);
}

long Injector::fired(Action action) const {
  return fired_[static_cast<std::size_t>(action)].load(
      std::memory_order_relaxed);
}

void Injector::export_metrics(obs::Registry& registry) const {
  for (const PointEntry& entry : kPointTable) {
    registry.counter(std::string("fault.occurrences.") + entry.name)
        ->set(occurrences(entry.point));
  }
  for (const ActionEntry& entry : kActionTable) {
    if (entry.action == Action::kNone) continue;
    registry.counter(std::string("fault.fired.") + entry.name)
        ->set(fired(entry.action));
  }
}

}  // namespace vgpu::fault
