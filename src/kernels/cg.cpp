#include "kernels/cg.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace vgpu::kernels {

CsrMatrix cg_make_matrix(int n, int nz_per_row, double shift,
                         std::uint64_t seed) {
  VGPU_ASSERT(n >= 2 && nz_per_row >= 1);
  Rng rng(seed);
  // Build symmetric pattern with values in (0, 1), then add the shift on
  // the diagonal plus row-sum dominance for positive definiteness.
  std::vector<std::map<int, double>> rows(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int e = 0; e < nz_per_row; ++e) {
      const int j =
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
      if (j == i) continue;
      const double v = rng.next_double();
      rows[static_cast<std::size_t>(i)][j] = v;
      rows[static_cast<std::size_t>(j)][i] = v;  // symmetry
    }
  }
  CsrMatrix a;
  a.n = n;
  a.row_ptr.resize(static_cast<std::size_t>(n) + 1, 0);
  for (int i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (const auto& [j, v] : rows[static_cast<std::size_t>(i)]) {
      row_sum += std::fabs(v);
    }
    // Diagonal first (CSR order within a row is by column below).
    rows[static_cast<std::size_t>(i)][i] = row_sum + shift;
    a.row_ptr[static_cast<std::size_t>(i) + 1] =
        a.row_ptr[static_cast<std::size_t>(i)] +
        static_cast<int>(rows[static_cast<std::size_t>(i)].size());
  }
  a.col.reserve(static_cast<std::size_t>(a.row_ptr.back()));
  a.val.reserve(static_cast<std::size_t>(a.row_ptr.back()));
  for (int i = 0; i < n; ++i) {
    for (const auto& [j, v] : rows[static_cast<std::size_t>(i)]) {
      a.col.push_back(j);
      a.val.push_back(v);
    }
  }
  return a;
}

void spmv(const CsrMatrix& a, std::span<const double> x, std::span<double> y,
          const ParallelFor& pf) {
  VGPU_ASSERT(static_cast<int>(x.size()) == a.n &&
              static_cast<int>(y.size()) == a.n);
  pf(a.n, [&](long row_begin, long row_end) {
    for (long i = row_begin; i < row_end; ++i) {
      double acc = 0.0;
      for (int e = a.row_ptr[static_cast<std::size_t>(i)];
           e < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++e) {
        acc += a.val[static_cast<std::size_t>(e)] *
               x[static_cast<std::size_t>(a.col[static_cast<std::size_t>(e)])];
      }
      y[static_cast<std::size_t>(i)] = acc;
    }
  });
}

namespace {
double dot_d(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}
}  // namespace

CgResult cg_solve(const CsrMatrix& a, std::span<const double> b,
                  std::span<double> x, int max_iters, double tol,
                  const ParallelFor& pf) {
  const auto n = static_cast<std::size_t>(a.n);
  VGPU_ASSERT(b.size() == n && x.size() == n);
  std::fill(x.begin(), x.end(), 0.0);

  std::vector<double> r(b.begin(), b.end());  // r = b - A*0
  std::vector<double> p = r;
  std::vector<double> ap(n);

  CgResult result;
  double rho = dot_d(r, r);
  result.residual_history.push_back(std::sqrt(rho));

  for (int it = 0; it < max_iters; ++it) {
    if (std::sqrt(rho) <= tol) break;
    spmv(a, p, ap, pf);
    const double alpha = rho / dot_d(p, ap);
    pf(static_cast<long>(n), [&](long begin, long end) {
      for (long i = begin; i < end; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        x[idx] += alpha * p[idx];
        r[idx] -= alpha * ap[idx];
      }
    });
    const double rho_next = dot_d(r, r);
    const double beta = rho_next / rho;
    pf(static_cast<long>(n), [&](long begin, long end) {
      for (long i = begin; i < end; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        p[idx] = r[idx] + beta * p[idx];
      }
    });
    rho = rho_next;
    ++result.iterations;
    result.residual_history.push_back(std::sqrt(rho));
  }
  result.final_residual = std::sqrt(rho);
  return result;
}

gpu::KernelLaunch cg_launch(int na, int nz_per_row) {
  gpu::KernelLaunch l;
  l.name = "npb_cg_iter";
  // Paper Table IV: class S runs with an 8-block grid.
  l.geometry = gpu::KernelGeometry{8, 128, /*regs*/ 28, /*shmem*/ 2 * kKiB};
  (void)nz_per_row;
  // This descriptor aggregates one CG iteration of the class-S port:
  // spmv + axpy/dot micro-kernels with a host-side reduction sync. As with
  // MG, two calibrated components (see EXPERIMENTS.md):
  //  * ~10 ms of host/driver-serial launch+sync chain per iteration;
  //  * ~10 ms of latency-bound device time on an 8-block grid (irregular
  //    gathers, efficiency ~2%), which co-executes freely across processes.
  l.host_serial_time = milliseconds(10.0);
  const double threads = 8.0 * 128.0;
  const double total_flops = 1.18e8;  // 10 ms at 2% of one SM per block
  const double bytes = static_cast<double>(na) * (nz_per_row * 2 + 1) * 16.0;
  l.cost = gpu::KernelCost{total_flops / threads, bytes / threads,
                           /*efficiency*/ 0.02};
  return l;
}

}  // namespace vgpu::kernels
