#include "kernels/blas1.hpp"

#include <vector>

#include "common/math.hpp"
#include "common/status.hpp"

namespace vgpu::kernels {

void vecadd(std::span<const float> a, std::span<const float> b,
            std::span<float> c) {
  VGPU_ASSERT(a.size() == b.size() && a.size() == c.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = a[i] + b[i];
}

void saxpy(float alpha, std::span<const float> x, std::span<float> y) {
  VGPU_ASSERT(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

namespace {

float pairwise_sum(std::span<const float> x) {
  if (x.size() <= 8) {
    float s = 0.0f;
    for (float v : x) s += v;
    return s;
  }
  const std::size_t half = x.size() / 2;
  return pairwise_sum(x.subspan(0, half)) + pairwise_sum(x.subspan(half));
}

}  // namespace

float reduce_sum(std::span<const float> x) { return pairwise_sum(x); }

float dot(std::span<const float> x, std::span<const float> y) {
  VGPU_ASSERT(x.size() == y.size());
  std::vector<float> prod(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) prod[i] = x[i] * y[i];
  return pairwise_sum(prod);
}

gpu::KernelLaunch vecadd_launch(long n) {
  gpu::KernelLaunch l;
  l.name = "vecadd";
  const int threads = 1024;  // paper: 50M elements -> 50K blocks
  l.geometry = gpu::KernelGeometry{ceil_div(n, static_cast<long>(threads)),
                                   threads, /*regs*/ 10, /*shmem*/ 0};
  // Two 4-byte loads + one store per element; one add.
  l.cost = gpu::KernelCost{/*flops*/ 1.0, /*dram bytes*/ 12.0,
                           /*efficiency*/ 1.0};
  return l;
}

gpu::KernelLaunch saxpy_launch(long n) {
  gpu::KernelLaunch l;
  l.name = "saxpy";
  const int threads = 1024;
  l.geometry = gpu::KernelGeometry{ceil_div(n, static_cast<long>(threads)),
                                   threads, 12, 0};
  l.cost = gpu::KernelCost{2.0, 12.0, 1.0};
  return l;
}

gpu::KernelLaunch reduce_launch(long n) {
  gpu::KernelLaunch l;
  l.name = "reduce_sum";
  const int threads = 256;
  // Grid-stride reduction: cap the grid at full residency.
  const long blocks = std::min<long>(1024, ceil_div(n, 4096L));
  l.geometry = gpu::KernelGeometry{std::max(1L, blocks), threads, 16,
                                   static_cast<Bytes>(threads) * 4};
  const double elems_per_thread =
      static_cast<double>(n) /
      (static_cast<double>(l.geometry.grid_blocks) * threads);
  l.cost = gpu::KernelCost{elems_per_thread, elems_per_thread * 4.0, 0.9};
  return l;
}

}  // namespace vgpu::kernels
