#include "kernels/blas1.hpp"

#include <algorithm>
#include <vector>

#include "common/math.hpp"
#include "common/status.hpp"

namespace vgpu::kernels {

void vecadd_blocks(std::span<const float> a, std::span<const float> b,
                   std::span<float> c, long block_begin, long block_end) {
  const auto n = static_cast<long>(a.size());
  const std::size_t lo = static_cast<std::size_t>(
      std::min(n, block_begin * kVecBlock));
  const std::size_t hi =
      static_cast<std::size_t>(std::min(n, block_end * kVecBlock));
  for (std::size_t i = lo; i < hi; ++i) c[i] = a[i] + b[i];
}

void vecadd(std::span<const float> a, std::span<const float> b,
            std::span<float> c, const ParallelFor& pf) {
  VGPU_ASSERT(a.size() == b.size() && a.size() == c.size());
  const long blocks = ceil_div(static_cast<long>(a.size()), kVecBlock);
  pf(blocks, [&](long begin, long end) { vecadd_blocks(a, b, c, begin, end); });
}

void saxpy_blocks(float alpha, std::span<const float> x, std::span<float> y,
                  long block_begin, long block_end) {
  const auto n = static_cast<long>(x.size());
  const std::size_t lo = static_cast<std::size_t>(
      std::min(n, block_begin * kVecBlock));
  const std::size_t hi =
      static_cast<std::size_t>(std::min(n, block_end * kVecBlock));
  for (std::size_t i = lo; i < hi; ++i) y[i] += alpha * x[i];
}

void saxpy(float alpha, std::span<const float> x, std::span<float> y,
           const ParallelFor& pf) {
  VGPU_ASSERT(x.size() == y.size());
  const long blocks = ceil_div(static_cast<long>(x.size()), kVecBlock);
  pf(blocks, [&](long begin, long end) {
    saxpy_blocks(alpha, x, y, begin, end);
  });
}

namespace {

float pairwise_sum(std::span<const float> x) {
  if (x.size() <= 8) {
    float s = 0.0f;
    for (float v : x) s += v;
    return s;
  }
  const std::size_t half = x.size() / 2;
  return pairwise_sum(x.subspan(0, half)) + pairwise_sum(x.subspan(half));
}

float pairwise_dot(std::span<const float> x, std::span<const float> y) {
  if (x.size() <= 8) {
    float s = 0.0f;
    for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
    return s;
  }
  const std::size_t half = x.size() / 2;
  return pairwise_dot(x.subspan(0, half), y.subspan(0, half)) +
         pairwise_dot(x.subspan(half), y.subspan(half));
}

/// Balanced contiguous split of [0, n) into `blocks` pieces.
std::pair<std::size_t, std::size_t> block_range(long n, long blocks, long b) {
  return {static_cast<std::size_t>(n * b / blocks),
          static_cast<std::size_t>(n * (b + 1) / blocks)};
}

}  // namespace

long reduce_blocks(long n) {
  return std::max(1L, std::min<long>(1024, ceil_div(n, 4096L)));
}

float reduce_sum(std::span<const float> x) { return pairwise_sum(x); }

float reduce_sum(std::span<const float> x, const ParallelFor& pf) {
  const auto n = static_cast<long>(x.size());
  const long blocks = reduce_blocks(n);
  std::vector<float> partials(static_cast<std::size_t>(blocks), 0.0f);
  pf(blocks, [&](long begin, long end) {
    for (long b = begin; b < end; ++b) {
      const auto [lo, hi] = block_range(n, blocks, b);
      partials[static_cast<std::size_t>(b)] =
          pairwise_sum(x.subspan(lo, hi - lo));
    }
  });
  return pairwise_sum(partials);
}

float dot(std::span<const float> x, std::span<const float> y) {
  VGPU_ASSERT(x.size() == y.size());
  std::vector<float> prod(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) prod[i] = x[i] * y[i];
  return pairwise_sum(prod);
}

float dot(std::span<const float> x, std::span<const float> y,
          const ParallelFor& pf) {
  VGPU_ASSERT(x.size() == y.size());
  const auto n = static_cast<long>(x.size());
  const long blocks = reduce_blocks(n);
  std::vector<float> partials(static_cast<std::size_t>(blocks), 0.0f);
  pf(blocks, [&](long begin, long end) {
    for (long b = begin; b < end; ++b) {
      const auto [lo, hi] = block_range(n, blocks, b);
      partials[static_cast<std::size_t>(b)] =
          pairwise_dot(x.subspan(lo, hi - lo), y.subspan(lo, hi - lo));
    }
  });
  return pairwise_sum(partials);
}

gpu::KernelLaunch vecadd_launch(long n) {
  gpu::KernelLaunch l;
  l.name = "vecadd";
  const int threads = 1024;  // paper: 50M elements -> 50K blocks
  l.geometry = gpu::KernelGeometry{ceil_div(n, static_cast<long>(threads)),
                                   threads, /*regs*/ 10, /*shmem*/ 0};
  // Two 4-byte loads + one store per element; one add.
  l.cost = gpu::KernelCost{/*flops*/ 1.0, /*dram bytes*/ 12.0,
                           /*efficiency*/ 1.0};
  return l;
}

gpu::KernelLaunch saxpy_launch(long n) {
  gpu::KernelLaunch l;
  l.name = "saxpy";
  const int threads = 1024;
  l.geometry = gpu::KernelGeometry{ceil_div(n, static_cast<long>(threads)),
                                   threads, 12, 0};
  l.cost = gpu::KernelCost{2.0, 12.0, 1.0};
  return l;
}

gpu::KernelLaunch reduce_launch(long n) {
  gpu::KernelLaunch l;
  l.name = "reduce_sum";
  const int threads = 256;
  // Grid-stride reduction: cap the grid at full residency.
  const long blocks = std::min<long>(1024, ceil_div(n, 4096L));
  l.geometry = gpu::KernelGeometry{std::max(1L, blocks), threads, 16,
                                   static_cast<Bytes>(threads) * 4};
  const double elems_per_thread =
      static_cast<double>(n) /
      (static_cast<double>(l.geometry.grid_blocks) * threads);
  l.cost = gpu::KernelCost{elems_per_thread, elems_per_thread * 4.0, 0.9};
  return l;
}

}  // namespace vgpu::kernels
