#include "kernels/is.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace vgpu::kernels {

std::vector<int> is_make_keys(long n, int max_key, std::uint64_t seed) {
  VGPU_ASSERT(n >= 0 && max_key >= 1);
  Rng rng(seed);
  std::vector<int> keys(static_cast<std::size_t>(n));
  for (int& k : keys) {
    // Sum of four uniforms, as in NPB: a centered, bell-ish distribution.
    const double u = (rng.next_double() + rng.next_double() +
                      rng.next_double() + rng.next_double()) /
                     4.0;
    k = static_cast<int>(u * max_key);
    if (k >= max_key) k = max_key - 1;
  }
  return keys;
}

std::vector<long> is_rank(std::span<const int> keys, int max_key) {
  VGPU_ASSERT(max_key >= 1);
  // Histogram.
  std::vector<long> counts(static_cast<std::size_t>(max_key), 0);
  for (int k : keys) {
    VGPU_ASSERT(k >= 0 && k < max_key);
    ++counts[static_cast<std::size_t>(k)];
  }
  // Exclusive prefix sum: start position of each key value.
  long running = 0;
  for (long& c : counts) {
    const long count = c;
    c = running;
    running += count;
  }
  // Stable scatter.
  std::vector<long> ranks(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ranks[i] = counts[static_cast<std::size_t>(keys[i])]++;
  }
  return ranks;
}

long is_rank_blocks(long n) {
  return std::max(1L, std::min(16L, (n + 4095) / 4096));
}

std::vector<long> is_rank(std::span<const int> keys, int max_key,
                          const ParallelFor& pf) {
  VGPU_ASSERT(max_key >= 1);
  const auto n = static_cast<long>(keys.size());
  const long blocks = is_rank_blocks(n);
  const auto mk = static_cast<std::size_t>(max_key);
  auto block_lo = [&](long b) {
    return static_cast<std::size_t>(n * b / blocks);
  };
  // Per-block histograms.
  std::vector<std::vector<long>> counts(
      static_cast<std::size_t>(blocks), std::vector<long>(mk, 0));
  pf(blocks, [&](long begin, long end) {
    for (long b = begin; b < end; ++b) {
      auto& c = counts[static_cast<std::size_t>(b)];
      for (std::size_t i = block_lo(b); i < block_lo(b + 1); ++i) {
        const int k = keys[i];
        VGPU_ASSERT(k >= 0 && k < max_key);
        ++c[static_cast<std::size_t>(k)];
      }
    }
  });
  // Serial scan: offsets[b][k] = global start of key k + keys of value k
  // in earlier blocks — exactly where the serial stable scatter would put
  // block b's first k.
  std::vector<std::vector<long>> offsets(
      static_cast<std::size_t>(blocks), std::vector<long>(mk, 0));
  long running = 0;
  for (std::size_t k = 0; k < mk; ++k) {
    for (long b = 0; b < blocks; ++b) {
      offsets[static_cast<std::size_t>(b)][k] = running;
      running += counts[static_cast<std::size_t>(b)][k];
    }
  }
  // Per-block stable scatter.
  std::vector<long> ranks(keys.size());
  pf(blocks, [&](long begin, long end) {
    for (long b = begin; b < end; ++b) {
      auto local = offsets[static_cast<std::size_t>(b)];  // copy: mutated
      for (std::size_t i = block_lo(b); i < block_lo(b + 1); ++i) {
        ranks[i] = local[static_cast<std::size_t>(keys[i])]++;
      }
    }
  });
  return ranks;
}

std::vector<int> is_apply_ranks(std::span<const int> keys,
                                std::span<const long> ranks) {
  VGPU_ASSERT(keys.size() == ranks.size());
  std::vector<int> out(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto pos = static_cast<std::size_t>(ranks[i]);
    VGPU_ASSERT(pos < out.size());
    out[pos] = keys[i];
  }
  return out;
}

gpu::KernelLaunch is_launch(long n, int max_key) {
  gpu::KernelLaunch l;
  l.name = "npb_is_rank";
  l.geometry = gpu::KernelGeometry{256, 256, /*regs*/ 16,
                                   /*shmem*/ 16 * kKiB};
  // Histogram + scan + scatter chain with host synchronizations.
  l.host_serial_time = milliseconds(5.0);
  const double keys_per_thread =
      static_cast<double>(n) / (256.0 * 256.0);
  // Histogram + scan + scatter: ~10 ops per key, heavy on irregular
  // memory traffic; max_key adds the scan passes.
  const double scan = static_cast<double>(max_key) / (256.0 * 256.0);
  l.cost = gpu::KernelCost{10.0 * keys_per_thread + 4.0 * scan,
                           16.0 * keys_per_thread + 8.0 * scan,
                           /*efficiency*/ 0.25};
  return l;
}

}  // namespace vgpu::kernels
