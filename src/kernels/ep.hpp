// NAS Parallel Benchmarks "EP" (Embarrassingly Parallel) kernel — the
// paper's compute-intensive microbenchmark (class B, M = 30, Table II).
//
// EP generates 2^M pairs of uniform deviates with the NPB linear
// congruential generator, maps accepted pairs to independent Gaussian
// deviates with the Marsaglia polar method, and tallies them into ten
// square annuli. The generator supports O(log k) jump-ahead, which is what
// lets a partitioned (GPU-grid-style) computation produce bit-identical
// results to the sequential run — the property our tests verify.
#pragma once

#include <array>
#include <cstdint>

#include "common/parallel.hpp"
#include "gpu/cost.hpp"

namespace vgpu::kernels {

/// NPB LCG: x_{k+1} = a * x_k mod 2^46, a = 5^13. Returns values in (0,1).
class NpbRandom {
 public:
  static constexpr double kDefaultSeed = 271828183.0;

  explicit NpbRandom(double seed = kDefaultSeed);

  /// Next uniform deviate in (0, 1).
  double next();

  /// Advances the state by `k` steps in O(log k).
  void skip(std::uint64_t k);

  double state() const;

 private:
  std::uint64_t x_;  // 46-bit state
};

struct EpResult {
  double sx = 0.0;                 // sum of Gaussian X deviates
  double sy = 0.0;                 // sum of Gaussian Y deviates
  std::array<long, 10> q{};        // annulus counts
  long pairs_accepted = 0;

  long total_counts() const {
    long t = 0;
    for (long c : q) t += c;
    return t;
  }
};

/// Sequential EP over 2^m pairs.
EpResult ep_sequential(int m);

/// EP partitioned into `chunks` contiguous ranges, each seeded by
/// jump-ahead — the shape of the GPU-grid computation. Must equal
/// ep_sequential bit-for-bit (up to summation order of the chunk partials,
/// which we keep deterministic by combining in chunk order).
EpResult ep_chunked(int m, int chunks);

/// ep_chunked with the chunks distributed by `pf` (one chunk = one range
/// block). Partials are still combined in chunk order, so the result is
/// bit-identical to the serial ep_chunked — and to ep_sequential for the
/// tallies — however the chunk grid is sharded.
EpResult ep_chunked(int m, int chunks, const ParallelFor& pf);

/// One chunk of the ep_chunked partition: the work SPMD rank `chunk` of
/// `chunks` owns. Summing all chunks' results (in any order for the
/// integer tallies) reproduces ep_sequential.
EpResult ep_chunk_range(int m, int chunk, int chunks);

/// Launch descriptor for class-sized runs. The paper launches EP with a
/// deliberately tiny 4-block grid to expose concurrent kernel execution;
/// cost is calibrated so class B (m = 30) computes in ~8.95 s on the C2070
/// model (Table II).
gpu::KernelLaunch ep_launch(int m);

}  // namespace vgpu::kernels
