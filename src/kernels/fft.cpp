#include "kernels/fft.hpp"

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace vgpu::kernels {

void fft1d(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  VGPU_ASSERT_MSG((n & (n - 1)) == 0 && n >= 1, "FFT size must be 2^k");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * std::numbers::pi /
                         static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (Complex& c : data) c *= scale;
  }
}

void fft3d(Field3& field, bool inverse, const ParallelFor& pf) {
  const int n = field.n();
  const long lines = static_cast<long>(n) * n;  // per pass: n^2 lines
  // Along x. Line index l = z * n + y.
  pf(lines, [&](long begin, long end) {
    std::vector<Complex> line(static_cast<std::size_t>(n));
    for (long l = begin; l < end; ++l) {
      const int z = static_cast<int>(l / n);
      const int y = static_cast<int>(l % n);
      for (int x = 0; x < n; ++x) line[static_cast<std::size_t>(x)] = field.at(x, y, z);
      fft1d(line, inverse);
      for (int x = 0; x < n; ++x) field.at(x, y, z) = line[static_cast<std::size_t>(x)];
    }
  });
  // Along y. Line index l = z * n + x.
  pf(lines, [&](long begin, long end) {
    std::vector<Complex> line(static_cast<std::size_t>(n));
    for (long l = begin; l < end; ++l) {
      const int z = static_cast<int>(l / n);
      const int x = static_cast<int>(l % n);
      for (int y = 0; y < n; ++y) line[static_cast<std::size_t>(y)] = field.at(x, y, z);
      fft1d(line, inverse);
      for (int y = 0; y < n; ++y) field.at(x, y, z) = line[static_cast<std::size_t>(y)];
    }
  });
  // Along z. Line index l = y * n + x.
  pf(lines, [&](long begin, long end) {
    std::vector<Complex> line(static_cast<std::size_t>(n));
    for (long l = begin; l < end; ++l) {
      const int y = static_cast<int>(l / n);
      const int x = static_cast<int>(l % n);
      for (int z = 0; z < n; ++z) line[static_cast<std::size_t>(z)] = field.at(x, y, z);
      fft1d(line, inverse);
      for (int z = 0; z < n; ++z) field.at(x, y, z) = line[static_cast<std::size_t>(z)];
    }
  });
}

void ft_evolve(Field3& field, double t, double alpha, const ParallelFor& pf) {
  const int n = field.n();
  auto fold = [n](int k) { return k >= n / 2 ? k - n : k; };
  const double factor = -4.0 * alpha * std::numbers::pi * std::numbers::pi * t;
  pf(n, [&](long plane_begin, long plane_end) {
    for (int z = static_cast<int>(plane_begin); z < plane_end; ++z) {
      for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
          const double k2 = static_cast<double>(fold(x)) * fold(x) +
                            static_cast<double>(fold(y)) * fold(y) +
                            static_cast<double>(fold(z)) * fold(z);
          field.at(x, y, z) *= std::exp(factor * k2);
        }
      }
    }
  });
}

Field3 ft_make_field(int n, std::uint64_t seed) {
  Field3 field(n);
  Rng rng(seed);
  for (Complex& c : field.data()) {
    c = Complex(rng.next_double(), rng.next_double());
  }
  return field;
}

Complex ft_checksum(const Field3& field) {
  const auto size = field.data().size();
  Complex sum(0.0, 0.0);
  for (std::size_t j = 1; j <= 1024; ++j) {
    sum += field.data()[(j * 31) % size];
  }
  return sum;
}

gpu::KernelLaunch ft_launch(int n) {
  gpu::KernelLaunch l;
  l.name = "npb_ft_iter";
  l.geometry = gpu::KernelGeometry{128, 128, /*regs*/ 32, /*shmem*/ 8 * kKiB};
  // Like the other class-sized NPB ports, an FT iteration is a chain of
  // micro-kernels (three transform passes with transposes) whose
  // host-serial launch time dominates at small n.
  l.host_serial_time = milliseconds(15.0);
  const double cells = static_cast<double>(n) * n * n;
  // One iteration = 3 FFT passes (5 n log2 n flops per line-point each
  // direction) + the evolve pointwise pass; bandwidth-heavy.
  const double flops = cells * (15.0 * std::log2(static_cast<double>(n)) + 20.0);
  const double bytes = cells * 16.0 * 8.0;
  const double threads = 128.0 * 128.0;
  l.cost = gpu::KernelCost{flops / threads, bytes / threads,
                           /*efficiency*/ 0.3};
  return l;
}

}  // namespace vgpu::kernels
