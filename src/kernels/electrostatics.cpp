#include "kernels/electrostatics.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace vgpu::kernels {

void coulomb_rows(std::span<const Atom> atoms, const Lattice& lat,
                  std::span<float> out, float softening, long row_begin,
                  long row_end) {
  const float soft2 = softening * softening;
  for (long iy = row_begin; iy < row_end; ++iy) {
    const float y = static_cast<float>(iy) * lat.spacing;
    for (int ix = 0; ix < lat.nx; ++ix) {
      const float x = static_cast<float>(ix) * lat.spacing;
      float potential = 0.0f;
      for (const Atom& a : atoms) {
        const float dx = x - a.x;
        const float dy = y - a.y;
        const float dz = lat.z - a.z;
        const float r2 = dx * dx + dy * dy + dz * dz + soft2;
        potential += a.q / std::sqrt(r2);
      }
      out[static_cast<std::size_t>(iy) * lat.nx + ix] = potential;
    }
  }
}

void coulomb_slab(std::span<const Atom> atoms, const Lattice& lat,
                  std::span<float> out, float softening,
                  const ParallelFor& pf) {
  VGPU_ASSERT(out.size() == static_cast<std::size_t>(lat.nx) *
                                static_cast<std::size_t>(lat.ny));
  pf(lat.ny, [&](long begin, long end) {
    coulomb_rows(atoms, lat, out, softening, begin, end);
  });
}

std::vector<Atom> make_atoms(long n, float box, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Atom> atoms(static_cast<std::size_t>(n));
  for (Atom& a : atoms) {
    a.x = static_cast<float>(rng.uniform(0.0, box));
    a.y = static_cast<float>(rng.uniform(0.0, box));
    a.z = static_cast<float>(rng.uniform(0.0, box));
    a.q = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return atoms;
}

gpu::KernelLaunch electrostatics_launch(long n_atoms, long lattice_points) {
  gpu::KernelLaunch l;
  l.name = "coulomb_slab";
  // Paper Table IV: 288-block grid; each thread owns a few lattice points.
  l.geometry = gpu::KernelGeometry{288, 128, /*regs*/ 24, /*shmem*/ 0};
  const double points_per_thread =
      static_cast<double>(lattice_points) / (288.0 * 128.0);
  // Cutoff-binned summation: an average lattice point interacts with ~40%
  // of the atom cloud; 9 flops per interaction (3 subs, 3 FMAs, rsqrt,
  // mul, add). VMD's DCS kernels run near peak, hence efficiency 0.85;
  // the 288-block grid fills the C2070, so this kernel gains little from
  // concurrent execution (paper Section VI).
  const double interactions = 0.40 * static_cast<double>(n_atoms);
  l.cost = gpu::KernelCost{9.0 * interactions * points_per_thread,
                           16.0 * points_per_thread,
                           /*efficiency*/ 0.85};
  return l;
}

}  // namespace vgpu::kernels
