#include "kernels/mg.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace vgpu::kernels {

Stencil27 mg_operator_a() { return {-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0}; }
Stencil27 mg_smoother_c() {
  return {-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0};
}

void apply_stencil(const Stencil27& s, const Grid3& in, Grid3& out,
                   const ParallelFor& pf) {
  VGPU_ASSERT(in.n() == out.n());
  const int n = in.n();
  pf(n, [&](long plane_begin, long plane_end) {
  for (int i = static_cast<int>(plane_begin); i < plane_end; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int k = 0; k < n; ++k) {
        double faces = 0.0, edges = 0.0, corners = 0.0;
        for (int di = -1; di <= 1; ++di) {
          for (int dj = -1; dj <= 1; ++dj) {
            for (int dk = -1; dk <= 1; ++dk) {
              const int degree = std::abs(di) + std::abs(dj) + std::abs(dk);
              if (degree == 0) continue;
              const double v = in.at(i + di, j + dj, k + dk);
              if (degree == 1) {
                faces += v;
              } else if (degree == 2) {
                edges += v;
              } else {
                corners += v;
              }
            }
          }
        }
        out.at(i, j, k) =
            s.c0 * in.at(i, j, k) + s.c1 * faces + s.c2 * edges + s.c3 * corners;
      }
    }
  }
  });
}

void mg_resid(const Grid3& u, const Grid3& v, Grid3& r,
              const ParallelFor& pf) {
  VGPU_ASSERT(u.n() == v.n() && u.n() == r.n());
  Grid3 au(u.n());
  apply_stencil(mg_operator_a(), u, au, pf);
  const int n = u.n();
  pf(n, [&](long plane_begin, long plane_end) {
  for (int i = static_cast<int>(plane_begin); i < plane_end; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int k = 0; k < n; ++k) {
        r.at(i, j, k) = v.at(i, j, k) - au.at(i, j, k);
      }
    }
  }
  });
}

void mg_psinv(const Grid3& r, Grid3& u, const ParallelFor& pf) {
  VGPU_ASSERT(r.n() == u.n());
  Grid3 sr(r.n());
  apply_stencil(mg_smoother_c(), r, sr, pf);
  const int n = r.n();
  pf(n, [&](long plane_begin, long plane_end) {
  for (int i = static_cast<int>(plane_begin); i < plane_end; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int k = 0; k < n; ++k) {
        u.at(i, j, k) += sr.at(i, j, k);
      }
    }
  }
  });
}

void mg_rprj3(const Grid3& fine, Grid3& coarse, const ParallelFor& pf) {
  VGPU_ASSERT(fine.n() == 2 * coarse.n());
  const int nc = coarse.n();
  pf(nc, [&](long plane_begin, long plane_end) {
  for (int i = static_cast<int>(plane_begin); i < plane_end; ++i) {
    for (int j = 0; j < nc; ++j) {
      for (int k = 0; k < nc; ++k) {
        const int fi = 2 * i, fj = 2 * j, fk = 2 * k;
        double faces = 0.0, edges = 0.0, corners = 0.0;
        for (int di = -1; di <= 1; ++di) {
          for (int dj = -1; dj <= 1; ++dj) {
            for (int dk = -1; dk <= 1; ++dk) {
              const int degree = std::abs(di) + std::abs(dj) + std::abs(dk);
              if (degree == 0) continue;
              const double v = fine.at(fi + di, fj + dj, fk + dk);
              if (degree == 1) {
                faces += v;
              } else if (degree == 2) {
                edges += v;
              } else {
                corners += v;
              }
            }
          }
        }
        coarse.at(i, j, k) = 0.5 * fine.at(fi, fj, fk) + 0.25 * faces +
                             0.125 * edges + 0.0625 * corners;
      }
    }
  }
  });
}

void mg_interp(const Grid3& coarse, Grid3& fine, const ParallelFor& pf) {
  VGPU_ASSERT(fine.n() == 2 * coarse.n());
  const int nc = coarse.n();
  // Trilinear prolongation: each fine point receives the average of the
  // 1, 2, 4 or 8 coarse points it sits between.
  pf(nc, [&](long plane_begin, long plane_end) {
  for (int i = static_cast<int>(plane_begin); i < plane_end; ++i) {
    for (int j = 0; j < nc; ++j) {
      for (int k = 0; k < nc; ++k) {
        for (int di = 0; di <= 1; ++di) {
          for (int dj = 0; dj <= 1; ++dj) {
            for (int dk = 0; dk <= 1; ++dk) {
              double sum = 0.0;
              int cnt = 0;
              for (int ci = 0; ci <= di; ++ci) {
                for (int cj = 0; cj <= dj; ++cj) {
                  for (int ck = 0; ck <= dk; ++ck) {
                    sum += coarse.at(i + ci, j + cj, k + ck);
                    ++cnt;
                  }
                }
              }
              fine.at(2 * i + di, 2 * j + dj, 2 * k + dk) +=
                  sum / static_cast<double>(cnt);
            }
          }
        }
      }
    }
  }
  });
}

double mg_residual_norm(const Grid3& u, const Grid3& v) {
  Grid3 r(u.n());
  mg_resid(u, v, r);
  double acc = 0.0;
  for (double x : r.data()) acc += x * x;
  return std::sqrt(acc / static_cast<double>(r.data().size()));
}

Grid3 mg_make_rhs(int n, int charges, std::uint64_t seed) {
  Grid3 v(n);
  Rng rng(seed);
  for (int sign = 0; sign < 2; ++sign) {
    for (int c = 0; c < charges; ++c) {
      const int i = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
      const int j = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
      const int k = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
      v.at(i, j, k) = (sign == 0) ? 1.0 : -1.0;
    }
  }
  return v;
}

namespace {

/// Recursive V-cycle on residual r, producing correction z (NPB mg3P).
void vcycle_correct(const Grid3& r, Grid3& z, const ParallelFor& pf) {
  const int n = r.n();
  z.fill(0.0);
  if (n <= 4) {
    mg_psinv(r, z, pf);  // coarsest level: one smoothing pass
    return;
  }
  // Restrict residual, solve coarse, prolongate.
  Grid3 rc(n / 2);
  mg_rprj3(r, rc, pf);
  Grid3 zc(n / 2);
  vcycle_correct(rc, zc, pf);
  mg_interp(zc, z, pf);
  // Post-smoothing: r' = r - A z; z += S r'.
  Grid3 rf(n);
  mg_resid(z, r, rf, pf);
  mg_psinv(rf, z, pf);
}

}  // namespace

void mg_vcycle(Grid3& u, const Grid3& v, const ParallelFor& pf) {
  VGPU_ASSERT(u.n() == v.n());
  Grid3 r(u.n());
  mg_resid(u, v, r, pf);
  Grid3 z(u.n());
  vcycle_correct(r, z, pf);
  const int n = u.n();
  pf(n, [&](long plane_begin, long plane_end) {
  for (int i = static_cast<int>(plane_begin); i < plane_end; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int k = 0; k < n; ++k) {
        u.at(i, j, k) += z.at(i, j, k);
      }
    }
  }
  });
}

gpu::KernelLaunch mg_launch(int n) {
  gpu::KernelLaunch l;
  l.name = "npb_mg_vcycle";
  // Paper Table IV: class S runs with a 64-block grid — small enough that
  // several processes' V-cycles co-execute on the device.
  l.geometry = gpu::KernelGeometry{64, 128, /*regs*/ 32, /*shmem*/ 4 * kKiB};
  // This descriptor aggregates one whole V-cycle of the class-S port: a
  // chain of per-level micro-kernels (resid / psinv / rprj3 / interp down
  // to 4^3) with host synchronizations between them. Two calibrated
  // components (see EXPERIMENTS.md):
  //  * ~31 ms of host/driver-serial launch-chain time per V-cycle — this
  //    serializes across processes on Fermi's single dispatch queue;
  //  * ~30 ms of deeply latency-bound device time (grids this small cannot
  //    occupy the machine, efficiency ~2.7%), which co-executes freely
  //    across processes — the source of MG's leading Figure 16 speedup.
  (void)n;
  l.host_serial_time = milliseconds(31.0);
  const double threads = 64.0 * 128.0;
  const double total_flops = 3.8e9;  // 30 ms at 2.7% of one SM per block
  l.cost = gpu::KernelCost{total_flops / threads, 40.0,
                           /*efficiency*/ 0.027};
  return l;
}

}  // namespace vgpu::kernels
