// BLAS-1 style data-parallel kernels: vector addition (the paper's
// I/O-intensive microbenchmark), SAXPY, sum-reduction and dot product.
//
// Each kernel has (a) a functional host implementation producing the exact
// result the GPU kernel would, and (b) a launch descriptor carrying the
// geometry and cost model used by the simulated device. The paper's vector
// addition uses 50M floats and a 50K-block grid (Table II).
#pragma once

#include <span>

#include "gpu/cost.hpp"

namespace vgpu::kernels {

// --- functional bodies -----------------------------------------------------

/// c[i] = a[i] + b[i].
void vecadd(std::span<const float> a, std::span<const float> b,
            std::span<float> c);

/// y[i] += alpha * x[i].
void saxpy(float alpha, std::span<const float> x, std::span<float> y);

/// Pairwise (tree) sum reduction — matches a GPU reduction's associativity
/// more closely than a linear sum and is deterministic.
float reduce_sum(std::span<const float> x);

/// Pairwise dot product.
float dot(std::span<const float> x, std::span<const float> y);

// --- launch descriptors ------------------------------------------------------

/// Vector addition over n elements; 1024-thread blocks as in the paper's
/// 50M-element / 50K-block configuration.
gpu::KernelLaunch vecadd_launch(long n);

gpu::KernelLaunch saxpy_launch(long n);

/// First-pass reduction kernel (grid-stride, one partial per block).
gpu::KernelLaunch reduce_launch(long n);

}  // namespace vgpu::kernels
