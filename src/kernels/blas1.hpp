// BLAS-1 style data-parallel kernels: vector addition (the paper's
// I/O-intensive microbenchmark), SAXPY, sum-reduction and dot product.
//
// Each kernel has (a) a functional host implementation producing the exact
// result the GPU kernel would, and (b) a launch descriptor carrying the
// geometry and cost model used by the simulated device. The paper's vector
// addition uses 50M floats and a 50K-block grid (Table II).
//
// The elementwise kernels additionally expose `_blocks` range functions —
// the launch grid's blocks are the unit — and ParallelFor-aware overloads
// so the execution engine can shard one launch across cores. Elementwise
// blocks write disjoint ranges, so sharded results are bitwise equal to
// the serial path; the block-partitioned reductions combine one partial
// per block and match the serial pairwise sum to a few ULP.
#pragma once

#include <span>

#include "common/parallel.hpp"
#include "gpu/cost.hpp"

namespace vgpu::kernels {

// --- functional bodies -----------------------------------------------------

/// Elements per launch block for vecadd/saxpy (1024-thread blocks).
inline constexpr long kVecBlock = 1024;

/// c[i] = a[i] + b[i] for i in blocks [block_begin, block_end) of
/// kVecBlock elements each.
void vecadd_blocks(std::span<const float> a, std::span<const float> b,
                   std::span<float> c, long block_begin, long block_end);

/// c[i] = a[i] + b[i].
void vecadd(std::span<const float> a, std::span<const float> b,
            std::span<float> c, const ParallelFor& pf = serial_executor());

/// y[i] += alpha * x[i] for blocks [block_begin, block_end).
void saxpy_blocks(float alpha, std::span<const float> x, std::span<float> y,
                  long block_begin, long block_end);

/// y[i] += alpha * x[i].
void saxpy(float alpha, std::span<const float> x, std::span<float> y,
           const ParallelFor& pf = serial_executor());

/// Pairwise (tree) sum reduction — matches a GPU reduction's associativity
/// more closely than a linear sum and is deterministic.
float reduce_sum(std::span<const float> x);

/// Block-partitioned reduction: one pairwise partial per contiguous block
/// (reduce_blocks(n) of them), partials combined pairwise. Deterministic
/// for a given n, equal to reduce_sum within a few ULP.
float reduce_sum(std::span<const float> x, const ParallelFor& pf);

/// Pairwise dot product.
float dot(std::span<const float> x, std::span<const float> y);

/// Block-partitioned dot product (same structure as the sharded
/// reduce_sum; products never materialize as a full vector).
float dot(std::span<const float> x, std::span<const float> y,
          const ParallelFor& pf);

/// Number of partial-producing blocks the sharded reductions use for n
/// elements — mirrors reduce_launch's grid.
long reduce_blocks(long n);

// --- launch descriptors ------------------------------------------------------

/// Vector addition over n elements; 1024-thread blocks as in the paper's
/// 50M-element / 50K-block configuration.
gpu::KernelLaunch vecadd_launch(long n);

gpu::KernelLaunch saxpy_launch(long n);

/// First-pass reduction kernel (grid-stride, one partial per block).
gpu::KernelLaunch reduce_launch(long n);

}  // namespace vgpu::kernels
