#include "kernels/blackscholes.hpp"

#include <algorithm>
#include <cmath>

#include "common/math.hpp"
#include "common/status.hpp"

namespace vgpu::kernels {

float cnd(float d) {
  // Abramowitz & Stegun 26.2.17, as used by the CUDA SDK sample.
  constexpr float a1 = 0.31938153f;
  constexpr float a2 = -0.356563782f;
  constexpr float a3 = 1.781477937f;
  constexpr float a4 = -1.821255978f;
  constexpr float a5 = 1.330274429f;
  constexpr float rsqrt2pi = 0.39894228040143267794f;

  const float k = 1.0f / (1.0f + 0.2316419f * std::fabs(d));
  float c = rsqrt2pi * std::exp(-0.5f * d * d) *
            (k * (a1 + k * (a2 + k * (a3 + k * (a4 + k * a5)))));
  if (d > 0) c = 1.0f - c;
  return c;
}

long black_scholes_blocks(long n_options) {
  return ceil_div(n_options, kBsBlock);
}

void black_scholes_blocks(const OptionBatch& batch, std::span<float> call,
                          std::span<float> put, long block_begin,
                          long block_end) {
  const auto n = static_cast<long>(batch.stock_price.size());
  const auto lo = static_cast<std::size_t>(std::min(n, block_begin * kBsBlock));
  const auto hi = static_cast<std::size_t>(std::min(n, block_end * kBsBlock));
  for (std::size_t i = lo; i < hi; ++i) {
    const float s = batch.stock_price[i];
    const float x = batch.strike_price[i];
    const float t = batch.years[i];
    const float sqrt_t = std::sqrt(t);
    const float d1 =
        (std::log(s / x) +
         (batch.riskfree + 0.5f * batch.volatility * batch.volatility) * t) /
        (batch.volatility * sqrt_t);
    const float d2 = d1 - batch.volatility * sqrt_t;
    const float exp_rt = std::exp(-batch.riskfree * t);
    call[i] = s * cnd(d1) - x * exp_rt * cnd(d2);
    put[i] = x * exp_rt * cnd(-d2) - s * cnd(-d1);
  }
}

void black_scholes(const OptionBatch& batch, std::span<float> call,
                   std::span<float> put, const ParallelFor& pf) {
  const std::size_t n = batch.stock_price.size();
  VGPU_ASSERT(batch.strike_price.size() == n && batch.years.size() == n);
  VGPU_ASSERT(call.size() == n && put.size() == n);
  pf(black_scholes_blocks(static_cast<long>(n)), [&](long begin, long end) {
    black_scholes_blocks(batch, call, put, begin, end);
  });
}

gpu::KernelLaunch black_scholes_launch(long n_options) {
  gpu::KernelLaunch l;
  l.name = "black_scholes";
  // The SDK kernel uses a fixed 480-block grid-stride loop (paper Table IV).
  l.geometry = gpu::KernelGeometry{480, 128, /*regs*/ 20, /*shmem*/ 0};
  const double opts_per_thread =
      static_cast<double>(n_options) / (480.0 * 128.0);
  // ~55 flops per option (exp/log/sqrt expanded), 5 floats in + 2 out.
  l.cost = gpu::KernelCost{55.0 * opts_per_thread, 28.0 * opts_per_thread,
                           /*efficiency*/ 0.5};
  return l;
}

}  // namespace vgpu::kernels
