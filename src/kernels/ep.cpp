#include "kernels/ep.hpp"

#include <cmath>
#include <vector>

#include "common/status.hpp"

namespace vgpu::kernels {

namespace {
constexpr std::uint64_t kMod46 = (1ULL << 46) - 1;  // mask for mod 2^46
constexpr std::uint64_t kA = 1220703125ULL;         // 5^13

std::uint64_t mulmod46(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) & kMod46);
}

std::uint64_t powmod46(std::uint64_t a, std::uint64_t k) {
  std::uint64_t result = 1;
  std::uint64_t base = a & kMod46;
  while (k > 0) {
    if (k & 1) result = mulmod46(result, base);
    base = mulmod46(base, base);
    k >>= 1;
  }
  return result;
}
}  // namespace

NpbRandom::NpbRandom(double seed) {
  x_ = static_cast<std::uint64_t>(seed) & kMod46;
  VGPU_ASSERT(x_ != 0);
}

double NpbRandom::next() {
  x_ = mulmod46(kA, x_);
  return static_cast<double>(x_) * 0x1.0p-46;
}

void NpbRandom::skip(std::uint64_t k) {
  x_ = mulmod46(powmod46(kA, k), x_);
}

double NpbRandom::state() const { return static_cast<double>(x_); }

namespace {

/// Core EP loop over `pairs` pairs drawn from `rng`; accumulates into `out`.
void ep_accumulate(NpbRandom& rng, long pairs, EpResult& out) {
  for (long i = 0; i < pairs; ++i) {
    const double u1 = rng.next();
    const double u2 = rng.next();
    const double x = 2.0 * u1 - 1.0;
    const double y = 2.0 * u2 - 1.0;
    const double t = x * x + y * y;
    if (t <= 1.0) {
      const double factor = std::sqrt(-2.0 * std::log(t) / t);
      const double gx = x * factor;
      const double gy = y * factor;
      out.sx += gx;
      out.sy += gy;
      // NPB uses NQ = 10 annuli; deviates beyond the last annulus have
      // probability ~1e-22 per pair but are clamped rather than asserted.
      const auto bucket = std::min<std::size_t>(
          static_cast<std::size_t>(std::max(std::fabs(gx), std::fabs(gy))),
          out.q.size() - 1);
      ++out.q[bucket];
      ++out.pairs_accepted;
    }
  }
}

}  // namespace

EpResult ep_sequential(int m) {
  VGPU_ASSERT(m >= 1 && m <= 36);
  EpResult result;
  NpbRandom rng;
  ep_accumulate(rng, 1L << m, result);
  return result;
}

namespace {

/// Contiguous pair range [start, start + count) owned by `chunk` of
/// `chunks`, using the balanced remainder-spreading split.
std::pair<long, long> chunk_bounds(int m, int chunk, int chunks) {
  const long total_pairs = 1L << m;
  long done = 0;
  for (int c = 0; c < chunk; ++c) {
    done += (total_pairs - done) / (chunks - c);
  }
  const long mine = (total_pairs - done) / (chunks - chunk);
  return {done, mine};
}

}  // namespace

EpResult ep_chunk_range(int m, int chunk, int chunks) {
  VGPU_ASSERT(m >= 1 && m <= 36);
  VGPU_ASSERT(chunks >= 1 && chunk >= 0 && chunk < chunks);
  const auto [start, count] = chunk_bounds(m, chunk, chunks);
  EpResult result;
  if (count == 0) return result;
  NpbRandom rng;
  rng.skip(static_cast<std::uint64_t>(start) * 2);  // 2 deviates per pair
  ep_accumulate(rng, count, result);
  return result;
}

EpResult ep_chunked(int m, int chunks) {
  VGPU_ASSERT(m >= 1 && m <= 36);
  VGPU_ASSERT(chunks >= 1);
  EpResult result;
  for (int c = 0; c < chunks; ++c) {
    const EpResult partial = ep_chunk_range(m, c, chunks);
    result.sx += partial.sx;
    result.sy += partial.sy;
    for (std::size_t i = 0; i < result.q.size(); ++i) {
      result.q[i] += partial.q[i];
    }
    result.pairs_accepted += partial.pairs_accepted;
  }
  return result;
}

EpResult ep_chunked(int m, int chunks, const ParallelFor& pf) {
  VGPU_ASSERT(m >= 1 && m <= 36);
  VGPU_ASSERT(chunks >= 1);
  std::vector<EpResult> partials(static_cast<std::size_t>(chunks));
  pf(chunks, [&](long begin, long end) {
    for (long c = begin; c < end; ++c) {
      partials[static_cast<std::size_t>(c)] =
          ep_chunk_range(m, static_cast<int>(c), chunks);
    }
  });
  // Combine in chunk order: the double sums then accumulate in exactly
  // the order the serial ep_chunked uses.
  EpResult result;
  for (const EpResult& partial : partials) {
    result.sx += partial.sx;
    result.sy += partial.sy;
    for (std::size_t i = 0; i < result.q.size(); ++i) {
      result.q[i] += partial.q[i];
    }
    result.pairs_accepted += partial.pairs_accepted;
  }
  return result;
}

gpu::KernelLaunch ep_launch(int m) {
  gpu::KernelLaunch l;
  l.name = "npb_ep";
  // Paper Table II: class B run with a 4-block grid (intentionally small so
  // eight SPMD instances can execute concurrently).
  l.geometry = gpu::KernelGeometry{4, 128, /*regs*/ 28, /*shmem*/ 0};
  const double pairs = static_cast<double>(1L << m);
  const double pairs_per_thread = pairs / (4.0 * 128.0);
  // ~105 flops per pair; a 4-block grid of 128 threads is deeply
  // latency-bound (16 warps on the whole GPU, double-precision log/sqrt,
  // divergent rejection loop), hence the very low per-block efficiency —
  // calibrated so class B computes in ~8.95 s (paper Table II). The same
  // latency-boundedness is why eight EP instances co-execute for free.
  l.cost = gpu::KernelCost{105.0 * pairs_per_thread, 0.0,
                           /*efficiency*/ 0.043};
  return l;
}

}  // namespace vgpu::kernels
