// NAS Parallel Benchmarks "FT" kernel (extension workload; the paper's
// suite draws EP/MG/CG from the same NPB family): a 3-D complex FFT used
// to solve a partial differential equation spectrally.
//
// The functional implementation is an iterative radix-2 Cooley-Tukey
// transform applied along each dimension, with the NPB evolve step
// (pointwise multiplication by Gaussian decay factors) between transforms.
#pragma once

#include <complex>
#include <vector>

#include "common/parallel.hpp"
#include "gpu/cost.hpp"

namespace vgpu::kernels {

using Complex = std::complex<double>;

/// In-place 1-D radix-2 FFT; `n` must be a power of two.
/// `inverse` applies the conjugate transform and 1/n scaling.
void fft1d(std::vector<Complex>& data, bool inverse);

/// Dense n^3 complex field, row-major (x fastest).
class Field3 {
 public:
  explicit Field3(int n) : n_(n), data_(static_cast<std::size_t>(n) * n * n) {}

  int n() const { return n_; }
  Complex& at(int x, int y, int z) { return data_[index(x, y, z)]; }
  Complex at(int x, int y, int z) const { return data_[index(x, y, z)]; }
  std::vector<Complex>& data() { return data_; }
  const std::vector<Complex>& data() const { return data_; }

 private:
  std::size_t index(int x, int y, int z) const {
    return (static_cast<std::size_t>(z) * n_ + y) * n_ + x;
  }
  int n_;
  std::vector<Complex> data_;
};

/// 3-D FFT: 1-D transforms along x, then y, then z (inverse reverses the
/// scaling as in fft1d). Each pass shards its n^2 independent lines via
/// `pf` (per-shard line scratch); lines are independent, so sharded runs
/// are bitwise identical to serial ones.
void fft3d(Field3& field, bool inverse,
           const ParallelFor& pf = serial_executor());

/// NPB FT evolve step: multiply each mode (kx, ky, kz) by
/// exp(-4 alpha pi^2 |k~|^2 t), with wavenumbers folded to [-n/2, n/2).
/// `pf` shards the z-planes (pointwise, bitwise-exact under sharding).
void ft_evolve(Field3& field, double t, double alpha = 1e-6,
               const ParallelFor& pf = serial_executor());

/// Deterministic pseudo-random initial field.
Field3 ft_make_field(int n, std::uint64_t seed = 271828);

/// NPB-style checksum: sum of 1024 strided field elements.
Complex ft_checksum(const Field3& field);

/// Launch descriptor for one FT iteration (forward FFT + evolve + inverse)
/// at size n^3; an extension workload, so the geometry follows the same
/// partial-GPU pattern as the class-S NPB ports.
gpu::KernelLaunch ft_launch(int n);

}  // namespace vgpu::kernels
