#include "kernels/matmul.hpp"

#include <algorithm>
#include <cstring>

#include "common/math.hpp"
#include "common/status.hpp"

namespace vgpu::kernels {

namespace {
constexpr int kTile = 32;  // matches the GPU kernel's 32x32 tile
}

long sgemm_tiles(int n) {
  return ceil_div(static_cast<long>(n), static_cast<long>(kTile));
}

void sgemm_blocks(std::span<const float> a, std::span<const float> b,
                  std::span<float> c, int n, long block_begin,
                  long block_end) {
  const long tiles = sgemm_tiles(n);
  for (long blk = block_begin; blk < block_end; ++blk) {
    const int ii = static_cast<int>(blk / tiles) * kTile;
    const int jj = static_cast<int>(blk % tiles) * kTile;
    const int imax = std::min(ii + kTile, n);
    const int jmax = std::min(jj + kTile, n);
    for (int i = ii; i < imax; ++i) {
      std::memset(&c[static_cast<std::size_t>(i) * n + jj], 0,
                  static_cast<std::size_t>(jmax - jj) * sizeof(float));
    }
    // k-tiles ascending: each C element accumulates its products in the
    // same order as the serial kernel, so results are bitwise identical
    // regardless of how the tile grid is partitioned.
    for (int kk = 0; kk < n; kk += kTile) {
      const int kmax = std::min(kk + kTile, n);
      for (int i = ii; i < imax; ++i) {
        for (int k = kk; k < kmax; ++k) {
          const float aik = a[static_cast<std::size_t>(i) * n + k];
          const float* brow = &b[static_cast<std::size_t>(k) * n + jj];
          float* crow = &c[static_cast<std::size_t>(i) * n + jj];
          for (int j = 0; j < jmax - jj; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
}

void sgemm(std::span<const float> a, std::span<const float> b,
           std::span<float> c, int n, const ParallelFor& pf) {
  const auto nn = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  VGPU_ASSERT(a.size() == nn && b.size() == nn && c.size() == nn);
  const long tiles = sgemm_tiles(n);
  pf(tiles * tiles, [&](long begin, long end) {
    sgemm_blocks(a, b, c, n, begin, end);
  });
}

void sgemm_reference(std::span<const float> a, std::span<const float> b,
                     std::span<float> c, int n) {
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < n; ++k) {
        acc += a[static_cast<std::size_t>(i) * n + k] *
               b[static_cast<std::size_t>(k) * n + j];
      }
      c[static_cast<std::size_t>(i) * n + j] = acc;
    }
  }
}

gpu::KernelLaunch matmul_launch(int n) {
  VGPU_ASSERT(n >= 1);
  gpu::KernelLaunch l;
  l.name = "sgemm";
  const long tiles = sgemm_tiles(n);
  l.geometry = gpu::KernelGeometry{
      tiles * tiles, kTile * kTile, /*regs*/ 24,
      /*shmem: two 32x32 float tiles*/ 2 * kTile * kTile * 4};
  // Per thread (one C element): 2n flops. The benchmarked MM port stages
  // only one operand through shared memory, so the other streams from DRAM
  // with ~50% cache filtering: ~4n bytes of global traffic per thread.
  // This makes MM memory-bound (~300 ms at n = 2048), consistent with its
  // "intermediate" classification in the paper's Table IV.
  l.cost = gpu::KernelCost{2.0 * n, 4.0 * n,
                           /*efficiency*/ 0.75};
  return l;
}

}  // namespace vgpu::kernels
