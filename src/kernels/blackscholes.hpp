// Black-Scholes European option pricing (paper Table IV: 1M options,
// Nit = 512 pricing rounds; adapted from the CUDA SDK benchmark [21]).
#pragma once

#include <span>

#include "common/parallel.hpp"
#include "gpu/cost.hpp"

namespace vgpu::kernels {

struct OptionBatch {
  std::span<const float> stock_price;   // S
  std::span<const float> strike_price;  // X
  std::span<const float> years;         // T
  float riskfree = 0.02f;               // r
  float volatility = 0.30f;             // v
};

/// Options per range block for the sharded kernel (one 128-thread block's
/// worth of the SDK grid-stride loop).
inline constexpr long kBsBlock = 128;

/// Number of kBsBlock-sized range blocks covering n options.
long black_scholes_blocks(long n_options);

/// Prices options in blocks [block_begin, block_end) of kBsBlock each.
/// Elementwise, so any partition prices bitwise-identically.
void black_scholes_blocks(const OptionBatch& batch, std::span<float> call,
                          std::span<float> put, long block_begin,
                          long block_end);

/// Prices every option: call[i], put[i] from batch inputs.
void black_scholes(const OptionBatch& batch, std::span<float> call,
                   std::span<float> put,
                   const ParallelFor& pf = serial_executor());

/// Cumulative normal distribution (polynomial approximation used by the
/// CUDA SDK kernel); exposed for tests.
float cnd(float d);

/// Launch descriptor: grid of 480 blocks as in the paper (fills the C2070 —
/// the reason BlackScholes barely benefits from concurrent kernels).
gpu::KernelLaunch black_scholes_launch(long n_options);

}  // namespace vgpu::kernels
