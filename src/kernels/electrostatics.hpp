// Direct Coulomb summation onto a regular lattice — the molecular
// electrostatics kernel from VMD that the paper benchmarks (Table IV:
// 100K atoms, 25 iterations, 288-block grid, compute-intensive,
// device-filling).
//
// Each lattice point accumulates sum_i q_i / r_i over all atoms (a small
// softening distance avoids the singularity at zero range, standard in the
// VMD kernel family). One "iteration" computes one lattice slab, matching
// the slice-by-slice structure of the VMD port.
#pragma once

#include <span>
#include <vector>

#include "common/parallel.hpp"
#include "gpu/cost.hpp"

namespace vgpu::kernels {

struct Atom {
  float x, y, z;  // position (Angstrom)
  float q;        // charge
};

struct Lattice {
  int nx = 0, ny = 0;
  float spacing = 0.5f;  // grid spacing
  float z = 0.0f;        // slab plane
};

/// Computes lattice rows [row_begin, row_end) of the slab (one row = one
/// range block; rows write disjoint output, so sharding is bitwise-exact).
void coulomb_rows(std::span<const Atom> atoms, const Lattice& lat,
                  std::span<float> out, float softening, long row_begin,
                  long row_end);

/// Potential at every (ix, iy) lattice point of slab `lat`:
/// out[iy*nx + ix] = sum_i q_i / sqrt(r2 + softening^2).
void coulomb_slab(std::span<const Atom> atoms, const Lattice& lat,
                  std::span<float> out, float softening = 0.05f,
                  const ParallelFor& pf = serial_executor());

/// Deterministic random atom cloud in a box of side `box`.
std::vector<Atom> make_atoms(long n, float box, std::uint64_t seed = 8675309);

/// Launch descriptor for one slab iteration. Paper Table IV: a 288-block
/// grid — large enough to fill the C2070 by itself, which is why
/// electrostatics gains little from concurrent kernels and benefits mainly
/// from eliminated context switching / initialization.
gpu::KernelLaunch electrostatics_launch(long n_atoms, long lattice_points);

}  // namespace vgpu::kernels
