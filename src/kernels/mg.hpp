// NAS Parallel Benchmarks "MG" kernel: V-cycle multigrid on a 3-D periodic
// grid (paper Table IV: class S = 32^3, 4 iterations, 64-block grid,
// compute-intensive).
//
// The functional implementation follows the NPB structure: a 27-point
// operator A and smoother S classified by Manhattan degree (center, faces,
// edges, corners), full-weighting restriction (rprj3) and trilinear
// prolongation (interp), iterated as u += M^k (v - A u).
#pragma once

#include <vector>

#include "common/parallel.hpp"
#include "gpu/cost.hpp"

namespace vgpu::kernels {

/// Dense n^3 grid of doubles with periodic (wraparound) indexing.
class Grid3 {
 public:
  explicit Grid3(int n) : n_(n), data_(static_cast<std::size_t>(n) * n * n) {}

  int n() const { return n_; }

  double& at(int i, int j, int k) { return data_[index(i, j, k)]; }
  double at(int i, int j, int k) const { return data_[index(i, j, k)]; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  std::size_t index(int i, int j, int k) const {
    const int ii = wrap(i), jj = wrap(j), kk = wrap(k);
    return (static_cast<std::size_t>(ii) * n_ + jj) * n_ + kk;
  }
  int wrap(int i) const {
    i %= n_;
    return i < 0 ? i + n_ : i;
  }

  int n_;
  std::vector<double> data_;
};

/// 27-point stencil coefficients by Manhattan degree [center, face, edge,
/// corner].
struct Stencil27 {
  double c0, c1, c2, c3;
};

/// NPB operator A and class-S smoother S.
Stencil27 mg_operator_a();
Stencil27 mg_smoother_c();

// Every stage takes a ParallelFor (serial by default). The block unit is
// an i-plane of the output grid; planes write disjoint cells, so sharded
// runs are bitwise identical to the serial ones.

/// out = stencil applied to in (periodic).
void apply_stencil(const Stencil27& s, const Grid3& in, Grid3& out,
                   const ParallelFor& pf = serial_executor());

/// r = v - A u.
void mg_resid(const Grid3& u, const Grid3& v, Grid3& r,
              const ParallelFor& pf = serial_executor());

/// u += S r.
void mg_psinv(const Grid3& r, Grid3& u,
              const ParallelFor& pf = serial_executor());

/// Full-weighting restriction: coarse (n/2) from fine (n).
void mg_rprj3(const Grid3& fine, Grid3& coarse,
              const ParallelFor& pf = serial_executor());

/// Trilinear prolongation: fine += P(coarse). Block unit: coarse i-planes
/// (coarse plane i writes fine planes 2i and 2i+1 — disjoint per plane).
void mg_interp(const Grid3& coarse, Grid3& fine,
               const ParallelFor& pf = serial_executor());

/// L2 norm of v - A u.
double mg_residual_norm(const Grid3& u, const Grid3& v);

/// NPB-style right-hand side: +1 at `charges` random cells, -1 at another
/// `charges` cells (deterministic for a given seed).
Grid3 mg_make_rhs(int n, int charges = 10, std::uint64_t seed = 314159265);

/// One V-cycle of u += M^k (v - A u), recursing down to 4^3. The stage
/// chain runs in order (each stage is a barrier); `pf` shards each
/// stage's plane loop.
void mg_vcycle(Grid3& u, const Grid3& v,
               const ParallelFor& pf = serial_executor());

/// Launch descriptor for one class-sized V-cycle iteration (paper: grid 64).
gpu::KernelLaunch mg_launch(int n);

}  // namespace vgpu::kernels
