// NAS Parallel Benchmarks "IS" kernel (extension workload): integer
// bucket sort / key ranking.
//
// NPB IS ranks N keys drawn from [0, max_key): rank[i] is the position of
// keys[i] in the sorted order (stable for equal keys). The functional
// implementation is a counting sort, exactly the algorithm GPU IS ports
// use (histogram + prefix sum + scatter).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/parallel.hpp"
#include "gpu/cost.hpp"

namespace vgpu::kernels {

/// Deterministic key sequence in [0, max_key) (NPB uses a Gaussian-ish
/// sum-of-uniforms distribution; we keep that shape).
std::vector<int> is_make_keys(long n, int max_key,
                              std::uint64_t seed = 314159);

/// Stable counting-sort ranks: rank[i] = final position of keys[i].
std::vector<long> is_rank(std::span<const int> keys, int max_key);

/// Number of key blocks the sharded is_rank partitions the input into
/// (bounded so per-block histograms stay small).
long is_rank_blocks(long n);

/// Sharded stable ranks: per-block histograms, a serial global scan
/// assigning each block its per-key offsets, then a per-block stable
/// scatter. Identical output to is_rank for any partition — the GPU
/// histogram/scan/scatter chain, block-decomposed.
std::vector<long> is_rank(std::span<const int> keys, int max_key,
                          const ParallelFor& pf);

/// Applies ranks: out[rank[i]] = keys[i]; out is sorted iff ranks are
/// correct (used by the verification path).
std::vector<int> is_apply_ranks(std::span<const int> keys,
                                std::span<const long> ranks);

/// Launch descriptor for one ranking pass over n keys.
gpu::KernelLaunch is_launch(long n, int max_key);

}  // namespace vgpu::kernels
