// NAS Parallel Benchmarks "CG" kernel: conjugate gradient on a random
// sparse symmetric positive-definite matrix (paper Table IV: class S,
// NA = 1400, 15 iterations, 8-block grid, compute-intensive).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/parallel.hpp"
#include "gpu/cost.hpp"

namespace vgpu::kernels {

/// Compressed sparse row matrix (square).
struct CsrMatrix {
  int n = 0;
  std::vector<int> row_ptr;  // size n + 1
  std::vector<int> col;      // size nnz
  std::vector<double> val;   // size nnz

  long nnz() const { return static_cast<long>(col.size()); }
};

/// Random sparse SPD matrix in NPB style: symmetric off-diagonal pattern
/// with ~nz_per_row entries per row, made positive definite by a dominant
/// diagonal shift.
CsrMatrix cg_make_matrix(int n, int nz_per_row, double shift,
                         std::uint64_t seed = 12345);

/// y = A x. `pf` shards the row loop (rows write disjoint outputs, so
/// sharding is bitwise-exact).
void spmv(const CsrMatrix& a, std::span<const double> x, std::span<double> y,
          const ParallelFor& pf = serial_executor());

struct CgResult {
  int iterations = 0;
  double final_residual = 0.0;         // ||b - A x||
  std::vector<double> residual_history;
};

/// Conjugate gradient for A x = b starting from x = 0; stops at max_iters
/// or when the residual norm falls below tol. `pf` shards spmv and the
/// axpy updates; the dot products stay serial (a fixed reduction order),
/// so sharded runs are bitwise identical to serial ones.
CgResult cg_solve(const CsrMatrix& a, std::span<const double> b,
                  std::span<double> x, int max_iters, double tol = 0.0,
                  const ParallelFor& pf = serial_executor());

/// Launch descriptor for one CG iteration (spmv + axpys + dots). Paper
/// Table IV: an 8-block grid — tiny, so eight processes' CG iterations
/// co-execute fully on the device.
gpu::KernelLaunch cg_launch(int na, int nz_per_row);

}  // namespace vgpu::kernels
