// Single-precision dense matrix multiplication (the paper's "MM" benchmark:
// 2048x2048, 4096-block grid of 32x32 tiles, Table IV).
#pragma once

#include <span>

#include "gpu/cost.hpp"

namespace vgpu::kernels {

/// C = A * B for row-major n x n matrices. Cache-blocked host
/// implementation mirroring the shared-memory-tiled GPU kernel.
void sgemm(std::span<const float> a, std::span<const float> b,
           std::span<float> c, int n);

/// Naive triple loop, used as the test oracle for sgemm.
void sgemm_reference(std::span<const float> a, std::span<const float> b,
                     std::span<float> c, int n);

/// Launch descriptor for the tiled kernel. For n = 2048 this produces the
/// paper's 4096-block grid (64x64 tiles of 32x32 threads).
gpu::KernelLaunch matmul_launch(int n);

}  // namespace vgpu::kernels
