// Single-precision dense matrix multiplication (the paper's "MM" benchmark:
// 2048x2048, 4096-block grid of 32x32 tiles, Table IV).
#pragma once

#include <span>

#include "common/parallel.hpp"
#include "gpu/cost.hpp"

namespace vgpu::kernels {

/// Grid side of the tiled kernel: ceil(n / 32) tiles per dimension; the
/// launch grid (and the range functions' block space) is sgemm_tiles^2.
long sgemm_tiles(int n);

/// Executes grid blocks [block_begin, block_end) of the tiled kernel:
/// block b owns C tile (b / tiles, b % tiles) and accumulates its k-tiles
/// in ascending order, so any partition of the grid produces bitwise the
/// same C as the serial run.
void sgemm_blocks(std::span<const float> a, std::span<const float> b,
                  std::span<float> c, int n, long block_begin,
                  long block_end);

/// C = A * B for row-major n x n matrices. Cache-blocked host
/// implementation mirroring the shared-memory-tiled GPU kernel; `pf`
/// distributes the tile grid (serial by default — the oracle path).
void sgemm(std::span<const float> a, std::span<const float> b,
           std::span<float> c, int n,
           const ParallelFor& pf = serial_executor());

/// Naive triple loop, used as the test oracle for sgemm.
void sgemm_reference(std::span<const float> a, std::span<const float> b,
                     std::span<float> c, int n);

/// Launch descriptor for the tiled kernel. For n = 2048 this produces the
/// paper's 4096-block grid (64x64 tiles of 32x32 threads).
gpu::KernelLaunch matmul_launch(int n);

}  // namespace vgpu::kernels
