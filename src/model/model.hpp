// The paper's analytical execution model (Section IV, Table I, Eqs. 1-6).
//
// A process's GPU task cycle is init -> send data -> compute -> retrieve
// (Figure 3). Without virtualization, N tasks serialize with a context
// switch between tasks (Figure 4, Eq. 1). With virtualization, the GVM owns
// the single context, so context switches vanish, initialization is paid
// once by the GVM, and I/O / compute overlap per Figures 5-6 (Eqs. 2-4).
// Eq. 5 is the predicted speedup and Eq. 6 its N -> infinity limit.
#pragma once

#include <string>

#include "common/units.hpp"

namespace vgpu::model {

/// Stage times of one task cycle (the paper's Table I parameters; Table II
/// and our bench/table2_profiles report these per benchmark).
struct ExecutionProfile {
  std::string name;
  SimDuration t_init = 0;        // total init for all processes (Tinit)
  SimDuration t_ctx_switch = 0;  // average context switch (Tctx_switch)
  SimDuration t_data_in = 0;     // H2D per task (Tdata_in)
  SimDuration t_comp = 0;        // kernel time per task (Tcomp)
  SimDuration t_data_out = 0;    // D2H per task (Tdata_out)

  SimDuration cycle() const { return t_data_in + t_comp + t_data_out; }
  /// I/O-to-compute ratio used for the paper's Table IV classification.
  double io_ratio() const {
    return t_comp > 0 ? static_cast<double>(t_data_in + t_data_out) /
                            static_cast<double>(t_comp)
                      : 1e30;
  }
};

/// Eq. (1): serialized execution under native sharing.
///   T = (N-1)(Tctx + Tin + Tcomp + Tout) + Tinit + Tin + Tcomp + Tout
SimDuration total_time_no_virtualization(const ExecutionProfile& p,
                                         int ntask);

/// Eq. (4) [= Eqs. (2)/(3) combined]: pipelined execution under the GVM.
///   T = N * MAX(Tin, Tout) + Tcomp + MIN(Tin, Tout)
SimDuration total_time_virtualized(const ExecutionProfile& p, int ntask);

/// Eq. (5): predicted speedup of virtualization for N tasks.
double speedup(const ExecutionProfile& p, int ntask);

/// Eq. (6): N -> infinity upper bound,
///   Smax = (Tctx + Tin + Tcomp + Tout) / MAX(Tin, Tout).
double max_speedup(const ExecutionProfile& p);

/// Variant of Eq. (5) with the context-switch term dropped from the
/// numerator. The paper's Table III "theoretical" value for vector
/// addition (2.721) matches this variant, not Eq. (5) as printed (3.62
/// with Table II's numbers); see EXPERIMENTS.md.
double speedup_excluding_ctx(const ExecutionProfile& p, int ntask);

enum class WorkloadClass { kIoIntensive, kComputeIntensive, kIntermediate };

const char* workload_class_name(WorkloadClass c);

/// Paper Table IV classification by I/O-to-compute ratio.
WorkloadClass classify(const ExecutionProfile& p);

}  // namespace vgpu::model
