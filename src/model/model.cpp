#include "model/model.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace vgpu::model {

SimDuration total_time_no_virtualization(const ExecutionProfile& p,
                                         int ntask) {
  VGPU_ASSERT(ntask >= 1);
  return static_cast<SimDuration>(ntask - 1) *
             (p.t_ctx_switch + p.cycle()) +
         p.t_init + p.cycle();
}

SimDuration total_time_virtualized(const ExecutionProfile& p, int ntask) {
  VGPU_ASSERT(ntask >= 1);
  const SimDuration io_max = std::max(p.t_data_in, p.t_data_out);
  const SimDuration io_min = std::min(p.t_data_in, p.t_data_out);
  return static_cast<SimDuration>(ntask) * io_max + p.t_comp + io_min;
}

double speedup(const ExecutionProfile& p, int ntask) {
  return static_cast<double>(total_time_no_virtualization(p, ntask)) /
         static_cast<double>(total_time_virtualized(p, ntask));
}

double max_speedup(const ExecutionProfile& p) {
  const SimDuration io_max = std::max(p.t_data_in, p.t_data_out);
  VGPU_ASSERT_MSG(io_max > 0, "Smax undefined for zero I/O time");
  return static_cast<double>(p.t_ctx_switch + p.cycle()) /
         static_cast<double>(io_max);
}

double speedup_excluding_ctx(const ExecutionProfile& p, int ntask) {
  VGPU_ASSERT(ntask >= 1);
  const SimDuration no_vt =
      static_cast<SimDuration>(ntask - 1) * p.cycle() + p.t_init + p.cycle();
  return static_cast<double>(no_vt) /
         static_cast<double>(total_time_virtualized(p, ntask));
}

const char* workload_class_name(WorkloadClass c) {
  switch (c) {
    case WorkloadClass::kIoIntensive:
      return "I/O-intensive";
    case WorkloadClass::kComputeIntensive:
      return "Comp-intensive";
    case WorkloadClass::kIntermediate:
      return "Intermediate";
  }
  return "?";
}

WorkloadClass classify(const ExecutionProfile& p) {
  // The paper classifies "by evaluating I/O and computing time ratio"
  // (Section VI). The operative distinction is overlap potential:
  // I/O-intensive tasks are bounded by MAX(Tin, Tout) under the GVM;
  // compute-intensive tasks have I/O so small (<5% of compute) that only
  // kernel concurrency matters; everything between is intermediate — it
  // benefits from I/O/compute overlap (the paper's MM case).
  const double r = p.io_ratio();
  if (r > 2.0) return WorkloadClass::kIoIntensive;
  if (r < 0.05) return WorkloadClass::kComputeIntensive;
  return WorkloadClass::kIntermediate;
}

}  // namespace vgpu::model
