// Chrome trace-event JSON I/O for the observability tooling.
//
// gpu::Timeline writes complete ("ph": "X") events with microsecond
// timestamps; this module reads that shape back — from DES runs and live
// runs alike — so tools/vgpu-trace can analyse and merge traces, and the
// test suite can round-trip/schema-check every trace the system emits.
// The parser is deliberately small: it accepts a JSON array of flat
// objects with string and number values (fields in any order) and
// rejects anything else with a line-accurate error.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "gpu/trace.hpp"

namespace vgpu::obs {

/// Parses a Chrome trace-event JSON file (array-of-"X"-events form) back
/// into a Timeline. Event "ts"/"dur" microseconds become TraceEvent
/// begin/end nanoseconds; "tid" becomes the lane.
StatusOr<gpu::Timeline> load_chrome_trace(const std::string& path);

/// Schema check: the file parses, every event has a name and category,
/// and no event has end < begin.
Status validate_chrome_trace(const std::string& path);

/// Merges traces onto one timebase: each input is shifted so its earliest
/// event starts at t=0, and its lanes are prefixed with `labels[i]` so
/// the sources stay distinguishable in Perfetto.
gpu::Timeline merge_timelines(const std::vector<gpu::Timeline>& traces,
                              const std::vector<std::string>& labels);

}  // namespace vgpu::obs
