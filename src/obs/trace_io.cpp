#include "obs/trace_io.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

namespace vgpu::obs {

namespace {

/// Minimal recursive-descent scanner for the flat-object-array subset the
/// Timeline writer emits. Values are strings or numbers; unknown keys are
/// kept (and ignored by the converter), so traces from other tools that
/// follow the same shape still load.
class Parser {
 public:
  explicit Parser(std::string text) : text_(std::move(text)) {}

  StatusOr<std::vector<std::map<std::string, std::string>>> parse() {
    std::vector<std::map<std::string, std::string>> objects;
    skip_ws();
    if (!consume('[')) return error("expected '[' at start of trace");
    skip_ws();
    if (consume(']')) return objects;
    for (;;) {
      auto object = parse_object();
      if (!object.ok()) return object.status();
      objects.push_back(std::move(*object));
      skip_ws();
      if (consume(',')) {
        skip_ws();
        continue;
      }
      if (consume(']')) return objects;
      return error("expected ',' or ']' after event object");
    }
  }

 private:
  StatusOr<std::map<std::string, std::string>> parse_object() {
    std::map<std::string, std::string> fields;
    if (!consume('{')) return error("expected '{'");
    skip_ws();
    if (consume('}')) return fields;
    for (;;) {
      auto key = parse_string();
      if (!key.ok()) return key.status();
      skip_ws();
      if (!consume(':')) return error("expected ':' after key");
      skip_ws();
      auto value = parse_value();
      if (!value.ok()) return value.status();
      fields[*key] = std::move(*value);
      skip_ws();
      if (consume(',')) {
        skip_ws();
        continue;
      }
      if (consume('}')) return fields;
      return error("expected ',' or '}' in event object");
    }
  }

  StatusOr<std::string> parse_value() {
    if (peek() == '"') return parse_string();
    // Number (also accepts bare true/false/null, stored verbatim).
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}' &&
           text_[pos_] != ']' && !std::isspace(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return error("expected a value");
    return text_.substr(start, pos_ - start);
  }

  StatusOr<std::string> parse_string() {
    if (!consume('"')) return error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        out.push_back(text_[pos_++]);  // \" and \\ — all the writer emits
        continue;
      }
      out.push_back(c);
    }
    return error("unterminated string");
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
  }
  Status error(const std::string& what) const {
    return InvalidArgument("trace JSON line " + std::to_string(line_) + ": " +
                           what);
  }

  std::string text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

StatusOr<double> to_number(const std::string& text, const char* field) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size() || !std::isfinite(v)) throw std::exception();
    return v;
  } catch (...) {
    return InvalidArgument(std::string("non-numeric \"") + field +
                           "\": " + text);
  }
}

}  // namespace

StatusOr<gpu::Timeline> load_chrome_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFound("cannot open trace file " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Parser parser(buffer.str());
  auto objects = parser.parse();
  if (!objects.ok()) {
    return Status(objects.status().code(),
                  path + ": " + objects.status().message());
  }
  gpu::Timeline timeline;
  for (const auto& fields : *objects) {
    auto field = [&](const char* key) -> const std::string* {
      auto it = fields.find(key);
      return it != fields.end() ? &it->second : nullptr;
    };
    const std::string* ph = field("ph");
    if (ph != nullptr && *ph != "X") continue;  // only complete events
    gpu::TraceEvent event;
    if (const std::string* name = field("name")) event.name = *name;
    if (const std::string* cat = field("cat")) event.category = *cat;
    if (const std::string* tid = field("tid")) event.lane = *tid;
    double ts = 0.0, dur = 0.0;
    if (const std::string* v = field("ts")) {
      auto n = to_number(*v, "ts");
      if (!n.ok()) return n.status();
      ts = *n;
    }
    if (const std::string* v = field("dur")) {
      auto n = to_number(*v, "dur");
      if (!n.ok()) return n.status();
      dur = *n;
    }
    event.begin = static_cast<SimTime>(ts * static_cast<double>(kMicrosecond));
    event.end = event.begin +
                static_cast<SimDuration>(dur * static_cast<double>(kMicrosecond));
    if (event.end < event.begin) {
      return InvalidArgument(path + ": event \"" + event.name +
                             "\" has negative duration");
    }
    timeline.record(std::move(event));
  }
  return timeline;
}

Status validate_chrome_trace(const std::string& path) {
  auto timeline = load_chrome_trace(path);
  if (!timeline.ok()) return timeline.status();
  for (const gpu::TraceEvent& event : timeline->events()) {
    if (event.name.empty()) {
      return InvalidArgument(path + ": event with empty name");
    }
    if (event.category.empty()) {
      return InvalidArgument(path + ": event \"" + event.name +
                             "\" has empty category");
    }
  }
  return Status::Ok();
}

gpu::Timeline merge_timelines(const std::vector<gpu::Timeline>& traces,
                              const std::vector<std::string>& labels) {
  VGPU_ASSERT(labels.size() == traces.size());
  gpu::Timeline merged;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    SimTime t0 = std::numeric_limits<SimTime>::max();
    for (const gpu::TraceEvent& event : traces[i].events()) {
      t0 = std::min(t0, event.begin);
    }
    if (traces[i].events().empty()) continue;
    for (const gpu::TraceEvent& event : traces[i].events()) {
      gpu::TraceEvent shifted = event;
      shifted.begin = event.begin - t0;
      shifted.end = event.end - t0;
      shifted.lane = labels[i] + "/" + event.lane;
      merged.record(std::move(shifted));
    }
  }
  return merged;
}

}  // namespace vgpu::obs
