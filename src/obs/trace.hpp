// Live span tracing for the observability subsystem.
//
// The DES side has a real gpu::Timeline; the live path (src/rt, src/exec)
// needs the same phase decomposition measured on the running system — the
// journal extension of the source paper validates Eqs. 1-6 exactly this
// way. The Tracer records fixed-size span records into per-thread ring
// buffers:
//
//   * disabled (the default), record() is one relaxed load and a branch —
//     the serve loop and kernel jobs pay nothing measurable;
//   * enabled, a span is two steady_clock reads plus one ring-slot write —
//     no allocation, no lock, no map lookup on the hot path (each thread's
//     ring is allocated once, at registration; call ensure_thread() at
//     thread start to keep even that off the timed path);
//   * a full ring overwrites its oldest records and counts the drops.
//
// Export reuses the gpu::TraceEvent shape and gpu::Timeline machinery, so
// a live trace and a DES trace render side-by-side in Perfetto and share
// busy_time()/max_concurrency() analysis (tools/vgpu-trace).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "gpu/trace.hpp"

namespace vgpu::obs {

/// Span taxonomy. The first five are the paper's per-task phase terms
/// (docs/observability.md maps them onto Eqs. 1-6); the rest instrument
/// the machinery around them.
enum class Phase : std::uint8_t {
  kQueueWait = 0,  // STR enqueue -> scheduler grant
  kAdmission,      // REQ handling incl. admission verdict
  kCopyIn,         // Tdata_in: vsm -> staging ("pinned") copy
  kKernel,         // Tcomp: kernel execution
  kCopyOut,        // Tdata_out: staging -> vsm copy
  kFlushBarrier,   // cohort co-flush (first STR -> grant)
  kBatchDrain,     // serve-loop request sweep (aux = batch depth)
  kPark,           // serve-loop idle wait (spin/yield/futex)
  kShard,          // one engine shard (aux = block count)
  kClientVerb,     // client-observed verb round trip (aux = RtOp)
  kLeaseExpiry,    // silent window that expired a client lease (aux = pid)
  kPageIn,         // vmem pager working-set fill (aux = pages filled)
  kPageOut,        // vmem pager eviction spill (aux = pages spilled)
  kGraph,          // one cached-graph replay (aux = node count)
  kGraphNode,      // one graph node / fused chain (aux = kernel id, -1 copy)
  kMigration,      // cross-device client move (aux = destination device)
  kCount,
};

const char* phase_name(Phase phase);
/// Chrome-trace category; copy phases share "copy" like the DES timeline.
const char* phase_category(Phase phase);

/// Lane encoding inside a SpanRecord: client ids are >= 0, server-side
/// lanes are negative.
inline constexpr std::int32_t kLaneServer = -1;
/// Engine worker i maps to kLaneWorkerBase - i.
inline constexpr std::int32_t kLaneWorkerBase = -2;
inline constexpr std::int32_t worker_lane(int worker) {
  return kLaneWorkerBase - worker;
}
std::string lane_name(std::int32_t lane);

/// One span, POD and fixed-size so ring writes are a single struct copy.
struct SpanRecord {
  SimTime begin = 0;  // ns since the tracer epoch
  SimTime end = 0;
  std::int32_t lane = kLaneServer;
  std::int32_t aux = 0;  // kernel id / batch depth / blocks, per phase
  Phase phase = Phase::kQueueWait;
};

struct TracerConfig {
  /// Records per per-thread ring; rounded up to a power of two.
  std::size_t ring_capacity = 1 << 15;
  /// Start enabled. Off by default: tracing is opt-in per run.
  bool enabled = false;
};

/// Returned by begin_span() when tracing is off; finishing it is a no-op.
inline constexpr SimTime kSpanDisabled = -1;

class Tracer {
 public:
  explicit Tracer(TracerConfig config = {});
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  ~Tracer();

  void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Rebases the trace clock (e.g. to the server's start instant, so span
  /// timestamps line up with scheduler timestamps).
  void set_epoch(std::chrono::steady_clock::time_point epoch) {
    epoch_ = epoch;
  }
  /// Nanoseconds since the epoch.
  SimTime now() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Pre-registers the calling thread's ring (the one allocation a thread
  /// ever performs); idempotent. Call at thread start to keep the hot
  /// path allocation-free from the first span.
  void ensure_thread();

  /// Span begin timestamp, or kSpanDisabled when tracing is off.
  SimTime begin_span() const { return enabled() ? now() : kSpanDisabled; }

  /// Records [begin, now()) if `begin` came from an enabled begin_span().
  void end_span(SimTime begin, Phase phase, std::int32_t lane,
                std::int32_t aux = 0) {
    if (begin < 0 || !enabled()) return;
    record(phase, lane, aux, begin, now());
  }

  /// Records an explicit span (timestamps in tracer-epoch ns).
  void record(Phase phase, std::int32_t lane, std::int32_t aux,
              SimTime begin, SimTime end);

  /// Collects every buffered record, oldest-first per thread. Callers
  /// must quiesce writers first (the server collects after stop()).
  std::vector<SpanRecord> collect() const;
  /// Records lost to ring wrap-around, across all threads.
  long dropped() const;

  /// Resolves extra naming detail for a span (e.g. aux -> kernel name for
  /// kKernel spans). Returning an empty string keeps the phase name.
  using NameFn = std::function<std::string(const SpanRecord&)>;

  /// Converts the buffered spans into a gpu::Timeline (TraceEvent per
  /// span) for busy-time/concurrency analysis and Chrome-trace export.
  gpu::Timeline timeline(const NameFn& name_fn = nullptr) const;
  Status write_chrome_trace(const std::string& path,
                            const NameFn& name_fn = nullptr) const;

 private:
  struct Ring {
    explicit Ring(std::size_t capacity)
        : slots(capacity), mask(capacity - 1) {}
    std::vector<SpanRecord> slots;
    std::size_t mask;
    /// Total records ever written (single writer thread); readers see a
    /// consistent prefix via the release store in record().
    std::atomic<std::uint64_t> head{0};
  };

  Ring* thread_ring();
  Ring* register_ring();

  TracerConfig config_;
  std::uint64_t id_;  // distinguishes tracers for the thread-local cache
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  mutable std::mutex rings_mutex_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace vgpu::obs
