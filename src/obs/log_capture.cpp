#include "obs/log_capture.hpp"

#include <cstdio>

#include "common/log.hpp"

namespace vgpu::obs {

void install_log_capture(Registry& registry) {
  Counter* debug = registry.counter("log.lines.debug");
  Counter* info = registry.counter("log.lines.info");
  Counter* warn = registry.counter("log.lines.warn");
  Counter* error = registry.counter("log.lines.error");
  set_log_sink([debug, info, warn, error](LogLevel level,
                                          const std::string& line) {
    switch (level) {
      case LogLevel::kDebug:
        debug->add();
        break;
      case LogLevel::kInfo:
        info->add();
        break;
      case LogLevel::kWarn:
        warn->add();
        break;
      case LogLevel::kError:
        error->add();
        break;
      case LogLevel::kOff:
        break;
    }
    std::fprintf(stderr, "%s\n", line.c_str());
  });
}

void uninstall_log_capture() { set_log_sink(nullptr); }

}  // namespace vgpu::obs
