// Umbrella header of the observability subsystem: one Hub bundles the
// metrics registry and the span tracer, so instrumented subsystems
// (rt::RtServer, exec::ExecEngine, the vgpu-sim driver) share a single
// pair of sinks. See docs/observability.md.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vgpu::obs {

struct ObsConfig {
  /// Record spans (kQueueWait/kCopyIn/kKernel/... into per-thread rings).
  /// The registry is always live — counter updates are too cheap to gate.
  bool tracing = false;
  /// Per-thread span-ring capacity (records).
  std::size_t ring_capacity = 1 << 15;
};

class Hub {
 public:
  explicit Hub(ObsConfig config = {})
      : tracer_(TracerConfig{config.ring_capacity, config.tracing}) {}

  Registry& metrics() { return metrics_; }
  const Registry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

 private:
  Registry metrics_;
  Tracer tracer_;
};

}  // namespace vgpu::obs
