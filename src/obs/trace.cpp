#include "obs/trace.hpp"

#include <algorithm>

namespace vgpu::obs {

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kQueueWait:
      return "queue_wait";
    case Phase::kAdmission:
      return "admission";
    case Phase::kCopyIn:
      return "copy_in";
    case Phase::kKernel:
      return "kernel";
    case Phase::kCopyOut:
      return "copy_out";
    case Phase::kFlushBarrier:
      return "flush_barrier";
    case Phase::kBatchDrain:
      return "batch_drain";
    case Phase::kPark:
      return "park";
    case Phase::kShard:
      return "shard";
    case Phase::kClientVerb:
      return "verb";
    case Phase::kLeaseExpiry:
      return "lease_expiry";
    case Phase::kPageIn:
      return "page_in";
    case Phase::kPageOut:
      return "page_out";
    case Phase::kGraph:
      return "graph";
    case Phase::kGraphNode:
      return "graph_node";
    case Phase::kMigration:
      return "migration";
    case Phase::kCount:
      break;
  }
  return "?";
}

const char* phase_category(Phase phase) {
  switch (phase) {
    case Phase::kQueueWait:
      return "queue";
    case Phase::kAdmission:
      return "sched";
    case Phase::kCopyIn:
    case Phase::kCopyOut:
      return "copy";
    case Phase::kKernel:
      return "kernel";
    case Phase::kFlushBarrier:
    case Phase::kLeaseExpiry:
      return "gvm";
    case Phase::kBatchDrain:
    case Phase::kPark:
      return "transport";
    case Phase::kShard:
      return "exec";
    case Phase::kClientVerb:
      return "client";
    case Phase::kPageIn:
    case Phase::kPageOut:
      return "vmem";
    case Phase::kGraph:
      return "gvm";
    case Phase::kGraphNode:
      return "exec";
    case Phase::kMigration:
      return "gvm";
    case Phase::kCount:
      break;
  }
  return "?";
}

std::string lane_name(std::int32_t lane) {
  if (lane >= 0) return "client " + std::to_string(lane);
  if (lane == kLaneServer) return "gvm";
  return "worker " + std::to_string(kLaneWorkerBase - lane);
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::atomic<std::uint64_t> g_tracer_ids{1};

}  // namespace

Tracer::Tracer(TracerConfig config)
    : config_(config), id_(g_tracer_ids.fetch_add(1)) {
  config_.ring_capacity = round_up_pow2(std::max<std::size_t>(
      config_.ring_capacity, 64));
  enabled_.store(config.enabled, std::memory_order_relaxed);
}

Tracer::~Tracer() = default;

Tracer::Ring* Tracer::register_ring() {
  std::lock_guard<std::mutex> lock(rings_mutex_);
  rings_.push_back(std::make_unique<Ring>(config_.ring_capacity));
  return rings_.back().get();
}

Tracer::Ring* Tracer::thread_ring() {
  // Cache keyed by tracer id: a destroyed tracer's id is never reused, so
  // a stale cache entry can't alias a new tracer at the same address.
  struct Tls {
    std::uint64_t tracer_id = 0;
    Ring* ring = nullptr;
  };
  thread_local Tls tls;
  if (tls.tracer_id != id_) {
    tls.ring = register_ring();
    tls.tracer_id = id_;
  }
  return tls.ring;
}

void Tracer::ensure_thread() { (void)thread_ring(); }

void Tracer::record(Phase phase, std::int32_t lane, std::int32_t aux,
                    SimTime begin, SimTime end) {
  if (!enabled()) return;
  Ring* ring = thread_ring();
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  SpanRecord& slot = ring->slots[head & ring->mask];
  slot.begin = begin;
  slot.end = end;
  slot.lane = lane;
  slot.aux = aux;
  slot.phase = phase;
  ring->head.store(head + 1, std::memory_order_release);
}

std::vector<SpanRecord> Tracer::collect() const {
  std::lock_guard<std::mutex> lock(rings_mutex_);
  std::vector<SpanRecord> out;
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t capacity = ring->slots.size();
    const std::uint64_t first = head > capacity ? head - capacity : 0;
    for (std::uint64_t i = first; i < head; ++i) {
      out.push_back(ring->slots[i & ring->mask]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.end < b.end;
            });
  return out;
}

long Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(rings_mutex_);
  long dropped = 0;
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t capacity = ring->slots.size();
    if (head > capacity) dropped += static_cast<long>(head - capacity);
  }
  return dropped;
}

gpu::Timeline Tracer::timeline(const NameFn& name_fn) const {
  gpu::Timeline timeline;
  for (const SpanRecord& span : collect()) {
    gpu::TraceEvent event;
    std::string name = name_fn ? name_fn(span) : std::string();
    event.name = name.empty() ? phase_name(span.phase) : std::move(name);
    event.category = phase_category(span.phase);
    event.lane = lane_name(span.lane);
    event.begin = span.begin;
    event.end = std::max(span.end, span.begin);
    timeline.record(std::move(event));
  }
  return timeline;
}

Status Tracer::write_chrome_trace(const std::string& path,
                                  const NameFn& name_fn) const {
  return timeline(name_fn).write_chrome_trace(path);
}

}  // namespace vgpu::obs
