#include "obs/slo.hpp"

#include <cstdio>

#include "common/stats.hpp"
#include "obs/metrics.hpp"

namespace vgpu::obs {

namespace {

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, v);
  return buf;
}

}  // namespace

double jain_index(const std::vector<double>& allocations) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (allocations.empty() || sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(allocations.size()) * sum_sq);
}

void SloAggregator::declare(int tenant, std::string name, double weight,
                            SloTarget target) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& t = tenants_[tenant];
  t.name = std::move(name);
  t.weight = weight > 0.0 ? weight : 1.0;
  t.target = target;
}

void SloAggregator::record(int tenant, double latency_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  tenants_[tenant].latencies_ms.push_back(latency_ms);
}

void SloAggregator::record_error(int tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  ++tenants_[tenant].errors;
}

std::vector<double> SloAggregator::samples(int tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? std::vector<double>{}
                              : it->second.latencies_ms;
}

SloReport SloAggregator::report(double makespan_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  SloReport report;
  report.makespan_ms = makespan_ms;
  std::vector<double> rates;
  rates.reserve(tenants_.size());
  for (const auto& [id, t] : tenants_) {  // std::map: tenant-id order
    TenantSlo row;
    row.tenant = id;
    row.name = t.name;
    row.weight = t.weight;
    row.target = t.target;
    row.completed = static_cast<std::int64_t>(t.latencies_ms.size());
    row.errors = t.errors;
    const SampleStats stats(t.latencies_ms);
    row.p50_ms = stats.percentile(0.50);
    row.p99_ms = stats.percentile(0.99);
    row.mean_ms = stats.mean();
    row.max_ms = stats.max();
    if (t.target.p99_ms > 0.0 && !t.latencies_ms.empty()) {
      std::int64_t ok = 0;
      for (double s : t.latencies_ms) {
        if (s <= t.target.p99_ms) ++ok;
      }
      row.attainment_pct = 100.0 * static_cast<double>(ok) /
                           static_cast<double>(t.latencies_ms.size());
    }
    row.p50_met = t.target.p50_ms <= 0.0 || row.p50_ms <= t.target.p50_ms;
    row.p99_met = t.target.p99_ms <= 0.0 || row.p99_ms <= t.target.p99_ms;
    if (makespan_ms > 0.0) {
      row.throughput_per_s =
          static_cast<double>(row.completed) / (makespan_ms / 1000.0);
    }
    report.all_met = report.all_met && row.p50_met && row.p99_met &&
                     row.errors == 0;
    rates.push_back(static_cast<double>(row.completed) / row.weight);
    report.tenants.push_back(std::move(row));
  }
  report.jain_fairness = jain_index(rates);
  return report;
}

void SloAggregator::export_metrics(Registry* registry,
                                   const std::string& prefix,
                                   double makespan_ms) const {
  if (registry == nullptr) return;
  const SloReport rep = report(makespan_ms);
  for (const TenantSlo& t : rep.tenants) {
    const std::string base = prefix + "." + t.name;
    registry->gauge(base + ".p50_ms")->set(t.p50_ms);
    registry->gauge(base + ".p99_ms")->set(t.p99_ms);
    registry->gauge(base + ".attainment_pct")->set(t.attainment_pct);
    registry->gauge(base + ".throughput_per_s")->set(t.throughput_per_s);
    registry->counter(base + ".completed")->add(t.completed);
    registry->counter(base + ".errors")->add(t.errors);
  }
  registry->gauge(prefix + ".jain_fairness")->set(rep.jain_fairness);
}

std::string SloReport::to_json() const {
  std::string out = "{\n  \"makespan_ms\": " + fmt("%.3f", makespan_ms) +
                    ",\n  \"jain_fairness\": " + fmt("%.6f", jain_fairness) +
                    ",\n  \"all_met\": " + (all_met ? "true" : "false") +
                    ",\n  \"tenants\": [";
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const TenantSlo& t = tenants[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"tenant\": " + std::to_string(t.tenant) + ", \"name\": \"" +
           t.name + "\", \"weight\": " + fmt("%.3f", t.weight) +
           ", \"completed\": " + std::to_string(t.completed) +
           ", \"errors\": " + std::to_string(t.errors) +
           ", \"p50_ms\": " + fmt("%.3f", t.p50_ms) +
           ", \"p99_ms\": " + fmt("%.3f", t.p99_ms) +
           ", \"mean_ms\": " + fmt("%.3f", t.mean_ms) +
           ", \"max_ms\": " + fmt("%.3f", t.max_ms) +
           ", \"target_p50_ms\": " + fmt("%.3f", t.target.p50_ms) +
           ", \"target_p99_ms\": " + fmt("%.3f", t.target.p99_ms) +
           ", \"attainment_pct\": " + fmt("%.3f", t.attainment_pct) +
           ", \"p50_met\": " + (t.p50_met ? "true" : "false") +
           ", \"p99_met\": " + (t.p99_met ? "true" : "false") +
           ", \"throughput_per_s\": " + fmt("%.3f", t.throughput_per_s) +
           "}";
  }
  out += "\n  ]\n}";
  return out;
}

std::string SloReport::format_table() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof line, "%-18s %8s %9s %9s %9s %8s %6s\n",
                "tenant", "jobs", "p50_ms", "p99_ms", "tput/s", "slo%",
                "met");
  out += line;
  for (const TenantSlo& t : tenants) {
    std::snprintf(line, sizeof line,
                  "%-18s %8lld %9.3f %9.3f %9.2f %8.2f %6s\n",
                  t.name.c_str(), static_cast<long long>(t.completed),
                  t.p50_ms, t.p99_ms, t.throughput_per_s, t.attainment_pct,
                  (t.p50_met && t.p99_met) ? "yes" : "NO");
    out += line;
  }
  std::snprintf(line, sizeof line,
                "jain_fairness %.4f | makespan %.1f ms | %s\n", jain_fairness,
                makespan_ms, all_met ? "all SLOs met" : "SLO MISS");
  out += line;
  return out;
}

}  // namespace vgpu::obs
