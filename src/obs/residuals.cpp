#include "obs/residuals.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

namespace vgpu::obs {

namespace {

SimDuration median(std::vector<SimDuration>& samples) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  if (n % 2 == 1) return samples[n / 2];
  return (samples[n / 2 - 1] + samples[n / 2]) / 2;
}

struct KernelAccumulator {
  std::set<std::int32_t> lanes;
  std::vector<SimDuration> queue, in, comp, out;
  SimTime first = kTimeInfinity;
  SimTime last = 0;
};

}  // namespace

model::ExecutionProfile KernelResidual::profile() const {
  model::ExecutionProfile p;
  p.name = kernel;
  p.t_data_in = t_in_med;
  p.t_comp = t_comp_med;
  p.t_data_out = t_out_med;
  // The GVM owns the single context and initialization; neither term is a
  // per-task live phase, so the measured profile leaves them at 0.
  return p;
}

std::vector<KernelResidual> compute_residuals(
    const std::vector<SpanRecord>& spans,
    const std::function<std::string(int)>& kernel_name) {
  std::map<int, KernelAccumulator> by_kernel;
  for (const SpanRecord& span : spans) {
    if (span.lane < 0) continue;  // server/worker machinery spans
    std::vector<SimDuration>* sink = nullptr;
    KernelAccumulator& acc = by_kernel[span.aux];
    switch (span.phase) {
      case Phase::kQueueWait:
        sink = &acc.queue;
        break;
      case Phase::kCopyIn:
        sink = &acc.in;
        break;
      case Phase::kKernel:
        sink = &acc.comp;
        break;
      case Phase::kCopyOut:
        sink = &acc.out;
        break;
      default:
        continue;
    }
    sink->push_back(span.end - span.begin);
    acc.lanes.insert(span.lane);
    acc.first = std::min(acc.first, span.begin);
    acc.last = std::max(acc.last, span.end);
  }

  std::vector<KernelResidual> rows;
  for (auto& [kernel_id, acc] : by_kernel) {
    if (acc.comp.empty()) continue;  // no completed task cycle to model
    KernelResidual row;
    row.kernel_id = kernel_id;
    row.kernel = kernel_name ? kernel_name(kernel_id)
                             : "kernel " + std::to_string(kernel_id);
    row.clients = static_cast<int>(acc.lanes.size());
    row.tasks = static_cast<long>(acc.comp.size());
    row.queue_wait_med = median(acc.queue);
    row.t_in_med = median(acc.in);
    row.t_comp_med = median(acc.comp);
    row.t_out_med = median(acc.out);
    row.measured_turnaround = acc.last - acc.first;
    const model::ExecutionProfile profile = row.profile();
    // The paper's validation setup: N clients run one task per round,
    // concurrently; rounds serialize. Predict Eq. 4 for the N-client
    // cohort and scale by the number of rounds observed.
    const int clients = std::max(1, row.clients);
    const long rounds = (row.tasks + clients - 1) / clients;
    row.predicted_turnaround =
        rounds * model::total_time_virtualized(profile, clients);
    const SimDuration io_max = std::max(row.t_in_med, row.t_out_med);
    row.smax = io_max > 0 ? model::max_speedup(profile) : 0.0;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string format_residuals(const std::vector<KernelResidual>& rows) {
  std::string out;
  char line[256];
  out += "model residuals (measured medians vs Eqs. 1-6):\n";
  if (rows.empty()) {
    out += "  no phase spans recorded (tracing off, or no completed "
           "jobs)\n";
    return out;
  }
  for (const KernelResidual& row : rows) {
    std::snprintf(line, sizeof(line),
                  "  %-14s N=%d tasks=%ld  Tin %.3f ms, Tcomp %.3f ms, "
                  "Tout %.3f ms (queue %.3f ms)\n",
                  row.kernel.c_str(), row.clients, row.tasks,
                  to_ms(row.t_in_med), to_ms(row.t_comp_med),
                  to_ms(row.t_out_med), to_ms(row.queue_wait_med));
    out += line;
    std::snprintf(line, sizeof(line),
                  "  %-14s turnaround measured %.3f ms vs Eq.4 predicted "
                  "%.3f ms (rel err %+.1f%%)",
                  "", to_ms(row.measured_turnaround),
                  to_ms(row.predicted_turnaround),
                  100.0 * row.relative_error());
    out += line;
    if (row.smax > 0.0) {
      std::snprintf(line, sizeof(line), ", Smax (Eq.6) %.2f", row.smax);
      out += line;
    }
    out += "\n";
  }
  return out;
}

}  // namespace vgpu::obs
