// Bridges common/log.hpp into the metrics registry: installing a capture
// counts every emitted line per level (log.lines.debug/info/warn/error)
// while still forwarding the formatted line to stderr. The counters make
// warn/error bursts visible in --metrics-json output without scraping
// logs. Process-global (the log sink is), so install at most one.
#pragma once

#include "obs/metrics.hpp"

namespace vgpu::obs {

/// Routes the global log sink into `registry`'s log.lines.* counters.
/// Lines keep going to stderr. Call uninstall_log_capture() (or install a
/// new capture) before `registry` is destroyed.
void install_log_capture(Registry& registry);

/// Restores the default stderr-only sink.
void uninstall_log_capture();

}  // namespace vgpu::obs
