// Lock-light metrics registry for the observability subsystem.
//
// Instruments are registered once, by name, and return stable handles; the
// hot path is then a relaxed atomic add on a pre-registered handle — no
// allocation, no map lookup, no lock. Registration (cold) takes a mutex;
// re-registering a name returns the existing instrument, so independent
// subsystems can share one counter without coordinating.
//
// Three instrument kinds, mirroring the usual production taxonomy:
//
//   Counter     monotone long  (requests served, bytes copied, steals)
//   Gauge       last-write-wins double (worker shard share, mean wait ms)
//   Histogram   fixed bucket boundaries chosen at registration; observe()
//               is a short linear scan plus one relaxed add per sample
//
// Snapshots are name-sorted (deterministic output) and exportable as JSON
// for the vgpu-sim --metrics-json= flag and the CI bench artifacts.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace vgpu::obs {

class Counter {
 public:
  void add(long n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  /// Snapshot-migration write (e.g. syncing a legacy atomic at stop()).
  void set(long v) { value_.store(v, std::memory_order_relaxed); }
  long value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<long> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) { value_.fetch_add(d, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-boundary histogram: bucket i counts samples <= bounds[i]; one
/// extra overflow bucket counts everything above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);
  /// Merges `n` pre-bucketed samples into bucket `i` (legacy-histogram
  /// migration and trace merging; not a hot-path API). Does not touch the
  /// sum, since the original samples are gone.
  void add_count(std::size_t bucket, long n);

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 (the overflow bucket).
  std::size_t buckets() const { return counts_.size(); }
  long bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  long count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;  // ascending
  std::vector<std::atomic<long>> counts_;
  std::atomic<long> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Ascending power-of-two boundaries 1, 2, 4, ..., 2^(n-1) — the shape of
/// the serve loop's legacy batch-depth buckets.
std::vector<double> pow2_bounds(int n);

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<long> counts;  // bounds.size() + 1 entries
  long count = 0;
  double sum = 0.0;
};

struct RegistrySnapshot {
  std::vector<std::pair<std::string, long>> counters;    // name-sorted
  std::vector<std::pair<std::string, double>> gauges;    // name-sorted
  std::vector<HistogramSnapshot> histograms;             // name-sorted
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registration is idempotent: the first call creates the instrument,
  /// later calls (any thread) return the same handle. Handles stay valid
  /// for the registry's lifetime.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  /// `bounds` is only consulted on first registration.
  Histogram* histogram(const std::string& name, std::vector<double> bounds);

  /// Read-side lookups; null when the name was never registered.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  RegistrySnapshot snapshot() const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}
  std::string to_json() const;
  Status write_json(const std::string& path) const;

 private:
  mutable std::mutex mutex_;  // registration + snapshot enumeration only
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace vgpu::obs
