// Per-tenant SLO accounting for the trace-driven workload suite
// (docs/workloads.md): raw latency samples in, a per-tenant report out —
// p50/p99 against declared targets, SLO attainment %, throughput, and the
// Jain fairness index across tenants.
//
// The aggregator keeps raw samples (a mixed-run replay produces thousands
// of rounds, not millions), so every aggregate is exact: the property
// tests recompute each number brute-force from the raw samples and demand
// bitwise equality. Percentiles use the repo's canonical interpolation
// rule (common/stats.hpp SampleStats).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace vgpu::obs {

class Registry;

/// Latency targets for one tenant, in milliseconds. 0 disables that
/// target (the tenant is reported but always counts as attaining it).
struct SloTarget {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// One tenant's row of the report.
struct TenantSlo {
  int tenant = -1;
  std::string name;
  double weight = 1.0;
  SloTarget target;
  std::int64_t completed = 0;
  std::int64_t errors = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  /// Percentage of samples at or under the p99 target (100 when no
  /// target is declared or no sample arrived).
  double attainment_pct = 100.0;
  bool p50_met = true;  // p50_ms <= target.p50_ms (or no target)
  bool p99_met = true;
  double throughput_per_s = 0.0;  // completed / makespan
};

struct SloReport {
  std::vector<TenantSlo> tenants;  // tenant-id order
  double makespan_ms = 0.0;
  /// Jain fairness index over per-tenant weighted completion rates
  /// x_i = completed_i / weight_i: (sum x)^2 / (n * sum x^2). 1.0 =
  /// perfectly proportional service; 1/n = one tenant got everything.
  double jain_fairness = 1.0;
  bool all_met = true;  // every declared target attained

  std::string to_json() const;
  std::string format_table() const;
};

/// Collects per-tenant latency samples from concurrently running replay
/// workers (live path: many threads; DES path: one). Declare every tenant
/// up front, then record() from anywhere.
class SloAggregator {
 public:
  void declare(int tenant, std::string name, double weight,
               SloTarget target);
  void record(int tenant, double latency_ms);
  void record_error(int tenant);

  /// Builds the report; `makespan_ms` scales throughput (pass the
  /// replayed wall/sim time). Safe to call while workers are stopped.
  SloReport report(double makespan_ms) const;

  /// Raw samples for one tenant (test hook for the brute-force
  /// recomputation property).
  std::vector<double> samples(int tenant) const;

  /// Mirrors the report into an obs registry as gauges/counters named
  /// `<prefix>.<tenant-name>.{p50_ms,p99_ms,attainment_pct,completed}`.
  void export_metrics(Registry* registry, const std::string& prefix,
                      double makespan_ms) const;

 private:
  struct Tenant {
    std::string name;
    double weight = 1.0;
    SloTarget target;
    std::vector<double> latencies_ms;
    std::int64_t errors = 0;
  };

  mutable std::mutex mu_;
  std::map<int, Tenant> tenants_;
};

/// Jain fairness index over arbitrary non-negative allocations; empty or
/// all-zero input answers 1.0 (nobody is being treated unfairly when
/// there is nothing to share).
double jain_index(const std::vector<double>& allocations);

}  // namespace vgpu::obs
