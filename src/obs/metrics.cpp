#include "obs/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace vgpu::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  VGPU_ASSERT_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                  "histogram bounds must ascend");
}

void Histogram::observe(double value) {
  std::size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::add_count(std::size_t bucket, long n) {
  VGPU_ASSERT(bucket < counts_.size());
  counts_[bucket].fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
}

std::vector<double> pow2_bounds(int n) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) bounds.push_back(static_cast<double>(1L << i));
  return bounds;
}

Counter* Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

const Counter* Registry::find_counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it != counters_.end() ? it->second.get() : nullptr;
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second.get() : nullptr;
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second.get() : nullptr;
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.bounds = h->bounds();
    hs.counts.reserve(h->buckets());
    for (std::size_t i = 0; i < h->buckets(); ++i) {
      hs.counts.push_back(h->bucket_count(i));
    }
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

namespace {

void append_number(std::ostringstream& out, double v) {
  // Integral values print without a trailing ".0" so counters stay longs.
  if (v == static_cast<double>(static_cast<long long>(v))) {
    out << static_cast<long long>(v);
  } else {
    out << v;
  }
}

}  // namespace

std::string Registry::to_json() const {
  const RegistrySnapshot snap = snapshot();
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << snap.counters[i].first
        << "\": " << snap.counters[i].second;
  }
  out << (snap.counters.empty() ? "}" : "\n  }") << ",\n  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << snap.gauges[i].first
        << "\": ";
    append_number(out, snap.gauges[i].second);
  }
  out << (snap.gauges.empty() ? "}" : "\n  }") << ",\n  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSnapshot& h = snap.histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"" << h.name
        << "\": {\"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out << ", ";
      append_number(out, h.bounds[b]);
    }
    out << "], \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) out << ", ";
      out << h.counts[b];
    }
    out << "], \"count\": " << h.count << ", \"sum\": ";
    append_number(out, h.sum);
    out << "}";
  }
  out << (snap.histograms.empty() ? "}" : "\n  }") << "\n}\n";
  return out.str();
}

Status Registry::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Internal("cannot open metrics file " + path);
  out << to_json();
  if (!out) return Internal("write to " + path + " failed");
  return Status::Ok();
}

}  // namespace vgpu::obs
