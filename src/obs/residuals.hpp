// Analytical-model residuals: measured per-phase times vs Eqs. 1-6.
//
// The source paper's journal extension validates the execution model by
// profiling per-phase times (Tin, Tcomp, Tout) on the running system and
// comparing measured turnaround against the model's prediction. This
// module closes that loop for the live GVM: it aggregates the tracer's
// phase spans per kernel, builds a measured model::ExecutionProfile from
// the phase medians, and reports predicted-vs-measured turnaround (Eq. 4)
// and the measured Smax bound (Eq. 6) with relative errors.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "model/model.hpp"
#include "obs/trace.hpp"

namespace vgpu::obs {

/// Per-(kernel, N) residual row. N is the number of distinct client lanes
/// that ran the kernel; `tasks` the total rounds (kernel spans) measured.
struct KernelResidual {
  int kernel_id = -1;
  std::string kernel;
  int clients = 0;
  long tasks = 0;

  /// Measured per-task phase medians (ns). Zero-copy runs have no copy
  /// spans, so t_in/t_out may be 0 — Eq. 4 degenerates to Tcomp then.
  SimDuration queue_wait_med = 0;
  SimDuration t_in_med = 0;
  SimDuration t_comp_med = 0;
  SimDuration t_out_med = 0;

  /// Wall extent of this kernel's phase spans (first begin -> last end).
  SimDuration measured_turnaround = 0;
  /// Eq. 4 with the measured medians for an N = `clients` cohort, scaled
  /// by the number of rounds (tasks / clients) observed.
  SimDuration predicted_turnaround = 0;
  /// Eq. 6 from the measured profile (0 when I/O time is 0).
  double smax = 0.0;

  /// (measured - predicted) / predicted; 0 when predicted is 0.
  double relative_error() const {
    if (predicted_turnaround <= 0) return 0.0;
    return (static_cast<double>(measured_turnaround) -
            static_cast<double>(predicted_turnaround)) /
           static_cast<double>(predicted_turnaround);
  }

  /// The measured profile the predictions came from (for callers that
  /// want Eq. 1/5 variants too).
  model::ExecutionProfile profile() const;
};

/// Builds per-kernel residual rows from collected spans. Only the phase
/// spans (kQueueWait/kCopyIn/kKernel/kCopyOut with a client lane) are
/// consulted; `kernel_name` resolves span aux (kernel id) to a name and
/// may be null.
std::vector<KernelResidual> compute_residuals(
    const std::vector<SpanRecord>& spans,
    const std::function<std::string(int)>& kernel_name = nullptr);

/// Human-readable report (one block per kernel): measured phase medians,
/// predicted vs measured turnaround with relative error, and Smax.
std::string format_residuals(const std::vector<KernelResidual>& rows);

}  // namespace vgpu::obs
