// Umbrella header: the full vgpu public API.
//
// Layered bottom-up; include just the layers you need, or this header for
// everything:
//
//   common/    status, units, rng, stats, tables, flags
//   des/       deterministic coroutine discrete-event engine
//   gpu/       Fermi-class device model (+ occupancy, trace, memory)
//   vcuda/     CUDA-style runtime (contexts, streams, events)
//   vcl/       OpenCL-flavored frontend
//   kernels/   functional benchmark kernels + cost descriptors
//   model/     the paper's analytical model (Eqs. 1-6)
//   gvm/       the GPU Virtualization Manager (+ multi-GPU, experiments)
//   baselines/ related-work comparators
//   cluster/   interconnect + MPI-like communicator + cluster experiments
//   workloads/ paper-scale and functional benchmark definitions
//   ipc/, rt/  POSIX IPC substrate and the live GVM daemon/client
#pragma once

#include "baselines/baselines.hpp"
#include "cluster/comm.hpp"
#include "cluster/experiment.hpp"
#include "cluster/network.hpp"
#include "common/flags.hpp"
#include "common/log.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "des/channel.hpp"
#include "des/sim.hpp"
#include "des/sync.hpp"
#include "des/task.hpp"
#include "gpu/cost.hpp"
#include "gpu/device.hpp"
#include "gpu/memory.hpp"
#include "gpu/occupancy.hpp"
#include "gpu/spec.hpp"
#include "gpu/trace.hpp"
#include "gvm/experiment.hpp"
#include "gvm/gvm.hpp"
#include "gvm/multi.hpp"
#include "gvm/protocol.hpp"
#include "ipc/mqueue.hpp"
#include "ipc/process_barrier.hpp"
#include "ipc/ring.hpp"
#include "ipc/shm.hpp"
#include "kernels/blackscholes.hpp"
#include "kernels/blas1.hpp"
#include "kernels/cg.hpp"
#include "kernels/electrostatics.hpp"
#include "kernels/ep.hpp"
#include "kernels/fft.hpp"
#include "kernels/is.hpp"
#include "kernels/matmul.hpp"
#include "kernels/mg.hpp"
#include "model/model.hpp"
#include "rt/client.hpp"
#include "rt/registry.hpp"
#include "rt/server.hpp"
#include "vcl/vcl.hpp"
#include "vcuda/runtime.hpp"
#include "workloads/workloads.hpp"
