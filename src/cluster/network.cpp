#include "cluster/network.hpp"

#include "common/status.hpp"

namespace vgpu::cluster {

Network::Network(des::Simulator& sim, NetworkSpec spec, int nodes)
    : sim_(sim), spec_(spec) {
  VGPU_ASSERT(nodes >= 1);
  for (int i = 0; i < nodes; ++i) {
    tx_.push_back(std::make_unique<des::Semaphore>(sim, 1));
    rx_.push_back(std::make_unique<des::Semaphore>(sim, 1));
  }
}

des::Task<> Network::transfer(int src, int dst, Bytes bytes) {
  VGPU_ASSERT(src >= 0 && src < nodes() && dst >= 0 && dst < nodes());
  VGPU_ASSERT(bytes >= 0);
  if (src == dst) {
    co_await sim_.delay(spec_.local_latency +
                        transfer_time(bytes, spec_.local_bandwidth));
    co_return;
  }
  // Hold both endpoints for the serialization portion; the wire latency is
  // pipelined ahead of it.
  co_await sim_.delay(spec_.latency);
  co_await tx_[static_cast<std::size_t>(src)]->acquire();
  co_await rx_[static_cast<std::size_t>(dst)]->acquire();
  co_await sim_.delay(transfer_time(bytes, spec_.bandwidth));
  rx_[static_cast<std::size_t>(dst)]->release();
  tx_[static_cast<std::size_t>(src)]->release();
  bytes_on_wire_ += bytes;
  ++messages_on_wire_;
}

}  // namespace vgpu::cluster
