#include "cluster/federation.hpp"

#include <algorithm>
#include <map>
#include <memory>

#include "common/stats.hpp"

namespace vgpu::cluster {

namespace {

/// Digest tag (lane 0 = outstanding rounds, lane 1 = rank 0's stop flag);
/// migrating working sets use kMigrateTagBase + client id.
constexpr int kDigestTag = 0;
constexpr int kMigrateTagBase = 1 << 20;

/// One node of the federation: its devices and the pool that fronts them.
struct NodePools {
  std::vector<std::unique_ptr<gpu::Device>> devices;
  std::vector<std::unique_ptr<vcuda::Runtime>> runtimes;
  std::unique_ptr<gvm::DevicePoolGvm> pool;
};

/// Shared run state the agents, hooks and driver coordinate through
/// (single-threaded DES: plain members, no locks).
struct FederationRun {
  const FederationConfig* config = nullptr;
  std::vector<NodePools>* nodes = nullptr;
  ClusterComm* world = nullptr;
  FederationResult* result = nullptr;
  std::map<int, int> node_of;    // client -> node currently serving it
  std::map<int, int> want_node;  // pending cross-node directives
  bool stopping = false;

  int pending_on(int node) const {
    int pending = 0;
    gvm::DevicePoolGvm& pool = *(*nodes)[static_cast<std::size_t>(node)].pool;
    for (std::size_t d = 0; d < pool.device_count(); ++d) {
      pending += pool.gvm(d).load().pending;
    }
    return pending;
  }
};

/// Per-node digest agent: allgather load digests each interval, derive the
/// (identical) decision everywhere, and — on the busiest node only — direct
/// one movable client toward the idlest node. Rank 0's stop lane ends every
/// agent in the same round, so no rank is left parked in a collective.
des::Task<> digest_agent(des::Simulator& sim, FederationRun& run, int rank) {
  Communicator comm = run.world->communicator(rank);
  const int n = comm.size();
  for (;;) {
    co_await sim.delay(run.config->digest_interval);
    std::vector<double> lanes = {
        static_cast<double>(run.pending_on(rank)),
        (rank == 0 && run.stopping) ? 1.0 : 0.0,
    };
    auto all = co_await comm.allgather(
        Message::of<double>(kDigestTag, std::span<const double>(lanes)));
    VGPU_ASSERT_MSG(all.ok(), all.status().to_string().c_str());
    if (rank == 0) ++run.result->digest_rounds;

    std::vector<double> pending(static_cast<std::size_t>(n));
    bool stop = false;
    for (int peer = 0; peer < n; ++peer) {
      auto peer_lanes = (*all)[static_cast<std::size_t>(peer)].as<double>();
      VGPU_ASSERT(peer_lanes.ok() && peer_lanes->size() == 2);
      pending[static_cast<std::size_t>(peer)] = (*peer_lanes)[0];
      if (peer == 0 && (*peer_lanes)[1] != 0.0) stop = true;
    }
    if (stop) break;

    const auto busiest = std::max_element(pending.begin(), pending.end());
    const auto idlest = std::min_element(pending.begin(), pending.end());
    const int src = static_cast<int>(busiest - pending.begin());
    const int dst = static_cast<int>(idlest - pending.begin());
    if (src == dst || *busiest - *idlest < run.config->migrate_min_gap) {
      continue;
    }
    if (rank != src) continue;  // single writer: the overloaded node
    gvm::DevicePoolGvm& pool = *(*run.nodes)[static_cast<std::size_t>(src)]
                                    .pool;
    for (std::size_t d = 0; d < pool.device_count(); ++d) {
      const int client = pool.pick_migratable(static_cast<int>(d));
      if (client >= 0 && run.want_node.find(client) == run.want_node.end()) {
        run.want_node[client] = dst;
        break;
      }
    }
  }
}

/// Round-boundary hook: executes a pending cross-node directive for this
/// client — export at home, ship the working set over the fabric, adopt at
/// the destination (bouncing home on refusal).
des::Task<gvm::DevicePoolGvm*> execute_directive(des::Simulator& sim,
                                                 FederationRun& run,
                                                 int client) {
  auto want = run.want_node.find(client);
  if (want == run.want_node.end()) co_return nullptr;
  const int dst = want->second;
  run.want_node.erase(want);
  const int src = run.node_of.at(client);
  if (dst == src) co_return nullptr;

  auto& src_node = (*run.nodes)[static_cast<std::size_t>(src)];
  auto& dst_node = (*run.nodes)[static_cast<std::size_t>(dst)];
  auto exported = co_await src_node.pool->export_for_transfer(client);
  if (!exported.ok()) co_return nullptr;  // mid-round; directive dropped

  // The working set rides the comm fabric as a real tagged payload: the
  // send charges the source NIC + wire, the matching recv claims it at the
  // destination — same matching rules as any SPMD message.
  const int tag = kMigrateTagBase + client;
  Message carrier;
  carrier.tag = tag;
  carrier.payload.resize(static_cast<std::size_t>(exported->working_set()));
  co_await run.world->communicator(src).send(dst, std::move(carrier));
  Message landed = co_await run.world->communicator(dst).recv(src, tag);
  run.result->migrated_bytes += static_cast<Bytes>(landed.payload.size());

  Status adopted = co_await dst_node.pool->adopt(client, *exported);
  if (!adopted.ok()) {
    ++run.result->bounced_adoptions;
    // The export freed the client's footprint at home, so re-adoption
    // succeeds as soon as any transient pressure clears.
    for (;;) {
      Status back = co_await src_node.pool->adopt(client, *exported);
      if (back.ok()) break;
      co_await sim.delay(run.config->pool.gvm.poll_interval);
    }
    co_return src_node.pool.get();
  }
  run.node_of[client] = dst;
  ++run.result->cross_node_migrations;
  co_return dst_node.pool.get();
}

des::Task<> client_process(des::Simulator& sim, FederationRun& run, int id,
                           const FederatedClientSpec& spec,
                           des::CountdownLatch& done) {
  co_await sim.delay(spec.work.arrival);
  const int home = spec.home_node;
  run.node_of[id] = home;
  gvm::PoolClient client(sim, *(*run.nodes)[static_cast<std::size_t>(home)]
                                  .pool,
                         id);
  if (run.config->exchange) {
    client.set_migrate_hook([&sim, &run](int c) {
      return execute_directive(sim, run, c);
    });
  }
  for (int s = 0; s < spec.work.sessions; ++s) {
    if (s > 0) co_await sim.delay(spec.work.think);
    const SimTime begin = sim.now();
    co_await client.run_task(spec.work.plan, spec.work.rounds);
    run.result->session_seconds.push_back(to_seconds(sim.now() - begin));
    ++run.result->sessions_per_node[static_cast<std::size_t>(
        run.node_of.at(id))];
  }
  done.count_down();
}

}  // namespace

double FederationResult::p95_seconds() const {
  if (session_seconds.empty()) return 0.0;
  return percentile(session_seconds, 0.95);
}

double FederationResult::mean_seconds() const {
  if (session_seconds.empty()) return 0.0;
  double sum = 0.0;
  for (double s : session_seconds) sum += s;
  return sum / static_cast<double>(session_seconds.size());
}

FederationResult run_federated(
    const FederationConfig& config,
    const std::vector<FederatedClientSpec>& clients) {
  VGPU_ASSERT(config.nodes >= 1 && config.devices_per_node >= 1);
  VGPU_ASSERT(!clients.empty());
  for (const auto& spec : clients) {
    VGPU_ASSERT(spec.home_node >= 0 && spec.home_node < config.nodes);
  }
  VGPU_ASSERT(static_cast<int>(clients.size()) < kMigrateTagBase);

  des::Simulator sim;
  Network network(sim, config.network, config.nodes);
  ClusterComm world(sim, network, config.nodes);  // one agent rank per node

  std::vector<NodePools> nodes(static_cast<std::size_t>(config.nodes));
  for (auto& node : nodes) {
    std::vector<vcuda::Runtime*> ptrs;
    for (int d = 0; d < config.devices_per_node; ++d) {
      node.devices.push_back(std::make_unique<gpu::Device>(sim, config.gpu));
      node.runtimes.push_back(
          std::make_unique<vcuda::Runtime>(sim, *node.devices.back()));
      ptrs.push_back(node.runtimes.back().get());
    }
    node.pool =
        std::make_unique<gvm::DevicePoolGvm>(sim, ptrs, config.pool);
    node.pool->start();
  }

  FederationResult result;
  result.sessions_per_node.assign(static_cast<std::size_t>(config.nodes), 0);
  FederationRun run;
  run.config = &config;
  run.nodes = &nodes;
  run.world = &world;
  run.result = &result;

  sim.spawn([](des::Simulator& sim, FederationRun& run,
               const std::vector<FederatedClientSpec>& clients)
                -> des::Task<> {
    for (auto& node : *run.nodes) co_await node.pool->wait_ready();
    const SimTime t0 = sim.now();
    if (run.config->exchange) {
      for (int rank = 0; rank < run.config->nodes; ++rank) {
        sim.spawn(digest_agent(sim, run, rank));
      }
    }
    des::CountdownLatch done(sim, clients.size());
    for (std::size_t i = 0; i < clients.size(); ++i) {
      sim.spawn(client_process(sim, run, static_cast<int>(i), clients[i],
                               done));
    }
    co_await done.wait();
    run.result->makespan = sim.now() - t0;
    run.stopping = true;  // rank 0 publishes this in the next digest round
    for (auto& node : *run.nodes) node.pool->stop();
  }(sim, run, clients));
  sim.run();

  result.bytes_on_wire = network.bytes_on_wire();
  result.messages_on_wire = network.messages_on_wire();
  for (const auto& node : nodes) {
    Bytes residual = 0;
    for (const auto& device : node.devices) residual += device->memory_used();
    result.residual_node_bytes.push_back(residual);
  }
  return result;
}

}  // namespace vgpu::cluster
