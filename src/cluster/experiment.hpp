// Cluster-scale SPMD experiment: the paper's Figure 2 architecture end to
// end. `nodes` compute nodes, each with `cores_per_node` CPU cores and one
// GPU, joined by the simulated interconnect. Every SPMD rank computes its
// partition of NPB EP on its node's GPU — natively or through the
// node-local GVM — then the cluster allreduces the tallies.
//
// The run is functionally verifiable: summing the per-rank EP partitions
// must reproduce the sequential EP result exactly (integer tallies), so
// one experiment exercises the GPU model, the virtualization layer and the
// MPI-like collectives together.
#pragma once

#include "cluster/comm.hpp"
#include "gpu/spec.hpp"
#include "kernels/ep.hpp"

namespace vgpu::cluster {

struct ClusterConfig {
  int nodes = 4;
  int cores_per_node = 8;  // SPMD ranks per node
  gpu::DeviceSpec gpu;     // one per node
  NetworkSpec network;
  bool virtualized = true;  // GVM per node vs native context sharing

  ClusterConfig() : gpu(gpu::tesla_c2070()) {}
  int ranks() const { return nodes * cores_per_node; }
};

struct ClusterResult {
  SimDuration turnaround = 0;   // all ranks started simultaneously
  Bytes bytes_on_wire = 0;      // interconnect traffic
  long messages_on_wire = 0;
  long ctx_switches = 0;        // summed over nodes
  kernels::EpResult reduced;    // the allreduced EP tallies (rank 0's copy)
};

/// Runs EP class `m` partitioned across all ranks; every rank's GPU phase
/// runs on its node's device, then the tallies are allreduced.
ClusterResult run_cluster_ep(const ClusterConfig& config, int m);

}  // namespace vgpu::cluster
