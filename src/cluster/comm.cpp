#include "cluster/comm.hpp"

#include "common/math.hpp"

namespace vgpu::cluster {

namespace {
/// Collectives use a reserved negative tag space so they never collide
/// with user point-to-point traffic.
constexpr int kBarrierTag = -1;
constexpr int kBcastTag = -2;
constexpr int kReduceTag = -3;
constexpr int kGatherTag = -4;
/// Per-message envelope bytes charged on the wire.
constexpr Bytes kHeaderBytes = 64;
}  // namespace

// ---------------------------------------------------------------------------
// ClusterComm
// ---------------------------------------------------------------------------

ClusterComm::ClusterComm(des::Simulator& sim, Network& network, int ranks)
    : sim_(sim), network_(network), ranks_(ranks) {
  VGPU_ASSERT(ranks >= 1);
  ranks_per_node_ = static_cast<int>(
      ceil_div(static_cast<long>(ranks), static_cast<long>(network.nodes())));
}

int ClusterComm::node_of(int rank) const {
  VGPU_ASSERT(rank >= 0 && rank < ranks_);
  return rank / ranks_per_node_;
}

des::Channel<Message>& ClusterComm::mailbox(int source, int destination,
                                            int tag) {
  const MailboxKey key{source, destination, tag};
  auto it = mailboxes_.find(key);
  if (it == mailboxes_.end()) {
    it = mailboxes_
             .emplace(key, std::make_unique<des::Channel<Message>>(sim_))
             .first;
  }
  return *it->second;
}

// ---------------------------------------------------------------------------
// Communicator
// ---------------------------------------------------------------------------

int Communicator::size() const { return world_->size(); }
int Communicator::node() const { return world_->node_of(rank_); }

des::Task<> Communicator::send(int dst, Message message) {
  VGPU_ASSERT(dst >= 0 && dst < size());
  message.source = rank_;
  const Bytes bytes = static_cast<Bytes>(message.payload.size()) +
                      kHeaderBytes;
  co_await world_->network_.transfer(world_->node_of(rank_),
                                     world_->node_of(dst), bytes);
  world_->mailbox(rank_, dst, message.tag).send(std::move(message));
}

des::Task<Message> Communicator::recv(int source, int tag) {
  VGPU_ASSERT(source >= 0 && source < size());
  Message m = co_await world_->mailbox(source, rank_, tag).receive();
  co_return m;
}

des::Task<> Communicator::barrier() {
  // Binomial gather to rank 0 (MPICH reduce structure), then a broadcast
  // releases everyone.
  const int n = size();
  for (int mask = 1; mask < n; mask <<= 1) {
    if ((rank_ & mask) != 0) {
      Message token;
      token.tag = kBarrierTag;
      co_await send(rank_ - mask, std::move(token));
      break;
    }
    if (rank_ + mask < n) {
      (void)co_await recv(rank_ + mask, kBarrierTag);
    }
  }
  Message release;
  release.tag = kBarrierTag;
  (void)co_await bcast(0, std::move(release));
}

des::Task<Message> Communicator::bcast(int root, Message message) {
  // MPICH binomial broadcast over virtual ranks rooted at `root`.
  const int n = size();
  const int vrank = (rank_ - root + n) % n;
  message.tag = kBcastTag;

  int mask = 1;
  while (mask < n) {
    if ((vrank & mask) != 0) {
      const int parent = ((vrank - mask) + root) % n;
      message = co_await recv(parent, kBcastTag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < n) {
      const int child = ((vrank + mask) + root) % n;
      co_await send(child, message);
    }
    mask >>= 1;
  }
  message.source = root;
  co_return message;
}

des::Task<StatusOr<std::vector<double>>> Communicator::reduce_sum(
    int root, std::vector<double> values) {
  // MPICH binomial reduce over virtual ranks rooted at `root`.
  const int n = size();
  const int vrank = (rank_ - root + n) % n;
  for (int step = 1; step < n; step *= 2) {
    if ((vrank & step) != 0) {
      const int parent = ((vrank - step) + root) % n;
      co_await send(parent,
                    Message::of<double>(kReduceTag,
                                        {values.data(), values.size()}));
      co_return std::vector<double>{};  // only the root holds the sum
    }
    if (vrank + step < n) {
      const int child = ((vrank + step) + root) % n;
      const Message m = co_await recv(child, kReduceTag);
      auto partial = m.as<double>();
      if (!partial.ok()) co_return partial.status();
      if (partial->size() != values.size()) {
        co_return InvalidArgument(
            "reduce_sum: rank " + std::to_string(m.source) + " contributed " +
            std::to_string(partial->size()) + " lanes, expected " +
            std::to_string(values.size()));
      }
      for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] += (*partial)[i];
      }
    }
  }
  co_return values;
}

des::Task<StatusOr<std::vector<Message>>> Communicator::gather(
    int root, Message message) {
  const int n = size();
  if (rank_ != root) {
    message.tag = kGatherTag;
    co_await send(root, std::move(message));
    co_return std::vector<Message>{};  // only the root holds the result
  }
  std::vector<Message> out(static_cast<std::size_t>(n));
  message.source = rank_;
  message.tag = kGatherTag;
  out[static_cast<std::size_t>(rank_)] = std::move(message);
  for (int r = 0; r < n; ++r) {
    if (r == root) continue;
    out[static_cast<std::size_t>(r)] = co_await recv(r, kGatherTag);
  }
  co_return out;
}

des::Task<StatusOr<std::vector<Message>>> Communicator::allgather(
    Message message) {
  const int n = size();
  const int tag = message.tag;
  const std::size_t each = message.payload.size();
  auto gathered = co_await gather(0, std::move(message));
  if (!gathered.ok()) co_return gathered.status();

  Message concat;
  if (rank_ == 0) {
    bool equal = true;
    for (const Message& m : *gathered) {
      equal = equal && m.payload.size() == each;
    }
    if (equal) {
      concat.payload.reserve(each * static_cast<std::size_t>(n));
      for (const Message& m : *gathered) {
        concat.payload.insert(concat.payload.end(), m.payload.begin(),
                              m.payload.end());
      }
    } else {
      // Broadcast a 1-byte sentinel: 1 != each * n on every rank (n == 1
      // can never mismatch), so the whole world reports the error instead
      // of a subset hanging.
      concat.payload.resize(1);
    }
  }
  const Message all = co_await bcast(0, std::move(concat));
  if (all.payload.size() != each * static_cast<std::size_t>(n)) {
    co_return InvalidArgument(
        "allgather: ranks contributed unequal payload sizes");
  }
  std::vector<Message> out(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    Message& m = out[static_cast<std::size_t>(r)];
    m.source = r;
    m.tag = tag;
    const auto begin =
        all.payload.begin() +
        static_cast<std::ptrdiff_t>(each * static_cast<std::size_t>(r));
    m.payload.assign(begin, begin + static_cast<std::ptrdiff_t>(each));
  }
  co_return out;
}

des::Task<StatusOr<std::vector<double>>> Communicator::allreduce_sum(
    std::vector<double> values) {
  const std::size_t lanes = values.size();
  auto reduced = co_await reduce_sum(0, std::move(values));
  if (!reduced.ok()) co_return reduced.status();
  // Broadcast the sum from rank 0 (non-roots seed an empty message; bcast
  // overwrites it with the root's payload).
  Message seed;
  if (rank_ == 0) {
    seed = Message::of<double>(kBcastTag, {reduced->data(), reduced->size()});
  }
  const Message result = co_await bcast(0, std::move(seed));
  auto out = result.as<double>();
  if (!out.ok()) co_return out.status();
  if (out->size() != lanes) {
    co_return InvalidArgument("allreduce_sum: root reduced " +
                              std::to_string(out->size()) +
                              " lanes, expected " + std::to_string(lanes));
  }
  co_return std::move(*out);
}

}  // namespace vgpu::cluster
