#include "cluster/comm.hpp"

#include "common/math.hpp"

namespace vgpu::cluster {

namespace {
/// Collectives use a reserved negative tag space so they never collide
/// with user point-to-point traffic.
constexpr int kBarrierTag = -1;
constexpr int kBcastTag = -2;
constexpr int kReduceTag = -3;
/// Per-message envelope bytes charged on the wire.
constexpr Bytes kHeaderBytes = 64;
}  // namespace

// ---------------------------------------------------------------------------
// ClusterComm
// ---------------------------------------------------------------------------

ClusterComm::ClusterComm(des::Simulator& sim, Network& network, int ranks)
    : sim_(sim), network_(network), ranks_(ranks) {
  VGPU_ASSERT(ranks >= 1);
  ranks_per_node_ = static_cast<int>(
      ceil_div(static_cast<long>(ranks), static_cast<long>(network.nodes())));
}

int ClusterComm::node_of(int rank) const {
  VGPU_ASSERT(rank >= 0 && rank < ranks_);
  return rank / ranks_per_node_;
}

des::Channel<Message>& ClusterComm::mailbox(int source, int destination,
                                            int tag) {
  const MailboxKey key{source, destination, tag};
  auto it = mailboxes_.find(key);
  if (it == mailboxes_.end()) {
    it = mailboxes_
             .emplace(key, std::make_unique<des::Channel<Message>>(sim_))
             .first;
  }
  return *it->second;
}

// ---------------------------------------------------------------------------
// Communicator
// ---------------------------------------------------------------------------

int Communicator::size() const { return world_->size(); }
int Communicator::node() const { return world_->node_of(rank_); }

des::Task<> Communicator::send(int dst, Message message) {
  VGPU_ASSERT(dst >= 0 && dst < size());
  message.source = rank_;
  const Bytes bytes = static_cast<Bytes>(message.payload.size()) +
                      kHeaderBytes;
  co_await world_->network_.transfer(world_->node_of(rank_),
                                     world_->node_of(dst), bytes);
  world_->mailbox(rank_, dst, message.tag).send(std::move(message));
}

des::Task<Message> Communicator::recv(int source, int tag) {
  VGPU_ASSERT(source >= 0 && source < size());
  Message m = co_await world_->mailbox(source, rank_, tag).receive();
  co_return m;
}

des::Task<> Communicator::barrier() {
  // Binomial gather to rank 0 (MPICH reduce structure), then a broadcast
  // releases everyone.
  const int n = size();
  for (int mask = 1; mask < n; mask <<= 1) {
    if ((rank_ & mask) != 0) {
      Message token;
      token.tag = kBarrierTag;
      co_await send(rank_ - mask, std::move(token));
      break;
    }
    if (rank_ + mask < n) {
      (void)co_await recv(rank_ + mask, kBarrierTag);
    }
  }
  Message release;
  release.tag = kBarrierTag;
  (void)co_await bcast(0, std::move(release));
}

des::Task<Message> Communicator::bcast(int root, Message message) {
  // MPICH binomial broadcast over virtual ranks rooted at `root`.
  const int n = size();
  const int vrank = (rank_ - root + n) % n;
  message.tag = kBcastTag;

  int mask = 1;
  while (mask < n) {
    if ((vrank & mask) != 0) {
      const int parent = ((vrank - mask) + root) % n;
      message = co_await recv(parent, kBcastTag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < n) {
      const int child = ((vrank + mask) + root) % n;
      co_await send(child, message);
    }
    mask >>= 1;
  }
  message.source = root;
  co_return message;
}

des::Task<std::vector<double>> Communicator::allreduce_sum(
    std::vector<double> values) {
  // Binomial reduce to rank 0.
  const int n = size();
  for (int step = 1; step < n; step *= 2) {
    if ((rank_ & step) != 0) {
      co_await send(rank_ - step,
                    Message::of<double>(kReduceTag,
                                        {values.data(), values.size()}));
      break;
    }
    if (rank_ + step < n) {
      const Message m = co_await recv(rank_ + step, kReduceTag);
      const std::vector<double> partial = m.as<double>();
      VGPU_ASSERT(partial.size() == values.size());
      for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] += partial[i];
      }
    }
  }
  // Broadcast the sum from rank 0.
  Message result = co_await bcast(
      0, Message::of<double>(kBcastTag, {values.data(), values.size()}));
  co_return result.as<double>();
}

}  // namespace vgpu::cluster
