#include "cluster/experiment.hpp"

#include <memory>

#include "gvm/gvm.hpp"
#include "vcuda/runtime.hpp"

namespace vgpu::cluster {

namespace {

/// EpResult <-> flat doubles for the allreduce (13 lanes: sx, sy,
/// accepted, q[0..9]; counts are exact in doubles far beyond 2^32).
std::vector<double> pack(const kernels::EpResult& r) {
  std::vector<double> v(13);
  v[0] = r.sx;
  v[1] = r.sy;
  v[2] = static_cast<double>(r.pairs_accepted);
  for (std::size_t i = 0; i < r.q.size(); ++i) {
    v[3 + i] = static_cast<double>(r.q[i]);
  }
  return v;
}

kernels::EpResult unpack(const std::vector<double>& v) {
  VGPU_ASSERT(v.size() == 13);
  kernels::EpResult r;
  r.sx = v[0];
  r.sy = v[1];
  r.pairs_accepted = static_cast<long>(v[2]);
  for (std::size_t i = 0; i < r.q.size(); ++i) {
    r.q[i] = static_cast<long>(v[3 + i]);
  }
  return r;
}

/// Per-rank EP kernel: the class-B cost scaled to this rank's partition.
gvm::TaskPlan rank_plan(int m, int rank, int ranks,
                        kernels::EpResult* out) {
  gvm::TaskPlan plan;
  plan.bytes_out = static_cast<Bytes>(sizeof(kernels::EpResult));
  plan.backed = true;
  plan.output = out;
  gpu::KernelLaunch launch = kernels::ep_launch(m);
  launch.cost.flops_per_thread /= static_cast<double>(ranks);
  plan.kernels = {launch};
  plan.kernel_body = [m, rank, ranks](gvm::TaskBuffers& buffers) {
    auto* result = buffers.out->as<kernels::EpResult>();
    VGPU_ASSERT(result != nullptr);
    *result = kernels::ep_chunk_range(m, rank, ranks);
  };
  return plan;
}

struct NodeRig {
  std::unique_ptr<gpu::Device> device;
  std::unique_ptr<vcuda::Runtime> runtime;
  std::unique_ptr<gvm::Gvm> gvm;  // only when virtualized
};

des::Task<> rank_process(des::Simulator& sim, const ClusterConfig& config,
                         int m, int rank, NodeRig& node,
                         Communicator comm, kernels::EpResult& partial,
                         kernels::EpResult& reduced,
                         des::CountdownLatch& done) {
  // --- GPU phase on the local node --------------------------------------
  gvm::TaskPlan plan = rank_plan(m, rank, config.ranks(), &partial);
  // Held to the end of the process (baseline path), as a real SPMD process
  // holds its context until exit — keeps context switches charged.
  std::unique_ptr<vcuda::Context> ctx;
  if (config.virtualized) {
    gvm::VGpuClient client(sim, *node.gvm, rank);
    co_await client.run_task(std::move(plan), 1);
  } else {
    ctx = co_await node.runtime->create_context();
    auto dev_out = ctx->malloc(plan.bytes_out, true);
    VGPU_ASSERT(dev_out.ok());
    gvm::TaskBuffers buffers{nullptr, &*dev_out};
    co_await ctx->launch_sync(plan.kernels[0],
                              [&] { plan.kernel_body(buffers); });
    co_await ctx->memcpy_d2h(plan.output, *dev_out, plan.bytes_out);
  }

  // --- cluster phase: allreduce the tallies ------------------------------
  auto summed = co_await comm.allreduce_sum(pack(partial));
  VGPU_ASSERT_MSG(summed.ok(), summed.status().to_string().c_str());
  if (rank == 0) reduced = unpack(*summed);
  done.count_down();
  co_await done.wait();  // hold node resources until every rank finishes
}

}  // namespace

ClusterResult run_cluster_ep(const ClusterConfig& config, int m) {
  VGPU_ASSERT(config.nodes >= 1 && config.cores_per_node >= 1);
  des::Simulator sim;
  Network network(sim, config.network, config.nodes);
  ClusterComm world(sim, network, config.ranks());

  std::vector<NodeRig> nodes(static_cast<std::size_t>(config.nodes));
  for (auto& rig : nodes) {
    rig.device = std::make_unique<gpu::Device>(sim, config.gpu);
    rig.runtime = std::make_unique<vcuda::Runtime>(sim, *rig.device);
    if (config.virtualized) {
      gvm::GvmConfig gvm_config;
      gvm_config.expected_clients = config.cores_per_node;
      rig.gvm = std::make_unique<gvm::Gvm>(sim, *rig.runtime, gvm_config);
      rig.gvm->start();
    }
  }

  ClusterResult result;
  std::vector<kernels::EpResult> partials(
      static_cast<std::size_t>(config.ranks()));

  sim.spawn([](des::Simulator& sim, const ClusterConfig& config, int m,
               ClusterComm& world, std::vector<NodeRig>& nodes,
               std::vector<kernels::EpResult>& partials,
               ClusterResult& result) -> des::Task<> {
    if (config.virtualized) {
      for (auto& rig : nodes) co_await rig.gvm->ready().wait();
    }
    const SimTime t0 = sim.now();
    des::CountdownLatch done(sim,
                             static_cast<std::size_t>(config.ranks()));
    for (int rank = 0; rank < config.ranks(); ++rank) {
      NodeRig& node =
          nodes[static_cast<std::size_t>(rank / config.cores_per_node)];
      sim.spawn(rank_process(sim, config, m, rank, node,
                             world.communicator(rank),
                             partials[static_cast<std::size_t>(rank)],
                             result.reduced, done));
    }
    co_await done.wait();
    result.turnaround = sim.now() - t0;
  }(sim, config, m, world, nodes, partials, result));
  sim.run();

  result.bytes_on_wire = network.bytes_on_wire();
  result.messages_on_wire = network.messages_on_wire();
  for (const auto& rig : nodes) {
    result.ctx_switches += rig.device->stats().ctx_switches;
  }
  return result;
}

}  // namespace vgpu::cluster
