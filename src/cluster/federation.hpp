// Federation of GVM device pools across cluster nodes (the node-scaling
// direction of the journal extension, Li et al. arXiv:1511.07658).
//
// Each node runs one DevicePoolGvm over its local GPUs. A per-node agent
// rank exchanges fixed-size load digests over cluster::Communicator every
// digest interval (an allgather, so every node sees the same global view
// in the same round) and derives the same deterministic rebalance decision:
// when the busiest node's outstanding-round count exceeds the idlest's by
// at least `migrate_min_gap`, the busiest node directs one of its clients
// to the idlest node.
//
// The move itself happens at the directed client's next round boundary,
// inside the client's own coroutine: the source pool exports the client
// (device state drains to zero there), the working set travels as a real
// payload over the comm fabric (send + matching recv, charging the wire),
// and the destination pool adopts it through its own placement + admission
// path. A refused adoption bounces the client back to its source pool.
#pragma once

#include <vector>

#include "cluster/comm.hpp"
#include "gvm/pool.hpp"

namespace vgpu::cluster {

struct FederationConfig {
  int nodes = 2;
  int devices_per_node = 1;
  gpu::DeviceSpec gpu;           // every device in the federation
  gvm::PoolConfig pool;          // per-node pool configuration
  NetworkSpec network;
  /// Load-digest exchange + cross-node migration; off = isolated pools
  /// (the no-exchange control in the scaling experiment).
  bool exchange = true;
  SimDuration digest_interval = milliseconds(1.0);
  /// Minimum outstanding-rounds gap (busiest - idlest node) before a move.
  int migrate_min_gap = 2;

  FederationConfig() : gpu(gpu::tesla_c2070()) {}
};

/// One federated client: a pool workload spec plus the node whose pool it
/// first attaches to (a skewed population homes everyone on node 0).
struct FederatedClientSpec {
  gvm::PoolClientSpec work;
  int home_node = 0;
};

struct FederationResult {
  SimDuration makespan = 0;
  std::vector<double> session_seconds;  // per-session turnaround, seconds
  long digest_rounds = 0;          // allgather exchanges completed
  long cross_node_migrations = 0;  // clients moved between node pools
  long bounced_adoptions = 0;      // destination refused; client went home
  Bytes migrated_bytes = 0;        // working-set bytes shipped on the wire
  Bytes bytes_on_wire = 0;         // total fabric traffic (digests + moves)
  long messages_on_wire = 0;
  /// Sessions served per node (where the session's rounds actually ran).
  std::vector<long> sessions_per_node;
  /// Post-run drain oracle, per node: device bytes still allocated.
  std::vector<Bytes> residual_node_bytes;

  double p95_seconds() const;
  double mean_seconds() const;
};

/// Runs `clients` against a federation of `config.nodes` pools and
/// measures per-session turnaround plus migration/wire accounting.
FederationResult run_federated(const FederationConfig& config,
                               const std::vector<FederatedClientSpec>& clients);

}  // namespace vgpu::cluster
