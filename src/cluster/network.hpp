// Simulated cluster interconnection network (paper Figure 2: nodes joined
// by an interconnection network, each node holding microprocessors and a
// GPU).
//
// Model: full-bisection fabric; each node owns one NIC whose transmit and
// receive sides serialize that node's traffic (the standard single-port
// model). A message from node A to node B holds A's TX and B's RX for
// bytes/bandwidth, after a per-message wire latency. Intra-node transfers
// bypass the NIC and use the (faster) memory system.
#pragma once

#include <memory>
#include <vector>

#include "common/units.hpp"
#include "des/sim.hpp"
#include "des/sync.hpp"

namespace vgpu::cluster {

struct NetworkSpec {
  /// One-way wire latency per message.
  SimDuration latency = microseconds(1.5);
  /// Per-link bandwidth (DDR InfiniBand era: ~2.5 GB/s).
  BytesPerSecond bandwidth = gb_per_s(2.5);
  /// Intra-node (shared-memory) message path.
  SimDuration local_latency = microseconds(0.3);
  BytesPerSecond local_bandwidth = gb_per_s(8.0);
};

class Network {
 public:
  Network(des::Simulator& sim, NetworkSpec spec, int nodes);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  int nodes() const { return static_cast<int>(tx_.size()); }
  const NetworkSpec& spec() const { return spec_; }

  /// Moves `bytes` from node `src` to node `dst`; completes when the last
  /// byte lands. Same-node transfers take the local path.
  des::Task<> transfer(int src, int dst, Bytes bytes);

  /// Total bytes that crossed the fabric (excluding local traffic).
  Bytes bytes_on_wire() const { return bytes_on_wire_; }
  long messages_on_wire() const { return messages_on_wire_; }

 private:
  des::Simulator& sim_;
  NetworkSpec spec_;
  std::vector<std::unique_ptr<des::Semaphore>> tx_;
  std::vector<std::unique_ptr<des::Semaphore>> rx_;
  Bytes bytes_on_wire_ = 0;
  long messages_on_wire_ = 0;
};

}  // namespace vgpu::cluster
