// MPI-flavored message passing for SPMD ranks over the simulated network.
//
// A ClusterComm is the world: `ranks` SPMD processes placed round-robin-
// block onto nodes (rank r lives on node r / ranks_per_node). Each rank
// drives a Communicator handle with the classic core:
//
//   send / recv (tagged, matched by (source, tag), FIFO per pair)
//   barrier               (binomial-tree gather + broadcast)
//   bcast                 (binomial tree from the root)
//   reduce_sum            (binomial tree to the root)
//   gather / allgather    (linear gather; allgather = gather + bcast)
//   allreduce_sum         (reduce-to-root + broadcast)
//
// Transfer costs come from the Network model; matching and ordering are
// exact, so functional data rides along for verification just like the MPI
// programs the paper's SPMD model targets.
#pragma once

#include <cstring>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "cluster/network.hpp"
#include "common/status.hpp"
#include "des/channel.hpp"

namespace vgpu::cluster {

struct Message {
  int source = -1;
  int tag = 0;
  std::vector<std::byte> payload;

  template <typename T>
  static Message of(int tag, std::span<const T> values) {
    Message m;
    m.tag = tag;
    m.payload.resize(values.size_bytes());
    std::memcpy(m.payload.data(), values.data(), values.size_bytes());
    return m;
  }

  /// Reinterprets the payload as a vector of T. A payload whose size is
  /// not a multiple of sizeof(T) is a peer-protocol mismatch, not a
  /// programming error here — it surfaces as kInvalidArgument so callers
  /// can propagate it instead of aborting.
  template <typename T>
  StatusOr<std::vector<T>> as() const {
    if (payload.size() % sizeof(T) != 0) {
      return InvalidArgument("payload of " + std::to_string(payload.size()) +
                             " bytes is not a whole number of " +
                             std::to_string(sizeof(T)) + "-byte elements");
    }
    std::vector<T> values(payload.size() / sizeof(T));
    std::memcpy(values.data(), payload.data(), payload.size());
    return values;
  }
};

class ClusterComm;

/// Per-rank handle. All operations are awaitable DES tasks. Collectives
/// return StatusOr: a rank that detects a peer-protocol mismatch (payload
/// shape disagreement) reports it locally; matching is wildcard-free, so
/// the peers of a rank that bailed out simply never see its messages (the
/// same observable behaviour as a lost rank in MPI).
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const;
  int node() const;

  /// Point-to-point send: completes when the payload has landed at the
  /// destination (rendezvous-style semantics).
  des::Task<> send(int dst, Message message);

  /// Receives the next message from `source` with `tag` (FIFO per pair).
  des::Task<Message> recv(int source, int tag);

  /// Binomial-tree barrier across all ranks.
  des::Task<> barrier();

  /// Binomial-tree broadcast of `message` from `root`; returns each rank's
  /// copy (the root gets its own back).
  des::Task<Message> bcast(int root, Message message);

  /// Binomial-tree sum-reduce of a double vector to `root`. The root's
  /// result holds the element-wise sum; every other rank gets an empty
  /// vector (MPI_Reduce semantics). All ranks must contribute vectors of
  /// equal length or the receiver reports kInvalidArgument.
  des::Task<StatusOr<std::vector<double>>> reduce_sum(
      int root, std::vector<double> values);

  /// Gathers one message per rank at `root`, ordered by rank (the root's
  /// own contribution included). Linear receive loop — payload sizes may
  /// differ per rank. Non-root ranks get an empty vector back.
  des::Task<StatusOr<std::vector<Message>>> gather(int root, Message message);

  /// Every rank contributes one equal-size payload and receives all of
  /// them, ordered by rank. Built on gather(0) + bcast of the
  /// concatenation (MPI_Allgather's equal-count contract); unequal
  /// contributions surface as kInvalidArgument on every rank.
  des::Task<StatusOr<std::vector<Message>>> allgather(Message message);

  /// Sum-allreduce of a double vector across all ranks: reduce_sum(0) then
  /// a broadcast of the sums.
  des::Task<StatusOr<std::vector<double>>> allreduce_sum(
      std::vector<double> values);

 private:
  friend class ClusterComm;
  Communicator(ClusterComm& world, int rank) : world_(&world), rank_(rank) {}

  ClusterComm* world_;
  int rank_;
};

class ClusterComm {
 public:
  /// `ranks` SPMD processes over `network.nodes()` nodes, block placement:
  /// ranks_per_node = ceil(ranks / nodes).
  ClusterComm(des::Simulator& sim, Network& network, int ranks);
  ClusterComm(const ClusterComm&) = delete;
  ClusterComm& operator=(const ClusterComm&) = delete;

  int size() const { return ranks_; }
  int node_of(int rank) const;
  Communicator communicator(int rank) {
    VGPU_ASSERT(rank >= 0 && rank < ranks_);
    return Communicator(*this, rank);
  }

 private:
  friend class Communicator;
  // One mailbox per (source, destination, tag): exact matching with FIFO
  // order per triple. (MPI_ANY_SOURCE / MPI_ANY_TAG wildcards are not
  // supported — the SPMD programs here never need them.)
  using MailboxKey = std::tuple<int, int, int>;
  des::Channel<Message>& mailbox(int source, int destination, int tag);

  des::Simulator& sim_;
  Network& network_;
  int ranks_;
  int ranks_per_node_;
  std::map<MailboxKey, std::unique_ptr<des::Channel<Message>>> mailboxes_;
};

}  // namespace vgpu::cluster
