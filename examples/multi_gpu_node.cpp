// Extension beyond the paper's single-GPU evaluation: a node with TWO GPUs
// and eight CPU cores, using the library's MultiGvm — one GVM instance per
// GPU, SPMD processes partitioned round-robin. The paper's "virtualized
// unity ratio" generalized to multiple physical devices.
//
//   $ ./examples/multi_gpu_node
//
// Compares three deployments for 8 SPMD processes running MM (a
// device-filling kernel, so a second GPU genuinely adds capacity):
//   a) native sharing of one GPU (8 contexts, context-switch storm);
//   b) one GVM on one GPU (the paper's configuration);
//   c) two GVMs on two GPUs, 4 clients each.
#include <cstdio>

#include "gvm/multi.hpp"
#include "workloads/workloads.hpp"

using namespace vgpu;

int main() {
  constexpr int kProcs = 8;
  const workloads::Workload w = workloads::matmul();
  const gpu::DeviceSpec spec = gpu::tesla_c2070();

  const gvm::RunResult native =
      gvm::run_baseline(spec, w.plan, w.rounds, kProcs);
  std::printf("a) native, 1 GPU      : %8.1f ms\n", to_ms(native.turnaround));

  const gvm::RunResult one =
      gvm::run_virtualized_multi({spec}, gvm::GvmConfig{}, w.plan, w.rounds,
                                 kProcs);
  std::printf("b) 1 GVM on 1 GPU     : %8.1f ms  (%.2fx vs native)\n",
              to_ms(one.turnaround),
              static_cast<double>(native.turnaround) /
                  static_cast<double>(one.turnaround));

  const gvm::RunResult two = gvm::run_virtualized_multi(
      {spec, spec}, gvm::GvmConfig{}, w.plan, w.rounds, kProcs);
  std::printf("c) 2 GVMs on 2 GPUs   : %8.1f ms  (%.2fx vs native, %.2fx "
              "vs single-GPU GVM)\n",
              to_ms(two.turnaround),
              static_cast<double>(native.turnaround) /
                  static_cast<double>(two.turnaround),
              static_cast<double>(one.turnaround) /
                  static_cast<double>(two.turnaround));
  return 0;
}
