// Quickstart: share one simulated Tesla C2070 among four SPMD processes
// through the GPU Virtualization Manager, and compare against native
// sharing (each process owning a private GPU context).
//
//   $ ./examples/quickstart
//
// Walks through the three public layers:
//   1. workloads::  — pick a benchmark task (vector addition here);
//   2. gvm::        — run it with / without the virtualization layer;
//   3. model::      — check the measurement against the paper's Eq. 5.
#include <cstdio>

#include "gvm/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace vgpu;

int main() {
  constexpr int kProcesses = 4;

  // A 10M-element vector addition: ~80 MB in, ~40 MB out per process.
  const workloads::Workload task = workloads::vector_add(10'000'000);
  const gpu::DeviceSpec gpu = gpu::tesla_c2070();

  std::printf("Device: %s (%d SMs, %s global memory)\n", gpu.name.c_str(),
              gpu.sm_count, format_bytes(gpu.global_mem).c_str());
  std::printf("Task:   %s, %d SPMD processes\n\n", task.name.c_str(),
              kProcesses);

  // --- without virtualization: private context per process ---------------
  const gvm::RunResult native =
      gvm::run_baseline(gpu, task.plan, task.rounds, kProcesses);
  std::printf("native sharing     : %8.1f ms turnaround, %ld context "
              "switches\n",
              to_ms(native.turnaround), native.device.ctx_switches);

  // --- with virtualization: one GVM context, one stream per process ------
  const gvm::RunResult virt = gvm::run_virtualized(
      gpu, gvm::GvmConfig{}, task.plan, task.rounds, kProcesses);
  std::printf("GVM virtualization : %8.1f ms turnaround, %ld context "
              "switches, %d kernels co-resident\n",
              to_ms(virt.turnaround), virt.device.ctx_switches,
              virt.device.max_open_kernels);

  const double speedup = static_cast<double>(native.turnaround) /
                         static_cast<double>(virt.turnaround);
  std::printf("speedup            : %8.2fx\n\n", speedup);

  // --- what the paper's analytical model predicts -------------------------
  const model::ExecutionProfile profile =
      gvm::measure_profile(gpu, task.plan, kProcesses, task.name);
  std::printf("model (Eq. 5)      : %8.2fx predicted speedup\n",
              model::speedup(profile, kProcesses));
  std::printf("model (Eq. 6)      : %8.2fx upper bound as N -> inf\n",
              model::max_speedup(profile));
  std::printf("classification     : %s (I/O : compute = %.2f)\n",
              model::workload_class_name(model::classify(profile)),
              profile.io_ratio());
  return 0;
}
