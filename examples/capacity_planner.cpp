// Capacity planner: when does GPU sharing through a virtualization layer
// pay off on your node? Feeds task-cycle stage times into the paper's
// analytical model (Eqs. 1-6) and prints the speedup curve plus the
// asymptotic bound.
//
//   $ ./examples/capacity_planner                 # built-in presets
//   $ ./examples/capacity_planner Tin Tcomp Tout Tctx Tinit   (all in ms)
#include <cstdio>
#include <cstdlib>

#include "model/model.hpp"

using namespace vgpu;

namespace {

void plan(const model::ExecutionProfile& p, int max_procs) {
  std::printf("\n-- %s --\n", p.name.c_str());
  std::printf("cycle: in %.1f ms, compute %.1f ms, out %.1f ms  "
              "(class: %s)\n",
              to_ms(p.t_data_in), to_ms(p.t_comp), to_ms(p.t_data_out),
              model::workload_class_name(model::classify(p)));
  std::printf("%-6s %-14s %-14s %-8s\n", "procs", "no-virt (ms)",
              "virt (ms)", "speedup");
  for (int n = 1; n <= max_procs; n *= 2) {
    std::printf("%-6d %-14.1f %-14.1f %-8.2f\n", n,
                to_ms(model::total_time_no_virtualization(p, n)),
                to_ms(model::total_time_virtualized(p, n)),
                model::speedup(p, n));
  }
  std::printf("asymptotic bound (Eq. 6): %.2fx\n", model::max_speedup(p));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 6) {
    model::ExecutionProfile p;
    p.name = "user-supplied profile";
    p.t_data_in = milliseconds(std::atof(argv[1]));
    p.t_comp = milliseconds(std::atof(argv[2]));
    p.t_data_out = milliseconds(std::atof(argv[3]));
    p.t_ctx_switch = milliseconds(std::atof(argv[4]));
    p.t_init = milliseconds(std::atof(argv[5]));
    plan(p, 64);
    return 0;
  }

  std::printf("usage: %s [Tin Tcomp Tout Tctx Tinit]   (ms; presets shown "
              "below)\n",
              argv[0]);

  model::ExecutionProfile io;
  io.name = "I/O-heavy preset (paper's vector addition)";
  io.t_init = milliseconds(1519.4);
  io.t_data_in = milliseconds(135.9);
  io.t_comp = milliseconds(5.2);
  io.t_data_out = milliseconds(66.7);
  io.t_ctx_switch = milliseconds(148.2);
  plan(io, 64);

  model::ExecutionProfile comp;
  comp.name = "compute-heavy preset (paper's EP class B)";
  comp.t_init = milliseconds(1513.6);
  comp.t_data_in = 0;
  comp.t_comp = milliseconds(8951.3);
  comp.t_data_out = microseconds(55.0);
  comp.t_ctx_switch = milliseconds(220.6);
  plan(comp, 64);

  model::ExecutionProfile balanced;
  balanced.name = "balanced preset (Tin = Tcomp = Tout)";
  balanced.t_init = milliseconds(1500.0);
  balanced.t_data_in = milliseconds(50.0);
  balanced.t_comp = milliseconds(50.0);
  balanced.t_data_out = milliseconds(50.0);
  balanced.t_ctx_switch = milliseconds(185.0);
  plan(balanced, 64);
  return 0;
}
