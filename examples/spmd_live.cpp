// Live SPMD demo: REAL processes sharing a GVM daemon over POSIX IPC.
//
//   $ ./examples/spmd_live [nprocs] [--exec=serial|sharded] [--workers=N]
//                          [--trace-out=<file>]
//
// The parent starts the GVM server (message-queue control plane, worker
// pool — or, with --exec=sharded, the src/exec work-stealing engine — as
// the functional executor), then fork()s `nprocs` child processes.
// Each child connects to its Virtual GPU, writes a distinct vector-addition
// problem into its virtual shared memory, runs the full
// REQ/SND/STR/STP/RCV/RLS protocol, and verifies the result that came back.
//
// With --trace-out= the server records per-client Tin/Tcomp/Tout phase
// spans, writes them as a Chrome/Perfetto trace, and prints the
// measured-vs-model residual report (docs/observability.md).
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "obs/residuals.hpp"
#include "rt/client.hpp"
#include "rt/registry.hpp"
#include "rt/server.hpp"

using namespace vgpu;

namespace {

constexpr long kElements = 1 << 20;  // 1M floats per vector

int run_child(const std::string& prefix, int id) {
  auto client =
      rt::RtClient::connect(prefix, id, 2 * kElements * 4, kElements * 4);
  if (!client.ok()) {
    std::fprintf(stderr, "[child %d] connect failed: %s\n", id,
                 client.status().to_string().c_str());
    return 1;
  }

  // SPMD: same program, different data per process.
  auto* in = reinterpret_cast<float*>(client->input().data());
  Rng rng(1000 + static_cast<std::uint64_t>(id));
  for (long i = 0; i < 2 * kElements; ++i) {
    in[i] = static_cast<float>(rng.uniform(-100.0, 100.0));
  }

  auto kernel = rt::builtin_registry().id_of("vecadd");
  if (!kernel.ok()) return 1;
  const std::int64_t params[4] = {kElements, 0, 0, 0};

  if (!client->req(*kernel, params).ok()) return 1;
  if (!client->snd().ok()) return 1;
  if (!client->str().ok()) return 1;
  if (!client->wait_done().ok()) return 1;
  if (!client->rcv().ok()) return 1;

  const auto* out = reinterpret_cast<const float*>(client->output().data());
  long errors = 0;
  for (long i = 0; i < kElements; ++i) {
    if (out[i] != in[i] + in[kElements + i]) ++errors;
  }
  if (!client->rls().ok()) return 1;

  std::printf("[child %d] %ld elements verified through the VGPU, %ld "
              "errors\n",
              id, kElements, errors);
  std::fflush(stdout);  // _exit() below skips stdio flushing
  return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int nprocs = 4;
  rt::ExecMode exec = rt::ExecMode::kSerial;
  int workers = 4;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--exec=", 0) == 0) {
      if (!rt::parse_exec_mode(arg.substr(7), &exec)) {
        std::fprintf(stderr, "unknown exec mode '%s' (try: serial sharded)\n",
                     arg.substr(7).c_str());
        return 2;
      }
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_path = arg.substr(12);
    } else {
      nprocs = std::atoi(arg.c_str());
    }
  }
  const std::string prefix = "/vgpu_live_" + std::to_string(::getpid());

  rt::RtServerConfig config;
  config.prefix = prefix;
  config.expected_clients = nprocs;
  config.workers = workers;
  config.exec = exec;
  config.obs.tracing = !trace_path.empty();
  rt::RtServer server(config, rt::builtin_registry());
  const Status st = server.start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("GVM daemon up at %s_req; forking %d SPMD processes...\n",
              prefix.c_str(), nprocs);

  std::vector<pid_t> children;
  for (int c = 0; c < nprocs; ++c) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) ::_exit(run_child(prefix, c));
    children.push_back(pid);
  }

  int failures = 0;
  for (const pid_t pid : children) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++failures;
  }
  server.stop();

  std::printf("GVM served %ld requests, ran %ld kernels in %ld flushes; "
              "%d/%d processes OK\n",
              server.stats().requests.load(), server.stats().jobs_run.load(),
              server.stats().flushes.load(), nprocs - failures, nprocs);
  if (exec == rt::ExecMode::kSharded) {
    const rt::RtExecCounters& e = server.exec_counters();
    std::printf("exec [%s, %d workers]: %ld launches, %ld shards, %ld "
                "steals, overlap %ld B\n",
                rt::exec_mode_name(exec), workers, e.launches,
                e.shards_executed, e.steals,
                server.stats().overlap_bytes.load());
  }
  if (!trace_path.empty()) {
    const auto kernel_name = [](int id) {
      const std::string* name = rt::builtin_registry().name_of(id);
      return name != nullptr ? *name : "kernel " + std::to_string(id);
    };
    const Status ts = server.obs().tracer().write_chrome_trace(
        trace_path, [&kernel_name](const obs::SpanRecord& span) {
          if (span.phase == obs::Phase::kKernel) return kernel_name(span.aux);
          return std::string();
        });
    if (!ts.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", ts.to_string().c_str());
      return 1;
    }
    std::printf("trace written to %s (open in ui.perfetto.dev)\n",
                trace_path.c_str());
    std::fputs(obs::format_residuals(
                   obs::compute_residuals(server.obs().tracer().collect(),
                                          kernel_name))
                   .c_str(),
               stdout);
  }
  return failures == 0 ? 0 : 1;
}
