// Records the paper's Figure 5 pipeline as a real execution trace.
//
//   $ ./examples/pipeline_trace [out.json]
//
// Runs four SPMD processes' vector-addition tasks through the GVM with the
// device timeline attached, prints a lane summary, and writes Chrome
// trace-event JSON. Open the file in chrome://tracing (or Perfetto) to see
// the staircase of per-client H2D transfers overlapping kernels and D2H
// transfers inside the single GVM context — the paper's Figure 5(a).
#include <cstdio>
#include <string>

#include "gpu/trace.hpp"
#include "gvm/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace vgpu;

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "pipeline_trace.json";
  constexpr int kProcs = 4;

  const workloads::Workload task = workloads::vector_add(10'000'000);
  gpu::Timeline timeline;
  const gvm::RunResult r =
      gvm::run_virtualized(gpu::tesla_c2070(), gvm::GvmConfig{}, task.plan,
                           task.rounds, kProcs, &timeline);

  std::printf("turnaround: %.1f ms across %d processes, %zu trace events\n",
              to_ms(r.turnaround), kProcs, timeline.size());
  for (const char* cat : {"copy", "kernel", "fabric", "staging", "context"}) {
    std::printf("  %-8s busy %8.2f ms, peak concurrency %d\n", cat,
                to_ms(timeline.busy_time(cat)),
                timeline.max_concurrency(cat));
  }

  const Status st = timeline.write_chrome_trace(out);
  if (!st.ok()) {
    std::fprintf(stderr, "trace write failed: %s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("wrote %s — open in chrome://tracing\n", out.c_str());
  return 0;
}
