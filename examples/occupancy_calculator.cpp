// Occupancy calculator CLI — the planning tool behind the paper's Table IV
// "grid size" column: does a kernel fill the GPU by itself (no room for
// concurrent kernels from other processes), or only a slice of it (the
// virtualization win case)?
//
//   $ ./examples/occupancy_calculator <grid> <threads> [regs] [shmem_bytes]
//   $ ./examples/occupancy_calculator                  # paper's kernels
#include <cstdio>
#include <cstdlib>

#include "gpu/occupancy.hpp"

using namespace vgpu;

namespace {

void report(const gpu::DeviceSpec& spec, const char* name,
            const gpu::KernelGeometry& g) {
  const gpu::Occupancy occ = gpu::compute_occupancy(spec, g);
  std::printf("%-16s grid %-6ld threads %-5d -> %d blocks/SM (%s-limited), "
              "occupancy %4.0f%%, device capacity %ld blocks: %s\n",
              name, g.grid_blocks, g.threads_per_block, occ.blocks_per_sm,
              gpu::limiter_name(occ.limiter), occ.occupancy * 100.0,
              occ.device_blocks(spec),
              occ.fills_device(spec, g.grid_blocks)
                  ? "FILLS the device"
                  : "partial (concurrent kernels fit)");
}

}  // namespace

int main(int argc, char** argv) {
  const gpu::DeviceSpec spec = gpu::tesla_c2070();
  std::printf("device: %s (%d SMs, %d warps/SM, %ld regs/SM, %s shmem/SM)\n\n",
              spec.name.c_str(), spec.sm_count, spec.max_warps_per_sm,
              spec.regs_per_sm, format_bytes(spec.shmem_per_sm).c_str());

  if (argc >= 3) {
    gpu::KernelGeometry g;
    g.grid_blocks = std::atol(argv[1]);
    g.threads_per_block = std::atoi(argv[2]);
    g.regs_per_thread = argc > 3 ? std::atoi(argv[3]) : 20;
    g.shmem_per_block = argc > 4 ? std::atol(argv[4]) : 0;
    report(spec, "your kernel", g);
    return 0;
  }

  std::printf("usage: %s <grid> <threads> [regs] [shmem]; showing the "
              "paper's kernels:\n\n",
              argv[0]);
  report(spec, "VectorAdd", {48829, 1024, 10, 0});
  report(spec, "EP (class B)", {4, 128, 28, 0});
  report(spec, "MM 2048", {4096, 1024, 24, 8192});
  report(spec, "MG (class S)", {64, 128, 32, 4096});
  report(spec, "BlackScholes", {480, 128, 20, 0});
  report(spec, "CG (class S)", {8, 128, 28, 2048});
  report(spec, "Electrostatics", {288, 128, 24, 0});
  return 0;
}
