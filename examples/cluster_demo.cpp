// Cluster-scale demo: the paper's Figure 2 architecture end to end.
//
//   $ ./examples/cluster_demo [--nodes=4] [--cores=8] [--m=24]
//
// `nodes` compute nodes (8 cores + one C2070 each) run NPB EP partitioned
// across all ranks; each node's GPU is shared through a node-local GVM and
// the tallies are allreduced over the simulated interconnect. The result
// is checked against the sequential EP computation — the whole stack (GPU
// model, virtualization layer, MPI-like collectives) must agree exactly.
#include <cstdio>

#include "cluster/experiment.hpp"
#include "common/flags.hpp"

using namespace vgpu;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  cluster::ClusterConfig config;
  config.nodes = static_cast<int>(flags.get_long("nodes", 4));
  config.cores_per_node = static_cast<int>(flags.get_long("cores", 8));
  const int m = static_cast<int>(flags.get_long("m", 24));

  std::printf("cluster: %d nodes x %d cores, 1 %s per node, EP 2^%d "
              "pairs over %d ranks\n",
              config.nodes, config.cores_per_node, config.gpu.name.c_str(),
              m, config.ranks());

  config.virtualized = false;
  const cluster::ClusterResult native = run_cluster_ep(config, m);
  std::printf("native sharing : %8.1f ms, %ld context switches\n",
              to_ms(native.turnaround), native.ctx_switches);

  config.virtualized = true;
  const cluster::ClusterResult virt = run_cluster_ep(config, m);
  std::printf("GVM per node   : %8.1f ms, %ld context switches  "
              "(%.2fx speedup)\n",
              to_ms(virt.turnaround), virt.ctx_switches,
              static_cast<double>(native.turnaround) /
                  static_cast<double>(virt.turnaround));
  std::printf("interconnect   : %s in %ld messages (allreduce)\n",
              format_bytes(virt.bytes_on_wire).c_str(),
              virt.messages_on_wire);

  const kernels::EpResult expect = kernels::ep_sequential(m);
  const bool exact = virt.reduced.q == expect.q &&
                     virt.reduced.pairs_accepted == expect.pairs_accepted;
  std::printf("verification   : allreduced tallies %s sequential EP "
              "(accepted pairs: %ld)\n",
              exact ? "MATCH" : "DIFFER FROM", virt.reduced.pairs_accepted);
  return exact ? 0 : 1;
}
