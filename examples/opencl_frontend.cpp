// OpenCL-flavored frontend demo (paper Section III: CUDA and OpenCL expose
// the same SPMD hierarchy — grid/NDRange, block/work-group, thread/item).
//
//   $ ./examples/opencl_frontend
//
// Prices a batch of European options through the vcl CommandQueue API on
// the simulated C2070, then shows two queues overlapping kernels inside
// one context — the device capability the GVM exploits across processes.
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "kernels/blackscholes.hpp"
#include "vcl/vcl.hpp"

using namespace vgpu;

int main() {
  des::Simulator sim;
  gpu::Device device(sim, gpu::tesla_c2070());
  vcuda::Runtime runtime(sim, device);

  sim.spawn([](des::Simulator& s, vcuda::Runtime& rt) -> des::Task<> {
    auto ctx = co_await vcl::VclContext::create(rt);

    const long n = 100'000;
    auto in = ctx->create_buffer(3 * n * 4, /*backed=*/true);
    auto out = ctx->create_buffer(2 * n * 4, /*backed=*/true);
    VGPU_ASSERT(in.ok() && out.ok());

    std::vector<float> host(3 * static_cast<std::size_t>(n));
    Rng rng(42);
    for (long i = 0; i < n; ++i) {
      host[static_cast<std::size_t>(i)] = static_cast<float>(rng.uniform(5, 30));
      host[static_cast<std::size_t>(n + i)] =
          static_cast<float>(rng.uniform(1, 100));
      host[static_cast<std::size_t>(2 * n + i)] =
          static_cast<float>(rng.uniform(0.25, 10));
    }

    vcl::CommandQueue queue = ctx->create_command_queue();
    queue.enqueue_write_buffer(*in, host.data(), 3 * n * 4);
    vcl::Buffer& in_ref = *in;
    vcl::Buffer& out_ref = *out;
    const SimTime t0 = s.now();
    queue.enqueue_ndrange_kernel(
        "black_scholes", vcl::NDRange{n, 128},
        gpu::KernelCost{55.0, 28.0, 0.5}, [&in_ref, &out_ref, n] {
          const float* p = in_ref.as<float>();
          float* q = out_ref.as<float>();
          const auto un = static_cast<std::size_t>(n);
          kernels::OptionBatch batch{{p, un}, {p + n, un}, {p + 2 * n, un},
                                     0.02f, 0.30f};
          kernels::black_scholes(batch, {q, un}, {q + n, un});
        });
    std::vector<float> prices(2 * static_cast<std::size_t>(n));
    queue.enqueue_read_buffer(prices.data(), *out, 2 * n * 4);
    co_await queue.finish();

    std::printf("priced %ld options in %s (NDRange global=%ld local=128)\n",
                n, format_time(s.now() - t0).c_str(), n);
    std::printf("first option: call %.4f, put %.4f (S=%.2f X=%.2f T=%.2f)\n",
                prices[0], prices[static_cast<std::size_t>(n)], host[0],
                host[static_cast<std::size_t>(n)],
                host[static_cast<std::size_t>(2 * n)]);

    // Two command queues in one context overlap, like CUDA streams.
    vcl::CommandQueue q1 = ctx->create_command_queue();
    vcl::CommandQueue q2 = ctx->create_command_queue();
    const SimTime t1 = s.now();
    q1.enqueue_ndrange_kernel("busy_a", vcl::NDRange{512, 128},
                              gpu::KernelCost{1e6, 0.0, 0.3});
    q2.enqueue_ndrange_kernel("busy_b", vcl::NDRange{512, 128},
                              gpu::KernelCost{1e6, 0.0, 0.3});
    co_await q1.finish();
    co_await q2.finish();
    std::printf("two queues, two kernels, wall time %s (serial would be "
                "~2x)\n",
                format_time(s.now() - t1).c_str());
  }(sim, runtime));
  sim.run();

  std::printf("peak concurrent kernels on device: %d\n",
              device.stats().max_open_kernels);
  return 0;
}
