// Reproduces paper Figure 16: speedup achieved by GPU virtualization for
// each application benchmark when launched with 8 processes (all available
// cores). The paper reports speedups between 1.4 and 4.1, with the
// partial-GPU compute-intensive kernels (MG, CG) gaining most and the
// device-filling / I/O-heavy ones (BlackScholes, Electrostatics) least.
#include <iostream>

#include "support.hpp"

using namespace vgpu;

int main() {
  constexpr int kProcs = 8;
  print_banner(std::cout,
               "Figure 16: speedups with GPU virtualization (8 processes)");
  TablePrinter table({"benchmark", "no-virt (s)", "virt (s)", "speedup"});
  double lo = 1e30, hi = 0.0;
  for (const workloads::Workload& w : workloads::application_benchmarks()) {
    const bench::Comparison c = bench::compare(w, kProcs);
    const double s = c.speedup();
    lo = std::min(lo, s);
    hi = std::max(hi, s);
    table.add_row({w.name, TablePrinter::num(to_seconds(c.baseline.turnaround)),
                   TablePrinter::num(to_seconds(c.virtualized.turnaround)),
                   TablePrinter::num(s, 2)});
  }
  bench::emit(table, "fig16_speedups");
  std::cout << "speedup range: " << TablePrinter::num(lo, 2) << " - "
            << TablePrinter::num(hi, 2) << " (paper: 1.4 - 4.1)\n";
  return 0;
}
