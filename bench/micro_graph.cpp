// Graph capture/replay microbenchmarks (docs/graphs.md): the per-launch
// verb loop vs a single kLaunchGraph per K-iteration chain, on the CG and
// MG iterative workloads. Each row reports
//   msgs_per_iter -- control-plane messages per solver iteration, measured
//                    as the ctrl_* stat delta across the timed loop, and
//   parity_ok     -- 1.0 when the final output is bitwise identical to the
//                    library oracle (cg_solve / mg_vcycle).
// The CI bench-graph job gates the per-launch : graph ratio at >= 5x and
// parity_ok == 1 on every row.
#include <benchmark/benchmark.h>

#include "support.hpp"

#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "kernels/cg.hpp"
#include "kernels/mg.hpp"
#include "rt/client.hpp"
#include "rt/registry.hpp"
#include "rt/server.hpp"

using namespace vgpu;

namespace {

std::string unique_prefix(const char* tag) {
  return std::string("/vgpu_mgr_") + tag + "_" + std::to_string(::getpid());
}

rt::RtServerConfig make_config(const std::string& prefix) {
  rt::RtServerConfig config;
  config.prefix = prefix;
  // Sequential single client: the co-flush barrier must be width 1 or
  // grants never flush.
  config.expected_clients = 1;
  config.workers = 2;
  return config;
}

long ctrl_messages(const rt::RtServer& server) {
  const rt::RtServerStats& s = server.stats();
  return s.ctrl_snd.load() + s.ctrl_str.load() + s.ctrl_stp.load() +
         s.ctrl_rcv.load() + s.ctrl_graph.load();
}

int kernel_id(const char* name) {
  auto id = rt::builtin_registry().id_of(name);
  VGPU_ASSERT(id.ok());
  return *id;
}

void report_graph_stats(benchmark::State& state, const rt::RtServer& server,
                        long msgs, long iters, bool parity) {
  state.counters["msgs_per_iter"] =
      static_cast<double>(msgs) / static_cast<double>(iters);
  state.counters["parity_ok"] = parity ? 1.0 : 0.0;
  state.counters["graph_replays"] =
      static_cast<double>(server.stats().graph_replays.load());
  state.counters["graph_messages_saved"] =
      static_cast<double>(server.stats().graph_messages_saved.load());
  bench::report_registry(state, server.obs().metrics());
}

// Arg 0: 0 = per-launch SND/STR/STP/RCV rounds, 1 = one graph replay per
// K-iteration chain. CG step kernel, n = 256, 6 nonzeros/row, K = 8.
void BM_CgIterations(benchmark::State& state) {
  const bool use_graph = state.range(0) != 0;
  const int n = 256;
  const int nz = 6;
  const int iters = 8;
  const std::int64_t vec = static_cast<std::int64_t>(n) * 8;
  const std::string prefix = unique_prefix(use_graph ? "cgg" : "cgl");
  rt::RtServer server(make_config(prefix), rt::builtin_registry());
  if (!server.start().ok()) {
    state.SkipWithError("server start failed");
    return;
  }
  auto client = rt::RtClient::connect(prefix, 0, 4 * vec, 3 * vec);
  if (!client.ok()) {
    state.SkipWithError("client connect failed");
    return;
  }
  const int cg_step = kernel_id("cg_step");
  const std::int64_t params[4] = {n, nz, 0, 0};
  (void)client->req(cg_step, params);

  const std::vector<double> b(static_cast<std::size_t>(n), 1.0);
  const auto seed_input = [&] {
    auto* d = reinterpret_cast<double*>(client->input().data());
    for (int i = 0; i < n; ++i) {
      d[i] = 1.0;          // b
      d[n + i] = 0.0;      // x = 0
      d[2 * n + i] = 1.0;  // r = b
      d[3 * n + i] = 1.0;  // p = b
    }
  };

  if (use_graph) {
    // Record the K-iteration chain once: kernel + three feedback copies
    // (x' r' p' -> x r p) per iteration, fired as ONE control message.
    (void)client->begin_capture();
    std::vector<int> prev;
    for (int it = 0; it < iters; ++it) {
      auto k = client->capture_kernel(
          cg_step, params, 0, 4 * vec, 4 * vec, 3 * vec,
          std::span<const int>(prev.data(), prev.size()));
      VGPU_ASSERT(k.ok());
      prev.clear();
      if (it + 1 < iters) {
        const int dep[1] = {*k};
        for (int slot = 0; slot < 3; ++slot) {
          auto c = client->capture_copy((4 + slot) * vec, (1 + slot) * vec,
                                        vec, dep);
          VGPU_ASSERT(c.ok());
          prev.push_back(*c);
        }
      }
    }
    VGPU_ASSERT(client->end_capture().ok());
    VGPU_ASSERT(client->upload_graph(1).ok());
  }

  const long msgs_before = ctrl_messages(server);
  for (auto _ : state) {
    seed_input();
    bool ok = true;
    if (use_graph) {
      ok = client->launch_graph(1).ok();
    } else {
      for (int it = 0; it < iters && ok; ++it) {
        ok = client->snd().ok() && client->str().ok() &&
             client->wait_done().ok() && client->rcv().ok();
        std::memcpy(client->input().data() + vec, client->output().data(),
                    static_cast<std::size_t>(3 * vec));
      }
    }
    benchmark::DoNotOptimize(ok);
  }
  const long msgs = ctrl_messages(server) - msgs_before;

  // Bitwise parity: the x' column equals cg_solve after the same count.
  const kernels::CsrMatrix a = kernels::cg_make_matrix(n, nz, 10.0);
  std::vector<double> x(static_cast<std::size_t>(n));
  kernels::cg_solve(a, b, x, iters);
  const bool parity =
      std::memcmp(client->output().data(), x.data(),
                  static_cast<std::size_t>(vec)) == 0;

  (void)client->rls();
  server.stop();
  state.SetLabel(use_graph ? "graph" : "per-launch");
  state.SetItemsProcessed(state.iterations() * iters);
  report_graph_stats(state, server, msgs, state.iterations() * iters,
                     parity);
}
VGPU_MICRO_BENCHMARK(BM_CgIterations)->Arg(0)->Arg(1)->ArgNames({"graph"});

// Arg 0 as above. MG V-cycle step kernel, n = 16^3, K = 4.
void BM_MgIterations(benchmark::State& state) {
  const bool use_graph = state.range(0) != 0;
  const int n = 16;
  const int iters = 4;
  const std::int64_t cells = static_cast<std::int64_t>(n) * n * n * 8;
  const std::string prefix = unique_prefix(use_graph ? "mgg" : "mgl");
  rt::RtServer server(make_config(prefix), rt::builtin_registry());
  if (!server.start().ok()) {
    state.SkipWithError("server start failed");
    return;
  }
  auto client = rt::RtClient::connect(prefix, 0, 2 * cells, cells);
  if (!client.ok()) {
    state.SkipWithError("client connect failed");
    return;
  }
  const int mg_step = kernel_id("mg_step");
  const std::int64_t params[4] = {n, 0, 0, 0};
  (void)client->req(mg_step, params);

  const kernels::Grid3 rhs = kernels::mg_make_rhs(n);
  const auto seed_input = [&] {
    std::memset(client->input().data(), 0, static_cast<std::size_t>(cells));
    std::memcpy(client->input().data() + cells, rhs.data().data(),
                static_cast<std::size_t>(cells));
  };

  if (use_graph) {
    // K kernel nodes chained through u' -> u feedback copies.
    (void)client->begin_capture();
    int prev_copy = -1;
    for (int it = 0; it < iters; ++it) {
      auto k = client->capture_kernel(
          mg_step, params, 0, 2 * cells, 2 * cells, cells,
          prev_copy >= 0 ? std::span<const int>(&prev_copy, 1)
                         : std::span<const int>());
      VGPU_ASSERT(k.ok());
      if (it + 1 < iters) {
        const int dep[1] = {*k};
        auto c = client->capture_copy(2 * cells, 0, cells, dep);
        VGPU_ASSERT(c.ok());
        prev_copy = *c;
      }
    }
    VGPU_ASSERT(client->end_capture().ok());
    VGPU_ASSERT(client->upload_graph(1).ok());
  }

  const long msgs_before = ctrl_messages(server);
  for (auto _ : state) {
    seed_input();
    bool ok = true;
    if (use_graph) {
      ok = client->launch_graph(1).ok();
    } else {
      for (int it = 0; it < iters && ok; ++it) {
        ok = client->snd().ok() && client->str().ok() &&
             client->wait_done().ok() && client->rcv().ok();
        std::memcpy(client->input().data(), client->output().data(),
                    static_cast<std::size_t>(cells));
      }
    }
    benchmark::DoNotOptimize(ok);
  }
  const long msgs = ctrl_messages(server) - msgs_before;

  // Bitwise parity against the library V-cycle iterated the same count.
  kernels::Grid3 u(n);
  u.fill(0.0);
  for (int it = 0; it < iters; ++it) kernels::mg_vcycle(u, rhs);
  const bool parity =
      std::memcmp(client->output().data(), u.data().data(),
                  static_cast<std::size_t>(cells)) == 0;

  (void)client->rls();
  server.stop();
  state.SetLabel(use_graph ? "graph" : "per-launch");
  state.SetItemsProcessed(state.iterations() * iters);
  report_graph_stats(state, server, msgs, state.iterations() * iters,
                     parity);
}
VGPU_MICRO_BENCHMARK(BM_MgIterations)->Arg(0)->Arg(1)->ArgNames({"graph"});

}  // namespace

VGPU_MICRO_MAIN()
