// Extension study (beyond the paper): the Figure 2 architecture at cluster
// scale. NPB EP class B partitioned across all ranks; each node's GPU is
// shared by its 8 cores either natively or through a node-local GVM, then
// the tallies are allreduced over the simulated interconnect.
#include <iostream>

#include "cluster/experiment.hpp"
#include "support.hpp"

using namespace vgpu;

int main() {
  print_banner(std::cout,
               "Extension: cluster-scale SPMD (8 cores/node, 1 GPU/node, "
               "EP class B)");
  TablePrinter table({"nodes", "ranks", "native (s)", "GVM/node (s)",
                      "speedup", "wire traffic"});
  const int m = 30;
  for (int nodes : {1, 2, 4, 8}) {
    cluster::ClusterConfig config;
    config.nodes = nodes;
    config.cores_per_node = 8;
    config.virtualized = false;
    const cluster::ClusterResult native = run_cluster_ep(config, m);
    config.virtualized = true;
    const cluster::ClusterResult virt = run_cluster_ep(config, m);
    table.add_row({std::to_string(nodes), std::to_string(config.ranks()),
                   TablePrinter::num(to_seconds(native.turnaround)),
                   TablePrinter::num(to_seconds(virt.turnaround)),
                   TablePrinter::num(static_cast<double>(native.turnaround) /
                                         static_cast<double>(virt.turnaround),
                                     2),
                   format_bytes(virt.bytes_on_wire)});
  }
  bench::emit(table, "extension_cluster");
  std::cout << "(allreduced tallies verified against sequential EP in "
               "tests/cluster_test.cpp)\n";
  return 0;
}
