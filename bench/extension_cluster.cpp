// Extension study (beyond the paper): the Figure 2 architecture at cluster
// scale, two ways.
//
// Table 1 (unchanged control): NPB EP class B partitioned across all
// ranks; each node's GPU is shared by its 8 cores either natively or
// through a node-local GVM, then the tallies are allreduced over the
// simulated interconnect.
//
// Table 2 (federation ablation): a skewed client population homed on node
// 0, served by federated DevicePoolGvm instances that exchange periodic
// load digests over cluster::Communicator and migrate whole clients across
// the fabric. Sweeps node count x exchange on/off — the Li et al.
// (arXiv:1511.07658) node-scaling shape only appears with exchange on,
// because without it the extra nodes sit idle.
#include <iostream>

#include "cluster/experiment.hpp"
#include "cluster/federation.hpp"
#include "support.hpp"

using namespace vgpu;

namespace {

/// Every client homes on node 0: only digest-driven migration can put the
/// other nodes to work. matmul(256)'s grid fills the SMs, so piled-up
/// clients genuinely queue (small-grid plans would just run concurrently).
std::vector<cluster::FederatedClientSpec> skewed_population(
    const workloads::Workload& w, int count) {
  std::vector<cluster::FederatedClientSpec> clients;
  for (int i = 0; i < count; ++i) {
    cluster::FederatedClientSpec spec;
    spec.work.plan = w.plan;
    spec.work.rounds = 2;
    spec.work.sessions = 5;
    spec.work.think = microseconds(100.0);
    spec.home_node = 0;
    clients.push_back(std::move(spec));
  }
  return clients;
}

cluster::FederationResult run_nodes(
    int nodes, bool exchange,
    const std::vector<cluster::FederatedClientSpec>& clients) {
  cluster::FederationConfig config;
  config.nodes = nodes;
  config.gpu = bench::paper_device();
  config.exchange = exchange;
  config.digest_interval = microseconds(100.0);
  config.migrate_min_gap = 1;
  return run_federated(config, clients);
}

}  // namespace

int main() {
  print_banner(std::cout,
               "Extension: cluster-scale SPMD (8 cores/node, 1 GPU/node, "
               "EP class B)");
  TablePrinter table({"nodes", "ranks", "native (s)", "GVM/node (s)",
                      "speedup", "wire traffic"});
  const int m = 30;
  for (int nodes : {1, 2, 4, 8}) {
    cluster::ClusterConfig config;
    config.nodes = nodes;
    config.cores_per_node = 8;
    config.virtualized = false;
    const cluster::ClusterResult native = run_cluster_ep(config, m);
    config.virtualized = true;
    const cluster::ClusterResult virt = run_cluster_ep(config, m);
    table.add_row({std::to_string(nodes), std::to_string(config.ranks()),
                   TablePrinter::num(to_seconds(native.turnaround)),
                   TablePrinter::num(to_seconds(virt.turnaround)),
                   TablePrinter::num(static_cast<double>(native.turnaround) /
                                         static_cast<double>(virt.turnaround),
                                     2),
                   format_bytes(virt.bytes_on_wire)});
  }
  bench::emit(table, "extension_cluster");
  std::cout << "(allreduced tallies verified against sequential EP in "
               "tests/cluster_test.cpp)\n\n";

  print_banner(std::cout,
               "Extension: federated GVM pools (12 clients homed on node 0, "
               "digest exchange x node count)");
  TablePrinter fed({"nodes", "exchange", "makespan ms", "p95 ms", "digests",
                    "moves", "wire traffic"});
  const workloads::Workload w = workloads::matmul(256);
  const auto clients = skewed_population(w, 12);
  for (int nodes : {1, 2, 4}) {
    for (bool exchange : {false, true}) {
      if (nodes == 1 && exchange) continue;  // nothing to exchange with
      const cluster::FederationResult r = run_nodes(nodes, exchange, clients);
      fed.add_row({std::to_string(nodes), exchange ? "on" : "off",
                   TablePrinter::num(to_seconds(r.makespan) * 1e3),
                   TablePrinter::num(r.p95_seconds() * 1e3),
                   std::to_string(r.digest_rounds),
                   std::to_string(r.cross_node_migrations),
                   format_bytes(r.bytes_on_wire)});
    }
  }
  bench::emit(fed, "extension_cluster_federation");
  std::cout << "(exchange off leaves the extra nodes idle: the node-scaling "
               "trend is the federation's doing)\n";
  return 0;
}
