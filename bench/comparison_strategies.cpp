// Quantitative comparison of GPU-sharing strategies (paper Section II made
// measurable): native context sharing, the paper's GVM, remote GPU access
// over 1/10 GbE (rCUDA-style), VM passthrough (GViM/vCUDA/gVirtuS-style),
// and kernel merging (Guevara et al.) — all on the same simulated C2070,
// 8 SPMD processes.
#include <iostream>

#include "baselines/baselines.hpp"
#include "support.hpp"

using namespace vgpu;

int main() {
  constexpr int kProcs = 8;
  print_banner(std::cout,
               "Sharing-strategy comparison (8 processes, turnaround in s)");
  TablePrinter table({"workload", "native", "GVM (paper)", "remote 1GbE",
                      "remote 10GbE", "VM passthrough", "kernel merge"});

  const workloads::Workload cases[] = {
      workloads::vector_add(),       // I/O-intensive
      workloads::npb_ep(30),         // compute-intensive, tiny grid
      workloads::matmul(),           // device-filling intermediate
  };
  for (const workloads::Workload& w : cases) {
    const gpu::DeviceSpec spec = bench::paper_device();
    const double native = to_seconds(
        gvm::run_baseline(spec, w.plan, w.rounds, kProcs).turnaround);
    const double virt = to_seconds(
        gvm::run_virtualized(spec, bench::paper_gvm_config(), w.plan,
                             w.rounds, kProcs)
            .turnaround);
    baselines::RemoteGpuConfig gbe1;
    baselines::RemoteGpuConfig gbe10;
    gbe10.network_bw = 1.25e9;
    const double remote1 = to_seconds(
        baselines::run_remote_gpu(spec, gbe1, w.plan, w.rounds, kProcs)
            .turnaround);
    const double remote10 = to_seconds(
        baselines::run_remote_gpu(spec, gbe10, w.plan, w.rounds, kProcs)
            .turnaround);
    const double vm = to_seconds(
        baselines::run_vm_passthrough(spec, baselines::VmConfig{}, w.plan,
                                      w.rounds, kProcs)
            .turnaround);
    const double merged = to_seconds(
        baselines::run_kernel_merge(spec, w.plan, w.rounds, kProcs)
            .turnaround);
    table.add_row({w.name, TablePrinter::num(native),
                   TablePrinter::num(virt), TablePrinter::num(remote1),
                   TablePrinter::num(remote10), TablePrinter::num(vm),
                   TablePrinter::num(merged)});
  }
  bench::emit(table, "comparison_strategies");
  return 0;
}
