// Microbenchmarks of the live GVM runtime: protocol round-trip latency and
// end-to-end task throughput, swept across the control-plane transport
// (message queue vs shm ring) and the data plane (staged vs zero-copy).
#include <benchmark/benchmark.h>

#include "support.hpp"

#include <unistd.h>

#include "rt/client.hpp"
#include "rt/registry.hpp"
#include "rt/server.hpp"

using namespace vgpu;

namespace {

std::string unique_prefix(const char* tag) {
  return std::string("/vgpu_mrt_") + tag + "_" + std::to_string(::getpid());
}

rt::RtServerConfig make_config(const std::string& prefix, int clients,
                               int workers, std::int64_t transport,
                               std::int64_t data_plane) {
  rt::RtServerConfig config;
  config.prefix = prefix;
  config.expected_clients = clients;
  config.workers = workers;
  config.transport = transport != 0 ? ipc::TransportKind::kShmRing
                                    : ipc::TransportKind::kMessageQueue;
  config.data_plane = data_plane != 0 ? rt::DataPlane::kZeroCopy
                                      : rt::DataPlane::kStaged;
  return config;
}

rt::RtClientOptions client_options(std::int64_t transport) {
  rt::RtClientOptions options;
  options.transport = transport != 0 ? ipc::TransportKind::kShmRing
                                     : ipc::TransportKind::kMessageQueue;
  return options;
}

void report_server_stats(benchmark::State& state, const rt::RtServer& server) {
  const rt::RtServerStats& stats = server.stats();
  state.counters["bytes_copied"] = static_cast<double>(stats.bytes_copied);
  state.counters["syscalls_saved"] =
      static_cast<double>(stats.syscalls_saved);
  state.counters["ring_requests"] = static_cast<double>(stats.ring_requests);
  // Full registry snapshot (rt.*/sched.*/admission.* after stop()) into
  // the JSON the bench jobs upload.
  bench::report_registry(state, server.obs().metrics());
}

// Arg 0: transport (0 = mqueue, 1 = shm ring).
void BM_ProtocolRoundTrip(benchmark::State& state) {
  const std::int64_t transport = state.range(0);
  const std::string prefix = unique_prefix("rtt");
  rt::RtServer server(make_config(prefix, 1, 1, transport, 0),
                      rt::builtin_registry());
  if (!server.start().ok()) {
    state.SkipWithError("server start failed");
    return;
  }
  auto client =
      rt::RtClient::connect(prefix, 0, 64, 64, client_options(transport));
  if (!client.ok()) {
    state.SkipWithError("client connect failed");
    return;
  }
  auto kid = rt::builtin_registry().id_of("vecadd");
  const std::int64_t params[4] = {8, 0, 0, 0};
  (void)client->req(*kid, params);
  for (auto _ : state) {
    // SND is the lightest request with a full round trip.
    benchmark::DoNotOptimize(client->snd().ok());
  }
  (void)client->rls();
  server.stop();
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(ipc::transport_name(client->transport()));
  report_server_stats(state, server);
}
VGPU_MICRO_BENCHMARK(BM_ProtocolRoundTrip)->Arg(0)->Arg(1)->ArgNames({"shm"});

// Arg 0: vecadd n, Arg 1: transport, Arg 2: data plane (0 = staged,
// 1 = zero-copy). The acceptance check for the zero-copy plane is the
// bytes_copied counter staying at 0 on the job path.
void BM_FullTaskCycle(benchmark::State& state) {
  const long n = state.range(0);
  const std::int64_t transport = state.range(1);
  const std::int64_t data_plane = state.range(2);
  const std::string prefix = unique_prefix("task");
  rt::RtServer server(make_config(prefix, 1, 2, transport, data_plane),
                      rt::builtin_registry());
  if (!server.start().ok()) {
    state.SkipWithError("server start failed");
    return;
  }
  auto client = rt::RtClient::connect(prefix, 0, 2 * n * 4, n * 4,
                                      client_options(transport));
  if (!client.ok()) {
    state.SkipWithError("client connect failed");
    return;
  }
  auto kid = rt::builtin_registry().id_of("vecadd");
  const std::int64_t params[4] = {n, 0, 0, 0};
  (void)client->req(*kid, params);
  auto* in = reinterpret_cast<float*>(client->input().data());
  for (long i = 0; i < 2 * n; ++i) in[i] = static_cast<float>(i);
  for (auto _ : state) {
    bool ok = client->snd().ok();
    ok = ok && client->str().ok();
    ok = ok && client->wait_done(std::chrono::microseconds(50)).ok();
    ok = ok && client->rcv().ok();
    benchmark::DoNotOptimize(ok);
  }
  (void)client->rls();
  server.stop();
  state.SetBytesProcessed(state.iterations() * 3 * n * 4);
  state.SetLabel(std::string(ipc::transport_name(client->transport())) +
                 "/" +
                 rt::data_plane_name(server.config().data_plane));
  report_server_stats(state, server);
}
VGPU_MICRO_BENCHMARK(BM_FullTaskCycle)
    ->ArgsProduct({{1024, 262144}, {0, 1}, {0, 1}})
    ->ArgNames({"n", "shm", "zc"});

// Arg 0: span tracing on/off. The observability overhead gate: the CI
// bench-obs job compares the two medians and fails the build if tracing
// off is more than noise away from BM_FullTaskCycle, or tracing on costs
// more than the budgeted ring writes (shm ring + staged plane, n = 1024,
// like the BENCH_rt baseline row).
void BM_FullTaskCycleObs(benchmark::State& state) {
  const std::int64_t tracing = state.range(0);
  const long n = 1024;
  const std::string prefix = unique_prefix("obs");
  rt::RtServerConfig config = make_config(prefix, 1, 2, 1, 0);
  config.obs.tracing = tracing != 0;
  rt::RtServer server(config, rt::builtin_registry());
  if (!server.start().ok()) {
    state.SkipWithError("server start failed");
    return;
  }
  auto client =
      rt::RtClient::connect(prefix, 0, 2 * n * 4, n * 4, client_options(1));
  if (!client.ok()) {
    state.SkipWithError("client connect failed");
    return;
  }
  auto kid = rt::builtin_registry().id_of("vecadd");
  const std::int64_t params[4] = {n, 0, 0, 0};
  (void)client->req(*kid, params);
  auto* in = reinterpret_cast<float*>(client->input().data());
  for (long i = 0; i < 2 * n; ++i) in[i] = static_cast<float>(i);
  for (auto _ : state) {
    bool ok = client->snd().ok();
    ok = ok && client->str().ok();
    ok = ok && client->wait_done(std::chrono::microseconds(50)).ok();
    ok = ok && client->rcv().ok();
    benchmark::DoNotOptimize(ok);
  }
  (void)client->rls();
  server.stop();
  state.SetLabel(tracing != 0 ? "tracing" : "no-tracing");
  state.counters["spans"] = static_cast<double>(
      tracing != 0 ? server.obs().tracer().collect().size() : 0);
  state.counters["spans_dropped"] =
      static_cast<double>(server.obs().tracer().dropped());
  report_server_stats(state, server);
}
VGPU_MICRO_BENCHMARK(BM_FullTaskCycleObs)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"trace"});

}  // namespace

VGPU_MICRO_MAIN()
