// Microbenchmarks of the live GVM runtime: protocol round-trip latency and
// end-to-end task throughput through real POSIX message queues, shared
// memory and the worker pool.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include "rt/client.hpp"
#include "rt/registry.hpp"
#include "rt/server.hpp"

using namespace vgpu;

namespace {

std::string unique_prefix(const char* tag) {
  return std::string("/vgpu_mrt_") + tag + "_" + std::to_string(::getpid());
}

void BM_ProtocolRoundTrip(benchmark::State& state) {
  const std::string prefix = unique_prefix("rtt");
  rt::RtServer server({prefix, 1, 1}, rt::builtin_registry());
  if (!server.start().ok()) {
    state.SkipWithError("server start failed");
    return;
  }
  auto client = rt::RtClient::connect(prefix, 0, 64, 64);
  if (!client.ok()) {
    state.SkipWithError("client connect failed");
    return;
  }
  auto kid = rt::builtin_registry().id_of("vecadd");
  const std::int64_t params[4] = {8, 0, 0, 0};
  (void)client->req(*kid, params);
  for (auto _ : state) {
    // SND is the lightest request with a full round trip.
    benchmark::DoNotOptimize(client->snd().ok());
  }
  (void)client->rls();
  server.stop();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProtocolRoundTrip);

void BM_FullTaskCycle(benchmark::State& state) {
  const long n = state.range(0);
  const std::string prefix = unique_prefix("task");
  rt::RtServer server({prefix, 1, 2}, rt::builtin_registry());
  if (!server.start().ok()) {
    state.SkipWithError("server start failed");
    return;
  }
  auto client = rt::RtClient::connect(prefix, 0, 2 * n * 4, n * 4);
  if (!client.ok()) {
    state.SkipWithError("client connect failed");
    return;
  }
  auto kid = rt::builtin_registry().id_of("vecadd");
  const std::int64_t params[4] = {n, 0, 0, 0};
  (void)client->req(*kid, params);
  auto* in = reinterpret_cast<float*>(client->input().data());
  for (long i = 0; i < 2 * n; ++i) in[i] = static_cast<float>(i);
  for (auto _ : state) {
    bool ok = client->snd().ok();
    ok = ok && client->str().ok();
    ok = ok && client->wait_done(std::chrono::microseconds(50)).ok();
    ok = ok && client->rcv().ok();
    benchmark::DoNotOptimize(ok);
  }
  (void)client->rls();
  server.stop();
  state.SetBytesProcessed(state.iterations() * 3 * n * 4);
}
BENCHMARK(BM_FullTaskCycle)->Arg(1024)->Arg(262144);

}  // namespace

BENCHMARK_MAIN();
