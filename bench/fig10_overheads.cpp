// Reproduces paper Figure 10: virtualization-layer overhead versus data
// size. One process runs the vector-addition task through the GVM; the
// overhead is the gap between the process turnaround time and the pure GPU
// time spent in the base layer (shared-memory staging + message
// synchronization). The paper's headline: even at 400 MB the overhead
// stays below 25%.
#include <iostream>

#include "support.hpp"

using namespace vgpu;

int main() {
  print_banner(std::cout,
               "Figure 10: virtualization overheads vs data size "
               "(VectorAdd, 1 process)");
  TablePrinter table({"data size (MB)", "pure GPU time (ms)",
                      "turnaround (ms)", "overhead (ms)", "overhead (%)"});

  // "Data size" follows the paper's axis: the input vector volume moved
  // into the GPU (two source vectors); output adds half of that on top.
  for (const long mb : {25, 50, 100, 200, 300, 400}) {
    // n elements per source vector; 2n * 4 bytes = `mb` MB of input.
    const long n = mb * 1'000'000L / 8;
    const workloads::Workload w = workloads::vector_add(n);
    const gvm::RunResult r = gvm::run_virtualized(
        bench::paper_device(), bench::paper_gvm_config(), w.plan, 1, 1);
    const double pure = to_ms(r.pure_gpu_time);
    const double total = to_ms(r.turnaround);
    const double overhead = total - pure;
    table.add_row({std::to_string(mb), TablePrinter::num(pure),
                   TablePrinter::num(total), TablePrinter::num(overhead),
                   TablePrinter::num(100.0 * overhead / pure, 1)});
  }
  bench::emit(table, "fig10_overheads");
  std::cout << "(paper: overhead < 25% even at 400 MB)\n";
  return 0;
}
