#include "support.hpp"

#include <iostream>

namespace vgpu::bench {

gpu::DeviceSpec paper_device() { return gpu::tesla_c2070(); }

gvm::GvmConfig paper_gvm_config() { return gvm::GvmConfig{}; }

Comparison compare(const workloads::Workload& w, int nprocs) {
  Comparison c;
  c.baseline = gvm::run_baseline(paper_device(), w.plan, w.rounds, nprocs);
  c.virtualized = gvm::run_virtualized(paper_device(), paper_gvm_config(),
                                       w.plan, w.rounds, nprocs);
  return c;
}

void turnaround_sweep(const workloads::Workload& w, int max_procs,
                      const std::string& figure_title,
                      const std::string& csv_name) {
  print_banner(std::cout, figure_title);
  TablePrinter table({"processes", "no-virt turnaround (s)",
                      "virt turnaround (s)", "speedup"});
  for (int n = 1; n <= max_procs; ++n) {
    const Comparison c = compare(w, n);
    table.add_row({std::to_string(n),
                   TablePrinter::num(to_seconds(c.baseline.turnaround)),
                   TablePrinter::num(to_seconds(c.virtualized.turnaround)),
                   TablePrinter::num(c.speedup(), 2)});
  }
  emit(table, csv_name);
}

void emit(TablePrinter& table, const std::string& csv_name) {
  table.print(std::cout);
  const std::string path = csv_name + ".csv";
  if (table.write_csv(path)) {
    std::cout << "(series written to " << path << ")\n";
  }
}

}  // namespace vgpu::bench
